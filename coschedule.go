// Package repro is a Go implementation of the co-scheduling algorithms
// for cache-partitioned systems of Aupy, Benoit, Pottier, Raghavan,
// Robert and Shantharam (IPDPS 2017 / INRIA RR-8965).
//
// Given n parallel applications and a platform whose last-level cache can
// be partitioned (à la Intel Cache Allocation Technology), the library
// decides how many (rational) processors and which fraction of the cache
// to give each application so that the makespan — the completion time of
// the longest application, all starting together — is minimized.
//
// The root package is a facade re-exporting the user-facing pieces of the
// internal packages:
//
//   - Platform and Application describe the hardware and the workload
//     (Amdahl speedup + Power Law of Cache Misses cost model).
//   - Heuristic enumerates the paper's ten scheduling policies; its
//     Schedule method produces a complete assignment.
//   - Schedule holds the resulting {(p_i, x_i)} with validation and
//     per-application finish times.
//
// Quick start:
//
//	pl := repro.TaihuLight()
//	apps := repro.NPB()
//	s, err := repro.DominantMinRatio.Schedule(pl, apps, nil)
//	if err != nil { ... }
//	fmt.Println(s.Makespan)
//
// For the evaluation harness reproducing the paper's figures, see
// cmd/experiments; for CAT way-mask realization of fractional shares, see
// the CATPartition helper.
package repro

import (
	"repro/internal/cat"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/solve"
	"repro/internal/workload"
)

// Platform describes the multi-core machine; see model.Platform.
type Platform = model.Platform

// Application describes one co-scheduled job; see model.Application.
type Application = model.Application

// Assignment is one application's resource share; see sched.Assignment.
type Assignment = sched.Assignment

// Schedule is a complete co-schedule; see sched.Schedule.
type Schedule = sched.Schedule

// Heuristic enumerates the scheduling policies; see sched.Heuristic.
type Heuristic = sched.Heuristic

// The ten policies of the paper. DominantMinRatio is the reference
// heuristic (best or tied-best in every experiment).
const (
	DominantRandom      = sched.DominantRandom
	DominantMinRatio    = sched.DominantMinRatio
	DominantMaxRatio    = sched.DominantMaxRatio
	DominantRevRandom   = sched.DominantRevRandom
	DominantRevMinRatio = sched.DominantRevMinRatio
	DominantRevMaxRatio = sched.DominantRevMaxRatio
	Fair                = sched.Fair
	ZeroCache           = sched.ZeroCache
	RandomPart          = sched.RandomPart
	AllProcCache        = sched.AllProcCache
)

// Heuristics lists every policy in presentation order.
var Heuristics = sched.Heuristics

// ParseHeuristic resolves a heuristic name (as produced by its String
// method).
func ParseHeuristic(name string) (Heuristic, error) { return sched.ParseHeuristic(name) }

// TaihuLight returns the paper's reference platform: 256 processors,
// 32 GB shared LLC, ll = 1, ls = 0.17, α = 0.5.
func TaihuLight() Platform { return model.TaihuLight() }

// NPB returns the six NAS Parallel Benchmark applications of the paper's
// Table 2.
func NPB() []Application { return workload.NPB() }

// NewRNG returns a deterministic random stream for the randomized
// heuristics (DominantRandom, DominantRevRandom, RandomPart).
func NewRNG(seed uint64) *solve.RNG { return solve.NewRNG(seed) }

// ExactSchedule enumerates all cache partitions (n ≤ 24) and returns the
// optimal schedule for perfectly parallel applications; a ground-truth
// reference for validating heuristics on small instances.
func ExactSchedule(pl Platform, apps []Application) (*Schedule, error) {
	s, _, err := sched.ExactSubset(pl, apps)
	return s, err
}

// CATAllocation is the way-level realization of fractional cache shares;
// see cat.Allocation.
type CATAllocation = cat.Allocation

// CATPartition rounds a schedule's fractional cache shares onto `ways`
// whole, contiguous LLC ways as Intel CAT requires.
func CATPartition(s *Schedule, ways int) (*CATAllocation, error) {
	shares := make([]float64, len(s.Assignments))
	for i, a := range s.Assignments {
		shares[i] = a.CacheShare
	}
	return cat.Partition(shares, ways)
}

// SimulationResult is the outcome of discrete-event execution; see
// sim.Result.
type SimulationResult = sim.Result

// Simulate executes the schedule in the discrete-event engine with static
// allocations and returns per-application finish times; it cross-checks
// the analytic model.
func Simulate(pl Platform, apps []Application, s *Schedule) (*SimulationResult, error) {
	return sim.Execute(pl, apps, s, sim.Static)
}

// SimulateRedistribute executes the schedule, handing resources freed by
// finished applications to the survivors — an extension quantifying the
// headroom a static assignment leaves for unequal-finish schedules.
func SimulateRedistribute(pl Platform, apps []Application, s *Schedule) (*SimulationResult, error) {
	return sim.Execute(pl, apps, s, sim.Redistribute)
}

// LocalSearchSchedule is the speedup-profile-aware extension named in the
// paper's conclusion: hill-climbing over cache-partition memberships
// evaluated with the true Amdahl profiles, warm-started from
// DominantMinRatio. Never worse than the warm start; strictly better on
// workloads with heterogeneous sequential fractions and tight caches.
func LocalSearchSchedule(pl Platform, apps []Application, rng *solve.RNG) (*Schedule, error) {
	return sched.LocalSearchSchedule(pl, apps, sched.LocalSearchOptions{}, rng)
}

// IntegerSchedule realizes a rational schedule with whole processors; see
// sched.IntegerSchedule.
type IntegerSchedule = sched.IntegerSchedule

// RoundProcessors converts a rational schedule to whole processors
// (largest-remainder, every application keeps ≥ 1) and reports the
// makespan degradation.
func RoundProcessors(pl Platform, apps []Application, s *Schedule) (*IntegerSchedule, error) {
	return sched.RoundProcessors(pl, apps, s)
}
