// Package repro is a Go implementation of the co-scheduling algorithms
// for cache-partitioned systems of Aupy, Benoit, Pottier, Raghavan,
// Robert and Shantharam (IPDPS 2017 / INRIA RR-8965).
//
// Given n parallel applications and a platform whose last-level cache can
// be partitioned (à la Intel Cache Allocation Technology), the library
// decides how many (rational) processors and which fraction of the cache
// to give each application so that the makespan — the completion time of
// the longest application, all starting together — is minimized.
//
// The front door is the context-aware Client: a long-lived handle
// owning a bounded worker pool and a memoization cache, whose methods
// all take a context.Context and honor cancellation and deadlines
// promptly.
//
// Quick start:
//
//	client := repro.NewClient() // GOMAXPROCS workers, memoization on
//	pl := repro.TaihuLight()
//	apps := repro.NPB()
//	best, rep, err := client.Best(ctx, pl, apps)
//	if err != nil { ... }
//	fmt.Println(best.Makespan, len(rep.Results))
//
// Best races every heuristic concurrently and serves the winner; use
// NewClient options to tune it: WithWorkers bounds the pool, WithCache
// toggles memoization, WithHeuristics restricts the raced set, WithSeed
// drives the randomized policies. Client.Schedule evaluates a single
// heuristic, Client.EvaluateBatch streams NDJSON-scale scenario batches
// in bounded memory, and Client.SimulateOnline runs the discrete-event
// online simulator (jobs arriving over virtual time, an online policy
// repartitioning the node at every event).
//
// The building blocks behind the client remain exported:
//
//   - Platform and Application describe the hardware and the workload
//     (Amdahl speedup + Power Law of Cache Misses cost model).
//   - Heuristic enumerates the paper's ten scheduling policies (plus
//     the SharedCache and LocalSearch extensions); its Schedule method
//     produces a complete assignment with a caller-owned RNG.
//   - Schedule holds the resulting {(p_i, x_i)} with validation and
//     per-application finish times.
//   - OnlineScenario/OnlinePolicy/ArrivalProcess describe online
//     simulations; see the arrival and policy constructors.
//
// # Concurrency, determinism and caching
//
// Heuristic evaluation is CPU-bound, so the default of GOMAXPROCS
// workers saturates the machine; smaller pools bound the client's share
// of it when co-resident with other work. All calls on one client share
// its pool, and results are bit-for-bit identical for any pool size
// (each heuristic's randomness is derived from the scenario seed and
// its position, never from execution order).
//
// The cache is sharded and mutex-striped, keyed by a canonical hash of
// (platform, applications, heuristic, seed); the seed is ignored for
// deterministic heuristics, so repeated workloads hit regardless of
// seed. Cached schedules are shared between callers — treat them as
// immutable. Concurrent identical requests collapse into one
// computation, and computations abandoned by cancellation are never
// cached.
//
// # Errors and cancellation
//
// Failures use a small typed vocabulary — ErrInfeasible,
// *ValidationError, *HeuristicError — that works with errors.Is/As
// across every package boundary; see the declarations in this package.
// Cancelling a context mid-call returns ctx.Err() promptly (within one
// in-flight heuristic evaluation per worker, or a few simulator
// events), leaks no goroutines, and leaves the client fully reusable.
//
// # Legacy v1 surface
//
// The original free functions (BestSchedule, SimulateOnline,
// NewPortfolio) remain as thin deprecated shims over a shared default
// client, so existing callers keep working — and now share one
// memoization cache instead of rebuilding state per call.
//
// For the evaluation harness reproducing the paper's figures, see
// cmd/experiments; for CAT way-mask realization of fractional shares, see
// the CATPartition helper.
package repro

import (
	"context"

	"repro/internal/cat"
	"repro/internal/des"
	"repro/internal/fleet"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/portfolio"
	"repro/internal/sched"
	"repro/internal/selector"
	"repro/internal/sim"
	"repro/internal/solve"
	"repro/internal/workload"
)

// Platform describes the multi-core machine; see model.Platform.
type Platform = model.Platform

// Application describes one co-scheduled job; see model.Application.
type Application = model.Application

// Assignment is one application's resource share; see sched.Assignment.
type Assignment = sched.Assignment

// Schedule is a complete co-schedule; see sched.Schedule.
type Schedule = sched.Schedule

// Heuristic enumerates the scheduling policies; see sched.Heuristic.
type Heuristic = sched.Heuristic

// The ten policies of the paper. DominantMinRatio is the reference
// heuristic (best or tied-best in every experiment).
const (
	DominantRandom      = sched.DominantRandom
	DominantMinRatio    = sched.DominantMinRatio
	DominantMaxRatio    = sched.DominantMaxRatio
	DominantRevRandom   = sched.DominantRevRandom
	DominantRevMinRatio = sched.DominantRevMinRatio
	DominantRevMaxRatio = sched.DominantRevMaxRatio
	Fair                = sched.Fair
	ZeroCache           = sched.ZeroCache
	RandomPart          = sched.RandomPart
	AllProcCache        = sched.AllProcCache
)

// Heuristics lists every policy in presentation order.
var Heuristics = sched.Heuristics

// ParseHeuristic resolves a heuristic name (as produced by its String
// method).
func ParseHeuristic(name string) (Heuristic, error) { return sched.ParseHeuristic(name) }

// TaihuLight returns the paper's reference platform: 256 processors,
// 32 GB shared LLC, ll = 1, ls = 0.17, α = 0.5.
func TaihuLight() Platform { return model.TaihuLight() }

// NPB returns the six NAS Parallel Benchmark applications of the paper's
// Table 2.
func NPB() []Application { return workload.NPB() }

// NewRNG returns a deterministic random stream for the randomized
// heuristics (DominantRandom, DominantRevRandom, RandomPart).
func NewRNG(seed uint64) *solve.RNG { return solve.NewRNG(seed) }

// ExactSchedule enumerates all cache partitions (n ≤ 24) and returns the
// optimal schedule for perfectly parallel applications; a ground-truth
// reference for validating heuristics on small instances.
func ExactSchedule(pl Platform, apps []Application) (*Schedule, error) {
	s, _, err := sched.ExactSubset(pl, apps)
	return s, err
}

// CATAllocation is the way-level realization of fractional cache shares;
// see cat.Allocation.
type CATAllocation = cat.Allocation

// CATPartition rounds a schedule's fractional cache shares onto `ways`
// whole, contiguous LLC ways as Intel CAT requires. Invalid inputs —
// a nil or empty schedule, out-of-range shares or way counts — return a
// *ValidationError naming the offending field.
func CATPartition(s *Schedule, ways int) (*CATAllocation, error) {
	if s == nil {
		return nil, &ValidationError{Field: "schedule", Reason: "cannot partition a nil schedule"}
	}
	if len(s.Assignments) == 0 {
		return nil, &ValidationError{Field: "schedule.assignments", Value: 0, Reason: "cannot partition an empty schedule"}
	}
	shares := make([]float64, len(s.Assignments))
	for i, a := range s.Assignments {
		shares[i] = a.CacheShare
	}
	return cat.Partition(shares, ways)
}

// SimulationResult is the outcome of discrete-event execution; see
// sim.Result.
type SimulationResult = sim.Result

// Simulate executes the schedule in the discrete-event engine with static
// allocations and returns per-application finish times; it cross-checks
// the analytic model.
func Simulate(pl Platform, apps []Application, s *Schedule) (*SimulationResult, error) {
	return sim.Execute(pl, apps, s, sim.Static)
}

// SimulateRedistribute executes the schedule, handing resources freed by
// finished applications to the survivors — an extension quantifying the
// headroom a static assignment leaves for unequal-finish schedules.
func SimulateRedistribute(pl Platform, apps []Application, s *Schedule) (*SimulationResult, error) {
	return sim.Execute(pl, apps, s, sim.Redistribute)
}

// LocalSearchSchedule is the speedup-profile-aware extension named in the
// paper's conclusion: hill-climbing over cache-partition memberships
// evaluated with the true Amdahl profiles, warm-started from
// DominantMinRatio. Never worse than the warm start; strictly better on
// workloads with heterogeneous sequential fractions and tight caches.
func LocalSearchSchedule(pl Platform, apps []Application, rng *solve.RNG) (*Schedule, error) {
	return sched.LocalSearchSchedule(pl, apps, sched.LocalSearchOptions{}, rng)
}

// MetricsRegistry collects runtime telemetry — counters, gauges and
// histograms — from an instrumented client (see WithMetrics). Snapshot
// returns a deterministic sample dump and WriteProm renders the
// Prometheus text exposition; see internal/obs for the model. A nil
// registry disables instrumentation everywhere it is accepted.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry ready for
// concurrent use. Pass it to NewClient(WithMetrics(reg)) and scrape it
// with reg.WriteProm (or serve it on a debug listener; see the cmd/
// binaries' -debug-addr flag).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// PortfolioEngine evaluates many heuristics and scenarios concurrently
// on a bounded worker pool; see portfolio.Engine.
type PortfolioEngine = portfolio.Engine

// PortfolioScenario is one scheduling problem for the portfolio engine;
// see portfolio.Scenario.
type PortfolioScenario = portfolio.Scenario

// PortfolioReport is the per-heuristic outcome of one scenario; see
// portfolio.Report.
type PortfolioReport = portfolio.Report

// PortfolioResult is one heuristic's outcome; see portfolio.Result.
type PortfolioResult = portfolio.Result

// NewPortfolio returns a portfolio engine with the given worker-pool
// size (values < 1 mean GOMAXPROCS) and a fresh memoization cache. See
// the package documentation for sizing and cache semantics.
//
// Deprecated: use NewClient(WithWorkers(workers)), whose methods take a
// context and whose engine is reachable via Client.Engine.
func NewPortfolio(workers int) *PortfolioEngine {
	return portfolio.New(portfolio.Config{Workers: workers, Cache: portfolio.NewCache()})
}

// BestSchedule races every heuristic (the paper's ten plus the
// extensions) and returns the winning schedule with the full report. It
// runs on the shared default client, so repeated workloads are served
// from its memoization cache instead of being recomputed on a transient
// engine per call.
//
// Deprecated: use Client.Best, which takes a context; construct the
// client with WithSeed(seed) (or call Client.Evaluate for a per-call
// seed).
func BestSchedule(pl Platform, apps []Application, seed uint64) (*Schedule, *PortfolioReport, error) {
	rep, err := DefaultClient().Evaluate(context.Background(), PortfolioScenario{Platform: pl, Apps: apps, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	best := rep.BestResult()
	if best == nil {
		return nil, rep, sched.ErrInfeasible
	}
	// v1 computed on a transient engine, so callers own (and may mutate)
	// the returned schedule; the default client's cache shares its
	// schedules, so hand back a private copy to preserve that contract.
	// The report's schedules stay cache-shared — treat them as immutable.
	s := *best.Schedule
	s.Assignments = append([]Assignment(nil), best.Schedule.Assignments...)
	return &s, rep, nil
}

// Learned heuristic selection (internal/selector): a win-rate ledger
// keyed by scenario feature buckets predicts the winning heuristic, and
// a selector policy runs the predicted winner first, falling back to
// the full portfolio race when the prediction is not confident.

// SelectorLedger accumulates per-(feature-bucket, heuristic) race
// outcomes and predicts winners; see selector.Ledger.
type SelectorLedger = selector.Ledger

// SelectorThresholds gates when a prediction is confident enough to
// skip the race; see selector.Thresholds.
type SelectorThresholds = selector.Thresholds

// SelectorPrediction is one ledger prediction; see selector.Prediction.
type SelectorPrediction = selector.Prediction

// SelectorDecision is the outcome of one selected scenario — the
// served report, whether the shortcut was taken, and the fallback
// reason when not; see portfolio.Decision.
type SelectorDecision = portfolio.Decision

// SelectorFeatures is the deterministic feature vector extracted from
// a scenario; see selector.Features.
type SelectorFeatures = selector.Features

// ExtractFeatures computes the scenario feature vector driving ledger
// bucketing; pure and deterministic in its inputs.
func ExtractFeatures(pl Platform, apps []Application) SelectorFeatures {
	return selector.Extract(pl, apps)
}

// NewSelectorLedger returns an empty win-rate ledger.
func NewSelectorLedger() *SelectorLedger { return selector.New() }

// LoadSelectorLedger loads and validates a persisted ledger (see
// cmd/ledger for training and inspection).
func LoadSelectorLedger(path string) (*SelectorLedger, error) { return selector.LoadFile(path) }

// Online simulation (internal/des): jobs arrive over virtual time and an
// online policy repartitions processors and cache at every arrival and
// completion, charging each job's remaining work under the new shares.

// OnlineScenario is one online co-scheduling problem; see des.Scenario.
type OnlineScenario = des.Scenario

// OnlineResult is the outcome of an online simulation; see des.Result.
type OnlineResult = des.Result

// OnlinePolicy decides repartitions at every arrival/completion; see
// des.Policy.
type OnlinePolicy = des.Policy

// ArrivalProcess produces a finite stream of job arrivals; see
// des.ArrivalProcess.
type ArrivalProcess = des.ArrivalProcess

// JobArrival is one (time, application) arrival; see des.Arrival.
type JobArrival = des.Arrival

// SimulateOnline runs an online co-scheduling scenario to completion:
// deterministic per seed, bit-identical across runs and policy worker
// counts. See the internal/des package documentation for the model.
//
// Deprecated: use Client.SimulateOnline, which takes a context and
// cancels mid-run.
func SimulateOnline(sc OnlineScenario) (*OnlineResult, error) {
	return DefaultClient().SimulateOnline(context.Background(), sc)
}

// CycleJobs returns a des.JobFactory cycling through the template
// applications, stamping each instance with a unique name.
func CycleJobs(apps []Application) (des.JobFactory, error) { return des.CycleApps(apps) }

// PoissonArrivals returns a homogeneous Poisson arrival process: n jobs
// with exponential inter-arrival times at the given rate.
func PoissonArrivals(rate float64, n int, factory des.JobFactory, rng *solve.RNG) (ArrivalProcess, error) {
	return des.NewPoisson(rate, n, factory, rng)
}

// InhomogeneousPoissonArrivals returns a time-varying Poisson process
// simulated by Lewis–Shedler thinning; rate is the intensity λ(t),
// maxRate its upper bound.
func InhomogeneousPoissonArrivals(rate des.RateFunc, maxRate float64, n int, factory des.JobFactory, rng *solve.RNG) (ArrivalProcess, error) {
	return des.NewInhomogeneousPoisson(rate, maxRate, n, factory, rng)
}

// GammaBurstArrivals returns a bursty process: groups of burst jobs
// separated by Gamma(shape, scale) gaps.
func GammaBurstArrivals(shape, scale float64, burst, n int, factory des.JobFactory, rng *solve.RNG) (ArrivalProcess, error) {
	return des.NewGammaBursts(shape, scale, burst, n, factory, rng)
}

// BatchArrivals returns a deterministic process: n jobs in groups of
// size, one group every interval (interval 0 puts every job at t = 0,
// the paper's offline setting).
func BatchArrivals(interval float64, size, n int, factory des.JobFactory) (ArrivalProcess, error) {
	return des.NewBatch(interval, size, n, factory)
}

// ReplayArrivals replays a recorded arrival trace verbatim.
func ReplayArrivals(arrivals []JobArrival) (ArrivalProcess, error) { return des.NewReplay(arrivals) }

// HeuristicRepartition returns the online policy that reschedules every
// resident job's remaining work with h at each arrival and completion.
func HeuristicRepartition(h Heuristic, seed uint64) (OnlinePolicy, error) {
	return des.NewHeuristicPolicy(h, seed)
}

// PortfolioRepartition returns the online policy that races the whole
// concurrent-heuristic portfolio over the residual workload at every
// decision point and applies the winner. workers bounds the pool
// (< 1 = GOMAXPROCS).
func PortfolioRepartition(workers int, seed uint64) OnlinePolicy {
	return des.NewPortfolioPolicy(nil, workers, seed)
}

// NoRepartitionPolicy returns the wave-scheduling baseline: allocate
// with h when the node drains, freeze in between (arrivals mid-wave
// wait). With every job at t = 0 this reproduces the paper's static
// setting bit-for-bit.
func NoRepartitionPolicy(h Heuristic, seed uint64) (OnlinePolicy, error) {
	return des.NewNoRepartition(h, seed)
}

// Fleet simulation (internal/fleet): N heterogeneous nodes, each
// running the single-node online simulator, behind a deterministic
// routing layer.

// FleetScenario is one multi-node simulation problem; see
// fleet.Scenario.
type FleetScenario = fleet.Scenario

// FleetNode configures one node of a fleet; see fleet.Node.
type FleetNode = fleet.Node

// FleetResult is the outcome of a fleet simulation: routing log,
// per-node results and fleet-wide summaries; see fleet.Result.
type FleetResult = fleet.Result

// FleetNodeResult is one node's outcome within a fleet; see
// fleet.NodeResult.
type FleetNodeResult = fleet.NodeResult

// FleetRoute records one routing decision; see fleet.Route.
type FleetRoute = fleet.Route

// FleetRoutings lists the routing policy names accepted by
// FleetScenario.Routing: least-loaded, cache-affinity,
// power-of-two-choices and join-shortest-queue.
func FleetRoutings() []string { return append([]string(nil), fleet.Routings...) }

// IntegerSchedule realizes a rational schedule with whole processors; see
// sched.IntegerSchedule.
type IntegerSchedule = sched.IntegerSchedule

// RoundProcessors converts a rational schedule to whole processors
// (largest-remainder, every application keeps ≥ 1) and reports the
// makespan degradation.
func RoundProcessors(pl Platform, apps []Application, s *Schedule) (*IntegerSchedule, error) {
	return sched.RoundProcessors(pl, apps, s)
}
