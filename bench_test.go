// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure (the bench bodies run the same drivers cmd/experiments
// uses, with a reduced replicate count so `go test -bench=.` completes in
// minutes), plus ablation benchmarks for the design choices called out in
// DESIGN.md. Figure CSVs for the full 50-replicate protocol are produced
// by `go run ./cmd/experiments -all`.
package repro

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/trace"
	"repro/internal/validate"
	"repro/internal/workload"
)

// benchCfg keeps per-iteration work bounded; the figures' shapes are
// already verified by the experiment tests.
func benchCfg() experiments.Config { return experiments.Config{Replicates: 2, Seed: 0x5EED} }

// runFigure is the common body of every figure benchmark: regenerate the
// figure and report the headline numbers the paper's plot shows.
func runFigure(b *testing.B, n int) {
	b.Helper()
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Registry[n](benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if base := experiments.NormalizationBase(n); base != "" {
		if norm, err := fig.Normalized(base); err == nil {
			reportSeries(b, norm)
			return
		}
	}
	reportSeries(b, fig)
}

// reportSeries attaches the final sweep point of each series as benchmark
// metrics, so `go test -bench` output carries the reproduced numbers.
func reportSeries(b *testing.B, fig *experiments.Figure) {
	b.Helper()
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			continue
		}
		last := s.Points[len(s.Points)-1]
		b.ReportMetric(last.Summary.Mean, s.Name+"@x="+fmt.Sprint(last.X))
	}
}

// --- Tables ---

// BenchmarkTable2 regenerates Table 2 (it is static data, but the bench
// also runs the substituted measurement pipeline once: trace → cache
// sweep → power-law fit, the role PEBIL played for the authors).
func BenchmarkTable2MeasurementPipeline(b *testing.B) {
	sizes := []uint64{1 << 20, 2 << 20, 4 << 20, 8 << 20}
	for i := 0; i < b.N; i++ {
		if err := experiments.WriteTable2(io.Discard); err != nil {
			b.Fatal(err)
		}
		mk := func() trace.Generator {
			g, err := trace.NewZipf(32<<20, 64, 0.8, solve.NewRNG(1))
			if err != nil {
				b.Fatal(err)
			}
			return g
		}
		pts, err := cachesim.Sweep(sizes, 64, 8, mk, 20000, 60000)
		if err != nil {
			b.Fatal(err)
		}
		fit, err := cachesim.FitPowerLaw(pts, 40e6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fit.Alpha, "fitted-alpha")
	}
}

// --- Figures 1-18, one benchmark each ---

func BenchmarkFigure1(b *testing.B)  { runFigure(b, 1) }
func BenchmarkFigure2(b *testing.B)  { runFigure(b, 2) }
func BenchmarkFigure3(b *testing.B)  { runFigure(b, 3) }
func BenchmarkFigure4(b *testing.B)  { runFigure(b, 4) }
func BenchmarkFigure5(b *testing.B)  { runFigure(b, 5) }
func BenchmarkFigure6(b *testing.B)  { runFigure(b, 6) }
func BenchmarkFigure7(b *testing.B)  { runFigure(b, 7) }
func BenchmarkFigure8(b *testing.B)  { runFigure(b, 8) }
func BenchmarkFigure9(b *testing.B)  { runFigure(b, 9) }
func BenchmarkFigure10(b *testing.B) { runFigure(b, 10) }
func BenchmarkFigure11(b *testing.B) { runFigure(b, 11) }
func BenchmarkFigure12(b *testing.B) { runFigure(b, 12) }
func BenchmarkFigure13(b *testing.B) { runFigure(b, 13) }
func BenchmarkFigure14(b *testing.B) { runFigure(b, 14) }
func BenchmarkFigure15(b *testing.B) { runFigure(b, 15) }
func BenchmarkFigure16(b *testing.B) { runFigure(b, 16) }
func BenchmarkFigure17(b *testing.B) { runFigure(b, 17) }
func BenchmarkFigure18(b *testing.B) { runFigure(b, 18) }

// --- Heuristic micro-benchmarks: scheduler cost per decision ---
// (The paper notes all heuristics run in < 10 s in the worst setting;
// these report the per-schedule cost directly.)

func benchHeuristic(b *testing.B, h sched.Heuristic, n int) {
	b.Helper()
	pl := TaihuLight()
	apps, err := workload.Generate(workload.Config{Generator: workload.GenNPBSynth, N: n}, solve.NewRNG(5))
	if err != nil {
		b.Fatal(err)
	}
	rng := solve.NewRNG(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Schedule(pl, apps, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleDominantMinRatio16(b *testing.B) { benchHeuristic(b, sched.DominantMinRatio, 16) }
func BenchmarkScheduleDominantMinRatio256(b *testing.B) {
	benchHeuristic(b, sched.DominantMinRatio, 256)
}
func BenchmarkScheduleDominantRevMaxRatio256(b *testing.B) {
	benchHeuristic(b, sched.DominantRevMaxRatio, 256)
}
func BenchmarkScheduleFair256(b *testing.B)      { benchHeuristic(b, sched.Fair, 256) }
func BenchmarkScheduleZeroCache256(b *testing.B) { benchHeuristic(b, sched.ZeroCache, 256) }

// --- Ablations ---

// BenchmarkAblationExactVsDominant quantifies how close (and how much
// cheaper) the dominant-partition heuristic is against exhaustive subset
// enumeration on n = 12 perfectly parallel applications.
func BenchmarkAblationExactVsDominant(b *testing.B) {
	pl := TaihuLight()
	apps, err := workload.Generate(workload.Config{
		Generator: workload.GenNPBSynth, N: 12, SeqFixed: true,
	}, solve.NewRNG(13))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, _, err := sched.ExactSubset(pl, apps)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(s.Makespan, "makespan")
		}
	})
	b.Run("dominant", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := sched.DominantMinRatio.Schedule(pl, apps, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(s.Makespan, "makespan")
		}
	})
}

// BenchmarkAblationCATWays measures the makespan cost of realizing the
// ideal fractional partition on progressively coarser way counts.
func BenchmarkAblationCATWays(b *testing.B) {
	pl := TaihuLight()
	apps := NPB()
	s, err := DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, ways := range []int{8, 12, 20, 32} {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			var degr float64
			for i := 0; i < b.N; i++ {
				alloc, err := CATPartition(s, ways)
				if err != nil {
					b.Fatal(err)
				}
				var worst float64
				for j, a := range apps {
					ideal := a.Exe(pl, s.Assignments[j].Processors, s.Assignments[j].CacheShare)
					real := a.Exe(pl, s.Assignments[j].Processors, alloc.Fractions[j])
					if r := real / ideal; r > worst {
						worst = r
					}
				}
				degr = worst
			}
			b.ReportMetric(degr, "worst-slowdown")
		})
	}
}

// BenchmarkAblationRedistribution measures the makespan headroom dynamic
// reallocation recovers from a Fair schedule (whose finish times are
// unequal), versus the equal-finish dominant schedule (none to recover).
func BenchmarkAblationRedistribution(b *testing.B) {
	pl := TaihuLight()
	apps, err := workload.Generate(workload.Config{Generator: workload.GenNPBSynth, N: 32}, solve.NewRNG(17))
	if err != nil {
		b.Fatal(err)
	}
	for _, h := range []Heuristic{Fair, DominantMinRatio} {
		b.Run(h.String(), func(b *testing.B) {
			s, err := h.Schedule(pl, apps, nil)
			if err != nil {
				b.Fatal(err)
			}
			var gain float64
			for i := 0; i < b.N; i++ {
				st, err := Simulate(pl, apps, s)
				if err != nil {
					b.Fatal(err)
				}
				rd, err := SimulateRedistribute(pl, apps, s)
				if err != nil {
					b.Fatal(err)
				}
				gain = 1 - rd.Makespan/st.Makespan
			}
			b.ReportMetric(100*gain, "redistribution-gain-%")
		})
	}
}

// BenchmarkCacheSimAccess measures the simulator's raw access throughput.
func BenchmarkCacheSimAccess(b *testing.B) {
	cfg := cachesim.Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 16}
	c, err := cachesim.New(cfg, []int{8, 8})
	if err != nil {
		b.Fatal(err)
	}
	g, err := trace.NewZipf(8<<20, 64, 0.8, solve.NewRNG(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(i&1, g.Next())
	}
}

// BenchmarkEqualizer measures the binary-search makespan equalizer alone.
func BenchmarkEqualizer(b *testing.B) {
	pl := TaihuLight()
	apps, err := workload.Generate(workload.Config{Generator: workload.GenNPBSynth, N: 128}, solve.NewRNG(23))
	if err != nil {
		b.Fatal(err)
	}
	shares := make([]float64, len(apps))
	for i := range shares {
		shares[i] = 1 / float64(len(apps))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sched.EqualizeAmdahl(pl, apps, shares); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLocalSearch compares the Amdahl-aware membership local
// search against its DominantMinRatio warm start on a tight cache with
// heterogeneous sequential fractions (where membership actually matters).
func BenchmarkAblationLocalSearch(b *testing.B) {
	pl := TaihuLight()
	pl.CacheSize = 2e8
	apps, err := workload.Generate(workload.Config{Generator: workload.GenNPBSynth, N: 12}, solve.NewRNG(77))
	if err != nil {
		b.Fatal(err)
	}
	for i := range apps {
		apps[i].RefMissRate = 0.4
		apps[i].SeqFraction = 0.001 + 0.149*float64(i)/11
	}
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := DominantMinRatio.Schedule(pl, apps, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(s.Makespan, "makespan")
		}
	})
	b.Run("localsearch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := LocalSearchSchedule(pl, apps, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(s.Makespan, "makespan")
		}
	})
}

// BenchmarkAblationIntegerRounding measures the makespan cost of whole
// processors across workload sizes.
func BenchmarkAblationIntegerRounding(b *testing.B) {
	pl := TaihuLight()
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			apps, err := workload.Generate(workload.Config{Generator: workload.GenNPBSynth, N: n}, solve.NewRNG(uint64(n)))
			if err != nil {
				b.Fatal(err)
			}
			s, err := DominantMinRatio.Schedule(pl, apps, nil)
			if err != nil {
				b.Fatal(err)
			}
			var degr float64
			for i := 0; i < b.N; i++ {
				ri, err := RoundProcessors(pl, apps, s)
				if err != nil {
					b.Fatal(err)
				}
				degr = ri.Degradation
			}
			b.ReportMetric(degr, "rounding-degradation")
		})
	}
}

// BenchmarkAblationPipelineDepth reports the sustainable in-situ batch
// period as the pipelining depth grows (deeper = better packing of
// Amdahl sequential fractions, at the price of latency).
func BenchmarkAblationPipelineDepth(b *testing.B) {
	pl := TaihuLight()
	pl.Processors = 64
	apps, err := workload.Generate(workload.Config{
		Generator: workload.GenNPBSynth, N: 6, Seq: 0.08, SeqFixed: true,
	}, solve.NewRNG(2016))
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var period float64
			for i := 0; i < b.N; i++ {
				p, err := pipeline.NewPlan(pipeline.Config{
					Platform: pl, Analyses: apps,
					Heuristic: sched.DominantMinRatio, Depth: depth,
				})
				if err != nil {
					b.Fatal(err)
				}
				period = p.SustainablePeriod
			}
			b.ReportMetric(period, "sustainable-period")
		})
	}
}

// BenchmarkAblationModelValidation runs the full measurement loop — trace
// → power-law fit → schedule → CAT ways → partitioned cache replay — and
// reports the model-vs-simulator miss-rate error.
func BenchmarkAblationModelValidation(b *testing.B) {
	sizes := []uint64{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20}
	var apps []validate.TracedApp
	for i, s := range []float64{0.7, 0.9, 1.1} {
		i, s := i, s
		mk := func() trace.Generator {
			g, err := trace.NewZipf(16<<20, 64, s, solve.NewRNG(uint64(10+i)))
			if err != nil {
				b.Fatal(err)
			}
			return g
		}
		ta, _, err := validate.Characterize(fmt.Sprintf("app%d", i), mk, sizes, 64, 8, 1e10, 0.02, 0.5, 30000, 60000)
		if err != nil {
			b.Fatal(err)
		}
		apps = append(apps, ta)
	}
	pl := Platform{Processors: 16, CacheSize: 8 << 20, LatencyS: 0.17, LatencyL: 1, Alpha: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := validate.Run(pl, apps, sched.DominantMinRatio, 8<<20, 64, 16, 100000, 150000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(validate.MeanAbsError(cs), "mean-abs-miss-error")
	}
}
