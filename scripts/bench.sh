#!/usr/bin/env bash
# Benchmark workflow for the portfolio engine (see benchmarks/README.md).
#
#   scripts/bench.sh            run benchmarks -> benchmarks/latest.txt
#   scripts/bench.sh baseline   promote latest.txt to baseline.txt
#   scripts/bench.sh compare    run, then fail on a speedup regression
#
# Environment:
#   BENCH_TIME                -benchtime (default 30x)
#   BENCH_COUNT               -count (default 3)
#   MIN_SPEEDUP               required parallel speedup on >= 4 CPUs (default 2.0)
#   BENCH_MAX_REGRESSION_PCT  allowed speedup drop vs baseline (default 15)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_DIR=benchmarks
LATEST=$BENCH_DIR/latest.txt
BASELINE=$BENCH_DIR/baseline.txt
BENCH_TIME=${BENCH_TIME:-30x}
BENCH_COUNT=${BENCH_COUNT:-3}
MIN_SPEEDUP=${MIN_SPEEDUP:-2.0}
BENCH_MAX_REGRESSION_PCT=${BENCH_MAX_REGRESSION_PCT:-15}

run_bench() {
  mkdir -p "$BENCH_DIR"
  {
    go test -run '^$' -bench 'BenchmarkPortfolio' -benchtime "$BENCH_TIME" \
      -count "$BENCH_COUNT" ./internal/portfolio
    go test -run '^$' -bench 'BenchmarkDES' -benchtime "$BENCH_TIME" \
      -count "$BENCH_COUNT" ./internal/des
  } | tee "$LATEST"
}

# best_nsop FILE NAME_REGEX: minimum ns/op among matching benchmark lines.
best_nsop() {
  awk -v pat="$2" '$0 ~ pat && /ns\/op/ {
    for (i = 1; i <= NF; i++) if ($(i+1) == "ns/op" && (best == "" || $i + 0 < best + 0)) best = $i
  } END { if (best == "") exit 1; print best }' "$1"
}

# speedup_of FILE: serial ns/op divided by the best parallel ns/op.
speedup_of() {
  local serial parallel
  serial=$(best_nsop "$1" 'BenchmarkPortfolioSweep/workers=1[^0-9]') || return 1
  parallel=$(best_nsop "$1" 'BenchmarkPortfolioSweep/workers=([2-9]|[1-9][0-9]+)') || return 1
  awk -v s="$serial" -v p="$parallel" 'BEGIN { printf "%.3f", s / p }'
}

report_des() {
  local nsop
  if nsop=$(best_nsop "$1" 'BenchmarkDESPoisson'); then
    echo "DES online simulation (poisson/64 jobs): ${nsop} ns/op"
  fi
}

case "${1:-run}" in
  run)
    run_bench
    echo "portfolio sweep speedup (serial / best parallel): $(speedup_of "$LATEST")x"
    report_des "$LATEST"
    ;;
  baseline)
    [ -f "$LATEST" ] || { echo "no $LATEST; run scripts/bench.sh first" >&2; exit 1; }
    cp "$LATEST" "$BASELINE"
    echo "promoted $LATEST -> $BASELINE (speedup $(speedup_of "$BASELINE")x)"
    ;;
  compare)
    run_bench
    speedup=$(speedup_of "$LATEST")
    cpus=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)
    echo "portfolio sweep speedup: ${speedup}x on $cpus CPUs"
    report_des "$LATEST"
    if [ "$cpus" -ge 4 ]; then
      awk -v s="$speedup" -v min="$MIN_SPEEDUP" 'BEGIN { exit !(s + 0 < min + 0) }' && {
        echo "FAIL: parallel speedup ${speedup}x below required ${MIN_SPEEDUP}x" >&2
        exit 1
      }
    else
      echo "note: < 4 CPUs, skipping the ${MIN_SPEEDUP}x speedup gate"
    fi
    if [ -f "$BASELINE" ]; then
      base=$(speedup_of "$BASELINE")
      echo "baseline speedup: ${base}x (allowed regression ${BENCH_MAX_REGRESSION_PCT}%)"
      awk -v s="$speedup" -v b="$base" -v pct="$BENCH_MAX_REGRESSION_PCT" \
        'BEGIN { exit !(s + 0 < b * (100 - pct) / 100) }' && {
        echo "FAIL: speedup ${speedup}x regressed more than ${BENCH_MAX_REGRESSION_PCT}% from baseline ${base}x" >&2
        exit 1
      }
    else
      echo "note: no $BASELINE committed; skipping baseline comparison"
    fi
    echo "bench compare OK"
    ;;
  *)
    echo "usage: scripts/bench.sh [run|baseline|compare]" >&2
    exit 2
    ;;
esac
