#!/usr/bin/env bash
# Benchmark workflow — a thin wrapper over cmd/benchgate, the
# statistical benchmark gate (see benchmarks/README.md).
#
#   scripts/bench.sh            run benchmarks -> benchmarks/latest.txt, print the gate report
#   scripts/bench.sh baseline   run, then rewrite benchmarks/baseline.json from the results
#   scripts/bench.sh compare    run, gate against the baseline, write the trajectory artifact
#
# Environment:
#   BENCH_TIME        -benchtime (default 30x)
#   BENCH_COUNT       -count: repeated runs feeding the median/MAD aggregation (default 10)
#   BENCH_LABEL       trajectory label (default "PR 10")
#   BENCH_TRAJECTORY  trajectory artifact path (default BENCH_10.json)
#   MIN_SPEEDUP       required parallel speedup on >= 4 CPUs (default 2.0)
#   MIN_DELTA_SPEEDUP required full-replan/delta speedup at high arrival rate (default 5.0)
#   MIN_SELECTOR_SPEEDUP required full-race/selector-shortcut speedup (default 3.0)
#   BENCHGATE_FLAGS   extra flags passed to benchgate (e.g. "-tol-ns 50")
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_DIR=benchmarks
LATEST=$BENCH_DIR/latest.txt
BASELINE=$BENCH_DIR/baseline.json
BENCH_TIME=${BENCH_TIME:-30x}
BENCH_COUNT=${BENCH_COUNT:-10}
BENCH_LABEL=${BENCH_LABEL:-"PR 10"}
BENCH_TRAJECTORY=${BENCH_TRAJECTORY:-BENCH_10.json}
MIN_SPEEDUP=${MIN_SPEEDUP:-2.0}
MIN_DELTA_SPEEDUP=${MIN_DELTA_SPEEDUP:-5.0}
MIN_SELECTOR_SPEEDUP=${MIN_SELECTOR_SPEEDUP:-3.0}
BENCHGATE_FLAGS=${BENCHGATE_FLAGS:-}

run_bench() {
  mkdir -p "$BENCH_DIR"
  {
    go test -run '^$' -bench 'BenchmarkPortfolio|BenchmarkSelector' -benchmem -benchtime "$BENCH_TIME" \
      -count "$BENCH_COUNT" ./internal/portfolio
    go test -run '^$' -bench 'BenchmarkDES' -benchmem -benchtime "$BENCH_TIME" \
      -count "$BENCH_COUNT" ./internal/des
    go test -run '^$' -bench 'BenchmarkServe' -benchmem -benchtime "$BENCH_TIME" \
      -count "$BENCH_COUNT" ./internal/serve
    go test -run '^$' -bench 'BenchmarkFleet' -benchmem -benchtime "$BENCH_TIME" \
      -count "$BENCH_COUNT" ./internal/fleet
  } | tee "$LATEST"
}

gate() {
  # BenchmarkServeLoad/* budgets come from scripts/loadtest.sh runs, not
  # from go test, so they are out of scope here.
  # shellcheck disable=SC2086  # BENCHGATE_FLAGS is intentionally word-split
  go run ./cmd/benchgate -baseline "$BASELINE" -skip '^BenchmarkServeLoad' \
    $BENCHGATE_FLAGS "$@" "$LATEST"
}

case "${1:-run}" in
  run)
    run_bench
    gate -min-speedup "$MIN_SPEEDUP" -min-delta-speedup "$MIN_DELTA_SPEEDUP" \
      -min-selector-speedup "$MIN_SELECTOR_SPEEDUP"
    ;;
  baseline)
    run_bench
    gate -update
    echo "promoted $LATEST -> $BASELINE"
    ;;
  compare)
    run_bench
    gate -min-speedup "$MIN_SPEEDUP" -min-delta-speedup "$MIN_DELTA_SPEEDUP" \
      -min-selector-speedup "$MIN_SELECTOR_SPEEDUP" \
      -trajectory "$BENCH_TRAJECTORY" -label "$BENCH_LABEL"
    ;;
  *)
    echo "usage: scripts/bench.sh [run|baseline|compare]" >&2
    exit 2
    ;;
esac
