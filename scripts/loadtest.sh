#!/usr/bin/env bash
# End-to-end serving load test: boot cmd/coschedd on a free port, drive
# it with cmd/coscheload replaying a Poisson arrival stream as real HTTP
# requests, lint the scraped exposition, verify SIGTERM drains cleanly,
# and hold the observed tail latency and sustained throughput to the
# BenchmarkServeLoad/* budgets in benchmarks/baseline.json.
#
#   scripts/loadtest.sh                       poisson at $LOAD_RATE rps
#   LOAD_ARRIVALS=gamma scripts/loadtest.sh   bursty arrivals instead
#
# Environment:
#   LOAD_RATE      request rate per second (default 50)
#   LOAD_N         number of requests (default 200)
#   LOAD_ARRIVALS  arrival process: poisson, gamma, batch, trace or a
#                  full "process:key=value,..." spec (default poisson)
#   LOAD_ENDPOINT  endpoint to drive (default schedule)
#   LOAD_OUT       run directory (default runs/load-<stamp>)
set -euo pipefail
cd "$(dirname "$0")/.."

LOAD_RATE=${LOAD_RATE:-50}
LOAD_N=${LOAD_N:-200}
LOAD_ARRIVALS=${LOAD_ARRIVALS:-poisson}
LOAD_ENDPOINT=${LOAD_ENDPOINT:-schedule}
LOAD_OUT=${LOAD_OUT:-runs/load-$(date -u +%Y%m%d-%H%M%S)}

mkdir -p "$LOAD_OUT"

bin=$(mktemp -d)
coschedd_pid=
# One trap covers success and every `set -e` exit: no orphaned daemon
# survives a failed run, and the scratch dir always goes.
cleanup() {
  if [ -n "$coschedd_pid" ] && kill -0 "$coschedd_pid" 2>/dev/null; then
    kill "$coschedd_pid" 2>/dev/null || true
    wait "$coschedd_pid" 2>/dev/null || true
  fi
  rm -rf "$bin"
}
trap cleanup EXIT
go build -o "$bin/coschedd" ./cmd/coschedd
go build -o "$bin/coscheload" ./cmd/coscheload
go build -o "$bin/benchgate" ./cmd/benchgate
go build -o "$bin/promlint" ./cmd/promlint

addr_file="$bin/addr"
"$bin/coschedd" -addr 127.0.0.1:0 -addr-file "$addr_file" \
  >"$LOAD_OUT/coschedd.out" 2>"$LOAD_OUT/coschedd.err" &
coschedd_pid=$!

for _ in $(seq 1 100); do
  [ -s "$addr_file" ] && break
  sleep 0.1
done
if ! [ -s "$addr_file" ]; then
  echo "loadtest: coschedd never wrote its address file" >&2
  cat "$LOAD_OUT/coschedd.err" >&2
  exit 1
fi
target="http://$(cat "$addr_file")"
echo "loadtest: coschedd (pid $coschedd_pid) on $target"

"$bin/coscheload" -target "$target" -endpoint "$LOAD_ENDPOINT" \
  -arrivals "$LOAD_ARRIVALS" -rate "$LOAD_RATE" -n "$LOAD_N" \
  -out "$LOAD_OUT"

# The live exposition under load must lint as text-format 0.0.4.
"$bin/promlint" "$LOAD_OUT/metrics.prom"
echo "loadtest: scraped exposition lints"

# A mid-run-style SIGTERM must drain: coschedd exits 0 and reports the
# admission totals it served.
kill -TERM "$coschedd_pid"
if ! wait "$coschedd_pid"; then
  echo "loadtest: coschedd did not exit cleanly on SIGTERM" >&2
  exit 1
fi
coschedd_pid=
grep -q "drained:" "$LOAD_OUT/coschedd.out" || {
  echo "loadtest: drain summary missing from coschedd stdout" >&2
  exit 1
}
echo "loadtest: SIGTERM drain clean: $(cat "$LOAD_OUT/coschedd.out")"

# Gate the observed latency/throughput against the committed budgets.
# The baseline is named explicitly: the gate must not silently follow a
# changed benchgate default.
"$bin/benchgate" -baseline benchmarks/baseline.json \
  -only "^BenchmarkServeLoad/$LOAD_ENDPOINT/" \
  -tol-ns 0 -mad-k 0 "$LOAD_OUT/bench.txt"
echo "loadtest: artifacts in $LOAD_OUT"
