#!/usr/bin/env bash
# Coverage workflow (mirrors scripts/bench.sh):
#
#   scripts/coverage.sh            run `go test -cover` -> total percentage
#   scripts/coverage.sh baseline   write the current total to the baseline
#   scripts/coverage.sh compare    run, then fail on a drop > MAX_DROP points
#
# Environment:
#   MAX_DROP   allowed percentage-point drop vs baseline (default 2.0)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=benchmarks/coverage-baseline.txt
MAX_DROP=${MAX_DROP:-2.0}

# total_coverage: overall statement coverage percentage across all
# packages, from a merged cover profile. Test output is buffered and
# replayed on failure so a broken test is diagnosable from this job's
# log alone.
total_coverage() {
  local profile log
  profile=$(mktemp)
  log=$(mktemp)
  trap 'rm -f "$profile" "$log"' RETURN
  if ! go test -count=1 -coverprofile="$profile" ./... > "$log" 2>&1; then
    cat "$log" >&2
    return 1
  fi
  go tool cover -func="$profile" | awk '$1 == "total:" { sub(/%/, "", $3); print $3 }'
}

case "${1:-run}" in
  run)
    # Assign before echoing: a failure inside $(...) in an echo argument
    # would not trip `set -e`, masking a broken test suite with exit 0.
    total=$(total_coverage)
    echo "total coverage: ${total}%"
    ;;
  baseline)
    total=$(total_coverage)
    echo "$total" > "$BASELINE"
    echo "baseline set: ${total}%"
    ;;
  compare)
    [ -f "$BASELINE" ] || { echo "no baseline at $BASELINE (run: scripts/coverage.sh baseline)" >&2; exit 1; }
    base=$(cat "$BASELINE")
    total=$(total_coverage)
    echo "total coverage: ${total}% (baseline ${base}%, allowed drop ${MAX_DROP})"
    awk -v t="$total" -v b="$base" -v d="$MAX_DROP" 'BEGIN {
      if (t + d < b) {
        printf "coverage regression: %.1f%% is more than %.1f points below baseline %.1f%%\n", t, d, b
        exit 1
      }
    }'
    ;;
  *)
    echo "usage: scripts/coverage.sh [run|baseline|compare]" >&2
    exit 2
    ;;
esac
