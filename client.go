package repro

import (
	"context"
	"iter"
	"sync"

	"repro/internal/des"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/portfolio"
	"repro/internal/selector"
)

// Client is the library's v2 front door: a long-lived, concurrency-safe
// handle owning a portfolio engine, its worker pool and its memoization
// cache. Every method takes a context.Context and honors cancellation
// and deadlines promptly — the portfolio worker pool polls the context
// between heuristic evaluations, the online simulator's event loop
// checks it every few events, and the iterative heuristics poll it
// between refinement steps.
//
// Construct one Client per logical workload source and reuse it: the
// memoization cache only pays off across calls, and all calls share one
// bounded worker pool. The zero-configuration NewClient() is right for
// most uses; see the With* options for tuning.
type Client struct {
	engine     *portfolio.Engine
	heuristics []Heuristic
	seed       uint64
	desMetrics *des.Metrics
	sel        *portfolio.SelectorPolicy
	selEnabled bool
}

// clientConfig collects the functional options of NewClient.
type clientConfig struct {
	workers    int
	cache      bool
	heuristics []Heuristic
	seed       uint64
	metrics    *obs.Registry
	ledger     *selector.Ledger
	selTh      selector.Thresholds
	selEnabled bool
}

// ClientOption configures NewClient.
type ClientOption func(*clientConfig)

// WithWorkers bounds the client's worker pool: at most n heuristic
// evaluations run at once across all concurrent calls on the client.
// Values < 1 (and the default) mean GOMAXPROCS. Results are bit-for-bit
// identical at any worker count.
func WithWorkers(n int) ClientOption {
	return func(c *clientConfig) { c.workers = n }
}

// WithCache enables or disables the memoization cache (default:
// enabled). The cache memoizes solved (scenario, heuristic) pairs under
// a canonical input hash, so repeated workloads are served with zero
// recomputation; disable it for workloads that never repeat (the cache
// would only accumulate dead entries).
func WithCache(enabled bool) ClientOption {
	return func(c *clientConfig) { c.cache = enabled }
}

// WithHeuristics fixes the heuristic set raced by Best and used as the
// default for Evaluate/EvaluateBatch scenarios that do not name their
// own. The default (no option, or zero heuristics) is the full extended
// set: the paper's ten policies plus SharedCache and LocalSearch.
func WithHeuristics(hs ...Heuristic) ClientOption {
	return func(c *clientConfig) { c.heuristics = hs }
}

// WithMetrics exports the client's runtime telemetry on reg: the
// portfolio engine's race latency, cache and worker-queue series, and
// the online simulator's event, replan and per-job series (see the
// metric catalogs in internal/portfolio and internal/des). Metrics only
// record — they never feed back into scheduling decisions — so an
// instrumented client stays bit-identical to a bare one. A nil registry
// (and the default) leaves the client uninstrumented with zero
// overhead.
func WithMetrics(reg *MetricsRegistry) ClientOption {
	return func(c *clientConfig) { c.metrics = reg }
}

// WithSelector arms the client with a trained win-rate ledger: Best
// routes through the predicted-winner-first selector (see
// Client.Select) instead of always racing the full set. A nil ledger
// means an empty one — every scenario falls back to the full race, so
// an unarmed selector is bit-identical to the plain portfolio. The
// zero Thresholds value means selector.DefaultThresholds(). The ledger
// is read-only under this client (serving never learns); train and
// persist ledgers with cmd/ledger.
func WithSelector(l *SelectorLedger, th SelectorThresholds) ClientOption {
	return func(c *clientConfig) {
		c.ledger = l
		c.selTh = th
		c.selEnabled = true
	}
}

// WithSeed fixes the master seed driving the randomized heuristics
// (DominantRandom, DominantRevRandom, RandomPart) in Best and Schedule.
// Each heuristic draws from an independent substream derived from the
// seed and its position, never from execution order, so a fixed seed
// reproduces a fixed result at any worker count. The default is 0.
func WithSeed(seed uint64) ClientOption {
	return func(c *clientConfig) { c.seed = seed }
}

// NewClient returns a Client configured by the given options.
func NewClient(opts ...ClientOption) *Client {
	cfg := clientConfig{cache: true}
	for _, o := range opts {
		o(&cfg)
	}
	pcfg := portfolio.Config{Workers: cfg.workers}
	if cfg.cache {
		pcfg.Cache = portfolio.NewCache()
	}
	pcfg.Metrics = portfolio.NewMetrics(cfg.metrics)
	engine := portfolio.New(pcfg)
	return &Client{
		engine:     engine,
		heuristics: cfg.heuristics,
		seed:       cfg.seed,
		desMetrics: des.NewMetrics(cfg.metrics),
		selEnabled: cfg.selEnabled,
		sel: portfolio.NewSelector(portfolio.SelectorConfig{
			Engine:     engine,
			Ledger:     cfg.ledger,
			Thresholds: cfg.selTh,
			Metrics:    portfolio.NewSelectorMetrics(cfg.metrics),
		}),
	}
}

// defaultClient backs the deprecated free functions: one lazily
// initialized shared client, so legacy callers get memoization across
// calls instead of a transient engine (and cache) per call.
var defaultClient = sync.OnceValue(func() *Client { return NewClient() })

// DefaultClient returns the shared default client used by the
// deprecated package-level functions. It is created on first use with
// default options (GOMAXPROCS workers, memoization enabled).
func DefaultClient() *Client { return defaultClient() }

// Workers reports the size of the client's worker pool.
func (c *Client) Workers() int { return c.engine.Workers() }

// Engine exposes the client's underlying portfolio engine, for sharing
// its worker pool and cache with lower-level consumers — the experiment
// sweeps (experiments.Config.Engine) and the online portfolio policy
// (des.NewPortfolioPolicy) both accept one.
func (c *Client) Engine() *PortfolioEngine { return c.engine }

// Schedule computes a complete co-schedule for the workload with one
// heuristic, through the client's cache. Randomized heuristics draw
// from a substream of the client seed (see WithSeed); use
// Heuristic.Schedule directly to control the random stream per call.
// Failures carry the typed vocabulary: *ValidationError for bad inputs,
// *HeuristicError wrapping the failing policy, ctx.Err() when cancelled.
func (c *Client) Schedule(ctx context.Context, h Heuristic, pl Platform, apps []Application) (*Schedule, error) {
	rep, err := c.engine.EvaluateContext(ctx, PortfolioScenario{
		Platform: pl, Apps: apps, Heuristics: []Heuristic{h}, Seed: c.seed,
	})
	if err != nil {
		return nil, err
	}
	res := rep.Results[0]
	if res.Err != nil {
		return nil, res.Err
	}
	return res.Schedule, nil
}

// Best races the client's heuristic set (see WithHeuristics)
// concurrently on the worker pool and returns the schedule with the
// smallest makespan, plus the full per-heuristic report for audit. It
// returns ErrInfeasible when no heuristic produced a feasible schedule,
// and ctx.Err() — within one in-flight heuristic evaluation per worker
// — when cancelled.
//
// On a client armed with WithSelector, Best serves the ledger's
// predicted winner when the prediction clears the confidence
// thresholds — the report then audits only that single heuristic —
// and races the full set otherwise.
func (c *Client) Best(ctx context.Context, pl Platform, apps []Application) (*Schedule, *PortfolioReport, error) {
	sc := PortfolioScenario{Platform: pl, Apps: apps, Heuristics: c.heuristics, Seed: c.seed}
	var rep *PortfolioReport
	var err error
	if c.selEnabled {
		var d *SelectorDecision
		d, err = c.Select(ctx, sc)
		if d != nil {
			rep = d.Report
		}
	} else {
		rep, err = c.Evaluate(ctx, sc)
	}
	if err != nil {
		return nil, rep, err
	}
	best := rep.BestResult()
	if best == nil {
		return nil, rep, ErrInfeasible
	}
	return best.Schedule, rep, nil
}

// Select evaluates one scenario through the predicted-winner-first
// selector: when the client's ledger (see WithSelector) confidently
// predicts a winner for the scenario's feature bucket, only that
// heuristic runs — on the exact RNG substream it would have drawn
// inside the full race, so the served schedule is bit-identical to its
// full-race lane — and otherwise the full portfolio races as in
// Evaluate. The Decision records which path was taken and why. On a
// client without WithSelector the ledger is empty, so every call falls
// back to the full race with FallbackReason "no-evidence".
func (c *Client) Select(ctx context.Context, sc PortfolioScenario) (*SelectorDecision, error) {
	if len(sc.Heuristics) == 0 {
		sc.Heuristics = c.heuristics
	}
	return c.sel.Select(ctx, sc)
}

// Evaluate runs one fully-specified scenario on the worker pool and
// reports every heuristic's outcome. A scenario naming no heuristics
// inherits the client's set. The returned error is non-nil only for
// invalid scenarios and cancellation; per-heuristic failures land in
// the report.
func (c *Client) Evaluate(ctx context.Context, sc PortfolioScenario) (*PortfolioReport, error) {
	if len(sc.Heuristics) == 0 {
		sc.Heuristics = c.heuristics
	}
	return c.engine.EvaluateContext(ctx, sc)
}

// BatchResult is one scenario's outcome in a streaming EvaluateBatch:
// the scenario's position in the input stream and its full report.
type BatchResult struct {
	Index  int
	Report *PortfolioReport
}

// EvaluateBatch evaluates a stream of scenarios and emits one
// BatchResult per scenario, in input order, as each completes. The
// whole pipeline — pulling scenarios from the iterator, evaluating
// them on the worker pool, emitting reports — runs in bounded memory:
// at most 2×Workers scenarios are decoded-but-unemitted at any moment,
// so NDJSON-scale batches stream instead of buffering.
//
// Scenarios naming no heuristics inherit the client's set. A non-nil
// error from emit stops the batch and is returned; cancelling ctx stops
// it with ctx.Err() within one in-flight task per worker. Either way
// the iterator stops being pulled, in-flight evaluations are drained
// (no goroutines leak), and already-emitted results remain valid.
// Scenario-level validation failures land in the emitted report's Err
// field and do not stop the stream.
func (c *Client) EvaluateBatch(ctx context.Context, scenarios iter.Seq[PortfolioScenario], emit func(BatchResult) error) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// window bounds both the scenarios in flight (each fans its
	// heuristics out on the engine's shared semaphore) and the completed
	// reports waiting for their turn in the ordered output.
	window := 2 * c.engine.Workers()
	pending := make(chan chan *PortfolioReport, window)
	go func() {
		defer close(pending)
		for sc := range scenarios {
			if len(sc.Heuristics) == 0 {
				sc.Heuristics = c.heuristics
			}
			done := make(chan *PortfolioReport, 1)
			select {
			case pending <- done: // blocks while the window is full
			case <-cctx.Done():
				return
			}
			go func(sc PortfolioScenario) {
				// The report channel is buffered: the evaluation can
				// always hand off its result and exit, even when the
				// consumer has already abandoned the batch.
				rep, _ := c.engine.EvaluateContext(cctx, sc)
				done <- rep
			}(sc)
		}
	}()

	var emitErr error
	idx := 0
	for done := range pending {
		rep := <-done
		if emitErr != nil || cctx.Err() != nil {
			continue // draining after a failure or cancellation
		}
		if err := emit(BatchResult{Index: idx, Report: rep}); err != nil {
			emitErr = err
			cancel() // stop the producer; the loop keeps draining
		}
		idx++
	}
	if emitErr != nil {
		return emitErr
	}
	return ctx.Err()
}

// SimulateOnline runs an online co-scheduling scenario to completion on
// the discrete-event simulator: jobs arrive over virtual time and the
// scenario's policy repartitions the node at every arrival and
// completion. Deterministic per seed and bit-identical across runs and
// policy worker counts. The event loop polls ctx every few events and
// abandons a cancelled run with ctx.Err(); to share the client's worker
// pool with a portfolio repartition policy, pass Engine() to
// des.NewPortfolioPolicy.
func (c *Client) SimulateOnline(ctx context.Context, sc OnlineScenario) (*OnlineResult, error) {
	if sc.Metrics == nil {
		sc.Metrics = c.desMetrics
	}
	return des.SimulateContext(ctx, sc)
}

// SimulateFleet runs a multi-node fleet scenario to completion: every
// arrival is routed to one of the scenario's nodes by its routing
// policy, each node runs the single-node online simulator with its own
// platform and repartitioning policy, and the aggregate (routing log,
// per-node event logs, fleet-wide wait/response/stretch summaries) is
// returned. A scenario without its own Engine shares the client's
// worker pool for "portfolio" node policies, and one without Metrics
// inherits the client's instrumentation. Deterministic per seed and
// bit-identical at any worker count; cancellation aborts within a few
// arrivals with ctx.Err().
func (c *Client) SimulateFleet(ctx context.Context, sc FleetScenario) (*FleetResult, error) {
	if sc.Engine == nil {
		sc.Engine = c.engine
	}
	if sc.Metrics == nil {
		sc.Metrics = c.desMetrics
	}
	return fleet.SimulateContext(ctx, sc)
}
