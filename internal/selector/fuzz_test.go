package selector

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLedgerJSONRoundTrip: any bytes Load accepts must Save to a
// canonical form that Loads back byte-identically — the fixed point the
// conform fixture and cross-run accumulation rely on. Everything else
// must be rejected with an error, never a panic.
func FuzzLedgerJSONRoundTrip(f *testing.F) {
	f.Add([]byte(`{"schema":"repro-ledger/v1","buckets":{}}`))
	f.Add([]byte(`{"schema":"repro-ledger/v1","buckets":{"n=3|seq=0|fp=1|lat=0|skew=0|freq=2|miss=-3":{"DominantMinRatio":{"races":4,"wins":3,"margins":[1,1,1.25,1]}}}}`))
	f.Add([]byte(`{"schema":"repro-ledger/v1","buckets":{"b":{"SharedCache":{"races":1,"wins":0,"margins":[2.5]},"LocalSearch":{"races":1,"wins":1,"margins":[1]}}}}`))
	f.Add([]byte(`{"schema":"repro-ledger/v0","buckets":{"b":{"DominantMinRatio":{"races":1,"wins":1,"margins":[0.5]}}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := l.Save(&first); err != nil {
			t.Fatalf("Save after successful Load: %v", err)
		}
		l2, err := Load(strings.NewReader(first.String()))
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := l2.Save(&second); err != nil {
			t.Fatal(err)
		}
		if first.String() != second.String() {
			t.Fatalf("canonical form not a fixed point:\n%s\nvs\n%s", first.String(), second.String())
		}
		if l.Fingerprint() != l2.Fingerprint() {
			t.Fatal("fingerprint unstable across round trip")
		}
	})
}
