// Package selector implements learned heuristic selection: a
// deterministic feature extractor over scheduling scenarios, and a
// win-rate ledger accumulating per-(feature-bucket, heuristic) race
// outcomes across runs. The portfolio's selector policy consults the
// ledger to run the predicted winner first and fall back to the full
// race only when the prediction is not confident.
//
// The package is deliberately dependency-light — model, sched, stats —
// so it can sit below both the portfolio engine and the simulators
// without import cycles.
package selector

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/model"
)

// Features is the deterministic description of one scenario the ledger
// keys on: workload shape only, never absolute identity, so scenarios
// that differ only in seed or naming land in the same bucket.
type Features struct {
	Apps          int     // number of co-scheduled applications
	SeqMean       float64 // mean sequential fraction s_i
	SeqMax        float64 // worst sequential fraction
	CachePressure float64 // mean of min(1, a_i/Cs); unbounded footprints count as 1
	LatencyRatio  float64 // ll/ls (miss penalty over hit cost); +Inf when ls == 0 and ll > 0
	WorkSkew      float64 // max w_i / mean w_i, 1 for perfectly balanced work
	FreqMean      float64 // mean access frequency f_i
	MissMean      float64 // mean reference miss rate m_i(C0)
}

// Extract computes the features of (pl, apps). It is a pure function of
// its arguments: identical inputs produce bit-identical features on any
// platform and at any worker count. Extract does not validate — garbage
// in, garbage features out — because every entry point that feeds the
// ledger already validated the scenario.
func Extract(pl model.Platform, apps []model.Application) Features {
	f := Features{Apps: len(apps)}
	if len(apps) == 0 {
		return f
	}
	var seqSum, fpSum, workSum, freqSum, missSum, workMax float64
	for _, a := range apps {
		seqSum += a.SeqFraction
		f.SeqMax = math.Max(f.SeqMax, a.SeqFraction)
		pressure := 1.0 // unbounded footprint: wants the whole cache
		if a.Footprint > 0 && pl.CacheSize > 0 {
			pressure = math.Min(1, a.Footprint/pl.CacheSize)
		}
		fpSum += pressure
		workSum += a.Work
		workMax = math.Max(workMax, a.Work)
		freqSum += a.AccessFreq
		missSum += a.RefMissRate
	}
	n := float64(len(apps))
	f.SeqMean = seqSum / n
	f.CachePressure = fpSum / n
	f.FreqMean = freqSum / n
	f.MissMean = missSum / n
	switch {
	case pl.LatencyS > 0:
		f.LatencyRatio = pl.LatencyL / pl.LatencyS
	case pl.LatencyL > 0:
		f.LatencyRatio = math.Inf(1)
	default:
		f.LatencyRatio = 0
	}
	if mean := workSum / n; mean > 0 {
		f.WorkSkew = workMax / mean
	} else {
		f.WorkSkew = 1
	}
	return f
}

// Bucket quantizes the features into the coarse key the ledger
// aggregates under. The grid is deliberately blunt — a handful of
// scenarios per family is enough to populate a bucket — and committed:
// changing any boundary invalidates every trained ledger, which the
// schema version guards (bump SchemaVersion when touching this).
func (f Features) Bucket() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d", clampInt(f.Apps, 0, 8))
	fmt.Fprintf(&b, "|seq=%d", clampInt(int(math.Floor(f.SeqMean*20)), 0, 20))
	fmt.Fprintf(&b, "|fp=%d", clampInt(int(math.Floor(f.CachePressure/0.25)), 0, 4))
	fmt.Fprintf(&b, "|lat=%d", logBucket(f.LatencyRatio, 10, -1, 7))
	fmt.Fprintf(&b, "|skew=%d", logBucket(f.WorkSkew, 2, 0, 10))
	fmt.Fprintf(&b, "|freq=%d", clampInt(int(math.Floor(f.FreqMean/0.25)), 0, 4))
	fmt.Fprintf(&b, "|miss=%d", logBucket(f.MissMean, 10, -6, 0))
	return b.String()
}

// Fingerprint returns a short stable hash of the exact (unquantized)
// features: bit-identical features yield identical fingerprints on any
// platform, because each float is encoded via its shortest hex
// representation rather than a locale- or precision-dependent format.
func (f Features) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "%d", f.Apps)
	for _, v := range []float64{
		f.SeqMean, f.SeqMax, f.CachePressure, f.LatencyRatio,
		f.WorkSkew, f.FreqMean, f.MissMean,
	} {
		h.Write([]byte{'|'})
		h.Write([]byte(strconv.FormatFloat(v, 'x', -1, 64)))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// logBucket returns floor(log_base(v)) clamped to [lo, hi]; v <= 0 (and
// NaN) map below the range to lo-1, a distinct "absent" bucket.
func logBucket(v, base float64, lo, hi int) int {
	if !(v > 0) {
		return lo - 1
	}
	l := math.Log(v) / math.Log(base)
	if math.IsNaN(l) {
		return lo - 1
	}
	return clampInt(int(math.Floor(l)), lo, hi)
}
