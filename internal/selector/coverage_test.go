// External test package: genscen transitively imports selector (via
// des), so this test cannot live in package selector without an import
// cycle.
package selector_test

import (
	"strings"
	"testing"

	"repro/internal/genscen"
	"repro/internal/selector"
)

// The bucket key is committed: every genscen family must map to a
// stable, parseable key, and distinct regimes must not all collapse
// into one bucket.
func TestBucketCoverage(t *testing.T) {
	seen := map[string]bool{}
	for _, fam := range genscen.Families {
		for seed := uint64(1); seed <= 10; seed++ {
			in, err := genscen.Generate(fam, seed, genscen.Config{})
			if err != nil {
				t.Fatalf("%v seed %d: %v", fam, seed, err)
			}
			b := selector.Extract(in.Platform, in.Apps).Bucket()
			if !strings.HasPrefix(b, "n=") || strings.Count(b, "|") != 6 {
				t.Fatalf("malformed bucket %q", b)
			}
			seen[b] = true
		}
	}
	if len(seen) < 5 {
		t.Fatalf("bucket grid too coarse: %d distinct buckets over all families", len(seen))
	}
}
