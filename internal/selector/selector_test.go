package selector

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sched"
)

func npbApps() []model.Application {
	return []model.Application{
		{Name: "bt", Work: 6e10, SeqFraction: 0.02, AccessFreq: 0.6, Footprint: 12e9, RefMissRate: 4e-3, RefCacheSize: 1e9},
		{Name: "lu", Work: 1e11, SeqFraction: 0.05, AccessFreq: 0.5, Footprint: 24e9, RefMissRate: 2e-3, RefCacheSize: 1e9},
		{Name: "sp", Work: 3e10, SeqFraction: 0.01, AccessFreq: 0.8, Footprint: 0, RefMissRate: 8e-3, RefCacheSize: 1e9},
	}
}

func TestExtractDeterministic(t *testing.T) {
	pl := model.TaihuLight()
	apps := npbApps()
	f1 := Extract(pl, apps)
	f2 := Extract(pl, append([]model.Application(nil), apps...))
	if f1 != f2 {
		t.Fatalf("Extract not deterministic: %+v vs %+v", f1, f2)
	}
	if f1.Fingerprint() != f2.Fingerprint() {
		t.Fatal("fingerprints differ for identical features")
	}
	if f1.Bucket() != f2.Bucket() {
		t.Fatal("buckets differ for identical features")
	}
	if f1.Apps != 3 {
		t.Fatalf("Apps = %d, want 3", f1.Apps)
	}
	// Unbounded footprint counts as full pressure.
	want := (math.Min(1, 12e9/pl.CacheSize) + math.Min(1, 24e9/pl.CacheSize) + 1) / 3
	if math.Abs(f1.CachePressure-want) > 1e-12 {
		t.Fatalf("CachePressure = %v, want %v", f1.CachePressure, want)
	}
	// Renaming apps must not move the scenario to another bucket.
	renamed := npbApps()
	for i := range renamed {
		renamed[i].Name = "x"
	}
	if Extract(pl, renamed).Bucket() != f1.Bucket() {
		t.Fatal("bucket depends on app names")
	}
}

func TestRaceRecordsAndObserve(t *testing.T) {
	outs := []Outcome{
		{Heuristic: sched.DominantMinRatio, Makespan: 10, OK: true},
		{Heuristic: sched.DominantMaxRatio, Makespan: 12, OK: true},
		{Heuristic: sched.RandomPart, Makespan: 0, OK: false},
	}
	recs := Race("b1", outs)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if !recs[0].Win || recs[0].Margin != 1 || recs[0].Heuristic != "DominantMinRatio" {
		t.Fatalf("winner record wrong: %+v", recs[0])
	}
	if recs[1].Win || math.Abs(recs[1].Margin-1.2) > 1e-12 {
		t.Fatalf("loser record wrong: %+v", recs[1])
	}

	l := New()
	for range [5]struct{}{} {
		l.Observe("b1", outs)
	}
	p, ok := l.Predict("b1", []sched.Heuristic{sched.DominantMaxRatio, sched.DominantMinRatio})
	if !ok || p.Heuristic != sched.DominantMinRatio {
		t.Fatalf("Predict = %+v ok=%v, want DominantMinRatio", p, ok)
	}
	if p.Races != 5 || p.Wins != 5 || p.WinRate != 1 || p.Gap != 1 {
		t.Fatalf("prediction evidence wrong: %+v", p)
	}
	if math.Abs(p.Advantage-1.2) > 1e-12 {
		t.Fatalf("Advantage = %v, want 1.2", p.Advantage)
	}
	if !p.Confident(DefaultThresholds()) {
		t.Fatalf("prediction should clear default thresholds: %+v", p)
	}
	if p.Confident(Thresholds{MinRaces: 6}) {
		t.Fatal("MinRaces threshold not applied")
	}
	if _, ok := l.Predict("nope", sched.ExtendedHeuristics); ok {
		t.Fatal("unknown bucket must not predict")
	}
	if _, ok := l.Predict("b1", []sched.Heuristic{sched.LocalSearch}); ok {
		t.Fatal("candidate without evidence must not predict")
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	l := New()
	l.Observe("b1", []Outcome{
		{Heuristic: sched.DominantMinRatio, Makespan: 10, OK: true},
		{Heuristic: sched.SharedCache, Makespan: 15, OK: true},
	})
	l.Observe("b2", []Outcome{{Heuristic: sched.Fair, Makespan: 3, OK: true}})

	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	got, err := Load(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.buckets, l.buckets) {
		t.Fatalf("round trip changed contents:\n%s", first)
	}
	var buf2 bytes.Buffer
	if err := got.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatalf("Save not canonical:\n%s\nvs\n%s", first, buf2.String())
	}
	if got.Fingerprint() != l.Fingerprint() {
		t.Fatal("fingerprint changed across round trip")
	}
}

func TestLedgerMergeAccumulates(t *testing.T) {
	a, b := New(), New()
	outs := []Outcome{{Heuristic: sched.DominantMinRatio, Makespan: 2, OK: true}}
	a.Observe("b1", outs)
	b.Observe("b1", outs)
	b.Observe("b2", outs)
	a.Merge(b)
	c, ok := a.Cell("b1", sched.DominantMinRatio)
	if !ok || c.Races != 2 || c.Wins != 2 || len(c.Margins) != 2 {
		t.Fatalf("merged cell wrong: %+v ok=%v", c, ok)
	}
	if _, ok := a.Cell("b2", sched.DominantMinRatio); !ok {
		t.Fatal("merge dropped new bucket")
	}
	if got := len(a.Buckets()); got != 2 {
		t.Fatalf("Buckets() = %d, want 2", got)
	}
	if a.Races() != 3 {
		t.Fatalf("Races() = %d, want 3", a.Races())
	}
}

func TestLedgerLoadRejectsCorruption(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"bad schema", `{"schema":"repro-ledger/v0","buckets":{}}`},
		{"unknown heuristic", `{"schema":"repro-ledger/v1","buckets":{"b":{"NotAHeuristic":{"races":1,"wins":1,"margins":[1]}}}}`},
		{"nan margin", `{"schema":"repro-ledger/v1","buckets":{"b":{"DominantMinRatio":{"races":1,"wins":1,"margins":[null]}}}}`},
		{"inf margin", `{"schema":"repro-ledger/v1","buckets":{"b":{"DominantMinRatio":{"races":1,"wins":1,"margins":[1e999]}}}}`},
		{"sub-1 margin", `{"schema":"repro-ledger/v1","buckets":{"b":{"DominantMinRatio":{"races":1,"wins":1,"margins":[0.5]}}}}`},
		{"wins exceed races", `{"schema":"repro-ledger/v1","buckets":{"b":{"DominantMinRatio":{"races":1,"wins":2}}}}`},
		{"negative races", `{"schema":"repro-ledger/v1","buckets":{"b":{"DominantMinRatio":{"races":-1,"wins":-1}}}}`},
		{"margins exceed races", `{"schema":"repro-ledger/v1","buckets":{"b":{"DominantMinRatio":{"races":1,"wins":1,"margins":[1,1]}}}}`},
		{"empty bucket key", `{"schema":"repro-ledger/v1","buckets":{"":{"DominantMinRatio":{"races":1,"wins":1,"margins":[1]}}}}`},
		{"null cell", `{"schema":"repro-ledger/v1","buckets":{"b":{"DominantMinRatio":null}}}`},
	}
	for _, tc := range cases {
		_, err := Load(strings.NewReader(tc.body))
		if err == nil {
			t.Errorf("%s: Load accepted corrupt ledger", tc.name)
			continue
		}
		var verr *model.ValidationError
		// JSON cannot carry NaN/Inf literals, so those two cases die in
		// the decoder (null -> 0 margin, 1e999 -> range error) rather
		// than in validation; every in-range corruption must surface as
		// a *model.ValidationError.
		if tc.name != "inf margin" && !errors.As(err, &verr) {
			t.Errorf("%s: error %v is not a *model.ValidationError", tc.name, err)
		}
	}
	// A NaN that survives JSON decoding (null -> 0) and a syntactically
	// broken file both fail; ingest-side NaN is checked directly:
	err := New().Ingest(RaceRecord{Bucket: "b", Heuristic: "DominantMinRatio", Win: true, Margin: math.NaN()})
	var verr *model.ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("Ingest(NaN margin) = %v, want *model.ValidationError", err)
	}
	err = New().Ingest(RaceRecord{Bucket: "b", Heuristic: "Bogus", Win: true, Margin: 1})
	if !errors.As(err, &verr) {
		t.Fatalf("Ingest(unknown heuristic) = %v, want *model.ValidationError", err)
	}
}

func TestMarginReservoirCap(t *testing.T) {
	l := New()
	outs := []Outcome{{Heuristic: sched.DominantMinRatio, Makespan: 1, OK: true}}
	for range [2 * maxMargins]struct{}{} {
		l.Observe("b", outs)
	}
	c, _ := l.Cell("b", sched.DominantMinRatio)
	if len(c.Margins) != maxMargins {
		t.Fatalf("reservoir holds %d margins, want cap %d", len(c.Margins), maxMargins)
	}
	if c.Races != 2*maxMargins {
		t.Fatalf("Races = %d, want %d", c.Races, 2*maxMargins)
	}
}
