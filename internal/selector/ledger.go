package selector

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Schema is the versioned identifier of the ledger's JSON form. It
// covers the bucket grid too (see Features.Bucket): a ledger trained
// under one grid is meaningless under another, so grid changes must
// bump this string and old files are rejected on load instead of
// silently mispredicting.
const Schema = "repro-ledger/v1"

// maxMargins caps the per-(bucket, heuristic) margin reservoir. The
// first maxMargins observations are kept and later ones only update
// the counters — a deterministic "first N" policy, so a ledger trained
// by a deterministic sweep is bit-identical at any worker count.
const maxMargins = 64

// Cell is the ledger's aggregate for one (bucket, heuristic) pair:
// how many races the heuristic entered, how many it won, and a bounded
// sample of its margins (makespan over the race winner's makespan,
// 1.0 when it won).
type Cell struct {
	Races   int       `json:"races"`
	Wins    int       `json:"wins"`
	Margins []float64 `json:"margins,omitempty"`
}

// MedianMargin is the cell's robust predicted gap: the median of the
// recorded margins, or NaN when none were recorded.
func (c Cell) MedianMargin() float64 { return stats.Median(c.Margins) }

// WinRate is Wins/Races, or 0 when the cell is empty.
func (c Cell) WinRate() float64 {
	if c.Races == 0 {
		return 0
	}
	return float64(c.Wins) / float64(c.Races)
}

// Ledger accumulates race outcomes per (feature bucket, heuristic). It
// is not safe for concurrent mutation; the portfolio policy serializes
// writes behind its own lock.
type Ledger struct {
	buckets map[string]map[string]*Cell
}

// New returns an empty ledger.
func New() *Ledger {
	return &Ledger{buckets: make(map[string]map[string]*Cell)}
}

// RaceRecord is one heuristic's outcome in one race — the ledger's
// NDJSON ingest format, emitted by `cosched -portfolio -telemetry` and
// consumed by `ledger train`. Margin is the heuristic's makespan
// divided by the race winner's (1.0 for the winner itself).
type RaceRecord struct {
	Bucket    string  `json:"bucket"`
	Heuristic string  `json:"heuristic"`
	Win       bool    `json:"win"`
	Margin    float64 `json:"margin"`
}

func (rr RaceRecord) validate() (sched.Heuristic, error) {
	if rr.Bucket == "" {
		return 0, &model.ValidationError{Field: "ledger.record.bucket", Reason: "empty feature bucket"}
	}
	h, err := sched.ParseHeuristic(rr.Heuristic)
	if err != nil {
		return 0, &model.ValidationError{Field: "ledger.record.heuristic", Value: rr.Heuristic, Reason: "unknown heuristic"}
	}
	if err := validMargin(rr.Margin); err != nil {
		return 0, err
	}
	return h, nil
}

func validMargin(m float64) error {
	if math.IsNaN(m) || math.IsInf(m, 0) || m < 1 {
		return &model.ValidationError{Field: "ledger.margin", Value: m, Reason: "margin must be finite and >= 1"}
	}
	return nil
}

// Ingest records one RaceRecord, validating it first: unknown
// heuristic names and non-finite margins are *model.ValidationError.
func (l *Ledger) Ingest(rr RaceRecord) error {
	h, err := rr.validate()
	if err != nil {
		return err
	}
	l.add(rr.Bucket, h, rr.Win, rr.Margin)
	return nil
}

func (l *Ledger) add(bucket string, h sched.Heuristic, win bool, margin float64) {
	cells := l.buckets[bucket]
	if cells == nil {
		cells = make(map[string]*Cell)
		l.buckets[bucket] = cells
	}
	name := h.String()
	c := cells[name]
	if c == nil {
		c = &Cell{}
		cells[name] = c
	}
	c.Races++
	if win {
		c.Wins++
	}
	if len(c.Margins) < maxMargins {
		c.Margins = append(c.Margins, margin)
	}
}

// Outcome is one heuristic's result in a finished race, as the caller
// observed it. OK is false for infeasible or failed evaluations, which
// enter no records.
type Outcome struct {
	Heuristic sched.Heuristic
	Makespan  float64
	OK        bool
}

// Race converts a finished race into its ledger records. The winner is
// the minimum finite makespan, ties broken toward the earliest outcome
// — the same rule the portfolio's BestIndex applies — so the records
// agree with the report the caller already served. Outcomes that are
// not OK, or whose margin would be non-finite, yield no record.
func Race(bucket string, outs []Outcome) []RaceRecord {
	best := -1
	for i, o := range outs {
		if !o.OK || math.IsNaN(o.Makespan) || math.IsInf(o.Makespan, 0) {
			continue
		}
		if best < 0 || o.Makespan < outs[best].Makespan {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	bm := outs[best].Makespan
	var recs []RaceRecord
	for i, o := range outs {
		if !o.OK {
			continue
		}
		margin := 1.0
		if i != best && bm > 0 {
			margin = o.Makespan / bm
		}
		if validMargin(margin) != nil {
			continue
		}
		recs = append(recs, RaceRecord{
			Bucket:    bucket,
			Heuristic: o.Heuristic.String(),
			Win:       i == best,
			Margin:    margin,
		})
	}
	return recs
}

// Observe ingests every record of one finished race.
func (l *Ledger) Observe(bucket string, outs []Outcome) {
	for _, rr := range Race(bucket, outs) {
		// Records built by Race are valid by construction.
		h, _ := sched.ParseHeuristic(rr.Heuristic)
		l.add(rr.Bucket, h, rr.Win, rr.Margin)
	}
}

// Prediction is the ledger's answer for one bucket: the heuristic
// predicted to win, with the evidence behind the call.
type Prediction struct {
	Heuristic sched.Heuristic
	Bucket    string
	Races     int     // races the predicted winner has entered in this bucket
	Wins      int     // ... and won
	WinRate   float64 // Wins / Races
	Gap       float64 // predicted margin vs the race winner (median, >= 1)
	Advantage float64 // runner-up's predicted gap over the winner's (+Inf with no runner-up)
}

// Thresholds gates when a prediction is confident enough to skip the
// full race. Zero values are permissive; DefaultThresholds returns the
// committed defaults.
type Thresholds struct {
	MinRaces     int     // evidence floor for the predicted winner's cell
	MinWinRate   float64 // the predicted winner must win at least this often
	MaxGap       float64 // predicted median margin must not exceed this (0 = no cap)
	MinAdvantage float64 // runner-up's gap must exceed the winner's by this factor
}

// DefaultThresholds is the committed confidence gate: at least 3 races
// of evidence, a majority win rate, and a predicted gap within 1%.
func DefaultThresholds() Thresholds {
	return Thresholds{MinRaces: 3, MinWinRate: 0.5, MaxGap: 1.01, MinAdvantage: 1.0}
}

// Confident reports whether the prediction clears every threshold.
func (p Prediction) Confident(th Thresholds) bool {
	if p.Races < th.MinRaces {
		return false
	}
	if p.WinRate < th.MinWinRate {
		return false
	}
	if th.MaxGap > 0 && !(p.Gap <= th.MaxGap) {
		return false
	}
	return p.Advantage >= th.MinAdvantage
}

// Predict returns the candidate with the smallest predicted margin in
// the bucket (ties: higher win rate, then earlier candidate). The
// second return is false when no candidate has any recorded evidence.
// The choice is a pure function of (ledger, bucket, candidates), so
// selection is bit-deterministic at any worker count.
func (l *Ledger) Predict(bucket string, candidates []sched.Heuristic) (Prediction, bool) {
	cells := l.buckets[bucket]
	if cells == nil {
		return Prediction{}, false
	}
	win, runner := -1, math.NaN()
	var winGap, winRate float64
	for i, h := range candidates {
		c := cells[h.String()]
		if c == nil || c.Races == 0 || len(c.Margins) == 0 {
			continue
		}
		gap, rate := c.MedianMargin(), c.WinRate()
		better := win < 0 || gap < winGap || (gap == winGap && rate > winRate)
		if better {
			if win >= 0 && (math.IsNaN(runner) || winGap < runner) {
				runner = winGap
			}
			win, winGap, winRate = i, gap, rate
		} else if math.IsNaN(runner) || gap < runner {
			runner = gap
		}
	}
	if win < 0 {
		return Prediction{}, false
	}
	c := cells[candidates[win].String()]
	p := Prediction{
		Heuristic: candidates[win],
		Bucket:    bucket,
		Races:     c.Races,
		Wins:      c.Wins,
		WinRate:   winRate,
		Gap:       winGap,
		Advantage: math.Inf(1),
	}
	if !math.IsNaN(runner) && winGap > 0 {
		p.Advantage = runner / winGap
	}
	return p, true
}

// Merge folds other into l: counters add, margin reservoirs concatenate
// up to the cap. Buckets only in other are copied.
func (l *Ledger) Merge(other *Ledger) {
	for bucket, cells := range other.buckets {
		for name, c := range cells {
			h, err := sched.ParseHeuristic(name)
			if err != nil {
				continue // foreign ledgers are validated on load; belt and braces
			}
			dst := l.buckets[bucket]
			if dst == nil {
				dst = make(map[string]*Cell)
				l.buckets[bucket] = dst
			}
			d := dst[h.String()]
			if d == nil {
				d = &Cell{}
				dst[h.String()] = d
			}
			d.Races += c.Races
			d.Wins += c.Wins
			for _, m := range c.Margins {
				if len(d.Margins) >= maxMargins {
					break
				}
				d.Margins = append(d.Margins, m)
			}
		}
	}
}

// Buckets returns the bucket keys in sorted order.
func (l *Ledger) Buckets() []string {
	out := make([]string, 0, len(l.buckets))
	for b := range l.buckets {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Cell returns the aggregate for (bucket, h) and whether it exists.
// The returned cell is a copy; its Margins slice is shared and must be
// treated as read-only.
func (l *Ledger) Cell(bucket string, h sched.Heuristic) (Cell, bool) {
	c := l.buckets[bucket][h.String()]
	if c == nil {
		return Cell{}, false
	}
	return *c, true
}

// Races returns the total race count across every cell (each race
// increments every participating heuristic's cell once).
func (l *Ledger) Races() int {
	n := 0
	for _, cells := range l.buckets {
		for _, c := range cells {
			n += c.Races
		}
	}
	return n
}

// ledgerJSON is the versioned on-disk form (runs/ledger.json).
type ledgerJSON struct {
	Schema  string                      `json:"schema"`
	Buckets map[string]map[string]*Cell `json:"buckets"`
}

// Save writes the ledger as indented JSON. Map keys serialize sorted,
// so the bytes are a canonical function of the ledger's contents —
// Fingerprint and the conform digests rely on that.
func (l *Ledger) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ledgerJSON{Schema: Schema, Buckets: l.buckets})
}

// Load parses and validates a ledger. Schema mismatches, unknown
// heuristic names, non-finite or sub-1 margins, and inconsistent
// counters are all *model.ValidationError — a corrupt or stale ledger
// must fail loudly, not mispredict quietly.
func Load(r io.Reader) (*Ledger, error) {
	var lj ledgerJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&lj); err != nil {
		return nil, fmt.Errorf("selector: parsing ledger: %w", err)
	}
	if lj.Schema != Schema {
		return nil, &model.ValidationError{Field: "ledger.schema", Value: lj.Schema, Reason: fmt.Sprintf("unsupported schema (want %q)", Schema)}
	}
	l := New()
	for bucket, cells := range lj.Buckets {
		if bucket == "" {
			return nil, &model.ValidationError{Field: "ledger.buckets", Reason: "empty feature bucket key"}
		}
		for name, c := range cells {
			field := fmt.Sprintf("ledger.buckets[%q][%q]", bucket, name)
			if _, err := sched.ParseHeuristic(name); err != nil {
				return nil, &model.ValidationError{Field: field, Value: name, Reason: "unknown heuristic"}
			}
			if c == nil {
				return nil, &model.ValidationError{Field: field, Reason: "null cell"}
			}
			if c.Races < 0 || c.Wins < 0 || c.Wins > c.Races {
				return nil, &model.ValidationError{Field: field, Value: fmt.Sprintf("wins=%d races=%d", c.Wins, c.Races), Reason: "inconsistent counters"}
			}
			if len(c.Margins) > c.Races {
				return nil, &model.ValidationError{Field: field, Value: len(c.Margins), Reason: "more margins than races"}
			}
			for i, m := range c.Margins {
				if err := validMargin(m); err != nil {
					return nil, &model.ValidationError{Field: fmt.Sprintf("%s.margins[%d]", field, i), Value: m, Reason: "margin must be finite and >= 1"}
				}
			}
		}
		if len(cells) > 0 {
			l.buckets[bucket] = cells
		}
	}
	return l, nil
}

// Fingerprint is a short stable hash of the canonical JSON form — the
// identity the conform report records for the fixture it selected
// from.
func (l *Ledger) Fingerprint() string {
	h := sha256.New()
	if err := l.Save(h); err != nil {
		return "unhashable"
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
