package selector

import (
	"fmt"
	"os"
	"path/filepath"
)

// LoadFile loads and validates a ledger from path (see Load).
func LoadFile(path string) (*Ledger, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

// SaveFile writes the ledger to path atomically: a temp file in the
// same directory, then a rename, so a crashed or concurrent training
// run can never leave a half-written ledger behind. The parent
// directory is created when missing (the default runs/ledger.json
// lives in a gitignored directory that may not exist yet).
func (l *Ledger) SaveFile(path string) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := l.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
