package des

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/solve"
)

// driveNode replays an arrival stream through a Node the way the fleet
// router does — advance to each arrival instant, inject, drain at the
// end — and returns the result.
func driveNode(t *testing.T, cfg NodeConfig, proc ArrivalProcess) *Result {
	t.Helper()
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	for {
		a, ok := proc.Next()
		if !ok {
			break
		}
		if err := n.AdvanceBefore(a.Time); err != nil {
			t.Fatalf("AdvanceBefore(%g): %v", a.Time, err)
		}
		if err := n.Inject(a); err != nil {
			t.Fatalf("Inject(t=%g): %v", a.Time, err)
		}
	}
	res, err := n.Finish(context.Background())
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return res
}

// TestNodeMatchesSimulate is the node layer's defining property: a
// single Node fed an arrival stream one arrival at a time — the fleet
// driving pattern — produces a Result bit-identical to Simulate
// consuming the same stream in its closed loop, for every policy kind
// and for arrival processes with simultaneous arrivals (whose
// same-instant batching is the delicate part of the equivalence).
func TestNodeMatchesSimulate(t *testing.T) {
	pl := model.TaihuLight()
	apps := testApps(t, 5)
	factory, err := CycleApps(apps)
	if err != nil {
		t.Fatal(err)
	}
	procs := map[string]func() ArrivalProcess{
		"poisson": func() ArrivalProcess {
			p, err := NewPoisson(2e-9, 24, factory, solve.NewRNG(11))
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"batch": func() ArrivalProcess {
			// Simultaneous arrivals every interval: exercises the
			// same-instant event batching across the Inject boundary.
			p, err := NewBatch(4e8, 3, 12, factory)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"gamma": func() ArrivalProcess {
			p, err := NewGammaBursts(2, 3e8, 4, 16, factory, solve.NewRNG(5))
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
	for _, spec := range []string{"DominantMinRatio", "portfolio", "norepartition"} {
		for name, mk := range procs {
			mkPolicy := func() Policy {
				pol, err := ParsePolicy(spec, 2, 42)
				if err != nil {
					t.Fatal(err)
				}
				return pol
			}
			want, err := Simulate(Scenario{
				Platform: pl, Arrivals: mk(), Policy: mkPolicy(), MaxResident: 3,
			})
			if err != nil {
				t.Fatalf("%s/%s: Simulate: %v", spec, name, err)
			}
			got := driveNode(t, NodeConfig{Platform: pl, Policy: mkPolicy(), MaxResident: 3}, mk())
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%s: node-driven result differs from Simulate\nsim:  makespan=%v events=%d reparts=%d\nnode: makespan=%v events=%d reparts=%d",
					spec, name, want.Makespan, len(want.Events), want.Repartitions,
					got.Makespan, len(got.Events), got.Repartitions)
			}
		}
	}
}

// TestNodeAccessors sanity-checks the router-facing state queries.
func TestNodeAccessors(t *testing.T) {
	pl := model.TaihuLight()
	apps := testApps(t, 2)
	pol, err := ParsePolicy("DominantMinRatio", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(NodeConfig{Platform: pl, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.JobsInSystem(); got != 0 {
		t.Errorf("idle node: JobsInSystem = %d, want 0", got)
	}
	if got := n.BacklogAt(0); got != 0 {
		t.Errorf("idle node: BacklogAt(0) = %v, want 0", got)
	}
	for i, a := range apps {
		if err := n.Inject(Arrival{Time: float64(i), App: a}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AdvanceBefore(2); err != nil {
		t.Fatal(err)
	}
	if got := n.JobsInSystem(); got != 2 {
		t.Errorf("JobsInSystem = %d, want 2", got)
	}
	b2 := n.BacklogAt(2)
	if !(b2 > 0) {
		t.Errorf("BacklogAt(2) = %v, want > 0", b2)
	}
	if b3 := n.BacklogAt(3); b3 > b2 {
		t.Errorf("backlog grew with t: BacklogAt(3)=%v > BacklogAt(2)=%v", b3, b2)
	}
	names := 0
	n.VisitUnfinished(func(name string, remaining float64) {
		names++
		if name == "" || !(remaining > 0) || remaining > 1 {
			t.Errorf("VisitUnfinished(%q, %v): malformed", name, remaining)
		}
	})
	if names != 2 {
		t.Errorf("VisitUnfinished visited %d jobs, want 2", names)
	}
	if _, err := n.Finish(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestNodeValidation covers construction and injection error paths.
func TestNodeValidation(t *testing.T) {
	pl := model.TaihuLight()
	pol, err := ParsePolicy("DominantMinRatio", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode(NodeConfig{Platform: pl}); err == nil {
		t.Error("NewNode accepted a nil policy")
	}
	if _, err := NewNode(NodeConfig{Platform: model.Platform{}, Policy: pol}); err == nil {
		t.Error("NewNode accepted an invalid platform")
	}
	if _, err := NewNode(NodeConfig{Platform: pl, Policy: pol, MaxResident: -1}); err == nil {
		t.Error("NewNode accepted a negative residency cap")
	}

	n, err := NewNode(NodeConfig{Platform: pl, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	app := testApps(t, 1)[0]
	if err := n.Inject(Arrival{Time: math.NaN(), App: app}); err == nil {
		t.Error("Inject accepted a NaN arrival time")
	}
	if err := n.Inject(Arrival{Time: 5, App: app}); err != nil {
		t.Fatal(err)
	}
	if err := n.Inject(Arrival{Time: 4, App: app}); err == nil {
		t.Error("Inject accepted arrivals going backwards")
	}
	// Drain past the job's completion so the node clock runs ahead of
	// the last arrival time; an injection between the two must fail.
	exe := app.Exe(pl, pl.Processors, 1)
	if err := n.AdvanceBefore(5 + 2*exe); err != nil {
		t.Fatal(err)
	}
	if n.Now() <= 6 {
		t.Fatalf("node clock %v did not pass the completion", n.Now())
	}
	if err := n.Inject(Arrival{Time: 6, App: app}); err == nil {
		t.Error("Inject accepted an arrival behind the node clock")
	}
	if _, err := n.Finish(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := n.Inject(Arrival{Time: 99, App: app}); err == nil {
		t.Error("Inject accepted work on a finished node")
	}
	if err := n.AdvanceBefore(99); err == nil {
		t.Error("AdvanceBefore ran on a finished node")
	}
	if _, err := n.Finish(context.Background()); err == nil {
		t.Error("Finish ran twice")
	}
}

// TestNodeEmpty: a node that never received a job drains to an empty
// result.
func TestNodeEmpty(t *testing.T) {
	pol, err := ParsePolicy("DominantMinRatio", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(NodeConfig{Platform: model.TaihuLight(), Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Finish(context.Background())
	if err != nil {
		t.Fatalf("Finish on an empty node: %v", err)
	}
	if len(res.Jobs) != 0 || len(res.Events) != 0 || res.Makespan != 0 {
		t.Errorf("empty node produced a non-empty result: %+v", res)
	}
}
