package des

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sched"
)

// metricsSpec is the shared scenario of the instrumentation tests: a
// capped node under a Poisson stream, so arrivals queue, waves drain,
// and the replanning fast path actually fires.
func metricsSpec(policy string) Spec {
	return Spec{
		Arrivals:    ArrivalSpec{Process: "poisson", Rate: 4e-9, N: 24},
		Policy:      policy,
		MaxResident: 4,
		Seed:        42,
	}
}

// TestMetricsDoNotPerturbEventLog is the DES non-perturbation gate: a
// metrics-and-tracer-instrumented run must produce an event log
// bit-identical to a bare run.
func TestMetricsDoNotPerturbEventLog(t *testing.T) {
	for _, policy := range []string{"DominantMinRatio", "portfolio"} {
		bare, err := Simulate(mustBuild(t, metricsSpec(policy)))
		if err != nil {
			t.Fatal(err)
		}
		sc := mustBuild(t, metricsSpec(policy))
		m := NewMetrics(obs.NewRegistry())
		m.Tracer = obs.NewTracer(0)
		sc.Metrics = m
		instrumented, err := Simulate(sc)
		if err != nil {
			t.Fatal(err)
		}
		if len(bare.Events) != len(instrumented.Events) {
			t.Fatalf("%s: event count %d != %d", policy, len(instrumented.Events), len(bare.Events))
		}
		for i := range bare.Events {
			if bare.Events[i] != instrumented.Events[i] {
				t.Fatalf("%s: event %d differs: %+v != %+v", policy, i,
					instrumented.Events[i], bare.Events[i])
			}
		}
		if bare.Makespan != instrumented.Makespan {
			t.Errorf("%s: makespan %v != %v", policy, instrumented.Makespan, bare.Makespan)
		}
	}
}

func mustBuild(t *testing.T, sp Spec) Scenario {
	t.Helper()
	sc, err := sp.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestMetricsCountsMatchResult cross-checks every counter against the
// run's own Result, and lints the exposition.
func TestMetricsCountsMatchResult(t *testing.T) {
	reg := obs.NewRegistry()
	sc := mustBuild(t, metricsSpec("DominantMinRatio"))
	m := NewMetrics(reg)
	m.Tracer = obs.NewTracer(0)
	sc.Metrics = m
	res, err := Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}

	byKind := map[string]float64{}
	byName := map[string]float64{}
	for _, s := range reg.Snapshot() {
		if s.Name == "des_events_total" {
			byKind[s.LabelValue] = s.Value
			continue
		}
		byName[s.Name] = s.Value
	}
	wantKind := map[string]int{}
	for _, ev := range res.Events {
		wantKind[ev.Kind.String()]++
	}
	for kind, want := range wantKind {
		if got := byKind[kind]; got != float64(want) {
			t.Errorf("des_events_total{kind=%q} = %v, want %d", kind, got, want)
		}
	}
	if got := byName["des_simulations_total"]; got != 1 {
		t.Errorf("des_simulations_total = %v, want 1", got)
	}
	if got := byName["des_jobs_total"]; got != float64(len(res.Jobs)) {
		t.Errorf("des_jobs_total = %v, want %d", got, len(res.Jobs))
	}
	if got := byName["des_job_wait"]; got != float64(len(res.Jobs)) {
		t.Errorf("des_job_wait count = %v, want %d", got, len(res.Jobs))
	}
	if got := byName["des_job_stretch"]; got != float64(len(res.Jobs)) {
		t.Errorf("des_job_stretch count = %v, want %d", got, len(res.Jobs))
	}
	if got := byName["des_allocate_seconds"]; got == 0 {
		t.Error("des_allocate_seconds recorded no policy calls")
	}
	// The drained node ends with nothing resident or queued.
	if got := byName["des_resident_jobs"]; got != 0 {
		t.Errorf("des_resident_jobs = %v at drain, want 0", got)
	}
	if got := byName["des_queue_depth"]; got != 0 {
		t.Errorf("des_queue_depth = %v at drain, want 0", got)
	}
	fastFull := byName["des_replan_fastpath_total"] + byName["des_replan_fullsolve_total"]
	if want := float64(res.Replan.FastPath + res.Replan.FullSolve); fastFull != want {
		t.Errorf("replan fast+full = %v, want %v", fastFull, want)
	}
	if m.Tracer.Len() == 0 {
		t.Error("tracer recorded no events")
	}

	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if errs := obs.LintProm(strings.NewReader(sb.String())); len(errs) != 0 {
		t.Errorf("des exposition fails lint: %v", errs)
	}
}

// TestReplanReporterImplementations pins the named interface the engine
// asserts: the replanning policies implement it, the wave policy does
// not, and a run with a non-implementing policy leaves Replan zero.
func TestReplanReporterImplementations(t *testing.T) {
	hp, err := ParsePolicy("DominantMinRatio", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := hp.(ReplanReporter); !ok {
		t.Error("HeuristicPolicy does not implement ReplanReporter")
	}
	pp, err := ParsePolicy("portfolio", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pp.(ReplanReporter); !ok {
		t.Error("PortfolioPolicy does not implement ReplanReporter")
	}
	nr, err := ParsePolicy("norepartition:DominantMinRatio", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := nr.(ReplanReporter); ok {
		t.Error("NoRepartition unexpectedly implements ReplanReporter — its telemetry would be meaningless")
	}

	// An implementing policy populates Result.Replan...
	res, err := Simulate(mustBuild(t, metricsSpec("DominantMinRatio")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Replan.FastPath+res.Replan.FullSolve == 0 {
		t.Error("HeuristicPolicy run reported zero replan telemetry")
	}
	// ...and a non-implementing one leaves it zero.
	res, err = Simulate(mustBuild(t, metricsSpec("norepartition:DominantMinRatio")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Replan != (ReplanStats{}) {
		t.Errorf("NoRepartition run reported replan telemetry: %+v", res.Replan)
	}
}

// TestMemoEvictionTelemetry drives a tiny memo past capacity and checks
// evictions surface through MemoStats and ReplanStats.
func TestMemoEvictionTelemetry(t *testing.T) {
	sc := mustBuild(t, Spec{
		Arrivals:    ArrivalSpec{Process: "poisson", Rate: 4e-9, N: 48},
		Policy:      "DominantMinRatio",
		MaxResident: 3,
		Seed:        7,
	})
	hp := sc.Policy.(*HeuristicPolicy)
	hp.memo = sched.NewPlanMemo(2)
	res, err := Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replan.MemoEvictions == 0 {
		t.Error("tiny memo reported zero evictions on a 48-job stream")
	}
}
