package des

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/solve"
	"repro/internal/trace"
)

// Arrival is one job arrival: a virtual time and the application profile
// that arrives then.
type Arrival struct {
	Time float64
	App  model.Application
}

// ArrivalProcess produces a finite, time-ordered stream of job arrivals.
// Implementations own their randomness (seeded solve.RNG streams) so one
// process instance yields one deterministic trace; construct a fresh
// process for every simulation run.
type ArrivalProcess interface {
	// Next returns the next arrival, or ok = false once the stream is
	// exhausted. Times are non-decreasing and finite.
	Next() (a Arrival, ok bool)
	// Name identifies the process class in reports.
	Name() string
}

// JobFactory produces the application profile of the i-th arriving job
// (i counts from 0). Factories must be deterministic in i.
type JobFactory func(i int) model.Application

// CycleApps returns a factory cycling through the template applications
// in order, renaming each instance "<name>#<i>" so per-job metrics stay
// distinguishable. It is the default factory of the scenario format.
func CycleApps(apps []model.Application) (JobFactory, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("des: job factory needs at least one template application")
	}
	for i, a := range apps {
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("des: template app %d: %w", i, err)
		}
	}
	tpl := append([]model.Application(nil), apps...)
	return func(i int) model.Application {
		a := tpl[i%len(tpl)]
		a.Name = fmt.Sprintf("%s#%d", a.Name, i)
		return a
	}, nil
}

// checkRate validates a rate-like parameter (must be finite and > 0).
func checkRate(what string, v float64) error {
	if !(v > 0) || math.IsInf(v, 1) {
		return fmt.Errorf("des: %s must be finite and > 0, got %v", what, v)
	}
	return nil
}

// checkCount validates an arrival count.
func checkCount(n int) error {
	if n <= 0 {
		return fmt.Errorf("des: arrival count must be > 0, got %d", n)
	}
	return nil
}

// checkFactory rejects a nil job factory at construction time, where
// the mistake is attributable, instead of mid-simulation.
func checkFactory(f JobFactory) error {
	if f == nil {
		return fmt.Errorf("des: arrival process needs a job factory (see CycleApps)")
	}
	return nil
}

// Poisson is a homogeneous Poisson arrival process: independent
// exponential inter-arrival times with the given rate.
type Poisson struct {
	rate    float64
	n, done int
	t       float64
	factory JobFactory
	rng     *solve.RNG
}

// NewPoisson returns a Poisson process emitting n arrivals at the given
// rate (arrivals per unit virtual time).
func NewPoisson(rate float64, n int, factory JobFactory, rng *solve.RNG) (*Poisson, error) {
	if err := checkRate("poisson rate", rate); err != nil {
		return nil, err
	}
	if err := checkFactory(factory); err != nil {
		return nil, err
	}
	if err := checkCount(n); err != nil {
		return nil, err
	}
	return &Poisson{rate: rate, n: n, factory: factory, rng: requireRNG(rng)}, nil
}

// Next implements ArrivalProcess.
func (p *Poisson) Next() (Arrival, bool) {
	if p.done >= p.n {
		return Arrival{}, false
	}
	p.t += expVariate(p.rng, p.rate)
	if clockOverflow(p.t) {
		p.done = p.n
		return Arrival{}, false
	}
	a := Arrival{Time: p.t, App: p.factory(p.done)}
	p.done++
	return a, true
}

// Name implements ArrivalProcess.
func (p *Poisson) Name() string { return "poisson" }

// expVariate draws an exponential variate with the given rate by
// inversion. 1-U is in (0, 1], so the logarithm is finite.
func expVariate(rng *solve.RNG, rate float64) float64 {
	return -math.Log(1-rng.Float64()) / rate
}

// clockOverflow reports whether a generator's running arrival time has
// left the representable range (subnormal rates or astronomical scales
// make gaps infinite). Every built-in generator treats overflow as
// end-of-stream — the process can never emit a valid arrival again —
// so validated parameters never produce a contract-violating arrival.
func clockOverflow(t float64) bool {
	return math.IsInf(t, 1) || math.IsNaN(t)
}

// RateFunc is a time-varying arrival intensity λ(t) ≥ 0.
type RateFunc func(t float64) float64

// SinusoidRate returns the diurnal-style intensity base + amp·sin(2πt/period),
// the standard test function for inhomogeneous Poisson simulation. It
// requires 0 ≤ amp ≤ base so the intensity never goes negative.
func SinusoidRate(base, amp, period float64) (RateFunc, error) {
	if err := checkRate("sinusoid base rate", base); err != nil {
		return nil, err
	}
	if err := checkRate("sinusoid period", period); err != nil {
		return nil, err
	}
	if !(amp >= 0) || amp > base {
		return nil, fmt.Errorf("des: sinusoid amplitude %v outside [0, base=%v]", amp, base)
	}
	return func(t float64) float64 {
		return base + amp*math.Sin(2*math.Pi*t/period)
	}, nil
}

// InhomogeneousPoisson simulates a Poisson process with time-varying
// intensity λ(t) by Lewis–Shedler thinning: candidate points are drawn
// from a homogeneous process at the bounding rate λmax and accepted with
// probability λ(t)/λmax (the standard IPPP recipe).
type InhomogeneousPoisson struct {
	rate    RateFunc
	maxRate float64
	n, done int
	t       float64
	factory JobFactory
	rng     *solve.RNG
}

// NewInhomogeneousPoisson returns a thinning-based process emitting n
// arrivals with intensity rate, bounded above by maxRate (λ(t) values
// exceeding the bound are clamped, preserving correctness of the
// acceptance test at the cost of flattening the excess).
func NewInhomogeneousPoisson(rate RateFunc, maxRate float64, n int, factory JobFactory, rng *solve.RNG) (*InhomogeneousPoisson, error) {
	if rate == nil {
		return nil, fmt.Errorf("des: inhomogeneous poisson needs a rate function")
	}
	if err := checkRate("inhomogeneous poisson max rate", maxRate); err != nil {
		return nil, err
	}
	if err := checkFactory(factory); err != nil {
		return nil, err
	}
	if err := checkCount(n); err != nil {
		return nil, err
	}
	return &InhomogeneousPoisson{rate: rate, maxRate: maxRate, n: n, factory: factory, rng: requireRNG(rng)}, nil
}

// Next implements ArrivalProcess.
func (p *InhomogeneousPoisson) Next() (Arrival, bool) {
	if p.done >= p.n {
		return Arrival{}, false
	}
	for {
		p.t += expVariate(p.rng, p.maxRate)
		if clockOverflow(p.t) {
			// No further candidate can ever be accepted, so the stream
			// is exhausted rather than spinning in the thinning loop
			// forever.
			p.done = p.n
			return Arrival{}, false
		}
		lambda := p.rate(p.t)
		if !(lambda >= 0) {
			lambda = 0
		}
		if lambda > p.maxRate {
			lambda = p.maxRate
		}
		if p.rng.Float64()*p.maxRate < lambda {
			a := Arrival{Time: p.t, App: p.factory(p.done)}
			p.done++
			return a, true
		}
	}
}

// Name implements ArrivalProcess.
func (p *InhomogeneousPoisson) Name() string { return "ipoisson" }

// GammaBursts models bursty traffic: bursts of burst simultaneous
// arrivals separated by Gamma(shape, scale)-distributed gaps. Shapes
// below 1 give heavier-than-exponential burstiness (CV > 1), shapes
// above 1 regularize toward periodic batches.
type GammaBursts struct {
	shape, scale float64
	burst        int
	n, done      int
	t            float64
	inBurst      int
	factory      JobFactory
	rng          *solve.RNG
}

// NewGammaBursts returns a gamma-burst process emitting n arrivals in
// bursts of the given size.
func NewGammaBursts(shape, scale float64, burst, n int, factory JobFactory, rng *solve.RNG) (*GammaBursts, error) {
	if err := checkRate("gamma shape", shape); err != nil {
		return nil, err
	}
	if err := checkRate("gamma scale", scale); err != nil {
		return nil, err
	}
	if burst <= 0 {
		return nil, fmt.Errorf("des: gamma burst size must be > 0, got %d", burst)
	}
	if err := checkFactory(factory); err != nil {
		return nil, err
	}
	if err := checkCount(n); err != nil {
		return nil, err
	}
	return &GammaBursts{shape: shape, scale: scale, burst: burst, n: n, factory: factory, rng: requireRNG(rng)}, nil
}

// Next implements ArrivalProcess.
func (g *GammaBursts) Next() (Arrival, bool) {
	if g.done >= g.n {
		return Arrival{}, false
	}
	if g.inBurst == 0 {
		g.t += gammaVariate(g.rng, g.shape) * g.scale
		g.inBurst = g.burst
	}
	if clockOverflow(g.t) {
		g.done = g.n
		return Arrival{}, false
	}
	g.inBurst--
	a := Arrival{Time: g.t, App: g.factory(g.done)}
	g.done++
	return a, true
}

// Name implements ArrivalProcess.
func (g *GammaBursts) Name() string { return "gamma" }

// gammaVariate draws Gamma(shape, 1) with the Marsaglia–Tsang squeeze
// method; shapes below 1 use the standard boosting identity
// Gamma(a) = Gamma(a+1) · U^{1/a}.
func gammaVariate(rng *solve.RNG, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaVariate(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Batch emits fixed-size batches of arrivals at fixed intervals. An
// interval of 0 with size ≥ n reproduces the paper's offline setting:
// every job present at t = 0.
type Batch struct {
	interval float64
	size     int
	n, done  int
	factory  JobFactory
}

// NewBatch returns a batch process emitting n arrivals in groups of
// size, one group every interval time units starting at t = 0.
func NewBatch(interval float64, size, n int, factory JobFactory) (*Batch, error) {
	if interval < 0 || math.IsNaN(interval) || math.IsInf(interval, 0) {
		return nil, fmt.Errorf("des: batch interval must be finite and >= 0, got %v", interval)
	}
	if size <= 0 {
		return nil, fmt.Errorf("des: batch size must be > 0, got %d", size)
	}
	if err := checkFactory(factory); err != nil {
		return nil, err
	}
	if err := checkCount(n); err != nil {
		return nil, err
	}
	return &Batch{interval: interval, size: size, n: n, factory: factory}, nil
}

// Next implements ArrivalProcess.
func (b *Batch) Next() (Arrival, bool) {
	if b.done >= b.n {
		return Arrival{}, false
	}
	t := float64(b.done/b.size) * b.interval
	if clockOverflow(t) {
		b.done = b.n
		return Arrival{}, false
	}
	a := Arrival{Time: t, App: b.factory(b.done)}
	b.done++
	return a, true
}

// Name implements ArrivalProcess.
func (b *Batch) Name() string { return "batch" }

// Replay replays a recorded arrival trace verbatim — the bridge from
// captured production traces (or any other generator's output) back
// into the simulator.
type Replay struct {
	arrivals []Arrival
	done     int
}

// NewReplay returns a process replaying the given arrivals. The trace is
// validated (finite, non-negative, sorted times; valid applications) and
// copied.
func NewReplay(arrivals []Arrival) (*Replay, error) {
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("des: replay needs at least one arrival")
	}
	prev := 0.0
	for i, a := range arrivals {
		if math.IsNaN(a.Time) || math.IsInf(a.Time, 0) || a.Time < 0 {
			return nil, fmt.Errorf("des: replay arrival %d has invalid time %v", i, a.Time)
		}
		if a.Time < prev {
			return nil, fmt.Errorf("des: replay arrivals out of order: t=%v after t=%v", a.Time, prev)
		}
		prev = a.Time
		if err := a.App.Validate(); err != nil {
			return nil, fmt.Errorf("des: replay arrival %d: %w", i, err)
		}
	}
	return &Replay{arrivals: append([]Arrival(nil), arrivals...)}, nil
}

// Next implements ArrivalProcess.
func (r *Replay) Next() (Arrival, bool) {
	if r.done >= len(r.arrivals) {
		return Arrival{}, false
	}
	a := r.arrivals[r.done]
	r.done++
	return a, true
}

// Name implements ArrivalProcess.
func (r *Replay) Name() string { return "replay" }

// ReplayFromTrace derives an arrival trace from an internal/trace memory
// access stream and returns a Replay over it: the gap before arrival i
// is proportional to the address distance between consecutive accesses,
// normalized so the mean gap equals meanGap. High-locality traces (Zipf,
// working-set) thus produce clustered, bursty arrivals while streaming
// traces produce near-regular ones — reusing the trace generators'
// locality knobs as arrival-correlation knobs.
func ReplayFromTrace(g trace.Generator, n int, meanGap float64, factory JobFactory) (*Replay, error) {
	if g == nil {
		return nil, fmt.Errorf("des: trace replay needs a generator")
	}
	if err := checkFactory(factory); err != nil {
		return nil, err
	}
	if err := checkCount(n); err != nil {
		return nil, err
	}
	if err := checkRate("trace replay mean gap", meanGap); err != nil {
		return nil, err
	}
	deltas := make([]float64, n)
	var sum float64
	prev := g.Next().Addr
	for i := range deltas {
		cur := g.Next().Addr
		d := float64(cur) - float64(prev)
		if d < 0 {
			d = -d
		}
		deltas[i] = d
		sum += d
		prev = cur
	}
	arrivals := make([]Arrival, n)
	t := 0.0
	for i, d := range deltas {
		if sum > 0 {
			t += d / sum * float64(n) * meanGap // normalize: mean gap = meanGap
		}
		arrivals[i] = Arrival{Time: t, App: factory(i)}
	}
	// Guard against degenerate traces collapsing every arrival onto one
	// instant with a zero total span; times are already sorted by
	// construction, but assert the invariant cheaply.
	if !sort.SliceIsSorted(arrivals, func(a, b int) bool { return arrivals[a].Time < arrivals[b].Time }) {
		return nil, fmt.Errorf("des: internal error: trace-derived arrivals unsorted")
	}
	return NewReplay(arrivals)
}

// requireRNG substitutes a deterministic default stream for nil.
func requireRNG(rng *solve.RNG) *solve.RNG {
	if rng == nil {
		return solve.NewRNG(0)
	}
	return rng
}
