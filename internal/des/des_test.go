package des

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/solve"
	"repro/internal/workload"
)

// testApps returns a small Amdahl workload with heterogeneous
// sequential fractions.
func testApps(t *testing.T, n int) []model.Application {
	t.Helper()
	apps, err := workload.Generate(workload.Config{Generator: workload.GenNPBSynth, N: n}, solve.NewRNG(7))
	if err != nil {
		t.Fatalf("generating workload: %v", err)
	}
	return apps
}

// atZero builds a replay process with every app arriving at t = 0.
func atZero(t *testing.T, apps []model.Application) ArrivalProcess {
	t.Helper()
	arr := make([]Arrival, len(apps))
	for i, a := range apps {
		arr[i] = Arrival{Time: 0, App: a}
	}
	p, err := NewReplay(arr)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return p
}

// TestMatchesStaticSim is the cross-check property of the subsystem:
// with every job arriving at t = 0 and the no-repartition policy, the
// online engine must reproduce internal/sim's static execution
// bit-for-bit — same per-job finish times, same makespan, same
// processor-time integral.
func TestMatchesStaticSim(t *testing.T) {
	pl := model.TaihuLight()
	for _, h := range []sched.Heuristic{
		sched.DominantMinRatio, sched.DominantRevMaxRatio, sched.Fair, sched.ZeroCache,
	} {
		for _, n := range []int{1, 2, 6, 13} {
			apps := testApps(t, n)
			s, err := h.Schedule(pl, apps, nil)
			if err != nil {
				t.Fatalf("%v n=%d: schedule: %v", h, n, err)
			}
			want, err := sim.Execute(pl, apps, s, sim.Static)
			if err != nil {
				t.Fatalf("%v n=%d: sim: %v", h, n, err)
			}
			pol, err := NewNoRepartition(h, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Simulate(Scenario{Platform: pl, Arrivals: atZero(t, apps), Policy: pol})
			if err != nil {
				t.Fatalf("%v n=%d: des: %v", h, n, err)
			}
			if got.Makespan != want.Makespan {
				t.Errorf("%v n=%d: makespan %v != sim %v", h, n, got.Makespan, want.Makespan)
			}
			for i := range apps {
				if got.Jobs[i].Finish != want.FinishTimes[i] {
					t.Errorf("%v n=%d: job %d finish %v != sim %v", h, n, i, got.Jobs[i].Finish, want.FinishTimes[i])
				}
			}
			if got.ProcessorTime != want.ProcessorTime {
				t.Errorf("%v n=%d: processor time %v != sim %v", h, n, got.ProcessorTime, want.ProcessorTime)
			}
			if got.Repartitions != 1 {
				t.Errorf("%v n=%d: %d repartitions for a static wave, want 1", h, n, got.Repartitions)
			}
		}
	}
}

// TestDeterminism: a fixed seed must yield an identical result —
// including the full event log — across repeated runs and across
// portfolio worker counts.
func TestDeterminism(t *testing.T) {
	build := func(workers int) *Result {
		sp := Spec{
			Arrivals: ArrivalSpec{Process: "poisson", Rate: 1e-9, N: 24},
			Policy:   "portfolio",
			Seed:     99,
		}
		sc, err := sp.Build(workers)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		res, err := Simulate(sc)
		if err != nil {
			t.Fatalf("simulate: %v", err)
		}
		return res
	}
	base := build(1)
	for _, workers := range []int{1, 4} {
		got := build(workers)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d: result differs from serial run", workers)
		}
	}
}

// TestRepartitioningBeatsFrozenWaves: with staggered arrivals, dynamic
// repartitioning should never lose to wave scheduling on mean response
// time (it starts every job immediately instead of parking it).
func TestRepartitioningBeatsFrozenWaves(t *testing.T) {
	apps := workload.NPB()
	arr := make([]Arrival, 0, 12)
	for i := 0; i < 12; i++ {
		arr = append(arr, Arrival{Time: float64(i) * 2e8, App: apps[i%len(apps)]})
	}
	run := func(mk func() (Policy, error)) *Result {
		t.Helper()
		pol, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := NewReplay(arr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(Scenario{Platform: model.TaihuLight(), Arrivals: rep, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dyn := run(func() (Policy, error) { return NewHeuristicPolicy(sched.DominantMinRatio, 0) })
	frozen := run(func() (Policy, error) { return NewNoRepartition(sched.DominantMinRatio, 0) })
	if frozen.Wait.Max == 0 {
		t.Errorf("expected mid-wave arrivals to wait under the frozen policy")
	}
	if dyn.Wait.Max != 0 {
		t.Errorf("dynamic policy parked a job: max wait %v", dyn.Wait.Max)
	}
	if dyn.Repartitions <= frozen.Repartitions {
		t.Errorf("dynamic policy repartitioned %d times, frozen %d: expected more churn", dyn.Repartitions, frozen.Repartitions)
	}
}

// TestQueueing: MaxResident bounds concurrency; excess jobs wait and
// the wait shows up in the metrics and the occupancy log.
func TestQueueing(t *testing.T) {
	apps := workload.NPB()
	res, err := Simulate(Scenario{
		Platform:    model.TaihuLight(),
		Arrivals:    atZero(t, apps),
		Policy:      mustHeuristic(t, sched.DominantMinRatio),
		MaxResident: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxQueue != len(apps)-2 {
		t.Errorf("max queue %d, want %d", res.MaxQueue, len(apps)-2)
	}
	if res.Wait.Max <= 0 {
		t.Errorf("expected positive waits with a full node, got max %v", res.Wait.Max)
	}
	for _, ev := range res.Events {
		if ev.Resident > 2 {
			t.Errorf("event %d: %d residents exceed MaxResident=2", ev.Seq, ev.Resident)
		}
	}
	// All jobs must still finish, in bounded-sharing FIFO order of
	// admission.
	for i, j := range res.Jobs {
		if math.IsNaN(j.Finish) {
			t.Errorf("job %d never finished", i)
		}
	}
}

// TestEventLogShape: the log is Seq-dense, time-ordered, and every job
// has exactly one arrival, one start and one finish in causal order.
func TestEventLogShape(t *testing.T) {
	sp := Spec{
		Arrivals:    ArrivalSpec{Process: "gamma", Shape: 0.5, Scale: 4e8, Burst: 3, N: 18},
		Policy:      "DominantMinRatio",
		MaxResident: 4,
		Seed:        5,
	}
	sc, err := sp.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	type causal struct{ arrival, start, finish int }
	counts := make(map[int]*causal)
	prevT := 0.0
	for i, ev := range res.Events {
		if ev.Seq != i {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
		if ev.Time < prevT {
			t.Fatalf("event %d: time %v before %v", i, ev.Time, prevT)
		}
		prevT = ev.Time
		if ev.Job < 0 {
			if ev.Kind != EventRepartition {
				t.Fatalf("event %d: job -1 with kind %v", i, ev.Kind)
			}
			continue
		}
		c := counts[ev.Job]
		if c == nil {
			c = &causal{}
			counts[ev.Job] = c
		}
		switch ev.Kind {
		case EventArrival:
			c.arrival++
		case EventStart:
			if c.arrival != 1 {
				t.Fatalf("job %d started before arriving", ev.Job)
			}
			c.start++
		case EventFinish:
			if c.start != 1 {
				t.Fatalf("job %d finished before starting", ev.Job)
			}
			c.finish++
		}
	}
	if len(counts) != 18 {
		t.Fatalf("log covers %d jobs, want 18", len(counts))
	}
	for id, c := range counts {
		if c.arrival != 1 || c.start != 1 || c.finish != 1 {
			t.Fatalf("job %d: arrival/start/finish = %d/%d/%d", id, c.arrival, c.start, c.finish)
		}
	}
}

// TestDurationCutoff: arrivals beyond Duration are discarded and
// counted; admitted jobs still run to completion.
func TestDurationCutoff(t *testing.T) {
	sp := Spec{
		Arrivals: ArrivalSpec{Process: "batch", Interval: 1e9, Size: 2, N: 10},
		Policy:   "DominantMinRatio",
		Duration: 2.5e9,
	}
	sc, err := sp.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 6 || res.Truncated != 4 {
		t.Fatalf("got %d jobs, %d truncated; want 6 admitted, 4 truncated", len(res.Jobs), res.Truncated)
	}
}

// TestMetricsConsistency checks the invariants linking per-job metrics
// and the platform integrals.
func TestMetricsConsistency(t *testing.T) {
	sp := Spec{
		Arrivals: ArrivalSpec{Process: "ipoisson", BaseRate: 2e-9, Amplitude: 1.5e-9, Period: 5e9, N: 30},
		Policy:   "DominantRevMaxRatio",
		Seed:     3,
	}
	sc, err := sp.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	pl := sc.Platform
	if u := res.Utilization(pl); u <= 0 || u > 1+1e-9 {
		t.Errorf("utilization %v outside (0, 1]", u)
	}
	if c := res.MeanCacheOccupancy(); c <= 0 || c > 1+1e-9 {
		t.Errorf("cache occupancy %v outside (0, 1]", c)
	}
	for _, j := range res.Jobs {
		if j.Wait < 0 || j.Response < j.Wait {
			t.Errorf("job %d: wait %v response %v inconsistent", j.Job, j.Wait, j.Response)
		}
		if j.Stretch < 1-1e-9 {
			t.Errorf("job %d: stretch %v below 1 (faster than the dedicated machine?)", j.Job, j.Stretch)
		}
		if j.Finish > res.Makespan {
			t.Errorf("job %d finishes at %v after makespan %v", j.Job, j.Finish, res.Makespan)
		}
	}
}

// TestPolicyBudgetEnforcement: a policy overrunning the processor
// budget is rejected with a clear error rather than silently
// oversubscribing the node.
func TestPolicyBudgetEnforcement(t *testing.T) {
	over := policyFunc(func(pl model.Platform, residents []Resident) ([]sched.Assignment, error) {
		asg := make([]sched.Assignment, len(residents))
		for i := range asg {
			asg[i] = sched.Assignment{Processors: pl.Processors, CacheShare: 0}
		}
		return asg, nil
	})
	_, err := Simulate(Scenario{
		Platform: model.TaihuLight(),
		Arrivals: atZero(t, workload.NPB()),
		Policy:   over,
	})
	if err == nil {
		t.Fatal("oversubscribing policy accepted")
	}
}

// TestZeroAllocationDeadlock: a policy that never grants processors
// must surface as a deadlock error, not an infinite loop.
func TestZeroAllocationDeadlock(t *testing.T) {
	starve := policyFunc(func(pl model.Platform, residents []Resident) ([]sched.Assignment, error) {
		return make([]sched.Assignment, len(residents)), nil
	})
	_, err := Simulate(Scenario{
		Platform: model.TaihuLight(),
		Arrivals: atZero(t, workload.NPB()[:2]),
		Policy:   starve,
	})
	if err == nil {
		t.Fatal("starving policy accepted")
	}
}

// policyFunc adapts a function to the Policy interface for tests.
type policyFunc func(model.Platform, []Resident) ([]sched.Assignment, error)

func (f policyFunc) Allocate(pl model.Platform, r []Resident) ([]sched.Assignment, error) {
	return f(pl, r)
}
func (f policyFunc) Name() string { return "test" }

func mustHeuristic(t *testing.T, h sched.Heuristic) Policy {
	t.Helper()
	p, err := NewHeuristicPolicy(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// brokenProcess emits a hand-written arrival sequence, bypassing the
// validated constructors, to probe the engine's defenses against
// misbehaving custom ArrivalProcess implementations.
type brokenProcess struct {
	arrivals []Arrival
	i        int
}

func (b *brokenProcess) Next() (Arrival, bool) {
	if b.i >= len(b.arrivals) {
		return Arrival{}, false
	}
	a := b.arrivals[b.i]
	b.i++
	return a, true
}

func (b *brokenProcess) Name() string { return "broken" }

// TestMisbehavingProcessErrors: a custom process that violates the
// interface contract (backwards or non-finite times, invalid apps)
// must fail the run with an error — never a panic, never a silently
// truncated stream.
func TestMisbehavingProcessErrors(t *testing.T) {
	app := workload.NPB()[0]
	for name, arr := range map[string][]Arrival{
		"backwards": {{Time: 5e9, App: app}, {Time: 1e9, App: app}},
		"nan time":  {{Time: 0, App: app}, {Time: math.NaN(), App: app}},
		"bad app":   {{Time: 0, App: app}, {Time: 1}},
	} {
		_, err := Simulate(Scenario{
			Platform: model.TaihuLight(),
			Arrivals: &brokenProcess{arrivals: arr},
			Policy:   mustHeuristic(t, sched.DominantMinRatio),
		})
		if err == nil {
			t.Errorf("%s: misbehaving process accepted", name)
		}
	}
}

// TestSequentialPolicyRejected: AllProcCache cannot drive online mode.
func TestSequentialPolicyRejected(t *testing.T) {
	if _, err := NewHeuristicPolicy(sched.AllProcCache, 0); err == nil {
		t.Error("AllProcCache accepted as a repartitioning policy")
	}
	if _, err := NewNoRepartition(sched.AllProcCache, 0); err == nil {
		t.Error("AllProcCache accepted as a wave policy")
	}
}
