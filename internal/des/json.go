package des

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/model"
	"repro/internal/portfolio"
	"repro/internal/solve"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Spec is the JSON scenario format of cmd/dessim: platform, template
// applications, arrival-process configuration, policy and run controls.
// Decoding validates everything up front — non-finite or negative
// values are rejected with a field-level error instead of silently
// propagating NaN into the heuristics.
type Spec struct {
	Platform *PlatformSpec `json:"platform,omitempty"`
	// Apps are the template profiles jobs are stamped from (cycled in
	// arrival order). Empty means the paper's NPB Table 2 set.
	Apps     []AppSpec   `json:"apps,omitempty"`
	Arrivals ArrivalSpec `json:"arrivals"`
	// Policy is a ParsePolicy specification; empty means
	// DominantMinRatio repartitioning.
	Policy string `json:"policy,omitempty"`
	// Duration > 0 cuts the arrival stream off at that virtual time.
	Duration float64 `json:"duration,omitempty"`
	// MaxResident > 0 bounds node sharing; excess jobs queue FIFO.
	MaxResident int `json:"maxResident,omitempty"`
	// Seed drives every random draw of the run.
	Seed uint64 `json:"seed,omitempty"`
}

// PlatformSpec mirrors model.Platform in the scenario wire format.
type PlatformSpec struct {
	Processors float64 `json:"processors"`
	CacheSize  float64 `json:"cacheSize"`
	LatencyS   float64 `json:"ls"`
	LatencyL   float64 `json:"ll"`
	Alpha      float64 `json:"alpha"`
}

// Platform converts the wire form to the model type.
func (p PlatformSpec) Platform() model.Platform {
	return model.Platform{Processors: p.Processors, CacheSize: p.CacheSize, LatencyS: p.LatencyS, LatencyL: p.LatencyL, Alpha: p.Alpha}
}

// AppSpec mirrors model.Application in the scenario wire format (the
// same field names as cmd/cosched's application JSON).
type AppSpec struct {
	Name      string  `json:"name"`
	Work      float64 `json:"work"`
	Seq       float64 `json:"seq"`
	Freq      float64 `json:"freq"`
	MissRate  float64 `json:"missRate"`
	RefCache  float64 `json:"refCache"`
	Footprint float64 `json:"footprint"`
}

// Application converts the wire form to the model type.
func (a AppSpec) Application() model.Application {
	return model.Application{
		Name: a.Name, Work: a.Work, SeqFraction: a.Seq, AccessFreq: a.Freq,
		RefMissRate: a.MissRate, RefCacheSize: a.RefCache, Footprint: a.Footprint,
	}
}

// ArrivalSpec configures one arrival process. Process selects the kind;
// the other fields parameterize it (unused ones are ignored).
type ArrivalSpec struct {
	// Process: "poisson", "ipoisson", "gamma", "batch", "replay" or
	// "trace".
	Process string `json:"process"`
	// N is the number of arrivals (all processes except replay).
	N int `json:"n,omitempty"`
	// Rate: poisson arrivals per unit time.
	Rate float64 `json:"rate,omitempty"`
	// BaseRate/Amplitude/Period: ipoisson sinusoidal intensity
	// base + amp·sin(2πt/period), 0 ≤ amp ≤ base.
	BaseRate  float64 `json:"baseRate,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`
	Period    float64 `json:"period,omitempty"`
	// Shape/Scale/Burst: gamma bursts of Burst jobs, inter-burst gaps
	// ~ Gamma(shape, scale).
	Shape float64 `json:"shape,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	Burst int     `json:"burst,omitempty"`
	// Interval/Size: fixed batches of Size jobs every Interval.
	Interval float64 `json:"interval,omitempty"`
	Size     int     `json:"size,omitempty"`
	// Replay: explicit arrivals, each with a time and an optional app
	// (missing apps come from the template factory).
	Replay []ReplaySpec `json:"replay,omitempty"`
	// Trace/MeanGap: arrival gaps derived from an internal/trace
	// generator ("zipf", "uniform" or "sequential") over TraceBytes of
	// footprint, normalized to a mean inter-arrival of MeanGap.
	Trace      string  `json:"trace,omitempty"`
	MeanGap    float64 `json:"meanGap,omitempty"`
	TraceBytes uint64  `json:"traceBytes,omitempty"`
}

// ReplaySpec is one explicit arrival of a replay spec.
type ReplaySpec struct {
	Time float64  `json:"time"`
	App  *AppSpec `json:"app,omitempty"`
}

// maxSpecArrivals bounds scenario sizes accepted from untrusted input
// (the fuzz surface); programmatic users construct processes directly.
const maxSpecArrivals = 1 << 20

// DecodeSpec parses and validates a scenario. It rejects unknown fields
// so typos fail loudly rather than silently falling back to defaults.
func DecodeSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("des: parsing scenario: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Validate checks the spec for structural problems: non-finite or
// negative numbers anywhere a quantity must be positive, out-of-range
// counts, unknown process names.
func (sp *Spec) Validate() error {
	if sp.Platform != nil {
		if err := sp.platform().Validate(); err != nil {
			return err
		}
	}
	for i, a := range sp.Apps {
		if err := a.Application().Validate(); err != nil {
			return fmt.Errorf("des: template app %d: %w", i, err)
		}
	}
	if math.IsNaN(sp.Duration) || math.IsInf(sp.Duration, 0) || sp.Duration < 0 {
		return fmt.Errorf("des: duration must be finite and >= 0, got %v", sp.Duration)
	}
	if sp.MaxResident < 0 {
		return fmt.Errorf("des: maxResident must be >= 0, got %d", sp.MaxResident)
	}
	return sp.Arrivals.validate()
}

func (sp *Spec) platform() model.Platform {
	if sp.Platform == nil {
		return model.TaihuLight()
	}
	return sp.Platform.Platform()
}

// Validate checks the arrival spec alone — the same field-level checks
// Spec.Validate applies — for scenario formats that embed an
// ArrivalSpec without the rest of the single-node spec.
func (as *ArrivalSpec) Validate() error { return as.validate() }

func (as *ArrivalSpec) validate() error {
	checkN := func() error {
		if as.N <= 0 || as.N > maxSpecArrivals {
			return fmt.Errorf("des: arrivals.n must be in [1, %d], got %d", maxSpecArrivals, as.N)
		}
		return nil
	}
	switch as.Process {
	case "poisson":
		if err := checkRate("arrivals.rate", as.Rate); err != nil {
			return err
		}
		return checkN()
	case "ipoisson":
		if _, err := SinusoidRate(as.BaseRate, as.Amplitude, as.Period); err != nil {
			return err
		}
		return checkN()
	case "gamma":
		if err := checkRate("arrivals.shape", as.Shape); err != nil {
			return err
		}
		if err := checkRate("arrivals.scale", as.Scale); err != nil {
			return err
		}
		if as.Burst <= 0 || as.Burst > maxSpecArrivals {
			return fmt.Errorf("des: arrivals.burst must be in [1, %d], got %d", maxSpecArrivals, as.Burst)
		}
		return checkN()
	case "batch":
		if as.Interval < 0 || math.IsNaN(as.Interval) || math.IsInf(as.Interval, 0) {
			return fmt.Errorf("des: arrivals.interval must be finite and >= 0, got %v", as.Interval)
		}
		if as.Size <= 0 || as.Size > maxSpecArrivals {
			return fmt.Errorf("des: arrivals.size must be in [1, %d], got %d", maxSpecArrivals, as.Size)
		}
		return checkN()
	case "replay":
		if len(as.Replay) == 0 {
			return fmt.Errorf("des: replay arrivals need at least one entry")
		}
		if len(as.Replay) > maxSpecArrivals {
			return fmt.Errorf("des: replay longer than %d arrivals", maxSpecArrivals)
		}
		prev := 0.0
		for i, r := range as.Replay {
			if math.IsNaN(r.Time) || math.IsInf(r.Time, 0) || r.Time < 0 {
				return fmt.Errorf("des: replay arrival %d has invalid time %v", i, r.Time)
			}
			if r.Time < prev {
				return fmt.Errorf("des: replay arrivals out of order at %d: t=%v after t=%v", i, r.Time, prev)
			}
			prev = r.Time
			if r.App != nil {
				if err := r.App.Application().Validate(); err != nil {
					return fmt.Errorf("des: replay arrival %d: %w", i, err)
				}
			}
		}
		return nil
	case "trace":
		switch as.Trace {
		case "zipf", "uniform", "sequential":
		default:
			return fmt.Errorf("des: arrivals.trace must be zipf, uniform or sequential, got %q", as.Trace)
		}
		if err := checkRate("arrivals.meanGap", as.MeanGap); err != nil {
			return err
		}
		// Bounded tightly: the Zipf generator precomputes a CDF with one
		// entry per cache line, so a large footprint means seconds of
		// setup — hostile input for a decode-then-build surface.
		if as.TraceBytes > 1<<24 {
			return fmt.Errorf("des: arrivals.traceBytes %d exceeds 16 MiB", as.TraceBytes)
		}
		return checkN()
	case "":
		return fmt.Errorf("des: arrivals.process is required (poisson, ipoisson, gamma, batch, replay or trace)")
	default:
		return fmt.Errorf("des: unknown arrival process %q", as.Process)
	}
}

// Build turns the validated spec into a runnable Scenario: constructs
// the platform, the job factory over the template apps, the arrival
// process (seeded from Seed) and the policy (portfolio pool bounded by
// workers).
func (sp *Spec) Build(workers int) (Scenario, error) {
	return sp.BuildWith(nil, workers)
}

// BuildWith is Build with a caller-supplied portfolio engine backing a
// "portfolio" policy, so the CLI (or a v2 client) can share one worker
// pool with the simulation instead of building a private engine. A nil
// engine falls back to a private one bounded by workers; the engine is
// unused for non-portfolio policies.
func (sp *Spec) BuildWith(engine *portfolio.Engine, workers int) (Scenario, error) {
	if err := sp.Validate(); err != nil {
		return Scenario{}, err
	}
	pl := sp.platform()
	tpl := make([]model.Application, len(sp.Apps))
	for i, a := range sp.Apps {
		tpl[i] = a.Application()
	}
	if len(tpl) == 0 {
		tpl = workload.NPB()
	}
	factory, err := CycleApps(tpl)
	if err != nil {
		return Scenario{}, err
	}
	rng := solve.NewRNG(sp.Seed)
	proc, err := sp.Arrivals.build(factory, rng)
	if err != nil {
		return Scenario{}, err
	}
	spec := sp.Policy
	if spec == "" {
		spec = "DominantMinRatio"
	}
	pol, err := parsePolicyWith(engine, spec, workers, sp.Seed)
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{
		Platform:    pl,
		Arrivals:    proc,
		Policy:      pol,
		Duration:    sp.Duration,
		MaxResident: sp.MaxResident,
	}, nil
}

// BuildProcess validates the spec and constructs its arrival process
// over the given factory and RNG — the same construction Build performs
// for a full Spec, exposed for composite scenario formats (the fleet
// spec) that own their platform/policy wiring but reuse this package's
// arrival processes.
func (as *ArrivalSpec) BuildProcess(factory JobFactory, rng *solve.RNG) (ArrivalProcess, error) {
	if err := as.validate(); err != nil {
		return nil, err
	}
	return as.build(factory, rng)
}

// build constructs the configured arrival process.
func (as *ArrivalSpec) build(factory JobFactory, rng *solve.RNG) (ArrivalProcess, error) {
	switch as.Process {
	case "poisson":
		return NewPoisson(as.Rate, as.N, factory, rng)
	case "ipoisson":
		rate, err := SinusoidRate(as.BaseRate, as.Amplitude, as.Period)
		if err != nil {
			return nil, err
		}
		return NewInhomogeneousPoisson(rate, as.BaseRate+as.Amplitude, as.N, factory, rng)
	case "gamma":
		return NewGammaBursts(as.Shape, as.Scale, as.Burst, as.N, factory, rng)
	case "batch":
		return NewBatch(as.Interval, as.Size, as.N, factory)
	case "replay":
		arrivals := make([]Arrival, len(as.Replay))
		for i, r := range as.Replay {
			app := factory(i)
			if r.App != nil {
				app = r.App.Application()
			}
			arrivals[i] = Arrival{Time: r.Time, App: app}
		}
		return NewReplay(arrivals)
	case "trace":
		gen, err := as.buildTrace(rng)
		if err != nil {
			return nil, err
		}
		return ReplayFromTrace(gen, as.N, as.MeanGap, factory)
	default:
		return nil, fmt.Errorf("des: unknown arrival process %q", as.Process)
	}
}

// buildTrace constructs the memory-access generator backing a
// trace-driven arrival stream. The footprint defaults to 1 MB over
// 64-byte lines — enough blocks for the locality structure to matter,
// small enough to build instantly.
func (as *ArrivalSpec) buildTrace(rng *solve.RNG) (trace.Generator, error) {
	size := as.TraceBytes
	if size == 0 {
		size = 1 << 20
	}
	const line = 64
	if size < line {
		return nil, fmt.Errorf("des: arrivals.traceBytes must be >= %d, got %d", line, size)
	}
	switch as.Trace {
	case "zipf":
		return trace.NewZipf(size, line, 1.2, rng)
	case "uniform":
		return trace.NewUniform(size, line, rng)
	case "sequential":
		return trace.NewSequential(size, line)
	default:
		return nil, fmt.Errorf("des: unknown trace kind %q", as.Trace)
	}
}

// ParseArrivalSpec parses the compact command-line form of an arrival
// spec: "process:key=value,key=value", e.g. "poisson:rate=0.5,n=64" or
// "ipoisson:baseRate=1,amplitude=0.8,period=100,n=200". Keys match the
// JSON field names.
func ParseArrivalSpec(s string) (ArrivalSpec, error) {
	var as ArrivalSpec
	proc, rest, _ := strings.Cut(s, ":")
	as.Process = proc
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return as, fmt.Errorf("des: arrival spec %q: %q is not key=value", s, kv)
			}
			if err := as.setField(k, v); err != nil {
				return as, fmt.Errorf("des: arrival spec %q: %w", s, err)
			}
		}
	}
	if err := as.validate(); err != nil {
		return as, err
	}
	return as, nil
}

// setField assigns one key=value pair of the compact arrival spec.
func (as *ArrivalSpec) setField(k, v string) error {
	setF := func(dst *float64) error {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("%s=%q: %w", k, v, err)
		}
		*dst = f
		return nil
	}
	setI := func(dst *int) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("%s=%q: %w", k, v, err)
		}
		*dst = n
		return nil
	}
	switch k {
	case "n":
		return setI(&as.N)
	case "rate":
		return setF(&as.Rate)
	case "baseRate":
		return setF(&as.BaseRate)
	case "amplitude":
		return setF(&as.Amplitude)
	case "period":
		return setF(&as.Period)
	case "shape":
		return setF(&as.Shape)
	case "scale":
		return setF(&as.Scale)
	case "burst":
		return setI(&as.Burst)
	case "interval":
		return setF(&as.Interval)
	case "size":
		return setI(&as.Size)
	case "trace":
		as.Trace = v
		return nil
	case "meanGap":
		return setF(&as.MeanGap)
	case "traceBytes":
		u, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return fmt.Errorf("%s=%q: %w", k, v, err)
		}
		as.TraceBytes = u
		return nil
	default:
		return fmt.Errorf("unknown key %q", k)
	}
}
