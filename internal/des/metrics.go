package des

import (
	"repro/internal/obs"
)

// Metrics is the DES engine's instrumentation bundle. Construct one
// with NewMetrics, optionally attach a Tracer, and set it on
// Scenario.Metrics; a nil *Metrics disables every observation. The
// engine only ever *writes* to the bundle — no simulation decision
// reads it back — so instrumented and bare runs produce bit-identical
// event logs (the conform goldens gate this).
//
// Metric catalog:
//
//	des_simulations_total            counter    completed Simulate calls
//	des_events_total{kind}           counter    log events by kind
//	des_jobs_total                   counter    jobs simulated to completion
//	des_resident_jobs                gauge      jobs holding processors (last event)
//	des_queue_depth                  gauge      admission queue depth (last event)
//	des_allocate_seconds             histogram  wall time of one policy Allocate call
//	des_job_wait                     histogram  per-job wait, virtual time units
//	des_job_stretch                  histogram  per-job stretch (slowdown factor)
//	des_replan_fastpath_total        counter    certified fast-path Allocate calls
//	des_replan_fullsolve_total       counter    full-solve Allocate calls
//	des_replan_memo_hits_total       counter    plan-memo hits
//	des_replan_memo_misses_total     counter    plan-memo misses
//	des_replan_memo_evictions_total  counter    plan-memo FIFO evictions
type Metrics struct {
	simulations *obs.Counter
	jobs        *obs.Counter
	// events is indexed by EventKind — a fixed array of pre-resolved
	// counters, so the per-event hot path is one array load plus one
	// atomic add, with no map lookup and no boxing.
	events        [4]*obs.Counter
	residentJobs  *obs.Gauge
	queueDepth    *obs.Gauge
	allocSeconds  *obs.Histogram
	waitHist      *obs.Histogram
	stretchHist   *obs.Histogram
	replanFast    *obs.Counter
	replanFull    *obs.Counter
	memoHits      *obs.Counter
	memoMisses    *obs.Counter
	memoEvictions *obs.Counter

	// Tracer, when non-nil, records every log event and every policy
	// allocation span with both the virtual clock and wall time. Set it
	// after NewMetrics; a nil tracer is a no-op.
	Tracer *obs.Tracer
}

// NewMetrics registers the DES metric families on reg and returns the
// handle bundle, or nil when reg is nil (metrics disabled).
// Registration is idempotent: scenarios sharing a registry accumulate
// into the same series.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	m := &Metrics{
		simulations: reg.Counter("des_simulations_total", "Completed Simulate calls"),
		jobs:        reg.Counter("des_jobs_total", "Jobs simulated to completion"),
		residentJobs: reg.Gauge("des_resident_jobs",
			"Jobs holding processors after the last logged event"),
		queueDepth: reg.Gauge("des_queue_depth",
			"Queued jobs (FIFO + zero-allocation residents) after the last logged event"),
		allocSeconds: reg.Histogram("des_allocate_seconds",
			"Wall time of one policy Allocate call", obs.ExpBuckets(1e-6, 4, 10)),
		// Virtual-time units span huge ranges (platform-dependent), so
		// the wait buckets sweep 1..8^11 in virtual seconds.
		waitHist: reg.Histogram("des_job_wait",
			"Per-job wait time (virtual units)", obs.ExpBuckets(1, 8, 12)),
		stretchHist: reg.Histogram("des_job_stretch",
			"Per-job stretch (response / dedicated execution time)", obs.ExpBuckets(1, 2, 12)),
		replanFast:    reg.Counter("des_replan_fastpath_total", "Certified fast-path Allocate calls"),
		replanFull:    reg.Counter("des_replan_fullsolve_total", "Full-solve Allocate calls"),
		memoHits:      reg.Counter("des_replan_memo_hits_total", "Plan-memo hits"),
		memoMisses:    reg.Counter("des_replan_memo_misses_total", "Plan-memo misses"),
		memoEvictions: reg.Counter("des_replan_memo_evictions_total", "Plan-memo FIFO evictions"),
	}
	vec := reg.CounterVec("des_events_total", "Log events by kind", "kind")
	for _, k := range []EventKind{EventArrival, EventStart, EventFinish, EventRepartition} {
		m.events[k] = vec.With(k.String())
	}
	return m
}

// observeReplan folds a finished run's delta-rescheduling telemetry
// into the counters. Called once per Simulate, so the counters stay
// monotone across runs sharing a registry.
func (m *Metrics) observeReplan(st ReplanStats) {
	if m == nil {
		return
	}
	m.replanFast.Add(st.FastPath)
	m.replanFull.Add(st.FullSolve)
	m.memoHits.Add(st.MemoHits)
	m.memoMisses.Add(st.MemoMisses)
	m.memoEvictions.Add(st.MemoEvictions)
}
