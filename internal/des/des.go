// Package des is a deterministic discrete-event simulator for *online*
// co-scheduling on cache-partitioned platforms. Where internal/sim
// executes a fixed schedule whose applications all start at t = 0, des
// models the headline use case of the paper — a shared node whose CAT
// partition must be recomputed as jobs come and go: jobs arrive over
// virtual time via pluggable arrival processes (Poisson, inhomogeneous
// Poisson via Lewis–Shedler thinning, Gamma bursts, fixed batches,
// trace replay), an event loop with a heap-ordered queue advances the
// clock, and on every arrival and completion an online Policy re-invokes
// the paper's heuristics (or the portfolio engine) over the currently
// resident jobs, repartitioning processors and cache with each job's
// *remaining* work charged under the new shares.
//
// Within a constant allocation an Amdahl application's progress is
// linear in time, so the engine is exact rather than time-stepped: the
// clock hops from event to event, and completion predictions are
// re-planned (heap events are generation-invalidated) whenever the
// allocation changes. The whole simulation is a pure function of the
// scenario — single-threaded event loop, all randomness drawn from
// seeded solve.RNG streams, and policy parallelism (the portfolio
// engine) already bit-deterministic — so a fixed seed yields an
// identical event log across runs and worker counts.
//
// The degenerate scenario (every job at t = 0, a no-repartition policy)
// reproduces internal/sim's static execution bit-for-bit; the property
// tests rely on this cross-check. See cmd/dessim for the CLI surface.
package des

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/stats"
)

// doneTol mirrors internal/sim's completion tolerance: a job whose
// completed fraction reaches 1-doneTol at an event finishes there. Using
// the same constant (and the same progress arithmetic) is what makes the
// t=0/no-repartition case agree with sim.Execute bit-for-bit.
const doneTol = 1e-12

// budgetTol is the relative slack allowed on the processor and cache
// budgets of policy-returned allocations, matching sched's validation.
const budgetTol = 1e-6

// Scenario is one online co-scheduling problem.
type Scenario struct {
	Platform model.Platform
	// Arrivals produces the job stream. The process is consumed by the
	// run; build a fresh one per Simulate call.
	Arrivals ArrivalProcess
	// Policy decides the allocation of the resident set at every
	// arrival and completion.
	Policy Policy
	// Duration, when > 0, cuts off the arrival stream. The admission
	// window is the half-open interval [0, Duration): an arrival at
	// exactly t == Duration is discarded (counted in Result.Truncated),
	// regardless of which arrival process produced it. Already-admitted
	// jobs always run to completion.
	Duration float64
	// MaxResident, when > 0, bounds how many jobs share the node at
	// once; excess arrivals wait in a FIFO queue.
	MaxResident int
	// Metrics instruments the run (see NewMetrics). Nil disables all
	// observation; the event log and every result are bit-identical
	// either way.
	Metrics *Metrics
}

// JobMetrics is the per-job outcome of an online run.
type JobMetrics struct {
	Job     int     // dense id in arrival order
	Name    string  // application name (factory-stamped)
	Arrival float64 // when the job entered the system
	Start   float64 // when it first held > 0 processors
	Finish  float64 // when it completed
	// Wait is Start - Arrival: time spent queued (in the FIFO or
	// resident with a zero allocation).
	Wait float64
	// Response is Finish - Arrival.
	Response float64
	// Stretch is Response divided by the job's execution time on the
	// dedicated machine (all processors, the whole cache) — the
	// classical slowdown metric of online scheduling.
	Stretch float64
}

// Result is the full outcome of an online simulation.
type Result struct {
	Jobs   []JobMetrics
	Events []Event // append-only log, Seq-ordered
	// Makespan is the completion time of the last job (virtual time at
	// which the system drained).
	Makespan float64
	// ProcessorTime integrates allocated processors over time;
	// ProcessorTime / (p × Makespan) is the machine utilization.
	ProcessorTime float64
	// CacheTime integrates the allocated cache fraction over time;
	// CacheTime / Makespan is the mean cache occupancy in [0, 1].
	CacheTime float64
	// QueueTime integrates the queue length (FIFO plus zero-allocation
	// residents) over time; QueueTime / Makespan is the mean queue
	// length.
	QueueTime float64
	// MaxQueue is the largest queue length observed.
	MaxQueue int
	// Repartitions counts policy invocations that changed the
	// allocation of at least one resident job.
	Repartitions int
	// Truncated counts arrivals discarded by the Duration cutoff.
	Truncated int
	// Replan is the policy's delta-rescheduling telemetry (zero for
	// policies that never take a fast path, e.g. NoRepartition).
	Replan ReplanStats
	// Wait, Response and Stretch summarize the per-job metrics.
	Wait, Response, Stretch stats.Summary
}

// Utilization returns ProcessorTime normalized by the machine capacity
// over the run, or 0 for an empty run.
func (r *Result) Utilization(pl model.Platform) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.ProcessorTime / (pl.Processors * r.Makespan)
}

// MeanCacheOccupancy returns the time-averaged allocated cache fraction.
func (r *Result) MeanCacheOccupancy() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.CacheTime / r.Makespan
}

// MeanQueueLength returns the time-averaged queue length.
func (r *Result) MeanQueueLength() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.QueueTime / r.Makespan
}

// jobState tracks one job through the run.
type jobState struct {
	app     model.Application
	arrival float64
	start   float64
	finish  float64
	frac    float64 // completed fraction of the original work
	procs   float64
	cache   float64
	// exe caches app.Exe(platform, procs, cache) for the current
	// allocation (+Inf while the job holds nothing). Exe is a pure
	// function of the allocation, so refreshing the cache exactly when
	// procs/cache change keeps every read bit-identical to recomputing
	// — it only spares the event loop an Amdahl/miss-rate evaluation
	// per resident per event.
	exe     float64
	started bool
	done    bool
}

// engine is the mutable state of one Simulate call.
type engine struct {
	sc          Scenario
	pq          eventQueue
	jobs        []jobState
	residents   []int // job ids currently on the node, admission order
	fifo        []int // job ids waiting for a residency slot
	now         float64
	gen         uint64 // current completion-event generation
	res         *Result
	queueLen    int     // current queue length (fifo + zero-alloc residents)
	lastArrival float64 // last time pulled from the process, for monotonicity
	exhausted   bool

	// Recycled per-event scratch: the current event batch, the policy's
	// resident view, and the re-plan's stuck list. All are rebuilt from
	// live state at every use, so recycling cannot change results.
	batch []qEvent
	view  []Resident
	stuck []int
}

// Simulate runs the scenario to completion: until the arrival stream is
// exhausted (or cut off by Duration) and every admitted job has
// finished. It returns an error for invalid scenarios, for policies
// that overrun the resource budgets, and for deadlocks (resident jobs
// that can never finish because no future event would grant them
// processors).
func Simulate(sc Scenario) (*Result, error) {
	return SimulateContext(context.Background(), sc)
}

// ctxCheckEvery is how many event-loop iterations pass between context
// polls in SimulateContext. Every iteration already costs at least one
// policy invocation or heap operation, so 8 keeps the poll overhead
// unmeasurable while bounding the cancellation latency to a handful of
// events.
const ctxCheckEvery = 8

// SimulateContext is Simulate under a context. The event loop polls ctx
// every ctxCheckEvery events and abandons the run with ctx.Err() once
// it is cancelled; the partially-advanced simulation state is simply
// dropped (the engine is per-call, so no pooled state can leak), and a
// subsequent call with a live context is bit-identical to an
// uncancelled run.
func SimulateContext(ctx context.Context, sc Scenario) (*Result, error) {
	if err := sc.Platform.Validate(); err != nil {
		return nil, err
	}
	if sc.Arrivals == nil {
		return nil, fmt.Errorf("des: scenario needs an arrival process")
	}
	if sc.Policy == nil {
		return nil, fmt.Errorf("des: scenario needs an online policy")
	}
	if math.IsNaN(sc.Duration) || math.IsInf(sc.Duration, 0) || sc.Duration < 0 {
		return nil, fmt.Errorf("des: duration must be finite and >= 0, got %v", sc.Duration)
	}
	if sc.MaxResident < 0 {
		return nil, fmt.Errorf("des: max resident must be >= 0, got %d", sc.MaxResident)
	}
	e := &engine{sc: sc, res: &Result{}}
	if err := e.pullArrival(); err != nil {
		return nil, err
	}
	if e.pq.Len() == 0 {
		return nil, fmt.Errorf("des: arrival process produced no arrivals within the duration")
	}
	for steps := 0; e.pq.Len() > 0; steps++ {
		if steps%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := e.step(); err != nil {
			return nil, err
		}
	}
	for id := range e.jobs {
		if !e.jobs[id].done {
			return nil, fmt.Errorf("des: deadlock: job %d (%s) can never finish (zero allocation with no pending events)", id, e.jobs[id].app.Name)
		}
	}
	e.finalize()
	if tp, ok := sc.Policy.(ReplanReporter); ok {
		e.res.Replan = tp.ReplanStats()
	}
	if m := sc.Metrics; m != nil {
		m.simulations.Inc()
		m.jobs.Add(uint64(len(e.res.Jobs)))
		m.observeReplan(e.res.Replan)
	}
	return e.res, nil
}

// ReplanReporter is implemented by policies that expose
// delta-rescheduling telemetry (HeuristicPolicy, PortfolioPolicy). The
// engine type-asserts the scenario's policy against it after a run and
// copies the stats into Result.Replan; policies without a fast path
// (NoRepartition, custom policies) simply leave Replan zero.
type ReplanReporter interface {
	ReplanStats() ReplanStats
}

// pullArrival fetches the next arrival from the process (unless
// exhausted or beyond the Duration cutoff), registers the job and
// queues its arrival event. A process that violates its contract —
// non-finite times, invalid applications, or times going backwards —
// fails the run with an error; the built-in constructors validate
// their streams, so this only fires for misbehaving custom processes.
func (e *engine) pullArrival() error {
	if e.exhausted {
		return nil
	}
	for {
		a, ok := e.sc.Arrivals.Next()
		if !ok {
			e.exhausted = true
			return nil
		}
		if err := validateArrival(a); err != nil {
			return fmt.Errorf("des: arrival process %s emitted an invalid arrival: %w", e.sc.Arrivals.Name(), err)
		}
		if a.Time < e.lastArrival {
			return fmt.Errorf("des: arrival process %s went backwards: t=%g after t=%g", e.sc.Arrivals.Name(), a.Time, e.lastArrival)
		}
		e.lastArrival = a.Time
		// Half-open admission window [0, Duration): the boundary arrival
		// is truncated, for every arrival process alike.
		if e.sc.Duration > 0 && a.Time >= e.sc.Duration {
			e.res.Truncated++
			continue // keep draining to count every truncated arrival
		}
		id := len(e.jobs)
		e.jobs = append(e.jobs, jobState{app: a.App, arrival: a.Time, start: math.NaN(), finish: math.NaN(), exe: math.Inf(1)})
		e.pq.push(qEvent{time: a.Time, kind: qArrival, job: id})
		return nil
	}
}

// validateArrival rejects non-finite or negative arrival times and
// invalid application profiles before they can poison the simulation.
func validateArrival(a Arrival) error {
	if math.IsNaN(a.Time) || math.IsInf(a.Time, 0) || a.Time < 0 {
		return fmt.Errorf("des: arrival time %v is not finite and >= 0", a.Time)
	}
	return a.App.Validate()
}

// step processes the earliest event batch: every valid event at the
// minimum pending time. Stale completion events (superseded by a
// re-plan) are discarded without touching the clock, so they never
// perturb the progress arithmetic.
func (e *engine) step() error {
	batch := e.batch[:0]
	var t float64
	for e.pq.Len() > 0 {
		ev := e.pq.pop()
		if e.stale(ev) {
			continue
		}
		batch = append(batch, ev)
		t = ev.time
		break
	}
	if len(batch) == 0 {
		e.batch = batch
		return nil
	}
	batch = e.absorbAt(t, batch)

	// Advance progress to t with the same arithmetic as internal/sim:
	// frac += dt/exe per running job, finishing every job that reaches
	// 1-doneTol.
	changed := e.advance(t)

	// Completions freed residency slots; admit FIFO waiters, then
	// process this batch's arrivals. Pulling an arrival may reveal
	// another one at the same instant (e.g. a size-k batch process):
	// absorb those into the current batch so simultaneous arrivals see
	// exactly one policy invocation, like internal/sim's single t=0
	// allocation.
	changed = e.admitQueued() || changed
	for i := 0; i < len(batch); i++ {
		if batch[i].kind != qArrival {
			continue
		}
		if e.admitOrQueue(batch[i].job) {
			changed = true
		}
		if err := e.pullArrival(); err != nil {
			return err
		}
		batch = e.absorbAt(t, batch)
	}

	// Delta-rescheduling short-circuit: a step that neither finished nor
	// admitted anything (an arrival parked in the FIFO of a saturated
	// node) leaves every resident's (frac-at-prediction, allocation)
	// state exactly as the pending completion events assumed, so the
	// predictions in the heap are still the ones a fresh re-plan would
	// derive — skipping the policy call AND the re-plan is free. The one
	// exception is a consumed completion event whose job fell an ulp
	// short of the tolerance: its prediction is spent, so a re-plan must
	// reissue it even though no visible state changed.
	replan := changed
	if !replan {
		for _, ev := range batch {
			if ev.kind == qCompletion {
				replan = true
				break
			}
		}
	}
	e.batch = batch[:0]
	if !replan {
		e.recountQueue()
		return nil
	}
	if changed {
		if err := e.repartition(); err != nil {
			return err
		}
	}
	// Re-plan completions from the current state at every stop. This is
	// what keeps the surviving timeline bit-identical to internal/sim's
	// loop (which recomputes the next completion fresh at every event):
	// predictions always derive from (now, frac, exe) exactly as sim's
	// nextT does. A job whose remaining time underflows the clock (its
	// predicted completion cannot advance virtual time) is finished in
	// place — the float-time analogue of sim's completion tolerance —
	// and the survivors are repartitioned again at this instant.
	for {
		stuck := e.planCompletions()
		if len(stuck) == 0 {
			break
		}
		for _, id := range stuck {
			st := &e.jobs[id]
			st.frac = 1
			st.done = true
			st.finish = e.now
			st.procs, st.cache, st.exe = 0, 0, math.Inf(1)
			e.log(EventFinish, id)
		}
		e.pruneResidents()
		e.admitQueued()
		if err := e.repartition(); err != nil {
			return err
		}
	}
	e.recountQueue()
	return nil
}

// stale reports whether a pending event was superseded by a later
// completion re-plan; stale events are discarded without touching the
// clock, so they never perturb the progress arithmetic.
func (e *engine) stale(ev qEvent) bool {
	return ev.kind == qCompletion && ev.gen != e.gen
}

// absorbAt appends every still-valid event scheduled at exactly t to
// the batch.
func (e *engine) absorbAt(t float64, batch []qEvent) []qEvent {
	for e.pq.Len() > 0 && e.pq.peekTime() == t {
		ev := e.pq.pop()
		if !e.stale(ev) {
			batch = append(batch, ev)
		}
	}
	return batch
}

// advance moves every resident job forward from e.now to t, crediting
// progress and finishing jobs that reach the completion tolerance.
// Returns whether any job finished.
func (e *engine) advance(t float64) bool {
	dt := t - e.now
	if dt < 0 {
		// The heap orders events by time; a negative step is impossible.
		panic(fmt.Sprintf("des: time went backwards: %g -> %g", e.now, t))
	}
	e.now = t
	e.res.QueueTime += float64(e.queueLen) * dt
	finished := false
	for _, id := range e.residents {
		st := &e.jobs[id]
		if st.done {
			continue
		}
		e.res.ProcessorTime += st.procs * dt
		e.res.CacheTime += st.cache * dt
		if !math.IsInf(st.exe, 1) {
			st.frac += dt / st.exe
		}
		if st.frac >= 1-doneTol {
			st.frac = 1
			st.done = true
			st.finish = t
			st.procs, st.cache, st.exe = 0, 0, math.Inf(1)
			finished = true
			e.log(EventFinish, id)
		}
	}
	if finished {
		e.pruneResidents()
	}
	return finished
}

// pruneResidents drops finished jobs from the resident list, keeping
// admission order.
func (e *engine) pruneResidents() {
	live := e.residents[:0]
	for _, id := range e.residents {
		if !e.jobs[id].done {
			live = append(live, id)
		}
	}
	e.residents = live
}

// admitOrQueue makes an arrived job resident if a slot is free, else
// parks it in the FIFO. Returns whether the resident set changed.
func (e *engine) admitOrQueue(id int) bool {
	if e.sc.MaxResident > 0 && len(e.residents) >= e.sc.MaxResident {
		e.fifo = append(e.fifo, id)
		e.log(EventArrival, id)
		return false
	}
	e.residents = append(e.residents, id)
	e.log(EventArrival, id)
	return true
}

// admitQueued promotes FIFO waiters into freed residency slots, oldest
// first. Returns whether anything was admitted.
func (e *engine) admitQueued() bool {
	admitted := false
	for len(e.fifo) > 0 && (e.sc.MaxResident == 0 || len(e.residents) < e.sc.MaxResident) {
		id := e.fifo[0]
		e.fifo = e.fifo[1:]
		e.residents = append(e.residents, id)
		admitted = true
	}
	return admitted
}

// repartition invokes the policy over the resident set and applies the
// returned allocation after validating it against the platform budgets.
func (e *engine) repartition() error {
	if len(e.residents) == 0 {
		return nil
	}
	view := e.view[:0]
	if cap(view) < len(e.residents) {
		view = make([]Resident, 0, len(e.residents))
	}
	view = view[:len(e.residents)]
	e.view = view
	for i, id := range e.residents {
		st := &e.jobs[id]
		view[i] = Resident{
			Job:       id,
			App:       st.app,
			Remaining: 1 - st.frac,
			Assign:    sched.Assignment{Processors: st.procs, CacheShare: st.cache},
			Started:   st.started,
		}
	}
	m := e.sc.Metrics
	var allocStart time.Time
	if m != nil {
		allocStart = time.Now()
	}
	asg, err := e.sc.Policy.Allocate(e.sc.Platform, view)
	if m != nil {
		m.allocSeconds.Observe(time.Since(allocStart).Seconds())
		m.Tracer.Span("allocate", e.sc.Policy.Name(), e.now, -1, allocStart)
	}
	if err != nil {
		return fmt.Errorf("des: policy %s at t=%g: %w", e.sc.Policy.Name(), e.now, err)
	}
	if len(asg) != len(view) {
		return fmt.Errorf("des: policy %s returned %d assignments for %d resident jobs", e.sc.Policy.Name(), len(asg), len(view))
	}
	var sumP, sumX solve.Kahan
	for i, a := range asg {
		if a.Processors < 0 || math.IsNaN(a.Processors) || math.IsInf(a.Processors, 0) {
			return fmt.Errorf("des: policy %s assigned invalid processors %v to job %d", e.sc.Policy.Name(), a.Processors, view[i].Job)
		}
		// The share bound gets the same budgetTol slack as the sum
		// checks below: heuristic share arithmetic (normalization,
		// footprint caps) can land an ulp above 1, and rejecting that
		// while tolerating the same slack on the budget would make the
		// engine stricter than the schedules it replays.
		if a.CacheShare < 0 || a.CacheShare > 1+budgetTol || math.IsNaN(a.CacheShare) {
			return fmt.Errorf("des: policy %s assigned invalid cache share %v to job %d", e.sc.Policy.Name(), a.CacheShare, view[i].Job)
		}
		sumP.Add(a.Processors)
		sumX.Add(a.CacheShare)
	}
	if sumP.Sum() > e.sc.Platform.Processors*(1+budgetTol) {
		return fmt.Errorf("des: policy %s exceeded the processor budget: %v > %v", e.sc.Policy.Name(), sumP.Sum(), e.sc.Platform.Processors)
	}
	if sumX.Sum() > 1+budgetTol {
		return fmt.Errorf("des: policy %s exceeded the cache budget: %v > 1", e.sc.Policy.Name(), sumX.Sum())
	}
	applied := false
	for i, id := range e.residents {
		st := &e.jobs[id]
		if st.procs != asg[i].Processors || st.cache != asg[i].CacheShare {
			applied = true
			st.procs, st.cache = asg[i].Processors, asg[i].CacheShare
			st.exe = st.app.Exe(e.sc.Platform, st.procs, st.cache)
		}
		if !st.started && st.procs > 0 {
			st.started = true
			st.start = e.now
			e.log(EventStart, id)
		}
	}
	// Only allocation *changes* count as repartitions; a frozen policy
	// confirming the status quo leaves no trace in the log.
	if applied {
		e.res.Repartitions++
		e.log(EventRepartition, -1)
	}
	return nil
}

// planCompletions re-plans every resident job's completion event from
// the current state, invalidating all previous predictions. Jobs whose
// predicted completion cannot advance the clock (remaining time below
// one ulp of the current virtual time) are returned as stuck instead of
// queued, so the caller can finish them and avoid a zero-dt livelock.
func (e *engine) planCompletions() (stuck []int) {
	if len(e.residents) == 0 {
		return nil
	}
	stuck = e.stuck[:0]
	e.gen++
	for _, id := range e.residents {
		st := &e.jobs[id]
		if math.IsInf(st.exe, 1) {
			continue // zero allocation: waits for a future repartition
		}
		t := e.now + (1-st.frac)*st.exe
		if math.IsInf(t, 1) || math.IsNaN(t) {
			// Overflowed the clock (extreme work/latency inputs): the
			// job cannot finish in representable virtual time. Leave it
			// event-less so the run ends in a clean deadlock error
			// instead of propagating non-finite time into the metrics.
			continue
		}
		if !(t > e.now) {
			stuck = append(stuck, id)
			continue
		}
		e.pq.push(qEvent{time: t, kind: qCompletion, job: id, gen: e.gen})
	}
	// Hand the scratch back for the next re-plan; the returned slice
	// stays valid because the caller consumes it before the next call.
	e.stuck = stuck
	return stuck
}

// recountQueue refreshes the current queue length: FIFO waiters plus
// residents holding no processors.
func (e *engine) recountQueue() {
	n := len(e.fifo)
	for _, id := range e.residents {
		if e.jobs[id].procs == 0 {
			n++
		}
	}
	e.queueLen = n
	if n > e.res.MaxQueue {
		e.res.MaxQueue = n
	}
}

// log appends one event to the result's event log, stamping the
// occupancy after the event: Resident counts jobs holding processors,
// Queued the FIFO waiters plus zero-allocation residents — the same
// partition the queue-length metric integrates, so statistics derived
// from the event stream agree with Result.MeanQueueLength. Jobs marked
// done inside an advance sweep are excluded even before the resident
// list is pruned.
func (e *engine) log(kind EventKind, job int) {
	running, parked := 0, 0
	for _, id := range e.residents {
		if st := &e.jobs[id]; !st.done {
			if st.procs > 0 {
				running++
			} else {
				parked++
			}
		}
	}
	ev := Event{
		Seq:      len(e.res.Events),
		Time:     e.now,
		Kind:     kind,
		Job:      job,
		Resident: running,
		Queued:   len(e.fifo) + parked,
	}
	if job >= 0 {
		ev.Name = e.jobs[job].app.Name
	}
	e.res.Events = append(e.res.Events, ev)
	if m := e.sc.Metrics; m != nil {
		m.events[kind].Inc()
		m.residentJobs.Set(int64(running))
		m.queueDepth.Set(int64(ev.Queued))
		m.Tracer.Event(kind.String(), ev.Name, e.now, job)
	}
}

// finalize computes per-job metrics and their summaries.
func (e *engine) finalize() {
	pl := e.sc.Platform
	e.res.Jobs = make([]JobMetrics, len(e.jobs))
	waits := make([]float64, len(e.jobs))
	resps := make([]float64, len(e.jobs))
	stretches := make([]float64, len(e.jobs))
	for id := range e.jobs {
		st := &e.jobs[id]
		dedicated := st.app.Exe(pl, pl.Processors, 1)
		m := JobMetrics{
			Job:      id,
			Name:     st.app.Name,
			Arrival:  st.arrival,
			Start:    st.start,
			Finish:   st.finish,
			Wait:     st.start - st.arrival,
			Response: st.finish - st.arrival,
		}
		if dedicated > 0 {
			m.Stretch = m.Response / dedicated
		}
		e.res.Jobs[id] = m
		waits[id], resps[id], stretches[id] = m.Wait, m.Response, m.Stretch
		if st.finish > e.res.Makespan {
			e.res.Makespan = st.finish
		}
		if om := e.sc.Metrics; om != nil {
			om.waitHist.Observe(m.Wait)
			om.stretchHist.Observe(m.Stretch)
		}
	}
	// Summaries: errors impossible for the non-empty sample (Simulate
	// rejects empty arrival streams).
	e.res.Wait, _ = stats.Summarize(waits)
	e.res.Response, _ = stats.Summarize(resps)
	e.res.Stretch, _ = stats.Summarize(stretches)
}
