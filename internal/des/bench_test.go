package des

import (
	"testing"
)

// BenchmarkDESPoisson measures the full online pipeline — Poisson
// arrival generation, event-loop bookkeeping and per-event heuristic
// repartitioning — for a 64-job open stream on a node capped at 8
// co-resident jobs. It is the hot path of every dynamic-workload study
// the subsystem enables.
func BenchmarkDESPoisson(b *testing.B) {
	sp := Spec{
		Arrivals:    ArrivalSpec{Process: "poisson", Rate: 4e-9, N: 64},
		Policy:      "DominantMinRatio",
		MaxResident: 8,
		Seed:        42,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := sp.Build(1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Simulate(sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Jobs) != 64 {
			b.Fatalf("simulated %d jobs", len(res.Jobs))
		}
	}
}

// BenchmarkDESPortfolio measures the same stream repartitioned by the
// portfolio engine — the upper bound of per-event decision cost (every
// concurrent heuristic raced at every arrival/completion).
func BenchmarkDESPortfolio(b *testing.B) {
	sp := Spec{
		Arrivals:    ArrivalSpec{Process: "poisson", Rate: 4e-9, N: 32},
		Policy:      "portfolio",
		MaxResident: 6,
		Seed:        42,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := sp.Build(0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Simulate(sc); err != nil {
			b.Fatal(err)
		}
	}
}
