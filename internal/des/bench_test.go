package des

import (
	"testing"

	"repro/internal/obs"
)

// BenchmarkDESPoisson measures the full online pipeline — Poisson
// arrival generation, event-loop bookkeeping and per-event heuristic
// repartitioning — for a 64-job open stream on a node capped at 8
// co-resident jobs. It is the hot path of every dynamic-workload study
// the subsystem enables.
func BenchmarkDESPoisson(b *testing.B) {
	sp := Spec{
		Arrivals:    ArrivalSpec{Process: "poisson", Rate: 4e-9, N: 64},
		Policy:      "DominantMinRatio",
		MaxResident: 8,
		Seed:        42,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := sp.Build(1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Simulate(sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Jobs) != 64 {
			b.Fatalf("simulated %d jobs", len(res.Jobs))
		}
	}
}

// BenchmarkDESPortfolio measures the same stream repartitioned by the
// portfolio engine — the upper bound of per-event decision cost (every
// concurrent heuristic raced at every arrival/completion).
func BenchmarkDESPortfolio(b *testing.B) {
	sp := Spec{
		Arrivals:    ArrivalSpec{Process: "poisson", Rate: 4e-9, N: 32},
		Policy:      "portfolio",
		MaxResident: 6,
		Seed:        42,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := sp.Build(0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Simulate(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDESPortfolioMetrics is the instrumented twin of
// BenchmarkDESPortfolio: the same stream with a live registry counting
// every event, gauge update and allocation timing. Comparing the pair
// pins the metrics-on overhead of the event loop's hot path.
func BenchmarkDESPortfolioMetrics(b *testing.B) {
	sp := Spec{
		Arrivals:    ArrivalSpec{Process: "poisson", Rate: 4e-9, N: 32},
		Policy:      "portfolio",
		MaxResident: 6,
		Seed:        42,
	}
	m := NewMetrics(obs.NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := sp.Build(0)
		if err != nil {
			b.Fatal(err)
		}
		sc.Metrics = m
		if _, err := Simulate(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// runHighRate executes the saturated-stream scenario the delta
// benchmarks share: arrivals an order of magnitude faster than service,
// so the node stays at its residency cap and the stream drains in
// recurring waves of cycled template jobs — the regime where
// incremental replanning pays. The templates are general Amdahl
// profiles (nonzero sequential fraction), so every cold solve runs the
// bisection equalizer rather than the perfectly-parallel Lemma-2
// shortcut — the representative cost replanning avoids. Both policy
// variants run the engine race serially (Build(1)) so the delta/full
// ratio measures replanning work, not pool parallelism, and is
// comparable across CPU counts.
func runHighRate(b *testing.B, policy string, n int) {
	b.Helper()
	sp := Spec{
		Apps: []AppSpec{
			{Name: "hr-a", Work: 2e10, Seq: 0.05, Freq: 50, MissRate: 0.05, RefCache: 1e9, Footprint: 16e9},
			{Name: "hr-b", Work: 3e10, Seq: 0.12, Freq: 80, MissRate: 0.08, RefCache: 2e9, Footprint: 24e9},
			{Name: "hr-c", Work: 1.5e10, Seq: 0.02, Freq: 120, MissRate: 0.03, RefCache: 1.5e9, Footprint: 8e9},
			{Name: "hr-d", Work: 2.5e10, Seq: 0.2, Freq: 30, MissRate: 0.1, RefCache: 3e9, Footprint: 32e9},
		},
		Arrivals:    ArrivalSpec{Process: "poisson", Rate: 4e-7, N: n},
		Policy:      policy,
		MaxResident: 8,
		Seed:        42,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Scenario construction (arrival generation, app cloning) is
		// identical across the delta/full pair and not what the ratio
		// gate measures — keep it off the clock.
		b.StopTimer()
		sc, err := sp.Build(1)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := Simulate(sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Jobs) != n {
			b.Fatalf("simulated %d jobs", len(res.Jobs))
		}
	}
}

// BenchmarkDESPortfolioHighRate is the delta-rescheduling headline
// pair: the same high-arrival-rate portfolio stream with the certified
// fast path on (delta, the default) and off (full). benchgate pins
// their ratio — see benchmarks/README.md.
func BenchmarkDESPortfolioHighRate(b *testing.B) {
	b.Run("delta", func(b *testing.B) { runHighRate(b, "portfolio", 2048) })
	b.Run("full", func(b *testing.B) { runHighRate(b, "portfolio:full", 2048) })
}

// BenchmarkDESPoissonHighRate is the single-heuristic analogue: a
// deterministic policy whose fast path is a pure memo replay, so the
// per-event cost collapses to event-loop bookkeeping.
func BenchmarkDESPoissonHighRate(b *testing.B) {
	b.Run("delta", func(b *testing.B) { runHighRate(b, "DominantMinRatio", 2048) })
	b.Run("full", func(b *testing.B) { runHighRate(b, "DominantMinRatio:full", 2048) })
}
