package des

import (
	"math"
	"testing"

	"repro/internal/solve"
	"repro/internal/trace"
	"repro/internal/workload"
)

func npbFactory(t *testing.T) JobFactory {
	t.Helper()
	f, err := CycleApps(workload.NPB())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// drain collects the whole stream, checking the interface invariants
// (finite, non-negative, non-decreasing times; valid apps).
func drain(t *testing.T, p ArrivalProcess) []Arrival {
	t.Helper()
	var out []Arrival
	prev := 0.0
	for {
		a, ok := p.Next()
		if !ok {
			return out
		}
		if err := validateArrival(a); err != nil {
			t.Fatalf("%s arrival %d: %v", p.Name(), len(out), err)
		}
		if a.Time < prev {
			t.Fatalf("%s arrival %d: time %v before %v", p.Name(), len(out), a.Time, prev)
		}
		prev = a.Time
		out = append(out, a)
	}
}

func TestPoissonMeanRate(t *testing.T) {
	const rate, n = 0.5, 4000
	p, err := NewPoisson(rate, n, npbFactory(t), solve.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	arr := drain(t, p)
	if len(arr) != n {
		t.Fatalf("got %d arrivals, want %d", len(arr), n)
	}
	// The empirical rate should be within a few percent of λ at n=4000
	// (relative error ~ 1/√n).
	got := float64(n) / arr[n-1].Time
	if math.Abs(got-rate)/rate > 0.1 {
		t.Errorf("empirical rate %v, want ~%v", got, rate)
	}
}

func TestInhomogeneousPoissonModulation(t *testing.T) {
	// Strongly modulated intensity: busy half-periods should collect
	// far more arrivals than quiet ones.
	const base, amp, period = 1.0, 0.95, 1000.0
	rate, err := SinusoidRate(base, amp, period)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewInhomogeneousPoisson(rate, base+amp, 8000, npbFactory(t), solve.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	arr := drain(t, p)
	var busy, quiet int
	for _, a := range arr {
		phase := math.Mod(a.Time, period) / period
		if phase < 0.5 {
			busy++ // sin > 0: intensity above base
		} else {
			quiet++
		}
	}
	if busy <= quiet*2 {
		t.Errorf("busy half-periods got %d arrivals vs %d quiet: thinning is not modulating", busy, quiet)
	}
}

func TestGammaBurstsStructure(t *testing.T) {
	const burst, n = 4, 400
	p, err := NewGammaBursts(0.7, 100, burst, n, npbFactory(t), solve.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	arr := drain(t, p)
	if len(arr) != n {
		t.Fatalf("got %d arrivals, want %d", len(arr), n)
	}
	// Arrivals come in runs of exactly `burst` sharing one timestamp.
	for i := 0; i < n; i += burst {
		for j := 1; j < burst; j++ {
			if arr[i+j].Time != arr[i].Time {
				t.Fatalf("arrival %d not in burst with %d: %v vs %v", i+j, i, arr[i+j].Time, arr[i].Time)
			}
		}
		if i > 0 && arr[i].Time <= arr[i-1].Time {
			t.Fatalf("burst at %d did not advance time", i)
		}
	}
}

func TestBatchSchedule(t *testing.T) {
	p, err := NewBatch(10, 3, 8, npbFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	arr := drain(t, p)
	want := []float64{0, 0, 0, 10, 10, 10, 20, 20}
	for i, a := range arr {
		if a.Time != want[i] {
			t.Errorf("arrival %d at %v, want %v", i, a.Time, want[i])
		}
	}
}

func TestReplayValidation(t *testing.T) {
	app := workload.NPB()[0]
	cases := []struct {
		name string
		arr  []Arrival
	}{
		{"empty", nil},
		{"nan time", []Arrival{{Time: math.NaN(), App: app}}},
		{"negative time", []Arrival{{Time: -1, App: app}}},
		{"inf time", []Arrival{{Time: math.Inf(1), App: app}}},
		{"unsorted", []Arrival{{Time: 5, App: app}, {Time: 1, App: app}}},
		{"bad app", []Arrival{{Time: 0}}},
	}
	for _, tc := range cases {
		if _, err := NewReplay(tc.arr); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestReplayFromTraceLocality(t *testing.T) {
	// A Zipf trace (high locality) must produce more clustered arrivals
	// than a sequential stride: compare coefficient of variation of the
	// gaps at equal mean.
	cv := func(gen trace.Generator) float64 {
		t.Helper()
		p, err := ReplayFromTrace(gen, 800, 10, npbFactory(t))
		if err != nil {
			t.Fatal(err)
		}
		arr := drain(t, p)
		var gaps []float64
		for i := 1; i < len(arr); i++ {
			gaps = append(gaps, arr[i].Time-arr[i-1].Time)
		}
		var mean, sq float64
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		for _, g := range gaps {
			sq += (g - mean) * (g - mean)
		}
		return math.Sqrt(sq/float64(len(gaps))) / mean
	}
	zipf, err := trace.NewZipf(1<<20, 64, 1.2, solve.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := trace.NewSequential(1<<20, 64)
	if err != nil {
		t.Fatal(err)
	}
	if cvZ, cvS := cv(zipf), cv(seq); cvZ <= cvS {
		t.Errorf("zipf-derived arrivals CV %v not burstier than sequential %v", cvZ, cvS)
	}
}

// TestClockOverflowExhausts: validated-but-extreme parameters
// (subnormal rates, astronomical scales) overflow virtual time; every
// built-in generator must then end its stream instead of emitting a
// contract-violating +Inf arrival.
func TestClockOverflowExhausts(t *testing.T) {
	f := npbFactory(t)
	if p, err := NewPoisson(5e-324, 3, f, solve.NewRNG(1)); err != nil {
		t.Fatal(err)
	} else if arr := drain(t, p); len(arr) != 0 {
		t.Errorf("subnormal-rate poisson emitted %d arrivals", len(arr))
	}
	if p, err := NewGammaBursts(1, 1e308, 2, 8, f, solve.NewRNG(1)); err != nil {
		t.Fatal(err)
	} else {
		drain(t, p) // drain validates finiteness and termination
	}
	if p, err := NewBatch(1e308, 1, 5, f); err != nil {
		t.Fatal(err)
	} else if arr := drain(t, p); len(arr) >= 5 {
		t.Errorf("overflowing batch schedule emitted all %d arrivals", len(arr))
	}
}

func TestConstructorValidation(t *testing.T) {
	f := npbFactory(t)
	rng := solve.NewRNG(0)
	if _, err := NewPoisson(math.NaN(), 5, f, rng); err == nil {
		t.Error("NaN rate accepted")
	}
	if _, err := NewPoisson(math.Inf(1), 5, f, rng); err == nil {
		t.Error("Inf rate accepted")
	}
	if _, err := NewPoisson(-1, 5, f, rng); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewPoisson(1, 0, f, rng); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := NewGammaBursts(0, 1, 1, 5, f, rng); err == nil {
		t.Error("zero shape accepted")
	}
	if _, err := NewBatch(math.Inf(1), 1, 5, f); err == nil {
		t.Error("Inf interval accepted")
	}
	if _, err := SinusoidRate(1, 2, 10); err == nil {
		t.Error("amplitude above base accepted")
	}
	if _, err := CycleApps(nil); err == nil {
		t.Error("empty template set accepted")
	}
	// A nil factory must fail at construction, not mid-simulation.
	if _, err := NewPoisson(1, 5, nil, rng); err == nil {
		t.Error("nil factory accepted by NewPoisson")
	}
	if _, err := NewBatch(1, 1, 5, nil); err == nil {
		t.Error("nil factory accepted by NewBatch")
	}
	if _, err := NewGammaBursts(1, 1, 1, 5, nil, rng); err == nil {
		t.Error("nil factory accepted by NewGammaBursts")
	}
}
