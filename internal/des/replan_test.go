package des

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/solve"
)

// allocPolicies builds one instance of each of the three policy kinds
// for the shared edge-case tests.
func allocPolicies(t *testing.T) map[string]Policy {
	t.Helper()
	hp, err := NewHeuristicPolicy(sched.DominantMinRatio, 1)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := NewNoRepartition(sched.DominantMinRatio, 1)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Policy{
		"heuristic":     hp,
		"portfolio":     NewPortfolioPolicy(nil, 1, 1),
		"norepartition": nr,
	}
}

// TestResidualWorkUnderflow parks a job exactly at the completion
// tolerance with a denormal-small profile, so Work × Remaining
// underflows to exactly zero — the residualApps edge that used to hand
// the heuristics an app every validator rejects (Work must be > 0).
// All three policies must still produce an allocation.
func TestResidualWorkUnderflow(t *testing.T) {
	pl := model.TaihuLight()
	apps := testApps(t, 2)
	tiny := apps[0]
	tiny.Work = 1e-312
	if tiny.Work*doneTol != 0 {
		t.Fatalf("precondition: %g × doneTol must underflow to 0, got %g", tiny.Work, tiny.Work*doneTol)
	}
	if err := tiny.Validate(); err != nil {
		t.Fatalf("precondition: the tiny profile itself must be valid: %v", err)
	}
	for name, pol := range allocPolicies(t) {
		residents := []Resident{
			{Job: 0, App: tiny, Remaining: doneTol, Started: true},
			{Job: 1, App: apps[1], Remaining: 1},
		}
		asg, err := pol.Allocate(pl, residents)
		if err != nil {
			t.Errorf("%s: Allocate with an underflowing residual failed: %v", name, err)
			continue
		}
		if len(asg) != len(residents) {
			t.Errorf("%s: got %d assignments for %d residents", name, len(asg), len(residents))
		}
	}
}

// TestDurationBoundaryHalfOpen pins the admission window as [0,
// Duration): an arrival at exactly t == Duration is truncated, for
// every arrival process alike.
func TestDurationBoundaryHalfOpen(t *testing.T) {
	pl := model.TaihuLight()
	apps := testApps(t, 2)
	factory, err := CycleApps(apps)
	if err != nil {
		t.Fatal(err)
	}
	newPolicy := func() Policy {
		p, err := NewHeuristicPolicy(sched.DominantMinRatio, 3)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	t.Run("replay", func(t *testing.T) {
		arr := []Arrival{
			{Time: 0, App: apps[0]},
			{Time: 1e9, App: apps[1]},
			{Time: 2e9, App: apps[0]},
		}
		rp, err := NewReplay(arr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(Scenario{Platform: pl, Arrivals: rp, Policy: newPolicy(), Duration: 2e9})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Jobs) != 2 || res.Truncated != 1 {
			t.Errorf("replay: admitted %d / truncated %d, want 2 / 1 (t == Duration is out)", len(res.Jobs), res.Truncated)
		}
	})

	t.Run("batch", func(t *testing.T) {
		bp, err := NewBatch(1e9, 1, 3, factory) // arrivals at t = 0, 1e9, 2e9
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(Scenario{Platform: pl, Arrivals: bp, Policy: newPolicy(), Duration: 2e9})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Jobs) != 2 || res.Truncated != 1 {
			t.Errorf("batch: admitted %d / truncated %d, want 2 / 1 (t == Duration is out)", len(res.Jobs), res.Truncated)
		}
	})

	t.Run("poisson", func(t *testing.T) {
		// Record the third arrival time of the seeded stream, then replay
		// the identical stream with Duration pinned to exactly that time.
		probe, err := NewPoisson(1e-9, 3, factory, solve.NewRNG(9))
		if err != nil {
			t.Fatal(err)
		}
		var third float64
		for i := 0; i < 3; i++ {
			a, ok := probe.Next()
			if !ok {
				t.Fatal("poisson stream ended early")
			}
			third = a.Time
		}
		pp, err := NewPoisson(1e-9, 3, factory, solve.NewRNG(9))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(Scenario{Platform: pl, Arrivals: pp, Policy: newPolicy(), Duration: third})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Jobs) != 2 || res.Truncated != 1 {
			t.Errorf("poisson: admitted %d / truncated %d, want 2 / 1 (t == Duration is out)", len(res.Jobs), res.Truncated)
		}
	})
}

// TestNoRepartitionStuckWaveDrains pins the corrected drain condition:
// a resident holding processors but making zero progress (its execution
// time under the current allocation is +Inf — the huge-work,
// zero-cache, high-latency edge) must not freeze the wave forever.
// The next decision point has to fall through to a fresh wave that
// allocates the waiting arrivals.
func TestNoRepartitionStuckWaveDrains(t *testing.T) {
	pl := model.TaihuLight()
	apps := testApps(t, 2)
	stuck := apps[0]
	stuck.Work = 2e306
	stuck.AccessFreq = 100
	if !math.IsInf(stuck.Exe(pl, 1, 0), 1) {
		t.Fatalf("precondition: the stuck profile must have Exe = +Inf on (1 proc, 0 cache), got %g", stuck.Exe(pl, 1, 0))
	}
	pol, err := NewNoRepartition(sched.DominantMinRatio, 1)
	if err != nil {
		t.Fatal(err)
	}
	residents := []Resident{
		{Job: 0, App: stuck, Remaining: 0.5, Assign: sched.Assignment{Processors: 1, CacheShare: 0}, Started: true},
		{Job: 1, App: apps[1], Remaining: 1}, // fresh arrival, parked
	}
	asg, err := pol.Allocate(pl, residents)
	if err != nil {
		t.Fatalf("Allocate on a stuck wave: %v", err)
	}
	if asg[1].Processors <= 0 {
		t.Fatalf("stuck wave froze out the new arrival (got %+v); the drain condition must ignore zero-progress residents", asg[1])
	}
	// A genuinely progressing wave must still freeze.
	residents[0] = Resident{Job: 0, App: apps[0], Remaining: 0.5, Assign: sched.Assignment{Processors: 128, CacheShare: 0.5}, Started: true}
	asg, err = pol.Allocate(pl, residents)
	if err != nil {
		t.Fatal(err)
	}
	if asg[1].Processors != 0 || asg[0] != residents[0].Assign {
		t.Fatalf("running wave was not frozen: %+v", asg)
	}
}

// waveScenario is a saturated online scenario whose resident sets recur
// (cycled template jobs under a residency cap): the workload where the
// delta fast path should fire.
func waveScenario(t *testing.T, spec string, seed uint64) Scenario {
	t.Helper()
	pl := model.TaihuLight()
	factory, err := CycleApps(testApps(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	ap, err := NewPoisson(2e-9, 24, factory, solve.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	pol, err := ParsePolicy(spec, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return Scenario{Platform: pl, Arrivals: ap, Policy: pol, MaxResident: 3}
}

// TestDeltaMatchesFullReplan is the in-package equivalence spot check
// (the exhaustive sweep lives in the conform build): the delta fast
// path must reproduce the full-replan run bit-for-bit — event log, job
// metrics, and every integral — while actually taking fast paths.
func TestDeltaMatchesFullReplan(t *testing.T) {
	for _, spec := range []string{"portfolio", "DominantMinRatio", "DominantRandom"} {
		delta, err := Simulate(waveScenario(t, spec, 7))
		if err != nil {
			t.Fatalf("%s: delta run: %v", spec, err)
		}
		full, err := Simulate(waveScenario(t, spec+":full", 7))
		if err != nil {
			t.Fatalf("%s: full run: %v", spec, err)
		}
		if spec != "DominantRandom" && delta.Replan.FastPath == 0 {
			t.Errorf("%s: delta run never took the fast path (stats %+v)", spec, delta.Replan)
		}
		if full.Replan.FastPath != 0 {
			t.Errorf("%s:full: full-replan run claims fast paths (stats %+v)", spec, full.Replan)
		}
		// Telemetry is the only field allowed to differ.
		delta.Replan, full.Replan = ReplanStats{}, ReplanStats{}
		if !reflect.DeepEqual(delta, full) {
			t.Errorf("%s: delta and full-replan results differ", spec)
		}
	}
}

// TestHeuristicPolicyFastPathAllocs: a memo-served Allocate call on a
// deterministic heuristic policy is allocation-free — no RNG, no
// residual buffer growth, no solve.
func TestHeuristicPolicyFastPathAllocs(t *testing.T) {
	pl := model.TaihuLight()
	apps := testApps(t, 4)
	pol, err := NewHeuristicPolicy(sched.DominantMinRatio, 1)
	if err != nil {
		t.Fatal(err)
	}
	residents := make([]Resident, len(apps))
	for i, a := range apps {
		residents[i] = Resident{Job: i, App: a, Remaining: 1}
	}
	if _, err := pol.Allocate(pl, residents); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := pol.Allocate(pl, residents); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("memo-served Allocate allocates %.1f times per run, want 0", allocs)
	}
}

// TestPortfolioPolicyFastPathAllocs bounds the delta path of the
// portfolio policy: only the randomized heuristics re-solve (their
// substreams never repeat), so the per-call allocation budget is a
// handful of RNGs and schedules instead of a full engine race.
func TestPortfolioPolicyFastPathAllocs(t *testing.T) {
	pl := model.TaihuLight()
	apps := testApps(t, 4)
	pol := NewPortfolioPolicy(nil, 1, 1)
	residents := make([]Resident, len(apps))
	for i, a := range apps {
		residents[i] = Resident{Job: i, App: a, Remaining: 1}
	}
	if _, err := pol.Allocate(pl, residents); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := pol.Allocate(pl, residents); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 32
	if allocs > budget {
		t.Errorf("delta-path Allocate allocates %.1f times per run, budget %d", allocs, budget)
	}
	if st := pol.ReplanStats(); st.FastPath == 0 || st.FullSolve != 1 {
		t.Errorf("unexpected replan stats %+v, want every post-seed call on the fast path", st)
	}
}
