package des

import (
	"bytes"
	"math"
	"testing"
)

// fuzzSimBudget bounds how large a decoded scenario the fuzzer will
// actually simulate; bigger ones stop at Build. Decoding and validation
// must hold for any input, but event-loop runtime grows with the
// arrival count and the fuzzer should spend its budget on the decoder.
const fuzzSimBudget = 24

// FuzzSpecJSON feeds arbitrary bytes to the scenario decoder. Every
// accepted spec must build, and small ones must simulate without
// panicking; whenever a simulation succeeds, its result must satisfy
// the engine's invariants (finite non-negative times, causal per-job
// metrics, time-ordered log). This is the guard against NaN/Inf/
// negative values sneaking through validation into the heuristics.
func FuzzSpecJSON(f *testing.F) {
	seeds := []string{
		`{"arrivals": {"process": "poisson", "rate": 2e-9, "n": 6}}`,
		`{"arrivals": {"process": "ipoisson", "baseRate": 2e-9, "amplitude": 1e-9, "period": 5e9, "n": 5},
		  "policy": "DominantRevMaxRatio", "seed": 7}`,
		`{"arrivals": {"process": "gamma", "shape": 0.5, "scale": 4e8, "burst": 2, "n": 6},
		  "maxResident": 2}`,
		`{"arrivals": {"process": "batch", "interval": 0, "size": 6, "n": 6},
		  "policy": "norepartition:DominantMinRatio"}`,
		`{"arrivals": {"process": "replay",
		  "replay": [{"time": 0}, {"time": 1e9}, {"time": 1e9}]},
		  "policy": "Fair", "duration": 5e9}`,
		`{"arrivals": {"process": "trace", "trace": "zipf", "meanGap": 1e8, "n": 8, "traceBytes": 65536}}`,
		`{"platform": {"processors": 16, "cacheSize": 4e7, "ls": 0.17, "ll": 1, "alpha": 0.5},
		  "apps": [{"name": "A", "work": 1e10, "seq": 0.05, "freq": 0.5, "missRate": 1e-3, "refCache": 4e7}],
		  "arrivals": {"process": "poisson", "rate": 1e-8, "n": 4}}`,
		`{"arrivals": {"process": "poisson", "rate": 1e400, "n": 1}}`,
		`{"arrivals": {"process": "replay", "replay": [{"time": -1}]}}`,
		`{"arrivals": {"process": "batch", "interval": -3, "size": 1, "n": 1}}`,
		`{}`,
		`null`,
		`[1,2`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := DecodeSpec(bytes.NewReader(data))
		if err != nil {
			return // rejected input: nothing more to check
		}
		sc, err := sp.Build(1)
		if err != nil {
			// Build may still reject (e.g. a policy string naming the
			// sequential AllProcCache), but never with a panic.
			return
		}
		if tooBigToSimulate(sp) {
			return
		}
		res, err := Simulate(sc)
		if err != nil {
			return // clean errors (deadlocks, overflow) are acceptable
		}
		checkInvariants(t, res)
	})
}

// tooBigToSimulate bounds the event-loop work of one fuzz execution.
func tooBigToSimulate(sp *Spec) bool {
	if len(sp.Apps) > fuzzSimBudget {
		return true
	}
	a := sp.Arrivals
	if a.Process == "replay" {
		return len(a.Replay) > fuzzSimBudget
	}
	if a.Process == "trace" && a.TraceBytes > 1<<22 {
		return true
	}
	return a.N > fuzzSimBudget
}

// checkInvariants asserts what every successful simulation must
// guarantee, whatever the inputs.
func checkInvariants(t *testing.T, res *Result) {
	t.Helper()
	if len(res.Jobs) == 0 {
		t.Fatal("successful run with zero jobs")
	}
	if math.IsNaN(res.Makespan) || math.IsInf(res.Makespan, 0) || res.Makespan < 0 {
		t.Fatalf("non-finite makespan %v", res.Makespan)
	}
	for _, j := range res.Jobs {
		ok := !math.IsNaN(j.Arrival) && !math.IsNaN(j.Start) && !math.IsNaN(j.Finish) &&
			j.Arrival >= 0 && j.Start >= j.Arrival && j.Finish >= j.Start && j.Finish <= res.Makespan
		if !ok {
			t.Fatalf("job %d metrics out of order: arrival %v start %v finish %v (makespan %v)",
				j.Job, j.Arrival, j.Start, j.Finish, res.Makespan)
		}
		if j.Wait < 0 || j.Response < 0 || math.IsNaN(j.Stretch) {
			t.Fatalf("job %d derived metrics invalid: wait %v response %v stretch %v", j.Job, j.Wait, j.Response, j.Stretch)
		}
	}
	prev := 0.0
	for i, ev := range res.Events {
		if ev.Seq != i || ev.Time < prev || math.IsNaN(ev.Time) {
			t.Fatalf("event %d malformed: seq %d time %v (prev %v)", i, ev.Seq, ev.Time, prev)
		}
		prev = ev.Time
	}
	if res.ProcessorTime < 0 || res.CacheTime < 0 || res.QueueTime < 0 {
		t.Fatalf("negative integrals: proc %v cache %v queue %v", res.ProcessorTime, res.CacheTime, res.QueueTime)
	}
}
