package des

import (
	"fmt"
)

// EventKind classifies entries of the append-only event log.
type EventKind int

const (
	// EventArrival: a job entered the system (resident or queued).
	EventArrival EventKind = iota
	// EventStart: a job received processors for the first time.
	EventStart
	// EventFinish: a job completed its work.
	EventFinish
	// EventRepartition: the online policy recomputed the allocation of
	// the resident set.
	EventRepartition
)

// String implements fmt.Stringer with the NDJSON wire names.
func (k EventKind) String() string {
	switch k {
	case EventArrival:
		return "arrival"
	case EventStart:
		return "start"
	case EventFinish:
		return "finish"
	case EventRepartition:
		return "repartition"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of the simulation's append-only event log: what
// happened, when, to which job, and the system occupancy after it. The
// log is the debugging record of an online run and the input to timeline
// rendering; it is emitted as NDJSON by cmd/dessim.
type Event struct {
	Seq  int       // position in the log, dense from 0
	Time float64   // virtual time of the event
	Kind EventKind // what happened
	Job  int       // job id, -1 for repartition events
	Name string    // job name, "" for repartition events
	// Resident and Queued are the occupancy after the event: jobs
	// holding processors, and jobs waiting (engine FIFO plus resident
	// jobs with a zero allocation).
	Resident int
	Queued   int
}

// qEventKind separates the two event classes of the internal queue
// (distinct from the log's EventKind: starts and repartitions are
// derived, not scheduled).
type qEventKind int8

const (
	qArrival qEventKind = iota
	qCompletion
)

// qEvent is one entry of the pending-event heap. Completion events are
// invalidated wholesale by bumping the engine's generation counter:
// stale events (gen < current) are discarded on pop without influencing
// the clock, so re-planning never perturbs the arithmetic of the
// surviving timeline.
type qEvent struct {
	time float64
	seq  int // push order; total tie-break keeps the heap deterministic
	kind qEventKind
	job  int
	gen  uint64 // completion generation; unused for arrivals
}

// eventQueue is a min-heap of pending events ordered by (time, seq).
// The heap is hand-rolled over the backing slice instead of using
// container/heap: heap.Push boxes every qEvent into an interface,
// which allocated once per scheduled event on the simulator's hot
// path. Because (time, seq) is a total order, the pop sequence is
// identical to the container/heap implementation it replaces.
type eventQueue struct {
	ev   []qEvent
	seqs int
}

func (q *eventQueue) Len() int { return len(q.ev) }

func (q *eventQueue) less(i, j int) bool {
	if q.ev[i].time != q.ev[j].time {
		return q.ev[i].time < q.ev[j].time
	}
	return q.ev[i].seq < q.ev[j].seq
}

// push enqueues an event, stamping its tie-break sequence number.
func (q *eventQueue) push(e qEvent) {
	e.seq = q.seqs
	q.seqs++
	q.ev = append(q.ev, e)
	// Sift up.
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() qEvent {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev = q.ev[:n]
	// Sift down.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q.ev[i], q.ev[child] = q.ev[child], q.ev[i]
		i = child
	}
	return top
}

// peekTime returns the earliest pending time; callers must check Len.
func (q *eventQueue) peekTime() float64 { return q.ev[0].time }
