package des

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/model"
	"repro/internal/portfolio"
	"repro/internal/sched"
	"repro/internal/selector"
	"repro/internal/solve"
)

// Resident is the engine's view of one job currently on the node, as
// presented to the online policy.
type Resident struct {
	Job int               // job id
	App model.Application // original profile (full work)
	// Remaining is the fraction of the job's work left, in (0, 1].
	Remaining float64
	// Assign is the job's current allocation; zero for jobs that just
	// arrived or are parked with no resources.
	Assign sched.Assignment
	// Started reports whether the job has ever held processors.
	Started bool
}

// Policy decides, at every arrival and completion, how the platform's
// processors and cache are split among the resident jobs. Allocations
// must respect the platform budgets (Σp ≤ p, Σx ≤ 1); the engine
// validates and rejects overruns. A zero assignment parks a job (it
// makes no progress until a later repartition). Policies may keep
// internal state (invocation counters for RNG substreams); they must be
// deterministic functions of their construction parameters and the
// sequence of Allocate calls.
type Policy interface {
	// Allocate returns one assignment per resident, in resident order.
	Allocate(pl model.Platform, residents []Resident) ([]sched.Assignment, error)
	// Name identifies the policy in reports and error messages.
	Name() string
}

// policySeedStride separates the RNG substreams of successive policy
// invocations, mirroring the portfolio engine's per-heuristic stride.
const policySeedStride = 0x9E3779B97F4A7C15

// ReplanStats is the delta-rescheduling telemetry of an online policy:
// how often an Allocate call was served entirely by certified memoized
// plans versus falling back to a full solve, plus the underlying plan
// memo's hit/miss counters (which count per-heuristic lookups, so for
// the portfolio policy they run ahead of the per-call counters).
type ReplanStats struct {
	// FastPath counts Allocate calls answered without running any
	// deterministic solver: every deterministic plan came from the memo,
	// certified bit-equivalent by its exact input fingerprint.
	FastPath uint64 `json:"fastPath"`
	// FullSolve counts Allocate calls that ran the full (cold) solve —
	// first-seen resident shapes, evicted entries, or full-replan mode.
	FullSolve uint64 `json:"fullSolve"`
	// MemoHits / MemoMisses are the plan memo's per-lookup counters.
	MemoHits   uint64 `json:"memoHits"`
	MemoMisses uint64 `json:"memoMisses"`
	// MemoEvictions counts plans the memo's FIFO capacity bound dropped;
	// a high rate on a recurring workload means the memo is undersized
	// for the resident-shape variety.
	MemoEvictions uint64 `json:"memoEvictions,omitempty"`
}

// Add accumulates s into r (used by conform's per-family aggregation).
func (r *ReplanStats) Add(s ReplanStats) {
	r.FastPath += s.FastPath
	r.FullSolve += s.FullSolve
	r.MemoHits += s.MemoHits
	r.MemoMisses += s.MemoMisses
	r.MemoEvictions += s.MemoEvictions
}

// HitRate returns the memo hit fraction, or 0 for an untouched memo.
func (r ReplanStats) HitRate() float64 {
	total := r.MemoHits + r.MemoMisses
	if total == 0 {
		return 0
	}
	return float64(r.MemoHits) / float64(total)
}

// residualApps builds the application set a policy hands to the paper's
// heuristics: each resident's profile with its work scaled to what is
// left, so remaining work is charged under the shares decided now. A
// fresh job (Remaining == 1) is passed through bit-identically. The
// result reuses buf's backing array when large enough — policies keep a
// private buffer so per-event replanning does not allocate (nothing
// downstream retains the slice past the Allocate call).
func residualApps(buf []model.Application, residents []Resident) []model.Application {
	apps := buf
	if cap(apps) < len(residents) {
		apps = make([]model.Application, len(residents))
	}
	apps = apps[:len(residents)]
	for i, r := range residents {
		a := r.App
		a.Work *= r.Remaining
		// A resident parked a hair above the completion tolerance can
		// have Remaining so small that the product underflows to zero —
		// an app the model validators reject (Work must be > 0) and the
		// heuristics would mis-rank. Clamp to the smallest positive
		// denormal: still "essentially finished" for every ranking
		// purpose, but a valid application.
		if a.Work == 0 {
			a.Work = math.SmallestNonzeroFloat64
		}
		apps[i] = a
	}
	return apps
}

// HeuristicPolicy repartitions with one of the paper's heuristics at
// every decision point, rescheduling the residual work of every
// resident job. For deterministic heuristics it replans through a
// sched.PlanMemo: a recurring resident shape (waves of template jobs
// under a residency cap) is served by the memoized plan, certified
// bit-equivalent to a cold solve by its exact input fingerprint.
// Randomized heuristics always re-solve — their per-call RNG substream
// never repeats, so no cached plan can be certified.
type HeuristicPolicy struct {
	h     sched.Heuristic
	seed  uint64
	calls uint64
	full  bool
	memo  *sched.PlanMemo
	stats ReplanStats
	apps  []model.Application // residual-work plan buffer, recycled
}

// NewHeuristicPolicy returns a policy wrapping h. Sequential heuristics
// (AllProcCache) cannot express a concurrent repartition and are
// rejected. The seed drives the randomized heuristics; each invocation
// uses its own substream so replanning decisions stay independent.
func NewHeuristicPolicy(h sched.Heuristic, seed uint64) (*HeuristicPolicy, error) {
	if h == sched.AllProcCache {
		return nil, fmt.Errorf("des: %v is sequential and cannot drive online repartitioning", h)
	}
	return &HeuristicPolicy{h: h, seed: seed, memo: sched.NewPlanMemo(0)}, nil
}

// SetFullReplan disables (true) or re-enables (false) the delta
// fast path, forcing every Allocate call through a cold solve. The
// conform equivalence sweep runs both modes and compares event logs
// bit-for-bit; the ":full" policy-spec suffix exposes it on the wire.
func (p *HeuristicPolicy) SetFullReplan(full bool) { p.full = full }

// ReplanStats reports the delta-rescheduling telemetry; the engine
// copies it into Result.Replan.
func (p *HeuristicPolicy) ReplanStats() ReplanStats {
	st := p.stats
	ms := p.memo.Stats()
	st.MemoHits, st.MemoMisses, st.MemoEvictions = ms.Hits, ms.Misses, ms.Evictions
	return st
}

// Allocate implements Policy.
func (p *HeuristicPolicy) Allocate(pl model.Platform, residents []Resident) ([]sched.Assignment, error) {
	p.calls++
	// Deterministic heuristics never read the RNG; skipping its
	// construction is bit-identical and keeps the fast path
	// allocation-free. The call counter still advances so the substream
	// schedule is independent of the heuristic kind.
	var rng *solve.RNG
	if p.h.Randomized() {
		rng = solve.NewRNG(p.seed ^ p.calls*policySeedStride)
	}
	p.apps = residualApps(p.apps, residents)
	memo := p.memo
	if p.full {
		memo = nil
	}
	s, fromMemo, err := p.h.ScheduleWarm(pl, p.apps, rng, memo)
	if err != nil {
		return nil, &sched.HeuristicError{Heuristic: p.h, Err: err}
	}
	if fromMemo {
		p.stats.FastPath++
	} else {
		p.stats.FullSolve++
	}
	if s.Sequential {
		return nil, fmt.Errorf("des: heuristic %v produced a sequential schedule", p.h)
	}
	return s.Assignments, nil
}

// Name implements Policy.
func (p *HeuristicPolicy) Name() string { return "heuristic:" + p.h.String() }

// onlineHeuristics is the portfolio raced by PortfolioPolicy: every
// extended heuristic except the sequential AllProcCache baseline.
func onlineHeuristics() []sched.Heuristic {
	hs := make([]sched.Heuristic, 0, len(sched.ExtendedHeuristics))
	for _, h := range sched.ExtendedHeuristics {
		if h != sched.AllProcCache {
			hs = append(hs, h)
		}
	}
	return hs
}

// PortfolioPolicy races the whole heuristic portfolio over the residual
// workload at every decision point and applies the winner — the
// portfolio engine turned into an online repartitioner. Concurrency
// comes from the engine's worker pool; results are bit-deterministic at
// any pool size, so the simulation is too.
//
// Delta rescheduling: the policy keeps a sched.PlanMemo of the
// deterministic heuristics' plans, keyed by the exact bit pattern of
// (heuristic, platform, residual apps) — names excluded, so waves of
// re-stamped template jobs ("cg#17") fingerprint identically. When
// every deterministic heuristic hits the memo, the policy skips the
// engine race entirely: it replays the certified plans, re-solves only
// the randomized heuristics (their per-call substreams never repeat, so
// they are never memoizable) with exactly the seeds the engine would
// have derived, and picks the winner with the engine's own selection
// rule. Any miss falls back to the full race, whose deterministic
// results then seed the memo. Event logs are bit-identical either way.
type PortfolioPolicy struct {
	engine *portfolio.Engine
	hs     []sched.Heuristic
	seed   uint64
	calls  uint64
	full   bool
	memo   *sched.PlanMemo
	stats  ReplanStats
	apps   []model.Application // residual-work plan buffer, recycled
	rs     []portfolio.Result  // fast-path result buffer, recycled

	// Learned selection ("portfolio:selector"): when a ledger is set,
	// Allocate first asks it for a confident predicted winner and, when
	// it gets one, solves only that heuristic — on the exact substream
	// the race would have given it — instead of racing the portfolio.
	// A nil or empty ledger predicts nothing, so the policy is then
	// bit-identical to plain "portfolio".
	selMode     bool
	ledger      *selector.Ledger
	th          selector.Thresholds
	predictions uint64
	fallbacks   uint64
}

// NewPortfolioPolicy returns a portfolio-driven policy. A nil engine
// gets a private one with the given worker bound (< 1 = GOMAXPROCS)
// and no memoization cache: the engine cache keys on job names, which
// the online job stream re-stamps per arrival, so it would only
// accumulate dead entries — recurring resident *shapes* are instead
// served by the policy's own name-insensitive plan memo. Pass an
// engine to share a worker pool with other users.
func NewPortfolioPolicy(engine *portfolio.Engine, workers int, seed uint64) *PortfolioPolicy {
	if engine == nil {
		engine = portfolio.New(portfolio.Config{Workers: workers})
	}
	return &PortfolioPolicy{engine: engine, hs: onlineHeuristics(), seed: seed, memo: sched.NewPlanMemo(0)}
}

// SetFullReplan disables (true) or re-enables (false) the delta
// fast path, forcing every Allocate call through the full engine race.
// The conform equivalence sweep runs both modes and compares event logs
// bit-for-bit; the ":full" policy-spec suffix exposes it on the wire.
func (p *PortfolioPolicy) SetFullReplan(full bool) { p.full = full }

// SetLedger switches the policy into learned-selection mode backed by
// l (nil keeps selector mode with an always-fallback empty ledger).
// The zero Thresholds means selector.DefaultThresholds(). Callers that
// parsed a "portfolio:selector" spec inject the trained ledger here —
// the ledger is runtime state, never part of the wire spec.
func (p *PortfolioPolicy) SetLedger(l *selector.Ledger, th selector.Thresholds) {
	p.selMode = true
	p.ledger = l
	if th == (selector.Thresholds{}) {
		th = selector.DefaultThresholds()
	}
	p.th = th
}

// SelectorStats reports how many Allocate calls were served by the
// predicted winner versus by a race (zero unless in selector mode).
func (p *PortfolioPolicy) SelectorStats() (predictions, fallbacks uint64) {
	return p.predictions, p.fallbacks
}

// ConfigureSelector injects a trained ledger into pol when it is a
// selector-mode portfolio policy, reporting whether it did. The
// simulators call this after ParsePolicy: the spec string selects the
// mode ("portfolio:selector"), the caller supplies the ledger.
func ConfigureSelector(pol Policy, l *selector.Ledger, th selector.Thresholds) bool {
	pp, ok := pol.(*PortfolioPolicy)
	if !ok || !pp.selMode {
		return false
	}
	pp.SetLedger(l, th)
	return true
}

// ReplanStats reports the delta-rescheduling telemetry; the engine
// copies it into Result.Replan.
func (p *PortfolioPolicy) ReplanStats() ReplanStats {
	st := p.stats
	ms := p.memo.Stats()
	st.MemoHits, st.MemoMisses, st.MemoEvictions = ms.Hits, ms.Misses, ms.Evictions
	return st
}

// Allocate implements Policy.
func (p *PortfolioPolicy) Allocate(pl model.Platform, residents []Resident) ([]sched.Assignment, error) {
	p.calls++
	// The engine derives heuristic hi's stream as Seed ^ (hi+1)·stride
	// with the same golden-ratio stride this package uses, so a plain
	// seed ^ calls·stride here would cancel whenever calls == hi+1 and
	// hand randomized heuristics systematically colliding streams.
	// Mixing the per-call seed through SplitMix64 (one RNG step)
	// decorrelates the two layers.
	p.apps = residualApps(p.apps, residents)
	scSeed := solve.NewRNG(p.seed ^ p.calls*policySeedStride).Uint64()
	if p.selMode {
		if asg, ok, err := p.predictPath(pl, scSeed); ok {
			p.predictions++
			return asg, err
		}
		p.fallbacks++
	}
	if !p.full {
		if asg, ok, err := p.fastPath(pl, scSeed); ok {
			p.stats.FastPath++
			return asg, err
		}
	}
	p.stats.FullSolve++
	rep, err := p.engine.Evaluate(portfolio.Scenario{
		Platform:   pl,
		Apps:       p.apps,
		Heuristics: p.hs,
		Seed:       scSeed,
	})
	if err != nil {
		return nil, err
	}
	// Seed the memo with this race's deterministic plans so the next
	// recurrence of the same resident shape takes the fast path.
	for i := range rep.Results {
		if res := &rep.Results[i]; res.Err == nil {
			p.memo.Put(p.hs[i], pl, p.apps, res.Schedule)
		}
	}
	best := rep.BestResult()
	if best == nil {
		return nil, fmt.Errorf("des: no heuristic produced a feasible repartition")
	}
	return best.Schedule.Assignments, nil
}

// fastPath attempts the certified delta path: every deterministic
// heuristic's plan must come from the memo (any miss returns ok=false
// and defers to the full race), the randomized heuristics are re-solved
// with exactly the per-heuristic seeds engine.Evaluate would derive
// (portfolio.HeuristicSeed), and the winner is selected with the
// engine's own rule (portfolio.BestIndex) so ties break identically.
// Bit-equivalence with the full race follows: memoized plans are
// certified by their exact input fingerprints, and every non-memoized
// computation reproduces the engine's arithmetic verbatim.
func (p *PortfolioPolicy) fastPath(pl model.Platform, scSeed uint64) ([]sched.Assignment, bool, error) {
	rs := p.rs
	if cap(rs) < len(p.hs) {
		rs = make([]portfolio.Result, len(p.hs))
	}
	rs = rs[:len(p.hs)]
	p.rs = rs
	for hi, h := range p.hs {
		if h.Randomized() {
			continue
		}
		s, ok := p.memo.Get(h, pl, p.apps)
		if !ok {
			return nil, false, nil
		}
		rs[hi] = portfolio.Result{Heuristic: h, Schedule: s}
	}
	for hi, h := range p.hs {
		if !h.Randomized() {
			continue
		}
		s, err := h.Schedule(pl, p.apps, solve.NewRNG(portfolio.HeuristicSeed(scSeed, hi)))
		if err != nil {
			err = &sched.HeuristicError{Heuristic: h, Err: err}
		}
		rs[hi] = portfolio.Result{Heuristic: h, Schedule: s, Err: err}
	}
	best := portfolio.BestIndex(rs)
	if best < 0 {
		return nil, true, fmt.Errorf("des: no heuristic produced a feasible repartition")
	}
	return rs[best].Schedule.Assignments, true, nil
}

// predictPath solves only the ledger's confidently predicted winner,
// drawing the exact RNG substream the full race would have handed it
// at its index (portfolio.HeuristicSeed), so the resulting plan is
// bit-identical to that heuristic's lane of the race. ok is false —
// deferring to the race — when the ledger has no confident call or the
// predicted heuristic fails on this residual workload.
func (p *PortfolioPolicy) predictPath(pl model.Platform, scSeed uint64) ([]sched.Assignment, bool, error) {
	if p.ledger == nil {
		return nil, false, nil
	}
	bucket := selector.Extract(pl, p.apps).Bucket()
	pred, ok := p.ledger.Predict(bucket, p.hs)
	if !ok || !pred.Confident(p.th) {
		return nil, false, nil
	}
	hi := 0
	for i, h := range p.hs {
		if h == pred.Heuristic {
			hi = i
			break
		}
	}
	var rng *solve.RNG
	if pred.Heuristic.Randomized() {
		rng = solve.NewRNG(portfolio.HeuristicSeed(scSeed, hi))
	}
	s, err := pred.Heuristic.Schedule(pl, p.apps, rng)
	if err != nil || s.Sequential {
		return nil, false, nil
	}
	return s.Assignments, true, nil
}

// Name implements Policy.
func (p *PortfolioPolicy) Name() string {
	if p.selMode {
		return "portfolio:selector"
	}
	return "portfolio"
}

// NoRepartition schedules jobs in waves: when the node is idle it
// allocates the whole resident set with the wrapped heuristic and then
// freezes — jobs arriving mid-wave wait (zero allocation) until the
// wave drains. With every job present at t = 0 this reproduces the
// paper's static setting exactly; it is also the natural baseline that
// quantifies what dynamic repartitioning buys.
type NoRepartition struct {
	h     sched.Heuristic
	seed  uint64
	calls uint64
	apps  []model.Application // residual-work plan buffer, recycled
	frzn  []sched.Assignment  // frozen-wave assignment buffer, recycled
}

// NewNoRepartition returns the wave-scheduling policy around h.
func NewNoRepartition(h sched.Heuristic, seed uint64) (*NoRepartition, error) {
	if h == sched.AllProcCache {
		return nil, fmt.Errorf("des: %v is sequential and cannot drive online scheduling", h)
	}
	return &NoRepartition{h: h, seed: seed}, nil
}

// Allocate implements Policy.
func (p *NoRepartition) Allocate(pl model.Platform, residents []Resident) ([]sched.Assignment, error) {
	for _, r := range residents {
		// A wave counts as running only while some resident is actually
		// progressing: holding processors AND having a finite execution
		// time under its current allocation. Gating on Processors > 0
		// alone deadlocks the node when a resident is stuck with a
		// nonzero assignment that yields Exe = +Inf (degenerate
		// work/latency inputs): it never finishes, so the "wave" never
		// drains and every later arrival is frozen out forever. Such a
		// stuck resident instead lets the next decision point fall
		// through to a fresh wave that reschedules everything resident.
		if r.Assign.Processors > 0 && !math.IsInf(r.App.Exe(pl, r.Assign.Processors, r.Assign.CacheShare), 1) {
			// A wave is running: freeze every current allocation; new
			// arrivals keep their zero assignment and wait. The engine
			// consumes the returned slice before the next Allocate call,
			// so the buffer is safely recycled.
			asg := p.frzn
			if cap(asg) < len(residents) {
				asg = make([]sched.Assignment, len(residents))
			}
			asg = asg[:len(residents)]
			p.frzn = asg
			for i, rr := range residents {
				asg[i] = rr.Assign
			}
			return asg, nil
		}
	}
	// Node drained (or first wave): schedule everything resident.
	p.calls++
	rng := solve.NewRNG(p.seed ^ p.calls*policySeedStride)
	p.apps = residualApps(p.apps, residents)
	s, err := p.h.Schedule(pl, p.apps, rng)
	if err != nil {
		return nil, &sched.HeuristicError{Heuristic: p.h, Err: err}
	}
	if s.Sequential {
		return nil, fmt.Errorf("des: heuristic %v produced a sequential schedule", p.h)
	}
	return s.Assignments, nil
}

// Name implements Policy.
func (p *NoRepartition) Name() string { return "norepartition:" + p.h.String() }

// ParsePolicy resolves a policy specification string:
//
//	"portfolio"                race all concurrent heuristics, keep the winner
//	"portfolio:selector"       learned selection: run the ledger's predicted
//	                           winner, race only on doubt (inject the trained
//	                           ledger with ConfigureSelector; without one the
//	                           policy always races and is bit-identical to
//	                           "portfolio")
//	"<Heuristic>"              repartition with that heuristic every event
//	"norepartition[:<H>]"      wave scheduling, frozen between drains
//
// The replanning policies ("portfolio" and plain heuristics) take the
// delta-rescheduling fast path by default; appending ":full" (e.g.
// "portfolio:full") forces full replanning at every event, which is
// bit-equivalent and only useful for benchmarking and equivalence
// testing. workers bounds the portfolio policy's pool (< 1 =
// GOMAXPROCS); seed drives every randomized decision.
func ParsePolicy(spec string, workers int, seed uint64) (Policy, error) {
	return parsePolicyWith(nil, spec, workers, seed)
}

// ParsePolicyShared is ParsePolicy with a caller-supplied portfolio
// engine backing a "portfolio" policy, so many policies (one per fleet
// node) can share a single worker pool instead of each building a
// private one. A nil engine falls back to ParsePolicy's behavior; the
// engine is unused for non-portfolio policies.
func ParsePolicyShared(engine *portfolio.Engine, spec string, workers int, seed uint64) (Policy, error) {
	return parsePolicyWith(engine, spec, workers, seed)
}

// parsePolicyWith is ParsePolicy with an optional shared engine for
// the portfolio policy (nil = private engine bounded by workers).
func parsePolicyWith(engine *portfolio.Engine, spec string, workers int, seed uint64) (Policy, error) {
	if base, found := strings.CutSuffix(spec, ":full"); found {
		pol, err := parsePolicyWith(engine, base, workers, seed)
		if err != nil {
			return nil, err
		}
		fr, ok := pol.(interface{ SetFullReplan(bool) })
		if !ok {
			return nil, fmt.Errorf("des: policy %q has no delta-rescheduling fast path to disable", base)
		}
		fr.SetFullReplan(true)
		return pol, nil
	}
	switch {
	case spec == "portfolio":
		return NewPortfolioPolicy(engine, workers, seed), nil
	case spec == "portfolio:selector":
		p := NewPortfolioPolicy(engine, workers, seed)
		p.SetLedger(nil, selector.Thresholds{})
		return p, nil
	case spec == "norepartition":
		return NewNoRepartition(sched.DominantMinRatio, seed)
	case strings.HasPrefix(spec, "norepartition:"):
		h, err := sched.ParseHeuristic(strings.TrimPrefix(spec, "norepartition:"))
		if err != nil {
			return nil, err
		}
		return NewNoRepartition(h, seed)
	default:
		h, err := sched.ParseHeuristic(spec)
		if err != nil {
			return nil, fmt.Errorf("des: unknown policy %q (want \"portfolio\", \"norepartition[:H]\" or a heuristic name): %w", spec, err)
		}
		return NewHeuristicPolicy(h, seed)
	}
}
