package des

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/portfolio"
	"repro/internal/sched"
	"repro/internal/solve"
)

// Resident is the engine's view of one job currently on the node, as
// presented to the online policy.
type Resident struct {
	Job int               // job id
	App model.Application // original profile (full work)
	// Remaining is the fraction of the job's work left, in (0, 1].
	Remaining float64
	// Assign is the job's current allocation; zero for jobs that just
	// arrived or are parked with no resources.
	Assign sched.Assignment
	// Started reports whether the job has ever held processors.
	Started bool
}

// Policy decides, at every arrival and completion, how the platform's
// processors and cache are split among the resident jobs. Allocations
// must respect the platform budgets (Σp ≤ p, Σx ≤ 1); the engine
// validates and rejects overruns. A zero assignment parks a job (it
// makes no progress until a later repartition). Policies may keep
// internal state (invocation counters for RNG substreams); they must be
// deterministic functions of their construction parameters and the
// sequence of Allocate calls.
type Policy interface {
	// Allocate returns one assignment per resident, in resident order.
	Allocate(pl model.Platform, residents []Resident) ([]sched.Assignment, error)
	// Name identifies the policy in reports and error messages.
	Name() string
}

// policySeedStride separates the RNG substreams of successive policy
// invocations, mirroring the portfolio engine's per-heuristic stride.
const policySeedStride = 0x9E3779B97F4A7C15

// residualApps builds the application set a policy hands to the paper's
// heuristics: each resident's profile with its work scaled to what is
// left, so remaining work is charged under the shares decided now. A
// fresh job (Remaining == 1) is passed through bit-identically. The
// result reuses buf's backing array when large enough — policies keep a
// private buffer so per-event replanning does not allocate (nothing
// downstream retains the slice past the Allocate call).
func residualApps(buf []model.Application, residents []Resident) []model.Application {
	apps := buf
	if cap(apps) < len(residents) {
		apps = make([]model.Application, len(residents))
	}
	apps = apps[:len(residents)]
	for i, r := range residents {
		a := r.App
		a.Work *= r.Remaining
		apps[i] = a
	}
	return apps
}

// HeuristicPolicy repartitions with one of the paper's heuristics at
// every decision point, rescheduling the residual work of every
// resident job from scratch.
type HeuristicPolicy struct {
	h     sched.Heuristic
	seed  uint64
	calls uint64
	apps  []model.Application // residual-work plan buffer, recycled
}

// NewHeuristicPolicy returns a policy wrapping h. Sequential heuristics
// (AllProcCache) cannot express a concurrent repartition and are
// rejected. The seed drives the randomized heuristics; each invocation
// uses its own substream so replanning decisions stay independent.
func NewHeuristicPolicy(h sched.Heuristic, seed uint64) (*HeuristicPolicy, error) {
	if h == sched.AllProcCache {
		return nil, fmt.Errorf("des: %v is sequential and cannot drive online repartitioning", h)
	}
	return &HeuristicPolicy{h: h, seed: seed}, nil
}

// Allocate implements Policy.
func (p *HeuristicPolicy) Allocate(pl model.Platform, residents []Resident) ([]sched.Assignment, error) {
	p.calls++
	rng := solve.NewRNG(p.seed ^ p.calls*policySeedStride)
	p.apps = residualApps(p.apps, residents)
	s, err := p.h.Schedule(pl, p.apps, rng)
	if err != nil {
		return nil, &sched.HeuristicError{Heuristic: p.h, Err: err}
	}
	if s.Sequential {
		return nil, fmt.Errorf("des: heuristic %v produced a sequential schedule", p.h)
	}
	return s.Assignments, nil
}

// Name implements Policy.
func (p *HeuristicPolicy) Name() string { return "heuristic:" + p.h.String() }

// onlineHeuristics is the portfolio raced by PortfolioPolicy: every
// extended heuristic except the sequential AllProcCache baseline.
func onlineHeuristics() []sched.Heuristic {
	hs := make([]sched.Heuristic, 0, len(sched.ExtendedHeuristics))
	for _, h := range sched.ExtendedHeuristics {
		if h != sched.AllProcCache {
			hs = append(hs, h)
		}
	}
	return hs
}

// PortfolioPolicy races the whole heuristic portfolio over the residual
// workload at every decision point and applies the winner — the
// portfolio engine turned into an online repartitioner. Concurrency
// comes from the engine's worker pool; results are bit-deterministic at
// any pool size, so the simulation is too.
type PortfolioPolicy struct {
	engine *portfolio.Engine
	hs     []sched.Heuristic
	seed   uint64
	calls  uint64
	apps   []model.Application // residual-work plan buffer, recycled
}

// NewPortfolioPolicy returns a portfolio-driven policy. A nil engine
// gets a private one with the given worker bound (< 1 = GOMAXPROCS)
// and no memoization cache: online resident sets are almost never
// repeated (residual work shrinks at every event and job names are
// unique), so a cache would only accumulate dead entries for the
// length of the run. Pass an engine to share a worker pool — and, if
// the workload genuinely repeats, a cache — with other users.
func NewPortfolioPolicy(engine *portfolio.Engine, workers int, seed uint64) *PortfolioPolicy {
	if engine == nil {
		engine = portfolio.New(portfolio.Config{Workers: workers})
	}
	return &PortfolioPolicy{engine: engine, hs: onlineHeuristics(), seed: seed}
}

// Allocate implements Policy.
func (p *PortfolioPolicy) Allocate(pl model.Platform, residents []Resident) ([]sched.Assignment, error) {
	p.calls++
	// The engine derives heuristic hi's stream as Seed ^ (hi+1)·stride
	// with the same golden-ratio stride this package uses, so a plain
	// seed ^ calls·stride here would cancel whenever calls == hi+1 and
	// hand randomized heuristics systematically colliding streams.
	// Mixing the per-call seed through SplitMix64 (one RNG step)
	// decorrelates the two layers.
	p.apps = residualApps(p.apps, residents)
	rep, err := p.engine.Evaluate(portfolio.Scenario{
		Platform:   pl,
		Apps:       p.apps,
		Heuristics: p.hs,
		Seed:       solve.NewRNG(p.seed ^ p.calls*policySeedStride).Uint64(),
	})
	if err != nil {
		return nil, err
	}
	best := rep.BestResult()
	if best == nil {
		return nil, fmt.Errorf("des: no heuristic produced a feasible repartition")
	}
	return best.Schedule.Assignments, nil
}

// Name implements Policy.
func (p *PortfolioPolicy) Name() string { return "portfolio" }

// NoRepartition schedules jobs in waves: when the node is idle it
// allocates the whole resident set with the wrapped heuristic and then
// freezes — jobs arriving mid-wave wait (zero allocation) until the
// wave drains. With every job present at t = 0 this reproduces the
// paper's static setting exactly; it is also the natural baseline that
// quantifies what dynamic repartitioning buys.
type NoRepartition struct {
	h     sched.Heuristic
	seed  uint64
	calls uint64
	apps  []model.Application // residual-work plan buffer, recycled
	frzn  []sched.Assignment  // frozen-wave assignment buffer, recycled
}

// NewNoRepartition returns the wave-scheduling policy around h.
func NewNoRepartition(h sched.Heuristic, seed uint64) (*NoRepartition, error) {
	if h == sched.AllProcCache {
		return nil, fmt.Errorf("des: %v is sequential and cannot drive online scheduling", h)
	}
	return &NoRepartition{h: h, seed: seed}, nil
}

// Allocate implements Policy.
func (p *NoRepartition) Allocate(pl model.Platform, residents []Resident) ([]sched.Assignment, error) {
	for _, r := range residents {
		if r.Assign.Processors > 0 {
			// A wave is running: freeze every current allocation; new
			// arrivals keep their zero assignment and wait. The engine
			// consumes the returned slice before the next Allocate call,
			// so the buffer is safely recycled.
			asg := p.frzn
			if cap(asg) < len(residents) {
				asg = make([]sched.Assignment, len(residents))
			}
			asg = asg[:len(residents)]
			p.frzn = asg
			for i, rr := range residents {
				asg[i] = rr.Assign
			}
			return asg, nil
		}
	}
	// Node drained (or first wave): schedule everything resident.
	p.calls++
	rng := solve.NewRNG(p.seed ^ p.calls*policySeedStride)
	p.apps = residualApps(p.apps, residents)
	s, err := p.h.Schedule(pl, p.apps, rng)
	if err != nil {
		return nil, &sched.HeuristicError{Heuristic: p.h, Err: err}
	}
	if s.Sequential {
		return nil, fmt.Errorf("des: heuristic %v produced a sequential schedule", p.h)
	}
	return s.Assignments, nil
}

// Name implements Policy.
func (p *NoRepartition) Name() string { return "norepartition:" + p.h.String() }

// ParsePolicy resolves a policy specification string:
//
//	"portfolio"                race all concurrent heuristics, keep the winner
//	"<Heuristic>"              repartition with that heuristic every event
//	"norepartition[:<H>]"      wave scheduling, frozen between drains
//
// workers bounds the portfolio policy's pool (< 1 = GOMAXPROCS); seed
// drives every randomized decision.
func ParsePolicy(spec string, workers int, seed uint64) (Policy, error) {
	return parsePolicyWith(nil, spec, workers, seed)
}

// parsePolicyWith is ParsePolicy with an optional shared engine for
// the portfolio policy (nil = private engine bounded by workers).
func parsePolicyWith(engine *portfolio.Engine, spec string, workers int, seed uint64) (Policy, error) {
	switch {
	case spec == "portfolio":
		return NewPortfolioPolicy(engine, workers, seed), nil
	case spec == "norepartition":
		return NewNoRepartition(sched.DominantMinRatio, seed)
	case strings.HasPrefix(spec, "norepartition:"):
		h, err := sched.ParseHeuristic(strings.TrimPrefix(spec, "norepartition:"))
		if err != nil {
			return nil, err
		}
		return NewNoRepartition(h, seed)
	default:
		h, err := sched.ParseHeuristic(spec)
		if err != nil {
			return nil, fmt.Errorf("des: unknown policy %q (want \"portfolio\", \"norepartition[:H]\" or a heuristic name): %w", spec, err)
		}
		return NewHeuristicPolicy(h, seed)
	}
}
