package des

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/workload"
)

// pollCtx cancels itself after a fixed number of Err() polls; the event
// loop polls every ctxCheckEvery events, so cancellation lands at a
// deterministic point mid-run.
type pollCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *pollCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}
func (c *pollCtx) Done() <-chan struct{} { return nil }

func ctxScenario(t *testing.T) Scenario {
	t.Helper()
	apps := workload.NPB()
	for i := range apps {
		apps[i].SeqFraction = 0.05
	}
	factory, err := CycleApps(apps)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := NewPoisson(0.002, 48, factory, solve.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	pol, err := NewHeuristicPolicy(sched.DominantMinRatio, 11)
	if err != nil {
		t.Fatal(err)
	}
	return Scenario{Platform: model.TaihuLight(), Arrivals: arr, Policy: pol}
}

// TestSimulateContextCancelMidRun: cancelling mid-run returns
// context.Canceled within ctxCheckEvery events, and an uncancelled
// rerun reproduces the reference event log bit-for-bit.
func TestSimulateContextCancelMidRun(t *testing.T) {
	ref, err := Simulate(ctxScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Events) < 4*ctxCheckEvery {
		t.Fatalf("reference run too short (%d events) to observe a mid-run cancel", len(ref.Events))
	}

	ctx := &pollCtx{Context: context.Background(), after: 2}
	res, err := SimulateContext(ctx, ctxScenario(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("returned (%v, %v), want context.Canceled", res, err)
	}
	// The loop may run at most ctxCheckEvery steps past the poll that
	// observed the cancellation... it cannot have finished the run.
	if got := ctx.polls.Load(); got > int64(len(ref.Events)) {
		t.Fatalf("cancellation was not prompt: %d polls for a %d-event run", got, len(ref.Events))
	}

	again, err := Simulate(ctxScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	if again.Makespan != ref.Makespan || len(again.Events) != len(ref.Events) {
		t.Fatalf("rerun diverged after cancellation: %v/%d vs %v/%d",
			again.Makespan, len(again.Events), ref.Makespan, len(ref.Events))
	}
	for i := range again.Events {
		if again.Events[i] != ref.Events[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, again.Events[i], ref.Events[i])
		}
	}
}

// TestSimulateContextPreCancelled: a dead context returns before the
// first event.
func TestSimulateContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimulateContext(ctx, ctxScenario(t)); !errors.Is(err, context.Canceled) {
		t.Fatalf("returned %v, want context.Canceled", err)
	}
}

// TestPolicyHeuristicErrorTyped: a policy failure names its heuristic
// via *sched.HeuristicError. An impossible workload (more apps than the
// single-processor platform can grant whole processors is fine for the
// rational heuristics, so use an invalid heuristic id instead).
func TestPolicyHeuristicErrorTyped(t *testing.T) {
	p := &HeuristicPolicy{h: sched.Heuristic(88), seed: 1}
	apps := workload.NPB()
	residents := []Resident{{Job: 0, App: apps[0], Remaining: 1}}
	_, err := p.Allocate(model.TaihuLight(), residents)
	var herr *sched.HeuristicError
	if !errors.As(err, &herr) {
		t.Fatalf("policy error %T (%v), want *sched.HeuristicError", err, err)
	}
	if herr.Heuristic != sched.Heuristic(88) {
		t.Fatalf("recorded heuristic %v", herr.Heuristic)
	}
}
