package des

import (
	"testing"

	"repro/internal/selector"
	"repro/internal/workload"
)

// An empty (or absent) ledger never predicts, so "portfolio:selector"
// must reproduce "portfolio" bit for bit — the safe-default contract
// that lets the spec string ship ahead of any trained ledger.
func TestSelectorPolicyEmptyLedgerMatchesPortfolio(t *testing.T) {
	base, err := Simulate(mustBuild(t, metricsSpec("portfolio")))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Simulate(mustBuild(t, metricsSpec("portfolio:selector")))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Events) != len(sel.Events) {
		t.Fatalf("event count %d != %d", len(sel.Events), len(base.Events))
	}
	for i := range base.Events {
		if base.Events[i] != sel.Events[i] {
			t.Fatalf("event %d differs: %+v != %+v", i, sel.Events[i], base.Events[i])
		}
	}
	if base.Makespan != sel.Makespan {
		t.Fatalf("makespan %v != %v", sel.Makespan, base.Makespan)
	}
}

// A confident prediction must be served by exactly the predicted
// heuristic, on the substream it would have drawn inside the race.
func TestSelectorPolicyPredictsWinner(t *testing.T) {
	pol, err := ParsePolicy("portfolio:selector", 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	pp := pol.(*PortfolioPolicy)
	pl := mustBuild(t, metricsSpec("portfolio")).Platform
	var residents []Resident
	for i, a := range workload.NPB()[:3] {
		residents = append(residents, Resident{Job: i, App: a, Remaining: 1})
	}
	apps := residualApps(nil, residents)
	bucket := selector.Extract(pl, apps).Bucket()

	// Hand-train the scenario's own bucket so DominantMinRatio is the
	// confident call.
	l := selector.New()
	for range [3]struct{}{} {
		if err := l.Ingest(selector.RaceRecord{Bucket: bucket, Heuristic: "DominantMinRatio", Win: true, Margin: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if !ConfigureSelector(pp, l, selector.Thresholds{}) {
		t.Fatal("ConfigureSelector refused a selector-mode policy")
	}
	if ConfigureSelector(mustParse(t, "portfolio"), l, selector.Thresholds{}) {
		t.Fatal("ConfigureSelector accepted a non-selector policy")
	}

	asg, err := pp.Allocate(pl, residents)
	if err != nil {
		t.Fatal(err)
	}
	if preds, fbs := pp.SelectorStats(); preds != 1 || fbs != 0 {
		t.Fatalf("stats = %d predictions, %d fallbacks; want 1, 0", preds, fbs)
	}
	want, err := mustParse(t, "DominantMinRatio").Allocate(pl, residents)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg) != len(want) {
		t.Fatalf("assignment count %d != %d", len(asg), len(want))
	}
	for i := range want {
		if asg[i] != want[i] {
			t.Fatalf("assignment %d: %+v != %+v", i, asg[i], want[i])
		}
	}

	// An unseen resident shape has no bucket evidence: full race.
	more := append(residents, Resident{Job: 3, App: workload.NPB()[4], Remaining: 0.5, Started: true})
	if _, err := pp.Allocate(pl, more); err != nil {
		t.Fatal(err)
	}
	if preds, fbs := pp.SelectorStats(); preds != 1 || fbs != 1 {
		t.Fatalf("stats after fallback = %d predictions, %d fallbacks; want 1, 1", preds, fbs)
	}
}

func TestSelectorPolicyName(t *testing.T) {
	if got := mustParse(t, "portfolio:selector").Name(); got != "portfolio:selector" {
		t.Fatalf("Name() = %q", got)
	}
	if got := mustParse(t, "portfolio").Name(); got != "portfolio" {
		t.Fatalf("Name() = %q", got)
	}
}

func mustParse(t *testing.T, spec string) Policy {
	t.Helper()
	pol, err := ParsePolicy(spec, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}
