package des

import (
	"context"
	"fmt"
	"math"

	"repro/internal/model"
)

// NodeConfig parameterizes one steppable online node (see Node).
type NodeConfig struct {
	// Platform is the node's hardware: its own processor count, cache
	// size and latency constants.
	Platform model.Platform
	// Policy repartitions the node's resident set at every arrival and
	// completion, exactly as in Scenario.
	Policy Policy
	// MaxResident, when > 0, bounds node sharing; excess jobs queue in
	// the node-local FIFO.
	MaxResident int
	// Metrics instruments the node (may be shared across nodes: all
	// counters are atomic). Nil disables observation without changing
	// any result bit.
	Metrics *Metrics
}

// Node is the simulation engine of one node opened up for external
// driving: instead of consuming an ArrivalProcess it accepts arrivals
// one at a time (Inject) interleaved with bounded time advancement
// (AdvanceBefore), so a fleet-level router can decide each job's
// destination from the nodes' live states. The event-loop arithmetic is
// the package's Simulate loop verbatim — same batching, same progress
// tolerances, same policy invocation discipline — so a single node fed
// the same arrival stream reproduces Simulate bit-for-bit (pinned by
// TestNodeMatchesSimulate and the conform fleet harness).
type Node struct {
	e        *engine
	finished bool
}

// NewNode validates cfg and returns an idle node at virtual time 0.
func NewNode(cfg NodeConfig) (*Node, error) {
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("des: node needs an online policy")
	}
	if cfg.MaxResident < 0 {
		return nil, fmt.Errorf("des: max resident must be >= 0, got %d", cfg.MaxResident)
	}
	// The engine never pulls from an arrival process: exhausted is set
	// from the start, so every pullArrival inside step() is a no-op and
	// the nil Arrivals field is never dereferenced.
	e := &engine{
		sc: Scenario{
			Platform:    cfg.Platform,
			Policy:      cfg.Policy,
			MaxResident: cfg.MaxResident,
			Metrics:     cfg.Metrics,
		},
		res:       &Result{},
		exhausted: true,
	}
	return &Node{e: e}, nil
}

// Inject registers one arrival. Arrival times must be non-decreasing
// across Inject calls and must not precede the node's current virtual
// time (the clock only moves forward). The job is not processed until
// time advances past it via AdvanceBefore or Finish.
func (n *Node) Inject(a Arrival) error {
	if n.finished {
		return fmt.Errorf("des: node already finished")
	}
	if err := validateArrival(a); err != nil {
		return err
	}
	if a.Time < n.e.lastArrival {
		return fmt.Errorf("des: arrivals went backwards: t=%g after t=%g", a.Time, n.e.lastArrival)
	}
	if a.Time < n.e.now {
		return fmt.Errorf("des: arrival at t=%g precedes the node clock t=%g", a.Time, n.e.now)
	}
	n.e.lastArrival = a.Time
	id := len(n.e.jobs)
	n.e.jobs = append(n.e.jobs, jobState{app: a.App, arrival: a.Time, start: math.NaN(), finish: math.NaN(), exe: math.Inf(1)})
	n.e.pq.push(qEvent{time: a.Time, kind: qArrival, job: id})
	return nil
}

// AdvanceBefore processes every pending event strictly before t. The
// strict bound is what preserves Simulate's same-instant batching: an
// arrival injected at exactly t after the call still joins the event
// batch at t (completions included) and sees one policy invocation,
// exactly as absorbAt would have grouped them in a closed-loop run.
func (n *Node) AdvanceBefore(t float64) error {
	if n.finished {
		return fmt.Errorf("des: node already finished")
	}
	for {
		t0, ok := n.e.nextEventTime()
		if !ok || t0 >= t {
			return nil
		}
		if err := n.e.step(); err != nil {
			return err
		}
	}
}

// Finish drains every remaining event and returns the node's Result,
// with the same deadlock detection, per-job metrics and telemetry as
// Simulate. A node that never received a job returns an empty result.
// The node cannot be used afterwards.
func (n *Node) Finish(ctx context.Context) (*Result, error) {
	if n.finished {
		return nil, fmt.Errorf("des: node already finished")
	}
	for steps := 0; n.e.pq.Len() > 0; steps++ {
		if steps%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := n.e.step(); err != nil {
			return nil, err
		}
	}
	for id := range n.e.jobs {
		if !n.e.jobs[id].done {
			return nil, fmt.Errorf("des: deadlock: job %d (%s) can never finish (zero allocation with no pending events)", id, n.e.jobs[id].app.Name)
		}
	}
	n.e.finalize()
	if tp, ok := n.e.sc.Policy.(ReplanReporter); ok {
		n.e.res.Replan = tp.ReplanStats()
	}
	if m := n.e.sc.Metrics; m != nil {
		m.simulations.Inc()
		m.jobs.Add(uint64(len(n.e.res.Jobs)))
		m.observeReplan(n.e.res.Replan)
	}
	n.finished = true
	return n.e.res, nil
}

// Now returns the node's current virtual time.
func (n *Node) Now() float64 { return n.e.now }

// JobsInSystem counts unfinished jobs on the node: running residents,
// parked residents and FIFO waiters alike (the join-shortest-queue
// router's load signal).
func (n *Node) JobsInSystem() int {
	in := 0
	for id := range n.e.jobs {
		if !n.e.jobs[id].done {
			in++
		}
	}
	return in
}

// BacklogAt estimates the remaining work on the node as wall time at
// virtual time t ≥ Now: for each running job, its predicted residual
// under the current allocation (clamped at 0 when t runs past the
// prediction); for each parked or queued job, its residual on the
// dedicated machine — an optimistic but deterministic proxy, since the
// allocation it will actually receive is unknowable before the policy
// runs. The estimate is a pure function of node state, so routers built
// on it stay bit-deterministic.
func (n *Node) BacklogAt(t float64) float64 {
	backlog := 0.0
	pl := n.e.sc.Platform
	for id := range n.e.jobs {
		st := &n.e.jobs[id]
		if st.done {
			continue
		}
		if st.procs > 0 && !math.IsInf(st.exe, 1) {
			rem := (1-st.frac)*st.exe - (t - n.e.now)
			if rem > 0 {
				backlog += rem
			}
			continue
		}
		backlog += (1 - st.frac) * st.app.Exe(pl, pl.Processors, 1)
	}
	return backlog
}

// VisitUnfinished calls f for every unfinished job on the node, in
// arrival order, with the job's application name and remaining work
// fraction — the raw material for footprint-affinity routing scores.
func (n *Node) VisitUnfinished(f func(name string, remaining float64)) {
	for id := range n.e.jobs {
		if st := &n.e.jobs[id]; !st.done {
			f(st.app.Name, 1-st.frac)
		}
	}
}

// nextEventTime peeks the earliest pending non-stale event, discarding
// stale completion predictions along the way (a stale event's stamped
// time can precede the re-planned one, so a raw peek would under-report
// how far the node can safely advance).
func (e *engine) nextEventTime() (float64, bool) {
	for e.pq.Len() > 0 {
		if ev := e.pq.ev[0]; !e.stale(ev) {
			return ev.time, true
		}
		e.pq.pop()
	}
	return 0, false
}
