package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/solve"
)

func TestSequentialWrapsAndStrides(t *testing.T) {
	g, err := NewSequential(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 64, 128, 192, 0, 64}
	for i, w := range want {
		if a := g.Next(); a.Addr != w {
			t.Fatalf("access %d at %d, want %d", i, a.Addr, w)
		}
	}
	if g.Footprint() != 256 || g.Name() != "sequential" {
		t.Fatal("metadata wrong")
	}
}

func TestSequentialValidation(t *testing.T) {
	if _, err := NewSequential(0, 8); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewSequential(64, 0); err == nil {
		t.Fatal("zero stride accepted")
	}
}

func TestUniformStaysInFootprint(t *testing.T) {
	g, err := NewUniform(1<<16, 64, solve.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		a := g.Next()
		if a.Addr >= 1<<16 {
			t.Fatalf("address %d outside footprint", a.Addr)
		}
		if a.Addr%64 != 0 {
			t.Fatalf("address %d not line aligned", a.Addr)
		}
	}
}

func TestUniformValidation(t *testing.T) {
	r := solve.NewRNG(1)
	if _, err := NewUniform(32, 64, r); err == nil {
		t.Fatal("footprint below line accepted")
	}
	if _, err := NewUniform(0, 64, r); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestZipfBiasAndBounds(t *testing.T) {
	g, err := NewZipf(64*64, 64, 1.0, solve.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		a := g.Next()
		if a.Addr >= 64*64 || a.Addr%64 != 0 {
			t.Fatalf("bad address %d", a.Addr)
		}
		counts[a.Addr]++
	}
	// The most popular block should be much hotter than the median.
	max, total := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if float64(max) < 2*float64(total)/64 {
		t.Fatalf("zipf skew too weak: max %d of %d over 64 blocks", max, total)
	}
}

func TestZipfValidation(t *testing.T) {
	r := solve.NewRNG(3)
	if _, err := NewZipf(64, 64, 0, r); err == nil {
		t.Fatal("zero exponent accepted")
	}
	if _, err := NewZipf(32, 64, 1, r); err == nil {
		t.Fatal("size below line accepted")
	}
}

func TestZipfDeterministicPerSeed(t *testing.T) {
	a, _ := NewZipf(1<<12, 64, 0.8, solve.NewRNG(7))
	b, _ := NewZipf(1<<12, 64, 0.8, solve.NewRNG(7))
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("zipf streams diverged")
		}
	}
}

func TestWorkingSetPhasesRotate(t *testing.T) {
	g, err := NewWorkingSet(1<<16, 64, 1<<12, 1.0, 10, solve.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	// With HotProb = 1 all accesses land in the hot region; after a
	// phase change the region moves.
	first := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		first[g.Next().Addr/64] = true
	}
	later := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		later[g.Next().Addr/64] = true
	}
	if len(later) <= len(first) {
		t.Fatalf("phases did not rotate: %d vs %d distinct blocks", len(later), len(first))
	}
}

func TestWorkingSetValidation(t *testing.T) {
	r := solve.NewRNG(5)
	cases := []struct {
		size, line, hot uint64
		prob            float64
		phase           int
	}{
		{0, 64, 64, 0.5, 10},
		{1 << 16, 64, 0, 0.5, 10},
		{1 << 16, 64, 1 << 17, 0.5, 10},
		{1 << 16, 64, 1 << 12, -0.1, 10},
		{1 << 16, 64, 1 << 12, 1.5, 10},
		{1 << 16, 64, 1 << 12, 0.5, 0},
	}
	for i, c := range cases {
		if _, err := NewWorkingSet(c.size, c.line, c.hot, c.prob, c.phase, r); err == nil {
			t.Fatalf("case %d accepted invalid config", i)
		}
	}
}

// Property: all generators stay within their declared footprint.
func TestGeneratorsRespectFootprint(t *testing.T) {
	f := func(seed uint64, pick uint8) bool {
		r := solve.NewRNG(seed)
		var g Generator
		var err error
		switch pick % 4 {
		case 0:
			g, err = NewSequential(1<<14, 64)
		case 1:
			g, err = NewUniform(1<<14, 64, r)
		case 2:
			g, err = NewZipf(1<<14, 64, 0.9, r)
		default:
			g, err = NewWorkingSet(1<<14, 64, 1<<10, 0.8, 100, r)
		}
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			if a := g.Next(); a.Addr >= g.Footprint() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
