// Package trace generates synthetic memory-access traces with
// controllable locality, the input to the cache simulator in
// internal/cachesim. The generators substitute for the PEBIL binary
// instrumentation the paper's authors used to characterize the NPB
// applications: each generator produces an address stream whose
// miss-rate-versus-cache-size curve exhibits the qualitative behaviour
// (power-law decay) the paper's model assumes, so the measurement
// pipeline (trace → cache sweep → power-law fit) can be exercised end to
// end without proprietary binaries or hardware counters.
package trace

import (
	"fmt"
	"math"

	"repro/internal/solve"
)

// Access is one memory reference: a byte address and whether it writes.
type Access struct {
	Addr  uint64
	Write bool
}

// Generator produces a stream of memory accesses. Next returns the
// subsequent access; generators are infinite streams, so there is no
// end-of-trace condition.
type Generator interface {
	// Next returns the next access in the stream.
	Next() Access
	// Footprint returns the total bytes the stream touches (its
	// working-set size); generators with unbounded footprints return 0.
	Footprint() uint64
	// Name identifies the generator class in reports.
	Name() string
}

// Sequential streams linearly through a buffer of size bytes with the
// given stride, wrapping at the end — the classic streaming access
// pattern (miss rate governed by stride/linesize once footprint exceeds
// the cache).
type Sequential struct {
	Base   uint64
	Size   uint64
	Stride uint64
	pos    uint64
}

// NewSequential returns a sequential generator over size bytes with the
// given stride (must be > 0).
func NewSequential(size, stride uint64) (*Sequential, error) {
	if size == 0 || stride == 0 {
		return nil, fmt.Errorf("trace: sequential generator needs size > 0 and stride > 0 (got %d, %d)", size, stride)
	}
	return &Sequential{Size: size, Stride: stride}, nil
}

// Next implements Generator.
func (s *Sequential) Next() Access {
	a := Access{Addr: s.Base + s.pos}
	s.pos += s.Stride
	if s.pos >= s.Size {
		s.pos = 0
	}
	return a
}

// Footprint implements Generator.
func (s *Sequential) Footprint() uint64 { return s.Size }

// Name implements Generator.
func (s *Sequential) Name() string { return "sequential" }

// Uniform draws addresses uniformly over a footprint — the worst case
// for caching, whose miss curve is m(C) ≈ 1 - C/footprint.
type Uniform struct {
	Base uint64
	Size uint64
	Line uint64
	rng  *solve.RNG
}

// NewUniform returns a uniform-random generator over size bytes aligned
// to line-sized blocks.
func NewUniform(size, line uint64, rng *solve.RNG) (*Uniform, error) {
	if size == 0 || line == 0 || size < line {
		return nil, fmt.Errorf("trace: uniform generator needs size >= line > 0 (got %d, %d)", size, line)
	}
	return &Uniform{Size: size, Line: line, rng: rng}, nil
}

// Next implements Generator.
func (u *Uniform) Next() Access {
	blocks := u.Size / u.Line
	b := uint64(u.rng.Intn(int(blocks)))
	return Access{Addr: u.Base + b*u.Line}
}

// Footprint implements Generator.
func (u *Uniform) Footprint() uint64 { return u.Size }

// Name implements Generator.
func (u *Uniform) Name() string { return "uniform" }

// Zipf draws line-granular addresses with Zipfian popularity: rank-k
// blocks are accessed with probability ∝ k^(-S). Zipfian reuse is what
// produces power-law miss curves — the empirical basis of the paper's
// Eq. 1 — because caching the top-C/L blocks captures a Σk^-s prefix of
// the mass.
type Zipf struct {
	Base uint64
	Size uint64
	Line uint64
	S    float64
	rng  *solve.RNG
	// cdf caches the normalized cumulative distribution over block
	// ranks so each sample is a binary search rather than an O(n) scan.
	cdf []float64
	// perm maps popularity rank to block index so hot blocks are
	// scattered over the footprint rather than clustered at its start.
	perm []int
}

// NewZipf returns a Zipfian generator over size bytes, line-sized blocks
// and exponent s > 0.
func NewZipf(size, line uint64, s float64, rng *solve.RNG) (*Zipf, error) {
	if size == 0 || line == 0 || size < line {
		return nil, fmt.Errorf("trace: zipf generator needs size >= line > 0 (got %d, %d)", size, line)
	}
	if s <= 0 {
		return nil, fmt.Errorf("trace: zipf exponent must be > 0, got %g", s)
	}
	blocks := int(size / line)
	z := &Zipf{Size: size, Line: line, S: s, rng: rng}
	z.cdf = make([]float64, blocks)
	var cum solve.Kahan
	for k := 1; k <= blocks; k++ {
		cum.Add(math.Pow(float64(k), -s))
		z.cdf[k-1] = cum.Sum()
	}
	norm := z.cdf[blocks-1]
	for i := range z.cdf {
		z.cdf[i] /= norm
	}
	z.perm = rng.Perm(blocks)
	return z, nil
}

// Next implements Generator.
func (z *Zipf) Next() Access {
	u := z.rng.Float64()
	// Binary search the CDF for the sampled rank.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return Access{Addr: z.Base + uint64(z.perm[lo])*z.Line}
}

// Footprint implements Generator.
func (z *Zipf) Footprint() uint64 { return z.Size }

// Name implements Generator.
func (z *Zipf) Name() string { return "zipf" }

// WorkingSet alternates between phases, each with its own hot region and
// a background of cold uniform accesses — a caricature of iterative HPC
// solvers (hot stencil + cold streaming). PhaseLen accesses are drawn per
// phase before the hot region rotates.
type WorkingSet struct {
	Base     uint64
	Size     uint64
	Line     uint64
	HotSize  uint64  // bytes of the per-phase hot region
	HotProb  float64 // probability an access hits the hot region
	PhaseLen int     // accesses per phase
	rng      *solve.RNG
	phase    int
	count    int
}

// NewWorkingSet returns a phased working-set generator.
func NewWorkingSet(size, line, hotSize uint64, hotProb float64, phaseLen int, rng *solve.RNG) (*WorkingSet, error) {
	if size == 0 || line == 0 || size < line || hotSize == 0 || hotSize > size {
		return nil, fmt.Errorf("trace: working-set generator needs size >= hotSize >= line > 0 (size %d, hot %d, line %d)", size, hotSize, line)
	}
	if hotProb < 0 || hotProb > 1 {
		return nil, fmt.Errorf("trace: hot probability %g outside [0,1]", hotProb)
	}
	if phaseLen <= 0 {
		return nil, fmt.Errorf("trace: phase length must be > 0, got %d", phaseLen)
	}
	return &WorkingSet{Size: size, Line: line, HotSize: hotSize, HotProb: hotProb, PhaseLen: phaseLen, rng: rng}, nil
}

// Next implements Generator.
func (w *WorkingSet) Next() Access {
	w.count++
	if w.count >= w.PhaseLen {
		w.count = 0
		w.phase++
	}
	hotBlocks := w.HotSize / w.Line
	allBlocks := w.Size / w.Line
	var b uint64
	if w.rng.Float64() < w.HotProb {
		// Hot region rotates with the phase.
		start := (uint64(w.phase) * hotBlocks) % allBlocks
		b = (start + uint64(w.rng.Intn(int(hotBlocks)))) % allBlocks
	} else {
		b = uint64(w.rng.Intn(int(allBlocks)))
	}
	return Access{Addr: w.Base + b*w.Line}
}

// Footprint implements Generator.
func (w *WorkingSet) Footprint() uint64 { return w.Size }

// Name implements Generator.
func (w *WorkingSet) Name() string { return "workingset" }
