// Package solve provides the small numeric substrate used throughout the
// repository: deterministic random number generation, root finding,
// one-dimensional minimization and compensated summation.
//
// The original study was carried out with a Python/NumPy simulator; this
// package replaces the handful of numeric primitives that simulator relied
// on, implemented on the Go standard library only so that every experiment
// is bit-reproducible across platforms.
package solve

import "math"

// RNG is a deterministic pseudo-random number generator based on
// SplitMix64 (Steele, Lea, Flood 2014). It is small, fast, splittable and
// passes BigCrush, which is more than sufficient for driving workload
// generation in simulations. The zero value is a valid generator seeded
// with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split returns a new generator whose stream is statistically independent
// from r's. It advances r by one step. Splitting is used to give each
// experiment replicate its own stream without coupling replicate count to
// stream contents.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() * 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("solve: Intn with non-positive bound")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 computes the 128-bit product of a and b, returning the high and
// low 64-bit halves.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// UniformRange returns a uniform float64 in [lo, hi).
func (r *RNG) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// LogUniform returns a value whose logarithm is uniform over
// [log lo, log hi). This matches how the paper's generators draw work
// values spanning four orders of magnitude (1e8 to 1e12): sampling the
// exponent uniformly rather than the value itself.
func (r *RNG) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("solve: LogUniform requires 0 < lo < hi")
	}
	return math.Exp(r.UniformRange(math.Log(lo), math.Log(hi)))
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples from a Zipf distribution over {0, …, n-1} with exponent
// s > 0 using inverse-CDF on a precomputed table-free approximation
// (rejection-inversion of Hörmann and Derflinger). For the trace
// generator's purposes n is modest so we use exact inverse CDF with
// cached normalization when repeated sampling is needed; this method is
// the simple one-shot variant.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("solve: Zipf with non-positive n")
	}
	// One-pass inverse CDF; O(n) worst case but typically terminates
	// early because mass concentrates on small ranks.
	var norm float64
	for k := 1; k <= n; k++ {
		norm += math.Pow(float64(k), -s)
	}
	u := r.Float64() * norm
	var cum float64
	for k := 1; k <= n; k++ {
		cum += math.Pow(float64(k), -s)
		if u <= cum {
			return k - 1
		}
	}
	return n - 1
}
