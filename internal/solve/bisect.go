package solve

import (
	"errors"
	"math"
)

// ErrNoBracket is returned when the supplied interval does not bracket a
// root (f(lo) and f(hi) have the same sign).
var ErrNoBracket = errors.New("solve: interval does not bracket a root")

// ErrNoConverge is returned when an iterative method exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNoConverge = errors.New("solve: iteration limit reached before convergence")

// defaultMaxIter bounds bisection steps. 200 halvings shrink any
// representable interval below one ulp, so hitting the bound indicates a
// pathological (NaN-producing) objective rather than slow convergence.
const defaultMaxIter = 200

// Bisect finds x in [lo, hi] with f(x) = 0 to within relative tolerance
// rtol, assuming f is continuous and f(lo), f(hi) have opposite signs.
// It is robust against non-finite f values inside the interval (they are
// treated as sign carriers via copysign on the midpoint side that remains
// bracketed). Bisect performs no heap allocations of its own, so hot
// paths may call it with a long-lived objective without per-call cost.
func Bisect(f func(float64) float64, lo, hi, rtol float64) (float64, error) {
	return bisect(f, 0, lo, hi, rtol)
}

// bisect solves f(x) = target on [lo, hi]. Evaluating f(x) - target
// inline (rather than wrapping f in a shifted closure) keeps the shared
// solver allocation-free for both Bisect and BisectDecreasing while
// producing bit-identical iterates.
func bisect(f func(float64) float64, target, lo, hi, rtol float64) (float64, error) {
	if lo > hi {
		lo, hi = hi, lo
	}
	flo, fhi := f(lo)-target, f(hi)-target
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if math.Signbit(flo) == math.Signbit(fhi) {
		return 0, ErrNoBracket
	}
	for i := 0; i < defaultMaxIter; i++ {
		mid := midpoint(lo, hi)
		if mid <= lo || mid >= hi {
			// Interval collapsed to adjacent floats.
			return mid, nil
		}
		fmid := f(mid) - target
		if fmid == 0 {
			return mid, nil
		}
		if math.Signbit(fmid) == math.Signbit(flo) {
			lo, flo = mid, fmid
		} else {
			hi = mid
		}
		if hi-lo <= rtol*math.Max(math.Abs(lo), math.Abs(hi)) {
			return midpoint(lo, hi), nil
		}
	}
	return midpoint(lo, hi), ErrNoConverge
}

// midpoint halves [lo, hi] without overflowing when hi-lo exceeds the
// float64 range (e.g. lo and hi near opposite extremes).
func midpoint(lo, hi float64) float64 {
	if half := (hi - lo) / 2; !math.IsInf(half, 0) {
		return lo + half
	}
	return lo/2 + hi/2
}

// BisectDecreasing solves f(x) = target for a continuous strictly
// decreasing f on [lo, hi]. It is a convenience wrapper used by the
// makespan equalizer, where f(K) = Σ (1-s_i)/(K/c_i - s_i) is decreasing
// in K. Unlike a closure-shifted Bisect it allocates nothing, so the
// equalizer can sit on the scheduler's zero-allocation hot path.
func BisectDecreasing(f func(float64) float64, target, lo, hi, rtol float64) (float64, error) {
	return bisect(f, target, lo, hi, rtol)
}

// GoldenSection minimizes a unimodal f on [lo, hi] to within absolute
// tolerance atol on x, returning the located minimizer.
func GoldenSection(f func(float64) float64, lo, hi, atol float64) float64 {
	const invPhi = 0.6180339887498949  // 1/φ
	const invPhi2 = 0.3819660112501051 // 1/φ²
	a, b := lo, hi
	h := b - a
	c := a + invPhi2*h
	d := a + invPhi*h
	fc, fd := f(c), f(d)
	for b-a > atol {
		if fc < fd {
			b, d, fd = d, c, fc
			h = b - a
			c = a + invPhi2*h
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			h = b - a
			d = a + invPhi*h
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// Kahan accumulates float64 values with compensated (Kahan-Babuška)
// summation. The zero value is an empty sum. It keeps experiment
// aggregates stable when summing tens of thousands of makespans spanning
// several orders of magnitude.
type Kahan struct {
	sum, c float64
}

// Add accumulates v.
func (k *Kahan) Add(v float64) {
	t := k.sum + v
	if math.Abs(k.sum) >= math.Abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *Kahan) Sum() float64 { return k.sum + k.c }

// Sum computes the compensated sum of xs.
func Sum(xs []float64) float64 {
	var k Kahan
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

// RelDiff returns the relative difference |a-b| / max(|a|, |b|), the
// tolerance metric of the cross-check harnesses. Exactly equal values
// (including two zeros) yield 0; any non-finite operand yields +Inf so
// an overflowed quantity always FAILS a tolerance gate instead of
// slipping past it as NaN (which compares false against every bound).
func RelDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
		return math.Inf(1)
	}
	return d / scale
}
