package solve

import (
	"math"
	"testing"
)

// TestBisectAllocFree pins the root finder's allocation budget at zero:
// the equalizer calls it for every heuristic evaluation, so a single
// allocation here multiplies across the whole portfolio sweep. The
// objective is built once outside the measured loop — per-call closure
// construction is the caller's budget, not Bisect's.
func TestBisectAllocFree(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	if n := testing.AllocsPerRun(200, func() {
		if _, err := Bisect(f, 0, 2, 1e-12); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Bisect allocates %g times per call, want 0", n)
	}
}

// TestBisectDecreasingAllocFree pins the shifted variant too: it used
// to wrap the objective in a fresh closure per call.
func TestBisectDecreasingAllocFree(t *testing.T) {
	f := func(x float64) float64 { return 1 / x }
	if n := testing.AllocsPerRun(200, func() {
		if _, err := BisectDecreasing(f, 2, 1e-6, 1e6, 1e-12); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("BisectDecreasing allocates %g times per call, want 0", n)
	}
}

// TestGoldenSectionAllocFree covers the minimizer on the same grounds.
func TestGoldenSectionAllocFree(t *testing.T) {
	f := func(x float64) float64 { return math.Abs(x - 0.25) }
	if n := testing.AllocsPerRun(200, func() {
		GoldenSection(f, 0, 1, 1e-9)
	}); n != 0 {
		t.Errorf("GoldenSection allocates %g times per call, want 0", n)
	}
}
