package solve

import (
	"math"
	"testing"
)

// FuzzBisect drives the root finder with arbitrary intervals,
// tolerances and root locations for the linear objective f(x) = x-root
// (continuous and strictly increasing, so the bracket logic is fully
// determined by where root lies relative to the interval). Invariants:
//
//   - no panic, for any input;
//   - a root outside the interval is reported as ErrNoBracket;
//   - a bracketed root yields a result inside the interval, within the
//     requested relative tolerance of the true root.
func FuzzBisect(f *testing.F) {
	f.Add(0.0, 1.0, 1e-9, 0.5)
	f.Add(1.0, 0.0, 1e-9, 0.25)   // reversed interval
	f.Add(-1e6, 1e6, 1e-12, 42.0) // tight tolerance, wide range
	f.Add(-1e308, 1e308, 1e-9, 3.0)
	f.Add(0.0, 1.0, 0.0, 0.75)  // zero tolerance: run to collapse
	f.Add(0.0, 1.0, -1.0, 0.1)  // negative tolerance
	f.Add(5.0, 10.0, 1e-9, 1.0) // no bracket
	f.Add(2.0, 2.0, 1e-9, 2.0)  // degenerate interval, root at endpoint
	f.Fuzz(func(t *testing.T, lo, hi, rtol, root float64) {
		for _, v := range []float64{lo, hi, root} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("non-finite interval or root")
			}
		}
		obj := func(x float64) float64 { return x - root }
		got, err := Bisect(obj, lo, hi, rtol)
		mn, mx := math.Min(lo, hi), math.Max(lo, hi)

		if root < mn || root > mx {
			if err != ErrNoBracket {
				t.Fatalf("root %v outside [%v, %v] but err = %v (got %v)", root, mn, mx, err, got)
			}
			return
		}
		if err != nil && err != ErrNoConverge {
			t.Fatalf("bracketed root %v in [%v, %v] rejected: %v", root, mn, mx, err)
		}
		if got < mn || got > mx || math.IsNaN(got) {
			t.Fatalf("result %v escapes [%v, %v]", got, mn, mx)
		}
		if math.IsNaN(rtol) {
			return
		}
		// The final interval always brackets the root, so the returned
		// midpoint is within the tolerance-scaled interval width plus a
		// couple of ulps of interval-collapse slack.
		scale := math.Max(math.Abs(mn), math.Abs(mx))
		slack := math.Max(rtol, 0)*scale + 4*ulp(scale)
		if diff := math.Abs(got - root); diff > slack {
			t.Fatalf("|%v - %v| = %v exceeds tolerance %v (rtol %v over [%v, %v])",
				got, root, diff, slack, rtol, mn, mx)
		}
	})
}

// ulp returns the distance from |x| to the next float64.
func ulp(x float64) float64 {
	x = math.Abs(x)
	return math.Nextafter(x, math.Inf(1)) - x
}

// FuzzBisectDecreasing cross-checks the decreasing-function wrapper used
// by the makespan equalizer against the same invariants.
func FuzzBisectDecreasing(f *testing.F) {
	f.Add(1.0, 100.0, 2.0, 1e-9)
	f.Add(0.5, 8.0, 1.0, 1e-12)
	f.Fuzz(func(t *testing.T, lo, hi, target, rtol float64) {
		for _, v := range []float64{lo, hi, target} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("non-finite input")
			}
		}
		if lo <= 0 || hi <= lo {
			t.Skip("wrapper needs 0 < lo < hi")
		}
		// f(x) = 1/x is strictly decreasing on (0, ∞).
		got, err := BisectDecreasing(func(x float64) float64 { return 1 / x }, target, lo, hi, rtol)
		if err != nil {
			return // no bracket or no convergence: nothing to assert
		}
		if got < lo || got > hi || math.IsNaN(got) {
			t.Fatalf("result %v escapes [%v, %v]", got, lo, hi)
		}
	})
}
