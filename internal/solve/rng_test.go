package solve

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// Child stream should not reproduce the parent's continuation.
	p := parent.Uint64()
	c := child.Uint64()
	if p == c {
		t.Fatal("split stream mirrors parent")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnOne(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 100; i++ {
		if v := r.Intn(1); v != 0 {
			t.Fatalf("Intn(1) = %d", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 1000; i++ {
		v := r.UniformRange(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("UniformRange(-3,5) = %v", v)
		}
	}
}

func TestLogUniformRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.LogUniform(1e8, 1e12)
		if v < 1e8 || v > 1e12 {
			t.Fatalf("LogUniform = %v outside bounds", v)
		}
	}
}

func TestLogUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LogUniform with bad bounds did not panic")
		}
	}()
	NewRNG(1).LogUniform(-1, 2)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(10)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := NewRNG(11)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestZipfBoundsAndBias(t *testing.T) {
	r := NewRNG(12)
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		k := r.Zipf(10, 1.0)
		if k < 0 || k >= 10 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[9] {
		t.Fatalf("Zipf not biased to low ranks: first=%d last=%d", counts[0], counts[9])
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Zipf(0) did not panic")
		}
	}()
	NewRNG(1).Zipf(0, 1)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	varc := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(varc-1) > 0.05 {
		t.Fatalf("normal variance %v", varc)
	}
}

func TestIntnUnbiasedProperty(t *testing.T) {
	// Property: for any seed and bound, Intn stays in range.
	f := func(seed uint64, bound uint8) bool {
		n := int(bound%31) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via 32-bit split arithmetic done differently.
		wantLo := a * b
		// hi = floor(a*b / 2^64): check via per-word accumulation.
		a0, a1 := a&0xFFFFFFFF, a>>32
		b0, b1 := b&0xFFFFFFFF, b>>32
		mid := a1*b0 + (a0*b0)>>32
		mid2 := mid&0xFFFFFFFF + a0*b1
		wantHi := a1*b1 + mid>>32 + mid2>>32
		return lo == wantLo && hi == wantHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
