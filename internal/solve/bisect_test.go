package solve

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisectLinear(t *testing.T) {
	x, err := Bisect(func(x float64) float64 { return 2*x - 4 }, 0, 10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-2) > 1e-9 {
		t.Fatalf("root %v, want 2", x)
	}
}

func TestBisectAtEndpoint(t *testing.T) {
	x, err := Bisect(func(x float64) float64 { return x }, 0, 5, 1e-12)
	if err != nil || x != 0 {
		t.Fatalf("got (%v, %v), want root exactly 0", x, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	_, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9)
	if err != ErrNoBracket {
		t.Fatalf("got %v, want ErrNoBracket", err)
	}
}

func TestBisectSwappedInterval(t *testing.T) {
	x, err := Bisect(func(x float64) float64 { return x - 3 }, 10, 0, 1e-12)
	if err != nil || math.Abs(x-3) > 1e-9 {
		t.Fatalf("got (%v, %v)", x, err)
	}
}

func TestBisectNonlinear(t *testing.T) {
	// cos x = x has root ≈ 0.7390851332.
	x, err := Bisect(func(x float64) float64 { return math.Cos(x) - x }, 0, 1, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-0.7390851332151607) > 1e-10 {
		t.Fatalf("dottie number wrong: %v", x)
	}
}

func TestBisectDecreasing(t *testing.T) {
	// f(K) = 100/K is decreasing; f(K) = 4 at K = 25.
	k, err := BisectDecreasing(func(K float64) float64 { return 100 / K }, 4, 1, 1000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-25) > 1e-6 {
		t.Fatalf("K = %v, want 25", k)
	}
}

func TestBisectPropertyFindsSignChange(t *testing.T) {
	// Property: for monotone cubic with a root inside, bisection finds it.
	f := func(shift uint8) bool {
		c := float64(shift%100) / 10
		root, err := Bisect(func(x float64) float64 { return x*x*x - c }, -10, 10, 1e-12)
		if err != nil {
			return false
		}
		return math.Abs(root*root*root-c) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenSectionQuadratic(t *testing.T) {
	x := GoldenSection(func(x float64) float64 { return (x - 3) * (x - 3) }, -10, 10, 1e-8)
	if math.Abs(x-3) > 1e-6 {
		t.Fatalf("minimizer %v, want 3", x)
	}
}

func TestGoldenSectionAsymmetric(t *testing.T) {
	// Minimize |x - 0.1| + x² on [0, 1]; min at derivative change region.
	x := GoldenSection(func(x float64) float64 { return math.Abs(x-0.1) + x*x }, 0, 1, 1e-9)
	if math.Abs(x-0.1) > 1e-6 {
		t.Fatalf("minimizer %v, want 0.1", x)
	}
}

func TestKahanBeatsNaive(t *testing.T) {
	// Sum 1 + 1e-16 a million times: naive drops the small terms.
	var k Kahan
	k.Add(1)
	for i := 0; i < 1_000_000; i++ {
		k.Add(1e-16)
	}
	want := 1 + 1e-10
	if math.Abs(k.Sum()-want) > 1e-13 {
		t.Fatalf("kahan sum %v, want %v", k.Sum(), want)
	}
}

func TestSumEmpty(t *testing.T) {
	if s := Sum(nil); s != 0 {
		t.Fatalf("Sum(nil) = %v", s)
	}
}

func TestSumMatchesExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4.5, -2.5}
	if s := Sum(xs); s != 8 {
		t.Fatalf("Sum = %v, want 8", s)
	}
}

func TestKahanPermutationInvariance(t *testing.T) {
	// Property: compensated sums of a permuted slice agree to high
	// precision even with wide magnitude ranges.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = r.LogUniform(1e-8, 1e8)
		}
		s1 := Sum(xs)
		perm := r.Perm(len(xs))
		ys := make([]float64, len(xs))
		for i, p := range perm {
			ys[i] = xs[p]
		}
		s2 := Sum(ys)
		return math.Abs(s1-s2) <= 1e-9*math.Abs(s1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRelDiff(t *testing.T) {
	inf, nan := math.Inf(1), math.NaN()
	cases := []struct{ a, b, want float64 }{
		{1, 1, 0},
		{0, 0, 0},
		{2, 1, 0.5},
		{1, 2, 0.5},
		{-1, 1, 2},
		{inf, 1, inf},
		{inf, inf, inf}, // overflowed on both sides is still a failure
		{nan, 1, inf},
		{0, 1e-300, 1}, // tiny but unequal: relative scale still applies
	}
	for _, tc := range cases {
		if got := RelDiff(tc.a, tc.b); got != tc.want {
			t.Errorf("RelDiff(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
