package cachesim

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/solve"
	"repro/internal/trace"
)

// SweepPoint is one measurement of a cache-size sweep.
type SweepPoint struct {
	CacheBytes uint64
	MissRate   float64
}

// Sweep measures the miss rate of the generator build (a fresh generator
// per size, from mkGen) across the given cache sizes. Each run performs
// warmup accesses that are discarded before measuring count accesses, so
// cold-start misses do not pollute the steady-state curve.
//
// Sizes are simulated concurrently (each size gets its own cache and its
// own generator from mkGen, so runs are independent); results are
// returned in input order regardless of scheduling. mkGen must therefore
// be safe for concurrent calls and each returned generator must be
// independent — both hold for the internal/trace generators, which carry
// their own RNG state.
func Sweep(sizes []uint64, line uint64, ways int, mkGen func() trace.Generator, warmup, count int) ([]SweepPoint, error) {
	if count <= 0 {
		return nil, fmt.Errorf("cachesim: sweep needs count > 0, got %d", count)
	}
	pts := make([]SweepPoint, len(sizes))
	errs := make([]error, len(sizes))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for idx, size := range sizes {
		wg.Add(1)
		go func(idx int, size uint64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := Config{SizeBytes: size, LineBytes: line, Ways: ways}
			c, err := New(cfg, []int{ways})
			if err != nil {
				errs[idx] = fmt.Errorf("cachesim: sweep at %d bytes: %w", size, err)
				return
			}
			g := mkGen()
			for i := 0; i < warmup; i++ {
				c.Access(0, g.Next())
			}
			c.ResetStats()
			for i := 0; i < count; i++ {
				c.Access(0, g.Next())
			}
			pts[idx] = SweepPoint{CacheBytes: size, MissRate: c.Stats(0).MissRate()}
			c.Release()
		}(idx, size)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pts, nil
}

// PowerLawFit holds the fitted parameters of m(C) = M0 · (C0/C)^Alpha.
type PowerLawFit struct {
	M0    float64 // miss rate at the reference size C0
	C0    float64 // reference cache size, bytes
	Alpha float64 // sensitivity exponent
	R2    float64 // coefficient of determination of the log-log fit
}

// MissRate evaluates the fitted law (with the Eq. 1 clamp) at cache size
// c bytes.
func (f PowerLawFit) MissRate(c float64) float64 {
	if c <= 0 {
		return 1
	}
	return math.Min(1, f.M0*math.Pow(f.C0/c, f.Alpha))
}

// FitPowerLaw performs an ordinary least-squares fit of log(m) against
// log(C) over the sweep points with 0 < m < 1 (clamped points carry no
// slope information), returning the power law anchored at refSize.
// At least two usable points are required.
func FitPowerLaw(pts []SweepPoint, refSize float64) (PowerLawFit, error) {
	var xs, ys []float64
	for _, p := range pts {
		if p.MissRate > 0 && p.MissRate < 1 {
			xs = append(xs, math.Log(float64(p.CacheBytes)))
			ys = append(ys, math.Log(p.MissRate))
		}
	}
	if len(xs) < 2 {
		return PowerLawFit{}, fmt.Errorf("cachesim: power-law fit needs >= 2 unclamped points, have %d", len(xs))
	}
	n := float64(len(xs))
	mx := solve.Sum(xs) / n
	my := solve.Sum(ys) / n
	var sxx, sxy, syy solve.Kahan
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx.Add(dx * dx)
		sxy.Add(dx * dy)
		syy.Add(dy * dy)
	}
	if sxx.Sum() == 0 {
		return PowerLawFit{}, fmt.Errorf("cachesim: degenerate sweep (all sizes equal)")
	}
	slope := sxy.Sum() / sxx.Sum() // log m = slope · log C + b, slope = -α
	b := my - slope*mx
	alpha := -slope
	m0 := math.Exp(b + slope*math.Log(refSize))
	r2 := 0.0
	if syy.Sum() > 0 {
		r2 = sxy.Sum() * sxy.Sum() / (sxx.Sum() * syy.Sum())
	}
	return PowerLawFit{M0: m0, C0: refSize, Alpha: alpha, R2: r2}, nil
}
