package cachesim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/solve"
	"repro/internal/trace"
)

func smallConfig() Config {
	return Config{SizeBytes: 64 * 1024, LineBytes: 64, Ways: 8} // 128 sets
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 8},
		{SizeBytes: 1024, LineBytes: 0, Ways: 8},
		{SizeBytes: 1024, LineBytes: 48, Ways: 8},  // line not power of two
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},  // no ways
		{SizeBytes: 1024, LineBytes: 64, Ways: 16}, // lines % ways != 0 → sets=1, ok? 1024/64=16 lines, 16/16=1 set, power of two — valid!
	}
	for i, c := range cases[:4] {
		if c.Validate() == nil {
			t.Fatalf("case %d accepted invalid config", i)
		}
	}
	if err := cases[4].Validate(); err != nil {
		t.Fatalf("fully-associative config rejected: %v", err)
	}
	// Non power-of-two set count.
	bad := Config{SizeBytes: 3 * 64 * 8, LineBytes: 64, Ways: 8} // 3 sets
	if bad.Validate() == nil {
		t.Fatal("3-set cache accepted")
	}
}

func TestNewValidation(t *testing.T) {
	cfg := smallConfig()
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("no partitions accepted")
	}
	if _, err := New(cfg, []int{-1}); err == nil {
		t.Fatal("negative ways accepted")
	}
	if _, err := New(cfg, []int{5, 5}); err == nil {
		t.Fatal("oversubscribed ways accepted")
	}
}

func TestHitAfterFill(t *testing.T) {
	c, err := New(smallConfig(), []int{8})
	if err != nil {
		t.Fatal(err)
	}
	a := trace.Access{Addr: 0x1000}
	if c.Access(0, a) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0, a) {
		t.Fatal("second access missed")
	}
	st := c.Stats(0)
	if st.Accesses != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if mr := st.MissRate(); mr != 0.5 {
		t.Fatalf("miss rate %v", mr)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 2-way cache, one set: size = 2 lines.
	cfg := Config{SizeBytes: 128, LineBytes: 64, Ways: 2}
	c, err := New(cfg, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	// Fill both ways with A, B (same set, different tags).
	A := trace.Access{Addr: 0}
	B := trace.Access{Addr: 64 * 1} // with 1 set, every line maps to set 0
	C := trace.Access{Addr: 64 * 2}
	c.Access(0, A) // miss, fill
	c.Access(0, B) // miss, fill
	c.Access(0, A) // hit: A now MRU
	c.Access(0, C) // miss: evicts B (LRU)
	if !c.Access(0, A) {
		t.Fatal("A should still be resident")
	}
	if c.Access(0, B) {
		t.Fatal("B should have been evicted")
	}
}

func TestZeroWayPartitionAlwaysMisses(t *testing.T) {
	c, err := New(smallConfig(), []int{8, 0})
	if err != nil {
		t.Fatal(err)
	}
	a := trace.Access{Addr: 0x40}
	for i := 0; i < 5; i++ {
		if c.Access(1, a) {
			t.Fatal("zero-way partition produced a hit")
		}
	}
	if st := c.Stats(1); st.Misses != 5 {
		t.Fatalf("stats %+v", st)
	}
}

// The architectural premise: with way partitioning, a co-runner cannot
// change another partition's hit/miss outcome.
func TestPartitionIsolation(t *testing.T) {
	mkGen := func(seed uint64) trace.Generator {
		g, err := trace.NewZipf(1<<15, 64, 0.9, solve.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	// Run partition 0 alone.
	alone, err := New(smallConfig(), []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	g := mkGen(1)
	for i := 0; i < 20000; i++ {
		alone.Access(0, g.Next())
	}
	// Run partition 0 with an antagonistic co-runner hammering away.
	shared, err := New(smallConfig(), []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	g0 := mkGen(1)
	antagonist := mkGen(999)
	for i := 0; i < 20000; i++ {
		shared.Access(0, g0.Next())
		shared.Access(1, antagonist.Next())
		shared.Access(1, antagonist.Next())
	}
	if alone.Stats(0) != shared.Stats(0) {
		t.Fatalf("co-runner perturbed a partitioned workload: %+v vs %+v", alone.Stats(0), shared.Stats(0))
	}
}

// Without partitioning (both streams share all ways), the co-runner DOES
// interfere — the contrast that motivates CAT.
func TestUnpartitionedInterference(t *testing.T) {
	mk := func() (*Cache, error) { return New(smallConfig(), []int{8}) }
	alone, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewZipf(1<<15, 64, 0.9, solve.NewRNG(1))
	for i := 0; i < 20000; i++ {
		alone.Access(0, g.Next())
	}
	shared, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	g0, _ := trace.NewZipf(1<<15, 64, 0.9, solve.NewRNG(1))
	ant, _ := trace.NewUniform(1<<20, 64, solve.NewRNG(999))
	for i := 0; i < 20000; i++ {
		shared.Access(0, g0.Next())
		shared.Access(0, ant.Next()) // same partition: thrashes the shared ways
	}
	// The victim's own addresses now miss more. Compare the miss count
	// attributable to the victim stream indirectly: total misses grew
	// beyond the antagonist's own cold misses would explain.
	if shared.Stats(0).Misses <= alone.Stats(0).Misses {
		t.Fatal("expected interference in the unpartitioned cache")
	}
}

func TestResetStats(t *testing.T) {
	c, err := New(smallConfig(), []int{8})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, trace.Access{Addr: 0})
	c.ResetStats()
	if st := c.Stats(0); st.Accesses != 0 || st.Misses != 0 {
		t.Fatalf("stats not cleared: %+v", st)
	}
	// Contents survive: the next access to the same line hits.
	if !c.Access(0, trace.Access{Addr: 0}) {
		t.Fatal("reset evicted cache contents")
	}
}

func TestRunLengthMismatch(t *testing.T) {
	c, err := New(smallConfig(), []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewSequential(1024, 64)
	if _, err := c.Run([]trace.Generator{g}, 10); err == nil {
		t.Fatal("generator/partition mismatch accepted")
	}
}

func TestMissRateMonotoneInCacheSize(t *testing.T) {
	mkGen := func() trace.Generator {
		g, err := trace.NewZipf(1<<20, 64, 0.8, solve.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	sizes := []uint64{16 << 10, 64 << 10, 256 << 10, 1 << 20}
	pts, err := Sweep(sizes, 64, 8, mkGen, 20000, 50000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].MissRate > pts[i-1].MissRate+0.02 {
			t.Fatalf("miss rate rose with cache size: %+v", pts)
		}
	}
}

func TestFitPowerLawRecoversSynthetic(t *testing.T) {
	// Analytic points from a known law: m = 0.01 · (40e6/C)^0.5.
	var pts []SweepPoint
	for _, c := range []uint64{1e6, 2e6, 4e6, 8e6, 16e6, 32e6} {
		m := 0.01 * math.Pow(40e6/float64(c), 0.5)
		pts = append(pts, SweepPoint{CacheBytes: c, MissRate: m})
	}
	fit, err := FitPowerLaw(pts, 40e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-0.5) > 1e-9 || math.Abs(fit.M0-0.01) > 1e-9 {
		t.Fatalf("fit %+v, want α=0.5 m0=0.01", fit)
	}
	if fit.R2 < 0.999999 {
		t.Fatalf("perfect data should give R²≈1, got %v", fit.R2)
	}
	if m := fit.MissRate(40e6); math.Abs(m-0.01) > 1e-9 {
		t.Fatalf("fit.MissRate(C0) = %v", m)
	}
	if m := fit.MissRate(0); m != 1 {
		t.Fatalf("fit.MissRate(0) = %v, want clamp to 1", m)
	}
}

func TestFitPowerLawRejectsDegenerate(t *testing.T) {
	if _, err := FitPowerLaw([]SweepPoint{{CacheBytes: 1e6, MissRate: 0.5}}, 40e6); err == nil {
		t.Fatal("single point accepted")
	}
	pts := []SweepPoint{{CacheBytes: 1e6, MissRate: 1}, {CacheBytes: 2e6, MissRate: 1}}
	if _, err := FitPowerLaw(pts, 40e6); err == nil {
		t.Fatal("all-clamped points accepted")
	}
	same := []SweepPoint{{CacheBytes: 1e6, MissRate: 0.5}, {CacheBytes: 1e6, MissRate: 0.4}}
	if _, err := FitPowerLaw(same, 40e6); err == nil {
		t.Fatal("all-equal sizes accepted")
	}
}

func TestSweepValidation(t *testing.T) {
	mkGen := func() trace.Generator {
		g, _ := trace.NewSequential(1024, 64)
		return g
	}
	if _, err := Sweep([]uint64{1 << 16}, 64, 8, mkGen, 0, 0); err == nil {
		t.Fatal("zero count accepted")
	}
}

// Property: stats never report more misses than accesses, whatever the
// access pattern.
func TestStatsSanityProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		c, err := New(smallConfig(), []int{5, 3})
		if err != nil {
			return false
		}
		r := solve.NewRNG(seed)
		for i := 0; i < int(n%2000)+1; i++ {
			part := r.Intn(2)
			c.Access(part, trace.Access{Addr: uint64(r.Intn(1 << 20))})
		}
		for p := 0; p < 2; p++ {
			st := c.Stats(p)
			if st.Misses > st.Accesses {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWayRange(t *testing.T) {
	c, err := New(smallConfig(), []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := c.WayRange(0); lo != 0 || hi != 3 {
		t.Fatalf("partition 0 ways [%d,%d)", lo, hi)
	}
	if lo, hi := c.WayRange(1); lo != 3 || hi != 8 {
		t.Fatalf("partition 1 ways [%d,%d)", lo, hi)
	}
	if c.Partitions() != 2 {
		t.Fatal("partition count")
	}
}
