package cachesim

import (
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/solve"
	"repro/internal/trace"
)

func fitSizes() []uint64 {
	return []uint64{1 << 14, 1 << 15, 1 << 16, 1 << 17}
}

func mkUniform(size uint64) func() trace.Generator {
	return func() trace.Generator {
		g, err := trace.NewUniform(size, 64, solve.NewRNG(1))
		if err != nil {
			panic(err)
		}
		return g
	}
}

// TestFitTableMemoizes checks that a repeated characterization cell is
// served from the table with an identical fit, and that distinct cells
// do not collide.
func TestFitTableMemoizes(t *testing.T) {
	tbl := NewFitTable()
	fit1, err := tbl.Characterize("u1", fitSizes(), 64, 8, mkUniform(1<<20), 2000, 8000, 40e6)
	if err != nil {
		t.Fatal(err)
	}
	fit2, err := tbl.Characterize("u1", fitSizes(), 64, 8, mkUniform(1<<20), 2000, 8000, 40e6)
	if err != nil {
		t.Fatal(err)
	}
	if fit1 != fit2 {
		t.Errorf("memoized fit differs: %+v vs %+v", fit1, fit2)
	}
	st := tbl.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Errorf("stats %+v, want 1 miss / 1 hit / 1 entry", st)
	}
	// A different tag (or footprint, or geometry) is a different cell.
	if _, err := tbl.Characterize("u2", fitSizes(), 64, 8, mkUniform(1<<22), 2000, 8000, 40e6); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Characterize("u1", fitSizes(), 64, 4, mkUniform(1<<20), 2000, 8000, 40e6); err != nil {
		t.Fatal(err)
	}
	if st := tbl.Stats(); st.Entries != 3 {
		t.Errorf("distinct cells collided: %+v", st)
	}

	// The instrumented view reads the same counters at scrape time.
	reg := obs.NewRegistry()
	tbl.Instrument(reg)
	byName := map[string]float64{}
	for _, s := range reg.Snapshot() {
		byName[s.Name] = s.Value
	}
	st = tbl.Stats()
	if byName["cachesim_fit_hits_total"] != float64(st.Hits) ||
		byName["cachesim_fit_misses_total"] != float64(st.Misses) ||
		byName["cachesim_fit_entries"] != float64(st.Entries) {
		t.Errorf("instrumented view %v does not match stats %+v", byName, st)
	}
	tbl.Instrument(nil) // no-op
}

// TestFitTableDistinguishesParameterizations guards the collision trap
// the key's stream fingerprint exists to close: two generators of the
// same class with the same footprint — even under the SAME tag — must
// occupy distinct cells when their streams differ (different stride,
// different seed).
func TestFitTableDistinguishesParameterizations(t *testing.T) {
	tbl := NewFitTable()
	mkSeq := func(stride uint64) func() trace.Generator {
		return func() trace.Generator {
			g, err := trace.NewSequential(1<<20, stride)
			if err != nil {
				panic(err)
			}
			return g
		}
	}
	f8, err := tbl.Characterize("same", fitSizes(), 64, 8, mkSeq(8), 2000, 8000, 40e6)
	if err != nil {
		t.Fatal(err)
	}
	f16, err := tbl.Characterize("same", fitSizes(), 64, 8, mkSeq(16), 2000, 8000, 40e6)
	if err != nil {
		t.Fatal(err)
	}
	if st := tbl.Stats(); st.Entries != 2 || st.Misses != 2 {
		t.Fatalf("differently parameterized generators collided: %+v (fits %+v vs %+v)", st, f8, f16)
	}
	// Differently seeded streams of one random class must also split.
	mkU := func(seed uint64) func() trace.Generator {
		return func() trace.Generator {
			g, err := trace.NewUniform(1<<20, 64, solve.NewRNG(seed))
			if err != nil {
				panic(err)
			}
			return g
		}
	}
	if _, err := tbl.Characterize("same", fitSizes(), 64, 8, mkU(1), 2000, 8000, 40e6); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Characterize("same", fitSizes(), 64, 8, mkU(2), 2000, 8000, 40e6); err != nil {
		t.Fatal(err)
	}
	if st := tbl.Stats(); st.Entries != 4 {
		t.Fatalf("differently seeded generators collided: %+v", st)
	}
}

// TestFitTableConcurrent hammers one cell from many goroutines: the
// sweep must run once and every caller must see the same fit.
func TestFitTableConcurrent(t *testing.T) {
	tbl := NewFitTable()
	var wg sync.WaitGroup
	fits := make([]PowerLawFit, 8)
	for i := range fits {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fit, err := tbl.Characterize("c", fitSizes(), 64, 8, mkUniform(1<<20), 2000, 8000, 40e6)
			if err != nil {
				t.Error(err)
				return
			}
			fits[i] = fit
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(fits); i++ {
		if fits[i] != fits[0] {
			t.Fatalf("caller %d saw fit %+v, caller 0 saw %+v", i, fits[i], fits[0])
		}
	}
	if st := tbl.Stats(); st.Misses != 1 {
		t.Errorf("sweep ran %d times, want 1", st.Misses)
	}
}
