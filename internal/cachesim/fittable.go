package cachesim

import (
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/obs"
	"repro/internal/trace"
)

// FitTable memoizes power-law fits of trace-driven cache sweeps. A
// characterization cell is identified by the generator — its class
// name, footprint, a caller-supplied tag AND a fingerprint of its
// first accesses, so two differently parameterized or differently
// seeded generators of one class (e.g. two strides, two Zipf skews)
// can never collide — together with the full measurement geometry:
// ways, line size, sweep sizes, warmup/measure counts and the fit's
// reference size. Sweeping and fitting are deterministic, so serving a
// repeated cell from the table is bit-identical to recomputing it — at
// the cost of one map lookup instead of millions of simulated
// accesses.
//
// A FitTable is safe for concurrent use. The zero value is NOT ready;
// use NewFitTable.
type FitTable struct {
	mu     sync.Mutex
	m      map[string]*fitEntry
	hits   uint64
	misses uint64
}

// fitEntry collapses concurrent requests for one cell into a single
// sweep, mirroring the portfolio cache's once-per-key discipline.
type fitEntry struct {
	once sync.Once
	fit  PowerLawFit
	err  error
}

// NewFitTable returns an empty table ready for concurrent use.
func NewFitTable() *FitTable {
	return &FitTable{m: make(map[string]*fitEntry)}
}

// FitTableStats reports the table's monotonic counters and size.
type FitTableStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// Stats snapshots the counters.
func (t *FitTable) Stats() FitTableStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return FitTableStats{Hits: t.hits, Misses: t.misses, Entries: len(t.m)}
}

// Instrument exports the table's counters on reg as func metrics
// (cachesim_fit_hits_total, cachesim_fit_misses_total,
// cachesim_fit_entries): values are read at scrape time, so the
// characterization path pays nothing. A nil registry is a no-op.
func (t *FitTable) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("cachesim_fit_hits_total", "Fit-table hits",
		func() float64 { return float64(t.Stats().Hits) })
	reg.CounterFunc("cachesim_fit_misses_total", "Fit-table misses (sweeps run)",
		func() float64 { return float64(t.Stats().Misses) })
	reg.GaugeFunc("cachesim_fit_entries", "Memoized characterization cells",
		func() float64 { return float64(t.Stats().Entries) })
}

// fingerprintAccesses is how many accesses of a fresh generator
// participate in the cell key. The built-in generator classes diverge
// within their first few accesses when parameterized or seeded
// differently (strides differ at access two, seeded RNG streams at
// access one), so 64 addresses over-identify the stream by a wide
// margin while costing microseconds next to a multi-million-access
// sweep.
const fingerprintAccesses = 64

// Characterize runs (or serves from the table) the sweep-and-fit cell:
// Sweep over sizes with the given geometry followed by FitPowerLaw at
// refSize. tag is a free-form label folded into the key (useful to
// partition the table by caller); soundness does not depend on it,
// because the key also fingerprints the generator's actual access
// stream. mkGen must return deterministic, independent generators — the
// same contract Sweep already imposes.
func (t *FitTable) Characterize(tag string, sizes []uint64, lineBytes uint64, ways int,
	mkGen func() trace.Generator, warmup, count int, refSize float64) (PowerLawFit, error) {

	g := mkGen()
	key := fitKey(tag, g, sizes, lineBytes, ways, warmup, count, refSize)

	t.mu.Lock()
	ent, ok := t.m[key]
	if !ok {
		ent = &fitEntry{}
		t.m[key] = ent
		t.misses++
	} else {
		t.hits++
	}
	t.mu.Unlock()

	ent.once.Do(func() {
		pts, err := Sweep(sizes, lineBytes, ways, mkGen, warmup, count)
		if err != nil {
			ent.err = err
			return
		}
		ent.fit, ent.err = FitPowerLaw(pts, refSize)
	})
	return ent.fit, ent.err
}

// fitKey builds the canonical byte encoding of one characterization
// cell; every numeric field contributes its exact bits, strings are
// length-prefixed, and the generator contributes its first
// fingerprintAccesses accesses, so distinct cells cannot collide. g is
// consumed (fresh from mkGen, used for the fingerprint only).
func fitKey(tag string, g trace.Generator, sizes []uint64, lineBytes uint64, ways, warmup, count int, refSize float64) string {
	name := g.Name()
	b := make([]byte, 0, 64+len(tag)+len(name)+8*len(sizes)+9*fingerprintAccesses)
	app := func(s string) {
		b = binary.LittleEndian.AppendUint64(b, uint64(len(s)))
		b = append(b, s...)
	}
	app(tag)
	app(name)
	b = binary.LittleEndian.AppendUint64(b, g.Footprint())
	for i := 0; i < fingerprintAccesses; i++ {
		a := g.Next()
		b = binary.LittleEndian.AppendUint64(b, a.Addr)
		if a.Write {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = binary.LittleEndian.AppendUint64(b, lineBytes)
	b = binary.LittleEndian.AppendUint64(b, uint64(ways))
	b = binary.LittleEndian.AppendUint64(b, uint64(warmup))
	b = binary.LittleEndian.AppendUint64(b, uint64(count))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(sizes)))
	for _, s := range sizes {
		b = binary.LittleEndian.AppendUint64(b, s)
	}
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(refSize))
	return string(b)
}
