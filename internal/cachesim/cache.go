// Package cachesim implements a set-associative, way-partitioned LRU
// cache simulator in the style of Intel Cache Allocation Technology
// (CAT): each partition owns a contiguous range of ways in every set and
// lookups for one partition never evict lines of another.
//
// The simulator serves two purposes in this reproduction. First, it
// substitutes for the PEBIL instrumentation pipeline the paper's authors
// used to measure NPB miss rates (Table 2): synthetic traces from
// internal/trace are run through cache-size sweeps and the Power Law of
// Cache Misses is fitted to the resulting curve (fit.go). Second, it
// demonstrates that strict way partitioning removes inter-application
// interference, the architectural premise of the whole study.
package cachesim

import (
	"fmt"
	"sync"

	"repro/internal/trace"
)

// Config describes the simulated cache geometry.
type Config struct {
	SizeBytes uint64 // total capacity
	LineBytes uint64 // cache-line size (power of two)
	Ways      int    // associativity (ways per set)
}

// Validate reports the first structural problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.LineBytes == 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cachesim: line size must be a power of two, got %d", c.LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cachesim: ways must be > 0, got %d", c.Ways)
	case c.SizeBytes == 0:
		return fmt.Errorf("cachesim: zero cache size")
	}
	lines := c.SizeBytes / c.LineBytes
	if lines == 0 || lines%uint64(c.Ways) != 0 {
		return fmt.Errorf("cachesim: %d lines not divisible into %d ways", lines, c.Ways)
	}
	sets := lines / uint64(c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cachesim: set count %d must be a power of two", sets)
	}
	return nil
}

// line is one cache line's metadata. age implements LRU: larger is more
// recently used.
type line struct {
	tag   uint64
	valid bool
	age   uint64
}

// Cache is a way-partitioned set-associative LRU cache. A Cache with a
// single partition spanning all ways behaves as a conventional shared
// cache.
type Cache struct {
	cfg    Config
	sets   uint64
	lines  []line  // sets × ways, row-major by set
	partLo []int   // first way of each partition (inclusive)
	partHi []int   // last way of each partition (exclusive)
	clock  uint64  // global LRU clock
	stats  []Stats // per-partition statistics
}

// Stats counts accesses and misses for one partition.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses, or 0 when no access was recorded.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// linePool recycles line arrays between caches. A sweep builds one
// cache per size, and the line metadata array (sets × ways entries) is
// by far its largest allocation; slabs returned via Release are cleared
// and reused by the next New of comparable size.
var linePool = sync.Pool{New: func() any { return new([]line) }}

// New builds a cache with the given geometry and way partitioning:
// wayCounts[i] ways are reserved for partition i, contiguously, in
// declaration order. The counts must sum to at most cfg.Ways; ways left
// over are unused (as with CAT masks that do not cover every way).
// Passing a single count equal to cfg.Ways yields an unpartitioned cache.
func New(cfg Config, wayCounts []int) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(wayCounts) == 0 {
		return nil, fmt.Errorf("cachesim: need at least one partition")
	}
	total := 0
	for i, w := range wayCounts {
		if w < 0 {
			return nil, fmt.Errorf("cachesim: partition %d has negative way count %d", i, w)
		}
		total += w
	}
	if total > cfg.Ways {
		return nil, fmt.Errorf("cachesim: partitions need %d ways but cache has %d", total, cfg.Ways)
	}
	sets := cfg.SizeBytes / cfg.LineBytes / uint64(cfg.Ways)
	nLines := sets * uint64(cfg.Ways)
	lp := linePool.Get().(*[]line)
	lines := *lp
	if uint64(cap(lines)) < nLines {
		lines = make([]line, nLines)
	} else {
		lines = lines[:nLines]
		clear(lines)
	}
	*lp = nil
	linePool.Put(lp)
	c := &Cache{
		cfg:    cfg,
		sets:   sets,
		lines:  lines,
		partLo: make([]int, len(wayCounts)),
		partHi: make([]int, len(wayCounts)),
		stats:  make([]Stats, len(wayCounts)),
	}
	cursor := 0
	for i, w := range wayCounts {
		c.partLo[i] = cursor
		cursor += w
		c.partHi[i] = cursor
	}
	return c, nil
}

// Release returns the cache's line array to the internal slab pool.
// The cache must not be used afterwards. Calling Release is optional —
// it only recycles memory for workloads (like sweeps) that build many
// short-lived caches.
func (c *Cache) Release() {
	if c.lines == nil {
		return
	}
	lp := linePool.Get().(*[]line)
	if cap(*lp) < cap(c.lines) {
		*lp = c.lines
	}
	c.lines = nil
	linePool.Put(lp)
}

// Partitions returns the number of partitions.
func (c *Cache) Partitions() int { return len(c.partLo) }

// WayRange returns the [lo, hi) way interval of partition part.
func (c *Cache) WayRange(part int) (lo, hi int) { return c.partLo[part], c.partHi[part] }

// Stats returns the statistics of partition part.
func (c *Cache) Stats(part int) Stats { return c.stats[part] }

// ResetStats clears all partition counters without touching cache
// contents (used to discard warm-up accesses).
func (c *Cache) ResetStats() {
	for i := range c.stats {
		c.stats[i] = Stats{}
	}
}

// Access performs one reference on behalf of partition part and reports
// whether it hit. Partitions with zero ways always miss (they own no
// lines), modelling an application granted no cache.
func (c *Cache) Access(part int, a trace.Access) bool {
	st := &c.stats[part]
	st.Accesses++
	lo, hi := c.partLo[part], c.partHi[part]
	if lo == hi {
		st.Misses++
		return false
	}
	block := a.Addr / c.cfg.LineBytes
	set := block & (c.sets - 1)
	tag := block >> log2(c.sets)
	base := set * uint64(c.cfg.Ways)
	c.clock++

	// Hit path: search the partition's ways in this set.
	for w := lo; w < hi; w++ {
		ln := &c.lines[base+uint64(w)]
		if ln.valid && ln.tag == tag {
			ln.age = c.clock
			return true
		}
	}
	// Miss: fill an invalid way if one exists, else evict the LRU way
	// of this partition (other partitions' ways are untouchable).
	st.Misses++
	var victim *line
	for w := lo; w < hi; w++ {
		ln := &c.lines[base+uint64(w)]
		if !ln.valid {
			victim = ln
			break
		}
		if victim == nil || ln.age < victim.age {
			victim = ln
		}
	}
	victim.valid = true
	victim.tag = tag
	victim.age = c.clock
	return false
}

// log2 of a power of two.
func log2(x uint64) uint {
	var n uint
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// Run drives count accesses from each generator concurrently
// (round-robin interleaved, one per partition) and returns the resulting
// per-partition stats. Interleaving matters only as a determinism choice:
// with strict way partitioning the streams cannot affect each other, a
// property tested in this package.
func (c *Cache) Run(gens []trace.Generator, count int) ([]Stats, error) {
	if len(gens) != c.Partitions() {
		return nil, fmt.Errorf("cachesim: %d generators for %d partitions", len(gens), c.Partitions())
	}
	for i := 0; i < count; i++ {
		for p, g := range gens {
			c.Access(p, g.Next())
		}
	}
	out := make([]Stats, len(gens))
	for p := range gens {
		out[p] = c.stats[p]
	}
	return out, nil
}
