package cachesim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
)

// synthPoints evaluates an exact power law m(C) = m0·(C0/C)^alpha at
// the given sizes (no clamping applied).
func synthPoints(m0, c0, alpha float64, sizes []uint64) []SweepPoint {
	pts := make([]SweepPoint, len(sizes))
	for i, s := range sizes {
		pts[i] = SweepPoint{CacheBytes: s, MissRate: m0 * math.Pow(c0/float64(s), alpha)}
	}
	return pts
}

// TestFitPowerLawTable exercises the fit across parameter corners in
// one table: multiple exponents, clamped points, degenerate inputs.
func TestFitPowerLawTable(t *testing.T) {
	sizes := []uint64{1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24}
	cases := []struct {
		name    string
		pts     []SweepPoint
		refSize float64
		wantErr string  // substring of the expected error, "" = success
		alpha   float64 // expected exponent on success
		m0      float64 // expected miss rate at refSize on success
	}{
		{
			name: "exact alpha 0.5", refSize: 1 << 20,
			pts:   synthPoints(0.01, 1<<20, 0.5, sizes),
			alpha: 0.5, m0: 0.01,
		},
		{
			name: "exact alpha 0.3", refSize: 1 << 20,
			pts:   synthPoints(0.02, 1<<20, 0.3, sizes),
			alpha: 0.3, m0: 0.02,
		},
		{
			name: "exact alpha 0.7 anchored off-grid", refSize: 40e6,
			pts:   synthPoints(0.05, 1<<22, 0.7, sizes),
			alpha: 0.7, m0: 0.05 * math.Pow(float64(uint64(1)<<22)/40e6, 0.7),
		},
		{
			name: "clamped points carry no slope", refSize: 1 << 20,
			pts: []SweepPoint{
				{CacheBytes: 1 << 10, MissRate: 1}, // clamped
				{CacheBytes: 1 << 12, MissRate: 1}, // clamped
				{CacheBytes: 1 << 20, MissRate: 0.01},
			},
			wantErr: ">= 2 unclamped",
		},
		{
			name: "zero miss rates unusable", refSize: 1 << 20,
			pts: []SweepPoint{
				{CacheBytes: 1 << 16, MissRate: 0},
				{CacheBytes: 1 << 20, MissRate: 0},
			},
			wantErr: ">= 2 unclamped",
		},
		{
			name: "empty sweep", refSize: 1 << 20,
			pts:     nil,
			wantErr: ">= 2 unclamped",
		},
		{
			name: "single point", refSize: 1 << 20,
			pts:     synthPoints(0.01, 1<<20, 0.5, sizes[:1]),
			wantErr: ">= 2 unclamped",
		},
		{
			name: "all sizes equal", refSize: 1 << 20,
			pts: []SweepPoint{
				{CacheBytes: 1 << 20, MissRate: 0.01},
				{CacheBytes: 1 << 20, MissRate: 0.02},
			},
			wantErr: "degenerate",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fit, err := FitPowerLaw(tc.pts, tc.refSize)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(fit.Alpha-tc.alpha) > 1e-9 {
				t.Errorf("alpha %v, want %v", fit.Alpha, tc.alpha)
			}
			if rel := math.Abs(fit.M0-tc.m0) / tc.m0; rel > 1e-9 {
				t.Errorf("m0 %v, want %v (rel %v)", fit.M0, tc.m0, rel)
			}
			if math.Abs(fit.R2-1) > 1e-9 {
				t.Errorf("R2 %v on exact data, want 1", fit.R2)
			}
			if fit.C0 != tc.refSize {
				t.Errorf("C0 %v, want anchor %v", fit.C0, tc.refSize)
			}
		})
	}
}

// TestFitMissRateEvaluation: the fitted law must clamp at 1 and treat
// non-positive sizes as "no cache" (miss rate 1), mirroring Eq. 1.
func TestFitMissRateEvaluation(t *testing.T) {
	fit := PowerLawFit{M0: 0.5, C0: 1 << 20, Alpha: 0.5}
	cases := []struct {
		c    float64
		want float64
	}{
		{0, 1},
		{-5, 1},
		{1 << 20, 0.5},
		{1 << 22, 0.25},
		{1, 1}, // huge extrapolated rate clamps to 1
	}
	for _, tc := range cases {
		if got := fit.MissRate(tc.c); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("MissRate(%v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

// TestSweepCacheExceedsFootprint: a cache whose capacity exceeds the
// whole trace footprint holds every line after one warmup pass, so the
// steady-state miss rate must be exactly zero at every such size — and
// the sweep must return results in input order regardless of its
// internal concurrency.
func TestSweepCacheExceedsFootprint(t *testing.T) {
	const line = 64
	const footprint = 1 << 12 // 64 lines
	mk := func() trace.Generator {
		g, err := trace.NewSequential(footprint, line)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	sizes := []uint64{1 << 16, footprint, 1 << 14} // every size >= footprint
	pts, err := Sweep(sizes, line, 4, mk, footprint/line, 4*footprint/line)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if p.CacheBytes != sizes[i] {
			t.Errorf("point %d: size %d, want input order %d", i, p.CacheBytes, sizes[i])
		}
		if p.MissRate != 0 {
			t.Errorf("size %d: steady-state miss rate %v, want 0 (cache exceeds footprint)", p.CacheBytes, p.MissRate)
		}
	}
}

// TestSweepTinyCacheAlwaysMisses is the opposite corner: a cache of a
// single line under a streaming trace larger than it misses on every
// steady-state access.
func TestSweepTinyCacheAlwaysMisses(t *testing.T) {
	const line = 64
	mk := func() trace.Generator {
		g, err := trace.NewSequential(1<<12, line)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	pts, err := Sweep([]uint64{line}, line, 1, mk, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].MissRate != 1 {
		t.Errorf("one-line cache miss rate %v, want 1", pts[0].MissRate)
	}
}
