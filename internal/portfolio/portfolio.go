// Package portfolio evaluates many scheduling heuristics — and many
// scenarios — concurrently, and picks the best schedule each scenario
// admits. It is the paper's comparison methodology turned into an
// engine: where the study ranks the ten policies of Sections 5–6 across
// sweeps, the portfolio scheduler runs the whole policy set for every
// incoming (Platform, Applications) scenario on a bounded worker pool
// and serves the winner, with a full per-heuristic report for audit.
//
// Three properties make it the substrate for scale work:
//
//   - Determinism. Every heuristic's randomness is derived from the
//     scenario seed and the heuristic's position, never from execution
//     order, so concurrent and serial runs agree bit-for-bit.
//   - Bounded concurrency. One Engine owns one semaphore; heuristic ×
//     scenario tasks from any number of Evaluate/EvaluateBatch calls
//     share it, so callers can fan out freely without oversubscribing
//     the machine.
//   - Memoization. Solved (scenario, heuristic) pairs are remembered in
//     a sharded, mutex-striped cache keyed by a canonical scenario
//     hash; repeated scenarios cost one map lookup, and concurrent
//     identical requests collapse into a single computation.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/solve"
)

// seedStride separates per-heuristic RNG substreams. It matches the
// derivation the experiment sweeps have always used, so portfolio-run
// figures are bit-identical to the historical serial loops.
const seedStride = 0x9E3779B97F4A7C15

// Config parameterizes an Engine.
type Config struct {
	// Workers bounds the number of heuristic evaluations in flight at
	// once. Values < 1 default to GOMAXPROCS. One worker reproduces the
	// serial evaluation order's results exactly (as does any other
	// worker count — see the determinism property).
	Workers int
	// Cache memoizes solved (scenario, heuristic) pairs. Nil disables
	// memoization. A Cache may be shared between engines.
	Cache *Cache
	// Metrics instruments the engine (see NewMetrics). Nil disables all
	// observation: the engine then pays one nil check per site and its
	// hot path stays allocation-free.
	Metrics *Metrics
}

// Engine is a concurrent portfolio scheduler. It is safe for use from
// multiple goroutines; all evaluations share one worker pool.
type Engine struct {
	sem     chan struct{}
	cache   *Cache
	metrics *Metrics
}

// New returns an Engine with the given configuration.
func New(cfg Config) *Engine {
	w := cfg.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	cfg.Metrics.bindCache(cfg.Cache)
	return &Engine{sem: make(chan struct{}, w), cache: cfg.Cache, metrics: cfg.Metrics}
}

// Workers reports the size of the engine's worker pool.
func (e *Engine) Workers() int { return cap(e.sem) }

// CacheStats reports the memoization cache's counters; zero if the
// engine has no cache.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.Stats()
}

// Scenario is one scheduling problem: a platform, a workload, the set
// of heuristics to race, and the seed driving the randomized ones.
type Scenario struct {
	Platform model.Platform
	Apps     []model.Application
	// Heuristics to evaluate, in report order. Nil or empty means the
	// full extended set (the paper's ten plus SharedCache/LocalSearch).
	Heuristics []sched.Heuristic
	// Seed of the scenario's master random stream. Heuristic i draws
	// from the substream Seed ^ (i+1)·seedStride, so results do not
	// depend on which worker ran which heuristic when.
	Seed uint64
}

func (s *Scenario) heuristics() []sched.Heuristic {
	if len(s.Heuristics) == 0 {
		return sched.ExtendedHeuristics
	}
	return s.Heuristics
}

// Result is one heuristic's outcome on one scenario.
type Result struct {
	Heuristic sched.Heuristic
	// Schedule is nil when Err is non-nil. Schedules may be served from
	// the memoization cache and shared between callers: treat them as
	// immutable.
	Schedule *sched.Schedule
	Err      error
	// FromCache reports whether the schedule was served from the
	// memoization cache rather than computed by this call.
	FromCache bool
}

// Report is the full outcome of one scenario: one Result per heuristic,
// in heuristic order, plus the index of the winner.
type Report struct {
	Results []Result
	// Best indexes the feasible Result with the smallest makespan
	// (ties broken toward the earlier heuristic), or -1 if every
	// heuristic failed.
	Best int
	// Err is set when the scenario itself was invalid (bad platform or
	// application); Results is then empty.
	Err error
}

// BestResult returns the winning result, or nil if none was feasible.
func (r *Report) BestResult() *Result {
	if r.Best < 0 || r.Best >= len(r.Results) {
		return nil
	}
	return &r.Results[r.Best]
}

// BestSchedule returns the winning schedule, or nil if none was
// feasible. The schedule may be cache-shared: treat it as immutable.
func (r *Report) BestSchedule() *sched.Schedule {
	if br := r.BestResult(); br != nil {
		return br.Schedule
	}
	return nil
}

// Evaluate runs every heuristic of the scenario on the worker pool and
// reports all outcomes. The returned error is non-nil only for invalid
// scenarios; per-heuristic failures land in the Report.
func (e *Engine) Evaluate(s Scenario) (*Report, error) {
	return e.EvaluateContext(context.Background(), s)
}

// EvaluateContext is Evaluate under a context: cancellation abandons
// the remaining heuristics and surfaces ctx.Err() both as the call
// error and on every unevaluated Result. See EvaluateBatchContext for
// the cancellation contract.
func (e *Engine) EvaluateContext(ctx context.Context, s Scenario) (*Report, error) {
	reports, err := e.EvaluateBatchContext(ctx, []Scenario{s})
	rep := reports[0]
	if err == nil {
		err = rep.Err
	}
	return rep, err
}

// task is one (scenario, heuristic) evaluation cell.
type task struct {
	sc  *Scenario
	rep *Report
	hi  int
	h   sched.Heuristic
}

// taskSlab recycles the task list of EvaluateBatch calls. Entries are
// zeroed before the slab returns to the pool so it never pins scenario
// or report memory.
type taskSlab struct{ tasks []task }

var taskSlabPool = sync.Pool{New: func() any { return new(taskSlab) }}

// EvaluateBatch evaluates many scenarios at once, fanning every
// (scenario, heuristic) pair out to the shared worker pool. The
// returned slice aligns with scenarios. Scenario-level validation
// failures are recorded in the corresponding Report's Err.
func (e *Engine) EvaluateBatch(scenarios []Scenario) []*Report {
	reports, _ := e.EvaluateBatchContext(context.Background(), scenarios)
	return reports
}

// EvaluateBatchContext is EvaluateBatch under a context.
//
// The call spawns at most Workers goroutines regardless of batch size
// (a full paper sweep is tens of thousands of tasks), and each task
// additionally holds a slot of the engine-wide semaphore, so concurrent
// EvaluateBatch calls on one engine still respect the global bound.
// Tasks are drained through an atomic cursor over a pooled slab —
// results land at fixed (scenario, heuristic) indices, so scheduling
// order never influences the output.
//
// Cancellation contract: workers poll ctx before claiming each task, so
// a cancelled batch stops within one in-flight heuristic evaluation per
// worker. The call then returns ctx.Err() alongside the reports; every
// task that never ran carries ctx.Err() as its Result.Err (cancelled
// results never shadow computed ones — pickBest skips errors). Pooled
// scratch is returned in a reusable state, and a subsequent call on a
// live context is bit-identical to one on a fresh engine.
func (e *Engine) EvaluateBatchContext(ctx context.Context, scenarios []Scenario) ([]*Report, error) {
	m := e.metrics
	var raceStart time.Time
	if m != nil {
		raceStart = time.Now()
	}
	reports := make([]*Report, len(scenarios))
	slab := taskSlabPool.Get().(*taskSlab)
	tasks := slab.tasks[:0]
	for si := range scenarios {
		sc := &scenarios[si]
		rep := &Report{Best: -1}
		reports[si] = rep
		if err := model.ValidateAll(sc.Platform, sc.Apps); err != nil {
			rep.Err = fmt.Errorf("portfolio: scenario %d: %w", si, err)
			continue
		}
		hs := sc.heuristics()
		rep.Results = make([]Result, len(hs))
		for hi := range hs {
			tasks = append(tasks, task{sc, rep, hi, hs[hi]})
		}
	}

	if m != nil {
		m.batches.Inc()
		m.scenarios.Add(uint64(len(scenarios)))
		m.evals.Add(uint64(len(tasks)))
		// Depth rises by the whole admission and falls once per resolved
		// task (computed or cancellation-filled), so it always returns to
		// its pre-call level.
		m.queueDepth.Add(int64(len(tasks)))
	}

	workers := cap(e.sem)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	done := ctx.Done()
	if workers <= 1 {
		// Serial fast path: no goroutines, no synchronization beyond the
		// engine-wide semaphore.
		for i := range tasks {
			if ctx.Err() != nil {
				break
			}
			t := &tasks[i]
			select {
			case e.sem <- struct{}{}:
			case <-done:
				continue // loop re-checks ctx and breaks
			}
			t.rep.Results[t.hi] = e.evalOne(ctx, t.sc, t.h, t.hi)
			<-e.sem
			if m != nil {
				m.queueDepth.Dec()
			}
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if ctx.Err() != nil {
						return
					}
					i := int(cursor.Add(1)) - 1
					if i >= len(tasks) {
						return
					}
					t := &tasks[i]
					select {
					case e.sem <- struct{}{}:
					case <-done:
						return
					}
					t.rep.Results[t.hi] = e.evalOne(ctx, t.sc, t.h, t.hi)
					<-e.sem
					if m != nil {
						m.queueDepth.Dec()
					}
				}
			}()
		}
		wg.Wait()
	}
	// Tasks skipped by cancellation carry the context error so callers
	// can tell "not computed" from "computed infeasible". This runs
	// strictly after every worker exited, so the writes cannot race.
	if err := ctx.Err(); err != nil {
		for i := range tasks {
			t := &tasks[i]
			res := &t.rep.Results[t.hi]
			if res.Schedule == nil && res.Err == nil {
				res.Heuristic = t.h
				res.Err = err
				if m != nil {
					m.queueDepth.Dec()
				}
			}
		}
	}
	for i := range tasks {
		tasks[i] = task{}
	}
	slab.tasks = tasks[:0]
	taskSlabPool.Put(slab)
	for _, rep := range reports {
		rep.pickBest()
	}
	if m != nil {
		for _, rep := range reports {
			if br := rep.BestResult(); br != nil {
				m.wins.With(br.Heuristic.String()).Inc()
			}
		}
		m.raceSeconds.Observe(time.Since(raceStart).Seconds())
	}
	return reports, ctx.Err()
}

// evalOne times one heuristic evaluation into the eval-latency
// histogram when metrics are on; the wall-clock read happens only on
// the enabled path, so a metrics-off run never touches the clock.
func (e *Engine) evalOne(ctx context.Context, sc *Scenario, h sched.Heuristic, hi int) Result {
	m := e.metrics
	if m == nil {
		return e.solveOne(ctx, sc, h, hi)
	}
	start := time.Now()
	res := e.solveOne(ctx, sc, h, hi)
	m.evalSeconds.Observe(time.Since(start).Seconds())
	return res
}

// solveOne schedules one heuristic, through the cache when present.
// Only randomized heuristics get an RNG: the deterministic ones never
// read it, and skipping the construction keeps the hot path lean
// without changing any schedule. Failures are wrapped in
// *sched.HeuristicError naming the policy; context errors pass through
// bare so errors.Is(err, context.Canceled) holds on every layer.
func (e *Engine) solveOne(ctx context.Context, sc *Scenario, h sched.Heuristic, hi int) Result {
	seed := HeuristicSeed(sc.Seed, hi)
	if e.cache == nil {
		s, err := h.ScheduleContext(ctx, sc.Platform, sc.Apps, rngFor(h, seed))
		return Result{Heuristic: h, Schedule: s, Err: heuristicErr(h, err)}
	}
	s, err, fromCache := e.cache.getOrCompute(ctx, sc.Platform, sc.Apps, h, seed, func() (*sched.Schedule, error) {
		// The RNG is built inside the computation so memoized hits do
		// not pay for a stream they never draw from.
		return h.ScheduleContext(ctx, sc.Platform, sc.Apps, rngFor(h, seed))
	})
	return Result{Heuristic: h, Schedule: s, Err: heuristicErr(h, err), FromCache: fromCache}
}

// heuristicErr wraps a per-heuristic failure in *sched.HeuristicError.
// Cancellation is not a property of the heuristic, so context errors
// stay bare — they mark "not computed", not "policy failed".
func heuristicErr(h sched.Heuristic, err error) error {
	if err == nil || isContextErr(err) {
		return err
	}
	return &sched.HeuristicError{Heuristic: h, Err: err}
}

// isContextErr reports whether err is a cancellation or deadline error.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// HeuristicSeed derives the RNG seed for the heuristic at index hi of a
// scenario seeded with scenarioSeed: the substream scenarioSeed ^
// (hi+1)·seedStride. It is exported as the single source of truth for
// that derivation — callers that re-solve individual heuristics outside
// the engine (the DES delta-rescheduling fast path) must reproduce the
// exact streams Evaluate would have drawn, or their results drift from
// the full race bit-for-bit determinism forbids.
func HeuristicSeed(scenarioSeed uint64, hi int) uint64 {
	return scenarioSeed ^ uint64(hi+1)*seedStride
}

// rngFor returns the heuristic's seeded stream, or nil for
// deterministic heuristics, which never read it: skipping the
// construction keeps the hot path lean without changing any schedule.
func rngFor(h sched.Heuristic, seed uint64) *solve.RNG {
	if !h.Randomized() {
		return nil
	}
	return solve.NewRNG(seed)
}

// BestIndex selects the feasible result with the smallest makespan,
// breaking ties toward the earlier index, or -1 if none is feasible.
// Results with a NaN makespan are treated as infeasible so they can
// never shadow a finite schedule. Exported so callers that assemble
// result slices outside Evaluate (the DES delta-rescheduling fast path)
// share the engine's exact selection semantics, ties included.
func BestIndex(results []Result) int {
	best := -1
	for i := range results {
		res := &results[i]
		if res.Err != nil || res.Schedule == nil || math.IsNaN(res.Schedule.Makespan) {
			continue
		}
		if best < 0 || res.Schedule.Makespan < results[best].Schedule.Makespan {
			best = i
		}
	}
	return best
}

// pickBest records BestIndex over the report's results.
func (r *Report) pickBest() {
	r.Best = BestIndex(r.Results)
}
