package portfolio

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/workload"
)

// TestCacheStressConcurrent hammers one shared cache from many
// goroutines mixing repeated and fresh scenarios, so `go test -race`
// exercises the striped locks, the per-entry sync.Once collapse and the
// atomic counters under real contention. Beyond being race-clean, the
// accounting must balance: hits+misses equals total requests, and every
// distinct key is computed exactly once.
func TestCacheStressConcurrent(t *testing.T) {
	const (
		goroutines = 32
		iterations = 40
	)
	cache := NewCache()
	eng := New(Config{Workers: runtime.GOMAXPROCS(0), Cache: cache})

	// A small pool of scenarios so goroutines collide on the same keys;
	// every scenario restricted to cheap heuristics to keep the test
	// fast under -race.
	hs := []sched.Heuristic{sched.DominantMinRatio, sched.Fair, sched.ZeroCache, sched.RandomPart}
	base := testScenarios(t, 4)
	for i := range base {
		base[i].Heuristics = hs
	}

	want := make(map[int][]float64, len(base))
	for i, sc := range base {
		rep, err := New(Config{Workers: 1}).Evaluate(sc)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rep.Results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			want[i] = append(want[i], r.Schedule.Makespan)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := solve.NewRNG(uint64(g))
			for it := 0; it < iterations; it++ {
				si := rng.Intn(len(base))
				rep, err := eng.Evaluate(base[si])
				if err != nil {
					errs <- err
					return
				}
				for hi, r := range rep.Results {
					if r.Err != nil {
						errs <- r.Err
						return
					}
					if r.Schedule.Makespan != want[si][hi] {
						t.Errorf("scenario %d %v: makespan %v, want %v",
							si, r.Heuristic, r.Schedule.Makespan, want[si][hi])
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := cache.Stats()
	total := uint64(goroutines * iterations * len(hs))
	if st.Hits+st.Misses != total {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d requests", st.Hits, st.Misses, st.Hits+st.Misses, total)
	}
	// Distinct keys: deterministic heuristics are seed-independent, so
	// each of the 4 scenarios contributes 3 deterministic entries plus
	// one seeded RandomPart entry.
	if wantEntries := len(base) * len(hs); st.Entries != wantEntries {
		t.Fatalf("cache holds %d entries, want %d", st.Entries, wantEntries)
	}
	if st.Misses != uint64(st.Entries) {
		t.Fatalf("%d misses for %d entries: some key was computed twice", st.Misses, st.Entries)
	}
}

// TestCacheSharedBetweenEngines checks that two engines with the same
// cache share memoized schedules.
func TestCacheSharedBetweenEngines(t *testing.T) {
	cache := NewCache()
	sc := Scenario{Platform: model.TaihuLight(), Apps: workload.NPB(), Seed: 21}
	if _, err := New(Config{Workers: 2, Cache: cache}).Evaluate(sc); err != nil {
		t.Fatal(err)
	}
	rep, err := New(Config{Workers: 2, Cache: cache}).Evaluate(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if !r.FromCache {
			t.Fatalf("%v recomputed despite shared cache", r.Heuristic)
		}
	}
}

// TestCacheShardSpread sanity-checks the FNV shard fold: distinct keys
// must not all collapse onto one shard.
func TestCacheShardSpread(t *testing.T) {
	apps := workload.NPB()
	pl := model.TaihuLight()
	shards := map[int]bool{}
	for i := 0; i < 64; i++ {
		p := pl
		p.Processors = float64(i + 1)
		shards[shardOf(appendScenarioKey(nil, p, apps, sched.Fair, 0))] = true
	}
	if len(shards) < 8 {
		t.Fatalf("64 distinct keys landed on only %d shards", len(shards))
	}
}
