package portfolio

import (
	"context"
	"testing"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestCacheHitAllocFree pins the memoization fast path at zero
// allocations: the scenario key is encoded into a pooled buffer and
// probed with a map lookup the compiler keeps allocation-free, so
// re-serving a solved (scenario, heuristic) pair costs no garbage.
func TestCacheHitAllocFree(t *testing.T) {
	pl := model.TaihuLight()
	apps := workload.NPB()
	cache := NewCache()
	compute := func() (*sched.Schedule, error) {
		return sched.DominantMinRatio.Schedule(pl, apps, nil)
	}
	ctx := context.Background()
	if _, err, _ := cache.getOrCompute(ctx, pl, apps, sched.DominantMinRatio, 0, compute); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(200, func() {
		s, err, fromCache := cache.getOrCompute(ctx, pl, apps, sched.DominantMinRatio, 0, compute)
		if err != nil || s == nil || !fromCache {
			t.Fatal("expected a cache hit")
		}
	})
	if n != 0 {
		t.Errorf("memoized hit allocates %g times, want 0", n)
	}
}

// TestMemoizedEvaluateAllocBudget pins the full engine round trip for a
// warm scenario: one Report with per-heuristic results costs a handful
// of allocations (report/result structures and the scenario slice), and
// nothing per heuristic. Budget 16 leaves slack for pool repopulation
// after GC; the steady state is ~8.
func TestMemoizedEvaluateAllocBudget(t *testing.T) {
	eng := New(Config{Workers: 1, Cache: NewCache()})
	s := Scenario{Platform: model.TaihuLight(), Apps: workload.NPB(), Seed: 42}
	if _, err := eng.Evaluate(s); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(100, func() {
		rep, err := eng.Evaluate(s)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Best < 0 {
			t.Fatal("no feasible schedule")
		}
	})
	if n > 16 {
		t.Errorf("memoized Evaluate allocates %g times, budget 16", n)
	}
}
