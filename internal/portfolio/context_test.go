package portfolio

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/workload"
)

func npbScenario(seed uint64) Scenario {
	apps := workload.NPB()
	for i := range apps {
		apps[i].SeqFraction = 0.05
	}
	return Scenario{Platform: model.TaihuLight(), Apps: apps, Seed: seed}
}

// TestEvaluateBatchContextPreCancelled: an already-cancelled context
// runs nothing; every result carries ctx.Err() and the call returns it.
func TestEvaluateBatchContextPreCancelled(t *testing.T) {
	eng := New(Config{Workers: 4, Cache: NewCache()})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reports, err := eng.EvaluateBatchContext(ctx, []Scenario{npbScenario(1), npbScenario(2)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("returned %v, want context.Canceled", err)
	}
	for si, rep := range reports {
		if rep.Best != -1 {
			t.Fatalf("scenario %d picked best %d from a cancelled batch", si, rep.Best)
		}
		for _, res := range rep.Results {
			if !errors.Is(res.Err, context.Canceled) {
				t.Fatalf("scenario %d %v: err %v, want context.Canceled", si, res.Heuristic, res.Err)
			}
			if res.Schedule != nil {
				t.Fatalf("scenario %d %v: schedule computed under cancelled ctx", si, res.Heuristic)
			}
		}
	}
	// Nothing may be cached: a later live-context call must compute.
	rep, err := eng.EvaluateContext(context.Background(), npbScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		if res.Err != nil {
			t.Fatalf("%v failed after cancellation: %v", res.Heuristic, res.Err)
		}
	}
}

// pollCtx cancels itself after a fixed number of Err() polls, giving a
// deterministic "cancelled mid-computation" without timing races.
type pollCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *pollCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}
func (c *pollCtx) Done() <-chan struct{} { return nil }

// TestCacheNotPoisonedByCancellation forces the cancellation to land
// *inside* a heuristic computation (LocalSearch polls ctx per toggle),
// so the cache sees a compute that returned ctx.Err() — and must evict
// it rather than serve the stale cancellation to future callers.
func TestCacheNotPoisonedByCancellation(t *testing.T) {
	eng := New(Config{Workers: 1, Cache: NewCache()})
	sc := npbScenario(5)
	sc.Heuristics = []sched.Heuristic{sched.LocalSearch}

	ctx := &pollCtx{Context: context.Background(), after: 4}
	rep, err := eng.EvaluateContext(ctx, sc)
	if !errors.Is(err, context.Canceled) && rep.Results[0].Err == nil {
		t.Skip("cancellation did not land inside the computation") // after-threshold too high for this input
	}

	rep, err = eng.EvaluateContext(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Err != nil {
		t.Fatalf("cache served a poisoned entry: %v", res.Err)
	}
	if res.Schedule == nil {
		t.Fatal("no schedule after recovery")
	}
	// And now it memoizes normally.
	rep, err = eng.EvaluateContext(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Results[0].FromCache {
		t.Fatal("recovered entry did not memoize")
	}
}

// TestEvaluateBatchContextDeterminism: a cancelled batch never corrupts
// later results — the engine's output for a fresh context matches a
// fresh engine bit-for-bit.
func TestEvaluateBatchContextDeterminism(t *testing.T) {
	eng := New(Config{Workers: 8, Cache: NewCache()})
	scs := make([]Scenario, 32)
	for i := range scs {
		scs[i] = npbScenario(uint64(i))
		scs[i].Apps[0].Work *= 1 + float64(i)/13
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.EvaluateBatchContext(ctx, scs); !errors.Is(err, context.Canceled) {
		t.Fatalf("returned %v", err)
	}

	got, err := eng.EvaluateBatchContext(context.Background(), scs)
	if err != nil {
		t.Fatal(err)
	}
	want := New(Config{Workers: 1}).EvaluateBatch(scs)
	for i := range want {
		wb, gb := want[i].BestResult(), got[i].BestResult()
		if wb == nil || gb == nil {
			t.Fatalf("scenario %d: missing best (want %v, got %v)", i, wb, gb)
		}
		if wb.Schedule.Makespan != gb.Schedule.Makespan {
			t.Fatalf("scenario %d: %v != %v after cancellation", i, gb.Schedule.Makespan, wb.Schedule.Makespan)
		}
	}
}

// TestHeuristicErrorWrapping: per-heuristic failures carry
// *sched.HeuristicError naming the policy.
func TestHeuristicErrorWrapping(t *testing.T) {
	eng := New(Config{Workers: 1, Cache: NewCache()})
	sc := npbScenario(1)
	sc.Heuristics = []sched.Heuristic{sched.Heuristic(77)}
	rep, err := eng.Evaluate(sc)
	if err != nil {
		t.Fatal(err)
	}
	var herr *sched.HeuristicError
	if !errors.As(rep.Results[0].Err, &herr) {
		t.Fatalf("result error %T (%v), want *sched.HeuristicError", rep.Results[0].Err, rep.Results[0].Err)
	}
	if herr.Heuristic != sched.Heuristic(77) {
		t.Fatalf("recorded heuristic %v", herr.Heuristic)
	}
}
