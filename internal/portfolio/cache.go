package portfolio

import (
	"context"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/sched"
)

// numShards stripes the cache's mutexes. 64 shards keep contention
// negligible at any realistic worker count while costing a few KB.
const numShards = 64

// Cache memoizes solved (scenario, heuristic) pairs behind a sharded,
// mutex-striped map. Entries are keyed by a canonical byte encoding of
// (platform, applications, heuristic, seed) — seed is omitted for
// deterministic heuristics, so e.g. DominantMinRatio on the same
// workload hits regardless of the scenario seed. Concurrent requests
// for the same key collapse into a single computation via a per-entry
// sync.Once. A Cache must not be copied after first use.
type Cache struct {
	shards       [numShards]cacheShard
	hits, misses atomic.Uint64
	evictions    atomic.Uint64
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	once     sync.Once
	schedule *sched.Schedule
	err      error
}

// NewCache returns an empty cache ready for concurrent use.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*cacheEntry)
	}
	return c
}

// CacheStats are the cache's monotonic counters. A "hit" is a request
// that found its entry already computed (or in flight); a "miss" is a
// request that triggered the computation.
type CacheStats struct {
	Hits   uint64
	Misses uint64
	// Evictions counts entries dropped because their computation was
	// abandoned by context cancellation.
	Evictions uint64
	Entries   int
}

// Stats snapshots the counters. Hits+Misses equals the number of
// getOrCompute calls that completed.
func (c *Cache) Stats() CacheStats {
	s := CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Evictions: c.evictions.Load()}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.m)
		sh.mu.Unlock()
	}
	return s
}

// keyBufPool recycles the byte buffers scenario keys are encoded into.
// On the hit path the buffer is only used for the map probe (the
// compiler elides the string conversion in m[string(b)]), so memoized
// lookups allocate nothing; the key is materialized as a string only
// when a new entry is inserted.
var keyBufPool = sync.Pool{New: func() any { return new([]byte) }}

// getOrCompute returns the memoized outcome for the pair, computing it
// at most once across all concurrent callers. fromCache reports whether
// this caller got a previously requested entry.
//
// Cancellation safety: a computation abandoned because its context was
// cancelled must not stick — otherwise one cancelled request would
// serve ctx.Err() to every future caller of the same scenario. When the
// computed outcome is a context error the entry is evicted; a waiter
// that collapsed onto a cancelled computation retries with its own
// (still live) context instead of inheriting a stranger's cancellation.
func (c *Cache) getOrCompute(ctx context.Context, pl model.Platform, apps []model.Application, h sched.Heuristic, seed uint64,
	compute func() (*sched.Schedule, error)) (s *sched.Schedule, err error, fromCache bool) {
	bp := keyBufPool.Get().(*[]byte)
	key := appendScenarioKey((*bp)[:0], pl, apps, h, seed)
	sh := &c.shards[shardOf(key)]
	for {
		sh.mu.Lock()
		ent, ok := sh.m[string(key)]
		if !ok {
			ent = &cacheEntry{}
			sh.m[string(key)] = ent
		}
		sh.mu.Unlock()

		computed := false
		ent.once.Do(func() {
			ent.schedule, ent.err = compute()
			computed = true
		})
		if ent.err != nil && isContextErr(ent.err) {
			// Evict the abandoned entry (only if the map still holds this
			// exact one — a concurrent retry may already have replaced it).
			sh.mu.Lock()
			if cur, ok := sh.m[string(key)]; ok && cur == ent {
				delete(sh.m, string(key))
				c.evictions.Add(1)
			}
			sh.mu.Unlock()
			if !computed && ctx.Err() == nil {
				// We collapsed onto someone else's cancelled computation
				// but our own context is live: compute it for real.
				continue
			}
		}
		*bp = key[:0]
		keyBufPool.Put(bp)
		if computed {
			c.misses.Add(1)
		} else {
			c.hits.Add(1)
		}
		return ent.schedule, ent.err, !computed
	}
}

// scenarioKey builds the canonical key as a string; tests use it to
// reason about collisions.
func scenarioKey(pl model.Platform, apps []model.Application, h sched.Heuristic, seed uint64) string {
	return string(appendScenarioKey(nil, pl, apps, h, seed))
}

// appendScenarioKey appends the canonical byte encoding of one
// (platform, applications, heuristic, seed) cell to b. Every numeric
// field contributes its exact bit pattern, and names are
// length-prefixed, so distinct scenarios cannot collide. The seed
// participates only for heuristics that actually consume randomness.
func appendScenarioKey(b []byte, pl model.Platform, apps []model.Application, h sched.Heuristic, seed uint64) []byte {
	if b == nil {
		n := 8 + 5*8 + 8 + 8 // heuristic + platform + seed + app count
		for _, a := range apps {
			n += 8 + len(a.Name) + 6*8
		}
		b = make([]byte, 0, n)
	}
	b = appendU64(b, uint64(h))
	if !h.Randomized() {
		seed = 0
	}
	b = appendU64(b, seed)
	b = appendF64(b, pl.Processors, pl.CacheSize, pl.LatencyS, pl.LatencyL, pl.Alpha)
	b = appendU64(b, uint64(len(apps)))
	for _, a := range apps {
		b = appendU64(b, uint64(len(a.Name)))
		b = append(b, a.Name...)
		b = appendF64(b, a.Work, a.SeqFraction, a.AccessFreq, a.Footprint, a.RefMissRate, a.RefCacheSize)
	}
	return b
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF64(b []byte, vs ...float64) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// shardOf hashes the key with FNV-1a and folds it onto a shard index.
func shardOf(key []byte) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % numShards)
}
