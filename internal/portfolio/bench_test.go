package portfolio

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/solve"
	"repro/internal/workload"
)

// npbSweepScenarios builds the benchmark workload: the paper's NPB
// fleet swept across platform sizes and sequential fractions, one full
// extended-heuristic portfolio per scenario. Memoization is disabled so
// the benchmark measures scheduling work, not cache lookups.
func npbSweepScenarios() []Scenario {
	var out []Scenario
	rng := solve.NewRNG(0x5EED)
	for _, p := range []float64{64, 128, 256} {
		for _, seqf := range []float64{0, 0.05, 0.1} {
			pl := model.TaihuLight()
			pl.Processors = p
			apps := workload.NPB()
			for i := range apps {
				apps[i].SeqFraction = seqf
			}
			out = append(out, Scenario{Platform: pl, Apps: apps, Seed: rng.Uint64()})
		}
	}
	return out
}

// BenchmarkPortfolioSweep measures the full-portfolio NPB sweep at
// several worker counts; workers=1 is the serial baseline the
// acceptance criterion (≥2× at 4+ workers) compares against. Run via
// scripts/bench.sh, which computes the speedup and checks it against
// the committed baseline.
func BenchmarkPortfolioSweep(b *testing.B) {
	scenarios := npbSweepScenarios()
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	if counts[3] <= 4 {
		counts = counts[:3]
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng := New(Config{Workers: w})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reports := eng.EvaluateBatch(scenarios)
				for _, rep := range reports {
					if rep.Err != nil {
						b.Fatal(rep.Err)
					}
					if rep.Best < 0 {
						b.Fatal("no feasible schedule")
					}
				}
			}
		})
	}
}

// BenchmarkPortfolioSweepMetrics is the instrumented twin of the
// GOMAXPROCS arm of BenchmarkPortfolioSweep: same sweep, with a live
// registry recording every series. Comparing the two pins the
// metrics-on overhead; the benchgate tolerance is the regression gate.
func BenchmarkPortfolioSweepMetrics(b *testing.B) {
	scenarios := npbSweepScenarios()
	reg := obs.NewRegistry()
	eng := New(Config{Workers: runtime.GOMAXPROCS(0), Metrics: NewMetrics(reg)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reports := eng.EvaluateBatch(scenarios)
		for _, rep := range reports {
			if rep.Err != nil {
				b.Fatal(rep.Err)
			}
			if rep.Best < 0 {
				b.Fatal("no feasible schedule")
			}
		}
	}
}

// BenchmarkPortfolioMemoized measures the same sweep served entirely
// from a warm memoization cache: the steady-state cost of re-serving
// known scenarios.
func BenchmarkPortfolioMemoized(b *testing.B) {
	scenarios := npbSweepScenarios()
	eng := New(Config{Workers: runtime.GOMAXPROCS(0), Cache: NewCache()})
	eng.EvaluateBatch(scenarios) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rep := range eng.EvaluateBatch(scenarios) {
			if rep.Err != nil {
				b.Fatal(rep.Err)
			}
		}
	}
}

// BenchmarkSelectorSweep measures the learned-selection shortcut on the
// same NPB sweep as BenchmarkPortfolioSweep, at one worker so the
// numbers compare work, not parallelism. mode=full runs the selector
// with an empty ledger (every scenario falls back to the full race —
// the selector's overhead on top of the sweep); mode=selector runs from
// a ledger trained on the sweep itself, so every scenario is served by
// the single predicted heuristic. scripts/bench.sh gates the
// selector-vs-full-race work reduction via benchgate.
func BenchmarkSelectorSweep(b *testing.B) {
	scenarios := npbSweepScenarios()
	train := NewSelector(SelectorConfig{Engine: New(Config{Workers: 1}), Learn: true})
	for _, sc := range scenarios {
		if _, err := train.Select(context.Background(), sc); err != nil {
			b.Fatal(err)
		}
	}
	for _, mode := range []string{"full", "selector"} {
		ledger := train.Ledger()
		if mode == "full" {
			ledger = nil
		}
		b.Run("mode="+mode, func(b *testing.B) {
			p := NewSelector(SelectorConfig{Engine: New(Config{Workers: 1}), Ledger: ledger})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, sc := range scenarios {
					d, err := p.Select(context.Background(), sc)
					if err != nil {
						b.Fatal(err)
					}
					if d.Report.Best < 0 {
						b.Fatal("no feasible schedule")
					}
					if mode == "selector" && !d.Predicted {
						b.Fatalf("trained ledger fell back (%s) — the benchmark would not measure the shortcut", d.FallbackReason)
					}
				}
			}
		})
	}
}
