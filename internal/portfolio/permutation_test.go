package portfolio

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/workload"
)

// TestBestSchedulePermutationInvariant: shuffling the application
// slice must not change the best makespan — every sort and tie-break
// inside the deterministic heuristics must key on values, never on
// input order. The tolerance covers summation-order ulps only.
func TestBestSchedulePermutationInvariant(t *testing.T) {
	eng := New(Config{Workers: 4})
	master := solve.NewRNG(0xBADC0DE)
	for trial := 0; trial < 20; trial++ {
		n := 2 + trial%7
		apps, err := workload.Generate(workload.Config{
			Generator: workload.Generator(trial % 3), N: n,
		}, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		pl := model.TaihuLight()
		if trial%2 == 1 {
			pl.CacheSize = 1e9 // tight cache: partition choices actually bind
		}
		base, err := eng.Evaluate(Scenario{Platform: pl, Apps: apps, Heuristics: sched.DeterministicHeuristics, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		perm := master.Perm(n)
		shuffled := make([]model.Application, n)
		for i, j := range perm {
			shuffled[i] = apps[j]
		}
		got, err := eng.Evaluate(Scenario{Platform: pl, Apps: shuffled, Heuristics: sched.DeterministicHeuristics, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}

		b, g := base.BestSchedule(), got.BestSchedule()
		if b == nil || g == nil {
			t.Fatalf("trial %d: infeasible report (base %v, got %v)", trial, b, g)
		}
		if rel := solve.RelDiff(g.Makespan, b.Makespan); rel > 1e-9 {
			t.Errorf("trial %d: best makespan %v != %v under permutation (rel %v, perm %v)",
				trial, g.Makespan, b.Makespan, rel, perm)
		}

		// Per-heuristic invariance is the stronger property that implies
		// the headline one; checking it too makes failures attributable.
		for hi, res := range base.Results {
			pres := got.Results[hi]
			if (res.Err == nil) != (pres.Err == nil) {
				t.Errorf("trial %d: %v feasibility changed under permutation", trial, res.Heuristic)
				continue
			}
			if res.Err != nil {
				continue
			}
			if rel := solve.RelDiff(pres.Schedule.Makespan, res.Schedule.Makespan); rel > 1e-9 {
				t.Errorf("trial %d: %v makespan %v != %v under permutation (rel %v)",
					trial, res.Heuristic, pres.Schedule.Makespan, res.Schedule.Makespan, rel)
			}
		}
	}
}

// TestPermutationMapsAssignments: for the reference heuristic the
// invariance is per-application, not just aggregate — application j's
// assignment must follow it to its new position bit-for-bit on
// tie-free workloads.
func TestPermutationMapsAssignments(t *testing.T) {
	rng := solve.NewRNG(42)
	apps, err := workload.Generate(workload.Config{Generator: workload.GenNPBSynth, N: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pl := model.TaihuLight()
	base, err := sched.DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(len(apps))
	shuffled := make([]model.Application, len(apps))
	for i, j := range perm {
		shuffled[i] = apps[j]
	}
	got, err := sched.DominantMinRatio.Schedule(pl, shuffled, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range perm {
		if got.Assignments[i].CacheShare != base.Assignments[j].CacheShare {
			t.Errorf("app %d->%d: cache share %v != %v", j, i,
				got.Assignments[i].CacheShare, base.Assignments[j].CacheShare)
		}
	}
}
