package portfolio

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/selector"
	"repro/internal/workload"
)

func selScenario(seed uint64) Scenario {
	return Scenario{Platform: model.TaihuLight(), Apps: workload.NPB(), Seed: seed}
}

// trainSelector races scenarios through a learning selector and returns
// the trained ledger.
func trainSelector(t testing.TB, scenarios []Scenario) *selector.Ledger {
	t.Helper()
	p := NewSelector(SelectorConfig{Engine: New(Config{Workers: 1}), Learn: true})
	for _, sc := range scenarios {
		if _, err := p.Select(context.Background(), sc); err != nil {
			t.Fatal(err)
		}
	}
	return p.Ledger()
}

func TestSelectorEmptyLedgerFallsBack(t *testing.T) {
	eng := New(Config{Workers: 2})
	p := NewSelector(SelectorConfig{Engine: eng})
	sc := selScenario(7)
	d, err := p.Select(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if d.Predicted || d.FallbackReason != "no-evidence" {
		t.Fatalf("empty ledger must fall back with no-evidence, got %+v", d)
	}
	full, err := eng.Evaluate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if d.Report.Best != full.Best ||
		d.Report.BestSchedule().Makespan != full.BestSchedule().Makespan {
		t.Fatal("fallback race differs from a plain portfolio race")
	}
	if s := p.Stats(); s.Predictions != 0 || s.Fallbacks != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// The shortcut must reproduce, bit for bit, the result the predicted
// heuristic would have had inside the full race — including the
// randomized heuristics, whose RNG substream depends on their index in
// the race.
func TestSelectorSeedCompensation(t *testing.T) {
	sc := selScenario(42)
	bucket := selector.Extract(sc.Platform, sc.Apps).Bucket()
	eng := New(Config{Workers: 1})
	full, err := eng.Evaluate(sc)
	if err != nil {
		t.Fatal(err)
	}
	for hi, h := range sched.ExtendedHeuristics {
		if full.Results[hi].Err != nil {
			continue
		}
		// A hand-built ledger that makes h the confident winner.
		l := selector.New()
		for range [3]struct{}{} {
			if err := l.Ingest(selector.RaceRecord{Bucket: bucket, Heuristic: h.String(), Win: true, Margin: 1}); err != nil {
				t.Fatal(err)
			}
		}
		p := NewSelector(SelectorConfig{Engine: eng, Ledger: l})
		d, err := p.Select(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Predicted || d.Prediction.Heuristic != h {
			t.Fatalf("%v: expected a confident prediction, got %+v", h, d)
		}
		got, want := d.Report.BestSchedule(), full.Results[hi].Schedule
		if got.Makespan != want.Makespan {
			t.Fatalf("%v: shortcut makespan %v != full-race %v", h, got.Makespan, want.Makespan)
		}
		for i := range want.Assignments {
			if got.Assignments[i] != want.Assignments[i] {
				t.Fatalf("%v: assignment %d differs: %+v vs %+v", h, i, got.Assignments[i], want.Assignments[i])
			}
		}
	}
}

// Selection is a pure function of (ledger, scenario): any worker count
// serves the same heuristic and the same bits.
func TestSelectorWorkerCountInvariance(t *testing.T) {
	scenarios := []Scenario{selScenario(1), selScenario(2), selScenario(3)}
	ledger := trainSelector(t, scenarios)
	type outcome struct {
		predicted bool
		h         sched.Heuristic
		mk        float64
	}
	runs := map[int][]outcome{}
	for _, w := range []int{1, 8} {
		p := NewSelector(SelectorConfig{Engine: New(Config{Workers: w}), Ledger: ledger})
		for _, sc := range scenarios {
			d, err := p.Select(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			o := outcome{predicted: d.Predicted}
			if br := d.Report.BestResult(); br != nil {
				o.h, o.mk = br.Heuristic, br.Schedule.Makespan
			}
			runs[w] = append(runs[w], o)
		}
	}
	for i := range scenarios {
		if runs[1][i] != runs[8][i] {
			t.Fatalf("scenario %d: workers=1 %+v vs workers=8 %+v", i, runs[1][i], runs[8][i])
		}
	}
}

// After training on a scenario's own bucket the selector must shortcut
// it, and the audited gap of the shortcut must be exactly 1 when the
// prediction matches the race winner.
func TestSelectorLearnsAndAudits(t *testing.T) {
	scenarios := []Scenario{selScenario(1), selScenario(2), selScenario(3), selScenario(4)}
	ledger := trainSelector(t, scenarios)
	reg := obs.NewRegistry()
	p := NewSelector(SelectorConfig{
		Engine:  New(Config{Workers: 2}),
		Ledger:  ledger,
		Audit:   true,
		Metrics: NewSelectorMetrics(reg),
	})
	predicted := 0
	for _, sc := range scenarios {
		d, err := p.Select(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Predicted {
			continue
		}
		predicted++
		if d.Full == nil || math.IsNaN(d.Gap) {
			t.Fatalf("audit mode must measure the gap, got %+v", d)
		}
		if d.Gap < 1-1e-12 {
			t.Fatalf("gap %v below 1: shortcut beat the full race it mirrors", d.Gap)
		}
		if d.Prediction.Heuristic == d.Full.BestResult().Heuristic && d.Gap != 1 {
			t.Fatalf("prediction matches the winner but gap = %v", d.Gap)
		}
	}
	if predicted == 0 {
		t.Fatal("trained ledger never predicted its own training scenarios")
	}
	if s := p.Stats(); int(s.Predictions) != predicted {
		t.Fatalf("stats %+v vs %d predicted", s, predicted)
	}
}

func TestSelectorMetricsCount(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewSelector(SelectorConfig{Engine: New(Config{Workers: 1}), Metrics: NewSelectorMetrics(reg)})
	if _, err := p.Select(context.Background(), selScenario(9)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `selector_fallbacks_total{reason="no-evidence"} 1`) {
		t.Fatalf("fallback counter missing from exposition:\n%s", sb.String())
	}
}
