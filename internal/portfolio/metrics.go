package portfolio

import (
	"repro/internal/obs"
)

// Metrics is the portfolio engine's instrumentation bundle. Construct
// one with NewMetrics and hand it to Config.Metrics; a nil *Metrics
// (the zero value of the field, or NewMetrics(nil)) disables every
// observation at the cost of one nil check per site — the engine's
// hot path stays allocation-free and bit-identical either way.
//
// Metric catalog:
//
//	portfolio_batches_total        counter    EvaluateBatch calls
//	portfolio_scenarios_total      counter    scenarios raced
//	portfolio_evals_total          counter    (scenario, heuristic) evaluations
//	portfolio_race_seconds         histogram  wall time of one batch race
//	portfolio_eval_seconds         histogram  wall time of one heuristic evaluation
//	portfolio_queue_depth          gauge      tasks admitted but not yet resolved
//	portfolio_wins_total{heuristic} counter   per-heuristic race wins
//	portfolio_cache_hits_total     counter    memo cache hits (when caching)
//	portfolio_cache_misses_total   counter    memo cache misses
//	portfolio_cache_evictions_total counter   cancellation-evicted entries
//	portfolio_cache_entries        gauge      live memo entries
type Metrics struct {
	batches     *obs.Counter
	scenarios   *obs.Counter
	evals       *obs.Counter
	raceSeconds *obs.Histogram
	evalSeconds *obs.Histogram
	queueDepth  *obs.Gauge
	wins        *obs.CounterVec
	reg         *obs.Registry
}

// evalBuckets spans sub-microsecond memo hits to multi-second oracle
// races: 1µs·4^i for 10 buckets (≈1µs … 0.26s) plus +Inf.
func evalBuckets() []float64 { return obs.ExpBuckets(1e-6, 4, 10) }

// NewMetrics registers the portfolio metric family on reg and returns
// the handle bundle, or nil when reg is nil (metrics disabled).
// Registration is idempotent: engines sharing a registry share series.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		batches:     reg.Counter("portfolio_batches_total", "EvaluateBatch calls"),
		scenarios:   reg.Counter("portfolio_scenarios_total", "Scenarios raced"),
		evals:       reg.Counter("portfolio_evals_total", "Heuristic evaluations (incl. cache hits)"),
		raceSeconds: reg.Histogram("portfolio_race_seconds", "Wall time of one batch race", evalBuckets()),
		evalSeconds: reg.Histogram("portfolio_eval_seconds", "Wall time of one heuristic evaluation", evalBuckets()),
		queueDepth:  reg.Gauge("portfolio_queue_depth", "Evaluations admitted but not yet resolved"),
		wins:        reg.CounterVec("portfolio_wins_total", "Race wins per heuristic", "heuristic"),
		reg:         reg,
	}
}

// bindCache exports the cache's own monotonic counters as func metrics
// — reads happen at scrape time, so the cache hot path pays nothing.
func (m *Metrics) bindCache(c *Cache) {
	if m == nil || c == nil {
		return
	}
	m.reg.CounterFunc("portfolio_cache_hits_total", "Memo cache hits",
		func() float64 { return float64(c.hits.Load()) })
	m.reg.CounterFunc("portfolio_cache_misses_total", "Memo cache misses",
		func() float64 { return float64(c.misses.Load()) })
	m.reg.CounterFunc("portfolio_cache_evictions_total", "Cancellation-evicted memo entries",
		func() float64 { return float64(c.evictions.Load()) })
	m.reg.GaugeFunc("portfolio_cache_entries", "Live memo entries",
		func() float64 { return float64(c.Stats().Entries) })
}
