package portfolio

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/workload"
)

// testScenarios builds a varied set of scenarios: the paper's NPB
// workload plus randomized fleets across platform shapes and sizes.
func testScenarios(t testing.TB, n int) []Scenario {
	t.Helper()
	master := solve.NewRNG(0xC0FFEE)
	out := make([]Scenario, 0, n)
	out = append(out, Scenario{Platform: model.TaihuLight(), Apps: workload.NPB(), Seed: 1})
	gens := []workload.Generator{workload.GenNPBSynth, workload.GenRandom, workload.GenNPB6}
	sizes := []int{2, 6, 16, 48}
	for len(out) < n {
		i := len(out)
		pl := model.TaihuLight()
		pl.Processors = float64(16 * (int(1) << (i % 5)))
		if i%3 == 1 {
			pl.CacheSize = 1e9 // tight cache: heuristics actually disagree
		}
		seed := master.Uint64()
		apps, err := workload.Generate(workload.Config{
			Generator: gens[i%len(gens)], N: sizes[i%len(sizes)],
		}, solve.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, Scenario{Platform: pl, Apps: apps, Seed: seed})
	}
	return out
}

// TestPortfolioProperties checks the engine's core contract on a varied
// scenario set: the winner is never worse than any individual heuristic,
// every returned schedule passes validation, and the report covers the
// full heuristic set in order.
func TestPortfolioProperties(t *testing.T) {
	eng := New(Config{Workers: 8, Cache: NewCache()})
	scenarios := testScenarios(t, 12)
	reports := eng.EvaluateBatch(scenarios)
	for si, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("scenario %d: %v", si, rep.Err)
		}
		if len(rep.Results) != len(sched.ExtendedHeuristics) {
			t.Fatalf("scenario %d: %d results for %d heuristics", si, len(rep.Results), len(sched.ExtendedHeuristics))
		}
		best := rep.BestResult()
		if best == nil {
			t.Fatalf("scenario %d: no feasible schedule", si)
		}
		for hi, res := range rep.Results {
			if res.Heuristic != sched.ExtendedHeuristics[hi] {
				t.Fatalf("scenario %d: result %d is %v, want %v", si, hi, res.Heuristic, sched.ExtendedHeuristics[hi])
			}
			if res.Err != nil {
				t.Fatalf("scenario %d: %v failed: %v", si, res.Heuristic, res.Err)
			}
			if err := res.Schedule.Validate(scenarios[si].Platform, scenarios[si].Apps); err != nil {
				t.Errorf("scenario %d: %v schedule invalid: %v", si, res.Heuristic, err)
			}
			if best.Schedule.Makespan > res.Schedule.Makespan {
				t.Errorf("scenario %d: best makespan %v worse than %v's %v",
					si, best.Schedule.Makespan, res.Heuristic, res.Schedule.Makespan)
			}
		}
	}
}

// TestConcurrentMatchesSerial checks determinism bit-for-bit: a
// single-worker engine and a wide engine produce identical schedules
// for identical scenarios, regardless of cache configuration.
func TestConcurrentMatchesSerial(t *testing.T) {
	scenarios := testScenarios(t, 10)
	serial := New(Config{Workers: 1}).EvaluateBatch(scenarios)
	for _, cache := range []*Cache{nil, NewCache()} {
		wide := New(Config{Workers: 16, Cache: cache}).EvaluateBatch(scenarios)
		for si := range scenarios {
			a, b := serial[si], wide[si]
			if a.Best != b.Best {
				t.Fatalf("scenario %d: best %d (serial) vs %d (concurrent)", si, a.Best, b.Best)
			}
			for hi := range a.Results {
				sa, sb := a.Results[hi].Schedule, b.Results[hi].Schedule
				if sa.Makespan != sb.Makespan || sa.Sequential != sb.Sequential {
					t.Fatalf("scenario %d %v: makespan %v (serial) vs %v (concurrent)",
						si, a.Results[hi].Heuristic, sa.Makespan, sb.Makespan)
				}
				for i := range sa.Assignments {
					if sa.Assignments[i] != sb.Assignments[i] {
						t.Fatalf("scenario %d %v app %d: %+v vs %+v",
							si, a.Results[hi].Heuristic, i, sa.Assignments[i], sb.Assignments[i])
					}
				}
			}
		}
	}
}

// TestEvaluateMatchesDirectSchedule pins the engine's RNG substream
// rule: heuristic i must see exactly the stream seed^(i+1)·stride the
// serial experiment loops always used.
func TestEvaluateMatchesDirectSchedule(t *testing.T) {
	pl := model.TaihuLight()
	apps, err := workload.Generate(workload.Config{Generator: workload.GenNPBSynth, N: 12}, solve.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	const seed = 0xABCDE
	rep, err := New(Config{Workers: 4}).Evaluate(Scenario{Platform: pl, Apps: apps, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for hi, h := range sched.ExtendedHeuristics {
		rng := solve.NewRNG(seed ^ uint64(hi+1)*seedStride)
		want, err := h.Schedule(pl, apps, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.Results[hi].Schedule.Makespan; got != want.Makespan {
			t.Errorf("%v: portfolio makespan %v, direct %v", h, got, want.Makespan)
		}
	}
}

// TestInvalidScenario checks that scenario-level validation failures are
// reported per scenario without poisoning the batch.
func TestInvalidScenario(t *testing.T) {
	good := Scenario{Platform: model.TaihuLight(), Apps: workload.NPB(), Seed: 3}
	bad := Scenario{Platform: model.Platform{}, Apps: workload.NPB()}
	empty := Scenario{Platform: model.TaihuLight()}
	reports := New(Config{}).EvaluateBatch([]Scenario{good, bad, empty})
	if reports[0].Err != nil || reports[0].BestResult() == nil {
		t.Fatalf("good scenario failed: %v", reports[0].Err)
	}
	for i, rep := range reports[1:] {
		if rep.Err == nil {
			t.Fatalf("invalid scenario %d accepted", i+1)
		}
		if rep.BestResult() != nil || rep.BestSchedule() != nil {
			t.Fatalf("invalid scenario %d has a best result", i+1)
		}
	}
	if _, err := New(Config{}).Evaluate(bad); err == nil {
		t.Fatal("Evaluate accepted an invalid scenario")
	}
}

// TestBestTieBreak pins deterministic tie-breaking: with a restricted
// heuristic list containing the same policy twice, the earlier index
// must win.
func TestBestTieBreak(t *testing.T) {
	sc := Scenario{
		Platform:   model.TaihuLight(),
		Apps:       workload.NPB(),
		Heuristics: []sched.Heuristic{sched.ZeroCache, sched.ZeroCache},
		Seed:       1,
	}
	rep, err := New(Config{Workers: 4}).Evaluate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best != 0 {
		t.Fatalf("tie broken toward index %d, want 0", rep.Best)
	}
}

// TestRestrictedHeuristics checks that an explicit heuristic list is
// honored in order.
func TestRestrictedHeuristics(t *testing.T) {
	hs := []sched.Heuristic{sched.Fair, sched.DominantMinRatio}
	rep, err := New(Config{}).Evaluate(Scenario{
		Platform: model.TaihuLight(), Apps: workload.NPB(), Heuristics: hs, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 || rep.Results[0].Heuristic != sched.Fair || rep.Results[1].Heuristic != sched.DominantMinRatio {
		t.Fatalf("unexpected results: %+v", rep.Results)
	}
	if rep.BestResult().Heuristic != sched.DominantMinRatio {
		t.Fatalf("best is %v, want DominantMinRatio", rep.BestResult().Heuristic)
	}
}

// TestCacheMemoization checks hit/miss accounting, the FromCache flag,
// and that deterministic heuristics hit across different seeds while
// randomized ones do not.
func TestCacheMemoization(t *testing.T) {
	cache := NewCache()
	eng := New(Config{Workers: 4, Cache: cache})
	sc := Scenario{Platform: model.TaihuLight(), Apps: workload.NPB(), Seed: 11}

	rep1, err := eng.Evaluate(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep1.Results {
		if r.FromCache {
			t.Fatalf("%v served from cache on first evaluation", r.Heuristic)
		}
	}
	st := cache.Stats()
	if st.Misses != uint64(len(rep1.Results)) || st.Hits != 0 {
		t.Fatalf("after first run: %+v", st)
	}

	rep2, err := eng.Evaluate(sc)
	if err != nil {
		t.Fatal(err)
	}
	for hi, r := range rep2.Results {
		if !r.FromCache {
			t.Fatalf("%v not served from cache on identical rerun", r.Heuristic)
		}
		if r.Schedule != rep1.Results[hi].Schedule {
			t.Fatalf("%v: cache returned a different schedule pointer", r.Heuristic)
		}
	}

	// A different seed changes only the randomized heuristics' keys.
	sc.Seed = 12
	rep3, err := eng.Evaluate(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep3.Results {
		if r.Heuristic.Randomized() == r.FromCache {
			t.Errorf("%v (randomized=%v) fromCache=%v after seed change",
				r.Heuristic, r.Heuristic.Randomized(), r.FromCache)
		}
	}
	st = cache.Stats()
	if st.Hits+st.Misses != 3*uint64(len(rep1.Results)) {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 3*len(rep1.Results))
	}
}

// TestScenarioKeyDistinguishes checks that every field of the scenario
// reaches the canonical key.
func TestScenarioKeyDistinguishes(t *testing.T) {
	pl := model.TaihuLight()
	apps := workload.NPB()
	base := scenarioKey(pl, apps, sched.DominantMinRatio, 1)

	mutations := []func() string{
		func() string { p := pl; p.Processors++; return scenarioKey(p, apps, sched.DominantMinRatio, 1) },
		func() string { p := pl; p.CacheSize++; return scenarioKey(p, apps, sched.DominantMinRatio, 1) },
		func() string { p := pl; p.LatencyS += 0.1; return scenarioKey(p, apps, sched.DominantMinRatio, 1) },
		func() string { p := pl; p.LatencyL += 0.1; return scenarioKey(p, apps, sched.DominantMinRatio, 1) },
		func() string { p := pl; p.Alpha += 0.1; return scenarioKey(p, apps, sched.DominantMinRatio, 1) },
		func() string { return scenarioKey(pl, apps[:5], sched.DominantMinRatio, 1) },
		func() string { return scenarioKey(pl, apps, sched.Fair, 1) },
		func() string {
			mod := append([]model.Application{}, apps...)
			mod[0].Work *= 2
			return scenarioKey(pl, mod, sched.DominantMinRatio, 1)
		},
		func() string {
			mod := append([]model.Application{}, apps...)
			mod[0].Name = "XX"
			return scenarioKey(pl, mod, sched.DominantMinRatio, 1)
		},
	}
	for i, m := range mutations {
		if m() == base {
			t.Errorf("mutation %d does not change the scenario key", i)
		}
	}
	// Seed must NOT differentiate deterministic heuristics, and must
	// differentiate randomized ones.
	if scenarioKey(pl, apps, sched.DominantMinRatio, 2) != base {
		t.Error("seed leaked into a deterministic heuristic's key")
	}
	if scenarioKey(pl, apps, sched.RandomPart, 1) == scenarioKey(pl, apps, sched.RandomPart, 2) {
		t.Error("seed missing from a randomized heuristic's key")
	}
}

// TestWorkersDefault checks pool sizing.
func TestWorkersDefault(t *testing.T) {
	if w := New(Config{}).Workers(); w < 1 {
		t.Fatalf("default worker count %d", w)
	}
	if w := New(Config{Workers: 3}).Workers(); w != 3 {
		t.Fatalf("worker count %d, want 3", w)
	}
	if New(Config{}).CacheStats() != (CacheStats{}) {
		t.Fatal("cacheless engine reports cache stats")
	}
}

// TestNaNMakespanNeverBest guards best-selection against NaN poisoning:
// a NaN makespan must not be selected over a finite one.
func TestNaNMakespanNeverBest(t *testing.T) {
	r := Report{Results: []Result{
		{Heuristic: sched.Fair, Schedule: &sched.Schedule{Makespan: math.NaN()}},
		{Heuristic: sched.ZeroCache, Schedule: &sched.Schedule{Makespan: 1}},
	}}
	r.pickBest()
	if r.Best != 1 {
		t.Fatalf("best = %d, want 1 (the finite makespan)", r.Best)
	}
}
