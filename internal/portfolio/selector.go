package portfolio

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/selector"
)

// SelectorPolicy races the heuristic a trained ledger predicts to win
// and falls back to the full portfolio race when the prediction is not
// confident. The selection itself — which heuristic, from which
// bucket, under which thresholds — is a pure function of (ledger,
// scenario), so it is bit-deterministic at any worker count; only the
// amount of work saved varies with how much the ledger has seen.
//
// The shortcut preserves the engine's determinism contract: the single
// predicted run draws the exact RNG substream the same heuristic would
// have drawn inside the full race (see the seed derivation in Select),
// so its schedule — and any memo cache entry it creates — is
// bit-identical to the full race's result for that heuristic.
type SelectorPolicy struct {
	engine *Engine
	th     selector.Thresholds
	learn  bool
	audit  bool
	m      *SelectorMetrics

	mu     sync.RWMutex // guards ledger: Predict under RLock, Observe under Lock
	ledger *selector.Ledger

	predictions atomic.Uint64
	fallbacks   atomic.Uint64
}

// SelectorConfig parameterizes NewSelector.
type SelectorConfig struct {
	// Engine runs the races. Required.
	Engine *Engine
	// Ledger supplies predictions. Nil means an empty ledger: every
	// scenario falls back to the full race (and trains the ledger when
	// Learn is set).
	Ledger *selector.Ledger
	// Thresholds gates when a prediction skips the race. The zero value
	// means selector.DefaultThresholds().
	Thresholds selector.Thresholds
	// Learn feeds fallback race outcomes back into the ledger. Off by
	// default: a serving policy should select from a committed fixture,
	// not drift with traffic. Training runs (cmd/ledger) turn it on.
	Learn bool
	// Audit additionally runs the full race after every shortcut and
	// records the realized optimality gap — the conform harness's
	// measurement mode. It spends the work the shortcut saved, so it is
	// for verification, never serving.
	Audit bool
	// Metrics instruments the policy (see NewSelectorMetrics). Nil
	// disables observation.
	Metrics *SelectorMetrics
}

// NewSelector builds a SelectorPolicy.
func NewSelector(cfg SelectorConfig) *SelectorPolicy {
	l := cfg.Ledger
	if l == nil {
		l = selector.New()
	}
	th := cfg.Thresholds
	if th == (selector.Thresholds{}) {
		th = selector.DefaultThresholds()
	}
	return &SelectorPolicy{
		engine: cfg.Engine,
		ledger: l,
		th:     th,
		learn:  cfg.Learn,
		audit:  cfg.Audit,
		m:      cfg.Metrics,
	}
}

// Decision is the outcome of one selected scenario.
type Decision struct {
	// Report is what was served: a single-result report when the
	// prediction was followed, the full race otherwise.
	Report *Report
	// Predicted reports whether the shortcut was taken.
	Predicted bool
	// Prediction is the ledger's call (zero when the bucket had no
	// evidence).
	Prediction selector.Prediction
	// FallbackReason is "" when Predicted, else one of "no-evidence",
	// "unconfident", "infeasible" (the predicted run failed and the
	// full race answered instead).
	FallbackReason string
	// Gap is the audited optimality gap: the served makespan over the
	// full race's best. 1 when the prediction matched the race winner;
	// NaN when not audited or when no feasible baseline exists.
	Gap float64
	// Full is the audit race (nil unless Audit was configured and the
	// shortcut was taken).
	Full *Report
}

// Stats are the policy's lifetime counters.
type SelectorStats struct {
	Predictions uint64 // scenarios served via the predicted-winner shortcut
	Fallbacks   uint64 // scenarios that ran the full race
}

// Stats returns the policy's counters.
func (p *SelectorPolicy) Stats() SelectorStats {
	return SelectorStats{Predictions: p.predictions.Load(), Fallbacks: p.fallbacks.Load()}
}

// Ledger returns the policy's ledger (live: Learn mutates it).
func (p *SelectorPolicy) Ledger() *selector.Ledger { return p.ledger }

// Select evaluates one scenario through the selector: predicted winner
// first, full race on doubt. The Decision's Report is never nil when
// err is nil.
func (p *SelectorPolicy) Select(ctx context.Context, sc Scenario) (*Decision, error) {
	candidates := sc.heuristics()
	bucket := selector.Extract(sc.Platform, sc.Apps).Bucket()
	p.mu.RLock()
	pred, ok := p.ledger.Predict(bucket, candidates)
	p.mu.RUnlock()
	d := &Decision{Prediction: pred, Gap: math.NaN()}
	switch {
	case !ok:
		d.FallbackReason = "no-evidence"
	case !pred.Confident(p.th):
		d.FallbackReason = "unconfident"
	default:
		rep, err := p.evalPredicted(ctx, sc, candidates, pred.Heuristic)
		if err != nil {
			return nil, err
		}
		if rep.Best >= 0 {
			d.Report = rep
			d.Predicted = true
			p.predictions.Add(1)
			if p.m != nil {
				p.m.predictions.Inc()
			}
			return p.audited(ctx, sc, d)
		}
		// The predicted heuristic was infeasible on this scenario —
		// rare (the bucket's evidence said otherwise) but recoverable:
		// the full race is the answer either way.
		d.FallbackReason = "infeasible"
	}
	rep, err := p.engine.EvaluateContext(ctx, sc)
	if err != nil {
		return nil, err
	}
	d.Report = rep
	p.fallbacks.Add(1)
	if p.m != nil {
		p.m.fallbacks.With(d.FallbackReason).Inc()
	}
	if p.learn && rep.Err == nil {
		p.observe(bucket, rep)
	}
	return d, nil
}

// evalPredicted races only the predicted winner, on the RNG substream
// it would have drawn at its index inside the full race: the engine
// seeds heuristic 0 of a scenario with Seed ^ seedStride, so shifting
// the scenario seed by HeuristicSeed(sc.Seed, hi) ^ seedStride makes
// the lone run reproduce HeuristicSeed(sc.Seed, hi) exactly — and
// share memo cache entries with the full race.
func (p *SelectorPolicy) evalPredicted(ctx context.Context, sc Scenario, candidates []sched.Heuristic, h sched.Heuristic) (*Report, error) {
	hi := 0
	for i, c := range candidates {
		if c == h {
			hi = i
			break
		}
	}
	one := sc
	one.Heuristics = []sched.Heuristic{h}
	one.Seed = HeuristicSeed(sc.Seed, hi) ^ seedStride
	return p.engine.EvaluateContext(ctx, one)
}

// audited runs the full race behind a taken shortcut and measures the
// realized gap.
func (p *SelectorPolicy) audited(ctx context.Context, sc Scenario, d *Decision) (*Decision, error) {
	if !p.audit {
		return d, nil
	}
	full, err := p.engine.EvaluateContext(ctx, sc)
	if err != nil {
		return nil, err
	}
	d.Full = full
	if br, sel := full.BestResult(), d.Report.BestResult(); br != nil && sel != nil && br.Schedule.Makespan > 0 {
		d.Gap = sel.Schedule.Makespan / br.Schedule.Makespan
		if p.m != nil {
			p.m.regret.Observe(d.Gap - 1)
		}
	}
	return d, nil
}

// observe folds a finished full race into the ledger.
func (p *SelectorPolicy) observe(bucket string, rep *Report) {
	outs := make([]selector.Outcome, len(rep.Results))
	for i, r := range rep.Results {
		outs[i] = selector.Outcome{
			Heuristic: r.Heuristic,
			OK:        r.Err == nil && r.Schedule != nil,
		}
		if outs[i].OK {
			outs[i].Makespan = r.Schedule.Makespan
		}
	}
	p.mu.Lock()
	p.ledger.Observe(bucket, outs)
	p.mu.Unlock()
}

// SelectorMetrics instruments a SelectorPolicy.
//
// Metric catalog:
//
//	selector_predictions_total         counter    scenarios served via the shortcut
//	selector_fallbacks_total{reason}   counter    full races, by fallback reason
//	selector_regret                    histogram  audited gap - 1 per shortcut
type SelectorMetrics struct {
	predictions *obs.Counter
	fallbacks   *obs.CounterVec
	regret      *obs.Histogram
}

// NewSelectorMetrics registers the selector metric family on reg, or
// returns nil when reg is nil (metrics disabled).
func NewSelectorMetrics(reg *obs.Registry) *SelectorMetrics {
	if reg == nil {
		return nil
	}
	return &SelectorMetrics{
		predictions: reg.Counter("selector_predictions_total", "Scenarios served via the predicted-winner shortcut"),
		fallbacks:   reg.CounterVec("selector_fallbacks_total", "Full portfolio races run by the selector", "reason"),
		regret:      reg.Histogram("selector_regret", "Audited optimality gap minus one per shortcut", obs.ExpBuckets(1e-6, 10, 8)),
	}
}
