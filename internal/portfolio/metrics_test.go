package portfolio

import (
	"context"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestMetricsDoNotPerturbResults races the same scenarios with metrics
// off and on (serial and parallel) and requires bit-identical reports —
// the non-perturbation contract the conform goldens gate end to end.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	scenarios := []Scenario{
		{Platform: model.TaihuLight(), Apps: workload.NPB(), Seed: 42},
		{Platform: model.TaihuLight(), Apps: workload.NPB()[:4], Seed: 7},
	}
	plain := New(Config{Workers: 1}).EvaluateBatch(append([]Scenario(nil), scenarios...))
	for _, workers := range []int{1, 8} {
		reg := obs.NewRegistry()
		eng := New(Config{Workers: workers, Metrics: NewMetrics(reg)})
		got := eng.EvaluateBatch(append([]Scenario(nil), scenarios...))
		for si := range plain {
			if plain[si].Best != got[si].Best {
				t.Errorf("workers=%d scenario %d: Best %d != %d", workers, si, got[si].Best, plain[si].Best)
			}
			for hi := range plain[si].Results {
				a, b := plain[si].Results[hi], got[si].Results[hi]
				if (a.Schedule == nil) != (b.Schedule == nil) {
					t.Fatalf("workers=%d scenario %d heuristic %d: schedule presence differs", workers, si, hi)
				}
				if a.Schedule != nil && a.Schedule.Makespan != b.Schedule.Makespan {
					t.Errorf("workers=%d scenario %d heuristic %d: makespan %v != %v",
						workers, si, hi, b.Schedule.Makespan, a.Schedule.Makespan)
				}
			}
		}
	}
}

// TestMetricsCounts checks the bookkeeping invariants: evals = scenarios
// × heuristics, queue depth returns to zero, one win per feasible
// scenario, and the cache func metrics surface hits after a warm run.
func TestMetricsCounts(t *testing.T) {
	reg := obs.NewRegistry()
	cache := NewCache()
	eng := New(Config{Workers: 4, Cache: cache, Metrics: NewMetrics(reg)})
	scenarios := []Scenario{
		{Platform: model.TaihuLight(), Apps: workload.NPB(), Seed: 1},
		{Platform: model.TaihuLight(), Apps: workload.NPB(), Seed: 1}, // dup: warms the memo
	}
	reports := eng.EvaluateBatch(scenarios)

	wantEvals := uint64(2 * len(sched.ExtendedHeuristics))
	byName := map[string]float64{}
	var wins float64
	for _, s := range reg.Snapshot() {
		if s.Name == "portfolio_wins_total" {
			wins += s.Value
			continue
		}
		byName[s.Name] = s.Value
	}
	if got := byName["portfolio_evals_total"]; got != float64(wantEvals) {
		t.Errorf("portfolio_evals_total = %v, want %d", got, wantEvals)
	}
	if got := byName["portfolio_scenarios_total"]; got != 2 {
		t.Errorf("portfolio_scenarios_total = %v, want 2", got)
	}
	if got := byName["portfolio_batches_total"]; got != 1 {
		t.Errorf("portfolio_batches_total = %v, want 1", got)
	}
	if got := byName["portfolio_queue_depth"]; got != 0 {
		t.Errorf("portfolio_queue_depth = %v after batch, want 0", got)
	}
	if got := byName["portfolio_race_seconds"]; got != 1 {
		t.Errorf("portfolio_race_seconds count = %v, want 1", got)
	}
	if got := byName["portfolio_eval_seconds"]; got != float64(wantEvals) {
		t.Errorf("portfolio_eval_seconds count = %v, want %d", got, wantEvals)
	}
	feasible := 0
	for _, rep := range reports {
		if rep.Best >= 0 {
			feasible++
		}
	}
	if wins != float64(feasible) {
		t.Errorf("portfolio_wins_total sum = %v, want %d", wins, feasible)
	}
	if byName["portfolio_cache_hits_total"] == 0 {
		t.Error("portfolio_cache_hits_total = 0 after a duplicated scenario")
	}
	if byName["portfolio_cache_misses_total"] == 0 {
		t.Error("portfolio_cache_misses_total = 0")
	}

	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if errs := obs.LintProm(strings.NewReader(sb.String())); len(errs) != 0 {
		t.Errorf("portfolio exposition fails lint: %v", errs)
	}
}

// TestQueueDepthZeroAfterCancel verifies the admission gauge also
// drains through the cancellation back-fill path.
func TestQueueDepthZeroAfterCancel(t *testing.T) {
	reg := obs.NewRegistry()
	eng := New(Config{Workers: 2, Metrics: NewMetrics(reg)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // every task lands in the back-fill pass
	if _, err := eng.EvaluateBatchContext(ctx, []Scenario{
		{Platform: model.TaihuLight(), Apps: workload.NPB(), Seed: 3},
	}); err == nil {
		t.Fatal("expected a context error")
	}
	for _, s := range reg.Snapshot() {
		if s.Name == "portfolio_queue_depth" && s.Value != 0 {
			t.Errorf("portfolio_queue_depth = %v after cancelled batch, want 0", s.Value)
		}
	}
}

// TestDisabledMetricsZeroAlloc pins the tentpole's overhead claim: with
// Config.Metrics nil, the warm portfolio sweep allocates exactly what
// it allocated before instrumentation existed — the nil checks add no
// boxing, no closures, no clock reads. CI runs this as the
// disabled-metrics overhead gate.
func TestDisabledMetricsZeroAlloc(t *testing.T) {
	cache := NewCache()
	eng := New(Config{Workers: 1, Cache: cache})
	pl := model.TaihuLight()
	apps := workload.NPB()
	compute := func() (*sched.Schedule, error) {
		return sched.DominantMinRatio.Schedule(pl, apps, nil)
	}
	ctx := context.Background()
	if _, err, _ := cache.getOrCompute(ctx, pl, apps, sched.DominantMinRatio, 0, compute); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(200, func() {
		s, err, fromCache := cache.getOrCompute(ctx, pl, apps, sched.DominantMinRatio, 0, compute)
		if err != nil || s == nil || !fromCache {
			t.Fatal("expected a cache hit")
		}
	})
	if n != 0 {
		t.Errorf("disabled-metrics cache hit allocates %g times, want 0", n)
	}
	if _, err := eng.Evaluate(Scenario{Platform: pl, Apps: apps, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(100, func() {
		rep, err := eng.Evaluate(Scenario{Platform: pl, Apps: apps, Seed: 42})
		if err != nil || rep.Best < 0 {
			t.Fatal("evaluation failed")
		}
	})
	if warm > 16 {
		t.Errorf("disabled-metrics warm Evaluate allocates %g times, budget 16 (same as pre-instrumentation)", warm)
	}
}
