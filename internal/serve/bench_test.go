package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	repro "repro"
	"repro/internal/obs"
)

// BenchmarkServeSchedule measures one /v1/schedule request through the
// full handler stack — admission, decode, portfolio race, response
// encoding — with metrics on, the production configuration. The cache
// is warm after the first iteration, so this is the steady-state
// serving cost the RPS gate budgets against.
func BenchmarkServeSchedule(b *testing.B) {
	reg := obs.NewRegistry()
	s := New(Config{
		Client:   repro.NewClient(repro.WithMetrics(reg)),
		Registry: reg,
	})
	body := `{"apps": [
		{"name": "CG", "work": 5.7e10, "seq": 0.05, "freq": 0.535, "missRate": 6.59e-4, "refCache": 4e7},
		{"name": "FT", "work": 7.9e10, "seq": 0.02, "freq": 0.590, "missRate": 3.26e-4, "refCache": 4e7},
		{"name": "LU", "work": 9.3e10, "seq": 0.01, "freq": 0.525, "missRate": 4.85e-4, "refCache": 4e7}
	]}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/schedule", strings.NewReader(body))
		req.Header.Set(TenantHeader, "bench")
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}
