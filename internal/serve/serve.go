// Package serve implements the scheduling-as-a-service front door: an
// HTTP (JSON/NDJSON) surface over the v2 client, used by cmd/coschedd.
//
// Endpoints:
//
//	POST /v1/schedule        one scenario in, the winning co-schedule out;
//	                         {"selector": true} opts into learned
//	                         predicted-winner-first selection when the
//	                         service's client is armed with a ledger
//	                         (repro.WithSelector, coschedd -selector)
//	POST /v1/evaluate        one scenario in, the full portfolio report out
//	POST /v1/evaluate-batch  scenario stream in (JSON array or NDJSON),
//	                         one NDJSON report line per scenario, in
//	                         input order, streamed in bounded memory
//	POST /v1/simulate        a des scenario spec in, the run summary out
//	POST /v1/simulate-fleet  a fleet scenario spec in (N nodes + routing
//	                         policy), the fleet-wide summary out
//	GET  /healthz            liveness
//
// Every other path falls through to the obs debug surface (/metrics,
// /debug/pprof/*, /debug/vars) of the configured registry.
//
// Admission is a counting semaphore in the spirit of the DES
// MaxResident bound: at most MaxInflight requests hold a slot at once,
// the rest are shed immediately with 429 and a Retry-After hint rather
// than queueing without bound. A batch request holds one slot for its
// whole stream — it is one tenant workload, however long.
//
// Seeds are per-tenant: the X-Tenant request header is hashed into the
// service's base seed (see TenantSeed), and a scenario that does not
// pin its own seed inherits that value, so one tenant's identical
// requests are bit-identical while two tenants' randomized heuristics
// draw from distinct streams.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	repro "repro"
	"repro/internal/des"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// TenantHeader names the request header carrying the tenant identity.
const TenantHeader = "X-Tenant"

// Config configures a Server. The zero value of every field is usable.
type Config struct {
	// Client computes; a nil Client gets a default repro.NewClient().
	Client *repro.Client
	// Registry receives the service metrics (admission counters,
	// latency histograms); nil disables metrics export, admission
	// counters still run for the drain summary.
	Registry *obs.Registry
	// MaxInflight bounds concurrently admitted requests; <= 0 means 64.
	MaxInflight int
	// RetryAfter is the hint sent with a 429; <= 0 means one second.
	RetryAfter time.Duration
	// BaseSeed is the service seed tenant seeds are derived from.
	BaseSeed uint64
}

// Server is the HTTP front door. It implements http.Handler and is
// safe for concurrent use.
type Server struct {
	client     *repro.Client
	mux        *http.ServeMux
	sem        chan struct{}
	retryAfter time.Duration
	baseSeed   uint64

	// Admission accounting is always on (the drain summary needs it);
	// the registry handles below are nil-safe no-ops when unset.
	admitted atomic.Uint64
	shed     atomic.Uint64
	inflight atomic.Int64

	requests *obs.CounterVec
	schedLat *obs.Histogram
	reqLat   *obs.Histogram
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Client == nil {
		cfg.Client = repro.NewClient()
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{
		client:     cfg.Client,
		sem:        make(chan struct{}, cfg.MaxInflight),
		retryAfter: cfg.RetryAfter,
		baseSeed:   cfg.BaseSeed,
	}
	if reg := cfg.Registry; reg != nil {
		reg.GaugeFunc("coschedd_inflight", "Admitted requests currently in flight.",
			func() float64 { return float64(s.inflight.Load()) })
		reg.CounterFunc("coschedd_admitted_total", "Requests admitted past the inflight bound.",
			func() float64 { return float64(s.admitted.Load()) })
		reg.CounterFunc("coschedd_shed_total", "Requests shed with 429 at the inflight bound.",
			func() float64 { return float64(s.shed.Load()) })
		s.requests = reg.CounterVec("coschedd_requests_total", "Requests served, by endpoint.", "endpoint")
		lat := obs.ExpBuckets(1e-4, 2, 16) // 100µs .. ~3.3s
		s.schedLat = reg.Histogram("coschedd_schedule_latency_seconds", "Scheduling compute latency.", lat)
		s.reqLat = reg.Histogram("coschedd_request_latency_seconds", "Whole-request latency, by admission.", lat)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", s.admitted1(s.handleSchedule))
	mux.HandleFunc("POST /v1/evaluate", s.admitted1(s.handleEvaluate))
	mux.HandleFunc("POST /v1/evaluate-batch", s.admitted1(s.handleEvaluateBatch))
	mux.HandleFunc("POST /v1/simulate", s.admitted1(s.handleSimulate))
	mux.HandleFunc("POST /v1/simulate-fleet", s.admitted1(s.handleSimulateFleet))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/", obs.Handler(cfg.Registry))
	s.mux = mux
	return s
}

// ServeHTTP dispatches to the API or the debug surface.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Admitted and Shed report the admission totals, for the drain summary.
func (s *Server) Admitted() uint64 { return s.admitted.Load() }
func (s *Server) Shed() uint64     { return s.shed.Load() }

// admitted1 wraps an API handler with semaphore admission: acquire a
// slot or shed with 429 + Retry-After, and observe whole-request
// latency while a slot is held.
func (s *Server) admitted1(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.shed.Add(1)
			s.requests.With("shed").Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int((s.retryAfter+time.Second-1)/time.Second)))
			writeError(w, http.StatusTooManyRequests, errors.New("server saturated: all inflight slots busy"))
			return
		}
		s.admitted.Add(1)
		s.inflight.Add(1)
		s.requests.With(r.URL.Path).Inc()
		var start time.Time
		if s.reqLat != nil {
			start = time.Now()
		}
		defer func() {
			if s.reqLat != nil {
				s.reqLat.Observe(time.Since(start).Seconds())
			}
			s.inflight.Add(-1)
			<-s.sem
		}()
		h(w, r)
	}
}

// defaults resolves the request's tenant into scenario defaults.
func (s *Server) defaults(r *http.Request) Defaults {
	return Defaults{
		Platform: repro.TaihuLight(),
		Seed:     TenantSeed(s.baseSeed, r.Header.Get(TenantHeader)),
	}
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var sj ScenarioWire
	if err := decodeOne(r, &sj); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sc, err := sj.Scenario(s.defaults(r))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var rep *repro.PortfolioReport
	var selw *SelectorWire
	if sj.Selector {
		// Opt-in learned selection: predicted winner first, full race on
		// doubt. On a client without a trained ledger every request falls
		// back — the response then matches the plain path bit for bit,
		// modulo the selector stanza.
		d, err := s.selectOne(r, sc)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		rep = d.Report
		selw = &SelectorWire{Predicted: d.Predicted, Fallback: d.FallbackReason}
		if d.Predicted {
			selw.Races, selw.Wins = d.Prediction.Races, d.Prediction.Wins
		}
	} else if rep, err = s.evaluate(r, sc); err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	best := rep.BestResult()
	if best == nil {
		writeError(w, http.StatusUnprocessableEntity, repro.ErrInfeasible)
		return
	}
	out := ScheduleOf(sc, best)
	out.Selector = selw
	writeJSON(w, out)
}

// selectOne runs one scenario through the client's selector, timing the
// compute section like evaluate.
func (s *Server) selectOne(r *http.Request, sc repro.PortfolioScenario) (*repro.SelectorDecision, error) {
	var start time.Time
	if s.schedLat != nil {
		start = time.Now()
	}
	d, err := s.client.Select(r.Context(), sc)
	if s.schedLat != nil {
		s.schedLat.Observe(time.Since(start).Seconds())
	}
	return d, err
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var sj ScenarioWire
	if err := decodeOne(r, &sj); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sc, err := sj.Scenario(s.defaults(r))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rep, err := s.evaluate(r, sc)
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, ReportOf(rep))
}

// evaluate runs one scenario, timing the compute section.
func (s *Server) evaluate(r *http.Request, sc repro.PortfolioScenario) (*repro.PortfolioReport, error) {
	var start time.Time
	if s.schedLat != nil {
		start = time.Now()
	}
	rep, err := s.client.Evaluate(r.Context(), sc)
	if s.schedLat != nil {
		s.schedLat.Observe(time.Since(start).Seconds())
	}
	return rep, err
}

// handleEvaluateBatch streams the request body through the client's
// bounded-window batch evaluator: one NDJSON report line per scenario,
// flushed as it completes, so arbitrarily long batches are served in
// bounded memory end to end. Errors after the first byte has been
// written surface as a final {"error": ...} line — the stream is
// already committed to 200 by then.
func (s *Server) handleEvaluateBatch(w http.ResponseWriter, r *http.Request) {
	// Reports must interleave with request-body reads on one
	// connection: without full duplex the server drains the entire
	// remaining body before releasing the first response byte, which
	// both defeats bounded memory and deadlocks a client that waits
	// for early reports before sending more scenarios.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	d := s.defaults(r)

	var decodeErr error
	scenarios := func(yield func(repro.PortfolioScenario) bool) {
		decodeErr = DecodeScenarios(r.Body, "request body", d, yield)
	}
	err := s.client.EvaluateBatch(r.Context(), scenarios, func(br repro.BatchResult) error {
		if err := enc.Encode(ReportOf(br.Report)); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err == nil {
		err = decodeErr
	}
	if err != nil {
		// Headers are gone; append a terminal error line instead.
		_ = enc.Encode(ReportWire{Error: err.Error()})
	}
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	sp, err := des.DecodeSpec(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if sp.Seed == 0 {
		sp.Seed = TenantSeed(s.baseSeed, r.Header.Get(TenantHeader))
	}
	sc, err := sp.BuildWith(s.client.Engine(), s.client.Workers())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var start time.Time
	if s.schedLat != nil {
		start = time.Now()
	}
	res, err := s.client.SimulateOnline(r.Context(), sc)
	if s.schedLat != nil {
		s.schedLat.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, SummaryOf(sc, res))
}

// handleSimulateFleet mirrors handleSimulate for multi-node fleet
// scenarios: decode the fleet spec, default the seed from the tenant,
// share the client's worker pool with every "portfolio" node policy,
// and return the fleet-wide summary.
func (s *Server) handleSimulateFleet(w http.ResponseWriter, r *http.Request) {
	sp, err := fleet.DecodeSpec(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if sp.Seed == 0 {
		sp.Seed = TenantSeed(s.baseSeed, r.Header.Get(TenantHeader))
	}
	sc, err := sp.BuildWith(s.client.Engine(), s.client.Workers())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var start time.Time
	if s.schedLat != nil {
		start = time.Now()
	}
	res, err := s.client.SimulateFleet(r.Context(), sc)
	if s.schedLat != nil {
		s.schedLat.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, FleetSummaryOf(sc, res))
}

// decodeOne reads exactly one JSON document from the request body.
func decodeOne(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("parsing request body: %w", err)
	}
	return nil
}

// statusOf maps evaluation errors to HTTP statuses: validation
// failures are the caller's fault, cancellation means the caller went
// away, anything else is ours.
func statusOf(err error) int {
	var verr *repro.ValidationError
	switch {
	case errors.As(err, &verr):
		return http.StatusBadRequest
	case errors.Is(err, repro.ErrInfeasible):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

type errorWire struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorWire{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
