package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	repro "repro"
	"repro/internal/obs"
	"repro/internal/selector"
)

// twoApps is a small scenario body reused across the suite. RandomPart
// is seed-sensitive, so tenant-seed derivation is visible in the
// response bytes.
const twoApps = `{"apps": [
	{"name": "CG", "work": 5.7e10, "seq": 0.05, "freq": 0.535, "missRate": 6.59e-4, "refCache": 4e7},
	{"name": "FT", "work": 7.9e10, "seq": 0.02, "freq": 0.590, "missRate": 3.26e-4, "refCache": 4e7},
	{"name": "LU", "work": 9.3e10, "seq": 0.01, "freq": 0.525, "missRate": 4.85e-4, "refCache": 4e7}
]}`

func randomPartBody(t *testing.T) string {
	t.Helper()
	var sj ScenarioWire
	if err := json.Unmarshal([]byte(twoApps), &sj); err != nil {
		t.Fatal(err)
	}
	sj.Heuristics = []string{"RandomPart"}
	b, err := json.Marshal(sj)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, tenant, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func TestScheduleEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/schedule", "", twoApps)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sw ScheduleWire
	if err := json.Unmarshal([]byte(body), &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Heuristic == "" || sw.Makespan <= 0 || len(sw.Assignments) != 3 {
		t.Fatalf("implausible schedule: %+v", sw)
	}
	var procs float64
	for _, a := range sw.Assignments {
		procs += a.Processors
	}
	if procs <= 0 {
		t.Errorf("no processors assigned: %+v", sw.Assignments)
	}
}

func TestEvaluateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/evaluate", "", twoApps)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rw ReportWire
	if err := json.Unmarshal([]byte(body), &rw); err != nil {
		t.Fatal(err)
	}
	if rw.Best == "" || len(rw.Results) < 10 {
		t.Fatalf("implausible report: %+v", rw)
	}
	if strings.Contains(body, "fromCache") {
		t.Error("service response leaks cache provenance")
	}
}

func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := `{"arrivals": {"process": "poisson", "rate": 2e-9, "n": 6}, "policy": "DominantMinRatio", "maxResident": 3, "seed": 11}`
	resp, body := post(t, ts.URL+"/v1/simulate", "", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sw SummaryWire
	if err := json.Unmarshal([]byte(body), &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Jobs != 6 || sw.Makespan <= 0 || sw.Policy == "" {
		t.Fatalf("implausible summary: %+v", sw)
	}
}

// TestSimulateFleetEndpoint drives a two-node fleet through the fleet
// endpoint and checks the aggregate is consistent with the per-node
// breakdown, and that identical (tenant, body) pairs get bit-identical
// responses.
func TestSimulateFleetEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := `{"nodes": [{"name": "a"}, {"name": "b", "policy": "Fair"}],
		"routing": "power-of-two-choices",
		"arrivals": {"process": "poisson", "rate": 2e-9, "n": 6}, "seed": 11}`
	resp, body := post(t, ts.URL+"/v1/simulate-fleet", "", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var fw FleetSummaryWire
	if err := json.Unmarshal([]byte(body), &fw); err != nil {
		t.Fatal(err)
	}
	if fw.Routing != "power-of-two-choices" || fw.Jobs != 6 || fw.Makespan <= 0 {
		t.Fatalf("implausible fleet summary: %+v", fw)
	}
	if len(fw.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2: %+v", len(fw.Nodes), fw)
	}
	routed := 0
	for _, n := range fw.Nodes {
		routed += n.Jobs
	}
	if routed != fw.Jobs {
		t.Errorf("per-node jobs sum to %d, fleet reports %d", routed, fw.Jobs)
	}

	// Same tenant, same body: bit-identical bytes. The spec above pins
	// its seed, so strip it and let the tenant header drive the draw.
	open := strings.Replace(spec, `, "seed": 11`, "", 1)
	_, first := post(t, ts.URL+"/v1/simulate-fleet", "acme", open)
	if _, again := post(t, ts.URL+"/v1/simulate-fleet", "acme", open); again != first {
		t.Errorf("tenant fleet response drifted:\n%s\nvs\n%s", first, again)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		path, body string
		status     int
	}{
		{"/v1/schedule", "{not json", http.StatusBadRequest},
		{"/v1/schedule", `{"apps": [], "heuristics": ["Bogus"]}`, http.StatusBadRequest},
		{"/v1/schedule", `{"apps": [{"name": "X", "work": -1}]}`, http.StatusBadRequest},
		{"/v1/evaluate", `{"apps": [{"name": "X", "work": -1}]}`, http.StatusBadRequest},
		{"/v1/simulate", `{"arrivals": {"process": "warp"}}`, http.StatusBadRequest},
		{"/v1/simulate-fleet", `{"routing": "warp"}`, http.StatusBadRequest},
		{"/v1/simulate-fleet", `{"nodes": [], "bogus": 1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := post(t, ts.URL+tc.path, "", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s %q: status %d want %d (%s)", tc.path, tc.body, resp.StatusCode, tc.status, body)
		}
		var ew errorWire
		if err := json.Unmarshal([]byte(body), &ew); err != nil || ew.Error == "" {
			t.Errorf("%s: error body not {error: ...}: %q", tc.path, body)
		}
	}
	// Wrong method falls through to the debug surface, which has no
	// such path: the API is POST-only.
	resp, err := http.Get(ts.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/schedule = %d, want 404", resp.StatusCode)
	}
}

// TestAdmission429 fills every inflight slot, then checks the next
// request is shed with 429 + Retry-After instead of queueing, and that
// the slot accounting recovers.
func TestAdmission429(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 2, RetryAfter: 3 * time.Second})
	// Occupy both slots directly — deterministic, no racing handlers.
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}

	resp, body := post(t, ts.URL+"/v1/schedule", "", twoApps)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status %d: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	if srv.Shed() != 1 {
		t.Errorf("shed = %d, want 1", srv.Shed())
	}

	// Freeing the slots readmits.
	<-srv.sem
	<-srv.sem
	resp, body = post(t, ts.URL+"/v1/schedule", "", twoApps)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain status %d: %s", resp.StatusCode, body)
	}
	if srv.Admitted() != 1 {
		t.Errorf("admitted = %d, want 1", srv.Admitted())
	}
	// healthz and metrics bypass admission even when saturated.
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}
	for _, p := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s under saturation = %d, want 200", p, resp.StatusCode)
		}
	}
}

// TestEvaluateBatchStreams drives both accepted input forms through
// the batch endpoint and checks one report line per scenario, in input
// order. The array and NDJSON forms must produce identical output.
func TestEvaluateBatchStreams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var sj ScenarioWire
	if err := json.Unmarshal([]byte(twoApps), &sj); err != nil {
		t.Fatal(err)
	}
	const n = 5
	var ndjson, array strings.Builder
	array.WriteString("[")
	for i := 0; i < n; i++ {
		sj.Heuristics = []string{"DominantMinRatio", "Fair"}
		seed := uint64(i)
		sj.Seed = &seed
		b, err := json.Marshal(sj)
		if err != nil {
			t.Fatal(err)
		}
		ndjson.Write(b)
		ndjson.WriteString("\n")
		if i > 0 {
			array.WriteString(",")
		}
		array.Write(b)
	}
	array.WriteString("]")

	var outputs []string
	for form, in := range map[string]string{"ndjson": ndjson.String(), "array": array.String()} {
		resp, body := post(t, ts.URL+"/v1/evaluate-batch", "", in)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", form, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("%s: Content-Type = %q", form, ct)
		}
		lines := strings.Split(strings.TrimSpace(body), "\n")
		if len(lines) != n {
			t.Fatalf("%s: got %d report lines, want %d:\n%s", form, len(lines), n, body)
		}
		for i, line := range lines {
			var rw ReportWire
			if err := json.Unmarshal([]byte(line), &rw); err != nil {
				t.Fatalf("%s line %d: %v", form, i, err)
			}
			if rw.Error != "" || len(rw.Results) != 2 {
				t.Errorf("%s line %d: %+v", form, i, rw)
			}
		}
		outputs = append(outputs, body)
	}
	if outputs[0] != outputs[1] {
		t.Error("array and NDJSON forms produced different report streams")
	}

	// A decode error mid-stream appends a terminal error line after the
	// reports already streamed.
	in := ndjson.String() + "{broken\n"
	resp, body := post(t, ts.URL+"/v1/evaluate-batch", "", in)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-stream error status %d", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	var last ReportWire
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Error == "" {
		t.Errorf("terminal line carries no error: %q", lines[len(lines)-1])
	}
}

// TestTenantSeedDeterminism: same tenant + same body ⇒ bit-identical
// response bytes, across repeats and cache states; an explicit seed in
// the body overrides the tenant derivation entirely.
func TestTenantSeedDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Config{BaseSeed: 42})
	body := randomPartBody(t)

	_, first := post(t, ts.URL+"/v1/evaluate", "acme", body)
	for i := 0; i < 3; i++ {
		if _, again := post(t, ts.URL+"/v1/evaluate", "acme", body); again != first {
			t.Fatalf("tenant acme response drifted on repeat %d:\n%s\nvs\n%s", i, first, again)
		}
	}

	// TenantSeed is an injective-enough mix: distinct tenants get
	// distinct seeds (exact equality of responses is then up to the
	// heuristics, which we do not assert).
	if TenantSeed(42, "acme") == TenantSeed(42, "globex") {
		t.Error("distinct tenants derived the same seed")
	}
	if TenantSeed(42, "") != 42 {
		t.Error("empty tenant must keep the base seed")
	}

	// An explicit body seed wins over the tenant header: two tenants
	// pinning the same seed see identical bytes.
	pinned := strings.Replace(body, `{"apps"`, `{"seed": 7, "apps"`, 1)
	_, a := post(t, ts.URL+"/v1/evaluate", "acme", pinned)
	_, b := post(t, ts.URL+"/v1/evaluate", "globex", pinned)
	if a != b {
		t.Errorf("explicit seed did not override tenant derivation:\n%s\nvs\n%s", a, b)
	}
}

// TestDrainCompletesInFlight boots the server on the shared
// obs.ServeHandler lifecycle (exactly how coschedd mounts it), parks a
// batch request mid-stream, drains, and checks the request completes
// with every report intact — the SIGTERM contract: stop accepting,
// finish in-flight.
func TestDrainCompletesInFlight(t *testing.T) {
	s := New(Config{})
	ls, err := obs.ServeHandler("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}

	pr, pw := io.Pipe()
	type result struct {
		lines []string
		err   error
	}
	got := make(chan result, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, "http://"+ls.Addr()+"/v1/evaluate-batch", pr)
		if err != nil {
			got <- result{err: err}
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var lines []string
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		got <- result{lines: lines, err: sc.Err()}
	}()

	scenario := strings.ReplaceAll(twoApps, "\n", " ") + "\n"
	if _, err := io.WriteString(pw, scenario); err != nil {
		t.Fatal(err)
	}
	// The request is now in flight (body held open). Start the drain;
	// it must wait for us, not abort the stream.
	closed := make(chan error, 1)
	go func() { closed <- ls.CloseTimeout(10 * time.Second) }()
	select {
	case err := <-closed:
		t.Fatalf("drain returned (%v) with the batch still streaming", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Feed a second scenario and finish the request mid-drain.
	if _, err := io.WriteString(pw, scenario); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	if err := <-closed; err != nil {
		t.Errorf("drain = %v", err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight batch aborted by drain: %v", r.err)
	}
	if len(r.lines) != 2 {
		t.Fatalf("lost report lines across the drain: got %d, want 2:\n%s", len(r.lines), strings.Join(r.lines, "\n"))
	}
	for i, line := range r.lines {
		var rw ReportWire
		if err := json.Unmarshal([]byte(line), &rw); err != nil || rw.Error != "" {
			t.Errorf("line %d after drain: %q (%v)", i, line, err)
		}
	}
	// And the listener is gone.
	if _, err := http.Get("http://" + ls.Addr() + "/healthz"); err == nil {
		t.Error("drained listener accepted a new request")
	}
}

// TestMetricsEndpointLints scrapes a live server — after traffic, with
// an exotic label value registered — and runs the exposition through
// LintProm: the %q-escaping regression would fail exactly here.
func TestMetricsEndpointLints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.CounterVec("exotic_serve_total", "lint must survive this", "k").
		With("tab\there \"q\" back\\slash\nnl").Inc()
	_, ts := newTestServer(t, Config{Registry: reg})

	if resp, body := post(t, ts.URL+"/v1/schedule", "t1", twoApps); resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(body)
	if errs := obs.LintProm(strings.NewReader(exposition)); len(errs) != 0 {
		t.Errorf("live exposition fails lint: %v\n%s", errs, exposition)
	}
	for _, want := range []string{
		"coschedd_inflight 0",
		"coschedd_admitted_total 1",
		"coschedd_shed_total 0",
		`coschedd_requests_total{endpoint="/v1/schedule"} 1`,
		"coschedd_schedule_latency_seconds_count 1",
		"coschedd_request_latency_seconds_count 1",
		"exotic_serve_total",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestBatchBoundedMemory streams a batch far larger than the client's
// window and checks the server never materializes it: the response
// must arrive incrementally (first line long before the last scenario
// is even sent).
func TestBatchBoundedMemory(t *testing.T) {
	s := New(Config{Client: repro.NewClient(repro.WithWorkers(2), repro.WithCache(false))})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/evaluate-batch", pr)
	if err != nil {
		t.Fatal(err)
	}
	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errc <- err
			return
		}
		respc <- resp
	}()

	scenario := fmt.Sprintf(`{"apps": %s, "heuristics": ["Fair"]}`, `[{"name": "CG", "work": 5.7e10, "seq": 0.05, "freq": 0.535, "missRate": 6.59e-4, "refCache": 4e7}]`)
	// Send a handful of scenarios, then demand the first report while
	// the body is still open: a server buffering the whole request
	// would block here forever.
	for i := 0; i < 8; i++ {
		if _, err := io.WriteString(pw, scenario+"\n"); err != nil {
			t.Fatal(err)
		}
	}
	var resp *http.Response
	select {
	case resp = <-respc:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("no response headers while the request body is open")
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("first streamed line: %v", err)
	}
	var rw ReportWire
	if err := json.Unmarshal([]byte(line), &rw); err != nil || rw.Best == "" {
		t.Fatalf("first line %q (%v)", line, err)
	}
	// Now finish the stream and count the rest.
	for i := 0; i < 8; i++ {
		if _, err := io.WriteString(pw, scenario+"\n"); err != nil {
			t.Fatal(err)
		}
	}
	pw.Close()
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(string(rest)), "\n")); got != 15 {
		t.Errorf("remaining lines = %d, want 15", got)
	}
}

// TestScheduleSelectorOptIn: {"selector": true} on /v1/schedule is
// honored on an unarmed service (full-race fallback, explicit reason)
// and served by the prediction on a service armed with a trained
// ledger — with the same winning schedule either way.
func TestScheduleSelectorOptIn(t *testing.T) {
	optIn := strings.Replace(twoApps, `{"apps":`, `{"selector": true, "apps":`, 1)

	_, plain := newTestServer(t, Config{})
	resp, base := post(t, plain.URL+"/v1/schedule", "", twoApps)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, base)
	}
	var want ScheduleWire
	if err := json.Unmarshal([]byte(base), &want); err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, plain.URL+"/v1/schedule", "", optIn)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unarmed opt-in status %d: %s", resp.StatusCode, body)
	}
	var sw ScheduleWire
	if err := json.Unmarshal([]byte(body), &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Selector == nil || sw.Selector.Predicted || sw.Selector.Fallback != "no-evidence" {
		t.Fatalf("unarmed opt-in selector = %+v, want no-evidence fallback", sw.Selector)
	}
	if sw.Heuristic != want.Heuristic || sw.Makespan != want.Makespan {
		t.Fatalf("unarmed opt-in served %s/%g, plain served %s/%g",
			sw.Heuristic, sw.Makespan, want.Heuristic, want.Makespan)
	}

	// Train the scenario's bucket so the plain winner is the confident
	// call, and arm a service with it.
	var sj ScenarioWire
	if err := json.Unmarshal([]byte(twoApps), &sj); err != nil {
		t.Fatal(err)
	}
	sc, err := sj.Scenario(Defaults{Platform: repro.TaihuLight()})
	if err != nil {
		t.Fatal(err)
	}
	led := repro.NewSelectorLedger()
	bucket := repro.ExtractFeatures(sc.Platform, sc.Apps).Bucket()
	for range [3]struct{}{} {
		if err := led.Ingest(selector.RaceRecord{Bucket: bucket, Heuristic: want.Heuristic, Win: true, Margin: 1}); err != nil {
			t.Fatal(err)
		}
	}
	_, armed := newTestServer(t, Config{
		Client: repro.NewClient(repro.WithSelector(led, repro.SelectorThresholds{})),
	})
	resp, body = post(t, armed.URL+"/v1/schedule", "", optIn)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("armed opt-in status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Selector == nil || !sw.Selector.Predicted || sw.Selector.Races != 3 || sw.Selector.Wins != 3 {
		t.Fatalf("armed opt-in selector = %+v, want predicted with 3/3 evidence", sw.Selector)
	}
	if sw.Heuristic != want.Heuristic || sw.Makespan != want.Makespan {
		t.Fatalf("prediction served %s/%g, full race serves %s/%g",
			sw.Heuristic, sw.Makespan, want.Heuristic, want.Makespan)
	}

	// Without the flag an armed service races in full: no stanza.
	resp, body = post(t, armed.URL+"/v1/schedule", "", twoApps)
	if resp.StatusCode != http.StatusOK || strings.Contains(body, `"selector"`) {
		t.Fatalf("plain request on armed service leaked a selector stanza: %s", body)
	}
}
