package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	repro "repro"
	"repro/internal/des"
	"repro/internal/model"
	"repro/internal/sched"
)

// ScenarioWire is the JSON wire form of one portfolio scenario, shared
// by the service endpoints and cosched's -batch mode: platform and
// seed are optional (the caller's defaults fill them in), heuristics
// default to the full extended set.
type ScenarioWire struct {
	Platform   *des.PlatformSpec `json:"platform,omitempty"`
	Apps       []des.AppSpec     `json:"apps"`
	Heuristics []string          `json:"heuristics,omitempty"`
	Seed       *uint64           `json:"seed,omitempty"`
	// Selector opts a /v1/schedule request into predicted-winner-first
	// selection: the service serves the heuristic its trained ledger
	// predicts and races the full portfolio only on doubt. On a service
	// without a ledger the flag is honored but every request falls back
	// to the full race (the safe default). Ignored by the other
	// endpoints, whose point is the full report.
	Selector bool `json:"selector,omitempty"`
}

// Defaults supplies the values a ScenarioWire may omit.
type Defaults struct {
	Platform model.Platform
	Seed     uint64
}

// Scenario resolves the wire form against the defaults. Heuristic
// names are parsed here so a typo is a decode-time error, not a
// silently empty race.
func (sj ScenarioWire) Scenario(d Defaults) (repro.PortfolioScenario, error) {
	sc := repro.PortfolioScenario{Platform: d.Platform, Seed: d.Seed}
	if sj.Platform != nil {
		sc.Platform = sj.Platform.Platform()
	}
	if sj.Seed != nil {
		sc.Seed = *sj.Seed
	}
	for _, a := range sj.Apps {
		sc.Apps = append(sc.Apps, a.Application())
	}
	for _, name := range sj.Heuristics {
		h, err := sched.ParseHeuristic(name)
		if err != nil {
			return sc, err
		}
		sc.Heuristics = append(sc.Heuristics, h)
	}
	return sc, nil
}

// DecodeScenarios parses a scenario stream — a JSON array of
// ScenarioWire objects, or a bare NDJSON/whitespace-separated sequence
// of them — invoking emit for each scenario as it is decoded; emit
// returning false stops the stream early (consumer gone). name labels
// errors ("request body", a file path). Decoding is incremental, so
// arbitrarily long streams are consumed in bounded memory.
func DecodeScenarios(r io.Reader, name string, d Defaults, emit func(repro.PortfolioScenario) bool) error {
	br := bufio.NewReader(r)
	array := false
	for {
		b, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("parsing %s: %w", name, err)
		}
		if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
			continue
		}
		array = b == '['
		if err := br.UnreadByte(); err != nil {
			return err
		}
		break
	}
	dec := json.NewDecoder(br)
	if array {
		if _, err := dec.Token(); err != nil { // consume '['
			return fmt.Errorf("parsing %s: %w", name, err)
		}
	}
	for n := 0; ; n++ {
		if array && !dec.More() {
			if _, err := dec.Token(); err != nil { // consume ']'
				return fmt.Errorf("parsing %s: %w", name, err)
			}
			switch tok, err := dec.Token(); {
			case err == io.EOF:
			case err != nil:
				return fmt.Errorf("parsing %s: trailing data after the scenario array: %v", name, err)
			default:
				return fmt.Errorf("parsing %s: trailing data after the scenario array (%v)", name, tok)
			}
			return nil
		}
		var sj ScenarioWire
		if err := dec.Decode(&sj); err != nil {
			if !array && err == io.EOF {
				return nil
			}
			return fmt.Errorf("parsing %s scenario %d: %w", name, n, err)
		}
		sc, err := sj.Scenario(d)
		if err != nil {
			return fmt.Errorf("%s scenario %d: %w", name, n, err)
		}
		if !emit(sc) {
			return nil
		}
	}
}

// ResultWire is one heuristic's outcome on the wire. Unlike cosched's
// batch report it carries no cache-provenance bit: responses must be
// byte-identical for identical (tenant, body) pairs whether or not the
// memo cache had the entry.
type ResultWire struct {
	Heuristic string  `json:"heuristic"`
	Makespan  float64 `json:"makespan,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// ReportWire is a full portfolio report on the wire.
type ReportWire struct {
	Best     string       `json:"best,omitempty"`
	Makespan float64      `json:"makespan,omitempty"`
	Results  []ResultWire `json:"results,omitempty"`
	Error    string       `json:"error,omitempty"`
}

// ReportOf converts an engine report to its wire form.
func ReportOf(rep *repro.PortfolioReport) ReportWire {
	if rep.Err != nil {
		return ReportWire{Error: rep.Err.Error()}
	}
	rj := ReportWire{}
	if best := rep.BestResult(); best != nil {
		rj.Best = best.Heuristic.String()
		rj.Makespan = best.Schedule.Makespan
	}
	for _, r := range rep.Results {
		res := ResultWire{Heuristic: r.Heuristic.String()}
		if r.Err != nil {
			res.Error = r.Err.Error()
		} else {
			res.Makespan = r.Schedule.Makespan
		}
		rj.Results = append(rj.Results, res)
	}
	return rj
}

// AssignmentWire is one application's resources in a schedule response.
type AssignmentWire struct {
	Name       string  `json:"name"`
	Processors float64 `json:"processors"`
	CacheShare float64 `json:"cacheShare"`
	Finish     float64 `json:"finish"`
}

// SelectorWire reports how a selector-opted /v1/schedule request was
// served: by the ledger's prediction, or by a full race and why.
type SelectorWire struct {
	Predicted bool   `json:"predicted"`
	Fallback  string `json:"fallback,omitempty"` // "no-evidence" | "unconfident" | "infeasible"
	Races     int    `json:"races,omitempty"`    // prediction evidence: races entered ...
	Wins      int    `json:"wins,omitempty"`     // ... and won by the served heuristic
}

// ScheduleWire is the /v1/schedule response: the winning heuristic and
// its complete co-schedule. Selector is present only on requests that
// opted into learned selection.
type ScheduleWire struct {
	Heuristic   string           `json:"heuristic"`
	Makespan    float64          `json:"makespan"`
	Assignments []AssignmentWire `json:"assignments"`
	Selector    *SelectorWire    `json:"selector,omitempty"`
}

// ScheduleOf renders the winning result of a race against the scenario
// it solved.
func ScheduleOf(sc repro.PortfolioScenario, best *repro.PortfolioResult) ScheduleWire {
	s := best.Schedule
	out := ScheduleWire{Heuristic: best.Heuristic.String(), Makespan: s.Makespan}
	ft := s.FinishTimes(sc.Platform, sc.Apps)
	for i, a := range sc.Apps {
		out.Assignments = append(out.Assignments, AssignmentWire{
			Name:       a.Name,
			Processors: s.Assignments[i].Processors,
			CacheShare: s.Assignments[i].CacheShare,
			Finish:     ft[i],
		})
	}
	return out
}

// SummaryWire is the /v1/simulate response: the same summary dessim
// prints as its final NDJSON line.
type SummaryWire struct {
	Policy        string          `json:"policy"`
	Arrivals      string          `json:"arrivals"`
	Jobs          int             `json:"jobs"`
	Truncated     int             `json:"truncated,omitempty"`
	Makespan      float64         `json:"makespan"`
	Utilization   float64         `json:"utilization"`
	CacheOccupied float64         `json:"meanCacheOccupancy"`
	MeanQueue     float64         `json:"meanQueueLength"`
	MaxQueue      int             `json:"maxQueueLength"`
	Repartitions  int             `json:"repartitions"`
	MeanWait      float64         `json:"meanWait"`
	MaxWait       float64         `json:"maxWait"`
	MeanResponse  float64         `json:"meanResponse"`
	MaxResponse   float64         `json:"maxResponse"`
	MeanStretch   float64         `json:"meanStretch"`
	MaxStretch    float64         `json:"maxStretch"`
	Replan        des.ReplanStats `json:"replan"`
}

// SummaryOf condenses a finished online run.
func SummaryOf(sc des.Scenario, res *des.Result) SummaryWire {
	return SummaryWire{
		Policy:        sc.Policy.Name(),
		Arrivals:      sc.Arrivals.Name(),
		Jobs:          len(res.Jobs),
		Truncated:     res.Truncated,
		Replan:        res.Replan,
		Makespan:      res.Makespan,
		Utilization:   res.Utilization(sc.Platform),
		CacheOccupied: res.MeanCacheOccupancy(),
		MeanQueue:     res.MeanQueueLength(),
		MaxQueue:      res.MaxQueue,
		Repartitions:  res.Repartitions,
		MeanWait:      res.Wait.Mean,
		MaxWait:       res.Wait.Max,
		MeanResponse:  res.Response.Mean,
		MaxResponse:   res.Response.Max,
		MeanStretch:   res.Stretch.Mean,
		MaxStretch:    res.Stretch.Max,
	}
}

// FleetNodeWire is one node's outcome in a fleet response.
type FleetNodeWire struct {
	Name         string  `json:"name"`
	Jobs         int     `json:"jobs"`
	Makespan     float64 `json:"makespan"`
	Utilization  float64 `json:"utilization"`
	Repartitions int     `json:"repartitions"`
}

// FleetSummaryWire is the /v1/simulate-fleet response: the fleet-wide
// aggregate plus one entry per node — the same summary dessim -fleet
// prints as its final NDJSON lines.
type FleetSummaryWire struct {
	Routing      string          `json:"routing"`
	Arrivals     string          `json:"arrivals"`
	Nodes        []FleetNodeWire `json:"nodes"`
	Jobs         int             `json:"jobs"`
	Truncated    int             `json:"truncated,omitempty"`
	Makespan     float64         `json:"makespan"`
	Utilization  float64         `json:"utilization"`
	MeanWait     float64         `json:"meanWait"`
	MaxWait      float64         `json:"maxWait"`
	MeanResponse float64         `json:"meanResponse"`
	MaxResponse  float64         `json:"maxResponse"`
	MeanStretch  float64         `json:"meanStretch"`
	MaxStretch   float64         `json:"maxStretch"`
	Replan       des.ReplanStats `json:"replan"`
}

// FleetSummaryOf condenses a finished fleet run.
func FleetSummaryOf(sc repro.FleetScenario, res *repro.FleetResult) FleetSummaryWire {
	out := FleetSummaryWire{
		Routing:   res.Routing,
		Arrivals:  sc.Arrivals.Name(),
		Jobs:      res.Jobs,
		Truncated: res.Truncated,
		Makespan:  res.Makespan,
		MeanWait:  res.Wait.Mean, MaxWait: res.Wait.Max,
		MeanResponse: res.Response.Mean, MaxResponse: res.Response.Max,
		MeanStretch: res.Stretch.Mean, MaxStretch: res.Stretch.Max,
	}
	totalProcs := 0.0
	for i := range res.Nodes {
		totalProcs += sc.Nodes[i].Platform.Processors
		out.Replan.Add(res.Nodes[i].Result.Replan)
		out.Nodes = append(out.Nodes, FleetNodeWire{
			Name:         res.Nodes[i].Name,
			Jobs:         res.Nodes[i].Jobs,
			Makespan:     res.Nodes[i].Result.Makespan,
			Utilization:  res.Nodes[i].Result.Utilization(sc.Nodes[i].Platform),
			Repartitions: res.Nodes[i].Result.Repartitions,
		})
	}
	out.Utilization = res.Utilization(totalProcs)
	return out
}

// TenantSeed derives the effective base seed for one tenant: the
// service seed XOR an FNV-1a hash of the tenant name. Deterministic and
// stateless, so identical (tenant, body) requests produce bit-identical
// responses across replicas; an empty tenant keeps the service seed.
func TenantSeed(base uint64, tenant string) uint64 {
	if tenant == "" {
		return base
	}
	h := fnv.New64a()
	h.Write([]byte(tenant))
	return base ^ h.Sum64()
}
