package obs

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDebugServerDrainsInFlight starts a scrape whose GaugeFunc blocks
// mid-collection, closes the server while the scrape is in flight, and
// checks the scrape still completes with a full body. The old Close
// called http.Server.Close, which tears down the connection and
// truncates the response.
func TestDebugServerDrainsInFlight(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("drained_total", "sentinel that must survive the drain").Add(7)
	scraping := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	reg.GaugeFunc("slow_gauge", "blocks collection until released", func() float64 {
		once.Do(func() { close(scraping); <-release })
		return 1
	})

	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}

	type scrape struct {
		body string
		err  error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- scrape{body: string(b), err: err}
	}()

	<-scraping // handler is inside WriteProm now
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	// Close must wait for the handler, not race it: give the drain a
	// moment to (incorrectly) abort the connection before releasing.
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) while a scrape was still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)

	if err := <-closed; err != nil {
		t.Errorf("Close = %v", err)
	}
	s := <-got
	if s.err != nil {
		t.Fatalf("in-flight scrape aborted by drain: %v", s.err)
	}
	if !strings.Contains(s.body, "drained_total 7") {
		t.Errorf("drained scrape body truncated:\n%s", s.body)
	}

	// New connections are refused once drained.
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("drained server accepted a new scrape")
	}
}

// TestDebugServerCloseIdempotent: the CLIs keep a deferred Close for
// error paths plus an explicit drain-then-flush Close on success, so
// double Close must be safe and return the first result; nil receivers
// stay no-ops.
func TestDebugServerCloseIdempotent(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("first Close = %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
	if err := srv.CloseTimeout(time.Millisecond); err != nil {
		t.Errorf("CloseTimeout after Close = %v", err)
	}
	var nilSrv *DebugServer
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
}

// TestDebugServerSurfacesServeError kills the listener out from under
// the background Serve goroutine; Close must report that failure
// instead of discarding it like the old fire-and-forget goroutine did.
func TestDebugServerSurfacesServeError(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.ln.Close()
	// Serve returns with a non-ErrServerClosed accept error; wait for
	// it to land in the buffered channel before draining.
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.serveErr) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err == nil {
		t.Error("Close discarded the Serve error")
	}
}

// TestDebugServerDrainDeadline: a handler that never finishes must not
// wedge Close forever — the bounded context aborts it at the deadline.
func TestDebugServerDrainDeadline(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv, err := ServeHandler("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	go func() {
		close(started)
		http.Get("http://" + srv.Addr() + "/") //nolint:errcheck // aborted by design
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the request reach the handler
	done := make(chan struct{})
	go func() { srv.CloseTimeout(50 * time.Millisecond); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("CloseTimeout did not return after its deadline")
	}
}
