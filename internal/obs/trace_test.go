package obs

import (
	"bufio"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerRecordsAndBounds(t *testing.T) {
	tr := NewTracer(4)
	tr.Event("arrival", "event", 1.5, 3)
	tr.Span("allocate", "repartition", 2.0, 3, time.Now().Add(-time.Millisecond))
	for i := 0; i < 10; i++ {
		tr.Event("overflow", "", float64(i), i)
	}
	if tr.Len() != 4 {
		t.Errorf("len = %d, want capacity 4", tr.Len())
	}
	if tr.Dropped() != 8 {
		t.Errorf("dropped = %d, want 8", tr.Dropped())
	}
	evs := tr.Events()
	if evs[0].Name != "arrival" || evs[0].Sim != 1.5 || evs[0].Job != 3 {
		t.Errorf("event[0] = %+v", evs[0])
	}
	if evs[1].Dur <= 0 {
		t.Errorf("span duration = %d, want > 0", evs[1].Dur)
	}
}

func TestTracerNDJSON(t *testing.T) {
	tr := NewTracer(8)
	tr.Event("a", "k1", 1, 0)
	tr.Event("b", "k2", 2, 1)
	var sb strings.Builder
	if err := tr.WriteNDJSON(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 2 events + trailer", len(lines))
	}
	if lines[0]["name"] != "a" || lines[1]["name"] != "b" {
		t.Errorf("event order: %v", lines)
	}
	trailer := lines[2]
	if trailer["kind"] != "trace-summary" || trailer["events"] != float64(2) {
		t.Errorf("trailer = %v", trailer)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(1 << 12)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 256; i++ {
				tr.Event("e", "", float64(i), w)
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != 8*256 {
		t.Errorf("len+dropped = %d, want %d", got, 8*256)
	}
}

// TestProfileFlags runs the Start/Stop cycle with real output files and
// checks both profiles materialize non-empty.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := ProfileFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to say.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s: %v", path, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
	// Unset flags are a no-op cycle.
	p2 := ProfileFlags(flag.NewFlagSet("empty", flag.ContinueOnError))
	if err := p2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p2.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestServeDebug boots the debug server on a free port and checks the
// three surfaces answer: /metrics (lint-clean), /debug/vars, and the
// pprof index.
func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "test counter").Add(3)
	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return resp
	}

	resp := get("/metrics")
	if errs := LintProm(resp.Body); len(errs) != 0 {
		t.Errorf("/metrics failed lint: %v", errs)
	}
	resp.Body.Close()
	get("/debug/vars").Body.Close()
	get("/debug/pprof/").Body.Close()
}
