package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteProm writes every registered family in the Prometheus text
// exposition format (version 0.0.4): `# HELP` and `# TYPE` lines per
// family, then one sample line per series, histograms expanded to
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
// Output is deterministic — families sorted by name, label values
// sorted within a family — so it goldens cleanly.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		f.mu.Lock()
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		switch f.kind {
		case kindCounterFunc, kindGaugeFunc:
			var total float64
			for _, fn := range f.funcs {
				total += fn()
			}
			fmt.Fprintf(bw, "%s %s\n", f.name, formatValue(total))
		default:
			values := append([]string(nil), f.order...)
			sort.Strings(values)
			for _, v := range values {
				ch := f.children[v]
				switch f.kind {
				case kindCounter:
					fmt.Fprintf(bw, "%s%s %d\n", f.name, labelPair(f.labelKey, v), ch.c.Value())
				case kindGauge:
					fmt.Fprintf(bw, "%s%s %d\n", f.name, labelPair(f.labelKey, v), ch.g.Value())
				case kindHistogram:
					count, sum, buckets := ch.h.snapshot()
					for _, b := range buckets {
						fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", f.name, formatLE(b.LE), b.Count)
					}
					fmt.Fprintf(bw, "%s_sum %s\n", f.name, formatValue(sum))
					fmt.Fprintf(bw, "%s_count %d\n", f.name, count)
				}
			}
		}
		f.mu.Unlock()
	}
	return bw.Flush()
}

// labelPair renders `{key="value"}` or "" for unlabeled series.
func labelPair(key, value string) string {
	if key == "" {
		return ""
	}
	return "{" + key + "=\"" + escapeLabel(value) + "\"}"
}

// escapeLabel escapes a label value for the Prometheus text format,
// which defines exactly three escapes — `\\`, `\"` and `\n` — and
// passes every other byte through raw. Go's %q must not be used here:
// it emits escapes like `\t` and `\x00` that no Prometheus parser
// accepts (LintProm rejects them too).
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatLE(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// LintProm validates a Prometheus text-format exposition: metric and
// label grammar, TYPE declarations preceding their samples, histogram
// completeness (every histogram has monotone cumulative buckets ending
// in +Inf whose count equals _count), and parseable sample values. It
// returns all violations found, or nil when the input is clean. CI
// runs it against the /metrics output of a short dessim run.
func LintProm(r io.Reader) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type histState struct {
		buckets  []Bucket
		hasCount bool
		count    uint64
		declared int // line of the TYPE declaration
	}
	types := map[string]string{} // family name -> declared type
	hists := map[string]*histState{}
	seenSample := map[string]bool{} // family names that already emitted samples

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validName(name) {
				fail(n, "invalid metric name %q in %s line", name, fields[1])
				continue
			}
			if fields[1] == "TYPE" {
				if len(fields) < 4 {
					fail(n, "TYPE line for %q missing type", name)
					continue
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					fail(n, "unknown type %q for metric %q", typ, name)
				}
				if _, dup := types[name]; dup {
					fail(n, "duplicate TYPE declaration for %q", name)
				}
				if seenSample[name] {
					fail(n, "TYPE for %q appears after its samples", name)
				}
				types[name] = typ
				if typ == "histogram" {
					hists[name] = &histState{declared: n}
				}
			}
			continue
		}

		name, labels, valueStr, err := splitSample(line)
		if err != nil {
			fail(n, "unparseable sample line %q: %v", line, err)
			continue
		}
		if !validName(name) {
			fail(n, "invalid metric name %q", name)
			continue
		}
		value, err := parseValue(valueStr)
		if err != nil {
			fail(n, "unparseable value %q for %q", valueStr, name)
			continue
		}
		for _, lb := range labels {
			if !validLabel(lb.key) {
				fail(n, "invalid label name %q on %q", lb.key, name)
			}
		}

		// Resolve histogram component samples to their family.
		fam := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				fam = base
				break
			}
		}
		seenSample[fam] = true
		if _, declared := types[fam]; !declared {
			fail(n, "sample for %q without a preceding TYPE declaration", fam)
			continue
		}

		if h, isHist := hists[fam]; isHist {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, found := "", false
				for _, lb := range labels {
					if lb.key == "le" {
						le, found = lb.value, true
					}
				}
				if !found {
					fail(n, "histogram bucket for %q missing le label", fam)
					continue
				}
				bound, err := parseValue(le)
				if err != nil {
					fail(n, "unparseable le=%q on %q", le, fam)
					continue
				}
				if value < 0 || value != math.Trunc(value) {
					fail(n, "bucket count %v for %q is not a non-negative integer", value, fam)
					continue
				}
				h.buckets = append(h.buckets, Bucket{LE: bound, Count: uint64(value)})
			case strings.HasSuffix(name, "_count"):
				h.hasCount = true
				h.count = uint64(value)
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("read: %w", err))
	}

	for name, h := range hists {
		if len(h.buckets) == 0 {
			fail(h.declared, "histogram %q declared but has no buckets", name)
			continue
		}
		last := h.buckets[len(h.buckets)-1]
		if !math.IsInf(last.LE, 1) {
			fail(h.declared, "histogram %q missing +Inf bucket", name)
		}
		for i := 1; i < len(h.buckets); i++ {
			if h.buckets[i].LE <= h.buckets[i-1].LE {
				fail(h.declared, "histogram %q buckets not ascending by le", name)
			}
			if h.buckets[i].Count < h.buckets[i-1].Count {
				fail(h.declared, "histogram %q cumulative counts not monotone", name)
			}
		}
		if !h.hasCount {
			fail(h.declared, "histogram %q missing _count sample", name)
		} else if math.IsInf(last.LE, 1) && h.count != last.Count {
			fail(h.declared, "histogram %q _count %d != +Inf bucket %d", name, h.count, last.Count)
		}
	}
	return errs
}

type labelEntry struct{ key, value string }

// splitSample parses `name{k="v",...} value` or `name value`.
func splitSample(line string) (name string, labels []labelEntry, value string, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", nil, "", fmt.Errorf("unterminated label set")
		}
		body := rest[brace+1 : end]
		rest = strings.TrimSpace(rest[end+1:])
		for body != "" {
			eq := strings.IndexByte(body, '=')
			if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
				return "", nil, "", fmt.Errorf("label not of the form key=%q", "value")
			}
			key := body[:eq]
			val, tail, perr := unquotePrefix(body[eq+1:])
			if perr != nil {
				return "", nil, "", fmt.Errorf("label %s: %w", key, perr)
			}
			labels = append(labels, labelEntry{key: key, value: val})
			body = strings.TrimPrefix(strings.TrimSpace(tail), ",")
			body = strings.TrimSpace(body)
		}
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", nil, "", fmt.Errorf("missing value")
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	// Value, optionally followed by a timestamp we ignore.
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return "", nil, "", fmt.Errorf("want value [timestamp] after the name, got %q", rest)
	}
	return name, labels, fields[0], nil
}

// unquotePrefix consumes a leading double-quoted string and returns the
// decoded value plus the remaining input. Only the three escapes the
// Prometheus text format defines — `\\`, `\"`, `\n` — are accepted;
// Go-style escapes (`\t`, `\x00`, `\u...`) are explicit violations, so
// expositions rendered with %q fail the lint instead of slipping
// through as plausible-looking garbage.
func unquotePrefix(s string) (value, rest string, err error) {
	if len(s) == 0 || s[0] != '"' {
		return "", "", fmt.Errorf("value is not quoted")
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling backslash")
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", "", fmt.Errorf(`invalid escape \%c (the text format defines only \\, \" and \n)`, s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
