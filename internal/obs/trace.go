package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SpanEvent is one tracer record. Point events have Dur == 0; spans
// carry their wall-clock duration. Sim is the simulation's virtual
// clock at the moment of recording (0 when the instrumented layer has
// no virtual clock), Wall is wall-time nanoseconds since the tracer was
// created — both clocks in one record is what lets a timeline viewer
// correlate "what the simulation thinks happened" with "what the
// machine actually spent".
type SpanEvent struct {
	Name string  `json:"name"`
	Kind string  `json:"kind,omitempty"` // free-form tag: event kind, policy name...
	Sim  float64 `json:"sim"`            // virtual time (simulation units)
	Wall int64   `json:"wallNs"`         // wall ns since tracer start
	Dur  int64   `json:"durNs,omitempty"`
	Job  int     `json:"job,omitempty"` // -1/0 when not job-scoped
}

// Tracer records SpanEvents into a bounded in-memory buffer. Once the
// buffer fills, further records are counted as dropped rather than
// grown — tracing must never turn a long simulation into an OOM. All
// methods are safe for concurrent use, and a nil *Tracer is a no-op, so
// layers hold a plain *Tracer field and record unconditionally.
//
// The buffer is pre-allocated at construction and records are fixed
// structs (no interface boxing), so a steady-state Record costs one
// mutex acquisition and a struct copy.
type Tracer struct {
	start time.Time

	mu      sync.Mutex
	events  []SpanEvent
	dropped uint64
}

// DefaultTraceCap bounds a Tracer created with capacity ≤ 0.
const DefaultTraceCap = 1 << 16

// NewTracer returns a tracer holding at most capacity events
// (DefaultTraceCap when capacity ≤ 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{start: time.Now(), events: make([]SpanEvent, 0, capacity)}
}

// Event records a point event at virtual time sim.
func (t *Tracer) Event(name, kind string, sim float64, job int) {
	if t == nil {
		return
	}
	t.record(SpanEvent{Name: name, Kind: kind, Sim: sim, Job: job,
		Wall: time.Since(t.start).Nanoseconds()})
}

// Span records a completed operation that started at wall-clock
// began and virtual time sim.
func (t *Tracer) Span(name, kind string, sim float64, job int, began time.Time) {
	if t == nil {
		return
	}
	now := time.Now()
	t.record(SpanEvent{Name: name, Kind: kind, Sim: sim, Job: job,
		Wall: began.Sub(t.start).Nanoseconds(), Dur: now.Sub(began).Nanoseconds()})
}

func (t *Tracer) record(ev SpanEvent) {
	t.mu.Lock()
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, ev)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many records the capacity bound discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the buffered records in arrival order.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanEvent(nil), t.events...)
}

// WriteNDJSON writes one JSON object per line: every buffered event in
// arrival order, then a trailer {"kind":"trace-summary",...} with the
// buffered and dropped totals.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	events := t.Events()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	trailer := struct {
		Kind    string `json:"kind"`
		Events  int    `json:"events"`
		Dropped uint64 `json:"dropped"`
	}{Kind: "trace-summary", Events: len(events), Dropped: t.Dropped()}
	if err := enc.Encode(&trailer); err != nil {
		return err
	}
	return bw.Flush()
}
