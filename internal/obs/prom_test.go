package obs

import (
	"strings"
	"testing"
)

// TestWritePromGolden pins the exact exposition text for a small
// registry — the format contract scrapers and the CI lint depend on.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("des_events_total", "Events processed").Add(7)
	r.Gauge("des_resident_jobs", "Jobs sharing the node").Set(3)
	h := r.Histogram("portfolio_race_seconds", "Race latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)
	vec := r.CounterVec("portfolio_wins_total", "Wins per heuristic", "heuristic")
	vec.With("DominantMinRatio").Add(2)
	vec.With("Balanced").Inc()
	r.CounterFunc("memo_hits_total", "Plan-memo hits", func() float64 { return 41 })
	r.CounterFunc("memo_hits_total", "Plan-memo hits", func() float64 { return 1 })

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP des_events_total Events processed
# TYPE des_events_total counter
des_events_total 7
# HELP des_resident_jobs Jobs sharing the node
# TYPE des_resident_jobs gauge
des_resident_jobs 3
# HELP memo_hits_total Plan-memo hits
# TYPE memo_hits_total counter
memo_hits_total 42
# HELP portfolio_race_seconds Race latency
# TYPE portfolio_race_seconds histogram
portfolio_race_seconds_bucket{le="0.001"} 1
portfolio_race_seconds_bucket{le="0.01"} 2
portfolio_race_seconds_bucket{le="+Inf"} 3
portfolio_race_seconds_sum 5.0055
portfolio_race_seconds_count 3
# HELP portfolio_wins_total Wins per heuristic
# TYPE portfolio_wins_total counter
portfolio_wins_total{heuristic="Balanced"} 1
portfolio_wins_total{heuristic="DominantMinRatio"} 2
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The golden text must also satisfy our own linter.
	if errs := LintProm(strings.NewReader(sb.String())); len(errs) != 0 {
		t.Errorf("LintProm rejected golden output: %v", errs)
	}
}

func TestLintPromAccepts(t *testing.T) {
	good := `# some free-form comment
# HELP x_total help text
# TYPE x_total counter
x_total 5
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="+Inf"} 2
lat_seconds_sum 0.3
lat_seconds_count 2
# TYPE labeled_total counter
labeled_total{k="a b",other="x\ny"} 1 1712000000
`
	if errs := LintProm(strings.NewReader(good)); len(errs) != 0 {
		t.Errorf("LintProm(good) = %v", errs)
	}
}

func TestLintPromRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":   "x_total 5\n",
		"bad metric name":       "# TYPE 9bad counter\n9bad 1\n",
		"bad value":             "# TYPE x counter\nx five\n",
		"missing +Inf bucket":   "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-monotone buckets":  "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"count != +Inf":         "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 9\n",
		"missing _count":        "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\n",
		"TYPE after sample":     "# TYPE x counter\nx 1\n# TYPE x counter\n",
		"unterminated label":    "# TYPE x counter\nx{k=\"v 1\n",
		"bad label name":        "# TYPE x counter\nx{9k=\"v\"} 1\n",
		"fractional bucket":     "# TYPE h histogram\nh_bucket{le=\"1\"} 1.5\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"histogram sans bucket": "# TYPE h histogram\nh_sum 1\nh_count 0\n",
	}
	for name, in := range cases {
		if errs := LintProm(strings.NewReader(in)); len(errs) == 0 {
			t.Errorf("LintProm accepted %s:\n%s", name, in)
		}
	}
}

func TestSplitSample(t *testing.T) {
	name, labels, value, err := splitSample(`x_total{a="1",b="two words"} 3.5`)
	if err != nil || name != "x_total" || value != "3.5" || len(labels) != 2 {
		t.Fatalf("splitSample = %q %v %q %v", name, labels, value, err)
	}
	if labels[1].key != "b" || labels[1].value != "two words" {
		t.Errorf("label[1] = %+v", labels[1])
	}
	if _, _, _, err := splitSample("lonely"); err == nil {
		t.Error("splitSample accepted a value-less line")
	}
	// The three defined escapes decode; unknown escapes are errors.
	_, labels, _, err = splitSample(`x_total{k="a\\b\"c\nd"} 1`)
	if err != nil || labels[0].value != "a\\b\"c\nd" {
		t.Errorf("escape decode = %+v, %v", labels, err)
	}
	if _, _, _, err := splitSample(`x_total{k="a\tb"} 1`); err == nil {
		t.Error(`splitSample accepted the Go-only escape \t`)
	}
}

// TestPromLabelEscaping pins the exposition/lint round trip for label
// values the text format has to escape. The old renderer used Go's %q,
// which emitted escapes like \t and \x00 that no Prometheus parser —
// including our own LintProm — accepts.
func TestPromLabelEscaping(t *testing.T) {
	exotic := "tab\there \"quoted\" back\\slash\nnewline \x00nul é€"
	r := NewRegistry()
	r.CounterVec("exotic_total", "exotic label values", "k").With(exotic).Inc()

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if errs := LintProm(strings.NewReader(out)); len(errs) != 0 {
		t.Fatalf("LintProm rejected escaped exposition:\n%s\nerrors: %v", out, errs)
	}
	// Raw tab and nul bytes pass through unescaped; only \, " and \n
	// are rewritten.
	want := `exotic_total{k="tab	here \"quoted\" back\\slash\nnewline ` + "\x00" + `nul é€"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing %q:\n%s", want, out)
	}
	// And the lint parser decodes back to the original value.
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "exotic_total{") {
			continue
		}
		_, labels, _, err := splitSample(line)
		if err != nil || len(labels) != 1 || labels[0].value != exotic {
			t.Errorf("round trip = %+v, %v; want value %q", labels, err, exotic)
		}
	}
}

// TestLintPromRejectsGoQuoting feeds LintProm the output the old
// %q-based labelPair produced: the gate must flag it, not let it
// through as plausible-looking garbage.
func TestLintPromRejectsGoQuoting(t *testing.T) {
	old := "# TYPE x_total counter\nx_total{k=\"a\\tb\"} 1\n"
	if errs := LintProm(strings.NewReader(old)); len(errs) == 0 {
		t.Fatalf("LintProm accepted Go-style \\t escape:\n%s", old)
	} else if !strings.Contains(errs[0].Error(), `invalid escape`) {
		t.Errorf("error does not name the invalid escape: %v", errs[0])
	}
	if errs := LintProm(strings.NewReader("# TYPE x_total counter\nx_total{k=\"a\\x00b\"} 1\n")); len(errs) == 0 {
		t.Error(`LintProm accepted Go-style \x00 escape`)
	}
}
