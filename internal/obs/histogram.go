package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram: counts per upper bound plus an
// implicit +Inf bucket, a running sum and a total count, all updated
// with single atomic operations. Buckets are allocated once at
// registration; Observe never allocates. A nil *Histogram is a no-op.
//
// The bucket layout is Prometheus-style non-cumulative internally
// (counts[i] holds observations in (bounds[i-1], bounds[i]]) and is
// accumulated only at export time, so concurrent observers never touch
// more than one bucket counter.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf excluded
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

func checkBuckets(bounds []float64) {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram bounds must be finite (the +Inf bucket is implicit)")
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly ascending at index %d", i))
		}
	}
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds))
	return h
}

// Observe records one value. Bound arrays are short (≤ ~20 entries), so
// a linear scan beats binary search on real hardware and stays
// branch-predictable for clustered observations.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// snapshot returns count, sum and the cumulative buckets (+Inf last).
// Reads are not atomic as a group — exports racing live observers can
// be off by in-flight observations, which is fine for telemetry.
func (h *Histogram) snapshot() (count uint64, sum float64, buckets []Bucket) {
	buckets = make([]Bucket, len(h.bounds)+1)
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		buckets[i] = Bucket{LE: h.bounds[i], Count: cum}
	}
	cum += h.inf.Load()
	buckets[len(h.bounds)] = Bucket{LE: math.Inf(1), Count: cum}
	// Export a count consistent with the +Inf bucket even mid-race:
	// the text format requires _count == the +Inf cumulative count.
	return cum, h.sum.Load(), buckets
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the owning bucket — the standard
// histogram_quantile estimate. Returns NaN when empty; the last finite
// bound when the quantile lands in the +Inf bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	count, _, buckets := h.snapshot()
	if count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// The q-quantile is the observation of (1-based) rank ⌈q·count⌉,
	// clamped to at least 1: a rank of 0 would "find" the first bucket
	// even when it is empty (0 ≥ 0) and return its bound, so q = 0 must
	// instead estimate the minimum, which lives in the first *occupied*
	// bucket.
	rank := q * float64(count)
	if rank < 1 {
		rank = 1
	}
	for i, b := range buckets {
		if float64(b.Count) >= rank {
			if math.IsInf(b.LE, 1) {
				return h.bounds[len(h.bounds)-1]
			}
			lower, prev := 0.0, uint64(0)
			if i > 0 {
				lower, prev = buckets[i-1].LE, buckets[i-1].Count
			}
			in := b.Count - prev
			if in == 0 {
				return b.LE
			}
			return lower + (b.LE-lower)*(rank-float64(prev))/float64(in)
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n strictly ascending bounds starting at start and
// multiplying by factor — the usual latency layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs n ≥ 1, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic("obs: LinearBuckets needs n ≥ 1, width > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}
