package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles is the shared -cpuprofile/-memprofile plumbing for every
// CLI: register the flags with ProfileFlags, bracket main with
// Start/Stop. Both flags default to off and cost nothing when unset.
type Profiles struct {
	cpuPath string
	memPath string
	cpuFile *os.File
}

// ProfileFlags registers -cpuprofile and -memprofile on fs and returns
// the handle that will honor them.
func ProfileFlags(fs *flag.FlagSet) *Profiles {
	p := &Profiles{}
	fs.StringVar(&p.cpuPath, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.memPath, "memprofile", "", "write a heap profile to this file on exit")
	return p
}

// Start begins CPU profiling if -cpuprofile was given. Call Stop (via
// defer) to flush profiles; Stop is safe to call even if Start failed.
func (p *Profiles) Start() error {
	if p == nil || p.cpuPath == "" {
		return nil
	}
	f, err := os.Create(p.cpuPath)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop flushes the CPU profile (if running) and writes the heap
// profile (if requested). Errors are returned but Stop always releases
// every resource it holds.
func (p *Profiles) Stop() error {
	if p == nil {
		return nil
	}
	var first error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil && first == nil {
			first = fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("memprofile: %w", err)
			}
			return first
		}
		// Get up-to-date allocation statistics before snapshotting.
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
			first = fmt.Errorf("memprofile: %w", err)
		}
		if err := f.Close(); err != nil && first == nil {
			first = fmt.Errorf("memprofile: %w", err)
		}
	}
	return first
}
