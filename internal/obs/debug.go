package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler serving the debug surface:
//
//	/metrics          Prometheus text exposition of reg
//	/debug/pprof/*    the standard runtime profiles
//	/debug/vars       expvar (runtime memstats + cmdline)
//
// reg may be nil, in which case /metrics serves an empty exposition.
// The pprof handlers are registered explicitly on a private mux so
// importing this package never mutates http.DefaultServeMux.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteProm(w); err != nil {
			// Headers are gone; nothing useful left to do.
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// DebugServer is a running -debug-addr listener; Close shuts it down.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts the debug surface on addr (e.g. "localhost:6060";
// ":0" picks a free port — read it back with Addr). It returns as soon
// as the listener is bound; serving continues on a background
// goroutine until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug-addr: %w", err)
	}
	srv := &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *DebugServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
