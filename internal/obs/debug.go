package obs

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Handler returns an http.Handler serving the debug surface:
//
//	/metrics          Prometheus text exposition of reg
//	/debug/pprof/*    the standard runtime profiles
//	/debug/vars       expvar (runtime memstats + cmdline)
//
// reg may be nil, in which case /metrics serves an empty exposition.
// The pprof handlers are registered explicitly on a private mux so
// importing this package never mutates http.DefaultServeMux.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteProm(w); err != nil {
			// Headers are gone; nothing useful left to do.
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// DefaultDrainTimeout bounds how long Close waits for in-flight
// requests to complete before aborting them.
const DefaultDrainTimeout = 5 * time.Second

// DebugServer is a running HTTP listener with a graceful, bounded
// shutdown path; the -debug-addr servers of the CLIs and the coschedd
// API listener are both built on it. Close drains in-flight requests.
type DebugServer struct {
	ln       net.Listener
	srv      *http.Server
	serveErr chan error

	closeOnce sync.Once
	closeErr  error
}

// ServeDebug starts the debug surface on addr (e.g. "localhost:6060";
// ":0" picks a free port — read it back with Addr). It returns as soon
// as the listener is bound; serving continues on a background
// goroutine until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	return ServeHandler(addr, Handler(reg))
}

// ServeHandler starts an HTTP server for an arbitrary handler on addr,
// sharing the debug surface's lifecycle: bind synchronously, serve in
// the background, drain gracefully on Close. cmd/coschedd mounts its
// API mux through this so its SIGTERM drain and the -debug-addr drain
// are one code path.
func ServeHandler(addr string, h http.Handler) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug-addr: %w", err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	s := &DebugServer{ln: ln, srv: srv, serveErr: make(chan error, 1)}
	go func() { s.serveErr <- srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *DebugServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close gracefully drains the server with DefaultDrainTimeout; see
// CloseTimeout.
func (s *DebugServer) Close() error { return s.CloseTimeout(DefaultDrainTimeout) }

// CloseTimeout stops accepting new connections, waits up to d (values
// ≤ 0 mean DefaultDrainTimeout) for in-flight handlers — a last
// /metrics scrape, a pprof dump, an API request — to complete, and
// aborts whatever is still running after the deadline. It returns any
// error the background Serve goroutine died with (an abrupt
// http.Server.Close used to abort scrapes mid-body and discard that
// error). Safe on a nil receiver and idempotent: every call returns
// the first call's result.
func (s *DebugServer) CloseTimeout(d time.Duration) error {
	if s == nil {
		return nil
	}
	s.closeOnce.Do(func() {
		if d <= 0 {
			d = DefaultDrainTimeout
		}
		ctx, cancel := context.WithTimeout(context.Background(), d)
		defer cancel()
		err := s.srv.Shutdown(ctx)
		if err != nil {
			// Drain deadline exceeded: abort the stragglers so Close
			// still terminates the server.
			if cerr := s.srv.Close(); cerr != nil && !errors.Is(cerr, http.ErrServerClosed) && err == nil {
				err = cerr
			}
		}
		// Shutdown (or Close) makes Serve return; a real serve failure
		// (e.g. the listener died mid-run) surfaces instead of being
		// discarded, while the expected ErrServerClosed does not.
		if serr := <-s.serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
			err = serr
		}
		s.closeErr = err
	})
	return s.closeErr
}
