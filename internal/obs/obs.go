// Package obs is the repository's observability substrate: a
// dependency-free, race-safe metrics registry (atomic counters, gauges,
// fixed-bucket histograms, single-label families, callback metrics)
// plus a lightweight span/event tracer that records both sim-time and
// wall-time, with Prometheus text-format and NDJSON export.
//
// Two disciplines shape the design:
//
//   - Nil is off. Every handle method no-ops on a nil receiver, and
//     every Registry constructor returns nil handles on a nil Registry,
//     so instrumented code holds plain handle fields and calls them
//     unconditionally — a disabled layer costs one nil check per
//     observation, zero allocations, and zero behavioral drift.
//   - Observation never perturbs determinism. Metrics record what the
//     simulation did; they are never read back by any scheduling or
//     simulation decision. Wall-clock reads happen only behind
//     enabled-handle guards, so a metrics-off run executes the exact
//     instruction stream it executed before this package existed.
//
// Hot-path cost when enabled is a handful of atomic operations per
// observation: counters and gauges are single atomics, histograms are
// pre-allocated at registration and observe with a short linear bucket
// scan, and labeled children are resolved to plain *Counter handles
// that can be cached by the caller.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a no-op.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic integer gauge (queue depths, occupancies). The
// zero value is ready to use; a nil *Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// atomicFloat is a float64 updated with a CAS loop over its bit
// pattern, so histogram sums stay race-safe without a mutex.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// kind enumerates the metric families a Registry can hold.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one registered metric name: its metadata plus its children
// (one per label value; unlabeled families have a single "" child).
type family struct {
	name     string
	help     string
	kind     kind
	labelKey string
	buckets  []float64 // histogram upper bounds, for re-registration checks

	mu       sync.Mutex
	children map[string]*child
	order    []string // label values in first-use order; export sorts
	funcs    []func() float64
}

type child struct {
	c *Counter
	g *Gauge
	h *Histogram
}

// Registry holds named metric families. It is safe for concurrent use;
// a nil *Registry hands out nil (no-op) handles, so "no registry" is
// the natural disabled state. Use NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// validName reports whether name matches the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabel reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabel(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// register returns the family for name, creating it on first use.
// Registration is idempotent: re-registering an identical spec returns
// the existing family, so independent layers (two engines, a client and
// a CLI) can instrument one registry and share the same series. A
// conflicting spec — different kind, label key or buckets under one
// name — panics, as does an invalid name: both are programming errors
// at instrumentation sites with literal names, caught on first run.
func (r *Registry) register(name, help string, k kind, labelKey string, buckets []float64) *family {
	if r == nil {
		return nil
	}
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if labelKey != "" && !validLabel(labelKey) {
		panic(fmt.Sprintf("obs: invalid label name %q on metric %q", labelKey, name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != k || f.labelKey != labelKey || !sameBuckets(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a conflicting spec", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, labelKey: labelKey,
		buckets: buckets, children: make(map[string]*child)}
	r.fams[name] = f
	return f
}

func sameBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// childFor returns the family's child for one label value, creating it
// on first use.
func (f *family) childFor(value string) *child {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.children[value]
	if !ok {
		ch = &child{}
		switch f.kind {
		case kindCounter:
			ch.c = &Counter{}
		case kindGauge:
			ch.g = &Gauge{}
		case kindHistogram:
			ch.h = newHistogram(f.buckets)
		}
		f.children[value] = ch
		f.order = append(f.order, value)
	}
	return ch
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, "", nil)
	if f == nil {
		return nil
	}
	return f.childFor("").c
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, "", nil)
	if f == nil {
		return nil
	}
	return f.childFor("").g
}

// Histogram registers (or finds) an unlabeled fixed-bucket histogram;
// see NewHistogram for the bucket contract.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	checkBuckets(buckets)
	f := r.register(name, help, kindHistogram, "", buckets)
	if f == nil {
		return nil
	}
	return f.childFor("").h
}

// CounterVec is a family of counters keyed by one label. A nil
// *CounterVec (from a nil registry) hands out nil counters.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	f := r.register(name, help, kindCounter, labelKey, nil)
	if f == nil {
		return nil
	}
	return &CounterVec{f: f}
}

// With returns the counter for one label value, creating the series on
// first use. The returned handle is stable — resolve once and cache it
// on hot paths.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.childFor(value).c
}

// CounterFunc registers a counter whose value is read from fn at
// collection time — the zero-overhead way to export counters a layer
// already maintains (cache hit/miss atomics, memo statistics). fn must
// be monotonic non-decreasing and safe for concurrent use. Multiple
// registrations under one name sum at collection (several engines
// sharing a registry aggregate naturally).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindCounterFunc, "", nil)
	if f == nil {
		return
	}
	f.mu.Lock()
	f.funcs = append(f.funcs, fn)
	f.mu.Unlock()
}

// GaugeFunc registers a gauge read from fn at collection time; like
// CounterFunc, multiple registrations under one name sum.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGaugeFunc, "", nil)
	if f == nil {
		return
	}
	f.mu.Lock()
	f.funcs = append(f.funcs, fn)
	f.mu.Unlock()
}

// Bucket is one cumulative histogram bucket of a Sample.
type Bucket struct {
	LE    float64 `json:"le"` // upper bound, +Inf for the last
	Count uint64  `json:"count"`
}

// MarshalJSON renders the bound the way Prometheus does — "+Inf" as a
// string for the last bucket — because encoding/json rejects infinite
// float64 values outright.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, formatLE(b.LE), b.Count)), nil
}

// Sample is one exported series in a Snapshot — the machine-readable
// form behind `dessim -json`.
type Sample struct {
	Name       string   `json:"name"`
	Kind       string   `json:"kind"` // "counter", "gauge" or "histogram"
	LabelKey   string   `json:"labelKey,omitempty"`
	LabelValue string   `json:"labelValue,omitempty"`
	Value      float64  `json:"value"`         // count for histograms
	Sum        float64  `json:"sum,omitempty"` // histograms only
	Buckets    []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns every series in deterministic order (family name,
// then label value). Func metrics are evaluated at call time.
func (r *Registry) Snapshot() []Sample {
	var out []Sample
	for _, f := range r.sortedFamilies() {
		f.mu.Lock()
		switch f.kind {
		case kindCounterFunc, kindGaugeFunc:
			var total float64
			for _, fn := range f.funcs {
				total += fn()
			}
			out = append(out, Sample{Name: f.name, Kind: f.kind.String(), Value: total})
		default:
			values := append([]string(nil), f.order...)
			sort.Strings(values)
			for _, v := range values {
				ch := f.children[v]
				s := Sample{Name: f.name, Kind: f.kind.String()}
				if f.labelKey != "" {
					s.LabelKey, s.LabelValue = f.labelKey, v
				}
				switch f.kind {
				case kindCounter:
					s.Value = float64(ch.c.Value())
				case kindGauge:
					s.Value = float64(ch.g.Value())
				case kindHistogram:
					count, sum, buckets := ch.h.snapshot()
					s.Value, s.Sum, s.Buckets = float64(count), sum, buckets
				}
				out = append(out, s)
			}
		}
		f.mu.Unlock()
	}
	return out
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
