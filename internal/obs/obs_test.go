package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety drives every handle type through a nil receiver: the
// whole instrumentation design rests on "nil is off" never panicking.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(5)
	g.Add(-2)
	g.Inc()
	g.Dec()
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %d", g.Value())
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("nil histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("nil histogram quantile = %v, want NaN", q)
	}
	var v *CounterVec
	v.With("x").Inc()

	var tr *Tracer
	tr.Event("e", "k", 1, 0)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer recorded something")
	}
	if err := tr.WriteNDJSON(nil); err != nil {
		t.Errorf("nil tracer WriteNDJSON: %v", err)
	}

	var p *Profiles
	if err := p.Start(); err != nil {
		t.Errorf("nil profiles Start: %v", err)
	}
	if err := p.Stop(); err != nil {
		t.Errorf("nil profiles Stop: %v", err)
	}
}

// TestNilRegistryHandles checks that a nil registry hands out nil
// (no-op) metrics from every constructor.
func TestNilRegistryHandles(t *testing.T) {
	var r *Registry
	if c := r.Counter("a_total", ""); c != nil {
		t.Error("nil registry returned non-nil counter")
	}
	if g := r.Gauge("b", ""); g != nil {
		t.Error("nil registry returned non-nil gauge")
	}
	if h := r.Histogram("c", "", []float64{1}); h != nil {
		t.Error("nil registry returned non-nil histogram")
	}
	if v := r.CounterVec("d_total", "", "k"); v != nil {
		t.Error("nil registry returned non-nil vec")
	}
	r.CounterFunc("e_total", "", func() float64 { return 1 })
	r.GaugeFunc("f", "", func() float64 { return 1 })
	if s := r.Snapshot(); s != nil {
		t.Errorf("nil registry snapshot = %v", s)
	}
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatalf("nil registry WriteProm: %v", err)
	}
	if sb.String() != "" {
		t.Errorf("nil registry exposition = %q", sb.String())
	}
}

// TestRegistryIdempotent verifies that re-registering an identical
// spec returns the same underlying series (layer sharing), and that a
// conflicting spec panics.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("races_total", "races")
	b := r.Counter("races_total", "races")
	a.Inc()
	if b.Value() != 1 {
		t.Errorf("re-registered counter not shared: %d", b.Value())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("conflicting re-registration did not panic")
			}
		}()
		r.Gauge("races_total", "now a gauge")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid metric name did not panic")
			}
		}()
		r.Counter("bad name", "")
	}()
}

// TestRegistryConcurrency hammers one registry from many goroutines
// under -race: concurrent registration, labeled-child creation,
// observations and exports must all be safe, and counts must add up.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hammer_total", "")
			g := r.Gauge("hammer_depth", "")
			h := r.Histogram("hammer_seconds", "", []float64{0.25, 0.5, 0.75})
			vec := r.CounterVec("hammer_by_worker_total", "", "worker")
			mine := vec.With(string(rune('a' + w%4)))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%100) / 100)
				mine.Inc()
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WriteProm(&sb); err != nil {
						t.Errorf("WriteProm: %v", err)
						return
					}
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	const total = workers * perWorker
	if got := r.Counter("hammer_total", "").Value(); got != total {
		t.Errorf("hammer_total = %d, want %d", got, total)
	}
	if got := r.Gauge("hammer_depth", "").Value(); got != 0 {
		t.Errorf("hammer_depth = %d, want 0", got)
	}
	h := r.Histogram("hammer_seconds", "", []float64{0.25, 0.5, 0.75})
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	var labeled uint64
	for _, s := range r.Snapshot() {
		if s.Name == "hammer_by_worker_total" {
			labeled += uint64(s.Value)
		}
	}
	if labeled != total {
		t.Errorf("labeled sum = %d, want %d", labeled, total)
	}
}

// TestHistogramBoundaries pins the bucket contract: le bounds are
// inclusive, values above the last bound land in +Inf, cumulative
// counts are monotone and _count equals the +Inf count.
func TestHistogramBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	count, sum, buckets := h.snapshot()
	if count != 8 {
		t.Fatalf("count = %d, want 8", count)
	}
	wantSum := 0.5 + 1 + 1.0000001 + 2 + 3 + 4 + 5 + 100
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", sum, wantSum)
	}
	wantCum := []uint64{2, 4, 6, 8} // le=1:{0.5,1} le=2:{+1.0000001,2} le=4:{3,4} +Inf:{5,100}
	for i, b := range buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket[%d] le=%v count = %d, want %d", i, b.LE, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(buckets[len(buckets)-1].LE, 1) {
		t.Error("last bucket is not +Inf")
	}
	if buckets[len(buckets)-1].Count != count {
		t.Error("+Inf bucket != count")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30})
	for i := 1; i <= 30; i++ {
		h.Observe(float64(i))
	}
	// Uniform over (0,30]: the median interpolates to ~15.
	if q := h.Quantile(0.5); math.Abs(q-15) > 1 {
		t.Errorf("p50 = %v, want ~15", q)
	}
	if q := h.Quantile(1); math.Abs(q-30) > 1e-9 {
		t.Errorf("p100 = %v, want 30", q)
	}
	empty := newHistogram([]float64{1})
	if q := empty.Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty quantile = %v, want NaN", q)
	}
	h.Observe(1e9) // lands in +Inf: quantile clamps to last finite bound
	if q := h.Quantile(1); q != 30 {
		t.Errorf("quantile in +Inf bucket = %v, want 30", q)
	}
}

// TestHistogramQuantileEdges pins q=0, q=1 and single-bucket behavior.
// Quantile(0) used to return the first bucket's bound even when that
// bucket was empty (rank 0 satisfies Count >= 0), i.e. an upper bound
// on values the histogram never saw.
func TestHistogramQuantileEdges(t *testing.T) {
	// All mass in the second bucket: q=0 must land inside (10, 20],
	// not on the empty first bucket's bound 10... and certainly not
	// below it.
	h := newHistogram([]float64{10, 20, 30})
	for i := 0; i < 4; i++ {
		h.Observe(15)
	}
	if q := h.Quantile(0); q <= 10 || q > 20 {
		t.Errorf("Quantile(0) = %v, want a value in the occupied bucket (10, 20]", q)
	}
	if lo, hi := h.Quantile(0), h.Quantile(1); lo > hi {
		t.Errorf("Quantile(0)=%v > Quantile(1)=%v", lo, hi)
	}
	if q := h.Quantile(1); q != 20 {
		t.Errorf("Quantile(1) = %v, want 20 (upper bound of the occupied bucket)", q)
	}

	// Single occupied bucket, single observation: every quantile
	// interpolates within (0, 5].
	one := newHistogram([]float64{5})
	one.Observe(2)
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if v := one.Quantile(q); v != 5 {
			t.Errorf("single-bucket Quantile(%v) = %v, want 5 (rank 1 of 1 fills the bucket)", q, v)
		}
	}

	// Out-of-range q clamps rather than extrapolating.
	if v := one.Quantile(-3); v != one.Quantile(0) {
		t.Errorf("Quantile(-3) = %v, want Quantile(0)", v)
	}
	if v := one.Quantile(7); v != one.Quantile(1) {
		t.Errorf("Quantile(7) = %v, want Quantile(1)", v)
	}
	if v := one.Quantile(math.NaN()); !math.IsNaN(v) {
		t.Errorf("Quantile(NaN) = %v, want NaN", v)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(exp[i]-want[i]) > 1e-12 {
			t.Errorf("ExpBuckets[%d] = %v, want %v", i, exp[i], want[i])
		}
	}
	lin := LinearBuckets(0, 5, 3)
	if lin[0] != 0 || lin[1] != 5 || lin[2] != 10 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	for _, bad := range [][]float64{nil, {1, 1}, {2, 1}, {math.NaN()}, {math.Inf(1)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("checkBuckets(%v) did not panic", bad)
				}
			}()
			checkBuckets(bad)
		}()
	}
}
