package pipeline

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/workload"
)

func testConfig(n int, seq float64) Config {
	apps, err := workload.Generate(workload.Config{
		Generator: workload.GenNPBSynth, N: n, Seq: seq, SeqFixed: true,
	}, solve.NewRNG(123))
	if err != nil {
		panic(err)
	}
	pl := model.TaihuLight()
	pl.Processors = 64
	return Config{Platform: pl, Analyses: apps, Heuristic: sched.DominantMinRatio}
}

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(Config{Platform: model.TaihuLight()}); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

func TestNewPlanDepthOne(t *testing.T) {
	cfg := testConfig(6, 0.05)
	p, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Depth != 1 {
		t.Fatalf("depth %d", p.Depth)
	}
	if p.SustainablePeriod != p.BatchLatency {
		t.Fatal("depth-1 period must equal batch latency")
	}
	if len(p.Schedule.Assignments) != 6 {
		t.Fatalf("%d assignments", len(p.Schedule.Assignments))
	}
}

func TestDeeperPipelineImprovesThroughput(t *testing.T) {
	cfg := testConfig(4, 0.1) // large sequential fractions: packing helps
	p1, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Depth = 4
	p4, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p4.SustainablePeriod >= p1.SustainablePeriod {
		t.Fatalf("depth 4 period %v not below depth 1 %v", p4.SustainablePeriod, p1.SustainablePeriod)
	}
	// But latency grows.
	if p4.BatchLatency <= p1.BatchLatency {
		t.Fatalf("depth 4 latency %v should exceed depth 1 %v", p4.BatchLatency, p1.BatchLatency)
	}
	// The merged schedule covers depth × fleet instances and the input
	// fleet itself is untouched.
	if got := len(p4.Schedule.Assignments); got != 4*len(cfg.Analyses) {
		t.Fatalf("depth-4 schedule has %d assignments", got)
	}
	for _, a := range cfg.Analyses {
		if strings.Contains(a.Name, "#b") {
			t.Fatal("NewPlan mutated the input fleet")
		}
	}
}

func TestBestDepth(t *testing.T) {
	cfg := testConfig(4, 0.1)
	best, err := BestDepth(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Best must be at least as good as both endpoints.
	for _, d := range []int{1, 6} {
		c := cfg
		c.Depth = d
		p, err := NewPlan(c)
		if err != nil {
			t.Fatal(err)
		}
		if best.SustainablePeriod > p.SustainablePeriod*(1+1e-12) {
			t.Fatalf("BestDepth (%v at depth %d) beaten by depth %d (%v)",
				best.SustainablePeriod, best.Depth, d, p.SustainablePeriod)
		}
	}
	if _, err := BestDepth(cfg, 0); err == nil {
		t.Fatal("maxDepth 0 accepted")
	}
}

func TestSimulateArrivalsSustainable(t *testing.T) {
	cfg := testConfig(5, 0.05)
	p, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.SimulateArrivals(p.SustainablePeriod*1.05, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sustainable || st.MaxLateness != 0 {
		t.Fatalf("5%% slack should be sustainable: %+v", st)
	}
	if st.MaxBacklog > p.Depth {
		t.Fatalf("backlog %d beyond depth", st.MaxBacklog)
	}
}

func TestSimulateArrivalsOverload(t *testing.T) {
	cfg := testConfig(5, 0.05)
	p, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.SimulateArrivals(p.SustainablePeriod*0.7, 40)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sustainable {
		t.Fatal("30%% overload reported sustainable")
	}
	if st.MaxLateness <= 0 {
		t.Fatal("overload without lateness")
	}
	if st.MaxBacklog < 2 {
		t.Fatalf("overload should build a queue, backlog %d", st.MaxBacklog)
	}
	// Mean latency under overload grows beyond the batch latency.
	if st.MeanLatency <= p.BatchLatency {
		t.Fatalf("overloaded latency %v not above batch latency %v", st.MeanLatency, p.BatchLatency)
	}
}

func TestSimulateArrivalsValidation(t *testing.T) {
	cfg := testConfig(3, 0.05)
	p, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SimulateArrivals(0, 10); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := p.SimulateArrivals(1, 0); err == nil {
		t.Fatal("zero batches accepted")
	}
}

func TestMinSustainablePeriodAgreesWithAnalytic(t *testing.T) {
	cfg := testConfig(5, 0.05)
	p, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	min, err := p.MinSustainablePeriod(60, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(min-p.SustainablePeriod) > 1e-3*p.SustainablePeriod {
		t.Fatalf("simulated minimum %v vs analytic %v", min, p.SustainablePeriod)
	}
}

// Property: for any fleet and depth, simulating exactly at the
// sustainable period (with a hair of slack) never misses a deadline.
func TestSustainablePeriodProperty(t *testing.T) {
	f := func(seed uint64, nPick, dPick uint8) bool {
		n := 1 + int(nPick)%6
		d := 1 + int(dPick)%4
		apps, err := workload.Generate(workload.Config{
			Generator: workload.GenNPBSynth, N: n, Seq: 0.05, SeqFixed: true,
		}, solve.NewRNG(seed))
		if err != nil {
			return false
		}
		pl := model.TaihuLight()
		pl.Processors = 64
		p, err := NewPlan(Config{Platform: pl, Analyses: apps, Heuristic: sched.DominantMinRatio, Depth: d})
		if err != nil {
			return false
		}
		st, err := p.SimulateArrivals(p.SustainablePeriod*(1+1e-9), 3*d+5)
		return err == nil && st.Sustainable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
