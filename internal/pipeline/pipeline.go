// Package pipeline applies the co-scheduler to the scenario that
// motivates the paper's introduction: in-situ analysis of a periodic
// simulation (the HACC workflow of Sewell et al.). A main simulation
// emits a data batch every period; a fleet of analysis applications must
// process each batch on a dedicated node and finish before its output is
// needed, otherwise batches queue up and data spills to the parallel
// filesystem.
//
// The package answers the operational questions: what is the shortest
// sustainable batch period for a given fleet and node, how much does
// batch pipelining (co-scheduling k consecutive batches together) help,
// and what happens — lateness, backlog — when batches arrive faster than
// the fleet can drain them.
package pipeline

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/solve"
)

// Config describes a periodic in-situ workload.
type Config struct {
	Platform model.Platform
	// Analyses is the per-batch application fleet.
	Analyses []model.Application
	// Heuristic chooses the co-scheduling policy (DominantMinRatio is
	// the sensible default).
	Heuristic sched.Heuristic
	// Depth is the pipelining depth: Depth consecutive batches are
	// co-scheduled together (their fleets merged into one schedule).
	// Depth 1 (or 0, treated as 1) processes batches one at a time.
	Depth int
	// RNG seeds randomized heuristics; may be nil.
	RNG *solve.RNG
}

func (c Config) depth() int {
	if c.Depth < 1 {
		return 1
	}
	return c.Depth
}

// Plan is the steady-state answer for a configuration.
type Plan struct {
	// Schedule co-schedules depth × len(Analyses) application
	// instances; instance i·len(Analyses)+j is batch-offset i of
	// analysis j.
	Schedule *sched.Schedule
	// BatchLatency is the completion time of one super-batch (depth
	// batches processed together).
	BatchLatency float64
	// SustainablePeriod is the minimal batch interarrival the fleet
	// keeps up with: BatchLatency / depth.
	SustainablePeriod float64
	// Depth echoes the pipelining depth used.
	Depth int
}

// NewPlan computes the steady-state plan for cfg.
func NewPlan(cfg Config) (*Plan, error) {
	if len(cfg.Analyses) == 0 {
		return nil, fmt.Errorf("pipeline: no analyses")
	}
	d := cfg.depth()
	merged := make([]model.Application, 0, d*len(cfg.Analyses))
	for b := 0; b < d; b++ {
		for _, a := range cfg.Analyses {
			inst := a
			inst.Name = fmt.Sprintf("%s#b%d", a.Name, b)
			merged = append(merged, inst)
		}
	}
	s, err := cfg.Heuristic.Schedule(cfg.Platform, merged, cfg.RNG)
	if err != nil {
		return nil, fmt.Errorf("pipeline: scheduling depth-%d super-batch: %w", d, err)
	}
	return &Plan{
		Schedule:          s,
		BatchLatency:      s.Makespan,
		SustainablePeriod: s.Makespan / float64(d),
		Depth:             d,
	}, nil
}

// BestDepth searches depths 1…maxDepth and returns the plan with the
// smallest sustainable period. Deeper pipelines amortize Amdahl
// sequential fractions across more concurrent work but increase batch
// latency; the sweet spot depends on the fleet.
func BestDepth(cfg Config, maxDepth int) (*Plan, error) {
	if maxDepth < 1 {
		return nil, fmt.Errorf("pipeline: maxDepth must be >= 1, got %d", maxDepth)
	}
	var best *Plan
	for d := 1; d <= maxDepth; d++ {
		c := cfg
		c.Depth = d
		p, err := NewPlan(c)
		if err != nil {
			return nil, err
		}
		if best == nil || p.SustainablePeriod < best.SustainablePeriod {
			best = p
		}
	}
	return best, nil
}

// BatchStats summarizes a simulated run of the pipeline.
type BatchStats struct {
	Batches     int
	MaxLateness float64 // worst completion-past-deadline, 0 if none
	MaxBacklog  int     // deepest queue of waiting batches
	MeanLatency float64 // mean arrival-to-completion time
	Sustainable bool    // no lateness against deadline = period
}

// SimulateArrivals plays out `batches` periodic arrivals with the given
// interarrival period against the plan. Batches are processed
// super-batch by super-batch (depth arrivals are accumulated before the
// merged schedule starts), FIFO, one super-batch at a time on the node.
// Each batch's deadline is its arrival plus (2·depth − 1) periods: up to
// depth−1 periods waiting for its super-batch to fill, plus the depth
// periods the node needs to process it in steady state. At exactly the
// sustainable period this bound is tight for the first batch of every
// super-batch.
func (p *Plan) SimulateArrivals(period float64, batches int) (*BatchStats, error) {
	if period <= 0 {
		return nil, fmt.Errorf("pipeline: period must be positive, got %g", period)
	}
	if batches < 1 {
		return nil, fmt.Errorf("pipeline: need at least one batch, got %d", batches)
	}
	st := &BatchStats{Batches: batches, Sustainable: true}
	var nodeFree float64 // when the node finishes its current super-batch
	var latSum solve.Kahan
	for b := 0; b < batches; b += p.Depth {
		last := b + p.Depth - 1
		if last >= batches {
			last = batches - 1
		}
		ready := float64(last) * period // all batches of the super-batch arrived
		start := math.Max(ready, nodeFree)
		finish := start + p.BatchLatency
		nodeFree = finish
		// Backlog when this super-batch starts: arrivals before start
		// minus batches fully processed.
		arrived := int(math.Floor(start/period)) + 1
		if arrived > batches {
			arrived = batches
		}
		backlog := arrived - b
		if backlog > st.MaxBacklog {
			st.MaxBacklog = backlog
		}
		for i := b; i <= last; i++ {
			arrival := float64(i) * period
			latSum.Add(finish - arrival)
			deadline := arrival + period*float64(2*p.Depth-1)
			if late := finish - deadline; late > st.MaxLateness {
				st.MaxLateness = late
			}
		}
	}
	if st.MaxLateness > 1e-9*p.BatchLatency {
		st.Sustainable = false
	} else {
		st.MaxLateness = 0
	}
	st.MeanLatency = latSum.Sum() / float64(batches)
	return st, nil
}

// MinSustainablePeriod verifies SustainablePeriod by simulation: it
// returns the smallest period (within rtol) for which simulating
// `batches` arrivals is sustainable, found by bisection between
// SustainablePeriod/2 and 2×SustainablePeriod.
func (p *Plan) MinSustainablePeriod(batches int, rtol float64) (float64, error) {
	lo, hi := p.SustainablePeriod/2, p.SustainablePeriod*2
	ok := func(period float64) bool {
		st, err := p.SimulateArrivals(period, batches)
		return err == nil && st.Sustainable
	}
	if ok(lo) {
		return lo, nil
	}
	if !ok(hi) {
		return 0, fmt.Errorf("pipeline: not sustainable even at twice the analytic period")
	}
	for hi-lo > rtol*hi {
		mid := lo + (hi-lo)/2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
