package oracle

import (
	"math"
	"testing"

	"repro/internal/genscen"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/solve"
)

// TestMatchesExactSubsetOnPerfectlyParallel: for perfectly parallel
// applications with unbounded footprints the closed-form subset
// enumeration (sched.ExactSubset) is optimal, so the oracle — which
// includes every subset closed form among its candidates — must agree
// with it, and the grid sweep must not "beat" it beyond float noise.
func TestMatchesExactSubsetOnPerfectlyParallel(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		in, err := genscen.Generate(genscen.ZeroWork, seed, genscen.Config{MinApps: 2, MaxApps: 5})
		if err != nil {
			t.Fatal(err)
		}
		exact, _, err := sched.ExactSubset(in.Platform, in.Apps)
		if err != nil {
			t.Fatalf("seed %d: exact: %v", seed, err)
		}
		sol, err := Solve(in.Platform, in.Apps, Options{Grid: 8})
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		if rel := solve.RelDiff(sol.Makespan, exact.Makespan); rel > 1e-9 {
			t.Errorf("seed %d: oracle %v vs exact-subset %v (rel %v)", seed, sol.Makespan, exact.Makespan, rel)
		}
	}
}

// TestNeverWorseThanHeuristics: the oracle's candidate set includes
// every dominant partition, so no dominant-partition heuristic can beat
// it on perfectly parallel, unbounded-footprint instances.
func TestNeverWorseThanHeuristics(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		in, err := genscen.Generate(genscen.ZeroWork, seed, genscen.Config{MinApps: 2, MaxApps: 5})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := Solve(in.Platform, in.Apps, Options{Grid: 4})
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		for _, h := range []sched.Heuristic{sched.DominantMinRatio, sched.DominantRevMaxRatio, sched.Fair, sched.ZeroCache} {
			s, err := h.Schedule(in.Platform, in.Apps, nil)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, h, err)
			}
			if s.Makespan < sol.Makespan*(1-1e-9) {
				t.Errorf("seed %d: %v makespan %v beats oracle %v", seed, h, s.Makespan, sol.Makespan)
			}
		}
	}
}

func TestSingleAppGetsEverything(t *testing.T) {
	pl := model.TaihuLight()
	apps := []model.Application{{
		Name: "solo", Work: 1e10, AccessFreq: 0.8,
		RefMissRate: 1e-2, RefCacheSize: 40e6,
	}}
	sol, err := Solve(pl, apps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Cache strictly helps this application, so the oracle must grant
	// the full cache and all processors.
	if sol.Shares[0] != 1 {
		t.Errorf("share %v, want 1", sol.Shares[0])
	}
	want := apps[0].Exe(pl, pl.Processors, 1)
	if rel := solve.RelDiff(sol.Makespan, want); rel > 1e-9 {
		t.Errorf("makespan %v, want %v", sol.Makespan, want)
	}
}

func TestZeroFreqAppIgnoresCache(t *testing.T) {
	pl := model.TaihuLight()
	apps := []model.Application{
		{Name: "compute", Work: 1e10, AccessFreq: 0, RefMissRate: 0.5, RefCacheSize: 40e6},
		{Name: "memory", Work: 1e10, AccessFreq: 0.9, RefMissRate: 1e-2, RefCacheSize: 40e6},
	}
	sol, err := Solve(pl, apps, Options{Grid: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Cache is worthless to the zero-frequency app; granting it any
	// would waste share the memory-bound app can use.
	if sol.Shares[0] != 0 {
		t.Errorf("compute app got share %v, want 0", sol.Shares[0])
	}
	if sol.Shares[1] != 1 {
		t.Errorf("memory app got share %v, want 1", sol.Shares[1])
	}
}

func TestBounds(t *testing.T) {
	pl := model.TaihuLight()
	apps := make([]model.Application, 11)
	for i := range apps {
		apps[i] = model.Application{Name: "a", Work: 1e9, AccessFreq: 0.5, RefMissRate: 1e-2, RefCacheSize: 40e6}
	}
	if _, err := Solve(pl, apps, Options{}); err == nil {
		t.Fatal("11 apps over the default bound accepted")
	}
	if _, err := Solve(pl, apps[:2], Options{Grid: 1 << 22}); err == nil {
		t.Fatal("absurd grid accepted")
	}
	if _, err := Solve(pl, nil, Options{}); err == nil {
		t.Fatal("empty instance accepted")
	}
}

func TestCandidateCountsReported(t *testing.T) {
	pl := model.TaihuLight()
	apps := []model.Application{
		{Name: "a", Work: 1e9, AccessFreq: 0.5, RefMissRate: 1e-2, RefCacheSize: 40e6},
		{Name: "b", Work: 2e9, AccessFreq: 0.7, RefMissRate: 5e-3, RefCacheSize: 40e6},
	}
	sol, err := Solve(pl, apps, Options{Grid: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 2^2 subsets + C(2+4, 2) = 15 grid points.
	if want := 4 + 15; sol.Candidates != want {
		t.Errorf("candidates %d, want %d", sol.Candidates, want)
	}
	subsetOnly, err := Solve(pl, apps, Options{Grid: -1})
	if err != nil {
		t.Fatal(err)
	}
	if subsetOnly.Candidates != 4 {
		t.Errorf("subset-only candidates %d, want 4", subsetOnly.Candidates)
	}
}

func TestGap(t *testing.T) {
	cases := []struct{ h, o, want float64 }{
		{10, 5, 2},
		{5, 5, 1},
		{4, 5, 0.8},
		{0, 0, 1},
		{1, 0, math.Inf(1)},
	}
	for _, c := range cases {
		if got := Gap(c.h, c.o); got != c.want {
			t.Errorf("Gap(%v, %v) = %v, want %v", c.h, c.o, got, c.want)
		}
	}
}
