// Package oracle is a brute-force exact solver for small CoSchedCache
// instances, the ground truth of the conformance harness.
//
// It enumerates two candidate sets of cache-share vectors and keeps the
// one with the smallest equalized makespan:
//
//   - every subset IC ⊆ I with the closed-form shares of Lemma 4
//     (x_i = weight_i / Σ_{IC} weight_j). For perfectly parallel
//     applications with unbounded footprints this family contains the
//     true optimum (Theorems 2–3), so the oracle IS the optimum there;
//   - every discretized share vector x_i = k_i/G with Σ k_i ≤ G on a
//     G-step grid, which bounds the optimum within O(1/G) share
//     granularity for general Amdahl profiles and bounded footprints
//     where no closed form applies.
//
// Each candidate is completed into a full schedule with the same
// equalizer the production heuristics use, and the winner's analytic
// makespan is cross-checked against internal/sim's discrete-event
// execution — a solver bug that produces an inconsistent schedule is
// caught here rather than silently mis-grading the heuristics.
//
// Complexity is exponential (2^n subsets, C(n+G, n) grid points); the
// solver refuses instances beyond MaxApps so it can only be pointed at
// the small instances it is meant for.
package oracle

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/solve"
)

// Options parameterizes the enumeration.
type Options struct {
	// Grid is the number of discretization steps G per unit of cache
	// (shares are multiples of 1/G). Zero defaults to 8; negative
	// disables the grid sweep (subset closed forms only).
	Grid int
	// MaxApps bounds the instance size; zero defaults to 10.
	MaxApps int
}

func (o Options) normalize() (grid, maxApps int) {
	grid = o.Grid
	if grid == 0 {
		grid = 8
	}
	maxApps = o.MaxApps
	if maxApps == 0 {
		maxApps = 10
	}
	return grid, maxApps
}

// maxCandidates caps the total enumeration size so a misconfigured
// caller fails fast instead of burning CPU for hours.
const maxCandidates = 1 << 20

// Solution is the oracle's answer for one instance.
type Solution struct {
	// Schedule is the best schedule found (equalized processors over the
	// winning share vector).
	Schedule *sched.Schedule
	// Shares is the winning cache-share vector.
	Shares []float64
	// Makespan is the winning schedule's analytic makespan (identical to
	// Schedule.Makespan, hoisted for convenience).
	Makespan float64
	// SimMakespan is the makespan observed by executing the winning
	// schedule in internal/sim — the independent cross-check.
	SimMakespan float64
	// Candidates counts the share vectors evaluated.
	Candidates int
}

// simTol is the allowed relative disagreement between the analytic
// makespan and the simulated one (both derive from the same Exe model;
// the slack covers the equalizer's bisection tolerance).
const simTol = 1e-6

// Solve enumerates candidate partitions for the instance and returns
// the best schedule found. The returned makespan upper-bounds the
// optimal makespan of the instance; for perfectly parallel applications
// with unbounded footprints it equals the optimum.
func Solve(pl model.Platform, apps []model.Application, opt Options) (*Solution, error) {
	if err := model.ValidateAll(pl, apps); err != nil {
		return nil, err
	}
	grid, maxApps := opt.normalize()
	n := len(apps)
	if n > maxApps {
		return nil, fmt.Errorf("oracle: %d applications exceed the enumeration bound %d", n, maxApps)
	}
	if c := countCandidates(n, grid); c > maxCandidates {
		return nil, fmt.Errorf("oracle: %d candidates exceed the %d cap (lower Grid or MaxApps)", c, maxCandidates)
	}

	best := &Solution{Makespan: math.Inf(1)}
	consider := func(shares []float64) {
		best.Candidates++
		procs, _, err := sched.EqualizeAmdahl(pl, apps, shares)
		if err != nil {
			// Infeasible share vectors (can't happen for Σx ≤ 1, but the
			// equalizer owns that judgment) simply don't compete.
			return
		}
		// The honest objective: the max completion time under the Exe
		// model, not the equalizer's target K (they differ by bisection
		// slack, and the schedules are graded by the former everywhere
		// else in the repository).
		m := 0.0
		for i, a := range apps {
			m = math.Max(m, a.Exe(pl, procs[i], shares[i]))
		}
		if math.IsNaN(m) {
			return
		}
		if m < best.Makespan || (m == best.Makespan && lexLess(shares, best.Shares)) {
			asg := make([]sched.Assignment, n)
			for i := range asg {
				asg[i] = sched.Assignment{Processors: procs[i], CacheShare: shares[i]}
			}
			best.Schedule = &sched.Schedule{Assignments: asg, Makespan: m}
			best.Shares = append([]float64(nil), shares...)
			best.Makespan = m
		}
	}

	// Candidate family 1: closed-form shares of every subset.
	members := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			members[i] = mask&(1<<i) != 0
		}
		part, err := core.NewPartition(pl, apps, members)
		if err != nil {
			return nil, err
		}
		consider(part.Shares())
	}

	// Candidate family 2: the discretized grid Σ k_i ≤ G, x_i = k_i/G.
	if grid > 0 {
		shares := make([]float64, n)
		ks := make([]int, n)
		var walk func(i, left int)
		walk = func(i, left int) {
			if i == n {
				for j, k := range ks {
					shares[j] = float64(k) / float64(grid)
				}
				consider(shares)
				return
			}
			for k := 0; k <= left; k++ {
				ks[i] = k
				walk(i+1, left-k)
			}
		}
		walk(0, grid)
	}

	if best.Schedule == nil {
		return nil, fmt.Errorf("oracle: no feasible candidate among %d", best.Candidates)
	}
	if err := best.Schedule.Validate(pl, apps); err != nil {
		return nil, fmt.Errorf("oracle: winning schedule invalid: %w", err)
	}
	res, err := sim.Execute(pl, apps, best.Schedule, sim.Static)
	if err != nil {
		return nil, fmt.Errorf("oracle: simulating winner: %w", err)
	}
	best.SimMakespan = res.Makespan
	if rel := solve.RelDiff(best.Makespan, best.SimMakespan); rel > simTol {
		return nil, fmt.Errorf("oracle: analytic makespan %v disagrees with simulated %v (rel %v)",
			best.Makespan, best.SimMakespan, rel)
	}
	return best, nil
}

// Gap grades a heuristic makespan against the oracle: values above 1
// are the optimality gap; values below 1 mean the heuristic beat the
// oracle's (grid- and closed-form-restricted) candidate set, which is
// legal for general Amdahl instances and a solver bug for instances
// where the oracle is exact.
func Gap(heuristic, oracle float64) float64 {
	if oracle <= 0 {
		if heuristic <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return heuristic / oracle
}

// countCandidates returns 2^n + C(n+grid, n), saturating at
// maxCandidates+1.
func countCandidates(n, grid int) int {
	total := 1 << n
	if grid > 0 {
		// C(n+grid, n) ≥ grid+1 for n ≥ 1, so a grid beyond the cap
		// saturates immediately — before the incremental product below
		// could overflow int on absurd grid values.
		if grid > maxCandidates {
			return maxCandidates + 1
		}
		// C(n+grid, grid) computed incrementally with overflow saturation.
		c := 1
		for i := 1; i <= n; i++ {
			c = c * (grid + i) / i
			if c > maxCandidates {
				return maxCandidates + 1
			}
		}
		total += c
	}
	if total > maxCandidates {
		return maxCandidates + 1
	}
	return total
}

// lexLess orders share vectors lexicographically for deterministic tie
// breaking; nil compares greater than everything.
func lexLess(a, b []float64) bool {
	if b == nil {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
