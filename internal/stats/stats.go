// Package stats provides the summary statistics and series containers
// used by the experiment harness: mean, standard deviation, extrema,
// quantiles, confidence intervals and series normalization.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/solve"
)

// ErrEmpty is returned by statistics that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Summary condenses a sample into the moments and extrema the paper's
// error-bar plots use.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	var sum solve.Kahan
	mn, mx := xs[0], xs[0]
	for _, x := range xs {
		sum.Add(x)
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	mean := sum.Sum() / float64(len(xs))
	var sq solve.Kahan
	for _, x := range xs {
		d := x - mean
		sq.Add(d * d)
	}
	sd := 0.0
	if len(xs) > 1 {
		sd = math.Sqrt(sq.Sum() / float64(len(xs)-1))
	}
	return Summary{N: len(xs), Mean: mean, Stddev: sd, Min: mn, Max: mx}, nil
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return solve.Sum(xs) / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the common default).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	h := q * float64(len(s)-1)
	i := int(math.Floor(h))
	if i >= len(s)-1 {
		return s[len(s)-1], nil
	}
	frac := h - float64(i)
	return s[i] + frac*(s[i+1]-s[i]), nil
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval on the mean of xs (1.96·s/√n), or 0 for samples of size < 2.
func CI95(xs []float64) float64 {
	s, err := Summarize(xs)
	if err != nil || s.N < 2 {
		return 0
	}
	return 1.96 * s.Stddev / math.Sqrt(float64(s.N))
}

// Point is one aggregated measurement at a sweep position.
type Point struct {
	X       float64 // sweep coordinate (n, p, s_i, ls, miss rate, …)
	Summary Summary
}

// Series is a named sequence of points, one heuristic's curve in a
// figure.
type Series struct {
	Name   string
	Points []Point
}

// At returns the point with coordinate x, or false when absent.
func (s *Series) At(x float64) (Point, bool) {
	for _, pt := range s.Points {
		if pt.X == x {
			return pt, true
		}
	}
	return Point{}, false
}

// Normalize returns a copy of s with every mean/min/max divided by the
// matching-coordinate mean of base (the paper normalizes every figure to
// either AllProcCache or DominantMinRatio). Points whose coordinate is
// missing from base, or whose base mean is zero, are dropped.
func (s *Series) Normalize(base *Series) *Series {
	out := &Series{Name: s.Name}
	for _, pt := range s.Points {
		b, ok := base.At(pt.X)
		if !ok || b.Summary.Mean == 0 {
			continue
		}
		d := b.Summary.Mean
		pt.Summary.Mean /= d
		pt.Summary.Stddev /= d
		pt.Summary.Min /= d
		pt.Summary.Max /= d
		out.Points = append(out.Points, pt)
	}
	return out
}

// Median returns the middle value of xs (the mean of the two middle
// values for even lengths), or NaN for an empty sample. xs is not
// modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation of xs — the robust spread
// estimate gating benchmark comparisons and ledger margin summaries —
// or NaN for an empty sample. A single sample or an all-equal sample
// has MAD 0.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return Median(dev)
}

// GeoMean returns the geometric mean of positive samples; zero or
// negative entries yield NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logs solve.Kahan
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logs.Add(math.Log(x))
	}
	return math.Exp(logs.Sum() / float64(len(xs)))
}
