package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/solve"
)

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("got %v", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 1 || s.Mean != 42 || s.Stddev != 0 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("%+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 5 {
		t.Fatalf("mean %v", s.Mean)
	}
	// Sample stddev with n-1: variance = 32/7.
	want := math.Sqrt(32.0 / 7)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Fatalf("stddev %v, want %v", s.Stddev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("extrema %v %v", s.Min, s.Max)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Q(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	got, _ := Quantile([]float64{0, 10}, 0.3)
	if math.Abs(got-3) > 1e-12 {
		t.Fatalf("interpolated quantile %v, want 3", got)
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatal("empty accepted")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("q > 1 accepted")
	}
	// Input must not be mutated (sorted copy).
	unsorted := []float64{3, 1, 2}
	if _, err := Quantile(unsorted, 0.5); err != nil {
		t.Fatal(err)
	}
	if unsorted[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestCI95(t *testing.T) {
	if ci := CI95([]float64{5}); ci != 0 {
		t.Fatalf("single-sample CI %v", ci)
	}
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s, _ := Summarize(xs)
	want := 1.96 * s.Stddev / math.Sqrt(10)
	if ci := CI95(xs); math.Abs(ci-want) > 1e-12 {
		t.Fatalf("CI %v, want %v", ci, want)
	}
}

func TestSeriesAt(t *testing.T) {
	s := Series{Name: "a", Points: []Point{{X: 1, Summary: Summary{Mean: 10}}, {X: 2, Summary: Summary{Mean: 20}}}}
	if p, ok := s.At(2); !ok || p.Summary.Mean != 20 {
		t.Fatal("At(2) failed")
	}
	if _, ok := s.At(3); ok {
		t.Fatal("At(3) found a ghost")
	}
}

func TestNormalize(t *testing.T) {
	base := Series{Name: "base", Points: []Point{
		{X: 1, Summary: Summary{Mean: 10}},
		{X: 2, Summary: Summary{Mean: 20}},
	}}
	s := Series{Name: "s", Points: []Point{
		{X: 1, Summary: Summary{Mean: 5, Min: 4, Max: 6, Stddev: 1}},
		{X: 2, Summary: Summary{Mean: 10, Min: 9, Max: 11, Stddev: 2}},
		{X: 3, Summary: Summary{Mean: 99}}, // no base point: dropped
	}}
	n := s.Normalize(&base)
	if len(n.Points) != 2 {
		t.Fatalf("%d points survived", len(n.Points))
	}
	if n.Points[0].Summary.Mean != 0.5 || n.Points[1].Summary.Mean != 0.5 {
		t.Fatalf("normalized means %+v", n.Points)
	}
	if n.Points[0].Summary.Min != 0.4 || n.Points[0].Summary.Max != 0.6 {
		t.Fatal("extrema not normalized")
	}
	// Base series unchanged.
	if base.Points[0].Summary.Mean != 10 {
		t.Fatal("Normalize mutated base")
	}
}

func TestNormalizeZeroBaseDropped(t *testing.T) {
	base := Series{Name: "base", Points: []Point{{X: 1, Summary: Summary{Mean: 0}}}}
	s := Series{Name: "s", Points: []Point{{X: 1, Summary: Summary{Mean: 5}}}}
	if n := s.Normalize(&base); len(n.Points) != 0 {
		t.Fatal("zero-base point not dropped")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-12 {
		t.Fatalf("geomean %v", g)
	}
	if !math.IsNaN(GeoMean(nil)) || !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("invalid inputs should give NaN")
	}
}

// Property: Summarize invariants Min ≤ Mean ≤ Max and Stddev ≥ 0.
func TestSummarizeInvariants(t *testing.T) {
	f := func(seed uint64, nPick uint8) bool {
		r := solve.NewRNG(seed)
		n := 1 + int(nPick)%100
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 1e6
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Stddev >= 0 && s.N == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile is monotone in q.
func TestQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := solve.NewRNG(seed)
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v, err := Quantile(xs, q)
			if err != nil || v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Edge cases the benchgate and ledger margin paths lean on: a single
// sample is its own median with zero spread; an all-equal sample has
// zero spread regardless of length.
func TestMedianMADEdgeCases(t *testing.T) {
	if !math.IsNaN(Median(nil)) || !math.IsNaN(MAD(nil)) {
		t.Fatal("empty sample must yield NaN")
	}
	if got := Median([]float64{42}); got != 42 {
		t.Fatalf("single-sample median = %v, want 42", got)
	}
	if got := MAD([]float64{42}); got != 0 {
		t.Fatalf("single-sample MAD = %v, want 0", got)
	}
	for n := 1; n <= 9; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = -3.5
		}
		if got := Median(xs); got != -3.5 {
			t.Fatalf("all-equal median (n=%d) = %v, want -3.5", n, got)
		}
		if got := MAD(xs); got != 0 {
			t.Fatalf("all-equal MAD (n=%d) = %v, want 0", n, got)
		}
	}
	// Odd length: the middle order statistic, untouched by its
	// neighbors. Even length: the mean of the two middle values.
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Fatalf("odd-length median = %v, want 5", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even-length median = %v, want 2.5", got)
	}
}

// Property: Median is order-invariant, bounded by the extrema, and for
// odd lengths is an element of the sample; MAD is non-negative and
// invariant under translation.
func TestMedianMADProperties(t *testing.T) {
	f := func(seed uint64, nPick uint8) bool {
		r := solve.NewRNG(seed)
		n := 1 + int(nPick)%50
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 1e3
		}
		med := Median(xs)
		// Order invariance: reverse and compare bit-for-bit.
		rev := make([]float64, n)
		for i, x := range xs {
			rev[n-1-i] = x
		}
		if Median(rev) != med {
			return false
		}
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		if med < mn || med > mx {
			return false
		}
		if n%2 == 1 {
			found := false
			for _, x := range xs {
				if x == med {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		mad := MAD(xs)
		if mad < 0 {
			return false
		}
		shifted := make([]float64, n)
		for i, x := range xs {
			shifted[i] = x + 1000
		}
		return math.Abs(MAD(shifted)-mad) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
