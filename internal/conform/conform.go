// Package conform is the differential-testing conformance harness: it
// drives every scheduling layer of the repository — the static
// heuristics (internal/sched), the concurrent portfolio engine
// (internal/portfolio), the discrete-event online simulator
// (internal/des) and the static executor (internal/sim) — from
// identical seeded scenarios (internal/genscen) and cross-checks them
// against each other and against the brute-force oracle
// (internal/oracle).
//
// Checks per scenario:
//
//   - worker-determinism: the portfolio report is bit-identical at one
//     worker and at many;
//   - sched-vs-portfolio: the engine's result for every deterministic
//     heuristic equals a direct sched call, bit-for-bit;
//   - best-certification: the portfolio's BestSchedule is never worse
//     than any single feasible heuristic;
//   - oracle: the optimality gap of the portfolio winner against the
//     brute-force bound; on oracle-exact families a gap below 1 is
//     itself a violation;
//   - scaling (metamorphic): multiplying every work value by 4 must
//     scale every heuristic's makespan by exactly 4 (up to float
//     tolerance);
//   - permutation (metamorphic): shuffling the application slice must
//     not change any deterministic heuristic's makespan;
//   - cache-monotonicity (metamorphic): doubling the cache must not
//     worsen a fixed-share schedule, nor the oracle bound;
//   - des-static: the online simulator with every job at t = 0 and a
//     frozen wave policy reproduces internal/sim bit-for-bit;
//   - des-online: the online simulator under the portfolio policy with
//     staggered arrivals is bit-identical across policy worker counts.
//
// Every scenario also contributes to a per-family digest — a canonical
// hash of all schedules produced — which is compared against a
// committed golden corpus, turning any behavioral drift of any layer
// into a test failure (see the Golden type in report.go).
package conform

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/des"
	"repro/internal/genscen"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/portfolio"
	"repro/internal/sched"
	"repro/internal/selector"
	"repro/internal/sim"
	"repro/internal/solve"
)

// relTol is the relative tolerance of the metamorphic checks: exact in
// theory, but summation order and bisection endpoints shift by a few
// ulps across transformed instances.
const relTol = 1e-9

// Options parameterizes a harness run.
type Options struct {
	// Seeds is the number of scenarios per family; seed values are
	// BaseSeed, BaseSeed+1, … Zero defaults to 10.
	Seeds int
	// BaseSeed is the first seed; `-seed N -seeds 1` reproduces exactly
	// scenario N. Zero is a valid seed (the CLI defaults to 1).
	BaseSeed uint64
	// Families to generate; nil means all.
	Families []genscen.Family
	// Workers is the parallel arm of the determinism checks (portfolio
	// engine pool and online policy pool). Zero defaults to 8.
	Workers int
	// Grid is the oracle's share-discretization step count (default 6).
	Grid int
	// OracleMaxApps bounds the instances handed to the brute-force
	// oracle (default 5); larger instances skip the oracle check only.
	OracleMaxApps int
	// Gen bounds generated instance sizes.
	Gen genscen.Config
	// Metrics, when non-nil, instruments every layer the harness drives
	// (both portfolio engines and all DES runs) on this registry. The
	// report and its digests are identical with and without it — that
	// invariance is itself a conformance property, pinned by
	// TestMetricsInvariantDigests.
	Metrics *obs.Registry
	// Selector, when non-nil, adds the learned-selection check to every
	// scenario: the ledger-driven selector (internal/selector through
	// portfolio.SelectorPolicy, audit mode) decides each scenario on the
	// serial and the parallel engine, the two decisions must be
	// bit-identical — selection is a pure function of (ledger, scenario),
	// never of worker count — and a served prediction's audited
	// optimality gap against the full race must stay within
	// SelectorGapBound on oracle-exact families. The ledger is read-only
	// here (the harness never learns), and the scenario digests are
	// selector-invariant by construction, so a selector run checks
	// against the same golden corpus as a plain one.
	Selector *selector.Ledger
	// SelectorGapBound caps the audited gap of served predictions on
	// oracle-exact families; 0 means DefaultSelectorGapBound.
	SelectorGapBound float64
}

func (o Options) normalized() Options {
	if o.Seeds <= 0 {
		// Zero means "default"; negative would silently produce a
		// vacuous zero-scenario run (and could bake an empty golden
		// corpus), so it defaults too. The CLI rejects it outright.
		o.Seeds = 10
	}
	if len(o.Families) == 0 {
		o.Families = append([]genscen.Family(nil), genscen.Families...)
	}
	if o.Workers == 0 {
		o.Workers = 8
	}
	if o.Grid == 0 {
		o.Grid = 6
	}
	if o.OracleMaxApps == 0 {
		o.OracleMaxApps = 5
	}
	if o.SelectorGapBound == 0 {
		o.SelectorGapBound = DefaultSelectorGapBound
	}
	return o
}

// Violation is one failed cross-check.
type Violation struct {
	Family string `json:"family"`
	Seed   uint64 `json:"seed"`
	Check  string `json:"check"`
	Detail string `json:"detail"`
}

// FamilyResult aggregates one family's scenarios.
type FamilyResult struct {
	Family     string  `json:"family"`
	Scenarios  int     `json:"scenarios"`
	OracleRuns int     `json:"oracleRuns"`
	GapMin     float64 `json:"gapMin"`
	GapGeoMean float64 `json:"gapGeoMean"`
	GapMax     float64 `json:"gapMax"`
	Digest     string  `json:"digest"`
	// Replan aggregates the online runs' delta-rescheduling telemetry
	// across the family's scenarios (reference 1-worker arm). It rides
	// along in the NDJSON report but stays out of the golden corpus,
	// which stores digests only.
	Replan     des.ReplanStats `json:"replan"`
	Violations []Violation     `json:"violations,omitempty"`
	// Selector summarizes the family's learned-selection decisions; nil
	// unless the run had a ledger (Options.Selector). Like Replan it
	// rides along in the report and stays out of the golden corpus.
	Selector *SelectorSummary `json:"selector,omitempty"`
}

// Report is the outcome of one harness run.
type Report struct {
	Seeds         int            `json:"seeds"`
	BaseSeed      uint64         `json:"baseSeed"`
	Workers       int            `json:"workers"`
	Grid          int            `json:"grid"`
	OracleMaxApps int            `json:"oracleMaxApps"`
	MinApps       int            `json:"minApps"`
	MaxApps       int            `json:"maxApps"`
	Families      []FamilyResult `json:"families"`
}

// ReplanTotals sums the per-family delta-rescheduling telemetry.
func (r *Report) ReplanTotals() des.ReplanStats {
	var t des.ReplanStats
	for _, f := range r.Families {
		t.Add(f.Replan)
	}
	return t
}

// ViolationCount totals violations across families.
func (r *Report) ViolationCount() int {
	n := 0
	for _, f := range r.Families {
		n += len(f.Violations)
	}
	return n
}

// Digests returns the per-family digest map (family name → hex).
func (r *Report) Digests() map[string]string {
	m := make(map[string]string, len(r.Families))
	for _, f := range r.Families {
		m[f.Family] = f.Digest
	}
	return m
}

// Run executes the harness and returns its report. The report is a
// pure function of the options: digests are bit-stable across runs and
// across Workers settings (that stability is itself one of the checks).
func Run(opt Options) (*Report, error) {
	return RunContext(context.Background(), opt)
}

// RunContext is Run under a context: the sweep polls ctx before every
// (family, seed) scenario and stops with ctx.Err() once cancelled, so a
// Ctrl-C'd conformance run exits within one scenario instead of
// finishing the whole corpus.
func RunContext(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.normalized()
	serial := portfolio.New(portfolio.Config{Workers: 1, Metrics: portfolio.NewMetrics(opt.Metrics)})
	parallel := portfolio.New(portfolio.Config{Workers: opt.Workers, Metrics: portfolio.NewMetrics(opt.Metrics)})
	rep := &Report{
		Seeds:         opt.Seeds,
		BaseSeed:      opt.BaseSeed,
		Workers:       opt.Workers,
		Grid:          opt.Grid,
		OracleMaxApps: opt.OracleMaxApps,
		MinApps:       opt.Gen.MinApps,
		MaxApps:       opt.Gen.MaxApps,
	}
	for _, fam := range opt.Families {
		fr := FamilyResult{Family: fam.String(), GapMin: math.Inf(1)}
		famHash := sha256.New()
		var gapLogSum float64
		var sel selAccum
		for i := 0; i < opt.Seeds; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			seed := opt.BaseSeed + uint64(i)
			in, err := genscen.Generate(fam, seed, opt.Gen)
			if err != nil {
				return nil, err
			}
			sr, err := runScenario(in, opt, serial, parallel)
			if err != nil {
				return nil, fmt.Errorf("conform: %s seed %d: %w", fam, seed, err)
			}
			fr.Scenarios++
			famHash.Write([]byte(sr.digest))
			fr.Replan.Add(sr.replan)
			fr.Violations = append(fr.Violations, sr.violations...)
			sel.add(sr.selector)
			if sr.gap > 0 {
				fr.OracleRuns++
				fr.GapMin = math.Min(fr.GapMin, sr.gap)
				fr.GapMax = math.Max(fr.GapMax, sr.gap)
				gapLogSum += math.Log(sr.gap)
			}
		}
		if fr.OracleRuns > 0 {
			fr.GapGeoMean = math.Exp(gapLogSum / float64(fr.OracleRuns))
		} else {
			fr.GapMin = 0
		}
		fr.Digest = hex.EncodeToString(famHash.Sum(nil))
		if opt.Selector != nil {
			fr.Selector = sel.summary()
		}
		rep.Families = append(rep.Families, fr)
	}
	return rep, nil
}

// scenarioResult is the outcome of one (family, seed) scenario.
type scenarioResult struct {
	digest     string
	gap        float64 // portfolio-best / oracle; 0 when the oracle was skipped
	replan     des.ReplanStats
	violations []Violation
	selector   *selDecision // nil unless the run had a ledger
}

// runScenario executes every check on one instance. It returns an
// error only for harness-level failures (generation, simulation
// refusing to run); cross-check disagreements land in violations.
func runScenario(in *genscen.Instance, opt Options, serial, parallel *portfolio.Engine) (*scenarioResult, error) {
	sr := &scenarioResult{}
	flag := func(check, format string, args ...any) {
		sr.violations = append(sr.violations, Violation{
			Family: in.Family.String(), Seed: in.Seed,
			Check: check, Detail: fmt.Sprintf(format, args...),
		})
	}

	// Portfolio at one worker is the reference arm everything else is
	// compared against.
	repS, err := serial.Evaluate(in.PortfolioScenario(nil))
	if err != nil {
		return nil, err
	}
	ds := reportDigest(repS)

	// worker-determinism: bit-identical reports across pool sizes. At
	// Workers == 1 the comparison would race a 1-worker pool against
	// itself — pure double cost, zero signal — so it is skipped.
	if opt.Workers > 1 {
		repP, err := parallel.Evaluate(in.PortfolioScenario(nil))
		if err != nil {
			return nil, err
		}
		if dp := reportDigest(repP); ds != dp {
			flag("worker-determinism", "portfolio report differs between 1 and %d workers", opt.Workers)
		}
	}

	// heuristic errors: every heuristic must schedule a valid instance.
	for _, res := range repS.Results {
		if res.Err != nil {
			flag("heuristic-error", "%v: %v", res.Heuristic, res.Err)
		}
	}

	// sched-vs-portfolio: deterministic heuristics must match a direct
	// sched call bit-for-bit (the engine adds routing and caching, never
	// arithmetic).
	for _, res := range repS.Results {
		if res.Heuristic.Randomized() || res.Err != nil {
			continue
		}
		direct, err := res.Heuristic.Schedule(in.Platform, in.CloneApps(), nil)
		if err != nil {
			flag("sched-vs-portfolio", "%v: direct call failed: %v", res.Heuristic, err)
			continue
		}
		if d1, d2 := scheduleDigest(direct), scheduleDigest(res.Schedule); d1 != d2 {
			flag("sched-vs-portfolio", "%v: engine schedule differs from direct sched call", res.Heuristic)
		}
	}

	// best-certification: the winner is never worse than any feasible
	// single heuristic.
	best := repS.BestResult()
	if best == nil {
		flag("best-certification", "no feasible heuristic")
		// Same digest shape as the main path (sha256 hex), just without
		// the oracle/des components this scenario never produced.
		sum := sha256.Sum256([]byte(ds))
		sr.digest = hex.EncodeToString(sum[:])
		return sr, nil
	}
	for _, res := range repS.Results {
		if res.Err == nil && res.Schedule != nil && !math.IsNaN(res.Schedule.Makespan) &&
			res.Schedule.Makespan < best.Schedule.Makespan {
			flag("best-certification", "%v makespan %v beats BestSchedule %v",
				res.Heuristic, res.Schedule.Makespan, best.Schedule.Makespan)
		}
	}

	// oracle: brute-force bound and optimality gap on small instances.
	// The oracle enumerates *concurrent* co-schedules (the paper's
	// CoSchedCache space), so it is graded against the best concurrent
	// heuristic; the sequential AllProcCache baseline legitimately
	// escapes the space (and the bound) on cache-starved instances.
	oracleDigest := "oracle:skip"
	var oracleMakespan float64
	oracleRan := false
	bestConcurrent := math.Inf(1)
	for _, res := range repS.Results {
		if res.Err == nil && res.Schedule != nil && !res.Schedule.Sequential &&
			!math.IsNaN(res.Schedule.Makespan) && res.Schedule.Makespan < bestConcurrent {
			bestConcurrent = res.Schedule.Makespan
		}
	}
	if len(in.Apps) <= opt.OracleMaxApps {
		sol, err := oracle.Solve(in.Platform, in.Apps, oracle.Options{Grid: opt.Grid, MaxApps: opt.OracleMaxApps})
		if err != nil {
			flag("oracle", "solve failed: %v", err)
		} else {
			oracleRan = true
			oracleMakespan = sol.Makespan
			oracleDigest = "oracle:" + hexFloat(sol.Makespan)
			// With no feasible concurrent heuristic the gap is undefined
			// (+Inf would also break JSON encoding downstream); the
			// heuristic-error check has already flagged the cause.
			if g := oracle.Gap(bestConcurrent, sol.Makespan); !math.IsInf(g, 0) && !math.IsNaN(g) {
				sr.gap = g
				if in.Family.OracleExact() && g < 1-relTol {
					flag("oracle", "best concurrent makespan %v beats the exact optimum %v (gap %v)",
						bestConcurrent, sol.Makespan, g)
				}
			}
		}
	}

	checkScaling(in, serial, repS, flag)
	checkPermutation(in, serial, repS, flag)
	checkCacheMonotonicity(in, opt, best, oracleRan, oracleMakespan, flag)

	desDigest, err := checkDESStatic(in, opt, flag)
	if err != nil {
		return nil, err
	}
	onlineDig, replan, err := checkDESOnline(in, opt, best.Schedule.Makespan, flag)
	if err != nil {
		return nil, err
	}
	sr.replan = replan

	// Learned selection rides alongside the digest, never inside it: a
	// selector run must stay comparable to the plain golden corpus.
	if opt.Selector != nil {
		sr.selector, err = checkSelector(in, opt, serial, parallel, flag)
		if err != nil {
			return nil, err
		}
	}

	// The online event log participates in the digest (hashed from the
	// 1-worker run, so the digest stays worker-invariant): a behavioral
	// change in the online simulator that is consistent across pool
	// sizes still fails the golden gate.
	sum := sha256.Sum256([]byte(ds + "\n" + oracleDigest + "\n" + desDigest + "\n" + onlineDig))
	sr.digest = hex.EncodeToString(sum[:])
	return sr, nil
}

// checkScaling: Work → 4·Work must scale every makespan by exactly 4.
// The factor is a power of two, so in exact terms every intermediate
// float scales by an exponent shift; the tolerance covers bisection
// endpoint drift. Randomized heuristics are included — the scenario
// seed is unchanged and dominance-ratio *orderings* are scale
// invariant, so they make identical decisions.
func checkScaling(in *genscen.Instance, eng *portfolio.Engine, base *portfolio.Report, flag func(string, string, ...any)) {
	const lambda = 4.0
	scaled := in.CloneApps()
	for i := range scaled {
		scaled[i].Work *= lambda
	}
	sc := in.PortfolioScenario(nil)
	sc.Apps = scaled
	rep, err := eng.Evaluate(sc)
	if err != nil {
		flag("scaling", "scaled evaluation failed: %v", err)
		return
	}
	for i, res := range rep.Results {
		b := base.Results[i]
		if res.Err != nil || b.Err != nil {
			if (res.Err == nil) != (b.Err == nil) {
				flag("scaling", "%v: feasibility changed under time scaling", res.Heuristic)
			}
			continue
		}
		if rel := solve.RelDiff(res.Schedule.Makespan, lambda*b.Schedule.Makespan); rel > relTol {
			flag("scaling", "%v: makespan %v not 4x base %v (rel %v)",
				res.Heuristic, res.Schedule.Makespan, b.Schedule.Makespan, rel)
		}
	}
}

// checkPermutation: shuffling the application slice must leave every
// deterministic heuristic's makespan unchanged (sorts and tie-breaks
// must key on values, not input positions). Randomized heuristics are
// exempt by design: their seed-derived choices attach to positions so
// that a fixed seed reproduces a fixed schedule.
func checkPermutation(in *genscen.Instance, eng *portfolio.Engine, base *portfolio.Report, flag func(string, string, ...any)) {
	n := len(in.Apps)
	if n < 2 {
		return
	}
	perm := solve.NewRNG(in.Seed ^ 0xA5A5A5A5A5A5A5A5).Perm(n)
	permuted := make([]model.Application, n)
	for i, j := range perm {
		permuted[i] = in.Apps[j]
	}
	hs := sched.DeterministicHeuristics
	sc := in.PortfolioScenario(hs)
	sc.Apps = permuted
	rep, err := eng.Evaluate(sc)
	if err != nil {
		flag("permutation", "permuted evaluation failed: %v", err)
		return
	}
	byHeuristic := make(map[sched.Heuristic]*sched.Schedule)
	for _, res := range base.Results {
		if res.Err == nil {
			byHeuristic[res.Heuristic] = res.Schedule
		}
	}
	for _, res := range rep.Results {
		b, ok := byHeuristic[res.Heuristic]
		if res.Err != nil || !ok {
			// Feasibility must be order-independent in both directions:
			// failing only on the permuted order, or only on the base
			// order, are equally order-dependent behaviors.
			if res.Err != nil && ok {
				flag("permutation", "%v: failed on permuted input: %v", res.Heuristic, res.Err)
			} else if res.Err == nil && !ok {
				flag("permutation", "%v: failed on base input but succeeded on permuted", res.Heuristic)
			}
			continue
		}
		if rel := solve.RelDiff(res.Schedule.Makespan, b.Makespan); rel > relTol {
			flag("permutation", "%v: makespan %v != %v under permutation (rel %v)",
				res.Heuristic, res.Schedule.Makespan, b.Makespan, rel)
		}
	}
}

// checkCacheMonotonicity: more cache never hurts — re-equalizing the
// winning shares on a doubled cache must not increase the makespan,
// and the oracle bound must not increase either.
func checkCacheMonotonicity(in *genscen.Instance, opt Options, best *portfolio.Result, oracleRan bool, oracleMakespan float64, flag func(string, string, ...any)) {
	if best.Schedule.Sequential {
		// AllProcCache won: fixed-share re-equalization doesn't apply to
		// a sequential schedule; the oracle arm below still runs.
	} else {
		shares := make([]float64, len(best.Schedule.Assignments))
		for i, a := range best.Schedule.Assignments {
			shares[i] = a.CacheShare
		}
		m1 := equalizedMakespan(in.Platform, in.Apps, shares)
		big := in.Platform
		big.CacheSize *= 2
		m2 := equalizedMakespan(big, in.Apps, shares)
		if m2 > m1*(1+relTol) {
			flag("cache-monotonicity", "fixed shares: makespan %v grew to %v on a doubled cache", m1, m2)
		}
	}
	if oracleRan {
		big := in.Platform
		big.CacheSize *= 2
		sol, err := oracle.Solve(big, in.Apps, oracle.Options{Grid: opt.Grid, MaxApps: opt.OracleMaxApps})
		if err != nil {
			flag("cache-monotonicity", "oracle on doubled cache failed: %v", err)
			return
		}
		if sol.Makespan > oracleMakespan*(1+relTol) {
			flag("cache-monotonicity", "oracle bound %v grew to %v on a doubled cache", oracleMakespan, sol.Makespan)
		}
	}
}

// equalizedMakespan completes fixed shares into a schedule and returns
// its honest makespan (+Inf when the equalizer refuses).
func equalizedMakespan(pl model.Platform, apps []model.Application, shares []float64) float64 {
	procs, _, err := sched.EqualizeAmdahl(pl, apps, shares)
	if err != nil {
		return math.Inf(1)
	}
	m := 0.0
	for i, a := range apps {
		m = math.Max(m, a.Exe(pl, procs[i], shares[i]))
	}
	return m
}

// checkDESStatic: the online engine with every job at t = 0 under the
// frozen wave policy must reproduce internal/sim's static execution of
// the same heuristic bit-for-bit — makespan, per-job finish times and
// the processor-time integral.
func checkDESStatic(in *genscen.Instance, opt Options, flag func(string, string, ...any)) (string, error) {
	const h = sched.DominantMinRatio
	s, err := h.Schedule(in.Platform, in.CloneApps(), nil)
	if err != nil {
		return "", fmt.Errorf("des-static reference schedule: %w", err)
	}
	want, err := sim.Execute(in.Platform, in.Apps, s, sim.Static)
	if err != nil {
		return "", fmt.Errorf("des-static sim: %w", err)
	}
	sc, err := in.StaticDES(h)
	if err != nil {
		return "", err
	}
	sc.Metrics = des.NewMetrics(opt.Metrics)
	got, err := des.Simulate(sc)
	if err != nil {
		return "", fmt.Errorf("des-static simulate: %w", err)
	}
	if got.Makespan != want.Makespan {
		flag("des-static", "makespan %v != sim %v", got.Makespan, want.Makespan)
	}
	for i := range in.Apps {
		if got.Jobs[i].Finish != want.FinishTimes[i] {
			flag("des-static", "job %d finish %v != sim %v", i, got.Jobs[i].Finish, want.FinishTimes[i])
		}
	}
	if got.ProcessorTime != want.ProcessorTime {
		flag("des-static", "processor time %v != sim %v", got.ProcessorTime, want.ProcessorTime)
	}
	return "des:" + hexFloat(got.Makespan), nil
}

// checkDESOnline: staggered arrivals under the portfolio policy must
// yield bit-identical runs — full event logs included — at one policy
// worker and at many. With Workers == 1 only the single run executes
// (it still proves the scenario simulates); the comparison arm needs a
// genuinely different pool size to carry signal. The returned string
// is the 1-worker run's canonical digest, folded into the scenario
// digest so online-simulator drift fails the golden gate too; the
// second return is that run's delta-rescheduling telemetry.
func checkDESOnline(in *genscen.Instance, opt Options, span float64, flag func(string, string, ...any)) (string, des.ReplanStats, error) {
	sp, err := in.OnlineSpec("portfolio", span)
	if err != nil {
		return "", des.ReplanStats{}, err
	}
	run := func(workers int) (*des.Result, error) {
		sc, err := sp.Build(workers)
		if err != nil {
			return nil, err
		}
		sc.Metrics = des.NewMetrics(opt.Metrics)
		return des.Simulate(sc)
	}
	r1, err := run(1)
	if err != nil {
		return "", des.ReplanStats{}, fmt.Errorf("des-online workers=1: %w", err)
	}
	d1 := onlineDigest(r1)
	if opt.Workers <= 1 {
		return d1, r1.Replan, nil
	}
	rp, err := run(opt.Workers)
	if err != nil {
		return "", des.ReplanStats{}, fmt.Errorf("des-online workers=%d: %w", opt.Workers, err)
	}
	if dp := onlineDigest(rp); d1 != dp {
		flag("des-online", "online run differs between 1 and %d policy workers", opt.Workers)
	}
	return d1, r1.Replan, nil
}

// hexFloat renders a float64 exactly (hexadecimal mantissa/exponent),
// the canonical form all digests use: two values digest equal iff they
// are bit-equal (modulo -0/+0, which never arises here).
func hexFloat(v float64) string {
	return strconv.FormatFloat(v, 'x', -1, 64)
}

// scheduleDigest canonically serializes one schedule.
func scheduleDigest(s *sched.Schedule) string {
	var b strings.Builder
	b.WriteString(hexFloat(s.Makespan))
	if s.Sequential {
		b.WriteString(" seq")
	}
	for _, a := range s.Assignments {
		b.WriteByte(' ')
		b.WriteString(hexFloat(a.Processors))
		b.WriteByte(',')
		b.WriteString(hexFloat(a.CacheShare))
	}
	return b.String()
}

// reportDigest canonically serializes a portfolio report (cache
// provenance excluded: a cache hit must be indistinguishable from a
// fresh computation).
func reportDigest(rep *portfolio.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "best=%d", rep.Best)
	for _, res := range rep.Results {
		b.WriteByte('\n')
		b.WriteString(res.Heuristic.String())
		b.WriteByte('=')
		if res.Err != nil {
			b.WriteString("err")
			continue
		}
		b.WriteString(scheduleDigest(res.Schedule))
	}
	return b.String()
}

// onlineDigest canonically serializes an online run: the full event
// log plus per-job metrics and integrals.
func onlineDigest(r *des.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan=%s ptime=%s ctime=%s qtime=%s reparts=%d",
		hexFloat(r.Makespan), hexFloat(r.ProcessorTime), hexFloat(r.CacheTime),
		hexFloat(r.QueueTime), r.Repartitions)
	for _, j := range r.Jobs {
		fmt.Fprintf(&b, "\njob %d %s a=%s s=%s f=%s", j.Job, j.Name,
			hexFloat(j.Arrival), hexFloat(j.Start), hexFloat(j.Finish))
	}
	for _, ev := range r.Events {
		fmt.Fprintf(&b, "\nev %d t=%s k=%v j=%d r=%d q=%d", ev.Seq, hexFloat(ev.Time), ev.Kind, ev.Job, ev.Resident, ev.Queued)
	}
	return b.String()
}
