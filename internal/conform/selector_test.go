package conform

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/genscen"
	"repro/internal/selector"
)

// TestSelectorModeGolden is the learned-selection regression gate: the
// committed ledger fixture must drive the harness through the golden
// corpus with zero violations — decisions bit-identical between the
// serial and parallel arms, audited gaps within the committed bound on
// oracle-exact families — while leaving every digest exactly as the
// plain run computes it (selection is measured, never perturbing).
//
// To re-train the fixture after an intentional selector change:
//
//	go run ./cmd/ledger train -no-merge -seeds 100 -out internal/conform/testdata/ledger.json
func TestSelectorModeGolden(t *testing.T) {
	gold, err := LoadGolden(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	led, err := selector.LoadFile(filepath.Join("testdata", "ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	opt := gold.Options()
	opt.Workers = 8
	opt.Selector = led
	rep, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Families {
		for _, v := range f.Violations {
			t.Errorf("violation: %s seed %d [%s]: %s", v.Family, v.Seed, v.Check, v.Detail)
		}
	}
	for _, diff := range gold.Compare(rep) {
		t.Errorf("golden mismatch under selector: %s", diff)
	}

	predicted := 0
	for _, f := range rep.Families {
		s := f.Selector
		if s == nil {
			t.Errorf("family %s: no selector summary", f.Family)
			continue
		}
		if s.Races != rep.Seeds {
			t.Errorf("family %s: %d races, want one per seed (%d)", f.Family, s.Races, rep.Seeds)
		}
		if s.Predicted+s.Fallbacks != s.Races {
			t.Errorf("family %s: predicted %d + fallbacks %d != races %d", f.Family, s.Predicted, s.Fallbacks, s.Races)
		}
		predicted += s.Predicted
	}
	if predicted == 0 {
		t.Error("committed fixture served no predictions anywhere — the shortcut path is untested")
	}

	var md bytes.Buffer
	if err := rep.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "## Learned selection") {
		t.Error("markdown report missing the Learned selection section")
	}
}

// TestSelectorSummariesWorkerInvariant: the per-family selection
// summaries (served counts, audited gaps) must not depend on the
// harness's worker count — the decision is a pure function of
// (ledger, scenario).
func TestSelectorSummariesWorkerInvariant(t *testing.T) {
	led, err := selector.LoadFile(filepath.Join("testdata", "ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Seeds:    2,
		Families: []genscen.Family{genscen.SingleApp, genscen.LatencyDominated},
		Selector: led,
	}
	opt.Workers = 1
	r1, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 8
	r8, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Families {
		s1, s8 := r1.Families[i].Selector, r8.Families[i].Selector
		if !reflect.DeepEqual(s1, s8) {
			t.Errorf("family %s: selector summary differs between 1 and 8 workers: %+v vs %+v",
				r1.Families[i].Family, s1, s8)
		}
	}
}

// TestSelectorEmptyLedger: an evidence-free ledger must fall back to
// the full race on every scenario — no violations, no served
// predictions, and digests bit-identical to a run without a selector.
func TestSelectorEmptyLedger(t *testing.T) {
	opt := Options{
		Seeds:    2,
		Families: []genscen.Family{genscen.AmdahlMix, genscen.ZeroWork},
		Workers:  2,
	}
	plain, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Selector = selector.New()
	sel, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sel.Families {
		for _, v := range f.Violations {
			t.Errorf("violation: %s seed %d [%s]: %s", v.Family, v.Seed, v.Check, v.Detail)
		}
		if f.Selector == nil {
			t.Errorf("family %s: no selector summary", f.Family)
			continue
		}
		if f.Selector.Predicted != 0 || f.Selector.Fallbacks != f.Selector.Races {
			t.Errorf("family %s: empty ledger served predictions: %+v", f.Family, f.Selector)
		}
		if f.Selector.FallbackRatio != 1 {
			t.Errorf("family %s: fallback ratio %v, want 1", f.Family, f.Selector.FallbackRatio)
		}
	}
	want, got := plain.Digests(), sel.Digests()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("selector run perturbed digests: %v vs %v", got, want)
	}
	for _, f := range plain.Families {
		if f.Selector != nil {
			t.Errorf("family %s: plain run has a selector summary", f.Family)
		}
	}
}
