package conform

import (
	"bufio"
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/genscen"
	"repro/internal/obs"
)

// TestFleetGoldenDigests is the fleet regression gate: re-running the
// committed corpus's scenarios must reproduce its digests bit-for-bit
// AND pass every fleet cross-check (routing determinism across worker
// counts, the single-node reduction to internal/des, the
// fleet-vs-best-solo stretch invariant).
//
// To re-baseline after an intentional change:
//
//	go run ./cmd/conform -fleet -seeds 8 -golden internal/conform/testdata/golden_fleet.json -update
func TestFleetGoldenDigests(t *testing.T) {
	gold, err := LoadFleetGolden(filepath.Join("testdata", "golden_fleet.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunFleet(gold.Options())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Families {
		for _, v := range f.Violations {
			t.Errorf("violation: %s seed %d [%s]: %s", v.Family, v.Seed, v.Check, v.Detail)
		}
	}
	for _, diff := range gold.Compare(rep) {
		t.Errorf("fleet golden mismatch: %s", diff)
	}
}

// TestFleetDigestsWorkerInvariant: the committed fleet digests must not
// depend on the harness's worker count.
func TestFleetDigestsWorkerInvariant(t *testing.T) {
	opt := FleetOptions{
		Seeds:    2,
		Families: []genscen.FleetFamily{genscen.FleetUniform, genscen.FleetHetero},
	}
	opt.Workers = 1
	r1, err := RunFleet(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 5
	r5, err := RunFleet(opt)
	if err != nil {
		t.Fatal(err)
	}
	d1, d5 := r1.Digests(), r5.Digests()
	for name, want := range d1 {
		if d5[name] != want {
			t.Errorf("fleet family %s: digest differs between 1 and 5 workers", name)
		}
	}
}

// TestFleetMetricsInvariantDigests: instrumenting every fleet and des
// run must leave the fleet digests bit-identical, and the registry must
// actually have observed traffic.
func TestFleetMetricsInvariantDigests(t *testing.T) {
	opt := FleetOptions{
		Seeds:    2,
		Families: []genscen.FleetFamily{genscen.FleetAffinity, genscen.FleetBurst},
	}
	bare, err := RunFleet(opt)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	opt.Metrics = reg
	instrumented, err := RunFleet(opt)
	if err != nil {
		t.Fatal(err)
	}
	db, di := bare.Digests(), instrumented.Digests()
	for name, want := range db {
		if di[name] != want {
			t.Errorf("fleet family %s: digest differs with metrics enabled", name)
		}
	}
	byName := map[string]float64{}
	for _, s := range reg.Snapshot() {
		byName[s.Name] += s.Value
	}
	if byName["des_simulations_total"] == 0 {
		t.Errorf("registry saw no DES traffic: %v", byName)
	}
}

func TestFleetMarkdownAndNDJSON(t *testing.T) {
	rep, err := RunFleet(FleetOptions{Seeds: 1, Families: []genscen.FleetFamily{genscen.FleetUniform}})
	if err != nil {
		t.Fatal(err)
	}
	var md bytes.Buffer
	if err := rep.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "fleet-uniform") || !strings.Contains(md.String(), "0 violation(s)") {
		t.Errorf("markdown missing expected content:\n%s", md.String())
	}

	var nd bytes.Buffer
	if err := rep.NDJSON(&nd); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&nd)
	types := map[string]int{}
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		types[line["type"].(string)]++
	}
	if types["fleet-family"] != 1 || types["summary"] != 1 {
		t.Errorf("NDJSON line types %v, want 1 fleet-family + 1 summary", types)
	}

	if err := rep.Markdown(&failWriter{n: 10}); err == nil {
		t.Error("truncated markdown render returned nil error")
	}
}

func TestFleetGoldenRoundTripAndCompare(t *testing.T) {
	rep, err := RunFleet(FleetOptions{Seeds: 1, Families: []genscen.FleetFamily{genscen.FleetBurst}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "golden_fleet.json")
	if err := SaveFleetGolden(path, rep.Golden()); err != nil {
		t.Fatal(err)
	}
	gold, err := LoadFleetGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := gold.Compare(rep); len(diffs) != 0 {
		t.Errorf("round-tripped corpus mismatches its own report: %v", diffs)
	}

	gold.Digests[genscen.FleetBurst.String()] = strings.Repeat("0", 64)
	if diffs := gold.Compare(rep); len(diffs) != 1 {
		t.Errorf("corrupted digest produced %d diffs, want 1", len(diffs))
	}

	gold2, _ := LoadFleetGolden(path)
	gold2.Seeds = 99
	diffs := gold2.Compare(rep)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "computed under") {
		t.Errorf("config mismatch diffs: %v", diffs)
	}

	if _, err := LoadFleetGolden(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("loading an absent corpus succeeded")
	}
}
