//go:build conform

package conform

import (
	"testing"

	"repro/internal/genscen"
)

// TestFullSweep is the acceptance run of the conformance harness: 100
// seeds per family across every family, every cross-check enforced.
// It is build-tagged so ordinary `go test ./...` stays fast; CI and
// developers run it with:
//
//	go test -tags conform -run TestFullSweep ./internal/conform
func TestFullSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep skipped in -short mode")
	}
	// BaseSeed 1 matches the CLI default, so this test and the
	// documented `conform -seeds 100` run the same 100 scenarios.
	rep, err := Run(Options{Seeds: 100, BaseSeed: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Families {
		t.Logf("%s: %d scenarios, %d oracle runs, gap [%g, %g]",
			f.Family, f.Scenarios, f.OracleRuns, f.GapMin, f.GapMax)
		for _, v := range f.Violations {
			t.Errorf("violation: %s seed %d [%s]: %s", v.Family, v.Seed, v.Check, v.Detail)
		}
	}
	if got, want := len(rep.Families), len(genscen.Families); got != want {
		t.Errorf("swept %d families, want %d", got, want)
	}
}
