package conform

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/des"
	"repro/internal/fleet"
	"repro/internal/genscen"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sched"
)

// FleetOptions parameterizes a fleet-conformance run.
type FleetOptions struct {
	// Seeds is the number of scenarios per fleet family; seed values
	// are BaseSeed, BaseSeed+1, … Zero defaults to 10.
	Seeds int
	// BaseSeed is the first seed (zero is valid; the CLI defaults to 1).
	BaseSeed uint64
	// Families to generate; nil means every fleet family.
	Families []genscen.FleetFamily
	// Workers is the parallel arm of the routing-determinism check.
	// Zero defaults to 8.
	Workers int
	// Metrics optionally instruments every simulation; digests are
	// identical with and without it.
	Metrics *obs.Registry
}

func (o FleetOptions) normalized() FleetOptions {
	if o.Seeds <= 0 {
		o.Seeds = 10
	}
	if len(o.Families) == 0 {
		o.Families = append([]genscen.FleetFamily(nil), genscen.FleetFamilies...)
	}
	if o.Workers == 0 {
		o.Workers = 8
	}
	return o
}

// FleetFamilyResult aggregates one fleet family's scenarios.
type FleetFamilyResult struct {
	Family    string `json:"family"`
	Scenarios int    `json:"scenarios"`
	Digest    string `json:"digest"`
	// BestRouting counts, per routing policy, how many scenarios it won
	// (lowest mean stretch; ties to the first policy in Routings order).
	BestRouting map[string]int `json:"bestRouting"`
	Violations  []Violation    `json:"violations,omitempty"`
}

// FleetReport is the outcome of one fleet-conformance run.
type FleetReport struct {
	Seeds    int                 `json:"seeds"`
	BaseSeed uint64              `json:"baseSeed"`
	Workers  int                 `json:"workers"`
	Families []FleetFamilyResult `json:"families"`
}

// ViolationCount totals violations across fleet families.
func (r *FleetReport) ViolationCount() int {
	n := 0
	for _, f := range r.Families {
		n += len(f.Violations)
	}
	return n
}

// Digests returns the per-family digest map (family name → hex).
func (r *FleetReport) Digests() map[string]string {
	m := make(map[string]string, len(r.Families))
	for _, f := range r.Families {
		m[f.Family] = f.Digest
	}
	return m
}

// Markdown renders the fleet report as a human-readable summary.
func (r *FleetReport) Markdown(out io.Writer) error {
	ew := &errWriter{w: out}
	fmt.Fprintf(ew, "# Fleet conformance report\n\n")
	fmt.Fprintf(ew, "seeds=%d baseSeed=%d workers=%d\n\n", r.Seeds, r.BaseSeed, r.Workers)
	fmt.Fprintf(ew, "| family | scenarios | best routing | violations | digest |\n")
	fmt.Fprintf(ew, "|---|---:|---|---:|---|\n")
	for _, f := range r.Families {
		var best []string
		for _, name := range fleet.Routings {
			if n := f.BestRouting[name]; n > 0 {
				best = append(best, fmt.Sprintf("%s:%d", name, n))
			}
		}
		fmt.Fprintf(ew, "| %s | %d | %s | %d | %s |\n",
			f.Family, f.Scenarios, strings.Join(best, " "), len(f.Violations), shortDigest(f.Digest))
	}
	fmt.Fprintf(ew, "\n%d violation(s).\n", r.ViolationCount())
	if r.ViolationCount() > 0 {
		fmt.Fprintf(ew, "\n## Violations\n\n")
		for _, f := range r.Families {
			for _, v := range f.Violations {
				fmt.Fprintf(ew, "- `%s` seed %d [%s]: %s\n", v.Family, v.Seed, v.Check, v.Detail)
			}
		}
	}
	return ew.err
}

// NDJSON renders the fleet report as newline-delimited JSON: one
// "fleet-family" object per family, one "violation" object per
// violation, and a trailing "summary" object.
func (r *FleetReport) NDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	type familyLine struct {
		Type string `json:"type"`
		FleetFamilyResult
		Violations int `json:"violations"` // shadow the slice with a count
	}
	type violationLine struct {
		Type string `json:"type"`
		Violation
	}
	for _, f := range r.Families {
		fl := familyLine{Type: "fleet-family", FleetFamilyResult: f, Violations: len(f.Violations)}
		fl.FleetFamilyResult.Violations = nil
		if err := enc.Encode(fl); err != nil {
			return err
		}
		for _, v := range f.Violations {
			if err := enc.Encode(violationLine{Type: "violation", Violation: v}); err != nil {
				return err
			}
		}
	}
	return enc.Encode(map[string]any{
		"type": "summary", "seeds": r.Seeds, "baseSeed": r.BaseSeed,
		"workers": r.Workers, "families": len(r.Families),
		"violations": r.ViolationCount(),
	})
}

// RunFleet executes the fleet harness; see RunFleetContext.
func RunFleet(opt FleetOptions) (*FleetReport, error) {
	return RunFleetContext(context.Background(), opt)
}

// RunFleetContext runs the fleet-conformance sweep: for every (fleet
// family, seed) scenario it checks
//
//   - routing-determinism: every routing policy's full fleet result —
//     routing log and all node event logs — is bit-identical at one
//     worker and at Workers;
//   - single-node reduction: a one-node fleet is bit-identical to a
//     standalone internal/des run of that node with the derived policy
//     seed (fleet adds routing, never arithmetic);
//   - fleet-beats-solo: the best routing policy's mean stretch is no
//     worse than the best single node absorbing the whole stream alone
//     — adding nodes behind a router must never hurt the aggregate.
//
// Every scenario contributes each routing policy's canonical digest to
// a per-family digest compared against a committed golden corpus
// (FleetGolden), so any behavioral drift of the routing layer or the
// node engines fails the gate.
func RunFleetContext(ctx context.Context, opt FleetOptions) (*FleetReport, error) {
	opt = opt.normalized()
	rep := &FleetReport{Seeds: opt.Seeds, BaseSeed: opt.BaseSeed, Workers: opt.Workers}
	for _, fam := range opt.Families {
		fr := FleetFamilyResult{Family: fam.String(), BestRouting: map[string]int{}}
		famHash := sha256.New()
		for i := 0; i < opt.Seeds; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			seed := opt.BaseSeed + uint64(i)
			in, err := genscen.GenerateFleet(fam, seed)
			if err != nil {
				return nil, err
			}
			digest, best, violations, err := runFleetScenario(ctx, in, opt)
			if err != nil {
				return nil, fmt.Errorf("conform: %s seed %d: %w", fam, seed, err)
			}
			fr.Scenarios++
			famHash.Write([]byte(digest))
			if best != "" {
				fr.BestRouting[best]++
			}
			fr.Violations = append(fr.Violations, violations...)
		}
		fr.Digest = hex.EncodeToString(famHash.Sum(nil))
		rep.Families = append(rep.Families, fr)
	}
	return rep, nil
}

// fleetSpan derives the arrival-stagger horizon of a scenario: the
// static makespan of the whole job set on node 0 under the default
// heuristic. On that scale arrivals overlap on every node without
// serializing the run.
func fleetSpan(in *genscen.FleetInstance) (float64, error) {
	s, err := sched.DominantMinRatio.Schedule(in.Nodes[0].Platform, append([]model.Application(nil), in.Apps...), nil)
	if err != nil {
		return 0, fmt.Errorf("span schedule: %w", err)
	}
	return s.Makespan, nil
}

// runFleetScenario executes every fleet check on one instance,
// returning the scenario digest, the winning routing policy and any
// violations.
func runFleetScenario(ctx context.Context, in *genscen.FleetInstance, opt FleetOptions) (string, string, []Violation, error) {
	var violations []Violation
	flag := func(check, format string, args ...any) {
		violations = append(violations, Violation{
			Family: in.Family.String(), Seed: in.Seed,
			Check: check, Detail: fmt.Sprintf(format, args...),
		})
	}
	span, err := fleetSpan(in)
	if err != nil {
		return "", "", nil, err
	}
	runFleet := func(sp *fleet.Spec, workers int) (*fleet.Result, error) {
		sc, err := sp.Build(workers)
		if err != nil {
			return nil, err
		}
		sc.Metrics = des.NewMetrics(opt.Metrics)
		return fleet.SimulateContext(ctx, sc)
	}

	// Routing determinism across worker counts, one digest per policy.
	var parts []string
	best, bestStretch := "", 0.0
	for _, routing := range fleet.Routings {
		sp, err := in.FleetSpec(routing, span)
		if err != nil {
			return "", "", nil, err
		}
		r1, err := runFleet(sp, 1)
		if err != nil {
			return "", "", nil, fmt.Errorf("%s workers=1: %w", routing, err)
		}
		d1 := fleetDigest(r1)
		if opt.Workers > 1 {
			rp, err := runFleet(sp, opt.Workers)
			if err != nil {
				return "", "", nil, fmt.Errorf("%s workers=%d: %w", routing, opt.Workers, err)
			}
			if dp := fleetDigest(rp); d1 != dp {
				flag("fleet-determinism", "%s: fleet run differs between 1 and %d workers", routing, opt.Workers)
			}
		}
		parts = append(parts, routing+"\n"+d1)
		if best == "" || r1.Stretch.Mean < bestStretch {
			best, bestStretch = routing, r1.Stretch.Mean
		}
	}

	// Single-node reduction: node 0 alone behind the router must equal
	// a standalone des run with the derived policy seed.
	soloSpec := func(node int) (*fleet.Spec, error) {
		one := &genscen.FleetInstance{
			Family: in.Family, Seed: in.Seed,
			Nodes: in.Nodes[node : node+1], Apps: in.Apps, Offsets: in.Offsets,
		}
		return one.FleetSpec("least-loaded", span)
	}
	sp0, err := soloSpec(0)
	if err != nil {
		return "", "", nil, err
	}
	rf, err := runFleet(sp0, 1)
	if err != nil {
		return "", "", nil, fmt.Errorf("single-node fleet: %w", err)
	}
	dsp := &des.Spec{
		Platform: sp0.Nodes[0].Platform,
		Arrivals: sp0.Arrivals,
		Policy:   in.Nodes[0].Policy,
		Seed:     fleet.NodePolicySeed(in.Seed, 0),
	}
	if dsp.Policy == "" {
		dsp.Policy = "DominantMinRatio"
	}
	dsp.MaxResident = in.Nodes[0].MaxResident
	dsc, err := dsp.Build(1)
	if err != nil {
		return "", "", nil, err
	}
	dsc.Metrics = des.NewMetrics(opt.Metrics)
	rd, err := des.SimulateContext(ctx, dsc)
	if err != nil {
		return "", "", nil, fmt.Errorf("single-node des: %w", err)
	}
	if onlineDigest(rf.Nodes[0].Result) != onlineDigest(rd) {
		flag("fleet-reduction", "one-node fleet differs from the standalone des run")
	}

	// Fleet-beats-solo: the best routing's aggregate stretch must not
	// exceed the best single node's handling the entire stream alone.
	bestSolo := 0.0
	for i := range in.Nodes {
		spi, err := soloSpec(i)
		if err != nil {
			return "", "", nil, err
		}
		ri, err := runFleet(spi, 1)
		if err != nil {
			return "", "", nil, fmt.Errorf("solo node %d: %w", i, err)
		}
		if i == 0 || ri.Stretch.Mean < bestSolo {
			bestSolo = ri.Stretch.Mean
		}
	}
	if bestStretch > bestSolo*(1+relTol) {
		flag("fleet-vs-solo", "best routing %s mean stretch %v worse than best single node %v",
			best, bestStretch, bestSolo)
	}

	sum := sha256.Sum256([]byte(strings.Join(parts, "\n") + "\nsolo\n" + hexFloat(bestSolo)))
	return hex.EncodeToString(sum[:]), best, violations, nil
}

// fleetDigest canonically serializes a fleet result: the routing log
// plus every node's full single-node digest. Two runs digest equal iff
// they are bit-identical.
func fleetDigest(r *fleet.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "routing=%s jobs=%d trunc=%d makespan=%s ptime=%s",
		r.Routing, r.Jobs, r.Truncated, hexFloat(r.Makespan), hexFloat(r.ProcessorTime))
	for _, rt := range r.Routes {
		fmt.Fprintf(&b, "\nroute %d t=%s n=%d", rt.Job, hexFloat(rt.Time), rt.Node)
	}
	for i := range r.Nodes {
		fmt.Fprintf(&b, "\nnode %s jobs=%d\n%s", r.Nodes[i].Name, r.Nodes[i].Jobs, onlineDigest(r.Nodes[i].Result))
	}
	return b.String()
}

// FleetGolden is the committed fleet digest corpus. Workers is absent
// for the same reason as in Golden: digests are worker-count invariant
// (the harness checks exactly that).
type FleetGolden struct {
	Seeds    int               `json:"seeds"`
	BaseSeed uint64            `json:"baseSeed"`
	Digests  map[string]string `json:"digests"`
}

// Golden extracts the report's digest corpus.
func (r *FleetReport) Golden() *FleetGolden {
	return &FleetGolden{Seeds: r.Seeds, BaseSeed: r.BaseSeed, Digests: r.Digests()}
}

// Options returns harness options that regenerate exactly the
// scenarios the corpus was computed from (family set derived from the
// stored digest keys).
func (g *FleetGolden) Options() FleetOptions {
	var fams []genscen.FleetFamily
	for _, f := range genscen.FleetFamilies {
		if _, ok := g.Digests[f.String()]; ok {
			fams = append(fams, f)
		}
	}
	return FleetOptions{Seeds: g.Seeds, BaseSeed: g.BaseSeed, Families: fams}
}

// Compare returns mismatch descriptions between the corpus and a
// report (empty = conformant).
func (g *FleetGolden) Compare(r *FleetReport) []string {
	var diffs []string
	if g.Seeds != r.Seeds || g.BaseSeed != r.BaseSeed {
		return []string{fmt.Sprintf(
			"fleet golden corpus computed under seeds=%d baseSeed=%d; report ran seeds=%d baseSeed=%d",
			g.Seeds, g.BaseSeed, r.Seeds, r.BaseSeed)}
	}
	got := r.Digests()
	var names []string
	for name := range g.Digests {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := g.Digests[name]
		cur, ok := got[name]
		switch {
		case !ok:
			diffs = append(diffs, fmt.Sprintf("fleet family %s: in golden corpus but absent from report", name))
		case cur != want:
			diffs = append(diffs, fmt.Sprintf("fleet family %s: digest %s… != golden %s…", name, shortDigest(cur), shortDigest(want)))
		}
	}
	for name := range got {
		if _, ok := g.Digests[name]; !ok {
			diffs = append(diffs, fmt.Sprintf("fleet family %s: not in golden corpus (regenerate with -update)", name))
		}
	}
	return diffs
}

// LoadFleetGolden reads a fleet golden corpus from disk.
func LoadFleetGolden(path string) (*FleetGolden, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g FleetGolden
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("conform: parsing fleet golden corpus %s: %w", path, err)
	}
	if len(g.Digests) == 0 {
		return nil, fmt.Errorf("conform: fleet golden corpus %s has no digests", path)
	}
	return &g, nil
}

// SaveFleetGolden writes a fleet golden corpus to disk (indented,
// trailing newline, stable key order).
func SaveFleetGolden(path string, g *FleetGolden) error {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
