//go:build conform

package conform

import (
	"fmt"
	"testing"

	"repro/internal/des"
	"repro/internal/genscen"
	"repro/internal/sched"
)

// TestDeltaReplanEquivalence is the warm-start acceptance property:
// across every genscen family × a spread of seeds × every replanning
// policy kind, the delta-rescheduling run (fast path enabled, the
// default) must produce an event log bit-identical to the full-replan
// run (":full" policy suffix) — the onlineDigest covers the complete
// event stream, per-job metrics, and every integral. Each scenario runs
// both unconstrained and under a residency cap (MaxResident 2), the
// regime that produces queueing, waves, and recurring resident shapes —
// i.e. where the fast path actually fires and where an uncertified
// shortcut would show.
func TestDeltaReplanEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("delta equivalence sweep skipped in -short mode")
	}
	const seeds = 10
	policies := []string{"portfolio", "DominantMinRatio", "LocalSearch", "DominantRandom"}
	for _, fam := range genscen.Families {
		for i := 0; i < seeds; i++ {
			seed := uint64(1 + i)
			in, err := genscen.Generate(fam, seed, genscen.Config{})
			if err != nil {
				t.Fatalf("%s seed %d: generate: %v", fam, seed, err)
			}
			// Stagger arrivals over a representative span: the equal-share
			// baseline's makespan (cheap, deterministic, always feasible).
			base, err := sched.Fair.Schedule(in.Platform, in.Apps, nil)
			if err != nil {
				t.Fatalf("%s seed %d: baseline schedule: %v", fam, seed, err)
			}
			for _, policy := range policies {
				for _, maxResident := range []int{0, 2} {
					name := fmt.Sprintf("%s/seed=%d/%s/maxResident=%d", fam, seed, policy, maxResident)
					digest := func(spec string) (string, des.ReplanStats) {
						sp, err := in.OnlineSpec(spec, base.Makespan)
						if err != nil {
							t.Fatalf("%s: spec: %v", name, err)
						}
						sp.MaxResident = maxResident
						sc, err := sp.Build(1)
						if err != nil {
							t.Fatalf("%s: build: %v", name, err)
						}
						r, err := des.Simulate(sc)
						if err != nil {
							t.Fatalf("%s: simulate %q: %v", name, spec, err)
						}
						return onlineDigest(r), r.Replan
					}
					delta, dstats := digest(policy)
					full, fstats := digest(policy + ":full")
					if delta != full {
						t.Errorf("%s: delta event log differs from full replan", name)
					}
					if fstats.FastPath != 0 {
						t.Errorf("%s: full-replan arm claims fast paths: %+v", name, fstats)
					}
					_ = dstats
				}
			}
		}
	}
}
