package conform

import (
	"context"
	"math"

	"repro/internal/genscen"
	"repro/internal/portfolio"
)

// DefaultSelectorGapBound is the committed optimality-gap bound for
// served predictions on oracle-exact families: a selector shortcut may
// cost at most 5% makespan over the full race there, or the scenario is
// a violation. With the committed fixture the zero-work family never
// accumulates margin evidence (every heuristic ties at makespan 0), so
// its scenarios always fall back to the full race and trivially meet
// the bound; the bound bites as soon as a ledger gains enough evidence
// there to serve a genuinely bad prediction.
const DefaultSelectorGapBound = 1.05

// SelectorSummary aggregates one family's learned-selection decisions:
// how often the ledger's prediction was served versus falling back to
// the full race, and the audited optimality gap of the served
// predictions (gap = served makespan / full-race best, so 1 means the
// prediction was the race winner).
type SelectorSummary struct {
	Races         int     `json:"races"`
	Predicted     int     `json:"predicted"`
	Fallbacks     int     `json:"fallbacks"`
	FallbackRatio float64 `json:"fallbackRatio"`
	GapMax        float64 `json:"gapMax,omitempty"`
	GapGeoMean    float64 `json:"gapGeoMean,omitempty"`
}

// selDecision is one scenario's selector outcome.
type selDecision struct {
	predicted bool
	gap       float64 // audited; NaN when not predicted
}

// selAccum folds scenario decisions into a family summary.
type selAccum struct {
	races, predicted int
	gapMax           float64
	gapLogSum        float64
	gapN             int
}

func (a *selAccum) add(d *selDecision) {
	if d == nil {
		return
	}
	a.races++
	if !d.predicted {
		return
	}
	a.predicted++
	if !math.IsNaN(d.gap) {
		a.gapN++
		a.gapMax = math.Max(a.gapMax, d.gap)
		a.gapLogSum += math.Log(d.gap)
	}
}

func (a *selAccum) summary() *SelectorSummary {
	s := &SelectorSummary{
		Races:     a.races,
		Predicted: a.predicted,
		Fallbacks: a.races - a.predicted,
	}
	if a.races > 0 {
		s.FallbackRatio = float64(s.Fallbacks) / float64(a.races)
	}
	if a.gapN > 0 {
		s.GapMax = a.gapMax
		s.GapGeoMean = math.Exp(a.gapLogSum / float64(a.gapN))
	}
	return s
}

// checkSelector decides the scenario with the ledger-driven selector in
// audit mode on the serial engine, checks the audited gap bound on
// oracle-exact families, and — the determinism arm — repeats the
// decision on the parallel engine and requires it to be bit-identical:
// which heuristic was predicted, whether the shortcut was taken, the
// served schedules and the audited gap must all agree, because
// selection is a pure function of (ledger, scenario).
func checkSelector(in *genscen.Instance, opt Options, serial, parallel *portfolio.Engine, flag func(string, string, ...any)) (*selDecision, error) {
	decide := func(eng *portfolio.Engine) (*portfolio.Decision, error) {
		pol := portfolio.NewSelector(portfolio.SelectorConfig{
			Engine: eng,
			Ledger: opt.Selector,
			Audit:  true,
		})
		return pol.Select(context.Background(), in.PortfolioScenario(nil))
	}
	d1, err := decide(serial)
	if err != nil {
		return nil, err
	}
	if opt.Workers > 1 {
		d2, err := decide(parallel)
		if err != nil {
			return nil, err
		}
		switch {
		case d1.Predicted != d2.Predicted || d1.FallbackReason != d2.FallbackReason:
			flag("selector-determinism", "decision differs between 1 and %d workers: predicted=%v/%v reason=%q/%q",
				opt.Workers, d1.Predicted, d2.Predicted, d1.FallbackReason, d2.FallbackReason)
		case d1.Prediction.Heuristic != d2.Prediction.Heuristic:
			flag("selector-determinism", "predicted heuristic differs between 1 and %d workers: %v != %v",
				opt.Workers, d1.Prediction.Heuristic, d2.Prediction.Heuristic)
		case reportDigest(d1.Report) != reportDigest(d2.Report):
			flag("selector-determinism", "served report differs between 1 and %d workers", opt.Workers)
		case hexFloat(d1.Gap) != hexFloat(d2.Gap):
			flag("selector-determinism", "audited gap differs between 1 and %d workers: %v != %v",
				opt.Workers, d1.Gap, d2.Gap)
		}
	}
	if d1.Predicted && in.Family.OracleExact() && d1.Gap > opt.SelectorGapBound*(1+relTol) {
		flag("selector-gap", "served prediction %v has audited gap %v, above the committed bound %v",
			d1.Prediction.Heuristic, d1.Gap, opt.SelectorGapBound)
	}
	return &selDecision{predicted: d1.Predicted, gap: d1.Gap}, nil
}
