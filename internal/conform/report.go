package conform

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/genscen"
)

// shortDigest abbreviates a digest for display, tolerating truncated
// or hand-mangled corpus entries.
func shortDigest(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}

// errWriter latches the first write error so the rendering code can
// stay a straight-line sequence of Fprintf calls; a truncated report
// (full disk, closed pipe) must surface as an error, not exit 0.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}

// Markdown renders the report as a human-readable summary table plus a
// violation list.
func (r *Report) Markdown(out io.Writer) error {
	ew := &errWriter{w: out}
	var w io.Writer = ew
	fmt.Fprintf(w, "# Conformance report\n\n")
	fmt.Fprintf(w, "seeds=%d baseSeed=%d workers=%d grid=%d oracleMaxApps=%d apps=[%d,%d]\n\n",
		r.Seeds, r.BaseSeed, r.Workers, r.Grid, r.OracleMaxApps, r.MinApps, r.MaxApps)
	fmt.Fprintf(w, "| family | scenarios | oracle runs | gap min | gap geomean | gap max | violations | digest |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|---:|---:|---|\n")
	for _, f := range r.Families {
		gapMin, gapGeo, gapMax := "-", "-", "-"
		if f.OracleRuns > 0 {
			gapMin = fmt.Sprintf("%.6f", f.GapMin)
			gapGeo = fmt.Sprintf("%.6f", f.GapGeoMean)
			gapMax = fmt.Sprintf("%.6f", f.GapMax)
		}
		fmt.Fprintf(w, "| %s | %d | %d | %s | %s | %s | %d | %s |\n",
			f.Family, f.Scenarios, f.OracleRuns, gapMin, gapGeo, gapMax,
			len(f.Violations), shortDigest(f.Digest))
	}
	hasSelector := false
	for _, f := range r.Families {
		hasSelector = hasSelector || f.Selector != nil
	}
	if hasSelector {
		fmt.Fprintf(w, "\n## Learned selection\n\n")
		fmt.Fprintf(w, "| family | races | predicted | fallbacks | fallback ratio | sel gap max | sel gap geomean |\n")
		fmt.Fprintf(w, "|---|---:|---:|---:|---:|---:|---:|\n")
		for _, f := range r.Families {
			s := f.Selector
			if s == nil {
				continue
			}
			gapMax, gapGeo := "-", "-"
			if s.Predicted > 0 {
				gapMax = fmt.Sprintf("%.6f", s.GapMax)
				gapGeo = fmt.Sprintf("%.6f", s.GapGeoMean)
			}
			fmt.Fprintf(w, "| %s | %d | %d | %d | %.3f | %s | %s |\n",
				f.Family, s.Races, s.Predicted, s.Fallbacks, s.FallbackRatio, gapMax, gapGeo)
		}
	}
	rt := r.ReplanTotals()
	fmt.Fprintf(w, "\nreplan: %d fast-path / %d full-solve allocations, memo hit rate %.3f\n",
		rt.FastPath, rt.FullSolve, rt.HitRate())
	total := r.ViolationCount()
	fmt.Fprintf(w, "\n%d violation(s).\n", total)
	if total > 0 {
		fmt.Fprintf(w, "\n## Violations\n\n")
		for _, f := range r.Families {
			for _, v := range f.Violations {
				fmt.Fprintf(w, "- `%s` seed %d [%s]: %s\n", v.Family, v.Seed, v.Check, v.Detail)
			}
		}
		// The repro command must carry every generation parameter:
		// genscen instances depend on the app bounds and the checks on
		// grid/oracle-max, so a hint with defaults would regenerate a
		// different scenario under non-default flags.
		extra := fmt.Sprintf(" -grid %d -oracle-max %d", r.Grid, r.OracleMaxApps)
		if r.MinApps != 0 || r.MaxApps != 0 {
			extra += fmt.Sprintf(" -min-apps %d -max-apps %d", r.MinApps, r.MaxApps)
		}
		fmt.Fprintf(w, "\nReproduce one with: `conform -families <family> -seeds 1 -seed <seed>%s`\n", extra)
	}
	return ew.err
}

// NDJSON renders the report as newline-delimited JSON: one "family"
// object per family, one "violation" object per violation, and a
// trailing "summary" object — a stable machine surface for CI and
// dashboards.
func (r *Report) NDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	type familyLine struct {
		Type string `json:"type"`
		FamilyResult
		Violations int `json:"violations"` // shadow the slice with a count
	}
	type violationLine struct {
		Type string `json:"type"`
		Violation
	}
	for _, f := range r.Families {
		fl := familyLine{Type: "family", FamilyResult: f, Violations: len(f.Violations)}
		fl.FamilyResult.Violations = nil
		if err := enc.Encode(fl); err != nil {
			return err
		}
		for _, v := range f.Violations {
			if err := enc.Encode(violationLine{Type: "violation", Violation: v}); err != nil {
				return err
			}
		}
	}
	rt := r.ReplanTotals()
	return enc.Encode(map[string]any{
		"type": "summary", "seeds": r.Seeds, "baseSeed": r.BaseSeed,
		"workers": r.Workers, "families": len(r.Families),
		"violations": r.ViolationCount(),
		"replan":     rt, "memoHitRate": rt.HitRate(),
	})
}

// Golden is the committed digest corpus: the generation parameters the
// digests were computed under plus one digest per family. Workers is
// deliberately absent — digests are worker-count invariant (checked by
// the harness itself).
type Golden struct {
	Seeds         int               `json:"seeds"`
	BaseSeed      uint64            `json:"baseSeed"`
	Grid          int               `json:"grid"`
	OracleMaxApps int               `json:"oracleMaxApps"`
	MinApps       int               `json:"minApps"`
	MaxApps       int               `json:"maxApps"`
	Digests       map[string]string `json:"digests"`
}

// Golden extracts the report's digest corpus.
func (r *Report) Golden() *Golden {
	return &Golden{
		Seeds:         r.Seeds,
		BaseSeed:      r.BaseSeed,
		Grid:          r.Grid,
		OracleMaxApps: r.OracleMaxApps,
		MinApps:       r.MinApps,
		MaxApps:       r.MaxApps,
		Digests:       r.Digests(),
	}
}

// Options returns harness options that regenerate exactly the
// scenarios the golden corpus was computed from — including the family
// set, derived from the stored digest keys, so a subset corpus
// round-trips through Run without spurious "absent family" diffs.
func (g *Golden) Options() Options {
	var fams []genscen.Family
	for _, f := range genscen.Families {
		if _, ok := g.Digests[f.String()]; ok {
			fams = append(fams, f)
		}
	}
	return Options{
		Seeds:         g.Seeds,
		BaseSeed:      g.BaseSeed,
		Families:      fams,
		Grid:          g.Grid,
		OracleMaxApps: g.OracleMaxApps,
		Gen:           genscen.Config{MinApps: g.MinApps, MaxApps: g.MaxApps},
	}
}

// Compare returns human-readable mismatch descriptions between the
// golden corpus and a report (empty = conformant). Configuration
// mismatches are reported first: digests computed under different
// parameters are incomparable.
func (g *Golden) Compare(r *Report) []string {
	var diffs []string
	if g.Seeds != r.Seeds || g.BaseSeed != r.BaseSeed || g.Grid != r.Grid ||
		g.OracleMaxApps != r.OracleMaxApps || g.MinApps != r.MinApps || g.MaxApps != r.MaxApps {
		return []string{fmt.Sprintf(
			"golden corpus computed under seeds=%d baseSeed=%d grid=%d oracleMaxApps=%d apps=[%d,%d]; report ran seeds=%d baseSeed=%d grid=%d oracleMaxApps=%d apps=[%d,%d]",
			g.Seeds, g.BaseSeed, g.Grid, g.OracleMaxApps, g.MinApps, g.MaxApps,
			r.Seeds, r.BaseSeed, r.Grid, r.OracleMaxApps, r.MinApps, r.MaxApps)}
	}
	got := r.Digests()
	var names []string
	for name := range g.Digests {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := g.Digests[name]
		cur, ok := got[name]
		switch {
		case !ok:
			diffs = append(diffs, fmt.Sprintf("family %s: in golden corpus but absent from report", name))
		case cur != want:
			diffs = append(diffs, fmt.Sprintf("family %s: digest %s… != golden %s…", name, shortDigest(cur), shortDigest(want)))
		}
	}
	for name := range got {
		if _, ok := g.Digests[name]; !ok {
			diffs = append(diffs, fmt.Sprintf("family %s: not in golden corpus (regenerate with -update)", name))
		}
	}
	return diffs
}

// LoadGolden reads a golden corpus from disk.
func LoadGolden(path string) (*Golden, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g Golden
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("conform: parsing golden corpus %s: %w", path, err)
	}
	if len(g.Digests) == 0 {
		return nil, fmt.Errorf("conform: golden corpus %s has no digests", path)
	}
	return &g, nil
}

// SaveGolden writes a golden corpus to disk (indented, trailing
// newline, stable key order — a reviewable committed artifact).
func SaveGolden(path string, g *Golden) error {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
