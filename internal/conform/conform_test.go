package conform

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/genscen"
	"repro/internal/obs"
)

// TestGoldenDigests is the regression gate: re-running the committed
// corpus's scenarios must reproduce its digests bit-for-bit AND pass
// every cross-check. Any behavioral drift in model, sched, portfolio,
// sim, des, genscen or oracle fails here.
//
// To re-baseline after an intentional change:
//
//	go run ./cmd/conform -seeds 4 -golden internal/conform/testdata/golden.json -update
func TestGoldenDigests(t *testing.T) {
	gold, err := LoadGolden(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(gold.Options())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Families {
		for _, v := range f.Violations {
			t.Errorf("violation: %s seed %d [%s]: %s", v.Family, v.Seed, v.Check, v.Detail)
		}
	}
	for _, diff := range gold.Compare(rep) {
		t.Errorf("golden mismatch: %s", diff)
	}
}

// TestDigestsWorkerInvariant: the committed digests must not depend on
// the harness's worker count (otherwise the golden gate would be
// machine-dependent).
func TestDigestsWorkerInvariant(t *testing.T) {
	opt := Options{
		Seeds:    2,
		Families: []genscen.Family{genscen.AmdahlMix, genscen.NearOverflow},
	}
	opt.Workers = 1
	r1, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 5
	r5, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	d1, d5 := r1.Digests(), r5.Digests()
	for name, want := range d1 {
		if d5[name] != want {
			t.Errorf("family %s: digest differs between 1 and 5 workers", name)
		}
	}
}

// TestMetricsInvariantDigests is the observability non-perturbation
// gate at the harness level: instrumenting every layer (both portfolio
// engines, every DES run) must leave the per-family digests — canonical
// hashes of every schedule and event log produced — bit-identical to a
// bare run, at one worker and at several. The instrumented registry
// must also actually have observed the run and export cleanly.
func TestMetricsInvariantDigests(t *testing.T) {
	opt := Options{
		Seeds:    2,
		Families: []genscen.Family{genscen.AmdahlMix, genscen.NearOverflow},
	}
	for _, workers := range []int{1, 5} {
		opt.Workers = workers
		opt.Metrics = nil
		bare, err := Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		opt.Metrics = reg
		instrumented, err := Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		db, di := bare.Digests(), instrumented.Digests()
		for name, want := range db {
			if di[name] != want {
				t.Errorf("workers=%d family %s: digest differs with metrics enabled", workers, name)
			}
		}
		if instrumented.ViolationCount() != bare.ViolationCount() {
			t.Errorf("workers=%d: violation count differs with metrics enabled", workers)
		}
		byName := map[string]float64{}
		for _, s := range reg.Snapshot() {
			byName[s.Name] += s.Value
		}
		if byName["portfolio_batches_total"] == 0 || byName["des_simulations_total"] == 0 {
			t.Errorf("workers=%d: registry saw no traffic: %v", workers, byName)
		}
		var sb strings.Builder
		if err := reg.WriteProm(&sb); err != nil {
			t.Fatal(err)
		}
		if errs := obs.LintProm(strings.NewReader(sb.String())); len(errs) != 0 {
			t.Errorf("workers=%d: harness exposition fails lint: %v", workers, errs)
		}
	}
}

func TestMarkdownAndNDJSON(t *testing.T) {
	rep, err := Run(Options{Seeds: 1, Families: []genscen.Family{genscen.SingleApp}})
	if err != nil {
		t.Fatal(err)
	}
	var md bytes.Buffer
	if err := rep.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "single-app") || !strings.Contains(md.String(), "0 violation(s)") {
		t.Errorf("markdown missing expected content:\n%s", md.String())
	}

	var nd bytes.Buffer
	if err := rep.NDJSON(&nd); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&nd)
	types := map[string]int{}
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		types[line["type"].(string)]++
	}
	if types["family"] != 1 || types["summary"] != 1 {
		t.Errorf("NDJSON line types %v, want 1 family + 1 summary", types)
	}
}

func TestGoldenRoundTripAndCompare(t *testing.T) {
	rep, err := Run(Options{Seeds: 1, Families: []genscen.Family{genscen.SingleApp}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "golden.json")
	if err := SaveGolden(path, rep.Golden()); err != nil {
		t.Fatal(err)
	}
	gold, err := LoadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := gold.Compare(rep); len(diffs) != 0 {
		t.Errorf("round-tripped corpus mismatches its own report: %v", diffs)
	}

	// A corrupted digest must be reported.
	gold.Digests[genscen.SingleApp.String()] = strings.Repeat("0", 64)
	if diffs := gold.Compare(rep); len(diffs) != 1 {
		t.Errorf("corrupted digest produced %d diffs, want 1", len(diffs))
	}

	// A config mismatch must be reported as incomparable.
	gold2, _ := LoadGolden(path)
	gold2.Seeds = 99
	diffs := gold2.Compare(rep)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "computed under") {
		t.Errorf("config mismatch diffs: %v", diffs)
	}

	if _, err := LoadGolden(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("loading an absent corpus succeeded")
	}
}

// TestViolationPlumbing: a synthetic violation must flow into the
// report, the count, the markdown and the NDJSON surfaces.
func TestViolationPlumbing(t *testing.T) {
	rep := &Report{Families: []FamilyResult{{
		Family:    "synthetic",
		Scenarios: 1,
		Digest:    strings.Repeat("ab", 32),
		Violations: []Violation{{
			Family: "synthetic", Seed: 3, Check: "unit", Detail: "made up",
		}},
	}}}
	if rep.ViolationCount() != 1 {
		t.Fatalf("violation count %d", rep.ViolationCount())
	}
	var md bytes.Buffer
	if err := rep.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "made up") || !strings.Contains(md.String(), "Reproduce") {
		t.Errorf("markdown does not surface the violation:\n%s", md.String())
	}
	var nd bytes.Buffer
	if err := rep.NDJSON(&nd); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nd.String(), `"type":"violation"`) {
		t.Errorf("NDJSON does not surface the violation:\n%s", nd.String())
	}
}

// failWriter fails after n bytes, for exercising truncated-output
// error propagation.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errBroken
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errBroken
	}
	f.n -= len(p)
	return len(p), nil
}

var errBroken = errors.New("broken pipe")

func TestMarkdownPropagatesWriteErrors(t *testing.T) {
	rep, err := Run(Options{Seeds: 1, Families: []genscen.Family{genscen.SingleApp}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Markdown(&failWriter{n: 10}); err == nil {
		t.Error("truncated markdown render returned nil error")
	}
	if err := rep.NDJSON(&failWriter{n: 10}); err == nil {
		t.Error("truncated NDJSON render returned nil error")
	}
}
