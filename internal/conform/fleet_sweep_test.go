//go:build conform

package conform

import (
	"testing"

	"repro/internal/genscen"
)

// TestFleetRoutingDeterminism is the acceptance run of the fleet
// harness: 100 seeds per fleet family, every cross-check enforced —
// routing determinism across worker counts, the single-node reduction
// to internal/des, and the fleet-vs-best-solo stretch invariant. It is
// build-tagged so ordinary `go test ./...` stays fast; CI and
// developers run it with:
//
//	go test -tags conform -run TestFleetRoutingDeterminism ./internal/conform
func TestFleetRoutingDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep skipped in -short mode")
	}
	// BaseSeed 1 matches the CLI default, so this test and the
	// documented `conform -fleet -seeds 100` run the same scenarios.
	rep, err := RunFleet(FleetOptions{Seeds: 100, BaseSeed: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Families {
		t.Logf("%s: %d scenarios, best routing %v", f.Family, f.Scenarios, f.BestRouting)
		for _, v := range f.Violations {
			t.Errorf("violation: %s seed %d [%s]: %s", v.Family, v.Seed, v.Check, v.Detail)
		}
	}
	if got, want := len(rep.Families), len(genscen.FleetFamilies); got != want {
		t.Errorf("swept %d fleet families, want %d", got, want)
	}
}
