package benchgate

import (
	"repro/internal/stats"
)

// Metric is the aggregate of one benchmark metric over repeated runs:
// the median and the median absolute deviation (MAD), the robust noise
// window the gate uses. N is the number of runs aggregated.
type Metric struct {
	Median float64 `json:"median"`
	MAD    float64 `json:"mad"`
	N      int     `json:"n"`
}

// present reports whether the metric was observed at all.
func (m Metric) present() bool { return m.N > 0 }

// Sample is the aggregate of one benchmark over repeated runs.
type Sample struct {
	NsOp     Metric `json:"ns_op"`
	BOp      Metric `json:"b_op,omitempty"`
	AllocsOp Metric `json:"allocs_op,omitempty"`
}

// Aggregate groups measurements by benchmark name and reduces each
// metric to its median and MAD. Input order does not matter; the result
// is a pure function of the multiset of measurements.
func Aggregate(ms []Measurement) map[string]Sample {
	type acc struct {
		ns, b, allocs []float64
	}
	accs := make(map[string]*acc)
	for _, m := range ms {
		a := accs[m.Name]
		if a == nil {
			a = &acc{}
			accs[m.Name] = a
		}
		a.ns = append(a.ns, m.NsOp)
		if m.HasBOp {
			a.b = append(a.b, m.BOp)
		}
		if m.HasAllocs {
			a.allocs = append(a.allocs, m.AllocsOp)
		}
	}
	out := make(map[string]Sample, len(accs))
	for name, a := range accs {
		out[name] = Sample{
			NsOp:     reduce(a.ns),
			BOp:      reduce(a.b),
			AllocsOp: reduce(a.allocs),
		}
	}
	return out
}

// reduce computes median and MAD of vs; an empty slice yields a
// zero (absent) Metric.
func reduce(vs []float64) Metric {
	if len(vs) == 0 {
		return Metric{}
	}
	return Metric{Median: stats.Median(vs), MAD: stats.MAD(vs), N: len(vs)}
}
