package benchgate

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// mkBase builds a one-benchmark baseline for verdict tests.
func mkBase(name string, ns, b, allocs Metric) *Baseline {
	return &Baseline{
		Schema:     baselineSchema,
		Benchmarks: map[string]Sample{name: {NsOp: ns, BOp: b, AllocsOp: allocs}},
	}
}

func findingFor(t *testing.T, rep *Report, metric string) Finding {
	t.Helper()
	for _, f := range rep.Findings {
		if f.Metric == metric {
			return f
		}
	}
	t.Fatalf("no finding for metric %q in %+v", metric, rep.Findings)
	return Finding{}
}

func TestCompareVerdicts(t *testing.T) {
	tol := DefaultTolerances()
	base := mkBase("BenchmarkA",
		Metric{Median: 1000, MAD: 10, N: 10},
		Metric{Median: 2048, MAD: 0, N: 10},
		Metric{Median: 100, MAD: 0, N: 10})

	cases := []struct {
		name    string
		cur     Sample
		metric  string
		verdict Verdict
	}{
		{
			name: "within tolerance is ok",
			cur: Sample{NsOp: Metric{Median: 1100, MAD: 8, N: 10},
				BOp: Metric{Median: 2048, N: 10}, AllocsOp: Metric{Median: 100, N: 10}},
			metric: "ns/op", verdict: VerdictOK,
		},
		{
			name: "big timing regression flagged",
			cur: Sample{NsOp: Metric{Median: 1500, MAD: 10, N: 10},
				BOp: Metric{Median: 2048, N: 10}, AllocsOp: Metric{Median: 100, N: 10}},
			metric: "ns/op", verdict: VerdictRegression,
		},
		{
			name: "outside tolerance but inside noise window is ok",
			// +40% exceeds the 30% tolerance, but the current run is so
			// noisy (MAD 200 → window 600) that the delta of 400 is not
			// statistically significant.
			cur: Sample{NsOp: Metric{Median: 1400, MAD: 200, N: 10},
				BOp: Metric{Median: 2048, N: 10}, AllocsOp: Metric{Median: 100, N: 10}},
			metric: "ns/op", verdict: VerdictOK,
		},
		{
			name: "improvement flagged",
			cur: Sample{NsOp: Metric{Median: 500, MAD: 5, N: 10},
				BOp: Metric{Median: 2048, N: 10}, AllocsOp: Metric{Median: 100, N: 10}},
			metric: "ns/op", verdict: VerdictImprovement,
		},
		{
			name: "alloc creep beyond 5% fails",
			cur: Sample{NsOp: Metric{Median: 1000, MAD: 10, N: 10},
				BOp: Metric{Median: 2048, N: 10}, AllocsOp: Metric{Median: 106, MAD: 0, N: 10}},
			metric: "allocs/op", verdict: VerdictRegression,
		},
		{
			name: "alloc reduction is an improvement",
			cur: Sample{NsOp: Metric{Median: 1000, MAD: 10, N: 10},
				BOp: Metric{Median: 2048, N: 10}, AllocsOp: Metric{Median: 50, MAD: 0, N: 10}},
			metric: "allocs/op", verdict: VerdictImprovement,
		},
		{
			name: "bytes regression beyond 10% fails",
			cur: Sample{NsOp: Metric{Median: 1000, MAD: 10, N: 10},
				BOp: Metric{Median: 2400, MAD: 0, N: 10}, AllocsOp: Metric{Median: 100, N: 10}},
			metric: "B/op", verdict: VerdictRegression,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Compare(base, map[string]Sample{"BenchmarkA": tc.cur}, tol)
			f := findingFor(t, rep, tc.metric)
			if f.Verdict != tc.verdict {
				t.Errorf("verdict %s, want %s (finding %+v)", f.Verdict, tc.verdict, f)
			}
			wantPass := tc.verdict != VerdictRegression
			if rep.Pass() != wantPass {
				t.Errorf("Pass() = %v, want %v", rep.Pass(), wantPass)
			}
		})
	}
}

// TestCompareDisabledMetricNeverGates covers the cross-machine CI
// mode: with a negative ns/op tolerance even a massive timing delta is
// reported but never flagged, while allocs/op still gates.
func TestCompareDisabledMetricNeverGates(t *testing.T) {
	tol := DefaultTolerances()
	tol.NsPct = -1
	base := mkBase("BenchmarkA",
		Metric{Median: 1000, MAD: 1, N: 10}, Metric{}, Metric{Median: 100, MAD: 0, N: 10})
	cur := map[string]Sample{"BenchmarkA": {
		NsOp:     Metric{Median: 9000, MAD: 1, N: 10},
		AllocsOp: Metric{Median: 150, MAD: 0, N: 10},
	}}
	rep := Compare(base, cur, tol)
	if f := findingFor(t, rep, "ns/op"); f.Verdict != VerdictOK || f.DeltaPct != 800 {
		t.Errorf("disabled ns/op gate produced %+v", f)
	}
	if f := findingFor(t, rep, "allocs/op"); f.Verdict != VerdictRegression {
		t.Errorf("allocs/op no longer gates: %+v", f)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := mkBase("BenchmarkGone", Metric{Median: 10, N: 3}, Metric{}, Metric{})
	rep := Compare(base, map[string]Sample{"BenchmarkOther": {NsOp: Metric{Median: 1, N: 3}}}, DefaultTolerances())
	if rep.Pass() {
		t.Fatal("gate passed although a baseline benchmark vanished from the run")
	}
	var sawMissing, sawNew bool
	for _, f := range rep.Findings {
		switch f.Verdict {
		case VerdictMissing:
			sawMissing = f.Benchmark == "BenchmarkGone"
		case VerdictNew:
			sawNew = f.Benchmark == "BenchmarkOther"
		}
	}
	if !sawMissing {
		t.Error("missing benchmark not reported")
	}
	if !sawNew {
		t.Error("new benchmark not reported")
	}
	if n := len(rep.Failures()); n != 1 {
		t.Errorf("Failures() = %d findings, want 1 (new benchmarks must not fail)", n)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	// A 0 B/op baseline must flag any byte growth beyond noise.
	base := mkBase("BenchmarkZ", Metric{Median: 10, N: 3}, Metric{Median: 0, MAD: 0, N: 3}, Metric{})
	cur := map[string]Sample{"BenchmarkZ": {
		NsOp: Metric{Median: 10, N: 3}, BOp: Metric{Median: 64, MAD: 0, N: 3},
	}}
	rep := Compare(base, cur, DefaultTolerances())
	if f := findingFor(t, rep, "B/op"); f.Verdict != VerdictRegression {
		t.Errorf("0 → 64 B/op verdict %s, want regression", f.Verdict)
	}
}

func TestFindingStringSeparatesVerdict(t *testing.T) {
	// "improvement" is wider than the column pad; the verdict must still
	// be separated from the benchmark name in the log line.
	for _, v := range []Verdict{VerdictOK, VerdictImprovement, VerdictRegression} {
		f := Finding{Benchmark: "BenchmarkX", Metric: "ns/op", Base: 2, New: 1, Verdict: v}
		if got := f.String(); !strings.Contains(got, string(v)+" ") {
			t.Errorf("verdict %s runs into the benchmark name: %q", v, got)
		}
	}
}

func TestSpeedupMissingBenchmarkFailsLoudly(t *testing.T) {
	cur := map[string]Sample{
		"BenchmarkPortfolioSweep/workers=1": {NsOp: Metric{Median: 100, N: 3}},
		"BenchmarkPortfolioSweep/workers=4": {NsOp: Metric{Median: 40, N: 3}},
	}
	s, err := Speedup(cur, `^BenchmarkPortfolioSweep/workers=1$`, `^BenchmarkPortfolioSweep/workers=([2-9]|[1-9][0-9]+)$`)
	if err != nil {
		t.Fatal(err)
	}
	if s != 2.5 {
		t.Errorf("speedup = %g, want 2.5", s)
	}
	// The old scripts/bench.sh awk pipeline silently passed when a
	// benchmark disappeared; the gate must error instead.
	if _, err := Speedup(cur, `^BenchmarkRenamedAway$`, `^BenchmarkPortfolioSweep/`); err == nil {
		t.Fatal("missing serial benchmark did not fail the speedup gate")
	}
	if _, err := Speedup(cur, `^BenchmarkPortfolioSweep/workers=1$`, `^BenchmarkRenamedAway$`); err == nil {
		t.Fatal("missing parallel benchmark did not fail the speedup gate")
	}
}

func TestBaselineAndTrajectoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := Context{GOOS: "linux", GOARCH: "amd64", CPU: "test-cpu"}
	cur := map[string]Sample{
		"BenchmarkA": {
			NsOp:     Metric{Median: 123.5, MAD: 1.5, N: 10},
			BOp:      Metric{Median: 2048, MAD: 0, N: 10},
			AllocsOp: Metric{Median: 17, MAD: 0, N: 10},
		},
		"BenchmarkB/sub=x": {NsOp: Metric{Median: 9, MAD: 0.25, N: 10}},
	}

	bpath := filepath.Join(dir, "baseline.json")
	if err := NewBaseline(cur, ctx).Save(bpath); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(bpath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Benchmarks, cur) || loaded.Context != ctx {
		t.Errorf("baseline round trip mismatch:\nsaved  %+v\nloaded %+v", cur, loaded.Benchmarks)
	}

	rep := Compare(loaded, cur, DefaultTolerances())
	if !rep.Pass() {
		t.Fatalf("self-comparison failed: %+v", rep.Findings)
	}
	tpath := filepath.Join(dir, "BENCH_test.json")
	traj := NewTrajectory("PR test", bpath, ctx, cur, rep)
	if err := traj.Save(tpath); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTrajectory(tpath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Benchmarks, cur) || back.Label != "PR test" || !back.Pass {
		t.Errorf("trajectory round trip mismatch: %+v", back)
	}
	if len(back.Findings) != len(rep.Findings) {
		t.Errorf("findings lost in round trip: %d vs %d", len(back.Findings), len(rep.Findings))
	}

	// A second Save must be byte-identical (deterministic encoding).
	tpath2 := filepath.Join(dir, "BENCH_test2.json")
	if err := traj.Save(tpath2); err != nil {
		t.Fatal(err)
	}
	d1, d2 := mustRead(t, tpath), mustRead(t, tpath2)
	if d1 != d2 {
		t.Error("trajectory encoding is not deterministic")
	}
}

func TestLoadBaselineRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := writeFile(p, content); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := LoadBaseline(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing baseline file did not error")
	}
	if _, err := LoadBaseline(write("garbage.json", "{")); err == nil {
		t.Error("corrupt baseline did not error")
	}
	if _, err := LoadBaseline(write("schema.json", `{"schema":99,"benchmarks":{"X":{"ns_op":{"median":1,"n":1}}}}`)); err == nil {
		t.Error("wrong schema did not error")
	}
	if _, err := LoadBaseline(write("empty.json", `{"schema":1,"benchmarks":{}}`)); err == nil {
		t.Error("baseline gating nothing did not error")
	}
}
