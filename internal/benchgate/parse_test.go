package benchgate

import (
	"strings"
	"testing"
)

func TestParseTable(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		wantErr bool
		check   func(t *testing.T, ms []Measurement, ctx Context)
	}{
		{
			name: "plain ns/op line",
			input: "BenchmarkFoo \t 100 \t 123.5 ns/op\n" +
				"PASS\nok  \trepro/internal/foo\t0.1s\n",
			check: func(t *testing.T, ms []Measurement, _ Context) {
				if len(ms) != 1 {
					t.Fatalf("got %d measurements, want 1", len(ms))
				}
				m := ms[0]
				if m.Name != "BenchmarkFoo" || m.Iterations != 100 || m.NsOp != 123.5 {
					t.Errorf("bad measurement %+v", m)
				}
				if m.HasBOp || m.HasAllocs {
					t.Errorf("phantom benchmem metrics in %+v", m)
				}
			},
		},
		{
			name:  "benchmem metrics and GOMAXPROCS suffix",
			input: "BenchmarkSweep/workers=4-8   30   456 ns/op   1024 B/op   17 allocs/op\n",
			check: func(t *testing.T, ms []Measurement, _ Context) {
				m := ms[0]
				if m.Name != "BenchmarkSweep/workers=4" {
					t.Errorf("GOMAXPROCS suffix not stripped: %q", m.Name)
				}
				if !m.HasBOp || m.BOp != 1024 || !m.HasAllocs || m.AllocsOp != 17 {
					t.Errorf("benchmem metrics wrong: %+v", m)
				}
			},
		},
		{
			name: "multiple GOMAXPROCS variants of one benchmark collapse",
			input: "BenchmarkX-2  10  100 ns/op\n" +
				"BenchmarkX-8  10  90 ns/op\n" +
				"BenchmarkX    10  110 ns/op\n",
			check: func(t *testing.T, ms []Measurement, _ Context) {
				for _, m := range ms {
					if m.Name != "BenchmarkX" {
						t.Errorf("variant %q not normalized", m.Name)
					}
				}
				if len(ms) != 3 {
					t.Errorf("got %d measurements, want 3", len(ms))
				}
			},
		},
		{
			name:  "custom units ignored",
			input: "BenchmarkIO  5  200 ns/op  88.4 MB/s  3 widgets/op\n",
			check: func(t *testing.T, ms []Measurement, _ Context) {
				m := ms[0]
				if m.NsOp != 200 || m.HasBOp || m.HasAllocs {
					t.Errorf("custom units leaked into %+v", m)
				}
			},
		},
		{
			name: "context captured",
			input: "goos: linux\ngoarch: amd64\npkg: repro/internal/portfolio\n" +
				"cpu: Intel(R) Xeon(R)\nBenchmarkY  1  5 ns/op\n",
			check: func(t *testing.T, _ []Measurement, ctx Context) {
				if ctx.GOOS != "linux" || ctx.GOARCH != "amd64" ||
					ctx.Pkg != "repro/internal/portfolio" || !strings.Contains(ctx.CPU, "Xeon") {
					t.Errorf("context not captured: %+v", ctx)
				}
			},
		},
		{
			name:    "malformed iteration count",
			input:   "BenchmarkBad  xyz  100 ns/op\n",
			wantErr: true,
		},
		{
			name:    "malformed metric value",
			input:   "BenchmarkBad  10  abc ns/op\n",
			wantErr: true,
		},
		{
			name:    "truncated line",
			input:   "BenchmarkBad  10\n",
			wantErr: true,
		},
		{
			name:    "benchmark line without ns/op",
			input:   "BenchmarkBad  10  99 B/op\n",
			wantErr: true,
		},
		{
			name:  "empty input",
			input: "",
			check: func(t *testing.T, ms []Measurement, _ Context) {
				if len(ms) != 0 {
					t.Errorf("measurements from empty input: %+v", ms)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ms, ctx, err := Parse(strings.NewReader(tc.input))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got measurements %+v", ms)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, ms, ctx)
		})
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":              "BenchmarkFoo",
		"BenchmarkFoo":                "BenchmarkFoo",
		"BenchmarkFoo/sub=a-b-4":      "BenchmarkFoo/sub=a-b",
		"BenchmarkFoo/sub=a-b":        "BenchmarkFoo/sub=a-b", // non-numeric tail survives
		"BenchmarkSweep/workers=1-16": "BenchmarkSweep/workers=1",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAggregateMedianAndMAD(t *testing.T) {
	ms := []Measurement{
		{Name: "BenchmarkA", NsOp: 100, BOp: 10, AllocsOp: 2, HasBOp: true, HasAllocs: true},
		{Name: "BenchmarkA", NsOp: 110, BOp: 10, AllocsOp: 2, HasBOp: true, HasAllocs: true},
		{Name: "BenchmarkA", NsOp: 300, BOp: 10, AllocsOp: 2, HasBOp: true, HasAllocs: true}, // outlier
		{Name: "BenchmarkB", NsOp: 50},
	}
	agg := Aggregate(ms)
	a := agg["BenchmarkA"]
	if a.NsOp.Median != 110 {
		t.Errorf("median ns/op = %g, want 110 (robust to the outlier)", a.NsOp.Median)
	}
	// deviations |100-110|, |110-110|, |300-110| = 10, 0, 190 → MAD 10.
	if a.NsOp.MAD != 10 {
		t.Errorf("MAD = %g, want 10", a.NsOp.MAD)
	}
	if a.BOp.Median != 10 || a.BOp.MAD != 0 || a.AllocsOp.Median != 2 {
		t.Errorf("benchmem aggregates wrong: %+v", a)
	}
	if a.NsOp.N != 3 || a.BOp.N != 3 {
		t.Errorf("sample counts wrong: %+v", a)
	}
	b := agg["BenchmarkB"]
	if b.NsOp.Median != 50 || b.BOp.present() || b.AllocsOp.present() {
		t.Errorf("BenchmarkB aggregate wrong: %+v", b)
	}
	// Even-length median.
	even := Aggregate([]Measurement{{Name: "C", NsOp: 1}, {Name: "C", NsOp: 3}})
	if m := even["C"].NsOp.Median; m != 2 {
		t.Errorf("even median = %g, want 2", m)
	}
}
