package benchgate

import (
	"os"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func mustRead(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
