package benchgate

import (
	"fmt"
	"regexp"
)

// Speedup computes serial/parallel from aggregated samples: the minimum
// ns/op median among benchmarks matching serialRe divided by the
// minimum among those matching parallelRe. It replaces the awk
// extraction the old scripts/bench.sh performed — and unlike it, a
// pattern that matches nothing is a hard error, so a renamed or
// vanished benchmark can no longer silently pass the gate.
func Speedup(cur map[string]Sample, serialRe, parallelRe string) (float64, error) {
	serial, err := minNsOp(cur, serialRe)
	if err != nil {
		return 0, err
	}
	parallel, err := minNsOp(cur, parallelRe)
	if err != nil {
		return 0, err
	}
	if parallel <= 0 {
		return 0, fmt.Errorf("benchgate: non-positive parallel ns/op %g", parallel)
	}
	return serial / parallel, nil
}

// minNsOp returns the smallest ns/op median among benchmarks matching
// pattern; no match is an error.
func minNsOp(cur map[string]Sample, pattern string) (float64, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return 0, fmt.Errorf("benchgate: bad benchmark pattern %q: %w", pattern, err)
	}
	best, found := 0.0, false
	for name, s := range cur {
		if !re.MatchString(name) || !s.NsOp.present() {
			continue
		}
		if !found || s.NsOp.Median < best {
			best, found = s.NsOp.Median, true
		}
	}
	if !found {
		return 0, fmt.Errorf("benchgate: no benchmark matches %q — renamed or missing benchmarks fail the gate", pattern)
	}
	return best, nil
}
