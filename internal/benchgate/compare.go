package benchgate

import (
	"fmt"
	"sort"
)

// Tolerances are the per-metric relative tolerances (in percent) and
// the MAD multiplier of the noise window. A change counts as
// significant only when it exceeds BOTH the relative tolerance and
// MADK × max(baseline MAD, current MAD) in absolute terms. A negative
// tolerance disables gating for that metric entirely (its findings
// are still reported, verdict ok): the CI bench job uses this for
// ns/op, whose absolute baseline does not travel across machines,
// while B/op and allocs/op — deterministic and machine-independent —
// stay strict everywhere.
type Tolerances struct {
	NsPct     float64 // ns/op tolerance, machine-sensitive → generous; < 0 disables
	BPct      float64 // B/op tolerance; < 0 disables
	AllocsPct float64 // allocs/op tolerance, deterministic → tight; < 0 disables
	MADK      float64 // noise window multiplier
}

// DefaultTolerances reflect each metric's stability: timing varies
// across machines and load, bytes and allocation counts are nearly
// deterministic.
func DefaultTolerances() Tolerances {
	return Tolerances{NsPct: 30, BPct: 10, AllocsPct: 5, MADK: 3}
}

// Verdict classifies one benchmark × metric comparison.
type Verdict string

const (
	// VerdictOK: within tolerance or inside the noise window.
	VerdictOK Verdict = "ok"
	// VerdictImprovement: significantly better than baseline.
	VerdictImprovement Verdict = "improvement"
	// VerdictRegression: significantly worse than baseline; fails the gate.
	VerdictRegression Verdict = "regression"
	// VerdictMissing: the baseline benchmark did not appear in the new
	// run; fails the gate (a vanished benchmark is a bypass, not a pass).
	VerdictMissing Verdict = "missing"
	// VerdictNew: the new run has a benchmark the baseline lacks;
	// informational (refresh the baseline to start gating it).
	VerdictNew Verdict = "new"
)

// Finding is one comparison outcome.
type Finding struct {
	Benchmark string  `json:"benchmark"`
	Metric    string  `json:"metric,omitempty"` // "ns/op", "B/op", "allocs/op"; empty for missing/new
	Base      float64 `json:"base,omitempty"`
	New       float64 `json:"new,omitempty"`
	DeltaPct  float64 `json:"delta_pct,omitempty"`
	Verdict   Verdict `json:"verdict"`
}

// String renders the finding for gate logs.
func (f Finding) String() string {
	switch f.Verdict {
	case VerdictMissing:
		return fmt.Sprintf("MISSING   %s: in baseline but absent from this run", f.Benchmark)
	case VerdictNew:
		return fmt.Sprintf("new       %s: not in baseline (refresh to gate it)", f.Benchmark)
	default:
		// "improvement" is 11 runes, wider than the pad: the explicit
		// space keeps verdict and benchmark name separated either way.
		return fmt.Sprintf("%-10s %s %s: %.6g -> %.6g (%+.1f%%)",
			f.Verdict, f.Benchmark, f.Metric, f.Base, f.New, f.DeltaPct)
	}
}

// Report is the full outcome of one gate run.
type Report struct {
	Findings []Finding `json:"findings"`
}

// Pass reports whether the gate passes: no regressions and no missing
// benchmarks.
func (r *Report) Pass() bool {
	for _, f := range r.Findings {
		if f.Verdict == VerdictRegression || f.Verdict == VerdictMissing {
			return false
		}
	}
	return true
}

// Failures returns the findings that fail the gate.
func (r *Report) Failures() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Verdict == VerdictRegression || f.Verdict == VerdictMissing {
			out = append(out, f)
		}
	}
	return out
}

// Compare gates the current aggregates against the baseline. Every
// baseline benchmark must appear in the current run (else
// VerdictMissing); per-metric comparisons follow the Tolerances
// semantics. Findings are sorted by benchmark name then metric, so
// reports are deterministic.
func Compare(base *Baseline, cur map[string]Sample, tol Tolerances) *Report {
	rep := &Report{}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bs := base.Benchmarks[name]
		cs, ok := cur[name]
		if !ok {
			rep.Findings = append(rep.Findings, Finding{Benchmark: name, Verdict: VerdictMissing})
			continue
		}
		rep.Findings = append(rep.Findings, compareMetric(name, "ns/op", bs.NsOp, cs.NsOp, tol.NsPct, tol.MADK)...)
		rep.Findings = append(rep.Findings, compareMetric(name, "B/op", bs.BOp, cs.BOp, tol.BPct, tol.MADK)...)
		rep.Findings = append(rep.Findings, compareMetric(name, "allocs/op", bs.AllocsOp, cs.AllocsOp, tol.AllocsPct, tol.MADK)...)
	}
	var extra []string
	for name := range cur {
		if _, ok := base.Benchmarks[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		rep.Findings = append(rep.Findings, Finding{Benchmark: name, Verdict: VerdictNew})
	}
	return rep
}

// compareMetric produces at most one finding for a benchmark metric. A
// metric absent on either side is not comparable and yields nothing
// (e.g. a baseline recorded without -benchmem); a negative tolerance
// reports the delta without ever flagging it.
func compareMetric(bench, metric string, base, cur Metric, tolPct, madK float64) []Finding {
	if !base.present() || !cur.present() {
		return nil
	}
	f := Finding{Benchmark: bench, Metric: metric, Base: base.Median, New: cur.Median, Verdict: VerdictOK}
	diff := cur.Median - base.Median
	if base.Median != 0 {
		f.DeltaPct = diff / base.Median * 100
	} else if cur.Median != 0 {
		f.DeltaPct = 100 // degenerate zero baseline: any growth is "100%"
	}
	if tolPct < 0 {
		return []Finding{f}
	}
	noise := madK * maxF(base.MAD, cur.MAD)
	tolAbs := base.Median * tolPct / 100
	switch {
	case diff > tolAbs && diff > noise:
		f.Verdict = VerdictRegression
	case -diff > tolAbs && -diff > noise:
		f.Verdict = VerdictImprovement
	}
	return []Finding{f}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
