package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
)

// baselineSchema versions the JSON layout of baseline and trajectory
// files.
const baselineSchema = 1

// Baseline is the committed reference the gate compares against.
type Baseline struct {
	Schema int `json:"schema"`
	// Context records where the baseline was measured. Informational:
	// timing tolerances, not the gate, absorb machine differences.
	Context Context `json:"context,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// aggregated sample.
	Benchmarks map[string]Sample `json:"benchmarks"`
}

// NewBaseline builds a baseline from aggregated samples.
func NewBaseline(cur map[string]Sample, ctx Context) *Baseline {
	return &Baseline{Schema: baselineSchema, Context: ctx, Benchmarks: cur}
}

// LoadBaseline reads and validates a baseline JSON file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchgate: parsing baseline %s: %w", path, err)
	}
	if b.Schema != baselineSchema {
		return nil, fmt.Errorf("benchgate: baseline %s has schema %d, want %d", path, b.Schema, baselineSchema)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchgate: baseline %s gates no benchmarks", path)
	}
	return &b, nil
}

// Save writes the baseline as deterministic, indented JSON (map keys
// are sorted by encoding/json).
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("benchgate: encoding baseline: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("benchgate: writing baseline: %w", err)
	}
	return nil
}

// Trajectory is the machine-readable artifact one gate run emits
// (BENCH_<n>.json): the aggregated current samples, the comparison
// findings against the baseline, and the overall verdict. Committed
// trajectory files form the repository's performance history.
type Trajectory struct {
	Schema int `json:"schema"`
	// Label identifies the run, e.g. "PR 4".
	Label   string  `json:"label,omitempty"`
	Context Context `json:"context,omitempty"`
	// Baseline is the path of the baseline the run compared against.
	Baseline   string            `json:"baseline,omitempty"`
	Benchmarks map[string]Sample `json:"benchmarks"`
	Findings   []Finding         `json:"findings"`
	Pass       bool              `json:"pass"`
}

// NewTrajectory assembles the artifact for one gate run.
func NewTrajectory(label, baselinePath string, ctx Context, cur map[string]Sample, rep *Report) *Trajectory {
	return &Trajectory{
		Schema:     baselineSchema,
		Label:      label,
		Context:    ctx,
		Baseline:   baselinePath,
		Benchmarks: cur,
		Findings:   rep.Findings,
		Pass:       rep.Pass(),
	}
}

// Save writes the trajectory as deterministic, indented JSON.
func (t *Trajectory) Save(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("benchgate: encoding trajectory: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("benchgate: writing trajectory: %w", err)
	}
	return nil
}

// LoadTrajectory reads a trajectory artifact back, for round-trip
// verification and history tooling.
func LoadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: reading trajectory: %w", err)
	}
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("benchgate: parsing trajectory %s: %w", path, err)
	}
	return &t, nil
}
