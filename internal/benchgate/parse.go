// Package benchgate turns `go test -bench` output into a statistical
// regression gate. It parses benchmark lines from repeated runs
// (-count=N), aggregates each benchmark × metric into a median with a
// MAD (median absolute deviation) noise window, compares the result
// against a committed JSON baseline with per-metric tolerances, and
// emits a machine-readable trajectory artifact (BENCH_*.json). A
// regression is flagged only when it is both outside the relative
// tolerance AND outside the noise window, so the gate follows the
// repeated-measurement methodology of the source paper instead of
// diffing single noisy runs. Baseline entries missing from the new run
// fail loudly — a silently disappearing benchmark is a gate bypass,
// not a pass.
package benchgate

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Measurement is one parsed benchmark result line.
type Measurement struct {
	// Name is the benchmark name with the trailing GOMAXPROCS suffix
	// ("-8") stripped, so baselines recorded on machines with different
	// core counts still align.
	Name string
	// Iterations is the b.N the line reports.
	Iterations int64
	// NsOp is the ns/op value; every benchmark line has one.
	NsOp float64
	// BOp and AllocsOp are the -benchmem metrics; Has* report presence.
	BOp       float64
	AllocsOp  float64
	HasBOp    bool
	HasAllocs bool
}

// Context is the run metadata `go test -bench` prints before results.
type Context struct {
	GOOS   string `json:"goos,omitempty"`
	GOARCH string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
}

// Parse reads `go test -bench` output and returns every benchmark
// measurement plus the run context. Lines that do not start with
// "Benchmark" are metadata or test chatter and are skipped (context
// lines are captured); a line that starts with "Benchmark" but cannot
// be parsed is an error — truncated or corrupted bench logs must not
// silently weaken the gate.
func Parse(r io.Reader) ([]Measurement, Context, error) {
	var (
		ms  []Measurement
		ctx Context
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			ctx.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			ctx.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			// Several packages may contribute; keep them all, comma-joined.
			p := strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			if ctx.Pkg == "" {
				ctx.Pkg = p
			} else if !strings.Contains(ctx.Pkg, p) {
				ctx.Pkg += "," + p
			}
			continue
		case strings.HasPrefix(line, "cpu:"):
			ctx.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		m, err := parseLine(line)
		if err != nil {
			return nil, ctx, fmt.Errorf("benchgate: line %d: %w", lineNo, err)
		}
		ms = append(ms, m)
	}
	if err := sc.Err(); err != nil {
		return nil, ctx, fmt.Errorf("benchgate: reading bench output: %w", err)
	}
	return ms, ctx, nil
}

// parseLine parses one "BenchmarkFoo/sub-8  100  123 ns/op  4 B/op  2 allocs/op" line.
func parseLine(line string) (Measurement, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Measurement{}, fmt.Errorf("malformed benchmark line %q: want at least name, iterations and one metric", line)
	}
	m := Measurement{Name: stripProcs(fields[0])}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters < 0 {
		return Measurement{}, fmt.Errorf("malformed iteration count %q in %q", fields[1], line)
	}
	m.Iterations = iters
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Measurement{}, fmt.Errorf("malformed metric value %q in %q", fields[i], line)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			m.NsOp = val
			sawNs = true
		case "B/op":
			m.BOp = val
			m.HasBOp = true
		case "allocs/op":
			m.AllocsOp = val
			m.HasAllocs = true
		default:
			// Custom units (MB/s, user-reported metrics) pass through
			// unharvested; they are not gated.
		}
	}
	if !sawNs {
		return Measurement{}, fmt.Errorf("benchmark line %q has no ns/op metric", line)
	}
	return m, nil
}

// stripProcs removes the "-N" GOMAXPROCS suffix go test appends to
// benchmark names. The suffix is only stripped when it is a plain
// integer, so sub-benchmark names containing dashes survive intact.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
