package cat

import (
	"math"
	"strings"
	"testing"
)

// TestPartitionEdgeTable drives Partition through the CAT boundary
// geometry in one table: way counts at and beyond the hardware limits,
// more applications than ways, shares at the extremes.
func TestPartitionEdgeTable(t *testing.T) {
	cases := []struct {
		name    string
		shares  []float64
		ways    int
		wantErr string // substring, "" = success
		counts  []int  // expected way counts on success (nil = skip)
	}{
		{name: "zero ways", shares: []float64{0.5}, ways: 0, wantErr: "outside [1, 64]"},
		{name: "negative ways", shares: []float64{0.5}, ways: -4, wantErr: "outside [1, 64]"},
		{name: "65 ways exceeds uint64 masks", shares: []float64{0.5}, ways: 65, wantErr: "outside [1, 64]"},
		{name: "one way one app", shares: []float64{1}, ways: 1, counts: []int{1}},
		{name: "one way tiny share", shares: []float64{0.01}, ways: 1, counts: []int{1}},
		{name: "one way two sharers", shares: []float64{0.5, 0.5}, ways: 1, wantErr: "only 1 ways exist"},
		{name: "more sharers than ways", shares: []float64{0.25, 0.25, 0.25, 0.25}, ways: 3, wantErr: "only 3 ways exist"},
		{name: "64-way upper bound", shares: []float64{0.5, 0.5}, ways: 64, counts: []int{32, 32}},
		{name: "share above one", shares: []float64{1.5}, ways: 8, wantErr: "outside [0,1]"},
		{name: "negative share", shares: []float64{-0.1}, ways: 8, wantErr: "outside [0,1]"},
		{name: "NaN share", shares: []float64{math.NaN()}, ways: 8, wantErr: "outside [0,1]"},
		{name: "sum above one", shares: []float64{0.7, 0.7}, ways: 8, wantErr: "sum to"},
		{name: "empty shares", shares: nil, ways: 8, counts: []int{}},
		{name: "all zero shares", shares: []float64{0, 0, 0}, ways: 8, counts: []int{0, 0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			alloc, err := Partition(tc.shares, tc.ways)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if tc.counts != nil {
				if len(alloc.WayCounts) != len(tc.counts) {
					t.Fatalf("way counts %v, want %v", alloc.WayCounts, tc.counts)
				}
				for i, want := range tc.counts {
					if alloc.WayCounts[i] != want {
						t.Errorf("app %d: %d ways, want %d", i, alloc.WayCounts[i], want)
					}
				}
			}
			// Structural invariants hold for every successful allocation.
			total := 0
			for i, w := range alloc.WayCounts {
				total += w
				if w > 0 && !Contiguous(alloc.Masks[i]) {
					t.Errorf("app %d: mask %b not contiguous", i, alloc.Masks[i])
				}
				if w == 0 && alloc.Masks[i] != 0 {
					t.Errorf("app %d: zero ways but mask %b", i, alloc.Masks[i])
				}
			}
			if total > tc.ways {
				t.Errorf("allocated %d ways of %d", total, tc.ways)
			}
			if Overlap(alloc.Masks) {
				t.Errorf("masks overlap: %v", alloc.Masks)
			}
		})
	}
}

// TestPartitionWaysExceedSharers: when there are far more ways than
// applications, largest-remainder rounding must still track the
// requested fractions tightly (max error below one way).
func TestPartitionWaysExceedSharers(t *testing.T) {
	shares := []float64{0.6, 0.3, 0.1}
	alloc, err := Partition(shares, 64)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.MaxError >= 1.0/64 {
		t.Errorf("max rounding error %v, want < one way (%v)", alloc.MaxError, 1.0/64)
	}
	for i, s := range shares {
		if got := alloc.Fractions[i]; math.Abs(got-s) >= 1.0/64 {
			t.Errorf("app %d: realized %v for requested %v", i, got, s)
		}
	}
}

// TestPartitionTopWayMask: an allocation that reaches way 63 must set
// the top bit without overflowing the uint64 mask.
func TestPartitionTopWayMask(t *testing.T) {
	alloc, err := Partition([]float64{1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Masks[0] != ^uint64(0) {
		t.Errorf("full 64-way mask %x, want all ones", alloc.Masks[0])
	}
	if !Contiguous(alloc.Masks[0]) {
		t.Error("full mask reported non-contiguous")
	}
	if got := FormatMask(alloc.Masks[0], 64); strings.Contains(got, "0") {
		t.Errorf("formatted full mask contains zeros: %s", got)
	}
}
