// Package cat models Intel Cache Allocation Technology way-mask
// allocation: converting the ideal fractional cache shares produced by
// the co-scheduler into the contiguous capacity bitmasks real hardware
// accepts.
//
// CAT constraints (Intel SDM vol. 3B): each class of service holds a
// bitmask over the LLC's ways; the mask must be non-empty and its set
// bits contiguous. This package rounds fractional shares to whole ways
// with a largest-remainder scheme, lays the allocations out contiguously
// and reports the rounding error so callers can quantify the fidelity
// loss versus the ideal fractional partition.
package cat

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
)

// Allocation is the way-level realization of a fractional cache
// partitioning.
type Allocation struct {
	Ways int // total ways in the LLC
	// WayCounts[i] is the number of ways granted to application i
	// (zero for applications outside the cache partition).
	WayCounts []int
	// Masks[i] is the contiguous CAT capacity bitmask of application i
	// (bit w set = way w owned); zero for applications with no ways.
	Masks []uint64
	// Fractions[i] is the realized fraction WayCounts[i]/Ways.
	Fractions []float64
	// MaxError is the largest |realized - requested| fraction across
	// applications.
	MaxError float64
}

// Partition rounds the requested fractional shares (each in [0, 1],
// summing to at most 1) onto ways whole cache ways. Shares are rounded
// with the largest-remainder method under two CAT-motivated rules: an
// application with a positive share never rounds to zero ways (a CAT
// mask must be non-empty, and a zero-way grant silently degrades to
// no-cache, defeating the partition chosen by the scheduler), and the
// total never exceeds ways.
//
// ways must be at most 64 so masks fit one uint64 (real CAT masks are at
// most 32 bits wide).
func Partition(shares []float64, ways int) (*Allocation, error) {
	if ways <= 0 || ways > 64 {
		return nil, &model.ValidationError{Field: "ways", Value: ways, Reason: "way count outside [1, 64]"}
	}
	var sum float64
	nonzero := 0
	for i, s := range shares {
		if s < 0 || s > 1 || math.IsNaN(s) {
			return nil, &model.ValidationError{
				Field: fmt.Sprintf("shares[%d]", i), Value: s, Reason: "cache share outside [0,1]",
			}
		}
		if s > 0 {
			nonzero++
		}
		sum += s
	}
	if sum > 1+1e-9 {
		return nil, &model.ValidationError{
			Field: "shares", Value: sum, Reason: fmt.Sprintf("shares sum to %v > 1", sum),
		}
	}
	if nonzero > ways {
		return nil, &model.ValidationError{
			Field: "shares", Value: nonzero,
			Reason: fmt.Sprintf("%d applications need ways but only %d ways exist", nonzero, ways),
		}
	}

	n := len(shares)
	counts := make([]int, n)
	type frac struct {
		idx int
		rem float64
	}
	rems := make([]frac, 0, n)
	used := 0
	for i, s := range shares {
		if s == 0 {
			continue
		}
		ideal := s * float64(ways)
		w := int(math.Floor(ideal))
		if w == 0 {
			w = 1 // CAT masks cannot be empty
		}
		counts[i] = w
		used += w
		rems = append(rems, frac{idx: i, rem: ideal - math.Floor(ideal)})
	}
	if used > ways {
		// Forced minimum grants overshot the budget: reclaim from the
		// largest allocations first (they lose the least relative).
		order := make([]int, 0, n)
		for i := range counts {
			if counts[i] > 1 {
				order = append(order, i)
			}
		}
		sort.Slice(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
		for used > ways && len(order) > 0 {
			for _, i := range order {
				if used == ways {
					break
				}
				if counts[i] > 1 {
					counts[i]--
					used--
				}
			}
			// Re-filter in case every count reached 1.
			filtered := order[:0]
			for _, i := range order {
				if counts[i] > 1 {
					filtered = append(filtered, i)
				}
			}
			order = filtered
		}
		if used > ways {
			return nil, fmt.Errorf("cat: cannot fit %d mandatory ways into %d", used, ways)
		}
	} else {
		// Distribute leftover ways by largest remainder.
		sort.Slice(rems, func(a, b int) bool {
			if rems[a].rem != rems[b].rem {
				return rems[a].rem > rems[b].rem
			}
			return rems[a].idx < rems[b].idx // deterministic ties
		})
		spare := ways - used
		// Only hand out as many spare ways as requested overall; if the
		// shares sum below 1 the remainder stays unallocated, mirroring
		// the scheduler's decision to leave cache idle.
		idealTotal := int(math.Round(sum * float64(ways)))
		grant := idealTotal - used
		if grant > spare {
			grant = spare
		}
		for k := 0; k < grant; k++ {
			counts[rems[k%len(rems)].idx]++
		}
	}

	alloc := &Allocation{
		Ways:      ways,
		WayCounts: counts,
		Masks:     make([]uint64, n),
		Fractions: make([]float64, n),
	}
	cursor := 0
	for i, w := range counts {
		if w == 0 {
			continue
		}
		mask := (uint64(1)<<uint(w) - 1) << uint(cursor)
		alloc.Masks[i] = mask
		cursor += w
		alloc.Fractions[i] = float64(w) / float64(ways)
		if e := math.Abs(alloc.Fractions[i] - shares[i]); e > alloc.MaxError {
			alloc.MaxError = e
		}
	}
	for i, s := range shares {
		if counts[i] == 0 {
			if e := math.Abs(s); e > alloc.MaxError {
				alloc.MaxError = e
			}
		}
	}
	return alloc, nil
}

// Contiguous reports whether mask's set bits form one contiguous run
// (the CAT validity rule). The empty mask is not contiguous.
func Contiguous(mask uint64) bool {
	if mask == 0 {
		return false
	}
	// Strip trailing zeros, then the run of ones; valid iff nothing
	// remains.
	m := mask >> trailingZeros(mask)
	return m&(m+1) == 0
}

func trailingZeros(x uint64) uint {
	var n uint
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// Overlap reports whether any two masks share a way.
func Overlap(masks []uint64) bool {
	var seen uint64
	for _, m := range masks {
		if seen&m != 0 {
			return true
		}
		seen |= m
	}
	return false
}

// FormatMask renders a CAT mask as a binary string of width ways,
// most-significant way first, e.g. "00001111110000000000" for ways 4–9 of
// a 20-way LLC.
func FormatMask(mask uint64, ways int) string {
	b := make([]byte, ways)
	for i := 0; i < ways; i++ {
		if mask&(1<<uint(ways-1-i)) != 0 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
