package cat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/solve"
)

func TestPartitionValidation(t *testing.T) {
	if _, err := Partition([]float64{0.5}, 0); err == nil {
		t.Fatal("zero ways accepted")
	}
	if _, err := Partition([]float64{0.5}, 65); err == nil {
		t.Fatal("65 ways accepted")
	}
	if _, err := Partition([]float64{-0.1}, 8); err == nil {
		t.Fatal("negative share accepted")
	}
	if _, err := Partition([]float64{0.6, 0.6}, 8); err == nil {
		t.Fatal("shares summing above 1 accepted")
	}
	if _, err := Partition([]float64{0.2, 0.2, 0.2}, 2); err == nil {
		t.Fatal("more nonzero apps than ways accepted")
	}
	if _, err := Partition([]float64{math.NaN()}, 8); err == nil {
		t.Fatal("NaN share accepted")
	}
}

func TestPartitionExactQuarters(t *testing.T) {
	alloc, err := Partition([]float64{0.25, 0.25, 0.5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 2, 4}
	for i, w := range want {
		if alloc.WayCounts[i] != w {
			t.Fatalf("counts %v, want %v", alloc.WayCounts, want)
		}
	}
	if alloc.MaxError > 1e-12 {
		t.Fatalf("exact shares should have zero error, got %v", alloc.MaxError)
	}
}

func TestPartitionZeroShareGetsNothing(t *testing.T) {
	alloc, err := Partition([]float64{0.5, 0, 0.5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.WayCounts[1] != 0 || alloc.Masks[1] != 0 {
		t.Fatal("zero share received ways")
	}
}

func TestPartitionTinyShareGetsOneWay(t *testing.T) {
	alloc, err := Partition([]float64{0.01, 0.99}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.WayCounts[0] < 1 {
		t.Fatal("positive share rounded to zero ways (CAT masks cannot be empty)")
	}
}

func TestPartitionMasksContiguousAndDisjoint(t *testing.T) {
	alloc, err := Partition([]float64{0.3, 0.2, 0.1, 0.4}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range alloc.Masks {
		if alloc.WayCounts[i] > 0 && !Contiguous(m) {
			t.Fatalf("mask %d not contiguous: %b", i, m)
		}
	}
	if Overlap(alloc.Masks) {
		t.Fatal("masks overlap")
	}
	total := 0
	for _, w := range alloc.WayCounts {
		total += w
	}
	if total > 20 {
		t.Fatalf("allocated %d of 20 ways", total)
	}
}

func TestPartitionUnderSubscribedLeavesWaysIdle(t *testing.T) {
	// Shares sum to 0.5: roughly half the ways stay unallocated.
	alloc, err := Partition([]float64{0.25, 0.25}, 16)
	if err != nil {
		t.Fatal(err)
	}
	total := alloc.WayCounts[0] + alloc.WayCounts[1]
	if total < 7 || total > 9 {
		t.Fatalf("half-subscribed shares got %d of 16 ways", total)
	}
}

func TestContiguous(t *testing.T) {
	cases := []struct {
		mask uint64
		want bool
	}{
		{0, false},
		{0b1, true},
		{0b1110, true},
		{0b1010, false},
		{0b11110000, true},
		{0b10010000, false},
		{^uint64(0), true},
	}
	for _, c := range cases {
		if Contiguous(c.mask) != c.want {
			t.Fatalf("Contiguous(%b) != %v", c.mask, c.want)
		}
	}
}

func TestOverlap(t *testing.T) {
	if Overlap([]uint64{0b11, 0b1100}) {
		t.Fatal("disjoint masks flagged")
	}
	if !Overlap([]uint64{0b11, 0b0110}) {
		t.Fatal("overlapping masks missed")
	}
	if Overlap(nil) {
		t.Fatal("empty set flagged")
	}
}

func TestFormatMask(t *testing.T) {
	if s := FormatMask(0b0110, 4); s != "0110" {
		t.Fatalf("FormatMask = %q", s)
	}
	if s := FormatMask(0b1, 8); s != "00000001" {
		t.Fatalf("FormatMask = %q", s)
	}
}

// Property: any feasible share vector yields a valid CAT allocation —
// contiguous disjoint masks, no budget overrun, every positive share
// granted at least one way, and fractions consistent with counts.
func TestPartitionProperty(t *testing.T) {
	f := func(seed uint64, waysPick, nPick uint8) bool {
		ways := 4 + int(waysPick)%29 // 4..32
		r := solve.NewRNG(seed)
		maxN := 8
		if ways < maxN {
			maxN = ways
		}
		n := 1 + int(nPick)%maxN
		// Random shares scaled to sum to at most 1.
		shares := make([]float64, n)
		var sum float64
		for i := range shares {
			shares[i] = r.Float64()
			sum += shares[i]
		}
		scale := r.Float64() / math.Max(sum, 1e-9)
		for i := range shares {
			shares[i] *= scale
		}
		alloc, err := Partition(shares, ways)
		if err != nil {
			return false
		}
		total := 0
		for i, w := range alloc.WayCounts {
			total += w
			if shares[i] > 0 && w == 0 {
				return false
			}
			if w > 0 && !Contiguous(alloc.Masks[i]) {
				return false
			}
			if alloc.Fractions[i] != float64(w)/float64(ways) {
				return false
			}
		}
		if total > ways {
			return false
		}
		return !Overlap(alloc.Masks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionFullSubscriptionManyApps(t *testing.T) {
	// 8 apps on 8 ways, each 1/8: everyone gets exactly one way.
	shares := make([]float64, 8)
	for i := range shares {
		shares[i] = 0.125
	}
	alloc, err := Partition(shares, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range alloc.WayCounts {
		if w != 1 {
			t.Fatalf("app %d got %d ways", i, w)
		}
	}
}

func TestPartitionForcedMinimumReclaim(t *testing.T) {
	// 4 apps with tiny shares + 1 big one on 4 ways: the forced 1-way
	// minimums exceed the budget unless reclaimed from the big one.
	shares := []float64{0.02, 0.02, 0.02, 0.94}
	alloc, err := Partition(shares, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, w := range alloc.WayCounts {
		total += w
		if w < 1 {
			t.Fatal("positive share starved")
		}
	}
	if total != 4 {
		t.Fatalf("total %d, want 4", total)
	}
}
