// Package experiments reproduces the paper's evaluation: every figure of
// Section 6 and Appendix A (Figures 1–18) and the two tables. Each
// FigureN function builds the corresponding workload, sweeps the paper's
// parameter, runs the heuristics over independent replicates and returns
// the aggregated series; rendering (CSV, ASCII) lives in render.go.
//
// All figures follow the paper's protocol: 50 replicates per
// configuration, mean makespan reported, platform defaults from Section
// 6.1 (one Sunway TaihuLight node: p = 256, Cs = 32 GB, ll = 1,
// ls = 0.17, α = 0.5).
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config controls experiment execution.
type Config struct {
	// Replicates per sweep point; the paper uses 50. Values < 1 are
	// treated as the default 50.
	Replicates int
	// Seed of the master random stream; replicate r of sweep point k
	// derives an independent substream, so results are reproducible and
	// insensitive to execution order.
	Seed uint64
}

// DefaultConfig matches the paper's protocol.
func DefaultConfig() Config { return Config{Replicates: 50, Seed: 0x5EED} }

func (c Config) replicates() int {
	if c.Replicates < 1 {
		return 50
	}
	return c.Replicates
}

// Figure is the aggregated output of one experiment: one series per
// heuristic (plus derived series for repartition figures), with raw
// (unnormalized) makespans. Use Normalized to apply the paper's
// normalization.
type Figure struct {
	ID     string // "fig1" … "fig18"
	Title  string
	XLabel string
	YLabel string
	Series []stats.Series
}

// SeriesByName returns the named series, or nil.
func (f *Figure) SeriesByName(name string) *stats.Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// Normalized returns a copy of the figure with every series divided,
// point-wise, by the base series' mean (the paper normalizes to either
// AllProcCache or DominantMinRatio). The base series itself normalizes
// to 1. It returns an error if base is absent.
func (f *Figure) Normalized(base string) (*Figure, error) {
	b := f.SeriesByName(base)
	if b == nil {
		return nil, fmt.Errorf("experiments: %s has no series %q to normalize by", f.ID, base)
	}
	out := &Figure{ID: f.ID, Title: f.Title + " (normalized to " + base + ")", XLabel: f.XLabel, YLabel: "Normalized Makespan"}
	for _, s := range f.Series {
		out.Series = append(out.Series, *s.Normalize(b))
	}
	return out, nil
}

// sweep runs the generic experiment loop: for every x in xs and every
// replicate, build (platform, apps) and measure each heuristic's
// makespan. Replicate r at every sweep point reuses the same workload
// stream (paired comparison, as in the authors' simulator), so curves
// differ only through the swept parameter.
//
// Cells (x, replicate) are independent, so they run on a bounded worker
// pool; results land in preallocated slots, keeping output bit-identical
// to the sequential order regardless of scheduling.
func sweep(cfg Config, hs []sched.Heuristic, xs []float64,
	build func(x float64, rng *solve.RNG) (model.Platform, []model.Application, error),
) ([]stats.Series, error) {
	reps := cfg.replicates()
	master := solve.NewRNG(cfg.Seed)
	// Pre-split one stream per replicate so every sweep point sees the
	// same per-replicate randomness.
	repStreams := make([]uint64, reps)
	for r := range repStreams {
		repStreams[r] = master.Uint64()
	}

	type cell struct{ xi, r int }
	// samples[xi][hi][r] = makespan.
	samples := make([][][]float64, len(xs))
	for xi := range samples {
		samples[xi] = make([][]float64, len(hs))
		for hi := range samples[xi] {
			samples[xi][hi] = make([]float64, reps)
		}
	}
	cells := make(chan cell)
	errc := make(chan error, 1)
	workers := runtime.GOMAXPROCS(0)
	if total := len(xs) * reps; workers > total {
		workers = total
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range cells {
				x := xs[c.xi]
				wlRNG := solve.NewRNG(repStreams[c.r])
				pl, apps, err := build(x, wlRNG)
				if err != nil {
					sendErr(errc, fmt.Errorf("experiments: build at x=%g: %w", x, err))
					continue
				}
				for hi, h := range hs {
					// Heuristic-internal randomness gets its own
					// substream so RandomPart et al. differ across
					// replicates but not across sweep points.
					hRNG := solve.NewRNG(repStreams[c.r] ^ (uint64(hi+1) * 0x9E3779B97F4A7C15))
					s, err := h.Schedule(pl, apps, hRNG)
					if err != nil {
						sendErr(errc, fmt.Errorf("experiments: %v at x=%g: %w", h, x, err))
						break
					}
					samples[c.xi][hi][c.r] = s.Makespan
				}
			}
		}()
	}
	for xi := range xs {
		for r := 0; r < reps; r++ {
			cells <- cell{xi, r}
		}
	}
	close(cells)
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}

	series := make([]stats.Series, len(hs))
	for hi, h := range hs {
		series[hi] = stats.Series{Name: h.String()}
		for xi, x := range xs {
			sum, err := stats.Summarize(samples[xi][hi])
			if err != nil {
				return nil, err
			}
			series[hi].Points = append(series[hi].Points, stats.Point{X: x, Summary: sum})
		}
	}
	return series, nil
}

// sendErr records the first error; later ones are dropped.
func sendErr(errc chan error, err error) {
	select {
	case errc <- err:
	default:
	}
}

// Sweep grids used across figures.
func appCounts() []float64 { return []float64{1, 2, 4, 8, 16, 32, 64, 96, 128, 192, 256} }
func procCounts() []float64 {
	return []float64{16, 32, 64, 96, 128, 160, 192, 224, 256}
}
func seqFractions() []float64 {
	return []float64{0.0001, 0.01, 0.025, 0.05, 0.075, 0.1, 0.125, 0.15}
}
func missRates() []float64 {
	return []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}
func lsValues() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}

// comparisonHeuristics is the Section 6.3 set.
var comparisonHeuristics = []sched.Heuristic{
	sched.AllProcCache, sched.DominantMinRatio, sched.RandomPart, sched.Fair, sched.ZeroCache,
}

// platformWithProcessors returns the reference platform with p
// processors.
func platformWithProcessors(p float64) model.Platform {
	pl := model.TaihuLight()
	pl.Processors = p
	return pl
}

// genApps builds a workload of n applications from gen with sequential
// fractions drawn from the Section 6.1 default range.
func genApps(gen workload.Generator, n int, rng *solve.RNG) ([]model.Application, error) {
	return workload.Generate(workload.Config{Generator: gen, N: n}, rng)
}

// genAppsFixedSeq builds a workload with every sequential fraction set to
// s.
func genAppsFixedSeq(gen workload.Generator, n int, s float64, rng *solve.RNG) ([]model.Application, error) {
	return workload.Generate(workload.Config{Generator: gen, N: n, Seq: s, SeqFixed: true}, rng)
}
