// Package experiments reproduces the paper's evaluation: every figure of
// Section 6 and Appendix A (Figures 1–18) and the two tables. Each
// FigureN function builds the corresponding workload, sweeps the paper's
// parameter, runs the heuristics over independent replicates and returns
// the aggregated series; rendering (CSV, ASCII) lives in render.go.
//
// All figures follow the paper's protocol: 50 replicates per
// configuration, mean makespan reported, platform defaults from Section
// 6.1 (one Sunway TaihuLight node: p = 256, Cs = 32 GB, ll = 1,
// ls = 0.17, α = 0.5).
package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/portfolio"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config controls experiment execution.
type Config struct {
	// Replicates per sweep point; the paper uses 50. Values < 1 are
	// treated as the default 50.
	Replicates int
	// Seed of the master random stream; replicate r of sweep point k
	// derives an independent substream, so results are reproducible and
	// insensitive to execution order.
	Seed uint64
	// Workers bounds the number of heuristic evaluations in flight at
	// once (0 means GOMAXPROCS). Ignored when Engine is set.
	Workers int
	// Engine optionally supplies a shared portfolio engine, so several
	// experiments can pool workers. Nil means a private engine per
	// experiment.
	Engine *portfolio.Engine
}

// DefaultConfig matches the paper's protocol.
func DefaultConfig() Config { return Config{Replicates: 50, Seed: 0x5EED} }

func (c Config) replicates() int {
	if c.Replicates < 1 {
		return 50
	}
	return c.Replicates
}

// engine returns the portfolio engine experiments run on. No
// memoization cache: every sweep cell is a distinct workload, so a
// cache would only accumulate entries without ever hitting.
func (c Config) engine() *portfolio.Engine {
	if c.Engine != nil {
		return c.Engine
	}
	return portfolio.New(portfolio.Config{Workers: c.Workers})
}

// Figure is the aggregated output of one experiment: one series per
// heuristic (plus derived series for repartition figures), with raw
// (unnormalized) makespans. Use Normalized to apply the paper's
// normalization.
type Figure struct {
	ID     string // "fig1" … "fig18"
	Title  string
	XLabel string
	YLabel string
	Series []stats.Series
}

// SeriesByName returns the named series, or nil.
func (f *Figure) SeriesByName(name string) *stats.Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// Normalized returns a copy of the figure with every series divided,
// point-wise, by the base series' mean (the paper normalizes to either
// AllProcCache or DominantMinRatio). The base series itself normalizes
// to 1. It returns an error if base is absent.
func (f *Figure) Normalized(base string) (*Figure, error) {
	b := f.SeriesByName(base)
	if b == nil {
		return nil, fmt.Errorf("experiments: %s has no series %q to normalize by", f.ID, base)
	}
	out := &Figure{ID: f.ID, Title: f.Title + " (normalized to " + base + ")", XLabel: f.XLabel, YLabel: "Normalized Makespan"}
	for _, s := range f.Series {
		out.Series = append(out.Series, *s.Normalize(b))
	}
	return out, nil
}

// sweep runs the generic experiment loop: for every x in xs and every
// replicate, build (platform, apps) and measure each heuristic's
// makespan. Replicate r at every sweep point reuses the same workload
// stream (paired comparison, as in the authors' simulator), so curves
// differ only through the swept parameter.
//
// Every (x, replicate) cell becomes one portfolio scenario; the engine
// parallelizes across heuristics × scenarios on its bounded worker
// pool. Heuristic-internal randomness derives from the replicate stream
// and the heuristic's position (the engine's substream rule matches the
// historical serial loop), so results are bit-identical to sequential
// execution regardless of worker count.
func sweep(cfg Config, hs []sched.Heuristic, xs []float64,
	build func(x float64, rng *solve.RNG) (model.Platform, []model.Application, error),
) ([]stats.Series, error) {
	reps := cfg.replicates()
	repStreams := replicateStreams(cfg)

	scenarios := make([]portfolio.Scenario, 0, len(xs)*reps)
	for _, x := range xs {
		for r := 0; r < reps; r++ {
			pl, apps, err := build(x, solve.NewRNG(repStreams[r]))
			if err != nil {
				return nil, fmt.Errorf("experiments: build at x=%g: %w", x, err)
			}
			scenarios = append(scenarios, portfolio.Scenario{
				Platform: pl, Apps: apps, Heuristics: hs, Seed: repStreams[r],
			})
		}
	}
	reports := cfg.engine().EvaluateBatch(scenarios)

	series := make([]stats.Series, len(hs))
	for hi, h := range hs {
		series[hi] = stats.Series{Name: h.String()}
	}
	vals := make([]float64, reps)
	for xi, x := range xs {
		for hi, h := range hs {
			for r := 0; r < reps; r++ {
				rep := reports[xi*reps+r]
				if rep.Err != nil {
					return nil, rep.Err
				}
				res := rep.Results[hi]
				if res.Err != nil {
					return nil, fmt.Errorf("experiments: %v at x=%g: %w", h, x, res.Err)
				}
				vals[r] = res.Schedule.Makespan
			}
			sum, err := stats.Summarize(vals)
			if err != nil {
				return nil, err
			}
			series[hi].Points = append(series[hi].Points, stats.Point{X: x, Summary: sum})
		}
	}
	return series, nil
}

// replicateStreams pre-splits one stream per replicate so every sweep
// point sees the same per-replicate randomness.
func replicateStreams(cfg Config) []uint64 {
	master := solve.NewRNG(cfg.Seed)
	repStreams := make([]uint64, cfg.replicates())
	for r := range repStreams {
		repStreams[r] = master.Uint64()
	}
	return repStreams
}

// Sweep grids used across figures.
func appCounts() []float64 { return []float64{1, 2, 4, 8, 16, 32, 64, 96, 128, 192, 256} }
func procCounts() []float64 {
	return []float64{16, 32, 64, 96, 128, 160, 192, 224, 256}
}
func seqFractions() []float64 {
	return []float64{0.0001, 0.01, 0.025, 0.05, 0.075, 0.1, 0.125, 0.15}
}
func missRates() []float64 {
	return []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}
func lsValues() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}

// comparisonHeuristics is the Section 6.3 set.
var comparisonHeuristics = []sched.Heuristic{
	sched.AllProcCache, sched.DominantMinRatio, sched.RandomPart, sched.Fair, sched.ZeroCache,
}

// platformWithProcessors returns the reference platform with p
// processors.
func platformWithProcessors(p float64) model.Platform {
	pl := model.TaihuLight()
	pl.Processors = p
	return pl
}

// genApps builds a workload of n applications from gen with sequential
// fractions drawn from the Section 6.1 default range.
func genApps(gen workload.Generator, n int, rng *solve.RNG) ([]model.Application, error) {
	return workload.Generate(workload.Config{Generator: gen, N: n}, rng)
}

// genAppsFixedSeq builds a workload with every sequential fraction set to
// s.
func genAppsFixedSeq(gen workload.Generator, n int, s float64, rng *solve.RNG) ([]model.Application, error) {
	return workload.Generate(workload.Config{Generator: gen, N: n, Seq: s, SeqFixed: true}, rng)
}
