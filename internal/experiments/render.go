package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteCSV emits the figure as CSV: one row per (series, x) pair with the
// full summary, matching what the paper's plotting scripts consumed.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "mean", "stddev", "min", "max", "n"}); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			rec := []string{
				s.Name,
				formatFloat(p.X),
				formatFloat(p.Summary.Mean),
				formatFloat(p.Summary.Stddev),
				formatFloat(p.Summary.Min),
				formatFloat(p.Summary.Max),
				strconv.Itoa(p.Summary.N),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 10, 64)
}

// RenderTable renders the figure as a fixed-width ASCII table, one row
// per x value and one column per series (means only), for terminal
// inspection.
func (f *Figure) RenderTable(w io.Writer) error {
	// Collect the union of x coordinates in order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)

	if _, err := fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	widths := make([]int, len(header))
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for i := range f.Series {
			if p, ok := f.Series[i].At(x); ok {
				row = append(row, trimFloat(p.Summary.Mean))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	for len(s) < w {
		s = s + " "
	}
	return s
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', 5, 64)
}

// RenderASCIIPlot draws a crude line plot of the figure's series means
// (height rows tall) so shapes can be eyeballed without leaving the
// terminal. Each series is drawn with its own glyph.
func (f *Figure) RenderASCIIPlot(w io.Writer, width, height int) error {
	if width < 16 || height < 4 {
		return fmt.Errorf("experiments: plot area %dx%d too small", width, height)
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			xmin, xmax = math.Min(xmin, p.X), math.Max(xmax, p.X)
			ymin, ymax = math.Min(ymin, p.Summary.Mean), math.Max(ymax, p.Summary.Mean)
		}
	}
	if xmin >= xmax {
		xmax = xmin + 1
	}
	if ymin >= ymax {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	glyphs := "ox+*#@%&~^"
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			cx := int(math.Round((p.X - xmin) / (xmax - xmin) * float64(width-1)))
			cy := int(math.Round((p.Summary.Mean - ymin) / (ymax - ymin) * float64(height-1)))
			row := height - 1 - cy
			grid[row][cx] = g
		}
	}
	if _, err := fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "|%s|\n", row); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "x: %s ∈ [%s, %s]   y: %s ∈ [%s, %s]\n",
		f.XLabel, trimFloat(xmin), trimFloat(xmax), f.YLabel, trimFloat(ymin), trimFloat(ymax)); err != nil {
		return err
	}
	for si, s := range f.Series {
		if _, err := fmt.Fprintf(w, "  %c %s\n", glyphs[si%len(glyphs)], s.Name); err != nil {
			return err
		}
	}
	return nil
}
