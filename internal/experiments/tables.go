package experiments

import (
	"fmt"
	"io"

	"repro/internal/workload"
)

// WriteTable1 renders Table 1 (NPB benchmark descriptions).
func WriteTable1(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Table 1: Description of the NPB benchmarks"); err != nil {
		return err
	}
	desc := workload.Descriptions()
	for _, a := range workload.NPB() {
		if _, err := fmt.Fprintf(w, "  %-3s %s\n", a.Name, desc[a.Name]); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable2 renders Table 2 (experimental values from the NPB
// benchmarks): work, access frequency, and miss rate at a 40 MB cache.
func WriteTable2(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Table 2: Experimental values from NPB benchmarks"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-3s  %-9s  %-9s  %-9s\n", "App", "w_i", "f_i", "m_i(40MB)"); err != nil {
		return err
	}
	for _, a := range workload.NPB() {
		if _, err := fmt.Fprintf(w, "  %-3s  %9.2E  %9.2E  %9.2E\n", a.Name, a.Work, a.AccessFreq, a.RefMissRate); err != nil {
			return err
		}
	}
	return nil
}
