package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/sched"
)

// quick config for tests: 3 replicates keeps the full suite fast while
// exercising the aggregation paths.
func testCfg() Config { return Config{Replicates: 3, Seed: 7} }

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.replicates() != 50 {
		t.Fatalf("default replicates %d", c.replicates())
	}
	if (Config{Replicates: -5}).replicates() != 50 {
		t.Fatal("negative replicates should fall back to 50")
	}
}

func TestRegistryComplete(t *testing.T) {
	for n := 1; n <= 18; n++ {
		if _, ok := Registry[n]; !ok {
			t.Fatalf("figure %d missing from registry", n)
		}
	}
	if len(Registry) != 18 {
		t.Fatalf("registry has %d figures", len(Registry))
	}
}

func TestFigure1ShapeMatchesPaper(t *testing.T) {
	f, err := Figure1(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	norm, err := f.Normalized(sched.AllProcCache.String())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ≥85% gain over AllProcCache from ~50 applications on.
	for _, s := range norm.Series {
		if s.Name == sched.AllProcCache.String() {
			continue
		}
		for _, p := range s.Points {
			if p.X >= 64 && p.Summary.Mean > 0.15 {
				t.Fatalf("%s at n=%g: normalized %v, paper promises ≤0.15", s.Name, p.X, p.Summary.Mean)
			}
		}
	}
	// And all six dominant variants coincide on this data set.
	ref := norm.SeriesByName(sched.DominantMinRatio.String())
	for _, h := range sched.DominantHeuristics {
		s := norm.SeriesByName(h.String())
		for i, p := range s.Points {
			if math.Abs(p.Summary.Mean-ref.Points[i].Summary.Mean) > 0.02 {
				t.Fatalf("%v diverges from DominantMinRatio at n=%g", h, p.X)
			}
		}
	}
}

func TestFigure3OrderingAtScale(t *testing.T) {
	f, err := Figure3(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	at := func(name string, x float64) float64 {
		s := f.SeriesByName(name)
		if s == nil {
			t.Fatalf("missing series %s", name)
		}
		p, ok := s.At(x)
		if !ok {
			t.Fatalf("missing point %g in %s", x, name)
		}
		return p.Summary.Mean
	}
	// Paper ordering at large n: DMR < RandomPart < ZeroCache < Fair < APC.
	const n = 128
	dmr := at("DominantMinRatio", n)
	rp := at("RandomPart", n)
	zc := at("ZeroCache", n)
	fair := at("Fair", n)
	apc := at("AllProcCache", n)
	if !(dmr < rp && rp < zc && zc < fair && fair < apc) {
		t.Fatalf("ordering broken at n=%d: DMR=%g RP=%g ZC=%g Fair=%g APC=%g", n, dmr, rp, zc, fair, apc)
	}
}

func TestFigure2DifferencesOnlyAtHighMissRates(t *testing.T) {
	f, err := Figure2(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	spread := func(x float64) float64 {
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, s := range f.Series {
			p, ok := s.At(x)
			if !ok {
				t.Fatalf("missing %g", x)
			}
			mn = math.Min(mn, p.Summary.Mean)
			mx = math.Max(mx, p.Summary.Mean)
		}
		return (mx - mn) / mn
	}
	if lo := spread(0.01); lo > 0.02 {
		t.Fatalf("heuristics differ at miss rate 0.01: spread %v", lo)
	}
	if hi := spread(0.9); hi < 0.01 {
		t.Fatalf("heuristics identical at miss rate 0.9: spread %v", hi)
	}
}

func TestFigure5FairImprovesWithProcessors(t *testing.T) {
	f, err := Figure5(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	norm, err := f.Normalized("DominantMinRatio")
	if err != nil {
		t.Fatal(err)
	}
	fair := norm.SeriesByName("Fair")
	first, _ := fair.At(16)
	last, _ := fair.At(256)
	if last.Summary.Mean >= first.Summary.Mean {
		t.Fatalf("Fair did not close the gap with more processors: %v → %v", first.Summary.Mean, last.Summary.Mean)
	}
}

func TestFigure6CoSchedulingWinsGrowWithSeqFraction(t *testing.T) {
	f, err := Figure6(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	norm, err := f.Normalized("AllProcCache")
	if err != nil {
		t.Fatal(err)
	}
	dmr := norm.SeriesByName("DominantMinRatio")
	lo, _ := dmr.At(0.0001)
	hi, _ := dmr.At(0.15)
	if hi.Summary.Mean >= lo.Summary.Mean {
		t.Fatalf("gain should grow with sequential fraction: %v → %v", lo.Summary.Mean, hi.Summary.Mean)
	}
	// Paper: >50% gain already at s=0.01.
	p, _ := dmr.At(0.01)
	if p.Summary.Mean > 0.5 {
		t.Fatalf("gain at s=0.01 is only %v, paper promises >50%%", 1-p.Summary.Mean)
	}
}

func TestFigure7RepartitionStructure(t *testing.T) {
	f, err := Figure7(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fair's processor min == max (uniform split).
	mn := f.SeriesByName("Fair/procs/min")
	mx := f.SeriesByName("Fair/procs/max")
	if mn == nil || mx == nil {
		t.Fatal("Fair repartition series missing")
	}
	for i := range mn.Points {
		if math.Abs(mn.Points[i].Summary.Mean-mx.Points[i].Summary.Mean) > 1e-9 {
			t.Fatal("Fair should allocate identical processor counts")
		}
	}
	// Ranges shrink as applications increase (paper's observation).
	// Compare a moderate n against the largest; n=1 is trivially zero.
	dmrMin := f.SeriesByName("DominantMinRatio/procs/min")
	dmrMax := f.SeriesByName("DominantMinRatio/procs/max")
	rangeAt := func(x float64) float64 {
		lo, _ := dmrMin.At(x)
		hi, _ := dmrMax.At(x)
		return hi.Summary.Mean - lo.Summary.Mean
	}
	if mid, last := rangeAt(16), rangeAt(256); last > mid {
		t.Fatalf("processor range should shrink with more applications: %v → %v", mid, last)
	}
	// Cache averages: DMR and Fair present, ZeroCache absent (no cache).
	if f.SeriesByName("ZeroCache/cache/avg") != nil {
		t.Fatal("ZeroCache should not report cache repartition")
	}
}

func TestFigure15LatencyDoesNotReorder(t *testing.T) {
	f, err := Figure15(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Ranking of heuristics must be identical at every ls value.
	rank := func(x float64) []string {
		type nv struct {
			n string
			v float64
		}
		var vals []nv
		for _, s := range f.Series {
			p, _ := s.At(x)
			vals = append(vals, nv{s.Name, p.Summary.Mean})
		}
		for i := 0; i < len(vals); i++ {
			for j := i + 1; j < len(vals); j++ {
				if vals[j].v < vals[i].v {
					vals[i], vals[j] = vals[j], vals[i]
				}
			}
		}
		names := make([]string, len(vals))
		for i, v := range vals {
			names[i] = v.n
		}
		return names
	}
	base := rank(0.1)
	for _, x := range []float64{0.5, 1.0} {
		got := rank(x)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("ordering changed between ls=0.1 and ls=%g: %v vs %v", x, base, got)
			}
		}
	}
}

func TestNormalizedMissingBase(t *testing.T) {
	f := &Figure{ID: "x"}
	if _, err := f.Normalized("nope"); err == nil {
		t.Fatal("missing base accepted")
	}
}

func TestNormalizationBaseTable(t *testing.T) {
	if NormalizationBase(1) != "AllProcCache" {
		t.Fatal("fig1 base")
	}
	if NormalizationBase(2) != "DominantMinRatio" {
		t.Fatal("fig2 base")
	}
	if NormalizationBase(7) != "" || NormalizationBase(17) != "" {
		t.Fatal("repartition figures have no normalization")
	}
}

func TestWriteCSV(t *testing.T) {
	f, err := Figure10(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "series,x,mean,stddev,min,max,n") {
		t.Fatalf("csv header wrong: %q", out[:40])
	}
	lines := strings.Count(out, "\n")
	// 5 heuristics × 9 processor counts + header.
	if lines != 5*9+1 {
		t.Fatalf("%d csv lines", lines)
	}
}

func TestRenderTable(t *testing.T) {
	f, err := Figure10(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.RenderTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig10") || !strings.Contains(out, "DominantMinRatio") {
		t.Fatalf("table missing content:\n%s", out)
	}
}

func TestRenderASCIIPlot(t *testing.T) {
	f, err := Figure10(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.RenderASCIIPlot(&buf, 60, 12); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "|") {
		t.Fatal("plot frame missing")
	}
	if err := f.RenderASCIIPlot(&buf, 4, 2); err == nil {
		t.Fatal("tiny plot area accepted")
	}
}

func TestTables(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable1(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "conjugate gradients") {
		t.Fatal("table 1 content missing")
	}
	buf.Reset()
	if err := WriteTable2(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"CG", "BT", "LU", "SP", "MG", "FT"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("table 2 missing %s", name)
		}
	}
}

func TestSweepDeterminism(t *testing.T) {
	cfg := Config{Replicates: 2, Seed: 99}
	a, err := Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series {
		for j := range a.Series[i].Points {
			if a.Series[i].Points[j].Summary.Mean != b.Series[i].Points[j].Summary.Mean {
				t.Fatal("experiment not reproducible for a fixed seed")
			}
		}
	}
}

// Run every remaining figure driver once with tiny settings so the whole
// registry is exercised.
func TestAllFiguresRun(t *testing.T) {
	cfg := Config{Replicates: 1, Seed: 3}
	for n, run := range Registry {
		f, err := run(cfg)
		if err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
		if len(f.Series) == 0 {
			t.Fatalf("figure %d produced no series", n)
		}
		for _, s := range f.Series {
			if len(s.Points) == 0 {
				t.Fatalf("figure %d series %s empty", n, s.Name)
			}
			for _, p := range s.Points {
				if math.IsNaN(p.Summary.Mean) || p.Summary.Mean < 0 {
					t.Fatalf("figure %d series %s has bad mean %v", n, s.Name, p.Summary.Mean)
				}
			}
		}
	}
}

// Regression pin: the headline Figure 1 number under the default
// 50-replicate protocol and master seed. Any change to the model, the
// partition theory, the workload generators or the RNG that alters the
// reproduced result trips this test; EXPERIMENTS.md quotes this value.
func TestFigure1HeadlinePin(t *testing.T) {
	if testing.Short() {
		t.Skip("full 50-replicate protocol")
	}
	f, err := Figure1(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	norm, err := f.Normalized(sched.AllProcCache.String())
	if err != nil {
		t.Fatal(err)
	}
	p, ok := norm.SeriesByName(sched.DominantMinRatio.String()).At(256)
	if !ok {
		t.Fatal("missing n=256 point")
	}
	const want = 0.048369
	if math.Abs(p.Summary.Mean-want) > 1e-5 {
		t.Fatalf("Figure 1 headline drifted: DMR/APC at n=256 = %v, pinned %v", p.Summary.Mean, want)
	}
}
