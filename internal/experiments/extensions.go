package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/solve"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Extension experiments: studies beyond the paper's figures, built on the
// same protocol (replicated sweeps, mean makespans). Each has a string ID
// of the form "extN" and is registered in Extensions.

// ExtPartitioning (ext1) compares partitioned co-scheduling
// (DominantMinRatio) against unpartitioned sharing (SharedCache) and Fair
// across application counts, on a contended 1 GB LLC with a quarter of
// the fleet replaced by streaming antagonists (high access pressure, no
// reuse). It isolates what Cache Allocation Technology itself buys.
func ExtPartitioning(cfg Config) (*Figure, error) {
	hs := []sched.Heuristic{sched.DominantMinRatio, sched.SharedCache, sched.Fair}
	series, err := sweep(cfg, hs, []float64{4, 8, 16, 32, 64, 128}, func(x float64, rng *solve.RNG) (model.Platform, []model.Application, error) {
		pl := platformWithProcessors(256)
		pl.CacheSize = 1e9
		n := int(x)
		apps, err := genApps(workload.GenNPBSynth, n, rng)
		if err != nil {
			return pl, nil, err
		}
		for i := range apps {
			apps[i].RefMissRate = 0.3
			if i%4 == 0 { // every fourth application streams
				apps[i].AccessFreq = 0.9
				apps[i].RefMissRate = 1e-9
			}
		}
		return pl, apps, nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "ext1", Title: "Partitioned vs unpartitioned LLC with streaming antagonists",
		XLabel: "#Applications", YLabel: "Makespan", Series: series,
	}, nil
}

// ExtLocalSearch (ext2) measures the Amdahl-aware local search against
// its DominantMinRatio warm start across LLC sizes (membership matters
// only when the cache is tight).
func ExtLocalSearch(cfg Config) (*Figure, error) {
	hs := []sched.Heuristic{sched.DominantMinRatio, sched.LocalSearch}
	sizes := []float64{1e8, 2e8, 5e8, 1e9, 4e9, 32e9}
	series, err := sweep(cfg, hs, sizes, func(x float64, rng *solve.RNG) (model.Platform, []model.Application, error) {
		pl := platformWithProcessors(256)
		pl.CacheSize = x
		apps, err := genApps(workload.GenNPBSynth, 12, rng)
		if err != nil {
			return pl, nil, err
		}
		for i := range apps {
			apps[i].RefMissRate = 0.4
		}
		return pl, apps, nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "ext2", Title: "Amdahl-aware membership local search vs its warm start",
		XLabel: "LLC size (bytes)", YLabel: "Makespan", Series: series,
	}, nil
}

// ExtRedistribution (ext3) sweeps the application count and reports the
// relative makespan gain of handing freed resources to survivors, for
// Fair (unequal finishes) and DominantMinRatio (equal finishes, expected
// zero).
func ExtRedistribution(cfg Config) (*Figure, error) {
	pl := platformWithProcessors(256)
	fig := &Figure{
		ID: "ext3", Title: "Makespan recovered by dynamic redistribution",
		XLabel: "#Applications", YLabel: "Relative gain",
	}
	for _, h := range []sched.Heuristic{sched.Fair, sched.DominantMinRatio} {
		s := stats.Series{Name: h.String()}
		for _, x := range []float64{4, 8, 16, 32, 64} {
			gains, err := replicated(cfg, func(rng *solve.RNG) (float64, error) {
				apps, err := genApps(workload.GenNPBSynth, int(x), rng)
				if err != nil {
					return 0, err
				}
				sc, err := h.Schedule(pl, apps, rng)
				if err != nil {
					return 0, err
				}
				st, err := sim.Execute(pl, apps, sc, sim.Static)
				if err != nil {
					return 0, err
				}
				rd, err := sim.Execute(pl, apps, sc, sim.Redistribute)
				if err != nil {
					return 0, err
				}
				return 1 - rd.Makespan/st.Makespan, nil
			})
			if err != nil {
				return nil, err
			}
			sum, err := stats.Summarize(gains)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, stats.Point{X: x, Summary: sum})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// ExtRounding (ext4) sweeps the application count and reports the
// makespan degradation from realizing the rational processor assignment
// with whole processors.
func ExtRounding(cfg Config) (*Figure, error) {
	pl := platformWithProcessors(256)
	fig := &Figure{
		ID: "ext4", Title: "Cost of whole-processor realization",
		XLabel: "#Applications", YLabel: "Makespan ratio (integer / rational)",
	}
	s := stats.Series{Name: "DominantMinRatio"}
	for _, x := range []float64{4, 8, 16, 32, 64, 128, 256} {
		degr, err := replicated(cfg, func(rng *solve.RNG) (float64, error) {
			apps, err := genApps(workload.GenNPBSynth, int(x), rng)
			if err != nil {
				return 0, err
			}
			sc, err := sched.DominantMinRatio.Schedule(pl, apps, rng)
			if err != nil {
				return 0, err
			}
			ri, err := sched.RoundProcessors(pl, apps, sc)
			if err != nil {
				return 0, err
			}
			return ri.Degradation, nil
		})
		if err != nil {
			return nil, err
		}
		sum, err := stats.Summarize(degr)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, stats.Point{X: x, Summary: sum})
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// ExtPipelineDepth (ext5) sweeps the in-situ pipelining depth and
// reports the sustainable batch period (normalized per batch).
func ExtPipelineDepth(cfg Config) (*Figure, error) {
	pl := platformWithProcessors(64)
	fig := &Figure{
		ID: "ext5", Title: "In-situ pipelining depth vs sustainable batch period",
		XLabel: "Depth (batches co-scheduled)", YLabel: "Sustainable period",
	}
	s := stats.Series{Name: "DominantMinRatio"}
	for _, depth := range []float64{1, 2, 3, 4, 6, 8} {
		periods, err := replicated(cfg, func(rng *solve.RNG) (float64, error) {
			apps, err := genAppsFixedSeq(workload.GenNPBSynth, 6, 0.08, rng)
			if err != nil {
				return 0, err
			}
			p, err := pipeline.NewPlan(pipeline.Config{
				Platform: pl, Analyses: apps,
				Heuristic: sched.DominantMinRatio, Depth: int(depth),
			})
			if err != nil {
				return 0, err
			}
			return p.SustainablePeriod, nil
		})
		if err != nil {
			return nil, err
		}
		sum, err := stats.Summarize(periods)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, stats.Point{X: depth, Summary: sum})
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// replicated runs body once per replicate with independent streams and
// collects the results.
func replicated(cfg Config, body func(rng *solve.RNG) (float64, error)) ([]float64, error) {
	master := solve.NewRNG(cfg.Seed)
	out := make([]float64, 0, cfg.replicates())
	for r := 0; r < cfg.replicates(); r++ {
		v, err := body(solve.NewRNG(master.Uint64()))
		if err != nil {
			return nil, fmt.Errorf("experiments: replicate %d: %w", r, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// Extensions maps extension numbers to drivers (IDs "ext1"…"ext5").
var Extensions = map[int]func(Config) (*Figure, error){
	1: ExtPartitioning,
	2: ExtLocalSearch,
	3: ExtRedistribution,
	4: ExtRounding,
	5: ExtPipelineDepth,
}
