package experiments

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/portfolio"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figure1 compares the six dominant-partition heuristics against
// AllProcCache on NPB-SYNTH, sweeping the application count on 256
// processors. The paper reports a ~85% gain over AllProcCache from ~50
// applications on, with all six variants indistinguishable.
func Figure1(cfg Config) (*Figure, error) {
	hs := append([]sched.Heuristic{sched.AllProcCache}, sched.DominantHeuristics...)
	series, err := sweep(cfg, hs, appCounts(), func(x float64, rng *solve.RNG) (model.Platform, []model.Application, error) {
		apps, err := genApps(workload.GenNPBSynth, int(x), rng)
		return platformWithProcessors(256), apps, err
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig1", Title: "Comparison of the six dominant partition heuristics",
		XLabel: "#Applications", YLabel: "Makespan", Series: series,
	}, nil
}

// Figure2 zooms on the heuristic differences by sweeping the reference
// miss rate with a small (1 GB) LLC on NPB-SYNTH with 16 applications.
// Differences appear only for miss rates above ~0.1; DominantMinRatio and
// DominantRevMaxRatio overlap as best, DominantMaxRatio and
// DominantRevMinRatio as worst.
func Figure2(cfg Config) (*Figure, error) {
	series, err := sweep(cfg, sched.DominantHeuristics, missRates(), func(x float64, rng *solve.RNG) (model.Platform, []model.Application, error) {
		pl := platformWithProcessors(256)
		pl.CacheSize = 1e9
		apps, err := genApps(workload.GenNPBSynth, 16, rng)
		if err != nil {
			return pl, nil, err
		}
		return pl, workload.WithMissRate(apps, x), nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig2", Title: "Impact of cache miss rate using a 1GB LLC",
		XLabel: "Cache miss rate", YLabel: "Makespan", Series: series,
	}, nil
}

// Figure3 sweeps the application count on NPB-SYNTH with the Section 6.3
// comparison set (AllProcCache, DominantMinRatio, RandomPart, Fair,
// ZeroCache) on 256 processors.
func Figure3(cfg Config) (*Figure, error) {
	series, err := sweep(cfg, comparisonHeuristics, appCounts(), func(x float64, rng *solve.RNG) (model.Platform, []model.Application, error) {
		apps, err := genApps(workload.GenNPBSynth, int(x), rng)
		return platformWithProcessors(256), apps, err
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig3", Title: "Impact of the number of applications (NPB-SYNTH)",
		XLabel: "#Applications", YLabel: "Makespan", Series: series,
	}, nil
}

// Figure4 sweeps the average number of processors per application: 256
// processors with n = 256/ratio applications on NPB-SYNTH.
func Figure4(cfg Config) (*Figure, error) {
	ratios := []float64{1, 2, 4, 8, 16, 32, 64, 128}
	hs := []sched.Heuristic{sched.DominantMinRatio, sched.RandomPart, sched.Fair, sched.ZeroCache}
	series, err := sweep(cfg, hs, ratios, func(x float64, rng *solve.RNG) (model.Platform, []model.Application, error) {
		n := int(math.Round(256 / x))
		if n < 1 {
			n = 1
		}
		apps, err := genApps(workload.GenNPBSynth, n, rng)
		return platformWithProcessors(256), apps, err
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig4", Title: "Impact of the average number of processors per application",
		XLabel: "#Processors / #Applications", YLabel: "Makespan", Series: series,
	}, nil
}

// Figure5 sweeps the processor count with 16 NPB-SYNTH applications.
func Figure5(cfg Config) (*Figure, error) {
	return processorSweep(cfg, "fig5", workload.GenNPBSynth, 16)
}

// Figure6 sweeps the (fixed, shared) sequential fraction with 16
// NPB-SYNTH applications on 256 processors.
func Figure6(cfg Config) (*Figure, error) {
	return seqSweep(cfg, "fig6", workload.GenNPBSynth, 16)
}

// Figure7 reports the processor and cache repartition across applications
// for DominantMinRatio, Fair and ZeroCache on NPB-SYNTH (error bars =
// min/max allocation across applications).
func Figure7(cfg Config) (*Figure, error) {
	return repartition(cfg, "fig7", workload.GenNPBSynth)
}

// Figure8 is Figure3 on the RANDOM data set.
func Figure8(cfg Config) (*Figure, error) {
	series, err := sweep(cfg, comparisonHeuristics, appCounts(), func(x float64, rng *solve.RNG) (model.Platform, []model.Application, error) {
		apps, err := genApps(workload.GenRandom, int(x), rng)
		return platformWithProcessors(256), apps, err
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig8", Title: "Impact of the number of applications (RANDOM)",
		XLabel: "#Applications", YLabel: "Makespan", Series: series,
	}, nil
}

// Figure9 sweeps processors with 64 NPB-SYNTH applications.
func Figure9(cfg Config) (*Figure, error) {
	return processorSweep(cfg, "fig9", workload.GenNPBSynth, 64)
}

// Figure10 sweeps processors with the six NPB-6 applications.
func Figure10(cfg Config) (*Figure, error) {
	return processorSweep(cfg, "fig10", workload.GenNPB6, 6)
}

// Figure11 sweeps processors with 16 RANDOM applications.
func Figure11(cfg Config) (*Figure, error) {
	return processorSweep(cfg, "fig11", workload.GenRandom, 16)
}

// Figure12 sweeps processors with 64 RANDOM applications.
func Figure12(cfg Config) (*Figure, error) {
	return processorSweep(cfg, "fig12", workload.GenRandom, 64)
}

// Figure13 sweeps the sequential fraction on NPB-6 (6 applications).
func Figure13(cfg Config) (*Figure, error) {
	return seqSweep(cfg, "fig13", workload.GenNPB6, 6)
}

// Figure14 sweeps the sequential fraction with 16 RANDOM applications.
func Figure14(cfg Config) (*Figure, error) {
	return seqSweep(cfg, "fig14", workload.GenRandom, 16)
}

// Figure15 sweeps the cache latency ls with 16 NPB-SYNTH applications and
// s_i = 0.0001; the paper finds no effect on relative ordering.
func Figure15(cfg Config) (*Figure, error) {
	return lsSweep(cfg, "fig15", 16)
}

// Figure16 is Figure15 with 64 applications.
func Figure16(cfg Config) (*Figure, error) {
	return lsSweep(cfg, "fig16", 64)
}

// Figure17 is the repartition figure on RANDOM.
func Figure17(cfg Config) (*Figure, error) {
	return repartition(cfg, "fig17", workload.GenRandom)
}

// Figure18 compares all nine concurrent heuristics across miss rates on a
// 1 GB LLC with 16 NPB-SYNTH applications (Appendix A.6).
func Figure18(cfg Config) (*Figure, error) {
	hs := append(append([]sched.Heuristic{}, sched.DominantHeuristics...),
		sched.RandomPart, sched.Fair, sched.ZeroCache)
	series, err := sweep(cfg, hs, missRates(), func(x float64, rng *solve.RNG) (model.Platform, []model.Application, error) {
		pl := platformWithProcessors(256)
		pl.CacheSize = 1e9
		apps, err := genApps(workload.GenNPBSynth, 16, rng)
		if err != nil {
			return pl, nil, err
		}
		return pl, workload.WithMissRate(apps, x), nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig18", Title: "Impact of cache miss rate using a 1GB LLC (all heuristics)",
		XLabel: "Cache miss rate", YLabel: "Makespan", Series: series,
	}, nil
}

// processorSweep implements the shared shape of Figures 5, 9, 10, 11, 12.
func processorSweep(cfg Config, id string, gen workload.Generator, n int) (*Figure, error) {
	series, err := sweep(cfg, comparisonHeuristics, procCounts(), func(x float64, rng *solve.RNG) (model.Platform, []model.Application, error) {
		apps, err := genApps(gen, n, rng)
		return platformWithProcessors(x), apps, err
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: id, Title: fmt.Sprintf("Impact of the number of processors (%v, %d applications)", gen, n),
		XLabel: "#Processors", YLabel: "Makespan", Series: series,
	}, nil
}

// seqSweep implements the shared shape of Figures 6, 13, 14.
func seqSweep(cfg Config, id string, gen workload.Generator, n int) (*Figure, error) {
	series, err := sweep(cfg, comparisonHeuristics, seqFractions(), func(x float64, rng *solve.RNG) (model.Platform, []model.Application, error) {
		apps, err := genAppsFixedSeq(gen, n, x, rng)
		return platformWithProcessors(256), apps, err
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: id, Title: fmt.Sprintf("Impact of sequential fraction of work (%v, %d applications)", gen, n),
		XLabel: "Sequential part", YLabel: "Makespan", Series: series,
	}, nil
}

// lsSweep implements Figures 15–16: sweep the small-storage latency with
// a fixed tiny sequential fraction.
func lsSweep(cfg Config, id string, n int) (*Figure, error) {
	series, err := sweep(cfg, comparisonHeuristics, lsValues(), func(x float64, rng *solve.RNG) (model.Platform, []model.Application, error) {
		pl := platformWithProcessors(256)
		pl.LatencyS = x
		apps, err := genAppsFixedSeq(workload.GenNPBSynth, n, 0.0001, rng)
		return pl, apps, err
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: id, Title: fmt.Sprintf("Impact of latency ls (NPB-SYNTH, %d applications, s=1e-4)", n),
		XLabel: "ls value", YLabel: "Makespan", Series: series,
	}, nil
}

// repartition implements Figures 7 and 17: for each application count,
// record the average, minimum and maximum processor share (DMR, Fair,
// ZeroCache) and cache share (DMR, Fair) allocated to an application,
// averaged over replicates. Each (x, replicate) cell is one portfolio
// scenario over the three (deterministic) heuristics; the processor and
// cache series read the same solved schedules, where the serial loop
// used to compute DMR and Fair twice.
func repartition(cfg Config, id string, gen workload.Generator) (*Figure, error) {
	hs := []sched.Heuristic{sched.DominantMinRatio, sched.Fair, sched.ZeroCache}
	nProc, nCache := 3, 2 // procs series for all of hs, cache series for DMR and Fair
	reps := cfg.replicates()
	repStreams := replicateStreams(cfg)
	pl := platformWithProcessors(256)
	xs := appCounts()

	scenarios := make([]portfolio.Scenario, 0, len(xs)*reps)
	for _, x := range xs {
		for r := 0; r < reps; r++ {
			apps, err := genApps(gen, int(x), solve.NewRNG(repStreams[r]))
			if err != nil {
				return nil, err
			}
			scenarios = append(scenarios, portfolio.Scenario{
				Platform: pl, Apps: apps, Heuristics: hs, Seed: repStreams[r],
			})
		}
	}
	reports := cfg.engine().EvaluateBatch(scenarios)

	fig := &Figure{
		ID: id, Title: fmt.Sprintf("Processor and cache repartition (%v)", gen),
		XLabel: "#Applications", YLabel: "Allocation",
	}
	appendPoint := func(name string, x float64, vals []float64) error {
		sum, err := stats.Summarize(vals)
		if err != nil {
			return err
		}
		s := fig.SeriesByName(name)
		if s == nil {
			fig.Series = append(fig.Series, stats.Series{Name: name})
			s = &fig.Series[len(fig.Series)-1]
		}
		s.Points = append(s.Points, stats.Point{X: x, Summary: sum})
		return nil
	}

	type acc struct{ avg, min, max []float64 }
	accumulate := func(xi, hi int, get func(sched.Assignment) float64) (*acc, error) {
		a := &acc{}
		for r := 0; r < reps; r++ {
			rep := reports[xi*reps+r]
			if rep.Err != nil {
				return nil, rep.Err
			}
			res := rep.Results[hi]
			if res.Err != nil {
				return nil, res.Err
			}
			mn, mx := math.Inf(1), math.Inf(-1)
			var sum solve.Kahan
			for _, asg := range res.Schedule.Assignments {
				v := get(asg)
				mn = math.Min(mn, v)
				mx = math.Max(mx, v)
				sum.Add(v)
			}
			a.avg = append(a.avg, sum.Sum()/float64(len(res.Schedule.Assignments)))
			a.min = append(a.min, mn)
			a.max = append(a.max, mx)
		}
		return a, nil
	}

	type named struct {
		suffix string
		vals   []float64
	}
	for xi, x := range xs {
		for hi := 0; hi < nProc; hi++ {
			a, err := accumulate(xi, hi, func(a sched.Assignment) float64 { return a.Processors })
			if err != nil {
				return nil, err
			}
			for _, nv := range []named{{"procs/avg", a.avg}, {"procs/min", a.min}, {"procs/max", a.max}} {
				if err := appendPoint(hs[hi].String()+"/"+nv.suffix, x, nv.vals); err != nil {
					return nil, err
				}
			}
		}
		for hi := 0; hi < nCache; hi++ {
			a, err := accumulate(xi, hi, func(a sched.Assignment) float64 { return a.CacheShare })
			if err != nil {
				return nil, err
			}
			for _, nv := range []named{{"cache/avg", a.avg}, {"cache/min", a.min}, {"cache/max", a.max}} {
				if err := appendPoint(hs[hi].String()+"/"+nv.suffix, x, nv.vals); err != nil {
					return nil, err
				}
			}
		}
	}
	return fig, nil
}

// Registry maps figure numbers (1–18) to their drivers.
var Registry = map[int]func(Config) (*Figure, error){
	1: Figure1, 2: Figure2, 3: Figure3, 4: Figure4, 5: Figure5, 6: Figure6,
	7: Figure7, 8: Figure8, 9: Figure9, 10: Figure10, 11: Figure11, 12: Figure12,
	13: Figure13, 14: Figure14, 15: Figure15, 16: Figure16, 17: Figure17, 18: Figure18,
}

// NormalizationBase returns the series the paper normalizes figure n by,
// or "" for repartition figures that are plotted raw.
func NormalizationBase(n int) string {
	switch n {
	case 1:
		return sched.AllProcCache.String()
	case 2, 4, 9, 12, 18:
		return sched.DominantMinRatio.String()
	case 3, 5, 6, 8, 10, 11, 13, 14, 15, 16:
		return sched.AllProcCache.String()
	default: // 7, 17: raw allocations
		return ""
	}
}
