package experiments

import (
	"math"
	"testing"
)

func TestExtensionsRegistryComplete(t *testing.T) {
	for n := 1; n <= 5; n++ {
		if _, ok := Extensions[n]; !ok {
			t.Fatalf("extension %d missing", n)
		}
	}
	if len(Extensions) != 5 {
		t.Fatalf("%d extensions registered", len(Extensions))
	}
}

func TestAllExtensionsRun(t *testing.T) {
	cfg := Config{Replicates: 1, Seed: 5}
	for n, run := range Extensions {
		f, err := run(cfg)
		if err != nil {
			t.Fatalf("ext%d: %v", n, err)
		}
		if len(f.Series) == 0 {
			t.Fatalf("ext%d produced no series", n)
		}
		for _, s := range f.Series {
			if len(s.Points) == 0 {
				t.Fatalf("ext%d series %s empty", n, s.Name)
			}
			for _, p := range s.Points {
				if math.IsNaN(p.Summary.Mean) {
					t.Fatalf("ext%d series %s has NaN", n, s.Name)
				}
			}
		}
	}
}

func TestExtLocalSearchNeverWorse(t *testing.T) {
	f, err := ExtLocalSearch(Config{Replicates: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	warm := f.SeriesByName("DominantMinRatio")
	ls := f.SeriesByName("LocalSearch")
	for i := range warm.Points {
		if ls.Points[i].Summary.Mean > warm.Points[i].Summary.Mean*(1+1e-9) {
			t.Fatalf("local search worse at x=%g", warm.Points[i].X)
		}
	}
	// Gains shrink with cache size: first point's improvement exceeds
	// the last point's.
	first := 1 - ls.Points[0].Summary.Mean/warm.Points[0].Summary.Mean
	last := 1 - ls.Points[len(ls.Points)-1].Summary.Mean/warm.Points[len(warm.Points)-1].Summary.Mean
	if first <= last {
		t.Fatalf("local search gains should shrink with LLC size: %v vs %v", first, last)
	}
}

func TestExtRedistributionShape(t *testing.T) {
	f, err := ExtRedistribution(Config{Replicates: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	fair := f.SeriesByName("Fair")
	dmr := f.SeriesByName("DominantMinRatio")
	// DMR gains ~0 everywhere (equal finish); Fair gains grow with n.
	for _, p := range dmr.Points {
		if p.Summary.Mean > 1e-6 {
			t.Fatalf("DMR redistribution gain %v at n=%g should be ~0", p.Summary.Mean, p.X)
		}
	}
	if fair.Points[len(fair.Points)-1].Summary.Mean <= fair.Points[0].Summary.Mean {
		t.Fatal("Fair redistribution gain should grow with n")
	}
}

func TestExtRoundingDegradationGrowsWithN(t *testing.T) {
	f, err := ExtRounding(Config{Replicates: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	for _, p := range s.Points {
		if p.Summary.Mean < 1-1e-9 {
			t.Fatalf("rounding cannot beat the rational optimum: %v at n=%g", p.Summary.Mean, p.X)
		}
	}
	if s.Points[len(s.Points)-1].Summary.Mean <= s.Points[0].Summary.Mean {
		t.Fatal("degradation should grow as shares approach one processor")
	}
}

func TestExtPipelineDepthMonotone(t *testing.T) {
	f, err := ExtPipelineDepth(Config{Replicates: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Summary.Mean > s.Points[i-1].Summary.Mean*(1+1e-9) {
			t.Fatalf("sustainable period rose from depth %g to %g", s.Points[i-1].X, s.Points[i].X)
		}
	}
}
