package genscen

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/fleet"
)

func TestGenerateFleetDeterministic(t *testing.T) {
	for _, f := range FleetFamilies {
		a, err := GenerateFleet(f, 3)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		b, err := GenerateFleet(f, 3)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: instance not deterministic in (family, seed)", f)
		}
		c, err := GenerateFleet(f, 4)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if reflect.DeepEqual(a.Apps, c.Apps) && reflect.DeepEqual(a.Offsets, c.Offsets) {
			t.Errorf("%s: seeds 3 and 4 generated identical streams", f)
		}
	}
}

func TestGenerateFleetShapes(t *testing.T) {
	for _, f := range FleetFamilies {
		for seed := uint64(1); seed <= 6; seed++ {
			in, err := GenerateFleet(f, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", f, seed, err)
			}
			if len(in.Nodes) < 2 || len(in.Nodes) > 4 {
				t.Errorf("%s seed %d: %d nodes, want 2–4", f, seed, len(in.Nodes))
			}
			if len(in.Apps) < 3*len(in.Nodes) {
				t.Errorf("%s seed %d: %d jobs for %d nodes", f, seed, len(in.Apps), len(in.Nodes))
			}
			if len(in.Offsets) != len(in.Apps) {
				t.Fatalf("%s seed %d: %d offsets for %d jobs", f, seed, len(in.Offsets), len(in.Apps))
			}
			prev := 0.0
			for i, off := range in.Offsets {
				if off < prev || off < 0 || off >= 1 {
					t.Errorf("%s seed %d: offset %d = %v out of order or range", f, seed, i, off)
				}
				prev = off
			}
			if f == FleetHetero {
				same := true
				for _, n := range in.Nodes[1:] {
					if n.Platform != in.Nodes[0].Platform {
						same = false
					}
				}
				if same {
					t.Errorf("%s seed %d: all node platforms identical", f, seed)
				}
			}
		}
	}
}

// TestFleetSpecBuildsAndRuns: every (family, seed) projects into a
// wire spec that decodes, builds and simulates under every routing
// policy.
func TestFleetSpecBuildsAndRuns(t *testing.T) {
	for _, f := range FleetFamilies {
		in, err := GenerateFleet(f, 2)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, routing := range fleet.Routings {
			sp, err := in.FleetSpec(routing, 1e9)
			if err != nil {
				t.Fatalf("%s/%s: spec: %v", f, routing, err)
			}
			sc, err := sp.Build(1)
			if err != nil {
				t.Fatalf("%s/%s: build: %v", f, routing, err)
			}
			res, err := fleet.Simulate(sc)
			if err != nil {
				t.Fatalf("%s/%s: simulate: %v", f, routing, err)
			}
			if res.Jobs != len(in.Apps) {
				t.Errorf("%s/%s: simulated %d jobs, want %d", f, routing, res.Jobs, len(in.Apps))
			}
		}
	}
}

func TestParseFleetFamilies(t *testing.T) {
	all, err := ParseFleetFamilies("")
	if err != nil || len(all) != len(FleetFamilies) {
		t.Fatalf("empty spec: %v, %d families", err, len(all))
	}
	got, err := ParseFleetFamilies("fleet-burst, fleet-uniform")
	if err != nil || len(got) != 2 || got[0] != FleetBurst || got[1] != FleetUniform {
		t.Fatalf("two-family spec: %v %v", got, err)
	}
	if _, err := ParseFleetFamilies("fleet-bogus"); err == nil ||
		!strings.Contains(err.Error(), "fleet-bogus") {
		t.Errorf("unknown family: %v", err)
	}
	// The single-node parser must not silently accept fleet names (the
	// two enums are deliberately distinct).
	if _, err := ParseFamilies("fleet-uniform"); err == nil {
		t.Error("ParseFamilies accepted a fleet family name")
	}
}
