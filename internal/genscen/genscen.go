// Package genscen generates seeded random co-scheduling scenarios for
// the conformance harness (cmd/conform): named workload families that
// cover the regimes the heuristics were designed for (Amdahl-dominated
// mixes, cache-bound sets, latency-dominated sets) and the degenerate
// corners that historically break schedulers (near-zero work, single
// applications, exact dominance-ratio ties, near-overflow magnitudes).
//
// One (family, seed) pair deterministically fixes an Instance: a
// platform plus an application set. The same Instance can be projected
// into every execution layer of the repository — a portfolio.Scenario
// for the static engines, a des.Scenario (all jobs at t = 0) for the
// static/online equivalence check, and a des.Spec with staggered replay
// arrivals for the online simulator — so differential tests drive every
// layer from identical inputs.
package genscen

import (
	"fmt"
	"strings"

	"repro/internal/des"
	"repro/internal/model"
	"repro/internal/portfolio"
	"repro/internal/sched"
	"repro/internal/solve"
)

// familyStride separates the RNG streams of different families at the
// same seed (the golden-ratio constant used throughout the repository).
const familyStride = 0x9E3779B97F4A7C15

// Family names one scenario generator.
type Family int

const (
	// AmdahlMix is the bread-and-butter regime: NPB-synth-like work
	// spans, heterogeneous sequential fractions up to 30%, unbounded
	// footprints. Processor allocation matters as much as cache.
	AmdahlMix Family = iota
	// CacheBound stresses the cache partitioning decision: perfectly
	// parallel applications, small caches, high access frequencies and
	// miss rates, half the applications with bounded footprints. The
	// bounded footprints void the closed-form optimality preconditions
	// (Theorems 2–3 assume a_i = ∞), so the oracle is a bound here, not
	// the exact optimum.
	CacheBound
	// LatencyDominated makes the miss penalty dominate compute: very
	// large ll/ls ratios, so tiny share differences move the makespan.
	LatencyDominated
	// ZeroWork is the near-degenerate corner: work values many orders of
	// magnitude below the paper's range, some applications with zero
	// access frequency (dominance ratio exactly 0) and some additionally
	// with zero reference miss rate (d_i = 0, an infinite dominance
	// ratio). Perfectly parallel, unbounded footprints, so the oracle is
	// exact.
	ZeroWork
	// SingleApp generates one-application instances, the smallest
	// boundary of every loop in the stack.
	SingleApp
	// EqualFootprint generates n identical clones with equal bounded
	// footprints: every dominance ratio ties exactly, stressing
	// order-dependence of sorts and tie-breaking.
	EqualFootprint
	// NearOverflow draws work values up to 1e200 and memory latencies up
	// to 1e6, probing the float64 headroom of every accumulation in the
	// pipeline (the equalizer's bracket doubling, Kahan sums, the DES
	// clock).
	NearOverflow
)

// Families lists every family in presentation order.
var Families = []Family{
	AmdahlMix, CacheBound, LatencyDominated, ZeroWork,
	SingleApp, EqualFootprint, NearOverflow,
}

// String implements fmt.Stringer with the harness's kebab-case names.
func (f Family) String() string {
	switch f {
	case AmdahlMix:
		return "amdahl-mix"
	case CacheBound:
		return "cache-bound"
	case LatencyDominated:
		return "latency-dominated"
	case ZeroWork:
		return "zero-work"
	case SingleApp:
		return "single-app"
	case EqualFootprint:
		return "equal-footprint"
	case NearOverflow:
		return "near-overflow"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// ParseFamily resolves a family name as produced by String.
func ParseFamily(name string) (Family, error) {
	for _, f := range Families {
		if f.String() == name {
			return f, nil
		}
	}
	return 0, fmt.Errorf("genscen: unknown family %q", name)
}

// ParseFamilies resolves a comma-separated family list; empty input
// means every family.
func ParseFamilies(spec string) ([]Family, error) {
	if strings.TrimSpace(spec) == "" {
		return append([]Family(nil), Families...), nil
	}
	var out []Family
	for _, name := range strings.Split(spec, ",") {
		f, err := ParseFamily(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// OracleExact reports whether the family generates only instances on
// which the subset/closed-form oracle is provably optimal (perfectly
// parallel applications with unbounded footprints, Theorems 2–3): on
// those, a heuristic beating the oracle is itself a violation.
func (f Family) OracleExact() bool {
	return f == ZeroWork
}

// Config bounds instance sizes.
type Config struct {
	// MinApps/MaxApps bound the application count (inclusive). Zero
	// values default to 2 and 6 — small enough for the brute-force
	// oracle, large enough for non-trivial partitions. SingleApp
	// ignores both.
	MinApps, MaxApps int
}

func (c Config) bounds() (lo, hi int, err error) {
	lo, hi = c.MinApps, c.MaxApps
	if lo == 0 && hi == 0 {
		lo, hi = 2, 6
	}
	if lo < 1 || hi < lo {
		return 0, 0, fmt.Errorf("genscen: app bounds [%d, %d] invalid", lo, hi)
	}
	return lo, hi, nil
}

// Instance is one fully specified scheduling problem.
type Instance struct {
	Family   Family
	Seed     uint64
	Platform model.Platform
	Apps     []model.Application
}

// Generate produces the (family, seed) instance under cfg. The result
// is a pure function of its arguments.
func Generate(f Family, seed uint64, cfg Config) (*Instance, error) {
	lo, hi, err := cfg.bounds()
	if err != nil {
		return nil, err
	}
	rng := solve.NewRNG(seed ^ (uint64(f)+1)*familyStride)
	n := lo
	if hi > lo {
		n = lo + rng.Intn(hi-lo+1)
	}
	in := &Instance{Family: f, Seed: seed}
	switch f {
	case AmdahlMix:
		in.Platform = stdPlatform(rng)
		in.Apps = amdahlMixApps(rng, n)
	case CacheBound:
		in.Platform = stdPlatform(rng)
		in.Platform.CacheSize = rng.LogUniform(1e6, 4e7) // tight cache
		in.Apps = cacheBoundApps(rng, n, in.Platform.CacheSize)
	case LatencyDominated:
		in.Platform = stdPlatform(rng)
		in.Platform.LatencyS = rng.UniformRange(0.01, 0.1)
		in.Platform.LatencyL = rng.UniformRange(50, 500)
		in.Apps = latencyApps(rng, n)
	case ZeroWork:
		in.Platform = stdPlatform(rng)
		in.Apps = zeroWorkApps(rng, n)
	case SingleApp:
		in.Platform = stdPlatform(rng)
		in.Apps = amdahlMixApps(rng, 1)
	case EqualFootprint:
		in.Platform = stdPlatform(rng)
		in.Apps = cloneApps(rng, n, in.Platform.CacheSize)
	case NearOverflow:
		in.Platform = stdPlatform(rng)
		in.Platform.LatencyL = rng.LogUniform(1, 1e6)
		in.Apps = overflowApps(rng, n)
	default:
		return nil, fmt.Errorf("genscen: unknown family %v", f)
	}
	if err := model.ValidateAll(in.Platform, in.Apps); err != nil {
		return nil, fmt.Errorf("genscen: %s seed %d generated an invalid instance: %w", f, seed, err)
	}
	return in, nil
}

// stdPlatform draws a platform in the paper's neighborhood: 4–64
// processors, 1 MB–1 GB LLC, α ∈ [0.3, 0.7] (the literature's range).
func stdPlatform(rng *solve.RNG) model.Platform {
	return model.Platform{
		Processors: float64(4 + rng.Intn(61)),
		CacheSize:  rng.LogUniform(1e6, 1e9),
		LatencyS:   rng.UniformRange(0.05, 0.5),
		LatencyL:   rng.UniformRange(1, 4),
		Alpha:      rng.UniformRange(0.3, 0.7),
	}
}

const refCache = 40e6 // Table 2's measurement cache size

func amdahlMixApps(rng *solve.RNG, n int) []model.Application {
	apps := make([]model.Application, n)
	for i := range apps {
		apps[i] = model.Application{
			Name:         fmt.Sprintf("amdahl-%d", i),
			Work:         rng.LogUniform(1e8, 1e12),
			SeqFraction:  rng.UniformRange(0.01, 0.3),
			AccessFreq:   rng.UniformRange(0.1, 0.9),
			RefMissRate:  rng.UniformRange(9e-4, 1e-2),
			RefCacheSize: refCache,
		}
	}
	return apps
}

func cacheBoundApps(rng *solve.RNG, n int, cacheSize float64) []model.Application {
	apps := make([]model.Application, n)
	for i := range apps {
		a := model.Application{
			Name:         fmt.Sprintf("cache-%d", i),
			Work:         rng.LogUniform(1e8, 1e11),
			AccessFreq:   rng.UniformRange(0.6, 0.95),
			RefMissRate:  rng.UniformRange(5e-3, 5e-2),
			RefCacheSize: refCache,
		}
		if i%2 == 1 {
			// Bounded footprint between 30% and 150% of the LLC: both the
			// binding and the non-binding side of the footprint cap.
			a.Footprint = cacheSize * rng.UniformRange(0.3, 1.5)
		}
		apps[i] = a
	}
	return apps
}

func latencyApps(rng *solve.RNG, n int) []model.Application {
	apps := make([]model.Application, n)
	for i := range apps {
		apps[i] = model.Application{
			Name:         fmt.Sprintf("lat-%d", i),
			Work:         rng.LogUniform(1e7, 1e10),
			SeqFraction:  rng.UniformRange(0, 0.1),
			AccessFreq:   rng.UniformRange(0.5, 0.95),
			RefMissRate:  rng.UniformRange(1e-3, 5e-2),
			RefCacheSize: refCache,
		}
	}
	return apps
}

func zeroWorkApps(rng *solve.RNG, n int) []model.Application {
	apps := make([]model.Application, n)
	for i := range apps {
		a := model.Application{
			Name:         fmt.Sprintf("zero-%d", i),
			Work:         rng.LogUniform(1e-6, 1), // far below the paper's 1e8 floor
			AccessFreq:   rng.UniformRange(0.1, 0.9),
			RefMissRate:  rng.UniformRange(9e-4, 1e-2),
			RefCacheSize: refCache,
		}
		switch rng.Intn(3) {
		case 0:
			// Pure compute with nonzero miss rate: dominance weight 0 but
			// threshold > 0, so the dominance ratio is exactly 0.
			a.AccessFreq = 0
		case 1:
			// d_i = 0 AND no accesses: the infinite-dominance-ratio path.
			// The miss rate must be zeroed together with the frequency —
			// an m_0 = 0 application with f > 0 sits on a modeling
			// discontinuity (miss 1 at x = 0, miss 0 at any x > 0) where
			// the closed-form share calculus is not optimal and the
			// oracle-exactness of this family would not hold.
			a.AccessFreq = 0
			a.RefMissRate = 0
		}
		apps[i] = a
	}
	return apps
}

func cloneApps(rng *solve.RNG, n int, cacheSize float64) []model.Application {
	base := model.Application{
		Work:         rng.LogUniform(1e8, 1e12),
		SeqFraction:  rng.UniformRange(0.01, 0.15),
		AccessFreq:   rng.UniformRange(0.3, 0.9),
		RefMissRate:  rng.UniformRange(9e-4, 1e-2),
		RefCacheSize: refCache,
		Footprint:    cacheSize * rng.UniformRange(0.2, 0.8),
	}
	apps := make([]model.Application, n)
	for i := range apps {
		a := base
		a.Name = fmt.Sprintf("clone-%d", i)
		apps[i] = a
	}
	return apps
}

func overflowApps(rng *solve.RNG, n int) []model.Application {
	apps := make([]model.Application, n)
	for i := range apps {
		apps[i] = model.Application{
			Name:         fmt.Sprintf("huge-%d", i),
			Work:         rng.LogUniform(1e120, 1e200),
			SeqFraction:  rng.UniformRange(0, 0.05),
			AccessFreq:   rng.UniformRange(0.1, 0.9),
			RefMissRate:  rng.LogUniform(1e-8, 1e-2),
			RefCacheSize: refCache,
		}
	}
	return apps
}

// CloneApps returns a defensive copy of the instance's application
// slice, so callers can mutate (scale, permute) without aliasing.
func (in *Instance) CloneApps() []model.Application {
	return append([]model.Application(nil), in.Apps...)
}

// PortfolioScenario projects the instance into the static portfolio
// engine. hs selects the heuristics to race (nil = the full extended
// set).
func (in *Instance) PortfolioScenario(hs []sched.Heuristic) portfolio.Scenario {
	return portfolio.Scenario{
		Platform:   in.Platform,
		Apps:       in.CloneApps(),
		Heuristics: hs,
		Seed:       in.Seed,
	}
}

// StaticDES projects the instance into the online simulator's
// degenerate offline case: every job arrives at t = 0 and the
// no-repartition wave policy wraps h. By the des package's equivalence
// property this must reproduce internal/sim's static execution of h's
// schedule bit-for-bit.
func (in *Instance) StaticDES(h sched.Heuristic) (des.Scenario, error) {
	arrivals := make([]des.Arrival, len(in.Apps))
	for i, a := range in.Apps {
		arrivals[i] = des.Arrival{Time: 0, App: a}
	}
	proc, err := des.NewReplay(arrivals)
	if err != nil {
		return des.Scenario{}, err
	}
	pol, err := des.NewNoRepartition(h, in.Seed)
	if err != nil {
		return des.Scenario{}, err
	}
	return des.Scenario{Platform: in.Platform, Arrivals: proc, Policy: pol}, nil
}

// OnlineSpec projects the instance into a des.Spec with staggered
// replay arrivals: job i arrives at i·span/n, so jobs overlap and the
// policy repartitions mid-flight. span should be on the order of the
// static makespan so the stagger is neither negligible nor serializing.
// The spec is the same wire format cmd/dessim consumes, so a failing
// seed can be replayed there verbatim.
func (in *Instance) OnlineSpec(policy string, span float64) (*des.Spec, error) {
	if !(span >= 0) {
		return nil, fmt.Errorf("genscen: online span must be >= 0, got %v", span)
	}
	n := len(in.Apps)
	replay := make([]des.ReplaySpec, n)
	for i, a := range in.Apps {
		app := des.AppSpec{
			Name: a.Name, Work: a.Work, Seq: a.SeqFraction, Freq: a.AccessFreq,
			MissRate: a.RefMissRate, RefCache: a.RefCacheSize, Footprint: a.Footprint,
		}
		replay[i] = des.ReplaySpec{Time: span * float64(i) / float64(n), App: &app}
	}
	pl := in.Platform
	sp := &des.Spec{
		Platform: &des.PlatformSpec{
			Processors: pl.Processors, CacheSize: pl.CacheSize,
			LatencyS: pl.LatencyS, LatencyL: pl.LatencyL, Alpha: pl.Alpha,
		},
		Arrivals: des.ArrivalSpec{Process: "replay", Replay: replay},
		Policy:   policy,
		Seed:     in.Seed,
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}
