package genscen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/des"
	"repro/internal/fleet"
	"repro/internal/model"
	"repro/internal/solve"
)

// fleetSalt separates the fleet families' RNG streams from the
// single-node families sharing a seed.
const fleetSalt = 0xF1EE7F1EE7F1EE77

// FleetFamily names one fleet-scenario generator. The fleet families
// are deliberately a separate enum from Family: they parameterize a
// different harness (routing determinism, fleet-vs-single-node
// invariants) with its own golden corpus, and folding them into
// Families would silently change every default single-node sweep.
type FleetFamily int

const (
	// FleetUniform is the homogeneous baseline: identical nodes, an
	// Amdahl-mix job stream spread evenly over the horizon. Routing
	// differences here come purely from load signals.
	FleetUniform FleetFamily = iota
	// FleetHetero draws every node's platform independently (different
	// processor counts, cache sizes, latency constants), so a router
	// that ignores node capacity pays for it.
	FleetHetero
	// FleetAffinity is the cache-affinity regime: tight node caches and
	// a cache-bound job stream stamped from a few templates in runs, so
	// keeping a template's working set on one node is materially better
	// than spraying it.
	FleetAffinity
	// FleetBurst clusters arrivals into bursts separated by idle gaps,
	// stressing queue-depth signals (join-shortest-queue vs backlog)
	// and the FIFO admission path on every node.
	FleetBurst
)

// FleetFamilies lists every fleet family in presentation order.
var FleetFamilies = []FleetFamily{FleetUniform, FleetHetero, FleetAffinity, FleetBurst}

// String implements fmt.Stringer with the harness's kebab-case names.
func (f FleetFamily) String() string {
	switch f {
	case FleetUniform:
		return "fleet-uniform"
	case FleetHetero:
		return "fleet-hetero"
	case FleetAffinity:
		return "fleet-affinity"
	case FleetBurst:
		return "fleet-burst"
	default:
		return fmt.Sprintf("FleetFamily(%d)", int(f))
	}
}

// ParseFleetFamily resolves a fleet family name as produced by String.
func ParseFleetFamily(name string) (FleetFamily, error) {
	for _, f := range FleetFamilies {
		if f.String() == name {
			return f, nil
		}
	}
	return 0, fmt.Errorf("genscen: unknown fleet family %q", name)
}

// ParseFleetFamilies resolves a comma-separated fleet family list;
// empty input means every fleet family.
func ParseFleetFamilies(spec string) ([]FleetFamily, error) {
	if strings.TrimSpace(spec) == "" {
		return append([]FleetFamily(nil), FleetFamilies...), nil
	}
	var out []FleetFamily
	for _, name := range strings.Split(spec, ",") {
		f, err := ParseFleetFamily(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// FleetInstance is one fully specified fleet problem: the node list
// plus the job stream as (arrival-offset, application) pairs. Offsets
// are fractions of the simulation horizon in [0, 1), non-decreasing;
// FleetSpec scales them by a caller-chosen span.
type FleetInstance struct {
	Family  FleetFamily
	Seed    uint64
	Nodes   []fleet.Node
	Apps    []model.Application
	Offsets []float64
}

// GenerateFleet produces the (family, seed) fleet instance — a pure
// function of its arguments, like Generate.
func GenerateFleet(f FleetFamily, seed uint64) (*FleetInstance, error) {
	rng := solve.NewRNG(seed ^ (uint64(f)+1)*familyStride ^ fleetSalt)
	in := &FleetInstance{Family: f, Seed: seed}
	nNodes := 2 + rng.Intn(3) // 2–4 nodes
	jobs := 3*nNodes + rng.Intn(2*nNodes+1)
	var tpl []model.Application
	switch f {
	case FleetUniform:
		pl := stdPlatform(rng)
		for i := 0; i < nNodes; i++ {
			in.Nodes = append(in.Nodes, fleet.Node{Platform: pl, MaxResident: 3})
		}
		tpl = amdahlMixApps(rng, 3)
		in.Apps, in.Offsets = cycleStream(rng, tpl, jobs)
	case FleetHetero:
		for i := 0; i < nNodes; i++ {
			in.Nodes = append(in.Nodes, fleet.Node{Platform: stdPlatform(rng), MaxResident: 3})
		}
		tpl = amdahlMixApps(rng, 3)
		in.Apps, in.Offsets = cycleStream(rng, tpl, jobs)
	case FleetAffinity:
		for i := 0; i < nNodes; i++ {
			pl := stdPlatform(rng)
			pl.CacheSize = rng.LogUniform(1e6, 4e7) // tight cache
			in.Nodes = append(in.Nodes, fleet.Node{Platform: pl, MaxResident: 3})
		}
		minCache := in.Nodes[0].Platform.CacheSize
		for _, n := range in.Nodes[1:] {
			if n.Platform.CacheSize < minCache {
				minCache = n.Platform.CacheSize
			}
		}
		tpl = cacheBoundApps(rng, 2+rng.Intn(2), minCache)
		in.Apps, in.Offsets = runStream(rng, tpl, jobs)
	case FleetBurst:
		pl := stdPlatform(rng)
		for i := 0; i < nNodes; i++ {
			in.Nodes = append(in.Nodes, fleet.Node{Platform: pl, MaxResident: 2})
		}
		tpl = amdahlMixApps(rng, 3)
		in.Apps, in.Offsets = cycleStream(rng, tpl, jobs)
		burstOffsets(rng, in.Offsets)
	default:
		return nil, fmt.Errorf("genscen: unknown fleet family %v", f)
	}
	for i, n := range in.Nodes {
		if err := model.ValidateAll(n.Platform, in.Apps); err != nil {
			return nil, fmt.Errorf("genscen: %s seed %d node %d invalid: %w", f, seed, i, err)
		}
	}
	return in, nil
}

// cycleStream stamps jobs from the templates in cyclic order with
// sorted uniform arrival offsets.
func cycleStream(rng *solve.RNG, tpl []model.Application, jobs int) ([]model.Application, []float64) {
	apps := make([]model.Application, jobs)
	offs := make([]float64, jobs)
	for i := range apps {
		a := tpl[i%len(tpl)]
		a.Name = fmt.Sprintf("%s#%d", a.Name, i)
		apps[i] = a
		offs[i] = rng.Float64()
	}
	sort.Float64s(offs)
	return apps, offs
}

// runStream stamps jobs in template runs (a few consecutive jobs per
// template before switching), so footprint affinity has structure to
// exploit.
func runStream(rng *solve.RNG, tpl []model.Application, jobs int) ([]model.Application, []float64) {
	apps := make([]model.Application, jobs)
	offs := make([]float64, jobs)
	ti := 0
	for i := 0; i < jobs; {
		for j, run := 0, 1+rng.Intn(3); j < run && i < jobs; j++ {
			a := tpl[ti%len(tpl)]
			a.Name = fmt.Sprintf("%s#%d", a.Name, i)
			apps[i] = a
			offs[i] = rng.Float64()
			i++
		}
		ti++
	}
	sort.Float64s(offs)
	return apps, offs
}

// burstOffsets re-draws the offsets as clustered bursts: a few centers
// over the horizon, each job jittered tightly around one of them.
func burstOffsets(rng *solve.RNG, offs []float64) {
	centers := 2 + rng.Intn(2)
	for i := range offs {
		c := float64(rng.Intn(centers))
		offs[i] = (c + rng.UniformRange(0, 0.2)) / float64(centers)
	}
	sort.Float64s(offs)
}

// FleetSpec projects the instance into the fleet wire format: replay
// arrivals at span·offset with explicit per-job applications, so a
// failing (family, seed) reproduces verbatim under cmd/dessim -fleet.
// span should be on the order of a single node's makespan for the job
// set, so arrivals overlap without serializing.
func (in *FleetInstance) FleetSpec(routing string, span float64) (*fleet.Spec, error) {
	if !(span >= 0) {
		return nil, fmt.Errorf("genscen: fleet span must be >= 0, got %v", span)
	}
	replay := make([]des.ReplaySpec, len(in.Apps))
	for i, a := range in.Apps {
		app := des.AppSpec{
			Name: a.Name, Work: a.Work, Seq: a.SeqFraction, Freq: a.AccessFreq,
			MissRate: a.RefMissRate, RefCache: a.RefCacheSize, Footprint: a.Footprint,
		}
		replay[i] = des.ReplaySpec{Time: span * in.Offsets[i], App: &app}
	}
	nodes := make([]fleet.NodeSpec, len(in.Nodes))
	for i, n := range in.Nodes {
		pl := n.Platform
		nodes[i] = fleet.NodeSpec{
			Name: n.Name,
			Platform: &des.PlatformSpec{
				Processors: pl.Processors, CacheSize: pl.CacheSize,
				LatencyS: pl.LatencyS, LatencyL: pl.LatencyL, Alpha: pl.Alpha,
			},
			Policy:      n.Policy,
			MaxResident: n.MaxResident,
		}
	}
	sp := &fleet.Spec{
		Nodes:    nodes,
		Routing:  routing,
		Arrivals: des.ArrivalSpec{Process: "replay", Replay: replay},
		Seed:     in.Seed,
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}
