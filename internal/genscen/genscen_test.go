package genscen

import (
	"reflect"
	"testing"

	"repro/internal/des"
	"repro/internal/model"
	"repro/internal/sched"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, f := range Families {
		for seed := uint64(0); seed < 8; seed++ {
			a, err := Generate(f, seed, Config{})
			if err != nil {
				t.Fatalf("%v seed %d: %v", f, seed, err)
			}
			b, err := Generate(f, seed, Config{})
			if err != nil {
				t.Fatalf("%v seed %d: %v", f, seed, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%v seed %d: two generations differ", f, seed)
			}
		}
	}
}

func TestGenerateValidatesAndSchedules(t *testing.T) {
	for _, f := range Families {
		for seed := uint64(0); seed < 16; seed++ {
			in, err := Generate(f, seed, Config{})
			if err != nil {
				t.Fatalf("%v seed %d: %v", f, seed, err)
			}
			if err := model.ValidateAll(in.Platform, in.Apps); err != nil {
				t.Fatalf("%v seed %d: invalid instance: %v", f, seed, err)
			}
			// Every instance must be schedulable by the reference
			// heuristic: the generator's job is to produce hard inputs,
			// not broken ones.
			s, err := sched.DominantMinRatio.Schedule(in.Platform, in.Apps, nil)
			if err != nil {
				t.Fatalf("%v seed %d: schedule: %v", f, seed, err)
			}
			if err := s.Validate(in.Platform, in.Apps); err != nil {
				t.Fatalf("%v seed %d: schedule invalid: %v", f, seed, err)
			}
		}
	}
}

func TestFamilyShapes(t *testing.T) {
	single, err := Generate(SingleApp, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Apps) != 1 {
		t.Errorf("single-app generated %d apps", len(single.Apps))
	}

	clones, err := Generate(EqualFootprint, 3, Config{MinApps: 4, MaxApps: 4})
	if err != nil {
		t.Fatal(err)
	}
	base := clones.Apps[0]
	for i, a := range clones.Apps[1:] {
		a.Name = base.Name
		if a != base {
			t.Errorf("clone %d differs from base", i+1)
		}
	}
	if base.Footprint <= 0 {
		t.Errorf("equal-footprint clones should have bounded footprints, got %v", base.Footprint)
	}

	zero, err := Generate(ZeroWork, 7, Config{MinApps: 6, MaxApps: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range zero.Apps {
		if a.SeqFraction != 0 {
			t.Errorf("zero-work app %s has nonzero sequential fraction", a.Name)
		}
		if a.Work >= 1e8 {
			t.Errorf("zero-work app %s has paper-scale work %v", a.Name, a.Work)
		}
	}
}

func TestParseFamilies(t *testing.T) {
	all, err := ParseFamilies("")
	if err != nil || len(all) != len(Families) {
		t.Fatalf("empty spec: %v, %d families", err, len(all))
	}
	two, err := ParseFamilies("zero-work, near-overflow")
	if err != nil || len(two) != 2 || two[0] != ZeroWork || two[1] != NearOverflow {
		t.Fatalf("two-family spec: %v %v", two, err)
	}
	if _, err := ParseFamilies("bogus"); err == nil {
		t.Fatal("bogus family accepted")
	}
	for _, f := range Families {
		got, err := ParseFamily(f.String())
		if err != nil || got != f {
			t.Errorf("round trip %v: got %v, %v", f, got, err)
		}
	}
}

func TestConfigBounds(t *testing.T) {
	if _, err := Generate(AmdahlMix, 1, Config{MinApps: 3, MaxApps: 2}); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	in, err := Generate(AmdahlMix, 1, Config{MinApps: 5, MaxApps: 5})
	if err != nil || len(in.Apps) != 5 {
		t.Fatalf("fixed bounds: %d apps, %v", len(in.Apps), err)
	}
}

func TestStaticDESRuns(t *testing.T) {
	in, err := Generate(AmdahlMix, 11, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := in.StaticDES(sched.DominantMinRatio)
	if err != nil {
		t.Fatal(err)
	}
	res, err := des.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != len(in.Apps) {
		t.Fatalf("simulated %d jobs for %d apps", len(res.Jobs), len(in.Apps))
	}
}

func TestOnlineSpecBuildsAndRuns(t *testing.T) {
	in, err := Generate(CacheBound, 5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := in.OnlineSpec("DominantMinRatio", 100)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sp.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := des.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != len(in.Apps) {
		t.Fatalf("simulated %d jobs for %d apps", len(res.Jobs), len(in.Apps))
	}
	if _, err := in.OnlineSpec("DominantMinRatio", -1); err == nil {
		t.Fatal("negative span accepted")
	}
}
