package core

import (
	"testing"
	"testing/quick"

	"repro/internal/solve"
)

func TestBestRatioPrefixDominant(t *testing.T) {
	pl := refPlatform()
	pl.CacheSize = 1e8
	for seed := uint64(0); seed < 15; seed++ {
		apps := randomApps(seed, 24)
		for i := range apps {
			apps[i].RefMissRate = 0.4
		}
		p, err := BestRatioPrefix(pl, apps)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Dominant() {
			t.Fatalf("seed %d: prefix result not dominant", seed)
		}
	}
}

func TestBestRatioPrefixNeverWorseThanGreedy(t *testing.T) {
	// The prefix scan evaluates every dominant prefix, so it is never
	// worse (in closed-form makespan) than Dominant/MinRatio, whose
	// result is one of those prefixes... up to eviction-order nuances;
	// assert it is at least as good as the larger of the two greedy
	// variants' makespans.
	pl := refPlatform()
	pl.CacheSize = 1e8
	for seed := uint64(0); seed < 15; seed++ {
		apps := randomApps(seed, 24)
		for i := range apps {
			apps[i].RefMissRate = 0.4
		}
		prefix, err := BestRatioPrefix(pl, apps)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := Dominant(pl, apps, ChooseMinRatio)
		if err != nil {
			t.Fatal(err)
		}
		if prefix.Makespan() > greedy.Makespan()*(1+1e-9) {
			t.Fatalf("seed %d: prefix (%v) worse than greedy (%v)", seed, prefix.Makespan(), greedy.Makespan())
		}
	}
}

func TestBestRatioPrefixOnNPB(t *testing.T) {
	// On the reference platform every application is dominant, so the
	// best prefix is the full set.
	pl := refPlatform()
	p, err := BestRatioPrefix(pl, npbApps())
	if err != nil {
		t.Fatal(err)
	}
	if p.CacheSetSize() != 6 {
		t.Fatalf("expected the full set, got %d members", p.CacheSetSize())
	}
}

func TestBestRatioPrefixEmptyInputRejected(t *testing.T) {
	pl := refPlatform()
	if _, err := BestRatioPrefix(pl, nil); err == nil {
		t.Fatal("empty set accepted")
	}
}

// Property: the prefix result is always feasible and dominant for any
// workload.
func TestBestRatioPrefixProperty(t *testing.T) {
	pl := refPlatform()
	pl.CacheSize = 2e8
	f := func(seed uint64, nPick uint8) bool {
		n := 1 + int(nPick)%20
		apps := randomApps(seed, n)
		for i := range apps {
			apps[i].RefMissRate = 0.1 + 0.5*float64(i%3)/2
		}
		p, err := BestRatioPrefix(pl, apps)
		if err != nil {
			return false
		}
		if !p.Dominant() {
			return false
		}
		x := p.Shares()
		return solve.Sum(x) <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
