package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/solve"
)

// Theorem 3, tested directly: for a dominant partition, the closed-form
// shares minimize the perfectly-parallel makespan over ALL feasible share
// vectors supported on the same IC.
func TestTheorem3OptimalAgainstRandomShares(t *testing.T) {
	pl := refPlatform()
	pl.CacheSize = 1e9
	f := func(seed uint64) bool {
		apps := randomApps(seed, 10)
		p, err := Dominant(pl, apps, ChooseMinRatio)
		if err != nil {
			return false
		}
		base := p.Makespan()
		members := p.Members()
		r := solve.NewRNG(seed ^ 0xABCD)
		// Try 20 random share vectors on the same support.
		for trial := 0; trial < 20; trial++ {
			alt := make([]float64, len(apps))
			var sum float64
			for i := range alt {
				if members[i] {
					alt[i] = 0.01 + r.Float64()
					sum += alt[i]
				}
			}
			if sum == 0 {
				continue
			}
			for i := range alt {
				alt[i] /= sum
			}
			var total float64
			for i, a := range apps {
				total += a.ExeSeq(pl, alt[i])
			}
			if total/pl.Processors < base*(1-1e-9) {
				return false // a random vector beat the closed form
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Lemma 1 + Lemma 2, tested directly: moving processor mass away from
// the proportional (equal-finish) assignment strictly increases the
// makespan for perfectly parallel applications.
func TestLemma2PerturbationIncreasesMakespan(t *testing.T) {
	pl := refPlatform()
	apps := npbApps()
	p, err := NewPartition(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := p.Shares()
	// Lemma 2 processors.
	seq := make([]float64, len(apps))
	var total float64
	for i, a := range apps {
		seq[i] = a.ExeSeq(pl, x[i])
		total += seq[i]
	}
	procs := make([]float64, len(apps))
	for i := range procs {
		procs[i] = pl.Processors * seq[i] / total
	}
	base := total / pl.Processors

	makespan := func(procs []float64) float64 {
		var m float64
		for i, a := range apps {
			m = math.Max(m, a.Exe(pl, procs[i], x[i]))
		}
		return m
	}
	if got := makespan(procs); math.Abs(got-base) > 1e-9*base {
		t.Fatalf("Lemma 2 assignment has makespan %v, want %v", got, base)
	}
	r := solve.NewRNG(7)
	for trial := 0; trial < 100; trial++ {
		i, j := r.Intn(len(procs)), r.Intn(len(procs))
		if i == j {
			continue
		}
		eps := procs[i] * 0.1 * r.Float64()
		alt := append([]float64(nil), procs...)
		alt[i] -= eps
		alt[j] += eps
		if makespan(alt) < base*(1-1e-12) {
			t.Fatalf("perturbation %d beat the Lemma 2 assignment", trial)
		}
	}
}

// The NP-completeness core, observed: which subset IC is optimal really
// does change with the instance (if one subset always won, the problem
// would be easy). We exhibit two small instances whose optimal subsets
// differ in size.
func TestOptimalSubsetVariesAcrossInstances(t *testing.T) {
	pl := refPlatform()
	pl.CacheSize = 1e7 // very tight cache

	// Instance A: mild miss rates — everyone fits, full IC is best.
	a := npbApps()
	pA, err := NewPartition(pl, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	fullDominantA := pA.Dominant()

	// Instance B: savage miss rates — dominance forces eviction.
	b := npbApps()
	for i := range b {
		b[i].RefMissRate = 0.9
	}
	pB, err := Dominant(pl, b, ChooseMinRatio)
	if err != nil {
		t.Fatal(err)
	}
	if fullDominantA && pB.CacheSetSize() == len(b) {
		t.Fatal("expected instance B to force evictions that instance A does not")
	}
}
