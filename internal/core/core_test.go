package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/solve"
)

func refPlatform() model.Platform { return model.TaihuLight() }

// npbApps returns Table 2's six applications, perfectly parallel.
func npbApps() []model.Application {
	mk := func(name string, w, f, m float64) model.Application {
		return model.Application{Name: name, Work: w, AccessFreq: f, RefMissRate: m, RefCacheSize: 40e6}
	}
	return []model.Application{
		mk("CG", 5.70e10, 5.35e-01, 6.59e-04),
		mk("BT", 2.10e11, 8.29e-01, 7.31e-03),
		mk("LU", 1.52e11, 7.50e-01, 1.51e-03),
		mk("SP", 1.38e11, 7.62e-01, 1.51e-02),
		mk("MG", 1.23e10, 5.40e-01, 2.62e-02),
		mk("FT", 1.65e10, 5.82e-01, 1.78e-02),
	}
}

func randomApps(seed uint64, n int) []model.Application {
	r := solve.NewRNG(seed)
	apps := make([]model.Application, n)
	for i := range apps {
		apps[i] = model.Application{
			Name: "r", Work: r.LogUniform(1e8, 1e12),
			AccessFreq:   0.1 + 0.8*r.Float64(),
			RefMissRate:  r.UniformRange(9e-4, 1e-2),
			RefCacheSize: 40e6,
		}
	}
	return apps
}

func TestNewPartitionValidation(t *testing.T) {
	pl := refPlatform()
	if _, err := NewPartition(pl, nil, nil); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := NewPartition(pl, npbApps(), make([]bool, 2)); err == nil {
		t.Fatal("length-mismatched members accepted")
	}
	bad := npbApps()
	bad[0].Work = -1
	if _, err := NewPartition(pl, bad, nil); err == nil {
		t.Fatal("invalid application accepted")
	}
}

func TestPartitionBookkeeping(t *testing.T) {
	pl := refPlatform()
	apps := npbApps()
	p, err := NewPartition(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 6 || p.CacheSetSize() != 6 {
		t.Fatalf("fresh partition: Len=%d size=%d", p.Len(), p.CacheSetSize())
	}
	var want solve.Kahan
	for i, a := range apps {
		want.Add(a.DominanceWeight(pl))
		if p.Weight(i) != a.DominanceWeight(pl) {
			t.Fatalf("weight %d mismatch", i)
		}
	}
	if math.Abs(p.WeightSum()-want.Sum()) > 1e-9*want.Sum() {
		t.Fatalf("weight sum %v, want %v", p.WeightSum(), want.Sum())
	}
	p.Remove(0)
	p.Remove(0) // idempotent
	if p.CacheSetSize() != 5 || p.InCache(0) {
		t.Fatal("remove failed")
	}
	p.Add(0)
	p.Add(0) // idempotent
	if p.CacheSetSize() != 6 || !p.InCache(0) {
		t.Fatal("add failed")
	}
	if math.Abs(p.WeightSum()-want.Sum()) > 1e-9*want.Sum() {
		t.Fatalf("incremental sum drifted: %v vs %v", p.WeightSum(), want.Sum())
	}
}

func TestEmptyPartitionSumIsZero(t *testing.T) {
	pl := refPlatform()
	apps := npbApps()
	p, err := NewPartition(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range apps {
		p.Remove(i)
	}
	if p.WeightSum() != 0 || p.CacheSetSize() != 0 {
		t.Fatalf("emptied partition: sum=%v size=%d", p.WeightSum(), p.CacheSetSize())
	}
	if !p.Dominant() {
		t.Fatal("empty IC must be vacuously dominant")
	}
	x := p.Shares()
	for i, xi := range x {
		if xi != 0 {
			t.Fatalf("share %d = %v for empty IC", i, xi)
		}
	}
}

func TestSharesSumToOne(t *testing.T) {
	pl := refPlatform()
	p, err := NewPartition(pl, npbApps(), nil)
	if err != nil {
		t.Fatal(err)
	}
	x := p.Shares()
	if s := solve.Sum(x); math.Abs(s-1) > 1e-12 {
		t.Fatalf("shares sum %v", s)
	}
}

func TestSharesMatchLemma4(t *testing.T) {
	pl := refPlatform()
	apps := npbApps()
	members := []bool{true, true, false, true, false, false}
	p, err := NewPartition(pl, apps, members)
	if err != nil {
		t.Fatal(err)
	}
	x := p.Shares()
	var denom float64
	for i, a := range apps {
		if members[i] {
			denom += a.DominanceWeight(pl)
		}
	}
	for i, a := range apps {
		want := 0.0
		if members[i] {
			want = a.DominanceWeight(pl) / denom
		}
		if math.Abs(x[i]-want) > 1e-12 {
			t.Fatalf("share %d = %v, want %v", i, x[i], want)
		}
	}
}

// Lemma 4 optimality: perturbing the closed-form shares in any
// direction (while keeping feasibility) cannot decrease Σ w_i f_i d_i / x_i^α.
func TestSharesAreStationary(t *testing.T) {
	pl := refPlatform()
	apps := npbApps()
	p, err := NewPartition(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := p.Shares()
	objective := func(x []float64) float64 {
		var k solve.Kahan
		for i, a := range apps {
			k.Add(a.Work * a.AccessFreq * a.D(pl) / math.Pow(x[i], pl.Alpha))
		}
		return k.Sum()
	}
	base := objective(x)
	r := solve.NewRNG(44)
	for trial := 0; trial < 200; trial++ {
		// Move eps mass from one app to another.
		i, j := r.Intn(len(x)), r.Intn(len(x))
		if i == j {
			continue
		}
		eps := 1e-4 * r.Float64() * x[i]
		y := append([]float64(nil), x...)
		y[i] -= eps
		y[j] += eps
		if objective(y) < base*(1-1e-12) {
			t.Fatalf("perturbation improved the Lemma 4 objective: %v < %v", objective(y), base)
		}
	}
}

func TestDominantAlgorithmProducesDominant(t *testing.T) {
	pl := refPlatform()
	for seed := uint64(0); seed < 20; seed++ {
		apps := randomApps(seed, 64)
		for _, choice := range []Choice{ChooseMinRatio, ChooseMaxRatio, ChooseRandom(solve.NewRNG(seed))} {
			p, err := Dominant(pl, apps, choice)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckDominantInvariant(p); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

func TestDominantRevProducesDominant(t *testing.T) {
	pl := refPlatform()
	for seed := uint64(0); seed < 20; seed++ {
		apps := randomApps(seed, 64)
		for _, choice := range []Choice{ChooseMinRatio, ChooseMaxRatio, ChooseRandom(solve.NewRNG(seed))} {
			p, err := DominantRev(pl, apps, choice)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckDominantInvariant(p); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

func TestDominantRevAddsUntilBlocked(t *testing.T) {
	// On the NPB set with a large cache everything is dominant, so
	// DominantRev should admit every application.
	pl := refPlatform()
	p, err := DominantRev(pl, npbApps(), ChooseMaxRatio)
	if err != nil {
		t.Fatal(err)
	}
	if p.CacheSetSize() != 6 {
		t.Fatalf("admitted %d of 6", p.CacheSetSize())
	}
}

func TestDominantKeepsAllWhenAlreadyDominant(t *testing.T) {
	pl := refPlatform()
	p, err := Dominant(pl, npbApps(), ChooseMinRatio)
	if err != nil {
		t.Fatal(err)
	}
	if p.CacheSetSize() != 6 {
		t.Fatalf("evicted from an already-dominant full set: %d left", p.CacheSetSize())
	}
}

func TestDominantEvictsUnderSmallCache(t *testing.T) {
	// Shrink the LLC until d_i blow up: some applications must go.
	pl := refPlatform()
	pl.CacheSize = 1e6 // 1 MB
	apps := randomApps(3, 32)
	for i := range apps {
		apps[i].RefMissRate = 0.5 // huge miss rates at 40 MB
	}
	p, err := Dominant(pl, apps, ChooseMinRatio)
	if err != nil {
		t.Fatal(err)
	}
	if p.CacheSetSize() == len(apps) {
		t.Fatal("expected evictions under a 1MB cache with 0.5 miss rates")
	}
	if err := CheckDominantInvariant(p); err != nil {
		t.Fatal(err)
	}
}

func TestImproveNonDominantConverges(t *testing.T) {
	pl := refPlatform()
	pl.CacheSize = 1e6
	apps := randomApps(5, 32)
	for i := range apps {
		apps[i].RefMissRate = 0.5
	}
	p, err := NewPartition(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for ImproveNonDominant(p) {
		steps++
		if steps > len(apps) {
			t.Fatal("Theorem 2 improvement did not converge within n steps")
		}
	}
	if !p.Dominant() {
		t.Fatal("improvement loop ended on a non-dominant partition")
	}
}

// Theorem 2, observable consequence: the makespan of the dominant
// partition reached by eviction is no worse than the non-dominant start.
func TestImprovementNeverHurtsMakespan(t *testing.T) {
	pl := refPlatform()
	pl.CacheSize = 1e6
	for seed := uint64(0); seed < 10; seed++ {
		apps := randomApps(seed, 24)
		for i := range apps {
			apps[i].RefMissRate = 0.6
		}
		p, err := NewPartition(pl, apps, nil)
		if err != nil {
			t.Fatal(err)
		}
		before := p.Makespan()
		for ImproveNonDominant(p) {
		}
		after := p.Makespan()
		if after > before*(1+1e-9) {
			t.Fatalf("seed %d: improvement raised makespan %v → %v", seed, before, after)
		}
	}
}

func TestWouldRemainDominantAgreesWithAdd(t *testing.T) {
	pl := refPlatform()
	pl.CacheSize = 5e7
	f := func(seed uint64) bool {
		apps := randomApps(seed, 16)
		p, err := NewPartition(pl, apps, make([]bool, len(apps)))
		if err != nil {
			return false
		}
		r := solve.NewRNG(seed)
		for step := 0; step < 8; step++ {
			i := r.Intn(len(apps))
			if p.InCache(i) {
				continue
			}
			pred := p.WouldRemainDominant(i)
			p.Add(i)
			dominant := p.Dominant()
			if dominant != pred {
				return false
			}
			if !dominant {
				p.Remove(i) // restore a dominant state before continuing
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMembersRoundTrip(t *testing.T) {
	pl := refPlatform()
	apps := npbApps()
	members := []bool{true, false, true, false, true, false}
	p, err := NewPartition(pl, apps, members)
	if err != nil {
		t.Fatal(err)
	}
	copied := p.Members()
	for i := range members {
		if copied[i] != members[i] {
			t.Fatalf("members mismatch at %d", i)
		}
	}
	// Mutating the copy must not affect the partition.
	copied[0] = false
	if !p.InCache(0) {
		t.Fatal("Members leaked internal state")
	}
}

func TestMakespanMatchesLemma3(t *testing.T) {
	pl := refPlatform()
	apps := npbApps()
	p, err := NewPartition(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := p.Shares()
	var sum float64
	for i, a := range apps {
		sum += a.ExeSeq(pl, x[i])
	}
	want := sum / pl.Processors
	if got := p.Makespan(); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("makespan %v, want %v", got, want)
	}
}

// Dominance with zero-miss applications: d_i = 0 gives infinite ratio, so
// the app never blocks dominance and receives a zero-weight share.
func TestZeroMissApplication(t *testing.T) {
	pl := refPlatform()
	apps := npbApps()
	apps[0].RefMissRate = 0
	p, err := NewPartition(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Ratio(0), 1) {
		t.Fatalf("zero-miss ratio %v, want +Inf", p.Ratio(0))
	}
	if !p.Dominant() {
		t.Fatal("zero-miss app should not break dominance")
	}
	if x := p.Shares(); x[0] != 0 {
		t.Fatalf("zero-miss app received cache share %v", x[0])
	}
}

// Property: for any random workload, both greedy builders end dominant
// and their shares are feasible.
func TestBuildersFeasibilityProperty(t *testing.T) {
	pl := refPlatform()
	pl.CacheSize = 1e8
	f := func(seed uint64, rev bool) bool {
		apps := randomApps(seed, 20)
		p, err := BuildDominant(pl, apps, rev, ChooseMinRatio)
		if err != nil {
			return false
		}
		if !p.Dominant() {
			return false
		}
		x := p.Shares()
		sum := solve.Sum(x)
		if sum > 1+1e-9 {
			return false
		}
		for i, xi := range x {
			if xi < 0 {
				return false
			}
			// Dominance guarantees allotted shares exceed the useless
			// threshold.
			if p.InCache(i) && xi <= p.Threshold(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
