// Package core implements the paper's primary contribution: the theory of
// dominant partitions for the CoSchedCache problem (Aupy et al., RR-8965,
// Section 4).
//
// For perfectly parallel applications the problem reduces (Lemma 3) to
// choosing the subset IC of applications that receive a cache share; once
// IC is fixed, Lemma 4 gives the optimal shares in closed form:
//
//	x_i = (w_i f_i d_i)^{1/(α+1)} / Σ_{j∈IC} (w_j f_j d_j)^{1/(α+1)}
//
// A partition is *dominant* (Definition 4) when every allotted share
// strictly exceeds the application's useless-threshold d_i^{1/α}; Theorem
// 2 shows non-dominant partitions are improvable in polynomial time and
// Theorem 3 that on dominant partitions the closed form is optimal. This
// package provides the partition type, the closed-form share computation
// and the two greedy builders Dominant (Algorithm 1) and DominantRev
// (Algorithm 2) with the three choice policies Random / MinRatio /
// MaxRatio.
package core

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/solve"
)

// Partition is a split of the application set into IC (receives cache)
// and its complement (no cache). It caches the per-application dominance
// weights and ratios so membership tests and share computation are O(1)
// and O(n) respectively.
//
// The zero value is an empty shell; Reset (re)initializes it in place,
// reusing its backing arrays, so pooled Partitions make the scheduling
// hot path allocation-free.
type Partition struct {
	pl      model.Platform
	apps    []model.Application
	inCache []bool    // inCache[i] == true iff i ∈ IC
	weight  []float64 // (w_i f_i d_i)^{1/(α+1)}
	ratio   []float64 // r_i = weight[i] / d_i^{1/α}
	thresh  []float64 // d_i^{1/α}
	sum     float64   // Σ_{j∈IC} weight[j], maintained incrementally
	size    int       // |IC|

	xbuf   []float64 // scratch for SeqTimeTotal's share evaluation
	idx    []int     // scratch for the greedy builders' candidate lists
	membuf []bool    // scratch for BestRatioPrefix's best-membership copy
}

// NewPartition builds a partition over apps with the given initial
// membership. If members is nil, all applications start in IC.
func NewPartition(pl model.Platform, apps []model.Application, members []bool) (*Partition, error) {
	p := &Partition{}
	if err := p.Reset(pl, apps, members); err != nil {
		return nil, err
	}
	return p, nil
}

// Reset re-initializes the partition in place over a new problem,
// reusing its backing arrays when they are large enough. The membership
// semantics match NewPartition: nil members puts every application in
// IC. members is copied, so callers may reuse their slice.
func (p *Partition) Reset(pl model.Platform, apps []model.Application, members []bool) error {
	if err := model.ValidateAll(pl, apps); err != nil {
		return err
	}
	if members != nil && len(members) != len(apps) {
		return fmt.Errorf("core: members length %d does not match %d applications", len(members), len(apps))
	}
	n := len(apps)
	p.pl = pl
	p.apps = apps
	p.inCache = growBool(p.inCache, n)
	p.weight = growF64(p.weight, n)
	p.ratio = growF64(p.ratio, n)
	p.thresh = growF64(p.thresh, n)
	p.sum, p.size = 0, 0
	var sum solve.Kahan
	for i, a := range apps {
		p.weight[i] = a.DominanceWeight(pl)
		p.thresh[i] = a.MinUsefulFraction(pl)
		if p.thresh[i] > 0 {
			p.ratio[i] = p.weight[i] / p.thresh[i]
		} else {
			// d_i = 0: the application never misses even without cache;
			// its share is never wasted, so it can always stay in IC.
			p.ratio[i] = math.Inf(1)
		}
		in := members == nil || members[i]
		p.inCache[i] = in
		if in {
			sum.Add(p.weight[i])
			p.size++
		}
	}
	p.sum = sum.Sum()
	return nil
}

// growF64 returns a slice of length n, reusing s's backing array when
// possible.
func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growBool is growF64 for booleans.
func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// Len returns the number of applications (both sides of the partition).
func (p *Partition) Len() int { return len(p.apps) }

// CacheSetSize returns |IC|.
func (p *Partition) CacheSetSize() int { return p.size }

// InCache reports whether application i is in IC.
func (p *Partition) InCache(i int) bool { return p.inCache[i] }

// WeightSum returns Σ_{j∈IC} (w_j f_j d_j)^{1/(α+1)}.
func (p *Partition) WeightSum() float64 { return p.sum }

// Weight returns (w_i f_i d_i)^{1/(α+1)} for application i.
func (p *Partition) Weight(i int) float64 { return p.weight[i] }

// Ratio returns the dominance ratio r_i of application i.
func (p *Partition) Ratio(i int) float64 { return p.ratio[i] }

// Threshold returns d_i^{1/α} for application i.
func (p *Partition) Threshold(i int) float64 { return p.thresh[i] }

// Add moves application i into IC. It is a no-op if already present.
func (p *Partition) Add(i int) {
	if !p.inCache[i] {
		p.inCache[i] = true
		p.sum += p.weight[i]
		p.size++
	}
}

// Remove moves application i out of IC. It is a no-op if already absent.
func (p *Partition) Remove(i int) {
	if p.inCache[i] {
		p.inCache[i] = false
		p.sum -= p.weight[i]
		p.size--
		if p.size == 0 {
			p.sum = 0 // clear accumulated rounding error
		}
	}
}

// Members returns a fresh copy of the membership vector.
func (p *Partition) Members() []bool {
	return p.MembersInto(nil)
}

// MembersInto copies the membership vector into dst, growing it when
// needed, and returns it. A nil dst allocates.
func (p *Partition) MembersInto(dst []bool) []bool {
	dst = growBool(dst, len(p.inCache))
	copy(dst, p.inCache)
	return dst
}

// Violators returns the indices i ∈ IC whose dominance condition fails,
// i.e. r_i ≤ Σ_{j∈IC} weight_j (Definition 4 requires strict >).
func (p *Partition) Violators() []int {
	var v []int
	for i := range p.apps {
		if p.inCache[i] && p.ratio[i] <= p.sum {
			v = append(v, i)
		}
	}
	return v
}

// Dominant reports whether the partition satisfies Definition 4: for all
// i ∈ IC, r_i > Σ_{j∈IC} weight_j. The empty IC is vacuously dominant.
func (p *Partition) Dominant() bool {
	for i := range p.apps {
		if p.inCache[i] && p.ratio[i] <= p.sum {
			return false
		}
	}
	return true
}

// WouldRemainDominant reports whether adding application i to IC keeps
// every member's dominance condition satisfied (the loop guard of
// Algorithm 2).
func (p *Partition) WouldRemainDominant(add int) bool {
	sum := p.sum
	if !p.inCache[add] {
		sum += p.weight[add]
	}
	if p.ratio[add] <= sum {
		return false
	}
	for i := range p.apps {
		if (p.inCache[i] && i != add) && p.ratio[i] <= sum {
			return false
		}
	}
	return true
}

// Shares returns the optimal cache shares for the current partition
// according to Lemma 4 / Theorem 3: x_i = weight_i / Σ weights for
// i ∈ IC, x_i = 0 otherwise. When IC is empty it returns all zeros.
func (p *Partition) Shares() []float64 {
	return p.SharesInto(nil)
}

// SharesInto writes the optimal cache shares into dst, growing it when
// needed, and returns it. A nil dst allocates; reusing a scratch slice
// keeps repeated evaluations allocation-free.
func (p *Partition) SharesInto(dst []float64) []float64 {
	x := growF64(dst, len(p.apps))
	if p.size == 0 || p.sum == 0 {
		for i := range x {
			x[i] = 0
		}
		return x
	}
	for i := range p.apps {
		if p.inCache[i] {
			x[i] = p.weight[i] / p.sum
		} else {
			x[i] = 0
		}
	}
	return x
}

// SeqTimeTotal returns Σ_i Exe_i(1, x_i) for the partition's optimal
// shares — by Lemma 3, dividing by p gives the optimal makespan for
// perfectly parallel applications under this partition.
func (p *Partition) SeqTimeTotal() float64 {
	p.xbuf = p.SharesInto(p.xbuf)
	var k solve.Kahan
	for i, a := range p.apps {
		k.Add(a.ExeSeq(p.pl, p.xbuf[i]))
	}
	return k.Sum()
}

// Makespan returns the analytic makespan SeqTimeTotal()/p for perfectly
// parallel applications (Lemma 3). For general Amdahl applications use
// package sched, which equalizes completion times by binary search.
func (p *Partition) Makespan() float64 {
	return p.SeqTimeTotal() / p.pl.Processors
}
