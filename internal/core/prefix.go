package core

import (
	"sort"

	"repro/internal/model"
)

// The dominance condition compares each member's ratio r_i against the
// member weight sum, so low-ratio applications are always the first to
// violate: if a partition containing application i is dominant, the
// partition obtained by swapping i for any application with a larger
// ratio has a chance to be dominant too, while the converse does not
// hold. This suggests that among memberships of a given size, the one
// keeping the LARGEST-ratio applications is the natural candidate — and
// there are only n+1 such prefix sets. BestRatioPrefix scans them all.

// BestRatioPrefix returns the best partition among the n+1 prefixes of
// the ratio-sorted order (keep the top-k applications by dominance ratio,
// k = 0…n), evaluated by the closed-form perfectly-parallel makespan
// (Lemma 3 / Lemma 4). Only dominant prefixes are considered, so the
// result always satisfies Definition 4; the empty prefix is vacuously
// dominant, guaranteeing a result. The scan is O(n²) overall (O(n) per
// prefix evaluation after sorting).
func BestRatioPrefix(pl model.Platform, apps []model.Application) (*Partition, error) {
	probe, err := NewPartition(pl, apps, nil)
	if err != nil {
		return nil, err
	}
	order := make([]int, len(apps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return probe.Ratio(order[a]) > probe.Ratio(order[b])
	})

	// Start from the empty membership and admit in decreasing-ratio
	// order, tracking the best dominant prefix seen.
	cur, err := NewPartition(pl, apps, make([]bool, len(apps)))
	if err != nil {
		return nil, err
	}
	bestMembers := cur.Members()
	bestK := cur.Makespan()
	for _, idx := range order {
		cur.Add(idx)
		if !cur.Dominant() {
			// Larger prefixes only increase the weight sum, so once a
			// member violates, every superset prefix violates too: the
			// member ratios are fixed and the sum grows monotonically.
			break
		}
		if k := cur.Makespan(); k < bestK {
			bestK = k
			bestMembers = cur.Members()
		}
	}
	return NewPartition(pl, apps, bestMembers)
}
