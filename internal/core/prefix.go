package core

import (
	"sort"

	"repro/internal/model"
)

// The dominance condition compares each member's ratio r_i against the
// member weight sum, so low-ratio applications are always the first to
// violate: if a partition containing application i is dominant, the
// partition obtained by swapping i for any application with a larger
// ratio has a chance to be dominant too, while the converse does not
// hold. This suggests that among memberships of a given size, the one
// keeping the LARGEST-ratio applications is the natural candidate — and
// there are only n+1 such prefix sets. BestRatioPrefix scans them all.

// BestRatioPrefix returns the best partition among the n+1 prefixes of
// the ratio-sorted order (keep the top-k applications by dominance ratio,
// k = 0…n), evaluated by the closed-form perfectly-parallel makespan
// (Lemma 3 / Lemma 4). Only dominant prefixes are considered, so the
// result always satisfies Definition 4; the empty prefix is vacuously
// dominant, guaranteeing a result. The scan is O(n²) overall (O(n) per
// prefix evaluation after sorting).
func BestRatioPrefix(pl model.Platform, apps []model.Application) (*Partition, error) {
	p := &Partition{}
	if err := BestRatioPrefixInto(p, pl, apps); err != nil {
		return nil, err
	}
	return p, nil
}

// BestRatioPrefixInto runs the prefix scan into a caller-provided
// partition, reusing its backing arrays and scratch space so repeated
// scans (e.g. the local-search warm start) do not allocate. On return p
// holds the best dominant prefix, rebuilt with a fresh Kahan weight sum
// exactly as NewPartition would produce it.
func BestRatioPrefixInto(p *Partition, pl model.Platform, apps []model.Application) error {
	// Ratios do not depend on membership, so a full-membership reset
	// doubles as the ratio probe.
	if err := p.Reset(pl, apps, nil); err != nil {
		return err
	}
	order := p.idx
	if cap(order) < len(apps) {
		order = make([]int, len(apps))
	}
	order = order[:len(apps)]
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return p.Ratio(order[a]) > p.Ratio(order[b])
	})
	p.idx = order

	// Start from the empty membership and admit in decreasing-ratio
	// order, tracking the best dominant prefix seen.
	for i := range p.inCache {
		p.inCache[i] = false
	}
	p.sum, p.size = 0, 0
	bestMembers := p.MembersInto(p.membuf)
	bestK := p.Makespan()
	for _, idx := range order {
		p.Add(idx)
		if !p.Dominant() {
			// Larger prefixes only increase the weight sum, so once a
			// member violates, every superset prefix violates too: the
			// member ratios are fixed and the sum grows monotonically.
			break
		}
		if k := p.Makespan(); k < bestK {
			bestK = k
			bestMembers = p.MembersInto(bestMembers)
		}
	}
	p.membuf = bestMembers
	// Rebuild at the best membership from scratch so the weight sum is
	// the Kahan sum NewPartition computes, not the incremental one.
	return p.Reset(pl, apps, bestMembers)
}
