package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/solve"
)

// Choice selects the next application to move across the partition
// boundary. Both greedy builders call it with the set of candidate
// indices (never empty); it must return one of them.
type Choice func(p *Partition, candidates []int) int

// ChooseRandom picks a candidate uniformly at random using rng.
// It matches the paper's Random policy.
func ChooseRandom(rng *solve.RNG) Choice {
	return func(_ *Partition, candidates []int) int {
		return candidates[rng.Intn(len(candidates))]
	}
}

// ChooseMinRatio picks the candidate with the smallest dominance ratio
// r_i, the paper's MinRatio policy. Ties break on the lowest index so the
// deterministic policies are fully reproducible.
func ChooseMinRatio(p *Partition, candidates []int) int {
	best := candidates[0]
	for _, i := range candidates[1:] {
		if p.Ratio(i) < p.Ratio(best) {
			best = i
		}
	}
	return best
}

// ChooseMaxRatio picks the candidate with the largest dominance ratio
// r_i, the paper's MaxRatio policy. Ties break on the lowest index.
func ChooseMaxRatio(p *Partition, candidates []int) int {
	best := candidates[0]
	for _, i := range candidates[1:] {
		if p.Ratio(i) > p.Ratio(best) {
			best = i
		}
	}
	return best
}

// Dominant is Algorithm 1: start with IC = I and, while any member
// violates the dominance condition, evict an application chosen by
// choice from the whole of IC (the paper's choice(IC) ranges over every
// member, not only violators — this is exactly why the MaxRatio policy
// performs poorly here: it evicts the best-suited applications first).
// The returned partition is always dominant.
func Dominant(pl model.Platform, apps []model.Application, choice Choice) (*Partition, error) {
	p := &Partition{}
	if err := DominantInto(p, pl, apps, choice); err != nil {
		return nil, err
	}
	return p, nil
}

// DominantInto runs Algorithm 1 into a caller-provided (possibly
// pooled) partition, reusing its backing arrays. The candidate list
// lives in the partition's scratch space, so steady-state calls do not
// allocate.
func DominantInto(p *Partition, pl model.Platform, apps []model.Application, choice Choice) error {
	if err := p.Reset(pl, apps, nil); err != nil {
		return err
	}
	members := p.idx[:0]
	for {
		if p.Dominant() {
			p.idx = members
			return nil
		}
		members = members[:0]
		for i := 0; i < p.Len(); i++ {
			if p.InCache(i) {
				members = append(members, i)
			}
		}
		k := choice(p, members)
		p.Remove(k)
		if p.CacheSetSize() == 0 {
			p.idx = members
			return nil
		}
	}
}

// DominantRev is Algorithm 2: start with IC = ∅ and greedily admit
// applications chosen by choice for as long as the partition stays
// dominant. The returned partition is always dominant.
func DominantRev(pl model.Platform, apps []model.Application, choice Choice) (*Partition, error) {
	p := &Partition{}
	if err := DominantRevInto(p, pl, apps, choice); err != nil {
		return nil, err
	}
	return p, nil
}

// DominantRevInto runs Algorithm 2 into a caller-provided partition,
// reusing its backing arrays and scratch space like DominantInto.
func DominantRevInto(p *Partition, pl model.Platform, apps []model.Application, choice Choice) error {
	p.membuf = growBool(p.membuf, len(apps))
	for i := range p.membuf {
		p.membuf[i] = false
	}
	if err := p.Reset(pl, apps, p.membuf); err != nil {
		return err
	}
	out := p.idx[:0]
	for {
		out = out[:0]
		for i := 0; i < p.Len(); i++ {
			if !p.InCache(i) {
				out = append(out, i)
			}
		}
		if len(out) == 0 {
			p.idx = out
			return nil
		}
		k := choice(p, out)
		if !p.WouldRemainDominant(k) {
			p.idx = out
			return nil
		}
		p.Add(k)
	}
}

// ImproveNonDominant applies one step of Theorem 2's constructive
// improvement: given a non-dominant partition, pick a violating member
// i0, move its (extended-solution) share to another member i1 and evict
// i0 from IC. It reports whether a step was applied (false when the
// partition was already dominant). Repeatedly calling it converges to a
// dominant partition in at most |IC| steps because each step strictly
// shrinks IC.
func ImproveNonDominant(p *Partition) bool {
	v := p.Violators()
	if len(v) == 0 {
		return false
	}
	i0 := v[0]
	// Theorem 2 shows an i1 ∈ IC \ {i0} always exists for a valid
	// non-dominant partition; the proof only needs i0's share handed to
	// any other member, which the closed-form Shares() re-derivation
	// after eviction subsumes.
	p.Remove(i0)
	return true
}

// BuildDominant converts a named policy into a partition. The six
// variants of the paper are the cross product {Dominant, DominantRev} ×
// {Random, MinRatio, MaxRatio}.
func BuildDominant(pl model.Platform, apps []model.Application, reverse bool, choice Choice) (*Partition, error) {
	p := &Partition{}
	if err := BuildDominantInto(p, pl, apps, reverse, choice); err != nil {
		return nil, err
	}
	return p, nil
}

// BuildDominantInto is BuildDominant into a caller-provided partition,
// the allocation-free entry point used by the scheduling hot path.
func BuildDominantInto(p *Partition, pl model.Platform, apps []model.Application, reverse bool, choice Choice) error {
	if reverse {
		return DominantRevInto(p, pl, apps, choice)
	}
	return DominantInto(p, pl, apps, choice)
}

// CheckDominantInvariant returns an error describing the first violation
// of Definition 4, for use in tests and in the simulator's cross-checks.
func CheckDominantInvariant(p *Partition) error {
	for _, i := range p.Violators() {
		return fmt.Errorf("core: application %d violates dominance: ratio %g ≤ weight sum %g",
			i, p.Ratio(i), p.WeightSum())
	}
	return nil
}
