package model

import "fmt"

// ValidationError describes one invalid field of a user-supplied
// structure — a platform, an application, a schedule, a set of cache
// shares. It is the typed form of every validation failure in the
// library, so callers can program against errors.As instead of matching
// message strings:
//
//	var verr *model.ValidationError
//	if errors.As(err, &verr) {
//	    log.Printf("bad input %s = %v: %s", verr.Field, verr.Value, verr.Reason)
//	}
//
// Field is a dotted path naming the offending field ("platform.alpha",
// "apps[3].work", "schedule"), Value the rejected value (nil when the
// whole structure is missing), and Reason the violated constraint.
type ValidationError struct {
	Field  string
	Value  any
	Reason string
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	if e.Value == nil {
		return fmt.Sprintf("invalid %s: %s", e.Field, e.Reason)
	}
	return fmt.Sprintf("invalid %s: %s, got %v", e.Field, e.Reason, e.Value)
}

// invalid is the package-internal constructor keeping call sites short.
func invalid(field string, value any, reason string) *ValidationError {
	return &ValidationError{Field: field, Value: value, Reason: reason}
}
