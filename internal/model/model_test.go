package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/solve"
)

func refPlatform() Platform { return TaihuLight() }

func refApp() Application {
	return Application{
		Name: "CG", Work: 5.70e10, AccessFreq: 5.35e-01,
		RefMissRate: 6.59e-04, RefCacheSize: 40e6,
	}
}

func TestTaihuLightParameters(t *testing.T) {
	pl := TaihuLight()
	if pl.Processors != 256 || pl.CacheSize != 32000e6 || pl.LatencyS != 0.17 || pl.LatencyL != 1 || pl.Alpha != 0.5 {
		t.Fatalf("reference platform drifted: %+v", pl)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Latency ratio of the paper: ll/ls ≈ 5.88.
	if r := pl.LatencyL / pl.LatencyS; math.Abs(r-5.88) > 0.01 {
		t.Fatalf("latency ratio %v, want ≈5.88", r)
	}
}

func TestPlatformValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Platform)
	}{
		{"zero processors", func(p *Platform) { p.Processors = 0 }},
		{"negative processors", func(p *Platform) { p.Processors = -1 }},
		{"zero cache", func(p *Platform) { p.CacheSize = 0 }},
		{"negative ls", func(p *Platform) { p.LatencyS = -0.1 }},
		{"negative ll", func(p *Platform) { p.LatencyL = -2 }},
		{"zero alpha", func(p *Platform) { p.Alpha = 0 }},
		{"NaN alpha", func(p *Platform) { p.Alpha = math.NaN() }},
	}
	for _, c := range cases {
		pl := refPlatform()
		c.mut(&pl)
		if pl.Validate() == nil {
			t.Errorf("%s: Validate accepted invalid platform", c.name)
		}
	}
}

func TestApplicationValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Application)
	}{
		{"zero work", func(a *Application) { a.Work = 0 }},
		{"negative seq", func(a *Application) { a.SeqFraction = -0.1 }},
		{"seq above one", func(a *Application) { a.SeqFraction = 1.5 }},
		{"negative freq", func(a *Application) { a.AccessFreq = -1 }},
		{"miss above one", func(a *Application) { a.RefMissRate = 1.2 }},
		{"negative miss", func(a *Application) { a.RefMissRate = -0.2 }},
		{"zero ref cache", func(a *Application) { a.RefCacheSize = 0 }},
	}
	for _, c := range cases {
		a := refApp()
		c.mut(&a)
		if a.Validate() == nil {
			t.Errorf("%s: Validate accepted invalid application", c.name)
		}
	}
	if err := refApp().Validate(); err != nil {
		t.Fatalf("valid app rejected: %v", err)
	}
}

func TestMissRatePowerLaw(t *testing.T) {
	a := refApp()
	// At the reference size, miss rate equals the reference rate.
	if m := a.MissRate(a.RefCacheSize, 0.5); math.Abs(m-a.RefMissRate) > 1e-15 {
		t.Fatalf("miss at C0 = %v, want %v", m, a.RefMissRate)
	}
	// Quadrupling the cache with α = 0.5 halves the miss rate.
	if m := a.MissRate(4*a.RefCacheSize, 0.5); math.Abs(m-a.RefMissRate/2) > 1e-15 {
		t.Fatalf("miss at 4·C0 = %v, want %v", m, a.RefMissRate/2)
	}
	// Shrinking the cache raises the rate, clamped at 1.
	if m := a.MissRate(1, 0.5); m != 1 {
		t.Fatalf("tiny cache should clamp to 1, got %v", m)
	}
	if m := a.MissRate(0, 0.5); m != 1 {
		t.Fatalf("zero cache should miss always, got %v", m)
	}
	if m := a.MissRate(-5, 0.5); m != 1 {
		t.Fatalf("negative cache should miss always, got %v", m)
	}
}

func TestDMatchesPaperFormula(t *testing.T) {
	pl := refPlatform()
	a := refApp()
	want := a.RefMissRate * math.Pow(40e6/pl.CacheSize, pl.Alpha)
	if d := a.D(pl); math.Abs(d-want) > 1e-18 {
		t.Fatalf("D = %v, want %v", d, want)
	}
}

func TestFlopsAmdahl(t *testing.T) {
	a := refApp()
	a.SeqFraction = 0.25
	// On one processor the whole work runs.
	if f := a.Flops(1); math.Abs(f-a.Work) > 1e-6*a.Work {
		t.Fatalf("Flops(1) = %v, want %v", f, a.Work)
	}
	// Infinite processors leave the sequential part.
	if f := a.Flops(1e18); math.Abs(f-0.25*a.Work) > 1e-3*a.Work {
		t.Fatalf("Flops(inf) = %v, want %v", f, 0.25*a.Work)
	}
	// Perfectly parallel halves with doubled processors.
	a.SeqFraction = 0
	if f := a.Flops(2); math.Abs(f-a.Work/2) > 1e-9*a.Work {
		t.Fatalf("Flops(2) = %v, want %v", f, a.Work/2)
	}
}

func TestExePerfectlyParallelScaling(t *testing.T) {
	pl := refPlatform()
	a := refApp()
	e1 := a.Exe(pl, 1, 0.1)
	e4 := a.Exe(pl, 4, 0.1)
	if math.Abs(e1/4-e4) > 1e-9*e1 {
		t.Fatalf("perfectly parallel app should scale linearly: %v vs %v", e1/4, e4)
	}
}

func TestExeZeroProcessors(t *testing.T) {
	pl := refPlatform()
	a := refApp()
	if !math.IsInf(a.Exe(pl, 0, 0.5), 1) {
		t.Fatal("zero processors should give infinite time")
	}
}

func TestExeNoCacheEqualsFullMissCost(t *testing.T) {
	pl := refPlatform()
	a := refApp()
	want := a.Work * (1 + a.AccessFreq*(pl.LatencyS+pl.LatencyL))
	if e := a.Exe(pl, 1, 0); math.Abs(e-want) > 1e-9*want {
		t.Fatalf("Exe(1, 0) = %v, want %v", e, want)
	}
}

func TestExeFootprintCap(t *testing.T) {
	pl := refPlatform()
	a := refApp()
	a.Footprint = pl.CacheSize / 10 // a_i = Cs/10
	capped := a.Exe(pl, 1, 0.5)     // x beyond footprint
	atCap := a.Exe(pl, 1, 0.1)      // x exactly at footprint
	if math.Abs(capped-atCap) > 1e-9*atCap {
		t.Fatalf("cache beyond footprint should not help: %v vs %v", capped, atCap)
	}
	below := a.Exe(pl, 1, 0.05)
	if below <= atCap {
		t.Fatalf("less cache should be slower: %v <= %v", below, atCap)
	}
}

func TestExeUselessFractionBehavesLikeZero(t *testing.T) {
	pl := refPlatform()
	a := refApp()
	a.RefMissRate = 0.9
	a.RefCacheSize = pl.CacheSize // d_i = 0.9, threshold 0.81
	th := a.MinUsefulFraction(pl)
	if math.Abs(th-0.81) > 1e-12 {
		t.Fatalf("threshold %v, want 0.81", th)
	}
	if e0, eHalf := a.Exe(pl, 1, 0), a.Exe(pl, 1, th/2); math.Abs(e0-eHalf) > 1e-9*e0 {
		t.Fatalf("fraction below threshold should behave like none: %v vs %v", e0, eHalf)
	}
}

func TestMaxUsefulFraction(t *testing.T) {
	pl := refPlatform()
	a := refApp()
	if f := a.MaxUsefulFraction(pl); f != 1 {
		t.Fatalf("unbounded footprint should give 1, got %v", f)
	}
	a.Footprint = pl.CacheSize / 4
	if f := a.MaxUsefulFraction(pl); math.Abs(f-0.25) > 1e-12 {
		t.Fatalf("footprint cap %v, want 0.25", f)
	}
	a.Footprint = 10 * pl.CacheSize
	if f := a.MaxUsefulFraction(pl); f != 1 {
		t.Fatalf("huge footprint should clamp to 1, got %v", f)
	}
}

func TestDominanceWeightAndRatio(t *testing.T) {
	pl := refPlatform()
	a := refApp()
	d := a.D(pl)
	wantW := math.Pow(a.Work*a.AccessFreq*d, 1/(pl.Alpha+1))
	if w := a.DominanceWeight(pl); math.Abs(w-wantW) > 1e-9*wantW {
		t.Fatalf("weight %v, want %v", w, wantW)
	}
	wantR := wantW / math.Pow(d, 1/pl.Alpha)
	if r := a.DominanceRatio(pl); math.Abs(r-wantR) > 1e-9*wantR {
		t.Fatalf("ratio %v, want %v", r, wantR)
	}
}

func TestValidateAll(t *testing.T) {
	pl := refPlatform()
	if err := ValidateAll(pl, nil); err != ErrEmptySet {
		t.Fatalf("empty set: got %v", err)
	}
	bad := refApp()
	bad.Work = -1
	if err := ValidateAll(pl, []Application{refApp(), bad}); err == nil {
		t.Fatal("invalid app accepted")
	}
	if err := ValidateAll(pl, []Application{refApp()}); err != nil {
		t.Fatal(err)
	}
}

// TestValidateRejectsNonFinite: +Inf passes a bare "> 0" test and then
// degenerates to NaN inside products deep in the heuristics, so
// validation must stop every non-finite quantity at the boundary.
func TestValidateRejectsNonFinite(t *testing.T) {
	inf, nan := math.Inf(1), math.NaN()
	plat := func(mut func(*Platform)) Platform {
		pl := refPlatform()
		mut(&pl)
		return pl
	}
	for name, pl := range map[string]Platform{
		"inf processors": plat(func(p *Platform) { p.Processors = inf }),
		"inf cache":      plat(func(p *Platform) { p.CacheSize = inf }),
		"inf ls":         plat(func(p *Platform) { p.LatencyS = inf }),
		"inf ll":         plat(func(p *Platform) { p.LatencyL = inf }),
		"inf alpha":      plat(func(p *Platform) { p.Alpha = inf }),
		"nan processors": plat(func(p *Platform) { p.Processors = nan }),
	} {
		if err := pl.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	app := func(mut func(*Application)) Application {
		a := refApp()
		mut(&a)
		return a
	}
	for name, a := range map[string]Application{
		"inf work":      app(func(a *Application) { a.Work = inf }),
		"inf freq":      app(func(a *Application) { a.AccessFreq = inf }),
		"inf refcache":  app(func(a *Application) { a.RefCacheSize = inf }),
		"inf footprint": app(func(a *Application) { a.Footprint = inf }),
		"nan footprint": app(func(a *Application) { a.Footprint = nan }),
	} {
		if err := a.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// The unbounded-footprint convention stays valid.
	ok := refApp()
	ok.Footprint = 0
	if err := ok.Validate(); err != nil {
		t.Errorf("zero footprint rejected: %v", err)
	}
	ok.Footprint = -1
	if err := ok.Validate(); err != nil {
		t.Errorf("negative footprint rejected: %v", err)
	}
}

// Property: execution time is non-increasing in both processors and cache
// fraction — the monotonicity the whole optimization relies on.
func TestExeMonotonicityProperty(t *testing.T) {
	pl := refPlatform()
	f := func(seed uint64) bool {
		r := solve.NewRNG(seed)
		a := Application{
			Name: "q", Work: r.LogUniform(1e8, 1e12),
			SeqFraction: r.Float64() * 0.3, AccessFreq: r.Float64(),
			RefMissRate: r.Float64(), RefCacheSize: 40e6,
		}
		p1 := 1 + r.Float64()*100
		p2 := p1 + r.Float64()*100
		x1 := r.Float64()
		x2 := x1 + (1-x1)*r.Float64()
		e11 := a.Exe(pl, p1, x1)
		if a.Exe(pl, p2, x1) > e11*(1+1e-12) {
			return false
		}
		if a.Exe(pl, p1, x2) > e11*(1+1e-12) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: MissRate is always in [0, 1].
func TestMissRateRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := solve.NewRNG(seed)
		a := refApp()
		a.RefMissRate = r.Float64()
		m := a.MissRate(r.LogUniform(1, 1e12), 0.3+r.Float64()*0.4)
		return m >= 0 && m <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPerfectlyParallel(t *testing.T) {
	a := refApp()
	if !a.PerfectlyParallel() {
		t.Fatal("zero sequential fraction should be perfectly parallel")
	}
	a.SeqFraction = 0.01
	if a.PerfectlyParallel() {
		t.Fatal("nonzero sequential fraction is not perfectly parallel")
	}
}
