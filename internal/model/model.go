// Package model implements the platform and application model of Aupy et
// al., "Co-scheduling algorithms for cache-partitioned systems"
// (RR-8965): Amdahl speedup profiles, the Power Law of Cache Misses
// (Eq. 1) and the execution-time model Exe_i(p_i, x_i) (Eq. 2), together
// with the derived per-application quantities (d_i, the dominance weight
// (w_i f_i d_i)^{1/(α+1)} and the dominance ratio of Definition 4) that
// the partitioning theory of Section 4 is built on.
package model

import (
	"errors"
	"fmt"
	"math"
)

// Platform describes the multi-core chip of Section 3: p homogeneous
// processors sharing a small fast storage ("cache", size Cs, latency Ls)
// backed by an infinite slow storage ("memory", latency Ll). Alpha is the
// sensitivity exponent of the Power Law of Cache Misses; the literature
// reports values in [0.3, 0.7] with 0.5 typical.
type Platform struct {
	Processors float64 // p: total processor count (rational: cores are shareable via multi-threading)
	CacheSize  float64 // Cs: shared LLC capacity in bytes
	LatencyS   float64 // ls: cost of a cache access (hit)
	LatencyL   float64 // ll: additional cost of a cache miss
	Alpha      float64 // α: power-law sensitivity exponent
}

// Validate reports the first structural problem with the platform
// description, or nil if it is usable.
func (pl Platform) Validate() error {
	switch {
	case !isFinitePos(pl.Processors):
		return invalid("platform.processors", pl.Processors, "needs finite > 0 processors")
	case !isFinitePos(pl.CacheSize):
		return invalid("platform.cacheSize", pl.CacheSize, "needs finite > 0 cache size")
	case pl.LatencyS < 0 || math.IsNaN(pl.LatencyS) || math.IsInf(pl.LatencyS, 0):
		return invalid("platform.ls", pl.LatencyS, "cache latency is not finite and >= 0")
	case pl.LatencyL < 0 || math.IsNaN(pl.LatencyL) || math.IsInf(pl.LatencyL, 0):
		return invalid("platform.ll", pl.LatencyL, "memory latency is not finite and >= 0")
	case !isFinitePos(pl.Alpha):
		return invalid("platform.alpha", pl.Alpha, "power-law exponent must be finite > 0")
	}
	return nil
}

// isFinitePos reports whether v is a finite positive number — the guard
// that keeps +Inf (which passes a bare "> 0" test) out of quantities
// that flow into products and quotients, where it silently degenerates
// to NaN deep inside the heuristics.
func isFinitePos(v float64) bool {
	return v > 0 && !math.IsInf(v, 1)
}

// Reference platform used throughout the paper's evaluation (Section
// 6.1): one Sunway TaihuLight node, 256 processors, 32 GB shared memory
// treated as the LLC, ll = 1, ls = 0.17 (LLC ≈ 5.88× faster than DRAM),
// α = 0.5.
func TaihuLight() Platform {
	return Platform{
		Processors: 256,
		CacheSize:  32000e6,
		LatencyS:   0.17,
		LatencyL:   1,
		Alpha:      0.5,
	}
}

// Application is one co-scheduled job (Section 3). Its speedup obeys
// Amdahl's law with sequential fraction SeqFraction; every computing
// operation issues AccessFreq data accesses; the miss rate measured with
// a cache of RefCacheSize bytes is RefMissRate. Footprint is the memory
// footprint a_i in bytes; a non-positive Footprint means "larger than any
// cache of interest" (a_i = +∞), which is the regime the paper's
// theoretical sections assume.
type Application struct {
	Name         string  // identifier for reports
	Work         float64 // w_i: number of computing operations
	SeqFraction  float64 // s_i: sequential fraction of the work (0 = perfectly parallel)
	AccessFreq   float64 // f_i: data accesses per computing operation
	Footprint    float64 // a_i: memory footprint in bytes; <= 0 means unbounded
	RefMissRate  float64 // m_i(C0): miss rate at the reference cache size
	RefCacheSize float64 // C0: cache size at which RefMissRate was measured, bytes
}

// Validate reports the first structural problem with the application, or
// nil if it is usable.
func (a Application) Validate() error {
	field := func(f string) string {
		if a.Name == "" {
			return "application." + f
		}
		return fmt.Sprintf("application %q.%s", a.Name, f)
	}
	switch {
	case !isFinitePos(a.Work):
		return invalid(field("work"), a.Work, "needs finite positive work")
	case a.SeqFraction < 0 || a.SeqFraction > 1 || math.IsNaN(a.SeqFraction):
		return invalid(field("seq"), a.SeqFraction, "sequential fraction outside [0,1]")
	case a.AccessFreq < 0 || math.IsNaN(a.AccessFreq) || math.IsInf(a.AccessFreq, 0):
		return invalid(field("freq"), a.AccessFreq, "access frequency is not finite and >= 0")
	case a.RefMissRate < 0 || a.RefMissRate > 1 || math.IsNaN(a.RefMissRate):
		return invalid(field("missRate"), a.RefMissRate, "reference miss rate outside [0,1]")
	case !isFinitePos(a.RefCacheSize):
		return invalid(field("refCache"), a.RefCacheSize, "needs finite positive reference cache size")
	case math.IsNaN(a.Footprint) || math.IsInf(a.Footprint, 1):
		// A non-positive footprint means "unbounded" by convention; NaN
		// and +Inf must use that convention explicitly rather than
		// leaking into the footprint-cap arithmetic.
		return invalid(field("footprint"), a.Footprint, "not finite (use <= 0 for unbounded)")
	}
	return nil
}

// PerfectlyParallel reports whether the application has no sequential
// fraction (s_i = 0), the regime of the paper's Section 4 theory.
func (a Application) PerfectlyParallel() bool { return a.SeqFraction == 0 }

// MissRate evaluates the Power Law of Cache Misses (Eq. 1) for a cache of
// cacheSize bytes: min(1, m0 · (C0/C)^α). A zero or negative cacheSize
// yields a miss rate of 1 (every access misses), matching the model's
// reading that an absent cache provides no reuse.
func (a Application) MissRate(cacheSize, alpha float64) float64 {
	if cacheSize <= 0 {
		return 1
	}
	m := a.RefMissRate * math.Pow(a.RefCacheSize/cacheSize, alpha)
	return math.Min(1, m)
}

// D returns d_i = m0 · (C0/Cs)^α, the miss rate the application would
// incur if granted the whole cache, before the min-with-1 clamp
// (Section 3, "for notational convenience"). The fraction-of-cache
// formulation of Eq. 2 then reads miss(x) = min(1, d_i / x^α).
func (a Application) D(pl Platform) float64 {
	return a.RefMissRate * math.Pow(a.RefCacheSize/pl.CacheSize, alpha(pl))
}

func alpha(pl Platform) float64 { return pl.Alpha }

// Flops returns Fl_i(p) = s_i·w_i + (1-s_i)·w_i/p, the per-processor
// operation count under Amdahl's law when the application runs on p > 0
// (rational) processors.
func (a Application) Flops(p float64) float64 {
	return a.SeqFraction*a.Work + (1-a.SeqFraction)*a.Work/p
}

// CostPerOp returns the expected cost of one computing operation given a
// fraction x of the platform cache: 1 + f_i (ls + ll · miss), where miss
// follows Eq. 2 including the footprint cap (a fraction above
// a_i/Cs brings no further benefit).
func (a Application) CostPerOp(pl Platform, x float64) float64 {
	return 1 + a.AccessFreq*(pl.LatencyS+pl.LatencyL*a.missAtFraction(pl, x))
}

// missAtFraction evaluates min(1, d_i/x^α) with the footprint cap of
// Eq. 2's second case.
func (a Application) missAtFraction(pl Platform, x float64) float64 {
	if x < 0 {
		x = 0
	}
	if a.Footprint > 0 {
		if cap := a.Footprint / pl.CacheSize; x > cap {
			x = cap
		}
	}
	if x == 0 {
		return 1
	}
	d := a.D(pl)
	return math.Min(1, d/math.Pow(x, pl.Alpha))
}

// Exe returns Exe_i(p, x) of Eq. 2: the completion time of the
// application on p rational processors with cache fraction x.
// It returns +Inf for p <= 0 on an application with parallel work, since
// no progress is possible without processors.
func (a Application) Exe(pl Platform, p, x float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	return a.Flops(p) * a.CostPerOp(pl, x)
}

// ExeSeq returns Exe_i(1, x), the sequential execution time with cache
// fraction x (the quantity written Exe^seq in the paper).
func (a Application) ExeSeq(pl Platform, x float64) float64 {
	return a.Exe(pl, 1, x)
}

// MinUsefulFraction returns d_i^{1/α}: by Eq. 3 any allotted fraction at
// or below this threshold is wasted (the min clamps to 1, as if no cache
// were given), so valid solutions have x_i = 0 or x_i > d_i^{1/α}.
func (a Application) MinUsefulFraction(pl Platform) float64 {
	return math.Pow(a.D(pl), 1/pl.Alpha)
}

// MaxUsefulFraction returns a_i/Cs clamped to [0, 1], beyond which extra
// cache brings no benefit (footprint cap). Unbounded footprints return 1.
func (a Application) MaxUsefulFraction(pl Platform) float64 {
	if a.Footprint <= 0 {
		return 1
	}
	return math.Min(1, a.Footprint/pl.CacheSize)
}

// DominanceWeight returns (w_i f_i d_i)^{1/(α+1)}, the numerator weight
// of Lemma 4's optimal cache shares.
func (a Application) DominanceWeight(pl Platform) float64 {
	return math.Pow(a.Work*a.AccessFreq*a.D(pl), 1/(pl.Alpha+1))
}

// DominanceRatio returns r_i = (w_i f_i d_i)^{1/(α+1)} / d_i^{1/α}, the
// quantity compared against Σ_j (w_j f_j d_j)^{1/(α+1)} in Definition 4.
// Applications with larger r_i tolerate sharing the cache with more
// co-runners before their share becomes useless.
func (a Application) DominanceRatio(pl Platform) float64 {
	return a.DominanceWeight(pl) / a.MinUsefulFraction(pl)
}

// ErrEmptySet is returned by operations that need at least one application.
var ErrEmptySet = errors.New("model: empty application set")

// ValidateAll validates the platform and every application, returning the
// first problem found.
func ValidateAll(pl Platform, apps []Application) error {
	if err := pl.Validate(); err != nil {
		return err
	}
	if len(apps) == 0 {
		return ErrEmptySet
	}
	for i, a := range apps {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("app %d: %w", i, err)
		}
	}
	return nil
}
