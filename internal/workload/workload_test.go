package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/solve"
)

func TestNPBTable2Values(t *testing.T) {
	apps := NPB()
	if len(apps) != 6 {
		t.Fatalf("NPB has %d apps", len(apps))
	}
	want := map[string][3]float64{
		"CG": {5.70e10, 5.35e-01, 6.59e-04},
		"BT": {2.10e11, 8.29e-01, 7.31e-03},
		"LU": {1.52e11, 7.50e-01, 1.51e-03},
		"SP": {1.38e11, 7.62e-01, 1.51e-02},
		"MG": {1.23e10, 5.40e-01, 2.62e-02},
		"FT": {1.65e10, 5.82e-01, 1.78e-02},
	}
	for _, a := range apps {
		w, ok := want[a.Name]
		if !ok {
			t.Fatalf("unexpected app %q", a.Name)
		}
		if a.Work != w[0] || a.AccessFreq != w[1] || a.RefMissRate != w[2] {
			t.Fatalf("%s drifted from Table 2: %+v", a.Name, a)
		}
		if a.RefCacheSize != RefCacheSize {
			t.Fatalf("%s reference cache %v", a.Name, a.RefCacheSize)
		}
		if a.SeqFraction != 0 || a.Footprint != 0 {
			t.Fatalf("%s should default to perfectly parallel, unbounded footprint", a.Name)
		}
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDescriptionsCoverAllApps(t *testing.T) {
	d := Descriptions()
	for _, a := range NPB() {
		if _, ok := d[a.Name]; !ok {
			t.Fatalf("no description for %s", a.Name)
		}
	}
	if len(d) != 6 {
		t.Fatalf("descriptions for %d apps", len(d))
	}
}

func TestGeneratorString(t *testing.T) {
	if GenNPB6.String() != "NPB-6" || GenNPBSynth.String() != "NPB-SYNTH" || GenRandom.String() != "RANDOM" {
		t.Fatal("generator names drifted")
	}
	if !strings.Contains(Generator(99).String(), "99") {
		t.Fatal("unknown generator should render its code")
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := solve.NewRNG(1)
	if _, err := Generate(Config{Generator: GenNPB6, N: 0}, rng); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := Generate(Config{Generator: GenNPB6, N: 4, SeqLo: 0.5, SeqHi: 0.1}, rng); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	if _, err := Generate(Config{Generator: Generator(42), N: 4}, rng); err == nil {
		t.Fatal("unknown generator accepted")
	}
	// Non-finite and out-of-range bounds must fail loudly instead of
	// stamping NaN sequential fractions on every generated application.
	if _, err := Generate(Config{Generator: GenNPB6, N: 4, SeqLo: math.NaN(), SeqHi: 0.5}, rng); err == nil {
		t.Fatal("NaN lower bound accepted")
	}
	if _, err := Generate(Config{Generator: GenNPB6, N: 4, SeqLo: 0.1, SeqHi: math.NaN()}, rng); err == nil {
		t.Fatal("NaN upper bound accepted")
	}
	if _, err := Generate(Config{Generator: GenNPB6, N: 4, SeqLo: -0.5, SeqHi: 0.5}, rng); err == nil {
		t.Fatal("negative lower bound accepted")
	}
	if _, err := Generate(Config{Generator: GenNPB6, N: 4, SeqLo: 0.5, SeqHi: 1.5}, rng); err == nil {
		t.Fatal("upper bound above 1 accepted")
	}
	if _, err := Generate(Config{Generator: GenNPB6, N: 4, SeqFixed: true, Seq: math.NaN()}, rng); err == nil {
		t.Fatal("NaN fixed fraction accepted")
	}
	if _, err := Generate(Config{Generator: GenNPB6, N: 4, SeqFixed: true, Seq: 2}, rng); err == nil {
		t.Fatal("fixed fraction above 1 accepted")
	}
}

func TestGenerateNPB6KeepsTable2(t *testing.T) {
	apps, err := Generate(Config{Generator: GenNPB6, N: 12}, solve.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	base := NPB()
	for i, a := range apps {
		b := base[i%6]
		if a.Work != b.Work || a.AccessFreq != b.AccessFreq || a.RefMissRate != b.RefMissRate {
			t.Fatalf("NPB-6 app %d modified base values", i)
		}
		if a.SeqFraction < SeqMin || a.SeqFraction > SeqMax {
			t.Fatalf("seq fraction %v outside defaults", a.SeqFraction)
		}
	}
}

func TestGenerateNPBSynthVariesOnlyWork(t *testing.T) {
	apps, err := Generate(Config{Generator: GenNPBSynth, N: 60}, solve.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	base := NPB()
	workVaried := false
	for i, a := range apps {
		b := base[i%6]
		if a.AccessFreq != b.AccessFreq || a.RefMissRate != b.RefMissRate {
			t.Fatalf("NPB-SYNTH app %d modified f or miss rate", i)
		}
		if a.Work < WorkMin || a.Work > WorkMax {
			t.Fatalf("work %v outside bounds", a.Work)
		}
		if a.Work != b.Work {
			workVaried = true
		}
	}
	if !workVaried {
		t.Fatal("NPB-SYNTH never varied work")
	}
}

func TestGenerateRandomBounds(t *testing.T) {
	apps, err := Generate(Config{Generator: GenRandom, N: 100}, solve.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range apps {
		if a.Work < WorkMin || a.Work > WorkMax {
			t.Fatalf("app %d work %v", i, a.Work)
		}
		if a.AccessFreq < FreqMin || a.AccessFreq > FreqMax {
			t.Fatalf("app %d freq %v", i, a.AccessFreq)
		}
		if a.RefMissRate < MissMin || a.RefMissRate > MissMax {
			t.Fatalf("app %d miss %v", i, a.RefMissRate)
		}
	}
}

func TestGenerateFixedSeq(t *testing.T) {
	apps, err := Generate(Config{Generator: GenNPBSynth, N: 10, Seq: 0.123, SeqFixed: true}, solve.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range apps {
		if a.SeqFraction != 0.123 {
			t.Fatalf("fixed seq not applied: %v", a.SeqFraction)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Generator: GenRandom, N: 20}, solve.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Generator: GenRandom, N: 20}, solve.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestGenerateUniqueNames(t *testing.T) {
	apps, err := Generate(Config{Generator: GenNPB6, N: 18}, solve.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, a := range apps {
		if seen[a.Name] {
			t.Fatalf("duplicate name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

func TestPerfectlyParallelHelper(t *testing.T) {
	apps, err := Generate(Config{Generator: GenNPB6, N: 6}, solve.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	pp := PerfectlyParallel(apps)
	for i := range pp {
		if pp[i].SeqFraction != 0 {
			t.Fatal("helper left a sequential fraction")
		}
		if apps[i].SeqFraction == 0 {
			t.Fatal("original mutated")
		}
	}
}

func TestWithMissRateHelper(t *testing.T) {
	apps := NPB()
	out := WithMissRate(apps, 0.42)
	for i := range out {
		if out[i].RefMissRate != 0.42 {
			t.Fatal("miss rate not applied")
		}
	}
	if apps[0].RefMissRate == 0.42 {
		t.Fatal("original mutated")
	}
}

// Property: every generated application validates, for all generators and
// sizes.
func TestGeneratedAppsAlwaysValid(t *testing.T) {
	pl := model.TaihuLight()
	f := func(seed uint64, genPick, nPick uint8) bool {
		gen := Generator(int(genPick) % 3)
		n := 1 + int(nPick)%64
		apps, err := Generate(Config{Generator: gen, N: n}, solve.NewRNG(seed))
		if err != nil {
			return false
		}
		return model.ValidateAll(pl, apps) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Sanity: miss rates of Table 2 stay in the paper's quoted 1e-4..1e-1
// decade range at the 40MB reference.
func TestTable2MissRateRange(t *testing.T) {
	for _, a := range NPB() {
		if a.RefMissRate < 1e-4 || a.RefMissRate > 1e-1 {
			t.Fatalf("%s miss rate %v outside the paper's stated range", a.Name, a.RefMissRate)
		}
		_ = math.Log10(a.RefMissRate)
	}
}
