// Package workload provides the application sets used in the paper's
// evaluation (Section 6.1 and Appendix A): the six NAS Parallel
// Benchmark applications of Tables 1–2 and the synthetic generators
// NPB-6, NPB-SYNTH and RANDOM built from them.
//
// Table 2 values were obtained by the authors by instrumenting the NPB
// CLASS=A binaries with PEBIL on 16 cores of an Intel Xeon E5-2690 and
// measuring the miss rate with a 40 MB cache. Those published numbers are
// embedded verbatim here; see internal/cachesim for the rebuilt
// measurement pipeline that substitutes for PEBIL.
package workload

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/solve"
)

// RefCacheSize is the cache size (40 MB) at which Table 2's miss rates
// were measured.
const RefCacheSize = 40e6

// NPB returns the six applications of Table 2 with their published
// parameters: work w_i (operations), access frequency f_i (accesses per
// operation) and miss rate at a 40 MB cache. Sequential fractions are
// zero (the paper sets them per experiment) and footprints unbounded
// (the ai = +∞ regime of Sections 4–5).
func NPB() []model.Application {
	mk := func(name string, w, f, m40 float64) model.Application {
		return model.Application{
			Name:         name,
			Work:         w,
			AccessFreq:   f,
			RefMissRate:  m40,
			RefCacheSize: RefCacheSize,
		}
	}
	return []model.Application{
		mk("CG", 5.70e10, 5.35e-01, 6.59e-04),
		mk("BT", 2.10e11, 8.29e-01, 7.31e-03),
		mk("LU", 1.52e11, 7.50e-01, 1.51e-03),
		mk("SP", 1.38e11, 7.62e-01, 1.51e-02),
		mk("MG", 1.23e10, 5.40e-01, 2.62e-02),
		mk("FT", 1.65e10, 5.82e-01, 1.78e-02),
	}
}

// Descriptions returns Table 1: a one-line description per NPB
// application, keyed by name.
func Descriptions() map[string]string {
	return map[string]string{
		"CG": "Uses conjugate gradients method to solve a large sparse symmetric positive definite system of linear equations",
		"BT": "Solves multiple, independent systems of block tridiagonal equations with a predefined block size",
		"LU": "Solves regular sparse upper and lower triangular systems",
		"SP": "Solves multiple, independent systems of scalar pentadiagonal equations",
		"MG": "Performs a multi-grid solve on a sequence of meshes",
		"FT": "Performs discrete 3D fast Fourier Transform",
	}
}

// Bounds of the synthetic generators (Section 6.1 and Appendix A).
const (
	WorkMin = 1e8  // lower bound on w_i
	WorkMax = 1e12 // upper bound on w_i
	SeqMin  = 0.01 // lower bound on s_i (Section 6.1: "between 1% and 15%")
	SeqMax  = 0.15 // upper bound on s_i
	FreqMin = 1e-1 // RANDOM: lower bound on f_i
	FreqMax = 9e-1 // RANDOM: upper bound on f_i
	MissMin = 9e-4 // RANDOM: lower bound on m_i(40MB) ("1E-02 to 9E-04")
	MissMax = 1e-2 // RANDOM: upper bound on m_i(40MB)
)

// Generator names one of the three data sets of Appendix A.
type Generator int

const (
	// GenNPB6 cycles through the six Table 2 applications unchanged
	// (NPB-6).
	GenNPB6 Generator = iota
	// GenNPBSynth keeps each base application's f_i and miss rate but
	// redraws the work w_i uniformly in [1e8, 1e12] (NPB-SYNTH, the
	// data set used in the body of the paper).
	GenNPBSynth
	// GenRandom redraws work, access frequency and miss rate (RANDOM).
	GenRandom
)

// String implements fmt.Stringer.
func (g Generator) String() string {
	switch g {
	case GenNPB6:
		return "NPB-6"
	case GenNPBSynth:
		return "NPB-SYNTH"
	case GenRandom:
		return "RANDOM"
	default:
		return fmt.Sprintf("Generator(%d)", int(g))
	}
}

// Config parameterizes workload generation.
type Config struct {
	Generator Generator
	N         int     // number of applications to produce
	SeqLo     float64 // sequential fraction lower bound (defaults to SeqMin when both bounds are zero and Sequential is false)
	SeqHi     float64 // sequential fraction upper bound
	Seq       float64 // fixed sequential fraction, used when SeqFixed is true
	SeqFixed  bool    // if true, every app gets Seq instead of a random draw
}

// Generate produces cfg.N applications with rng. Base profiles cycle
// through the NPB six in order, as in the authors' simulator, so the mix
// of access behaviours is stable as N grows.
func Generate(cfg Config, rng *solve.RNG) ([]model.Application, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("workload: need N > 0, got %d", cfg.N)
	}
	if cfg.SeqFixed {
		if math.IsNaN(cfg.Seq) || cfg.Seq < 0 || cfg.Seq > 1 {
			return nil, fmt.Errorf("workload: fixed sequential fraction %v outside [0,1]", cfg.Seq)
		}
	}
	lo, hi := cfg.SeqLo, cfg.SeqHi
	if !cfg.SeqFixed && lo == 0 && hi == 0 {
		lo, hi = SeqMin, SeqMax
	}
	// NaN bounds slip through ordered comparisons (every comparison is
	// false) and would stamp NaN sequential fractions on every
	// application; reject them and out-of-range bounds explicitly.
	if math.IsNaN(lo) || math.IsNaN(hi) || lo < 0 || hi > 1 || hi < lo {
		return nil, fmt.Errorf("workload: sequential bounds [%g, %g] invalid (want 0 <= lo <= hi <= 1)", lo, hi)
	}
	base := NPB()
	apps := make([]model.Application, cfg.N)
	for i := range apps {
		a := base[i%len(base)]
		a.Name = fmt.Sprintf("%s-%d", a.Name, i)
		switch cfg.Generator {
		case GenNPB6:
			// Table 2 values unchanged.
		case GenNPBSynth:
			a.Work = rng.UniformRange(WorkMin, WorkMax)
		case GenRandom:
			a.Work = rng.UniformRange(WorkMin, WorkMax)
			a.AccessFreq = rng.UniformRange(FreqMin, FreqMax)
			a.RefMissRate = rng.UniformRange(MissMin, MissMax)
		default:
			return nil, fmt.Errorf("workload: unknown generator %v", cfg.Generator)
		}
		if cfg.SeqFixed {
			a.SeqFraction = cfg.Seq
		} else {
			a.SeqFraction = rng.UniformRange(lo, hi)
		}
		// Generated values are draws from validated bounds, so this can
		// only fire on a generator bug — but a silent NaN here would
		// poison every downstream heuristic, so check anyway.
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("workload: generated application %d invalid: %w", i, err)
		}
		apps[i] = a
	}
	return apps, nil
}

// PerfectlyParallel returns a copy of apps with every sequential fraction
// forced to zero, the regime of the Section 4 theory.
func PerfectlyParallel(apps []model.Application) []model.Application {
	out := make([]model.Application, len(apps))
	for i, a := range apps {
		a.SeqFraction = 0
		out[i] = a
	}
	return out
}

// WithMissRate returns a copy of apps with every reference miss rate set
// to m (used by the Figure 2/18 miss-rate sweeps).
func WithMissRate(apps []model.Application, m float64) []model.Application {
	out := make([]model.Application, len(apps))
	for i, a := range apps {
		a.RefMissRate = m
		out[i] = a
	}
	return out
}
