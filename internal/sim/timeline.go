package sim

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Span is one row of an execution timeline: a named interval, with the
// waiting prefix (arrival → start) drawn distinctly from the running
// part (start → finish). It is the rendering-level view of an online
// run's per-job metrics (see internal/des).
type Span struct {
	Name    string
	Arrival float64
	Start   float64
	Finish  float64
}

// RenderTimeline draws an ASCII Gantt chart of spans that do not all
// start at time zero: '░' marks waiting (arrival to start), '█' marks
// execution (start to finish). Rows render in the given order; width is
// the number of columns of the time axis.
func RenderTimeline(w io.Writer, spans []Span, width int) error {
	if width < 20 {
		return fmt.Errorf("sim: timeline width %d too small", width)
	}
	if len(spans) == 0 {
		return fmt.Errorf("sim: no spans to render")
	}
	span := 0.0
	nameW := 4
	for _, s := range spans {
		if math.IsNaN(s.Arrival) || math.IsNaN(s.Start) || math.IsNaN(s.Finish) ||
			s.Finish < s.Start || s.Start < s.Arrival {
			return fmt.Errorf("sim: span %q out of order: arrival %g, start %g, finish %g", s.Name, s.Arrival, s.Start, s.Finish)
		}
		span = math.Max(span, s.Finish)
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	if span <= 0 || math.IsInf(span, 0) || math.IsNaN(span) {
		return fmt.Errorf("sim: cannot render horizon %v", span)
	}
	col := func(t float64) int {
		c := int(math.Round(t / span * float64(width)))
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}
	if _, err := fmt.Fprintf(w, "%-*s |%s| wait    run\n", nameW, "job", center("time →", width)); err != nil {
		return err
	}
	for _, s := range spans {
		c0, c1, c2 := col(s.Arrival), col(s.Start), col(s.Finish)
		if c2 <= c1 {
			c2 = c1 + 1
		}
		if c2 > width {
			c2 = width
			if c1 >= c2 {
				c1 = c2 - 1
			}
		}
		if c1 < c0 {
			c1 = c0
		}
		bar := strings.Repeat(" ", c0) + strings.Repeat("░", c1-c0) + strings.Repeat("█", c2-c1) + strings.Repeat(" ", width-c2)
		if _, err := fmt.Fprintf(w, "%-*s |%s| %7.4g %7.4g\n", nameW, s.Name, bar, s.Start-s.Arrival, s.Finish-s.Start); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  0%s%.4g\n", nameW, "", strings.Repeat(" ", width-len(fmt.Sprintf("%.4g", span))), span)
	return err
}
