package sim

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/model"
	"repro/internal/sched"
)

// RenderGantt draws an ASCII timeline of the execution: one row per
// application showing its active interval (start → finish), bar length
// proportional to duration, annotated with processors and cache share.
// For concurrent schedules every bar starts at 0; for sequential
// (AllProcCache) schedules bars stack one after another.
func RenderGantt(w io.Writer, pl model.Platform, apps []model.Application, s *sched.Schedule, res *Result, width int) error {
	if width < 20 {
		return fmt.Errorf("sim: gantt width %d too small", width)
	}
	if len(res.FinishTimes) != len(apps) {
		return fmt.Errorf("sim: result covers %d apps, schedule %d", len(res.FinishTimes), len(apps))
	}
	span := res.Makespan
	if span <= 0 || math.IsInf(span, 0) || math.IsNaN(span) {
		return fmt.Errorf("sim: cannot render makespan %v", span)
	}
	nameW := 4
	for _, a := range apps {
		if len(a.Name) > nameW {
			nameW = len(a.Name)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s |%s| procs  cache\n", nameW, "app", center("time →", width)); err != nil {
		return err
	}
	for i, a := range apps {
		start := 0.0
		if s.Sequential && i > 0 {
			start = res.FinishTimes[i-1]
		}
		finish := res.FinishTimes[i]
		c0 := int(math.Round(start / span * float64(width)))
		c1 := int(math.Round(finish / span * float64(width)))
		if c1 <= c0 {
			c1 = c0 + 1
		}
		if c1 > width {
			c1 = width
		}
		bar := strings.Repeat(" ", c0) + strings.Repeat("█", c1-c0) + strings.Repeat(" ", width-c1)
		if _, err := fmt.Fprintf(w, "%-*s |%s| %6.2f %6.4f\n",
			nameW, a.Name, bar, s.Assignments[i].Processors, s.Assignments[i].CacheShare); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  0%s%.4g\n", nameW, "", strings.Repeat(" ", width-len(fmt.Sprintf("%.4g", span))), span)
	return err
}

func center(s string, w int) string {
	if len(s) >= w {
		return s[:w]
	}
	left := (w - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", w-len(s)-left)
}
