package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/workload"
)

func refPlatform() model.Platform { return model.TaihuLight() }

func synthApps(seed uint64, n int, seq float64) []model.Application {
	apps, err := workload.Generate(workload.Config{
		Generator: workload.GenNPBSynth, N: n, Seq: seq, SeqFixed: true,
	}, solve.NewRNG(seed))
	if err != nil {
		panic(err)
	}
	return apps
}

func TestStaticMatchesAnalyticModel(t *testing.T) {
	pl := refPlatform()
	for _, h := range sched.Heuristics {
		apps := synthApps(4, 20, 0.06)
		s, err := h.Schedule(pl, apps, solve.NewRNG(9))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(pl, apps, s, Static)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if math.Abs(res.Makespan-s.Makespan) > 1e-6*s.Makespan {
			t.Fatalf("%v: simulated %v vs analytic %v", h, res.Makespan, s.Makespan)
		}
		want := s.FinishTimes(pl, apps)
		for i := range apps {
			if math.Abs(res.FinishTimes[i]-want[i]) > 1e-6*want[i] {
				t.Fatalf("%v app %d: %v vs %v", h, i, res.FinishTimes[i], want[i])
			}
		}
	}
}

func TestSequentialExecutionAccumulates(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(5, 6, 0.03)
	s, err := sched.AllProcCache.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(pl, apps, s, Static)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.FinishTimes); i++ {
		if res.FinishTimes[i] <= res.FinishTimes[i-1] {
			t.Fatal("sequential finish times not strictly increasing")
		}
	}
	if len(res.Events) != len(apps) {
		t.Fatalf("%d events for %d apps", len(res.Events), len(apps))
	}
}

func TestEventsOrderedAndComplete(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(6, 15, 0.05)
	s, err := sched.Fair.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(pl, apps, s, Static)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != len(apps) {
		t.Fatalf("%d events", len(res.Events))
	}
	seen := make([]bool, len(apps))
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].Time < res.Events[i-1].Time {
			t.Fatal("events out of order")
		}
	}
	for _, e := range res.Events {
		if seen[e.App] {
			t.Fatalf("app %d completed twice", e.App)
		}
		seen[e.App] = true
	}
}

func TestRedistributeNeverSlower(t *testing.T) {
	pl := refPlatform()
	for seed := uint64(0); seed < 10; seed++ {
		apps := synthApps(seed, 12, 0.08)
		// Fair schedules have unequal finish times, so redistribution
		// has something to exploit.
		s, err := sched.Fair.Schedule(pl, apps, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Execute(pl, apps, s, Static)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := Execute(pl, apps, s, Redistribute)
		if err != nil {
			t.Fatal(err)
		}
		if rd.Makespan > st.Makespan*(1+1e-9) {
			t.Fatalf("seed %d: redistribution slower (%v > %v)", seed, rd.Makespan, st.Makespan)
		}
	}
}

func TestRedistributeImprovesUnequalFinish(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(3, 12, 0.08)
	s, err := sched.Fair.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := Execute(pl, apps, s, Static)
	rd, _ := Execute(pl, apps, s, Redistribute)
	if rd.Makespan >= st.Makespan {
		t.Fatalf("redistribution did not help a Fair schedule: %v vs %v", rd.Makespan, st.Makespan)
	}
}

func TestUtilizationBounds(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(7, 10, 0.05)
	s, err := sched.DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(pl, apps, s, Static)
	if err != nil {
		t.Fatal(err)
	}
	util := res.ProcessorTime / (pl.Processors * res.Makespan)
	if util <= 0 || util > 1+1e-9 {
		t.Fatalf("utilization %v outside (0, 1]", util)
	}
	// Equal-finish schedules keep every allotted processor busy to the
	// end: utilization ≈ Σp_i / p.
	var allotted float64
	for _, a := range s.Assignments {
		allotted += a.Processors
	}
	if want := allotted / pl.Processors; math.Abs(util-want) > 1e-6 {
		t.Fatalf("utilization %v, want %v", util, want)
	}
}

func TestExecuteRejectsInvalidSchedule(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(8, 4, 0.05)
	s := &sched.Schedule{Assignments: make([]sched.Assignment, 2)}
	if _, err := Execute(pl, apps, s, Static); err == nil {
		t.Fatal("mismatched schedule accepted")
	}
}

func TestDeadlockDetection(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(9, 3, 0.05)
	// All-zero processors: nobody can finish.
	s := &sched.Schedule{Assignments: make([]sched.Assignment, 3)}
	if _, err := Execute(pl, apps, s, Static); err == nil {
		t.Fatal("deadlocked schedule accepted")
	}
}

// Property: the DES agrees with the analytic model for every heuristic,
// workload size and sequential fraction.
func TestStaticAgreesWithModelProperty(t *testing.T) {
	pl := refPlatform()
	f := func(seed uint64, hPick, nPick uint8) bool {
		h := sched.Heuristics[int(hPick)%len(sched.Heuristics)]
		n := 1 + int(nPick)%30
		apps := synthApps(seed, n, float64(seed%16)/100)
		s, err := h.Schedule(pl, apps, solve.NewRNG(seed))
		if err != nil {
			return false
		}
		res, err := Execute(pl, apps, s, Static)
		if err != nil {
			return false
		}
		return math.Abs(res.Makespan-s.Makespan) <= 1e-6*s.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if Static.String() != "static" || Redistribute.String() != "redistribute" {
		t.Fatal("policy names drifted")
	}
}
