package sim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sched"
)

func TestRenderGanttConcurrent(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(2, 5, 0.05)
	s, err := sched.DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(pl, apps, s, Static)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderGantt(&buf, pl, apps, s, res, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + one row per app + time axis.
	if len(lines) != len(apps)+2 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// Equal-finish schedule: every bar spans the full width.
	for _, ln := range lines[1 : len(apps)+1] {
		if !strings.Contains(ln, "████") {
			t.Fatalf("missing bar in %q", ln)
		}
	}
}

func TestRenderGanttSequentialStacksBars(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(3, 4, 0.05)
	s, err := sched.AllProcCache.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(pl, apps, s, Static)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderGantt(&buf, pl, apps, s, res, 60); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")[1 : len(apps)+1]
	// Later bars start where earlier ones ended: the first bar begins at
	// the left edge, the last one must not.
	first := rows[0][strings.Index(rows[0], "|")+1:]
	last := rows[len(rows)-1][strings.Index(rows[len(rows)-1], "|")+1:]
	if !strings.HasPrefix(first, "█") {
		t.Fatalf("first bar should start at 0: %q", first)
	}
	if strings.HasPrefix(last, "█") {
		t.Fatalf("last sequential bar should not start at 0: %q", last)
	}
}

func TestRenderGanttValidation(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(5, 3, 0.05)
	s, err := sched.Fair.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(pl, apps, s, Static)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderGantt(&buf, pl, apps, s, res, 5); err == nil {
		t.Fatal("tiny width accepted")
	}
	bad := &Result{FinishTimes: []float64{1}, Makespan: 1}
	if err := RenderGantt(&buf, pl, apps, s, bad, 40); err == nil {
		t.Fatal("mismatched result accepted")
	}
}
