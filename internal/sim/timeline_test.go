package sim

import (
	"math"
	"strings"
	"testing"
)

func TestRenderTimeline(t *testing.T) {
	var sb strings.Builder
	spans := []Span{
		{Name: "a", Arrival: 0, Start: 0, Finish: 10},
		{Name: "b", Arrival: 2, Start: 5, Finish: 8},
	}
	if err := RenderTimeline(&sb, spans, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, two rows, axis
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "█") {
		t.Errorf("row a has no run bar: %q", lines[1])
	}
	if !strings.Contains(lines[2], "░") {
		t.Errorf("row b has no wait bar: %q", lines[2])
	}
	if !strings.Contains(lines[3], "10") {
		t.Errorf("axis missing horizon: %q", lines[3])
	}
}

func TestRenderTimelineRejects(t *testing.T) {
	var sb strings.Builder
	if err := RenderTimeline(&sb, nil, 40); err == nil {
		t.Error("empty spans accepted")
	}
	if err := RenderTimeline(&sb, []Span{{Name: "x", Finish: 1}}, 5); err == nil {
		t.Error("tiny width accepted")
	}
	if err := RenderTimeline(&sb, []Span{{Name: "x", Start: 2, Finish: 1}}, 40); err == nil {
		t.Error("out-of-order span accepted")
	}
	if err := RenderTimeline(&sb, []Span{{Name: "x", Finish: math.Inf(1)}}, 40); err == nil {
		t.Error("infinite horizon accepted")
	}
	// NaN fields defeat ordered comparisons; they must error, not panic
	// inside strings.Repeat with a negative count.
	if err := RenderTimeline(&sb, []Span{{Name: "x", Arrival: 50, Start: math.NaN(), Finish: 10}, {Name: "y", Finish: 60}}, 40); err == nil {
		t.Error("NaN span accepted")
	}
}
