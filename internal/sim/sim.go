// Package sim is a discrete-event executor for co-schedules: it runs a
// set of malleable applications forward in time under a resource
// assignment, producing per-application finish times, a processor-time
// integral and (optionally) dynamic reallocation of resources freed by
// completed applications.
//
// Within a constant allocation an Amdahl application's progress is linear
// in time — its completion fraction advances at rate 1/Exe_i(p_i, x_i) —
// so the simulation is exact, not time-stepped: the engine hops from
// completion event to completion event. With the Static policy the
// simulated finish times reproduce the analytic model (a cross-check used
// heavily in tests); the Redistribute policy models the natural extension
// where processors and cache freed by finished applications are handed to
// the survivors, quantifying how much a static assignment leaves on the
// table for schedules whose applications do not all finish together.
package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/solve"
)

// Policy selects what happens to resources freed by completed
// applications.
type Policy int

const (
	// Static keeps every allocation fixed from start to finish (the
	// paper's model).
	Static Policy = iota
	// Redistribute hands freed processors and cache to the remaining
	// applications proportionally to their current holdings, rescaling
	// at every completion event.
	Redistribute
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case Redistribute:
		return "redistribute"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// CompletionEvent records one application finishing.
type CompletionEvent struct {
	Time float64
	App  int
}

// Result is the outcome of a simulated execution.
type Result struct {
	FinishTimes []float64 // per-application completion times
	Makespan    float64
	Events      []CompletionEvent // completions in time order
	// ProcessorTime integrates allocated processors over time
	// (processor-seconds reserved); ProcessorTime / (p × Makespan) is
	// the machine utilization.
	ProcessorTime float64
}

// appState tracks one application's progress during execution.
type appState struct {
	frac  float64 // completed fraction ∈ [0, 1]
	procs float64
	cache float64
	done  bool
}

// Execute runs apps under schedule s on platform pl with the given
// policy. For sequential schedules (AllProcCache) applications run one
// after another regardless of policy.
func Execute(pl model.Platform, apps []model.Application, s *sched.Schedule, policy Policy) (*Result, error) {
	if err := s.Validate(pl, apps); err != nil {
		return nil, err
	}
	n := len(apps)
	res := &Result{FinishTimes: make([]float64, n)}

	if s.Sequential {
		var t solve.Kahan
		for i, a := range apps {
			exe := a.Exe(pl, s.Assignments[i].Processors, s.Assignments[i].CacheShare)
			t.Add(exe)
			res.FinishTimes[i] = t.Sum()
			res.Events = append(res.Events, CompletionEvent{Time: t.Sum(), App: i})
			res.ProcessorTime += s.Assignments[i].Processors * exe
		}
		res.Makespan = t.Sum()
		return res, nil
	}

	st := make([]appState, n)
	for i := range st {
		st[i] = appState{procs: s.Assignments[i].Processors, cache: s.Assignments[i].CacheShare}
	}
	now := 0.0
	remaining := n
	for remaining > 0 {
		// Earliest completion under current allocations.
		nextT := math.Inf(1)
		for i := range st {
			if st[i].done {
				continue
			}
			exe := apps[i].Exe(pl, st[i].procs, st[i].cache)
			if math.IsInf(exe, 1) {
				continue // zero processors: cannot finish under this allocation
			}
			if t := now + (1-st[i].frac)*exe; t < nextT {
				nextT = t
			}
		}
		if math.IsInf(nextT, 1) {
			return nil, fmt.Errorf("sim: deadlock at t=%g: no runnable application can finish", now)
		}
		// Advance every running application to nextT.
		dt := nextT - now
		var freedP, freedX float64
		for i := range st {
			if st[i].done {
				continue
			}
			exe := apps[i].Exe(pl, st[i].procs, st[i].cache)
			res.ProcessorTime += st[i].procs * dt
			if !math.IsInf(exe, 1) {
				st[i].frac += dt / exe
			}
			if st[i].frac >= 1-1e-12 {
				st[i].frac = 1
				st[i].done = true
				remaining--
				res.FinishTimes[i] = nextT
				res.Events = append(res.Events, CompletionEvent{Time: nextT, App: i})
				freedP += st[i].procs
				freedX += st[i].cache
				st[i].procs, st[i].cache = 0, 0
			}
		}
		now = nextT
		if policy == Redistribute && remaining > 0 && (freedP > 0 || freedX > 0) {
			redistribute(st, freedP, freedX)
		}
	}
	res.Makespan = now
	sort.Slice(res.Events, func(a, b int) bool {
		if res.Events[a].Time != res.Events[b].Time {
			return res.Events[a].Time < res.Events[b].Time
		}
		return res.Events[a].App < res.Events[b].App
	})
	return res, nil
}

// redistribute shares freed processors/cache among running applications
// proportionally to their current holdings, falling back to an equal
// split when the survivors hold none of that resource.
func redistribute(st []appState, freedP, freedX float64) {
	var heldP, heldX float64
	running := 0
	for i := range st {
		if !st[i].done {
			heldP += st[i].procs
			heldX += st[i].cache
			running++
		}
	}
	if running == 0 {
		return
	}
	for i := range st {
		if st[i].done {
			continue
		}
		if heldP > 0 {
			st[i].procs += freedP * st[i].procs / heldP
		} else {
			st[i].procs += freedP / float64(running)
		}
		if heldX > 0 {
			st[i].cache += freedX * st[i].cache / heldX
		} else {
			st[i].cache += freedX / float64(running)
		}
	}
}
