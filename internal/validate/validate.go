// Package validate closes the loop between the analytic model the
// scheduler optimizes and the cache simulator: it characterizes synthetic
// applications the way the paper characterized NPB (measure a miss curve,
// fit the Power Law), schedules them, realizes the cache partition as CAT
// ways, replays the traces through the way-partitioned LRU simulator and
// compares the measured per-application miss rates against the model's
// predictions at the granted fractions.
//
// This is the reproduction's substitute for "conduct real experiments on
// a cache-partitioned system" (the paper's future work): instead of
// hardware counters, a cycle-free but structurally faithful cache model.
package validate

import (
	"fmt"
	"math"

	"repro/internal/cachesim"
	"repro/internal/cat"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/trace"
)

// TracedApp couples an application profile with the trace generator that
// realizes its memory behaviour and the power law fitted to its measured
// miss curve.
type TracedApp struct {
	App model.Application
	// Fit is the per-application power law (its own α); the scheduler
	// works with the platform's single global α, as the paper's model
	// does, but validation compares the simulator against this fit.
	Fit cachesim.PowerLawFit
	// NewTrace returns a fresh generator replaying the application's
	// access stream from the start (deterministic per call).
	NewTrace func() trace.Generator
}

// fitTable memoizes the sweep-and-fit cell of every characterization:
// re-characterizing the same generator with the same geometry serves
// the fit from the table instead of re-simulating millions of
// accesses. The cell key fingerprints the generator's actual access
// stream, so same-named generators with different parameters or seeds
// get distinct cells; characterization is deterministic, so the
// memoized result is bit-identical to a fresh one.
var fitTable = cachesim.NewFitTable()

// Instrument exports the process-wide fit table's counters on reg (see
// cachesim.FitTable.Instrument). A nil registry is a no-op.
func Instrument(reg *obs.Registry) {
	fitTable.Instrument(reg)
}

// Characterize builds a model.Application from a trace generator by
// sweeping the cache simulator over sizes and fitting the Power Law —
// the PEBIL role. work and freq are the application's compute profile
// (operations and accesses per operation); seq its Amdahl fraction.
// Repeated characterizations of one cell are served from a
// process-wide fit table (see cachesim.FitTable).
func Characterize(name string, mkGen func() trace.Generator, sizes []uint64, line uint64, ways int,
	work, seq, freq float64, warmup, count int) (TracedApp, cachesim.PowerLawFit, error) {

	const refSize = 40e6 // the paper's reference point
	fit, err := fitTable.Characterize(name, sizes, line, ways, mkGen, warmup, count, refSize)
	if err != nil {
		return TracedApp{}, cachesim.PowerLawFit{}, fmt.Errorf("validate: characterizing %s: %w", name, err)
	}
	app := model.Application{
		Name:         name,
		Work:         work,
		SeqFraction:  seq,
		AccessFreq:   freq,
		RefMissRate:  math.Min(1, fit.M0),
		RefCacheSize: refSize,
	}
	if g := mkGen(); g.Footprint() > 0 {
		app.Footprint = float64(g.Footprint())
	}
	return TracedApp{App: app, Fit: fit, NewTrace: mkGen}, fit, nil
}

// Comparison is the per-application outcome of a validation run.
type Comparison struct {
	Name          string
	CacheFraction float64 // fraction realized by the CAT allocation
	Ways          int
	// PredictedMiss evaluates the application's own fitted power law at
	// the granted capacity (the quantity the fit claims to predict).
	PredictedMiss float64
	// ModelMiss evaluates the scheduler's view — the paper's model with
	// the platform's single global α — at the same capacity.
	ModelMiss    float64
	MeasuredMiss float64 // cache simulator, steady state
	AbsError     float64 // |measured − predicted| (against the per-app fit)
}

// Run schedules the traced applications with h on pl, realizes the cache
// split on a cache of geometry (cacheBytes, line, ways), replays every
// trace in its partition and reports predicted-vs-measured miss rates.
// Applications granted zero ways are skipped (the model predicts miss = 1
// and the simulator trivially agrees; including them would only flatter
// the error statistics).
func Run(pl model.Platform, apps []TracedApp, h sched.Heuristic,
	cacheBytes, line uint64, ways, warmup, count int) ([]Comparison, error) {

	models := make([]model.Application, len(apps))
	for i, ta := range apps {
		models[i] = ta.App
	}
	s, err := h.Schedule(pl, models, nil)
	if err != nil {
		return nil, fmt.Errorf("validate: scheduling: %w", err)
	}
	shares := make([]float64, len(apps))
	for i, a := range s.Assignments {
		shares[i] = a.CacheShare
	}
	alloc, err := cat.Partition(shares, ways)
	if err != nil {
		return nil, fmt.Errorf("validate: CAT allocation: %w", err)
	}
	cache, err := cachesim.New(cachesim.Config{SizeBytes: cacheBytes, LineBytes: line, Ways: ways}, alloc.WayCounts)
	if err != nil {
		return nil, fmt.Errorf("validate: building cache: %w", err)
	}
	gens := make([]trace.Generator, len(apps))
	for i, ta := range apps {
		gens[i] = ta.NewTrace()
	}
	// Warm up all partitions, then measure.
	for i := 0; i < warmup; i++ {
		for p, g := range gens {
			cache.Access(p, g.Next())
		}
	}
	cache.ResetStats()
	if _, err := cache.Run(gens, count); err != nil {
		return nil, err
	}

	var out []Comparison
	for i, ta := range apps {
		if alloc.WayCounts[i] == 0 {
			continue
		}
		// Predictions at the capacity the hardware actually granted:
		// partition capacity = frac × cacheBytes.
		granted := alloc.Fractions[i] * float64(cacheBytes)
		pred := ta.Fit.MissRate(granted)
		meas := cache.Stats(i).MissRate()
		out = append(out, Comparison{
			Name:          ta.App.Name,
			CacheFraction: alloc.Fractions[i],
			Ways:          alloc.WayCounts[i],
			PredictedMiss: pred,
			ModelMiss:     ta.App.MissRate(granted, pl.Alpha),
			MeasuredMiss:  meas,
			AbsError:      math.Abs(meas - pred),
		})
	}
	return out, nil
}

// MeanAbsError aggregates a validation run.
func MeanAbsError(cs []Comparison) float64 {
	if len(cs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, c := range cs {
		sum += c.AbsError
	}
	return sum / float64(len(cs))
}
