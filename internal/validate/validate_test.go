package validate

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/solve"
	"repro/internal/trace"
)

// zipfFactory returns a deterministic Zipf generator factory.
func zipfFactory(footprint uint64, s float64, seed uint64) func() trace.Generator {
	return func() trace.Generator {
		g, err := trace.NewZipf(footprint, 64, s, solve.NewRNG(seed))
		if err != nil {
			panic(err)
		}
		return g
	}
}

func sweepSizes() []uint64 {
	return []uint64{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20}
}

func TestCharacterizeProducesValidApp(t *testing.T) {
	ta, fit, err := Characterize("zipfy", zipfFactory(16<<20, 0.9, 3), sweepSizes(), 64, 8,
		1e10, 0.05, 0.5, 30000, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.App.Validate(); err != nil {
		t.Fatal(err)
	}
	if fit.Alpha <= 0 {
		t.Fatalf("fitted alpha %v", fit.Alpha)
	}
	if fit.R2 < 0.8 {
		t.Fatalf("zipf trace should be near power-law: R² = %v", fit.R2)
	}
	if ta.App.Footprint != float64(16<<20) {
		t.Fatalf("footprint %v", ta.App.Footprint)
	}
}

func TestCharacterizeErrorsPropagate(t *testing.T) {
	if _, _, err := Characterize("bad", zipfFactory(16<<20, 0.9, 3),
		[]uint64{1 << 20}, 64, 8, 1e10, 0, 0.5, 10, 10); err == nil {
		t.Fatal("single sweep point should fail the fit")
	}
}

// The headline validation: for Zipfian applications the model's predicted
// miss rate at the CAT-granted fraction tracks the simulator's measured
// rate.
func TestModelTracksSimulator(t *testing.T) {
	var apps []TracedApp
	for i, s := range []float64{0.7, 0.9, 1.1} {
		ta, _, err := Characterize(
			"app"+string(rune('A'+i)),
			zipfFactory(16<<20, s, uint64(10+i)),
			sweepSizes(), 64, 8,
			1e10, 0.02, 0.5, 30000, 60000)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, ta)
	}
	pl := model.Platform{
		Processors: 16,
		CacheSize:  8 << 20, // the shared LLC being partitioned
		LatencyS:   0.17,
		LatencyL:   1,
		Alpha:      0.5,
	}
	cs, err := Run(pl, apps, sched.DominantMinRatio, 8<<20, 64, 16, 200000, 300000)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) == 0 {
		t.Fatal("no application received cache; validation vacuous")
	}
	for _, c := range cs {
		if c.MeasuredMiss < 0 || c.MeasuredMiss > 1 {
			t.Fatalf("%s: measured miss %v", c.Name, c.MeasuredMiss)
		}
		if c.AbsError > 0.25 {
			t.Fatalf("%s: model %.3f vs simulator %.3f (error %.3f too large)",
				c.Name, c.PredictedMiss, c.MeasuredMiss, c.AbsError)
		}
	}
	if mae := MeanAbsError(cs); mae > 0.15 {
		t.Fatalf("mean absolute error %v too large", mae)
	}
}

func TestRunSchedulingErrorsPropagate(t *testing.T) {
	pl := model.Platform{} // invalid
	if _, err := Run(pl, nil, sched.Fair, 1<<20, 64, 8, 10, 10); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestMeanAbsError(t *testing.T) {
	if !math.IsNaN(MeanAbsError(nil)) {
		t.Fatal("empty MAE should be NaN")
	}
	cs := []Comparison{{AbsError: 0.1}, {AbsError: 0.3}}
	if mae := MeanAbsError(cs); math.Abs(mae-0.2) > 1e-12 {
		t.Fatalf("MAE %v", mae)
	}
}
