package sched

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0.05)
	s, err := DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "DominantMinRatio", pl, apps, s); err != nil {
		t.Fatal(err)
	}
	h, pl2, names, s2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h != "DominantMinRatio" {
		t.Fatalf("heuristic %q", h)
	}
	if pl2 != pl {
		t.Fatalf("platform drifted: %+v vs %+v", pl2, pl)
	}
	if len(names) != len(apps) {
		t.Fatalf("%d names", len(names))
	}
	for i, a := range apps {
		if names[i] != a.Name {
			t.Fatalf("name %d: %q vs %q", i, names[i], a.Name)
		}
		if s2.Assignments[i] != s.Assignments[i] {
			t.Fatalf("assignment %d drifted", i)
		}
	}
	if math.Abs(s2.Makespan-s.Makespan) > 0 {
		t.Fatalf("makespan %v vs %v", s2.Makespan, s.Makespan)
	}
	// The deserialized schedule still validates against the originals.
	if err := s2.Validate(pl2, apps); err != nil {
		t.Fatal(err)
	}
}

func TestWriteJSONLengthMismatch(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0)
	s := &Schedule{Assignments: make([]Assignment, 2)}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "", pl, apps, s); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, _, _, _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestJSONSequentialFlag(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0.05)
	s, err := AllProcCache.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "AllProcCache", pl, apps, s); err != nil {
		t.Fatal(err)
	}
	_, _, _, s2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Sequential {
		t.Fatal("sequential flag lost")
	}
}
