package sched

import (
	"sync"

	"repro/internal/core"
	"repro/internal/model"
)

// scratch is the per-evaluation workspace of one Heuristic.Schedule
// call. Every buffer the heuristics previously allocated per call —
// perfectly-parallel proxies, partition state, cache-share vectors,
// equalizer coefficients — lives here and is recycled through a
// sync.Pool, so the steady-state hot path only allocates the Schedule
// it returns. Buffers are fully overwritten before use; pooling cannot
// change results.
type scratch struct {
	proxy   []model.Application // zero-SeqFraction proxy of the inputs
	members []bool              // random-membership / warm-start vector
	bestM   []bool              // local search's best membership snapshot
	shares  []float64           // cache-share vector under evaluation
	occ     []float64           // shared-cache occupancy vector
	dampP   []float64           // shared-cache damped processor state
	part    core.Partition      // reusable partition for the builders
	prefix  core.Partition      // reusable partition for the prefix scan
	eq      equalizer           // equalizer state incl. persistent bisect objective
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

// growF64 returns a slice of length n, reusing s's backing array when
// large enough.
func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growBool is growF64 for booleans.
func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// growApps is growF64 for application slices.
func growApps(s []model.Application, n int) []model.Application {
	if cap(s) < n {
		return make([]model.Application, n)
	}
	return s[:n]
}
