package sched

import (
	"math"
	"testing"

	"repro/internal/solve"
	"repro/internal/workload"
)

// Edge cases the main suites do not reach: single applications,
// fractional platforms, footprint-capped workloads and degenerate
// parameters.

func TestSingleApplicationAllHeuristics(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0.05)[:1]
	for _, h := range ExtendedHeuristics {
		s, err := h.Schedule(pl, apps, nil)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if err := s.Validate(pl, apps); err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		// Alone, every concurrent policy gives the app the whole
		// machine; the makespan equals the solo run.
		want := apps[0].Exe(pl, pl.Processors, s.Assignments[0].CacheShare)
		if math.Abs(s.Makespan-want) > 1e-6*want {
			t.Fatalf("%v: makespan %v, solo %v", h, s.Makespan, want)
		}
	}
}

func TestFractionalProcessorPlatform(t *testing.T) {
	// Rational platforms are legal (e.g. 2.5 "processors" of a shared
	// node slice).
	pl := refPlatform()
	pl.Processors = 2.5
	apps := npbApps(0.05)[:2]
	s, err := DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(pl, apps); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, a := range s.Assignments {
		sum += a.Processors
	}
	if sum > 2.5*(1+1e-9) {
		t.Fatalf("budget exceeded: %v", sum)
	}
}

func TestFootprintCappedApplications(t *testing.T) {
	// Applications whose footprint is below their Lemma-4 share: the
	// schedule stays feasible and the model caps the benefit.
	pl := refPlatform()
	apps := npbApps(0.05)
	for i := range apps {
		apps[i].Footprint = pl.CacheSize / 20 // at most 5% useful each
	}
	s, err := DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(pl, apps); err != nil {
		t.Fatal(err)
	}
	// Granting a share above the footprint is at worst harmless: Exe at
	// the granted share equals Exe at the cap.
	for i, a := range apps {
		atShare := a.Exe(pl, s.Assignments[i].Processors, s.Assignments[i].CacheShare)
		atCap := a.Exe(pl, s.Assignments[i].Processors, math.Min(s.Assignments[i].CacheShare, 0.05))
		if math.Abs(atShare-atCap) > 1e-9*atCap {
			t.Fatalf("app %d: share beyond footprint changed Exe: %v vs %v", i, atShare, atCap)
		}
	}
}

func TestEqualizerSingleApp(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0.1)[:1]
	procs, K, err := EqualizeAmdahl(pl, apps, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(procs[0]-pl.Processors) > 1e-6*pl.Processors {
		t.Fatalf("solo app should get the machine: %v", procs[0])
	}
	want := apps[0].Exe(pl, pl.Processors, 1)
	if math.Abs(K-want) > 1e-9*want {
		t.Fatalf("K %v, want %v", K, want)
	}
}

func TestZeroAccessFrequency(t *testing.T) {
	// Pure-compute applications (f_i = 0): the cache is irrelevant and
	// Fair's frequency-proportional split degenerates to zero shares.
	pl := refPlatform()
	apps := npbApps(0.05)
	for i := range apps {
		apps[i].AccessFreq = 0
	}
	for _, h := range []Heuristic{Fair, DominantMinRatio, ZeroCache, SharedCache} {
		s, err := h.Schedule(pl, apps, nil)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if err := s.Validate(pl, apps); err != nil {
			t.Fatalf("%v: %v", h, err)
		}
	}
}

func TestManyMoreAppsThanProcessors(t *testing.T) {
	pl := refPlatform()
	pl.Processors = 8
	apps, err := workload.Generate(workload.Config{Generator: workload.GenNPBSynth, N: 64}, solve.NewRNG(1234))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []Heuristic{DominantMinRatio, Fair, ZeroCache} {
		s, err := h.Schedule(pl, apps, nil)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if err := s.Validate(pl, apps); err != nil {
			t.Fatalf("%v: %v", h, err)
		}
	}
}

func TestExtremeLatencies(t *testing.T) {
	pl := refPlatform()
	pl.LatencyS = 0 // free cache hits
	apps := npbApps(0.05)
	s, err := DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(pl, apps); err != nil {
		t.Fatal(err)
	}
	pl.LatencyL = 0 // free misses: the cache is worthless but legal
	s2, err := DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Makespan > s.Makespan {
		t.Fatal("free misses cannot be slower than costly ones")
	}
}
