package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/solve"
)

func TestSharedCacheScheduleFeasible(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(91, 24, 0.06)
	s, err := SharedCacheSchedule(pl, apps)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(pl, apps); err != nil {
		t.Fatal(err)
	}
	// Occupancies sum to 1 (everyone is in the cache, like it or not).
	var sum float64
	for _, a := range s.Assignments {
		sum += a.CacheShare
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("occupancies sum to %v", sum)
	}
}

func TestSharedCacheEqualFinish(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(92, 12, 0.05)
	s, err := SharedCacheSchedule(pl, apps)
	if err != nil {
		t.Fatal(err)
	}
	ft := s.FinishTimes(pl, apps)
	for i, f := range ft {
		if math.Abs(f-s.Makespan) > 1e-6*s.Makespan {
			t.Fatalf("app %d finishes at %v, makespan %v", i, f, s.Makespan)
		}
	}
}

func TestSharedCacheOccupancyTracksPressure(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0.05)
	s, err := SharedCacheSchedule(pl, apps)
	if err != nil {
		t.Fatal(err)
	}
	// Occupancy ratio equals processor×frequency pressure ratio.
	for i := 1; i < len(apps); i++ {
		pi := s.Assignments[i].Processors * apps[i].AccessFreq
		p0 := s.Assignments[0].Processors * apps[0].AccessFreq
		want := pi / p0
		got := s.Assignments[i].CacheShare / s.Assignments[0].CacheShare
		if math.Abs(got-want) > 1e-6*want {
			t.Fatalf("occupancy ratio %v, pressure ratio %v", got, want)
		}
	}
}

func TestPartitioningGainPositiveUnderContention(t *testing.T) {
	// The classic Cache Allocation Technology motivation: a streaming
	// antagonist with high access pressure but essentially no reuse
	// (d ≈ 0: it never misses regardless of cache) occupies LLC space
	// that cache-sensitive co-runners desperately need. Unpartitioned
	// occupancy follows pressure, not marginal benefit, so sharing
	// wastes the cache on the streamer; partitioning reclaims it.
	pl := refPlatform()
	pl.CacheSize = 2e8
	apps := synthApps(93, 8, 0.05)
	for i := range apps {
		apps[i].RefMissRate = 0.5 // cache-hungry analyses
	}
	for k := 0; k < 3; k++ {
		streamer := apps[k]
		streamer.Name = "streamer"
		streamer.AccessFreq = 0.9
		streamer.RefMissRate = 1e-9 // perfect locality: cache-insensitive
		apps = append(apps, streamer)
	}

	gain, err := PartitioningGain(pl, apps)
	if err != nil {
		t.Fatal(err)
	}
	if gain <= 0.01 {
		t.Fatalf("partitioning gain %v should be clearly positive with streaming antagonists", gain)
	}
}

func TestSharedCacheSingleApp(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0.05)[:1]
	s, err := SharedCacheSchedule(pl, apps)
	if err != nil {
		t.Fatal(err)
	}
	// Alone, the application occupies the whole cache and machine.
	if math.Abs(s.Assignments[0].CacheShare-1) > 1e-9 {
		t.Fatalf("solo occupancy %v", s.Assignments[0].CacheShare)
	}
	if math.Abs(s.Assignments[0].Processors-pl.Processors) > 1e-6*pl.Processors {
		t.Fatalf("solo processors %v", s.Assignments[0].Processors)
	}
}

func TestSharedCacheRejectsInvalid(t *testing.T) {
	pl := refPlatform()
	if _, err := SharedCacheSchedule(pl, nil); err == nil {
		t.Fatal("empty set accepted")
	}
}

// Property: the fixed point is stable — rescheduling the same instance
// reproduces the same makespan, and the schedule always validates.
func TestSharedCacheDeterministicProperty(t *testing.T) {
	pl := refPlatform()
	f := func(seed uint64, nPick uint8) bool {
		n := 1 + int(nPick)%32
		apps := synthApps(seed, n, 0.05)
		a, err := SharedCacheSchedule(pl, apps)
		if err != nil {
			return false
		}
		b, err := SharedCacheSchedule(pl, apps)
		if err != nil {
			return false
		}
		return a.Makespan == b.Makespan && a.Validate(pl, apps) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The headline comparison: on the reference platform with the paper's
// workloads, partitioned DMR is never worse than unpartitioned sharing.
func TestPartitionedNeverWorseThanShared(t *testing.T) {
	pl := refPlatform()
	for seed := uint64(0); seed < 8; seed++ {
		apps := synthApps(seed, 32, 0.05)
		dmr, err := DominantMinRatio.Schedule(pl, apps, solve.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		sh, err := SharedCacheSchedule(pl, apps)
		if err != nil {
			t.Fatal(err)
		}
		if dmr.Makespan > sh.Makespan*(1+1e-6) {
			t.Fatalf("seed %d: partitioned (%v) worse than shared (%v)", seed, dmr.Makespan, sh.Makespan)
		}
	}
}
