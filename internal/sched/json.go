package sched

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/model"
)

// scheduleJSON is the stable on-disk form of a schedule, carrying enough
// context (heuristic, platform, application names) to audit the decision
// later.
type scheduleJSON struct {
	Heuristic   string           `json:"heuristic,omitempty"`
	Platform    platformJSON     `json:"platform"`
	Assignments []assignmentJSON `json:"assignments"`
	Makespan    float64          `json:"makespan"`
	Sequential  bool             `json:"sequential,omitempty"`
}

type platformJSON struct {
	Processors float64 `json:"processors"`
	CacheSize  float64 `json:"cacheSize"`
	LatencyS   float64 `json:"ls"`
	LatencyL   float64 `json:"ll"`
	Alpha      float64 `json:"alpha"`
}

type assignmentJSON struct {
	App        string  `json:"app"`
	Processors float64 `json:"processors"`
	CacheShare float64 `json:"cacheShare"`
}

// WriteJSON serializes the schedule with its context. The heuristic name
// may be empty for hand-built schedules.
func WriteJSON(w io.Writer, heuristic string, pl model.Platform, apps []model.Application, s *Schedule) error {
	if len(apps) != len(s.Assignments) {
		return fmt.Errorf("sched: %d applications for %d assignments", len(apps), len(s.Assignments))
	}
	out := scheduleJSON{
		Heuristic: heuristic,
		Platform: platformJSON{
			Processors: pl.Processors, CacheSize: pl.CacheSize,
			LatencyS: pl.LatencyS, LatencyL: pl.LatencyL, Alpha: pl.Alpha,
		},
		Makespan:   s.Makespan,
		Sequential: s.Sequential,
	}
	for i, a := range s.Assignments {
		out.Assignments = append(out.Assignments, assignmentJSON{
			App: apps[i].Name, Processors: a.Processors, CacheShare: a.CacheShare,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a schedule previously written with WriteJSON. It
// returns the heuristic name, the platform and the schedule; application
// identities are returned as names in appNames, in assignment order.
func ReadJSON(r io.Reader) (heuristic string, pl model.Platform, appNames []string, s *Schedule, err error) {
	var in scheduleJSON
	if err = json.NewDecoder(r).Decode(&in); err != nil {
		return "", model.Platform{}, nil, nil, fmt.Errorf("sched: parsing schedule JSON: %w", err)
	}
	pl = model.Platform{
		Processors: in.Platform.Processors, CacheSize: in.Platform.CacheSize,
		LatencyS: in.Platform.LatencyS, LatencyL: in.Platform.LatencyL, Alpha: in.Platform.Alpha,
	}
	s = &Schedule{Makespan: in.Makespan, Sequential: in.Sequential}
	for _, a := range in.Assignments {
		appNames = append(appNames, a.App)
		s.Assignments = append(s.Assignments, Assignment{Processors: a.Processors, CacheShare: a.CacheShare})
	}
	return in.Heuristic, pl, appNames, s, nil
}
