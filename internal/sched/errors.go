package sched

import "fmt"

// HeuristicError reports that one scheduling policy failed on an input,
// identifying the policy and wrapping the underlying cause. The
// portfolio engine and the online policies attach it to every
// per-heuristic failure, so a caller holding only an error can still
// tell which policy broke and why:
//
//	var herr *sched.HeuristicError
//	if errors.As(err, &herr) {
//	    log.Printf("%v failed: %v", herr.Heuristic, herr.Err)
//	}
//
// errors.Is sees through it to sentinel causes (ErrInfeasible,
// context.Canceled, ...) via Unwrap.
type HeuristicError struct {
	Heuristic Heuristic
	Err       error
}

// Error implements the error interface.
func (e *HeuristicError) Error() string {
	return fmt.Sprintf("heuristic %v: %v", e.Heuristic, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *HeuristicError) Unwrap() error { return e.Err }
