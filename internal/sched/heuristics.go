package sched

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/solve"
)

// Heuristic names one of the ten scheduling policies evaluated in the
// paper.
type Heuristic int

const (
	// DominantRandom: Algorithm 1 with the Random choice policy.
	DominantRandom Heuristic = iota
	// DominantMinRatio: Algorithm 1 evicting the smallest dominance
	// ratio first — the paper's reference heuristic.
	DominantMinRatio
	// DominantMaxRatio: Algorithm 1 evicting the largest ratio first.
	DominantMaxRatio
	// DominantRevRandom: Algorithm 2 with Random.
	DominantRevRandom
	// DominantRevMinRatio: Algorithm 2 admitting the smallest ratio first.
	DominantRevMinRatio
	// DominantRevMaxRatio: Algorithm 2 admitting the largest ratio
	// first; ties DominantMinRatio as best in the paper.
	DominantRevMaxRatio
	// Fair gives every application p/n processors and a cache share
	// proportional to its access frequency.
	Fair
	// ZeroCache gives nobody cache and equalizes completion times
	// ("0cache" in the paper).
	ZeroCache
	// RandomPart puts a uniformly random subset in cache, computes
	// shares with the dominant-partition closed form, and equalizes.
	RandomPart
	// AllProcCache runs applications sequentially, each with the whole
	// machine and the whole cache (the no-co-scheduling baseline).
	AllProcCache
	// SharedCache co-schedules on an UNPARTITIONED LLC: occupancies
	// follow access pressure instead of a deliberate split (extension;
	// quantifies what partitioning itself buys).
	SharedCache
	// LocalSearch refines DominantMinRatio by Amdahl-aware membership
	// hill-climbing (extension; the paper's named future work).
	LocalSearch
)

// Heuristics lists the paper's ten policies in presentation order.
// The extensions SharedCache and LocalSearch are kept out of this list so
// the reproduced figures contain exactly the paper's series; see
// ExtendedHeuristics.
var Heuristics = []Heuristic{
	DominantRandom, DominantMinRatio, DominantMaxRatio,
	DominantRevRandom, DominantRevMinRatio, DominantRevMaxRatio,
	Fair, ZeroCache, RandomPart, AllProcCache,
}

// ExtendedHeuristics lists every policy including the extensions.
var ExtendedHeuristics = append(append([]Heuristic{}, Heuristics...), SharedCache, LocalSearch)

// DeterministicHeuristics lists the extended policies whose schedule
// is a pure function of (platform, applications) — the subset for
// which properties like permutation invariance are promised (the
// randomized policies key their seed-derived choices to input
// positions by design, so a fixed seed reproduces a fixed schedule).
var DeterministicHeuristics = func() []Heuristic {
	var hs []Heuristic
	for _, h := range ExtendedHeuristics {
		if !h.Randomized() {
			hs = append(hs, h)
		}
	}
	return hs
}()

// DominantHeuristics lists the six dominant-partition variants compared
// in Figure 1.
var DominantHeuristics = []Heuristic{
	DominantRandom, DominantMinRatio, DominantMaxRatio,
	DominantRevRandom, DominantRevMinRatio, DominantRevMaxRatio,
}

// String implements fmt.Stringer using the paper's small-caps names.
func (h Heuristic) String() string {
	switch h {
	case DominantRandom:
		return "DominantRandom"
	case DominantMinRatio:
		return "DominantMinRatio"
	case DominantMaxRatio:
		return "DominantMaxRatio"
	case DominantRevRandom:
		return "DominantRevRandom"
	case DominantRevMinRatio:
		return "DominantRevMinRatio"
	case DominantRevMaxRatio:
		return "DominantRevMaxRatio"
	case Fair:
		return "Fair"
	case ZeroCache:
		return "ZeroCache"
	case RandomPart:
		return "RandomPart"
	case AllProcCache:
		return "AllProcCache"
	case SharedCache:
		return "SharedCache"
	case LocalSearch:
		return "LocalSearch"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// Randomized reports whether the heuristic consumes the random stream:
// its schedule then depends on the RNG seed, while every other policy is
// a pure function of (platform, applications). LocalSearch is
// deterministic even though it accepts an RNG — the stream is only
// threaded through to its deterministic DominantMinRatio warm start.
func (h Heuristic) Randomized() bool {
	switch h {
	case DominantRandom, DominantRevRandom, RandomPart:
		return true
	}
	return false
}

// ParseHeuristic resolves a case-sensitive heuristic name as produced by
// String.
func ParseHeuristic(name string) (Heuristic, error) {
	for _, h := range ExtendedHeuristics {
		if h.String() == name {
			return h, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown heuristic %q", name)
}

// Schedule computes a complete schedule with heuristic h. rng drives the
// randomized policies (DominantRandom, DominantRevRandom, RandomPart) and
// may be nil for deterministic ones. Scheduling runs on pooled scratch
// buffers: beyond the returned Schedule the steady-state evaluation
// performs no heap allocations.
func (h Heuristic) Schedule(pl model.Platform, apps []model.Application, rng *solve.RNG) (*Schedule, error) {
	return h.ScheduleContext(context.Background(), pl, apps, rng)
}

// ScheduleContext is Schedule under a context: the iterative heuristics
// (LocalSearch's membership hill climb) poll ctx between refinement
// steps and abandon the computation with ctx.Err() once it is
// cancelled. The closed-form heuristics complete in microseconds and
// only check ctx on entry. Cancellation never corrupts pooled scratch —
// buffers return to the pool in a reusable state, and a subsequent call
// on a live context produces bit-identical schedules.
func (h Heuristic) ScheduleContext(ctx context.Context, pl model.Platform, apps []model.Application, rng *solve.RNG) (*Schedule, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := model.ValidateAll(pl, apps); err != nil {
		return nil, err
	}
	sc := getScratch()
	defer putScratch(sc)
	return h.scheduleWith(ctx, sc, pl, apps, rng)
}

// scheduleWith dispatches to the heuristic implementations on an
// already-validated input with a caller-held scratch.
func (h Heuristic) scheduleWith(ctx context.Context, sc *scratch, pl model.Platform, apps []model.Application, rng *solve.RNG) (*Schedule, error) {
	switch h {
	case DominantRandom, DominantMinRatio, DominantMaxRatio,
		DominantRevRandom, DominantRevMinRatio, DominantRevMaxRatio:
		return dominantSchedule(sc, pl, apps, h, rng)
	case Fair:
		return fairSchedule(pl, apps)
	case ZeroCache:
		shares := growF64(sc.shares, len(apps))
		for i := range shares {
			shares[i] = 0
		}
		sc.shares = shares
		return sharesScheduleWith(sc, pl, apps, shares)
	case RandomPart:
		return randomPartSchedule(sc, pl, apps, rng)
	case AllProcCache:
		return allProcCacheSchedule(pl, apps)
	case SharedCache:
		return sharedCacheSchedule(sc, pl, apps)
	case LocalSearch:
		return localSearchSchedule(ctx, sc, pl, apps, LocalSearchOptions{}, rng)
	default:
		return nil, fmt.Errorf("sched: unknown heuristic %v", h)
	}
}

// choiceFor maps a heuristic to its core.Choice.
func choiceFor(h Heuristic, rng *solve.RNG) (core.Choice, bool, error) {
	switch h {
	case DominantRandom:
		return core.ChooseRandom(requireRNG(rng)), false, nil
	case DominantMinRatio:
		return core.ChooseMinRatio, false, nil
	case DominantMaxRatio:
		return core.ChooseMaxRatio, false, nil
	case DominantRevRandom:
		return core.ChooseRandom(requireRNG(rng)), true, nil
	case DominantRevMinRatio:
		return core.ChooseMinRatio, true, nil
	case DominantRevMaxRatio:
		return core.ChooseMaxRatio, true, nil
	}
	return nil, false, fmt.Errorf("sched: %v is not a dominant-partition heuristic", h)
}

func requireRNG(rng *solve.RNG) *solve.RNG {
	if rng == nil {
		// Deterministic fallback keeps the API total; callers that care
		// about replicate independence pass their own stream.
		return solve.NewRNG(0)
	}
	return rng
}

// dominantSchedule: build a dominant partition on the perfectly parallel
// proxy of the applications (Section 5 temporarily assumes s_i = 0 to
// pick the partition), take the closed-form cache shares, then equalize
// completion times for the true Amdahl profiles.
func dominantSchedule(sc *scratch, pl model.Platform, apps []model.Application, h Heuristic, rng *solve.RNG) (*Schedule, error) {
	choice, reverse, err := choiceFor(h, rng)
	if err != nil {
		return nil, err
	}
	proxy := growApps(sc.proxy, len(apps))
	sc.proxy = proxy
	for i, a := range apps {
		a.SeqFraction = 0
		proxy[i] = a
	}
	if err := core.BuildDominantInto(&sc.part, pl, proxy, reverse, choice); err != nil {
		return nil, err
	}
	sc.shares = sc.part.SharesInto(sc.shares)
	return sharesScheduleWith(sc, pl, apps, sc.shares)
}

// sharesSchedule completes a schedule from fixed cache shares by
// equalizing completion times.
func sharesSchedule(pl model.Platform, apps []model.Application, shares []float64) (*Schedule, error) {
	var eq equalizer
	return sharesScheduleEq(&eq, pl, apps, shares)
}

// sharesScheduleWith is sharesSchedule on pooled scratch.
func sharesScheduleWith(sc *scratch, pl model.Platform, apps []model.Application, shares []float64) (*Schedule, error) {
	return sharesScheduleEq(&sc.eq, pl, apps, shares)
}

// sharesScheduleEq equalizes completion times under the given shares and
// materializes the resulting Schedule — the only allocation of the hot
// path.
func sharesScheduleEq(eq *equalizer, pl model.Platform, apps []model.Application, shares []float64) (*Schedule, error) {
	procs, _, err := eq.equalize(pl, apps, shares)
	if err != nil {
		return nil, err
	}
	asg := make([]Assignment, len(apps))
	for i := range apps {
		asg[i] = Assignment{Processors: procs[i], CacheShare: shares[i]}
	}
	return &Schedule{Assignments: asg, Makespan: maxFinish(pl, apps, asg)}, nil
}

// fairSchedule: p_i = p/n and x_i = f_i / Σf_j (Section 6.3).
func fairSchedule(pl model.Platform, apps []model.Application) (*Schedule, error) {
	n := float64(len(apps))
	var fsum solve.Kahan
	for _, a := range apps {
		fsum.Add(a.AccessFreq)
	}
	total := fsum.Sum()
	asg := make([]Assignment, len(apps))
	for i, a := range apps {
		x := 0.0
		if total > 0 {
			x = a.AccessFreq / total
		}
		asg[i] = Assignment{Processors: pl.Processors / n, CacheShare: x}
	}
	s := &Schedule{Assignments: asg, Makespan: maxFinish(pl, apps, asg)}
	return s, nil
}

// randomPartSchedule: uniformly random membership, closed-form shares on
// the members, equalized processors (Section 6.3).
func randomPartSchedule(sc *scratch, pl model.Platform, apps []model.Application, rng *solve.RNG) (*Schedule, error) {
	r := requireRNG(rng)
	members := growBool(sc.members, len(apps))
	sc.members = members
	for i := range members {
		members[i] = r.Intn(2) == 1
	}
	if err := sc.part.Reset(pl, apps, members); err != nil {
		return nil, err
	}
	sc.shares = sc.part.SharesInto(sc.shares)
	return sharesScheduleWith(sc, pl, apps, sc.shares)
}

// allProcCacheSchedule: applications run one after another, each on the
// whole machine with the whole cache.
func allProcCacheSchedule(pl model.Platform, apps []model.Application) (*Schedule, error) {
	asg := make([]Assignment, len(apps))
	var total solve.Kahan
	for i, a := range apps {
		asg[i] = Assignment{Processors: pl.Processors, CacheShare: 1}
		total.Add(a.Exe(pl, pl.Processors, 1))
	}
	return &Schedule{Assignments: asg, Makespan: total.Sum(), Sequential: true}, nil
}

// SortedByRatio returns application indices sorted by increasing
// dominance ratio, a convenience for analyses and tests.
func SortedByRatio(pl model.Platform, apps []model.Application) []int {
	idx := make([]int, len(apps))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return apps[idx[a]].DominanceRatio(pl) < apps[idx[b]].DominanceRatio(pl)
	})
	return idx
}
