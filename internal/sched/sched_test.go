package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/solve"
	"repro/internal/workload"
)

func refPlatform() model.Platform { return model.TaihuLight() }

func npbApps(seq float64) []model.Application {
	apps := workload.NPB()
	for i := range apps {
		apps[i].SeqFraction = seq
	}
	return apps
}

func synthApps(seed uint64, n int, seq float64) []model.Application {
	apps, err := workload.Generate(workload.Config{
		Generator: workload.GenNPBSynth, N: n, Seq: seq, SeqFixed: true,
	}, solve.NewRNG(seed))
	if err != nil {
		panic(err)
	}
	return apps
}

func TestHeuristicStringRoundTrip(t *testing.T) {
	for _, h := range ExtendedHeuristics {
		got, err := ParseHeuristic(h.String())
		if err != nil || got != h {
			t.Fatalf("round trip failed for %v: %v, %v", h, got, err)
		}
	}
	if _, err := ParseHeuristic("NoSuch"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(Heuristics) != 10 {
		t.Fatalf("the paper defines 10 policies, Heuristics has %d", len(Heuristics))
	}
	if len(ExtendedHeuristics) != 12 {
		t.Fatalf("ExtendedHeuristics has %d entries", len(ExtendedHeuristics))
	}
}

func TestExtendedHeuristicsProduceValidSchedules(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(71, 20, 0.06)
	for _, h := range []Heuristic{SharedCache, LocalSearch} {
		s, err := h.Schedule(pl, apps, solve.NewRNG(1))
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if err := s.Validate(pl, apps); err != nil {
			t.Fatalf("%v: %v", h, err)
		}
	}
}

func TestAllHeuristicsProduceValidSchedules(t *testing.T) {
	pl := refPlatform()
	for _, seq := range []float64{0, 0.05, 0.15} {
		apps := synthApps(11, 40, seq)
		for _, h := range Heuristics {
			s, err := h.Schedule(pl, apps, solve.NewRNG(1))
			if err != nil {
				t.Fatalf("%v (seq=%g): %v", h, seq, err)
			}
			if err := s.Validate(pl, apps); err != nil {
				t.Fatalf("%v (seq=%g): %v", h, seq, err)
			}
			if !(s.Makespan > 0) || math.IsInf(s.Makespan, 0) || math.IsNaN(s.Makespan) {
				t.Fatalf("%v: makespan %v", h, s.Makespan)
			}
		}
	}
}

func TestScheduleRejectsInvalidInput(t *testing.T) {
	pl := refPlatform()
	if _, err := DominantMinRatio.Schedule(pl, nil, nil); err == nil {
		t.Fatal("empty set accepted")
	}
	bad := npbApps(0)
	bad[0].Work = -1
	if _, err := Fair.Schedule(pl, bad, nil); err == nil {
		t.Fatal("invalid application accepted")
	}
}

func TestLemma2Processors(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0)
	shares := []float64{0.1, 0.2, 0.3, 0.2, 0.1, 0.1}
	procs, K := ProcessorsLemma2(pl, apps, shares)
	// Budget exactly consumed.
	if s := solve.Sum(procs); math.Abs(s-pl.Processors) > 1e-9*pl.Processors {
		t.Fatalf("processor sum %v, want %v", s, pl.Processors)
	}
	// All finish at K.
	for i, a := range apps {
		e := a.Exe(pl, procs[i], shares[i])
		if math.Abs(e-K) > 1e-9*K {
			t.Fatalf("app %d finishes at %v, not %v", i, e, K)
		}
	}
}

func TestEqualizeAmdahlEqualFinish(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0.08)
	shares := []float64{0.3, 0.2, 0.1, 0.2, 0.1, 0.1}
	procs, K, err := EqualizeAmdahl(pl, apps, shares)
	if err != nil {
		t.Fatal(err)
	}
	if s := solve.Sum(procs); s > pl.Processors*(1+1e-9) {
		t.Fatalf("processor sum %v exceeds budget", s)
	}
	for i, a := range apps {
		e := a.Exe(pl, procs[i], shares[i])
		if math.Abs(e-K) > 1e-6*K {
			t.Fatalf("app %d finishes at %v, not K=%v", i, e, K)
		}
	}
}

func TestEqualizeAmdahlPerfectlyParallelDelegates(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0)
	shares := make([]float64, len(apps))
	procs, K, err := EqualizeAmdahl(pl, apps, shares)
	if err != nil {
		t.Fatal(err)
	}
	wantProcs, wantK := ProcessorsLemma2(pl, apps, shares)
	if math.Abs(K-wantK) > 1e-12*wantK {
		t.Fatalf("K %v, want %v", K, wantK)
	}
	for i := range procs {
		if math.Abs(procs[i]-wantProcs[i]) > 1e-9*wantProcs[i] {
			t.Fatalf("procs[%d] %v, want %v", i, procs[i], wantProcs[i])
		}
	}
}

func TestEqualizeMoreAppsThanProcessors(t *testing.T) {
	pl := refPlatform()
	pl.Processors = 4
	apps := synthApps(3, 16, 0.1) // n >> p
	shares := make([]float64, len(apps))
	procs, K, err := EqualizeAmdahl(pl, apps, shares)
	if err != nil {
		t.Fatal(err)
	}
	if s := solve.Sum(procs); s > pl.Processors*(1+1e-9) {
		t.Fatalf("sum %v exceeds %v", s, pl.Processors)
	}
	for i, a := range apps {
		e := a.Exe(pl, procs[i], shares[i])
		if math.Abs(e-K) > 1e-6*K {
			t.Fatalf("app %d: %v vs K=%v", i, e, K)
		}
	}
}

func TestFairFormulas(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0.05)
	s, err := Fair.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	var fsum float64
	for _, a := range apps {
		fsum += a.AccessFreq
	}
	for i, a := range apps {
		if got, want := s.Assignments[i].Processors, pl.Processors/float64(len(apps)); math.Abs(got-want) > 1e-12 {
			t.Fatalf("fair procs[%d] = %v, want %v", i, got, want)
		}
		if got, want := s.Assignments[i].CacheShare, a.AccessFreq/fsum; math.Abs(got-want) > 1e-12 {
			t.Fatalf("fair cache[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestZeroCacheGivesNoCacheAndEqualFinish(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0.05)
	s, err := ZeroCache.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	ft := s.FinishTimes(pl, apps)
	for i := range apps {
		if s.Assignments[i].CacheShare != 0 {
			t.Fatalf("ZeroCache allotted cache to app %d", i)
		}
		if math.Abs(ft[i]-s.Makespan) > 1e-6*s.Makespan {
			t.Fatalf("ZeroCache app %d finishes at %v, makespan %v", i, ft[i], s.Makespan)
		}
	}
}

func TestAllProcCacheSequentialAccumulation(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0.05)
	s, err := AllProcCache.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Sequential {
		t.Fatal("AllProcCache must be sequential")
	}
	var want float64
	for _, a := range apps {
		want += a.Exe(pl, pl.Processors, 1)
	}
	if math.Abs(s.Makespan-want) > 1e-9*want {
		t.Fatalf("makespan %v, want sum of runs %v", s.Makespan, want)
	}
	ft := s.FinishTimes(pl, apps)
	for i := 1; i < len(ft); i++ {
		if ft[i] <= ft[i-1] {
			t.Fatalf("sequential finish times not increasing: %v", ft)
		}
	}
}

func TestDominantScheduleEqualFinishTimes(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(5, 24, 0.07)
	s, err := DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	ft := s.FinishTimes(pl, apps)
	for i, f := range ft {
		if math.Abs(f-s.Makespan) > 1e-6*s.Makespan {
			t.Fatalf("app %d finishes at %v, makespan %v (Lemma 1 violated)", i, f, s.Makespan)
		}
	}
}

func TestDominantBeatsNaiveBaselinesAtScale(t *testing.T) {
	// Fig. 3's headline: with many applications, DominantMinRatio beats
	// Fair and AllProcCache clearly.
	pl := refPlatform()
	apps := synthApps(8, 128, 0.08)
	get := func(h Heuristic) float64 {
		s, err := h.Schedule(pl, apps, solve.NewRNG(2))
		if err != nil {
			t.Fatal(err)
		}
		return s.Makespan
	}
	dmr := get(DominantMinRatio)
	if fair := get(Fair); dmr > 0.8*fair {
		t.Fatalf("DMR %v not clearly better than Fair %v", dmr, fair)
	}
	if apc := get(AllProcCache); dmr > 0.3*apc {
		t.Fatalf("DMR %v not clearly better than AllProcCache %v", dmr, apc)
	}
	if zc := get(ZeroCache); dmr > zc*(1+1e-9) {
		t.Fatalf("DMR %v worse than ZeroCache %v", dmr, zc)
	}
}

func TestRandomizedHeuristicsDeterministicPerSeed(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(9, 32, 0.05)
	for _, h := range []Heuristic{DominantRandom, DominantRevRandom, RandomPart} {
		a, err := h.Schedule(pl, apps, solve.NewRNG(123))
		if err != nil {
			t.Fatal(err)
		}
		b, err := h.Schedule(pl, apps, solve.NewRNG(123))
		if err != nil {
			t.Fatal(err)
		}
		if a.Makespan != b.Makespan {
			t.Fatalf("%v not deterministic for a fixed seed: %v vs %v", h, a.Makespan, b.Makespan)
		}
	}
}

func TestNilRNGAccepted(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0)
	for _, h := range Heuristics {
		if _, err := h.Schedule(pl, apps, nil); err != nil {
			t.Fatalf("%v with nil rng: %v", h, err)
		}
	}
}

func TestExactSubsetSmall(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0)
	s, members, err := ExactSubset(pl, apps)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(pl, apps); err != nil {
		t.Fatal(err)
	}
	if len(members) != len(apps) {
		t.Fatalf("membership length %d", len(members))
	}
}

func TestExactSubsetRejectsLargeN(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(1, 25, 0)
	if _, _, err := ExactSubset(pl, apps); err == nil {
		t.Fatal("n=25 accepted")
	}
}

// The key validation: on perfectly parallel instances the dominant
// heuristics must match the exact optimum (the theory says dominant
// partitions contain the optimum, and on these instances the full set is
// dominant) or at worst be very close.
func TestHeuristicsNearExactOptimum(t *testing.T) {
	pl := refPlatform()
	for seed := uint64(0); seed < 12; seed++ {
		apps := synthApps(seed, 8, 0)
		exact, _, err := ExactSubset(pl, apps)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range DominantHeuristics {
			s, err := h.Schedule(pl, apps, solve.NewRNG(seed))
			if err != nil {
				t.Fatal(err)
			}
			if s.Makespan < exact.Makespan*(1-1e-9) {
				t.Fatalf("seed %d: %v beat the exact optimum (%v < %v)", seed, h, s.Makespan, exact.Makespan)
			}
			if s.Makespan > exact.Makespan*1.02 {
				t.Fatalf("seed %d: %v is %v, exact %v (> 2%% off)", seed, h, s.Makespan, exact.Makespan)
			}
		}
	}
}

// Under a small cache with large miss rates, partitions matter: the exact
// optimum still lower-bounds every heuristic.
func TestExactLowerBoundsHeuristicsSmallCache(t *testing.T) {
	pl := refPlatform()
	pl.CacheSize = 1e8
	for seed := uint64(0); seed < 6; seed++ {
		apps := synthApps(seed, 8, 0)
		for i := range apps {
			apps[i].RefMissRate = 0.3 + 0.1*float64(i%3)
		}
		exact, _, err := ExactSubset(pl, apps)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range DominantHeuristics {
			s, err := h.Schedule(pl, apps, solve.NewRNG(seed))
			if err != nil {
				t.Fatal(err)
			}
			if s.Makespan < exact.Makespan*(1-1e-9) {
				t.Fatalf("seed %d: %v beat exact (%v < %v)", seed, h, s.Makespan, exact.Makespan)
			}
		}
	}
}

func TestValidateCatchesBrokenSchedules(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0)
	s, err := DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	tamper := func(mut func(*Schedule)) *Schedule {
		c := &Schedule{Assignments: append([]Assignment(nil), s.Assignments...), Makespan: s.Makespan}
		mut(c)
		return c
	}
	if err := tamper(func(c *Schedule) { c.Assignments[0].Processors = -1 }).Validate(pl, apps); err == nil {
		t.Fatal("negative processors accepted")
	}
	if err := tamper(func(c *Schedule) { c.Assignments[0].CacheShare = 1.5 }).Validate(pl, apps); err == nil {
		t.Fatal("cache share above 1 accepted")
	}
	if err := tamper(func(c *Schedule) { c.Assignments[0].Processors = pl.Processors * 2 }).Validate(pl, apps); err == nil {
		t.Fatal("processor oversubscription accepted")
	}
	if err := tamper(func(c *Schedule) { c.Makespan *= 2 }).Validate(pl, apps); err == nil {
		t.Fatal("wrong makespan accepted")
	}
	if err := tamper(func(c *Schedule) { c.Assignments = c.Assignments[:2] }).Validate(pl, apps); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// Property: every heuristic yields a feasible schedule on random Amdahl
// workloads of random size.
func TestSchedulesFeasibleProperty(t *testing.T) {
	pl := refPlatform()
	f := func(seed uint64, hIdx uint8) bool {
		h := Heuristics[int(hIdx)%len(Heuristics)]
		n := 1 + int(seed%60)
		apps := synthApps(seed, n, 0.01+0.1*float64(seed%10)/10)
		s, err := h.Schedule(pl, apps, solve.NewRNG(seed))
		if err != nil {
			return false
		}
		return s.Validate(pl, apps) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: giving the machine more processors never hurts any
// concurrent heuristic (monotonicity of the makespan in p).
func TestMakespanMonotoneInProcessors(t *testing.T) {
	apps := synthApps(21, 24, 0.06)
	for _, h := range []Heuristic{DominantMinRatio, Fair, ZeroCache} {
		prev := math.Inf(1)
		for _, p := range []float64{16, 32, 64, 128, 256} {
			pl := refPlatform()
			pl.Processors = p
			s, err := h.Schedule(pl, apps, nil)
			if err != nil {
				t.Fatal(err)
			}
			if s.Makespan > prev*(1+1e-9) {
				t.Fatalf("%v: makespan rose from %v to %v when p grew to %g", h, prev, s.Makespan, p)
			}
			prev = s.Makespan
		}
	}
}

func TestSortedByRatio(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0)
	idx := SortedByRatio(pl, apps)
	for i := 1; i < len(idx); i++ {
		if apps[idx[i-1]].DominanceRatio(pl) > apps[idx[i]].DominanceRatio(pl) {
			t.Fatal("not sorted by ratio")
		}
	}
}
