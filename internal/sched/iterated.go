package sched

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/solve"
)

// This file implements the extension the paper's conclusion names as
// future work: "extending the heuristics that account for the speedup
// profile for both processor and cache allocation". The Section 5
// heuristics pick cache shares as if applications were perfectly
// parallel, then fit processors afterwards; here both decisions see the
// true Amdahl profiles.
//
// The key subproblem is solved exactly: for a FIXED processor assignment,
// the cache split minimizing the makespan is computable by binary search.
// With g_i = s_i + (1-s_i)/p_i, application i's completion time is
//
//	T_i(x_i) = g_i·w_i·(1 + f_i·(ls + ll·min(1, d_i/x_i^α)))
//	         = A_i + M_i·min(1, d_i/x_i^α),
//
// where A_i = g_i·w_i·(1 + f_i·ls) and M_i = g_i·w_i·f_i·ll. T_i is
// non-increasing in x_i, so "makespan ≤ K" translates to a minimal
// required share x_i(K) per application, and feasibility Σ_i x_i(K) ≤ 1
// is monotone in K — a textbook bisection.

// requiredShare returns the minimal cache fraction letting the
// application finish by K under A, M, d (see above) with at most maxX
// usable fraction (the footprint cap a_i/Cs), or +Inf when even maxX
// cannot achieve K, or 0 when no cache is needed (miss = 1 already meets
// the target).
func requiredShare(K, A, M, d, alpha, maxX float64) float64 {
	if A+M <= K {
		return 0 // the full-miss cost already meets K
	}
	if K <= A {
		return math.Inf(1) // not achievable even with a zero miss rate
	}
	target := (K - A) / M // needed miss rate, in (0, 1)
	// d/x^α ≤ target  ⇔  x ≥ (d/target)^{1/α}.
	x := math.Pow(d/target, 1/alpha)
	if x > maxX {
		return math.Inf(1)
	}
	return x
}

// OptimalSharesForProcs computes the cache partition minimizing the
// makespan when the processor assignment procs is held fixed. It returns
// the shares and the achieved makespan. The solution is exact up to the
// bisection tolerance (1e-12 relative).
func OptimalSharesForProcs(pl model.Platform, apps []model.Application, procs []float64) ([]float64, float64, error) {
	n := len(apps)
	if n == 0 || len(procs) != n {
		return nil, 0, fmt.Errorf("sched: %d processor counts for %d applications", len(procs), n)
	}
	A := make([]float64, n)
	M := make([]float64, n)
	d := make([]float64, n)
	maxX := make([]float64, n)
	for i, a := range apps {
		if procs[i] <= 0 {
			return nil, 0, fmt.Errorf("sched: application %d has no processors", i)
		}
		g := a.Flops(procs[i])
		A[i] = g * (1 + a.AccessFreq*pl.LatencyS)
		M[i] = g * a.AccessFreq * pl.LatencyL
		d[i] = a.D(pl)
		maxX[i] = a.MaxUsefulFraction(pl)
	}
	need := func(K float64) float64 {
		var sum solve.Kahan
		for i := 0; i < n; i++ {
			x := requiredShare(K, A[i], M[i], d[i], pl.Alpha, maxX[i])
			if math.IsInf(x, 1) {
				return math.Inf(1)
			}
			sum.Add(x)
		}
		return sum.Sum()
	}
	// Bracket: K_hi = worst no-cache time (always feasible with x=0),
	// K_lo = the slowest application granted its whole useful fraction
	// (no schedule with these processors can beat it).
	var hi, lo float64
	for i, a := range apps {
		hi = math.Max(hi, A[i]+M[i])
		lo = math.Max(lo, a.Flops(procs[i])*a.CostPerOp(pl, maxX[i]))
	}
	if need(lo) <= 1 {
		// Even the lower bound is feasible (e.g. a single application).
		shares := sharesAt(lo, A, M, d, pl.Alpha, maxX)
		return shares, lo, nil
	}
	K, err := solve.Bisect(func(k float64) float64 {
		nd := need(k)
		if math.IsInf(nd, 1) {
			return math.Inf(1)
		}
		return nd - 1
	}, lo, hi, 1e-12)
	if err != nil && err != solve.ErrNoConverge {
		return nil, 0, fmt.Errorf("sched: share optimization failed: %w", err)
	}
	// Round K up a hair so the shares are feasible despite float error.
	K *= 1 + 1e-12
	shares := sharesAt(K, A, M, d, pl.Alpha, maxX)
	// Normalize any residual overshoot.
	if s := solve.Sum(shares); s > 1 {
		for i := range shares {
			shares[i] /= s
		}
	}
	return shares, K, nil
}

// sharesAt materializes the minimal-share vector for makespan target K.
func sharesAt(K float64, A, M, d []float64, alpha float64, maxX []float64) []float64 {
	shares := make([]float64, len(A))
	for i := range shares {
		x := requiredShare(K, A[i], M[i], d[i], alpha, maxX[i])
		if math.IsInf(x, 1) {
			x = maxX[i]
		}
		shares[i] = x
	}
	return shares
}

// A structural note on why plain alternation cannot refine the Section 5
// heuristics: any equal-finish schedule that spends the whole processor
// budget and the whole cache is a fixed point of the
// shares-for-processors / processors-for-shares alternation. With every
// completion time equal to K and T_i strictly decreasing in x_i, the
// minimal share achieving K is exactly the current x_i, and K cannot
// drop because Σ x_i(K-ε) > 1. Improvement therefore requires changing
// the *membership* — which applications receive cache at all — a
// combinatorial move. LocalSearchSchedule performs exactly that move,
// evaluating every candidate membership under the true Amdahl profiles
// (the Section 5 heuristics choose membership on a perfectly parallel
// proxy, ignoring s_i).

// LocalSearchOptions tunes LocalSearchSchedule.
type LocalSearchOptions struct {
	// MaxPasses bounds full sweeps over the applications (default: no
	// bound other than convergence; each pass strictly improves the
	// makespan, so at most 64 passes are attempted as a safety net).
	MaxPasses int
	// Tolerance is the relative improvement below which a toggle is not
	// taken (default 1e-12).
	Tolerance float64
}

func (o LocalSearchOptions) maxPasses() int {
	if o.MaxPasses <= 0 {
		return 64
	}
	return o.MaxPasses
}

func (o LocalSearchOptions) tol() float64 {
	if o.Tolerance <= 0 {
		return 1e-12
	}
	return o.Tolerance
}

// LocalSearchSchedule is the speedup-profile-aware extension the paper's
// conclusion calls for: starting from the DominantMinRatio membership, it
// hill-climbs over cache-partition memberships by single toggles
// (admit/evict one application), evaluating each candidate with the
// closed-form Lemma 4 shares followed by the Amdahl completion-time
// equalizer — i.e. the true profiles, not the perfectly parallel proxy.
// The returned schedule is never worse than DominantMinRatio's and can
// strictly improve it when sequential fractions are heterogeneous.
func LocalSearchSchedule(pl model.Platform, apps []model.Application, opts LocalSearchOptions, rng *solve.RNG) (*Schedule, error) {
	return LocalSearchScheduleContext(context.Background(), pl, apps, opts, rng)
}

// LocalSearchScheduleContext is LocalSearchSchedule under a context:
// the hill climb polls ctx before every candidate toggle and returns
// ctx.Err() promptly once cancelled, leaving the pooled scratch in a
// reusable state.
func LocalSearchScheduleContext(ctx context.Context, pl model.Platform, apps []model.Application, opts LocalSearchOptions, rng *solve.RNG) (*Schedule, error) {
	if err := model.ValidateAll(pl, apps); err != nil {
		return nil, err
	}
	sc := getScratch()
	defer putScratch(sc)
	return localSearchSchedule(ctx, sc, pl, apps, opts, rng)
}

// localSearchMakespan evaluates one candidate membership: Lemma 4 shares
// on the membership, Amdahl equalization, max finish time. It performs
// the exact arithmetic of building the candidate Schedule without
// materializing it, so the hill climb allocates nothing per toggle.
func localSearchMakespan(sc *scratch, pl model.Platform, apps []model.Application, m []bool) (float64, error) {
	if err := sc.part.Reset(pl, apps, m); err != nil {
		return 0, err
	}
	sc.shares = sc.part.SharesInto(sc.shares)
	procs, _, err := sc.eq.equalize(pl, apps, sc.shares)
	if err != nil {
		return 0, err
	}
	var span float64
	for i, a := range apps {
		span = math.Max(span, a.Exe(pl, procs[i], sc.shares[i]))
	}
	return span, nil
}

// localSearchSchedule is the scratch-backed hill climb. Candidate
// memberships are scored by localSearchMakespan; only the final winner
// is materialized as a Schedule (bit-identical to scoring, since both
// run the same deterministic arithmetic).
func localSearchSchedule(ctx context.Context, sc *scratch, pl model.Platform, apps []model.Application, opts LocalSearchOptions, rng *solve.RNG) (*Schedule, error) {
	warm, err := dominantSchedule(sc, pl, apps, DominantMinRatio, rng)
	if err != nil {
		return nil, err
	}
	// Recover the warm membership from the shares.
	members := growBool(sc.members, len(apps))
	sc.members = members
	for i, a := range warm.Assignments {
		members[i] = a.CacheShare > 0
	}
	bestSpan := warm.Makespan
	bestIsWarm := true
	bestM := growBool(sc.bestM, len(apps))
	sc.bestM = bestM
	// Second warm-start candidate: the best ratio-sorted prefix, which
	// scans all n+1 nested memberships the dominance theory singles out.
	if err := core.BestRatioPrefixInto(&sc.prefix, pl, apps); err == nil {
		// The prefix partition already holds the candidate membership, so
		// score its shares directly.
		prefM := sc.prefix.MembersInto(nil)
		if span, err := localSearchMakespan(sc, pl, apps, prefM); err == nil && span < bestSpan {
			bestSpan = span
			bestIsWarm = false
			copy(members, prefM)
			copy(bestM, prefM)
		}
	}
	for pass := 0; pass < opts.maxPasses(); pass++ {
		improved := false
		for i := range apps {
			// The climb is the only unbounded-iteration loop in the
			// package; poll the context per candidate toggle so
			// cancellation returns within one equalizer solve.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			members[i] = !members[i]
			span, err := localSearchMakespan(sc, pl, apps, members)
			if err != nil {
				// An invalid toggle (e.g. numerical corner) is simply
				// not taken.
				members[i] = !members[i]
				continue
			}
			if span < bestSpan*(1-opts.tol()) {
				bestSpan = span
				bestIsWarm = false
				copy(bestM, members)
				improved = true
			} else {
				members[i] = !members[i] // revert
			}
		}
		if !improved {
			break
		}
	}
	if bestIsWarm {
		return warm, nil
	}
	if err := sc.part.Reset(pl, apps, bestM); err != nil {
		return nil, err
	}
	sc.shares = sc.part.SharesInto(sc.shares)
	return sharesScheduleWith(sc, pl, apps, sc.shares)
}
