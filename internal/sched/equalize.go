package sched

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/solve"
)

// equalizeTol is the relative bisection tolerance on the makespan K.
const equalizeTol = 1e-12

// equalizer is the reusable state of the completion-time equalizer: the
// per-application sequential-time coefficients, the output processor
// vector, and — crucially — the bisection objective as a persistent
// closure. The closure reads the equalizer's fields instead of
// capturing per-call locals, so it is allocated once per pooled scratch
// and every subsequent equalization is allocation-free.
type equalizer struct {
	apps   []model.Application
	c      []float64 // c_i = w_i · CostPerOp(x_i)
	seq    []float64 // Lemma 2 sequential times
	procs  []float64 // output processor vector (scratch-owned)
	demand func(float64) float64
}

// demandAt evaluates Σ_i (1-s_i)/(K/c_i - s_i), the processor demand of
// makespan K, +Inf when K is at or below some application's floor.
func (eq *equalizer) demandAt(K float64) float64 {
	var sum solve.Kahan
	for i, a := range eq.apps {
		s := a.SeqFraction
		den := K/eq.c[i] - s
		if den <= 0 {
			return math.Inf(1)
		}
		sum.Add((1 - s) / den)
	}
	return sum.Sum()
}

// demandFn returns the persistent bisection objective, creating it on
// first use (one allocation per equalizer lifetime).
func (eq *equalizer) demandFn() func(float64) float64 {
	if eq.demand == nil {
		eq.demand = eq.demandAt
	}
	return eq.demand
}

// lemma2 assigns processors per Lemma 2 for perfectly parallel
// applications into the equalizer's scratch vectors.
func (eq *equalizer) lemma2(pl model.Platform, apps []model.Application, shares []float64) ([]float64, float64) {
	eq.seq = growF64(eq.seq, len(apps))
	var total solve.Kahan
	for i, a := range apps {
		eq.seq[i] = a.ExeSeq(pl, shares[i])
		total.Add(eq.seq[i])
	}
	sum := total.Sum()
	procs := growF64(eq.procs, len(apps))
	eq.procs = procs
	if sum == 0 {
		for i := range procs {
			procs[i] = 0
		}
		return procs, 0
	}
	for i := range procs {
		procs[i] = pl.Processors * eq.seq[i] / sum
	}
	return procs, sum / pl.Processors
}

// equalize finds the common completion time K and processor counts p_i
// for general Amdahl applications with fixed cache shares (Section 5).
// The returned processor slice is owned by the equalizer and valid
// until its next call; callers copy what they keep.
func (eq *equalizer) equalize(pl model.Platform, apps []model.Application, shares []float64) ([]float64, float64, error) {
	n := len(apps)
	if n == 0 {
		return nil, 0, ErrInfeasible
	}
	eq.c = growF64(eq.c, n)
	allSeqZero := true
	for i, a := range apps {
		eq.c[i] = a.Work * a.CostPerOp(pl, shares[i])
		if a.SeqFraction != 0 {
			allSeqZero = false
		}
	}
	if allSeqZero {
		procs, K := eq.lemma2(pl, apps, shares)
		return procs, K, nil
	}

	eq.apps = apps
	demand := eq.demandFn()

	var lo, hi float64
	for i, a := range apps {
		lo = math.Max(lo, eq.c[i]*(a.SeqFraction+(1-a.SeqFraction)/pl.Processors))
		hi = math.Max(hi, eq.c[i])
	}
	if demand(hi) > pl.Processors {
		// More total single-processor demand than processors: stretch
		// the bracket until feasible (happens when n > p).
		for demand(hi) > pl.Processors {
			hi *= 2
			if math.IsInf(hi, 1) {
				return nil, 0, fmt.Errorf("sched: equalizer bracket diverged")
			}
		}
	}
	if lo >= hi {
		hi = lo * (1 + 1e-9)
	}
	K, err := solve.BisectDecreasing(demand, pl.Processors, lo, hi, equalizeTol)
	if err != nil && err != solve.ErrNoConverge {
		// demand(lo) may already be below p when the bracket's lower
		// end is loose; the makespan is then lo itself (the slowest
		// application pinned at full machine speed).
		if demand(lo) <= pl.Processors {
			K = lo
		} else {
			return nil, 0, fmt.Errorf("sched: equalizer failed: %w", err)
		}
	}
	procs := growF64(eq.procs, n)
	eq.procs = procs
	for i, a := range apps {
		s := a.SeqFraction
		den := K/eq.c[i] - s
		if den <= 0 {
			procs[i] = pl.Processors // degenerate: app pinned at K ≈ its own floor
			continue
		}
		procs[i] = (1 - s) / den
	}
	rescale(procs, pl.Processors)
	return procs, K, nil
}

// ProcessorsLemma2 assigns processors per Lemma 2 for perfectly parallel
// applications: p_i = p · Exe^seq_i(x_i) / Σ_j Exe^seq_j(x_j), which makes
// all applications finish simultaneously at (Σ_j Exe^seq_j(x_j))/p.
func ProcessorsLemma2(pl model.Platform, apps []model.Application, shares []float64) ([]float64, float64) {
	var eq equalizer
	procs, K := eq.lemma2(pl, apps, shares)
	out := make([]float64, len(procs))
	copy(out, procs)
	return out, K
}

// EqualizeAmdahl finds the common completion time K and processor counts
// p_i for general Amdahl applications with fixed cache shares (Section
// 5). Each application's execution time is (s_i + (1-s_i)/p_i)·c_i with
// c_i = w_i·CostPerOp(x_i); setting them all equal to K and using the
// full budget Σp_i = p gives
//
//	Σ_i (1-s_i) / (K/c_i - s_i) = p,
//
// whose left side is strictly decreasing in K, solved by bisection.
// The bracket is [K_lo, K_hi] with K_lo the finish time of the slowest
// app granted all p processors (no schedule can beat it) and K_hi the
// largest single-processor time (p_i = 1 is always feasible for n ≤ p).
//
// This is the allocating convenience wrapper; the heuristics run the
// same arithmetic through their pooled scratch equalizer.
func EqualizeAmdahl(pl model.Platform, apps []model.Application, shares []float64) ([]float64, float64, error) {
	var eq equalizer
	procs, K, err := eq.equalize(pl, apps, shares)
	if err != nil {
		return nil, 0, err
	}
	out := make([]float64, len(procs))
	copy(out, procs)
	return out, K, nil
}

// rescale scales procs down proportionally if their sum exceeds the
// budget (bisection slack), leaving feasibility exact.
func rescale(procs []float64, budget float64) {
	sum := solve.Sum(procs)
	if sum > budget {
		f := budget / sum
		for i := range procs {
			procs[i] *= f
		}
	}
}
