// Package sched turns the partition theory of internal/core into complete
// co-schedules: assignments {(p_i, x_i)} of rational processor counts and
// cache fractions to every application, for the six dominant-partition
// heuristics of Section 5 and the four baselines of Section 6
// (AllProcCache, Fair, ZeroCache, RandomPart).
//
// For perfectly parallel applications processors follow Lemma 2
// (proportional to sequential times). For general Amdahl applications the
// paper's binary-search equalizer is used: find the makespan K such that
// Σ_i (1-s_i)/(K/c_i - s_i) = p, then p_i = (1-s_i)/(K/c_i - s_i).
package sched

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/solve"
)

// Tolerance for resource-budget validation; schedules may overshoot the
// processor or cache budget by at most this relative amount (numerical
// slack from the equalizer's bisection).
const budgetTol = 1e-6

// Assignment is the share of the platform given to one application.
type Assignment struct {
	Processors float64 // p_i, rational
	CacheShare float64 // x_i ∈ [0, 1]
}

// Schedule is a complete solution to CoSchedCache: one assignment per
// application, in application order.
type Schedule struct {
	Assignments []Assignment
	// Makespan is the analytic completion time of the longest
	// application (all applications start at time zero).
	Makespan float64
	// Sequential reports whether the schedule runs applications one
	// after another (AllProcCache) instead of concurrently; finish
	// times then accumulate.
	Sequential bool
}

// ErrInfeasible is returned when no valid schedule exists for the inputs
// (e.g. zero applications).
var ErrInfeasible = errors.New("sched: no feasible schedule")

// FinishTimes returns each application's completion time under the
// schedule. For concurrent schedules this is Exe_i(p_i, x_i); for
// sequential ones it is the running sum of execution times.
func (s *Schedule) FinishTimes(pl model.Platform, apps []model.Application) []float64 {
	t := make([]float64, len(apps))
	var acc float64
	for i, a := range apps {
		e := a.Exe(pl, s.Assignments[i].Processors, s.Assignments[i].CacheShare)
		if s.Sequential {
			acc += e
			t[i] = acc
		} else {
			t[i] = e
		}
	}
	return t
}

// Validate checks structural soundness: a non-nil schedule, matching
// lengths, non-negative assignments, Σp_i ≤ p and Σx_i ≤ 1 (within
// tolerance), and for concurrent schedules that Makespan equals max
// finish time. Failures are *model.ValidationError values, so callers
// can inspect the offending field with errors.As.
func (s *Schedule) Validate(pl model.Platform, apps []model.Application) error {
	if s == nil {
		return &model.ValidationError{Field: "schedule", Reason: "schedule is nil"}
	}
	if len(s.Assignments) != len(apps) {
		return &model.ValidationError{
			Field: "schedule.assignments", Value: len(s.Assignments),
			Reason: fmt.Sprintf("%d assignments for %d applications", len(s.Assignments), len(apps)),
		}
	}
	var sumP, sumX solve.Kahan
	for i, asg := range s.Assignments {
		if asg.Processors < 0 || math.IsNaN(asg.Processors) {
			return &model.ValidationError{
				Field: fmt.Sprintf("schedule.assignments[%d].processors", i), Value: asg.Processors,
				Reason: "processor count must be finite and >= 0",
			}
		}
		if asg.CacheShare < 0 || asg.CacheShare > 1 || math.IsNaN(asg.CacheShare) {
			return &model.ValidationError{
				Field: fmt.Sprintf("schedule.assignments[%d].cacheShare", i), Value: asg.CacheShare,
				Reason: "cache share outside [0,1]",
			}
		}
		sumP.Add(asg.Processors)
		sumX.Add(asg.CacheShare)
	}
	if !s.Sequential {
		if sumP.Sum() > pl.Processors*(1+budgetTol) {
			return &model.ValidationError{
				Field: "schedule.assignments", Value: sumP.Sum(),
				Reason: fmt.Sprintf("processor budget exceeded: %v > %v", sumP.Sum(), pl.Processors),
			}
		}
		if sumX.Sum() > 1+budgetTol {
			return &model.ValidationError{
				Field: "schedule.assignments", Value: sumX.Sum(),
				Reason: fmt.Sprintf("cache budget exceeded: %v > 1", sumX.Sum()),
			}
		}
	}
	ft := s.FinishTimes(pl, apps)
	want := 0.0
	for _, t := range ft {
		want = math.Max(want, t)
	}
	if want > 0 && math.Abs(want-s.Makespan) > 1e-6*want {
		return fmt.Errorf("sched: recorded makespan %v differs from computed %v", s.Makespan, want)
	}
	return nil
}

// maxFinish recomputes the makespan from assignments for concurrent
// schedules.
func maxFinish(pl model.Platform, apps []model.Application, asg []Assignment) float64 {
	var m float64
	for i, a := range apps {
		m = math.Max(m, a.Exe(pl, asg[i].Processors, asg[i].CacheShare))
	}
	return m
}
