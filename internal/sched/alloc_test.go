package sched

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// Allocation-budget ceilings for one heuristic evaluation on the NPB
// workload. The steady state is 2 allocations (the returned Schedule
// and its assignment slice; LocalSearch adds a handful for its warm
// start and membership snapshot); the ceilings carry slack for pool
// repopulation after a GC so the tests guard against creep, not
// against the collector.
const (
	evalAllocBudget        = 8
	localSearchAllocBudget = 16
)

// TestScheduleAllocBudget pins the hot-path allocation ceiling of every
// extended heuristic: regressions that reintroduce per-evaluation
// buffer allocations fail here long before they show up in benchmark
// trend data.
func TestScheduleAllocBudget(t *testing.T) {
	pl := model.TaihuLight()
	apps := workload.NPB()
	rng := requireRNG(nil)
	for _, h := range ExtendedHeuristics {
		budget := float64(evalAllocBudget)
		if h == LocalSearch {
			budget = localSearchAllocBudget
		}
		t.Run(fmt.Sprint(h), func(t *testing.T) {
			// Warm the scratch pool so the measurement sees steady state.
			if _, err := h.Schedule(pl, apps, rng); err != nil {
				t.Fatal(err)
			}
			n := testing.AllocsPerRun(100, func() {
				if _, err := h.Schedule(pl, apps, rng); err != nil {
					t.Fatal(err)
				}
			})
			if n > budget {
				t.Errorf("%v.Schedule allocates %g times per evaluation, budget %g", h, n, budget)
			}
		})
	}
}

// TestEqualizerAllocBudget pins the scratch-backed equalizer itself: a
// pooled scratch must equalize with no allocations at all once its
// buffers are grown.
func TestEqualizerAllocBudget(t *testing.T) {
	pl := model.TaihuLight()
	apps := workload.NPB()
	for i := range apps {
		apps[i].SeqFraction = 0.05 // exercise the bisection path, not Lemma 2
	}
	shares := make([]float64, len(apps))
	for i := range shares {
		shares[i] = 1 / float64(len(apps))
	}
	var eq equalizer
	if _, _, err := eq.equalize(pl, apps, shares); err != nil {
		t.Fatal(err) // grow buffers and materialize the objective closure
	}
	n := testing.AllocsPerRun(100, func() {
		if _, _, err := eq.equalize(pl, apps, shares); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("warm equalizer allocates %g times per call, want 0", n)
	}
}
