package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/solve"
)

func TestOptimalSharesForProcsValidation(t *testing.T) {
	pl := refPlatform()
	apps := npbApps(0.05)
	if _, _, err := OptimalSharesForProcs(pl, apps, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	procs := make([]float64, len(apps))
	if _, _, err := OptimalSharesForProcs(pl, apps, procs); err == nil {
		t.Fatal("zero processors accepted")
	}
}

func TestOptimalSharesForProcsFeasibleAndTight(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(31, 12, 0.08)
	procs := make([]float64, len(apps))
	for i := range procs {
		procs[i] = pl.Processors / float64(len(apps))
	}
	shares, K, err := OptimalSharesForProcs(pl, apps, procs)
	if err != nil {
		t.Fatal(err)
	}
	if s := solve.Sum(shares); s > 1+1e-9 {
		t.Fatalf("shares sum %v", s)
	}
	// Every application meets the makespan K with its share.
	for i, a := range apps {
		if e := a.Exe(pl, procs[i], shares[i]); e > K*(1+1e-9) {
			t.Fatalf("app %d exceeds K: %v > %v", i, e, K)
		}
	}
}

func TestOptimalSharesBeatUniformSplit(t *testing.T) {
	pl := refPlatform()
	pl.CacheSize = 1e9 // small LLC so the cache actually matters
	apps := synthApps(32, 8, 0.05)
	for i := range apps {
		apps[i].RefMissRate = 0.2
	}
	procs := make([]float64, len(apps))
	for i := range procs {
		procs[i] = pl.Processors / float64(len(apps))
	}
	_, K, err := OptimalSharesForProcs(pl, apps, procs)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform cache split with the same processors.
	var uniform float64
	for i, a := range apps {
		uniform = math.Max(uniform, a.Exe(pl, procs[i], 1/float64(len(apps))))
	}
	if K > uniform*(1+1e-9) {
		t.Fatalf("optimal shares (%v) worse than uniform split (%v)", K, uniform)
	}
}

// Property: the optimized makespan for fixed processors is a lower bound
// on the makespan of ANY share vector evaluated with those processors.
func TestOptimalSharesAreOptimalProperty(t *testing.T) {
	pl := refPlatform()
	pl.CacheSize = 1e9
	f := func(seed uint64) bool {
		r := solve.NewRNG(seed)
		apps := synthApps(seed, 6, 0.05)
		for i := range apps {
			apps[i].RefMissRate = 0.1 + 0.3*r.Float64()
		}
		procs := make([]float64, len(apps))
		rest := pl.Processors
		for i := range procs {
			procs[i] = 1 + r.Float64()*rest/float64(len(apps))
			rest -= procs[i] - 1
		}
		_, K, err := OptimalSharesForProcs(pl, apps, procs)
		if err != nil {
			return false
		}
		// Random feasible share vector.
		alt := make([]float64, len(apps))
		var sum float64
		for i := range alt {
			alt[i] = r.Float64()
			sum += alt[i]
		}
		for i := range alt {
			alt[i] /= sum
		}
		var altK float64
		for i, a := range apps {
			altK = math.Max(altK, a.Exe(pl, procs[i], alt[i]))
		}
		return K <= altK*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalSearchNeverWorseThanWarmStart(t *testing.T) {
	pl := refPlatform()
	pl.CacheSize = 1e9
	for seed := uint64(0); seed < 10; seed++ {
		apps := synthApps(seed, 16, 0.1)
		for i := range apps {
			apps[i].RefMissRate = 0.15
		}
		warm, err := DominantMinRatio.Schedule(pl, apps, nil)
		if err != nil {
			t.Fatal(err)
		}
		ls, err := LocalSearchSchedule(pl, apps, LocalSearchOptions{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ls.Validate(pl, apps); err != nil {
			t.Fatal(err)
		}
		if ls.Makespan > warm.Makespan*(1+1e-9) {
			t.Fatalf("seed %d: local search (%v) worse than warm start (%v)", seed, ls.Makespan, warm.Makespan)
		}
	}
}

func TestLocalSearchImprovesHeterogeneousSeqFractions(t *testing.T) {
	// A tight cache with strongly heterogeneous sequential fractions:
	// the perfectly parallel proxy misjudges who should be in the
	// cache partition, so membership toggles find strict improvements.
	pl := refPlatform()
	pl.CacheSize = 2e8
	apps := synthApps(77, 12, 0)
	for i := range apps {
		apps[i].RefMissRate = 0.4
		apps[i].SeqFraction = 0.001 + 0.149*float64(i)/11
	}
	warm, err := DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := LocalSearchSchedule(pl, apps, LocalSearchOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Makespan >= warm.Makespan {
		t.Fatalf("local search (%v) did not improve on warm start (%v)", ls.Makespan, warm.Makespan)
	}
}

func TestLocalSearchMatchesExactOnSmallPerfectlyParallel(t *testing.T) {
	pl := refPlatform()
	pl.CacheSize = 1e8
	apps := synthApps(55, 8, 0)
	for i := range apps {
		apps[i].RefMissRate = 0.3
	}
	exact, _, err := ExactSubset(pl, apps)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := LocalSearchSchedule(pl, apps, LocalSearchOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Makespan < exact.Makespan*(1-1e-9) {
		t.Fatalf("local search beat exact: %v < %v", ls.Makespan, exact.Makespan)
	}
	if ls.Makespan > exact.Makespan*1.01 {
		t.Fatalf("local search far from exact: %v vs %v", ls.Makespan, exact.Makespan)
	}
}

func TestLocalSearchOptionsDefaults(t *testing.T) {
	var o LocalSearchOptions
	if o.maxPasses() != 64 || o.tol() != 1e-12 {
		t.Fatalf("defaults drifted: %d %v", o.maxPasses(), o.tol())
	}
}

func TestRequiredShare(t *testing.T) {
	// A=10, M=10, d=0.04, α=0.5, maxX=1.
	if x := requiredShare(25, 10, 10, 0.04, 0.5, 1); x != 0 {
		t.Fatalf("K above A+M should need no cache, got %v", x)
	}
	if x := requiredShare(9, 10, 10, 0.04, 0.5, 1); !math.IsInf(x, 1) {
		t.Fatalf("K below A should be infeasible, got %v", x)
	}
	// target = (15-10)/10 = 0.5 → x = (0.04/0.5)² = 0.0064.
	if x := requiredShare(15, 10, 10, 0.04, 0.5, 1); math.Abs(x-0.0064) > 1e-12 {
		t.Fatalf("x = %v, want 0.0064", x)
	}
	// Footprint cap makes it infeasible.
	if x := requiredShare(15, 10, 10, 0.04, 0.5, 0.001); !math.IsInf(x, 1) {
		t.Fatalf("cap should make K infeasible, got %v", x)
	}
}

func TestRoundProcessorsBasics(t *testing.T) {
	pl := refPlatform()
	apps := synthApps(41, 24, 0.06)
	s, err := DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := RoundProcessors(pl, apps, s)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, c := range ri.Processors {
		if c < 1 {
			t.Fatalf("app %d got %d processors", i, c)
		}
		total += c
	}
	if total > int(pl.Processors) {
		t.Fatalf("budget exceeded: %d", total)
	}
	if ri.Degradation < 1-1e-9 {
		t.Fatalf("integer rounding cannot beat the equal-finish rational optimum: %v", ri.Degradation)
	}
	if ri.Degradation > 2.5 {
		t.Fatalf("rounding degradation suspiciously large: %v", ri.Degradation)
	}
}

func TestRoundProcessorsRejects(t *testing.T) {
	pl := refPlatform()
	pl.Processors = 4
	apps := synthApps(42, 8, 0.05) // more apps than processors
	s, err := DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RoundProcessors(pl, apps, s); err == nil {
		t.Fatal("n > p accepted")
	}
	pl2 := refPlatform()
	apps2 := npbApps(0.05)
	seq, err := AllProcCache.Schedule(pl2, apps2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RoundProcessors(pl2, apps2, seq); err == nil {
		t.Fatal("sequential schedule accepted")
	}
}

// Property: rounding preserves feasibility for any heuristic and size.
func TestRoundProcessorsProperty(t *testing.T) {
	pl := refPlatform()
	f := func(seed uint64, nPick uint8) bool {
		n := 1 + int(nPick)%64
		apps := synthApps(seed, n, 0.05)
		s, err := DominantMinRatio.Schedule(pl, apps, nil)
		if err != nil {
			return false
		}
		ri, err := RoundProcessors(pl, apps, s)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range ri.Processors {
			if c < 1 {
				return false
			}
			total += c
		}
		return total <= int(pl.Processors) && ri.Degradation >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
