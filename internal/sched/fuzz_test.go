package sched

import (
	"bytes"
	"testing"

	"repro/internal/model"
)

// FuzzScheduleJSONRoundTrip feeds arbitrary bytes to ReadJSON and, for
// every input it accepts, checks that WriteJSON → ReadJSON is a fixed
// point: the second read reproduces the first bit-for-bit (heuristic,
// platform, application names, assignments, makespan, sequential flag).
// encoding/json emits the shortest float representation that re-parses
// exactly, so any drift here is a schema bug, not float noise.
func FuzzScheduleJSONRoundTrip(f *testing.F) {
	// Seed with a genuine schedule produced by the reference heuristic.
	pl := model.TaihuLight()
	apps := []model.Application{
		{Name: "CG", Work: 5.70e10, AccessFreq: 5.35e-01, RefMissRate: 6.59e-04, RefCacheSize: 40e6},
		{Name: "MG", Work: 1.23e10, AccessFreq: 5.40e-01, RefMissRate: 2.62e-02, RefCacheSize: 40e6},
	}
	if s, err := DominantMinRatio.Schedule(pl, apps, nil); err == nil {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, "DominantMinRatio", pl, apps, s); err == nil {
			f.Add(buf.Bytes())
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"makespan": 1e308, "sequential": true, "assignments": [{"app": "α", "processors": -0}]}`))
	f.Add([]byte(`[1,2`))

	f.Fuzz(func(t *testing.T, data []byte) {
		h1, pl1, names1, s1, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		if len(names1) != len(s1.Assignments) {
			t.Fatalf("%d names for %d assignments", len(names1), len(s1.Assignments))
		}
		fleet := make([]model.Application, len(names1))
		for i, n := range names1 {
			fleet[i] = model.Application{Name: n}
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, h1, pl1, fleet, s1); err != nil {
			t.Fatalf("re-encoding accepted schedule: %v", err)
		}
		h2, pl2, names2, s2, err := ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own encoding: %v\n%s", err, buf.Bytes())
		}
		if h2 != h1 {
			t.Fatalf("heuristic drifted: %q -> %q", h1, h2)
		}
		if pl2 != pl1 {
			t.Fatalf("platform drifted: %+v -> %+v", pl1, pl2)
		}
		if s2.Makespan != s1.Makespan || s2.Sequential != s1.Sequential {
			t.Fatalf("schedule header drifted: (%v, %v) -> (%v, %v)",
				s1.Makespan, s1.Sequential, s2.Makespan, s2.Sequential)
		}
		if len(names2) != len(names1) || len(s2.Assignments) != len(s1.Assignments) {
			t.Fatalf("length drifted: %d/%d -> %d/%d",
				len(names1), len(s1.Assignments), len(names2), len(s2.Assignments))
		}
		for i := range names1 {
			if names2[i] != names1[i] {
				t.Fatalf("app %d name drifted: %q -> %q", i, names1[i], names2[i])
			}
			if s2.Assignments[i] != s1.Assignments[i] {
				t.Fatalf("app %d assignment drifted: %+v -> %+v", i, s1.Assignments[i], s2.Assignments[i])
			}
		}
	})
}
