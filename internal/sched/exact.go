package sched

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/model"
)

// maxExactApps bounds the exponential subset enumeration of ExactSubset.
const maxExactApps = 24

// ExactSubset finds the optimal cache subset IC for perfectly parallel
// applications by enumerating all 2^n partitions, applying the
// closed-form shares of Lemma 4 to each and keeping the best *valid*
// solution (every allotted share must exceed the useless threshold
// d_i^{1/α}, per Eq. 3; partitions violating it are evaluated with the
// violating apps clamped to the no-benefit regime, which the Exe model
// already encodes via the min(1, ·)). It is the ground truth against
// which the heuristics are validated for small n.
//
// It returns the best schedule and the chosen membership. n must be at
// most 24 to bound the enumeration.
func ExactSubset(pl model.Platform, apps []model.Application) (*Schedule, []bool, error) {
	if err := model.ValidateAll(pl, apps); err != nil {
		return nil, nil, err
	}
	n := len(apps)
	if n > maxExactApps {
		return nil, nil, errTooManyApps(n)
	}
	// The 2^n memberships are scanned in parallel: each worker owns a
	// contiguous mask range and tracks its local best; the reduction
	// breaks ties toward the smaller mask so the result is identical to
	// a sequential ascending scan.
	type best struct {
		k       float64
		mask    uint64
		shares  []float64
		members []bool
	}
	total := uint64(1) << n
	workers := uint64(runtime.GOMAXPROCS(0))
	if workers > total {
		workers = total
	}
	chunk := (total + workers - 1) / workers
	results := make([]best, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := uint64(0); w < workers; w++ {
		wg.Add(1)
		go func(w uint64) {
			defer wg.Done()
			lo, hi := w*chunk, (w+1)*chunk
			if hi > total {
				hi = total
			}
			local := best{k: math.Inf(1)}
			members := make([]bool, n)
			for mask := lo; mask < hi; mask++ {
				for i := 0; i < n; i++ {
					members[i] = mask&(1<<uint(i)) != 0
				}
				part, err := core.NewPartition(pl, apps, members)
				if err != nil {
					errs[w] = err
					return
				}
				shares := part.Shares()
				K := analyticMakespan(pl, apps, shares)
				if K < local.k {
					local.k = K
					local.mask = mask
					local.shares = shares
					local.members = append([]bool(nil), members...)
				}
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	win := best{k: math.Inf(1)}
	for _, r := range results {
		if r.shares == nil {
			continue
		}
		if r.k < win.k || (r.k == win.k && r.mask < win.mask) {
			win = r
		}
	}
	s, err := sharesSchedule(pl, apps, win.shares)
	if err != nil {
		return nil, nil, err
	}
	return s, win.members, nil
}

// analyticMakespan evaluates Lemma 3's objective Σ_i Exe_i(1, x_i)/p for
// perfectly parallel apps; for Amdahl apps it falls back to the
// equalizer.
func analyticMakespan(pl model.Platform, apps []model.Application, shares []float64) float64 {
	allZero := true
	for _, a := range apps {
		if a.SeqFraction != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		var sum float64
		for i, a := range apps {
			sum += a.ExeSeq(pl, shares[i])
		}
		return sum / pl.Processors
	}
	_, K, err := EqualizeAmdahl(pl, apps, shares)
	if err != nil {
		return math.Inf(1)
	}
	return K
}

type errTooManyApps int

func (e errTooManyApps) Error() string {
	return "sched: exact enumeration limited to 24 applications"
}
