package sched

import (
	"math"

	"repro/internal/model"
	"repro/internal/solve"
)

// This file models the baseline the whole paper argues against:
// co-scheduling WITHOUT cache partitioning. When the LLC is shared
// unpartitioned, co-running applications interfere; under LRU each
// application ends up occupying a cache fraction roughly proportional to
// its aggregate access rate (the fractional-occupancy approximation used
// in shared-cache modeling since Qureshi & Patt's utility studies).
// We approximate application i's occupancy as
//
//	x_i^eff = p_i·f_i / Σ_j p_j·f_j,
//
// i.e. proportional to the access pressure it generates (threads ×
// accesses per operation), and evaluate the usual Exe model at that
// occupancy. Because the occupancy depends on the processor assignment
// and the equalized processors depend on the occupancies, the schedule is
// a fixed point, found by damped iteration.
//
// Comparing SharedCacheSchedule against the dominant-partition heuristics
// isolates the value of partitioning itself (Cache Allocation
// Technology), beyond the value of co-scheduling.

// sharedCacheIterations bounds the fixed-point loop; the damped iteration
// converges geometrically in practice and 200 rounds is far beyond any
// observed need.
const sharedCacheIterations = 200

// SharedCacheSchedule co-schedules the applications on an unpartitioned
// LLC: processors are assigned by the completion-time equalizer, cache
// occupancies follow the access-pressure approximation above, and the
// two are iterated to a fixed point. The returned schedule stores the
// equilibrium occupancies in the CacheShare fields (they sum to 1).
func SharedCacheSchedule(pl model.Platform, apps []model.Application) (*Schedule, error) {
	if err := model.ValidateAll(pl, apps); err != nil {
		return nil, err
	}
	sc := getScratch()
	defer putScratch(sc)
	return sharedCacheSchedule(sc, pl, apps)
}

// sharedCacheSchedule is the scratch-backed fixed-point iteration; every
// equalizer pass reuses the same coefficient and processor buffers.
func sharedCacheSchedule(sc *scratch, pl model.Platform, apps []model.Application) (*Schedule, error) {
	n := len(apps)
	procs := growF64(sc.dampP, n)
	sc.dampP = procs
	for i := range procs {
		procs[i] = pl.Processors / float64(n)
	}
	occ := growF64(sc.occ, n)
	sc.occ = occ
	for iter := 0; iter < sharedCacheIterations; iter++ {
		occupancies(apps, procs, occ)
		next, _, err := sc.eq.equalize(pl, apps, occ)
		if err != nil {
			return nil, err
		}
		var delta float64
		for i := range procs {
			delta = math.Max(delta, math.Abs(next[i]-procs[i]))
			// Damping stabilizes the alternation on workloads where
			// occupancy feedback is strong.
			procs[i] = 0.5*procs[i] + 0.5*next[i]
		}
		if delta < 1e-9*pl.Processors {
			break
		}
	}
	occupancies(apps, procs, occ)
	// Final consistent pass: equalize once more at the settled
	// occupancies so finish times are exactly equal.
	final, _, err := sc.eq.equalize(pl, apps, occ)
	if err != nil {
		return nil, err
	}
	asg := make([]Assignment, n)
	for i := range asg {
		asg[i] = Assignment{Processors: final[i], CacheShare: occ[i]}
	}
	return &Schedule{Assignments: asg, Makespan: maxFinish(pl, apps, asg)}, nil
}

// occupancies fills occ with the access-pressure-proportional cache
// occupancy of each application. With zero total pressure (all f_i = 0)
// the cache is irrelevant and occupancies are left at zero.
func occupancies(apps []model.Application, procs []float64, occ []float64) {
	var total solve.Kahan
	for i, a := range apps {
		total.Add(procs[i] * a.AccessFreq)
	}
	t := total.Sum()
	for i, a := range apps {
		if t > 0 {
			occ[i] = procs[i] * a.AccessFreq / t
		} else {
			occ[i] = 0
		}
	}
}

// PartitioningGain returns the relative makespan advantage of the best
// partitioned co-schedule (DominantMinRatio) over the unpartitioned
// shared-cache equilibrium on the same inputs: 1 − partitioned/shared.
// Positive values quantify what Cache Allocation Technology buys.
func PartitioningGain(pl model.Platform, apps []model.Application) (float64, error) {
	part, err := DominantMinRatio.Schedule(pl, apps, nil)
	if err != nil {
		return 0, err
	}
	shared, err := SharedCacheSchedule(pl, apps)
	if err != nil {
		return 0, err
	}
	return 1 - part.Makespan/shared.Makespan, nil
}
