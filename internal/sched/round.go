package sched

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// The paper deliberately relaxes processor counts to rationals ("they can
// be shared across applications through multi-threading") to expose the
// problem's intrinsic complexity. Deployments without multi-threaded
// sharing need whole processors; this file rounds a rational schedule to
// integers and quantifies the cost, mirroring what internal/cat does for
// cache ways.

// IntegerSchedule is a rational schedule realized with whole processors.
type IntegerSchedule struct {
	Processors []int // per-application integer processor counts
	CacheShare []float64
	Makespan   float64 // recomputed with the integer counts
	// Degradation is Makespan divided by the rational schedule's
	// makespan (≥ 1 up to float noise, assuming the rational schedule
	// was equal-finish).
	Degradation float64
}

// RoundProcessors converts schedule s to whole processors with the
// largest-remainder method under two rules: an application with positive
// rational share never rounds to zero processors (it could never finish),
// and the total never exceeds the platform's (integral) processor count.
// It requires n ≤ p, since each application needs at least one processor.
func RoundProcessors(pl model.Platform, apps []model.Application, s *Schedule) (*IntegerSchedule, error) {
	if s == nil {
		return nil, &model.ValidationError{Field: "schedule", Reason: "cannot round a nil schedule"}
	}
	if len(s.Assignments) == 0 {
		return nil, &model.ValidationError{Field: "schedule.assignments", Value: 0, Reason: "cannot round an empty schedule"}
	}
	if err := s.Validate(pl, apps); err != nil {
		return nil, err
	}
	if s.Sequential {
		return nil, &model.ValidationError{Field: "schedule.sequential", Value: true, Reason: "sequential schedules already use whole machines"}
	}
	n := len(apps)
	budget := int(math.Floor(pl.Processors))
	if n > budget {
		return nil, &model.ValidationError{
			Field: "schedule.assignments", Value: n,
			Reason: fmt.Sprintf("%d applications cannot each get a whole processor out of %d", n, budget),
		}
	}
	counts := make([]int, n)
	used := 0
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, n)
	for i, asg := range s.Assignments {
		w := int(math.Floor(asg.Processors))
		if w == 0 {
			w = 1
		}
		counts[i] = w
		used += w
		rems = append(rems, rem{i, asg.Processors - math.Floor(asg.Processors)})
	}
	if used > budget {
		// Forced minimums overshot: reclaim from the largest counts.
		for used > budget {
			big := -1
			for i := range counts {
				if counts[i] > 1 && (big < 0 || counts[i] > counts[big]) {
					big = i
				}
			}
			if big < 0 {
				return nil, fmt.Errorf("sched: cannot fit %d mandatory processors into %d", used, budget)
			}
			counts[big]--
			used--
		}
	} else {
		// Hand out the leftovers by largest remainder, deterministic
		// tie-break on index.
		for used < budget {
			best := -1
			for i := range rems {
				if counts[rems[i].idx] == 0 {
					continue
				}
				if best < 0 || rems[i].frac > rems[best].frac ||
					(rems[i].frac == rems[best].frac && rems[i].idx < rems[best].idx) {
					best = i
				}
			}
			if best < 0 {
				break
			}
			counts[rems[best].idx]++
			rems[best].frac = -1 // one extra each round-robin pass
			used++
			// Refill fractions once everyone got their extra.
			all := true
			for i := range rems {
				if rems[i].frac >= 0 {
					all = false
					break
				}
			}
			if all {
				for i := range rems {
					rems[i].frac = 0
				}
			}
		}
	}

	out := &IntegerSchedule{
		Processors: counts,
		CacheShare: make([]float64, n),
	}
	var mk float64
	for i, a := range apps {
		out.CacheShare[i] = s.Assignments[i].CacheShare
		mk = math.Max(mk, a.Exe(pl, float64(counts[i]), out.CacheShare[i]))
	}
	out.Makespan = mk
	if s.Makespan > 0 {
		out.Degradation = mk / s.Makespan
	}
	return out, nil
}
