package sched

import (
	"encoding/binary"
	"math"

	"repro/internal/model"
	"repro/internal/solve"
)

// This file is the warm-start layer of the incremental-replanning work:
// instead of re-solving every resident set from a cold start, online
// callers keep a PlanMemo and go through ScheduleWarm, which serves a
// previously computed plan whenever it can *certify* bit-equivalence
// with a cold solve, and falls back to the full solve otherwise.
//
// Why the certificate is an exact input fingerprint and not a numeric
// warm start: the obvious accelerations — seeding the equalizer's
// bisection bracket from the incumbent makespan, or starting
// LocalSearch's hill climb from the incumbent membership — are exact in
// real arithmetic but not in floats. A narrower bracket changes the
// bisection's iterate sequence, and a different climb origin reaches a
// different local optimum; either way the resulting schedule can drift
// by ulps (or more) from the cold solve, which this repository's
// bit-for-bit determinism discipline (conform golden digests, des
// event-log equality across worker counts) treats as a behavioral
// change. The only shortcut the equalizer's arithmetic admits is the
// trivial one: every deterministic heuristic is a pure function of
// (platform, applications), so if those inputs match a previous solve
// bit-for-bit, replaying the stored schedule IS the cold solve. The
// fingerprint below captures exactly the numeric fields the heuristics
// read — application names are excluded on purpose, because no
// heuristic's arithmetic reads them (they only appear in errors and
// reports) and online callers re-stamp names per job ("cg#17"), which
// would otherwise defeat the memo on recurring workload shapes.

// PlanMemo memoizes deterministic heuristic plans keyed by the exact
// bit pattern of (heuristic, platform, applications). It is the plan
// cache behind ScheduleWarm and the DES delta-rescheduling policies:
// online resident sets recur (a drained wave re-admits a fresh batch of
// template jobs), and a recurring set costs one map probe instead of a
// full solve.
//
// Entries are evicted FIFO once capacity is reached, so the memo's
// content — and therefore the hit/miss sequence — is a deterministic
// function of the insertion sequence. A PlanMemo is not safe for
// concurrent use; each online policy owns one (the DES event loop is
// single-threaded).
type PlanMemo struct {
	capacity  int
	plans     map[string]*Schedule
	order     []string // insertion order, oldest first
	head      int      // index of the oldest live key in order
	hits      uint64
	misses    uint64
	evictions uint64
	key       []byte // recycled fingerprint buffer
}

// DefaultPlanMemoCapacity bounds a policy-owned memo: comfortably more
// than the distinct resident-set shapes a cyclic template workload can
// produce (ramp-up prefixes + template rotations + drain suffixes),
// small enough that a non-recurring stream caps out at a few hundred
// retained plans.
const DefaultPlanMemoCapacity = 256

// NewPlanMemo returns an empty memo holding at most capacity plans
// (capacity < 1 selects DefaultPlanMemoCapacity).
func NewPlanMemo(capacity int) *PlanMemo {
	if capacity < 1 {
		capacity = DefaultPlanMemoCapacity
	}
	return &PlanMemo{capacity: capacity, plans: make(map[string]*Schedule)}
}

// MemoStats are a PlanMemo's monotonic counters.
type MemoStats struct {
	Hits      uint64 // lookups served from the memo (certified fast path)
	Misses    uint64 // lookups that fell back to a full solve
	Evictions uint64 // plans dropped by the FIFO capacity bound
	Entries   int    // plans currently retained
}

// Stats snapshots the counters.
func (m *PlanMemo) Stats() MemoStats {
	return MemoStats{Hits: m.hits, Misses: m.misses, Evictions: m.evictions, Entries: len(m.plans)}
}

// fingerprint appends the canonical byte encoding of (h, pl, apps) to
// m's recycled buffer and returns it. Every numeric field the
// heuristics read contributes its exact bit pattern; names are excluded
// (see the package comment above). Distinct inputs cannot collide, and
// a fingerprint match certifies that a stored plan is bit-identical to
// what a cold solve would produce.
func (m *PlanMemo) fingerprint(h Heuristic, pl model.Platform, apps []model.Application) []byte {
	b := m.key[:0]
	b = binary.LittleEndian.AppendUint64(b, uint64(h))
	b = appendBits(b, pl.Processors, pl.CacheSize, pl.LatencyS, pl.LatencyL, pl.Alpha)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(apps)))
	for _, a := range apps {
		b = appendBits(b, a.Work, a.SeqFraction, a.AccessFreq, a.Footprint, a.RefMissRate, a.RefCacheSize)
	}
	m.key = b
	return b
}

func appendBits(b []byte, vs ...float64) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// Get returns the memoized plan for a deterministic heuristic on these
// exact inputs, or (nil, false). The hit path performs no allocation
// (the map probe elides the string conversion). Returned schedules are
// shared: callers must treat them as immutable.
func (m *PlanMemo) Get(h Heuristic, pl model.Platform, apps []model.Application) (*Schedule, bool) {
	if h.Randomized() {
		return nil, false
	}
	s, ok := m.plans[string(m.fingerprint(h, pl, apps))]
	if ok {
		m.hits++
	} else {
		m.misses++
	}
	return s, ok
}

// Put stores a solved plan for a deterministic heuristic. Randomized
// heuristics are rejected (their plans depend on the RNG stream, which
// the fingerprint deliberately does not capture), as are nil schedules.
// The caller must only store plans actually produced by h on exactly
// (pl, apps); Put trusts that contract.
func (m *PlanMemo) Put(h Heuristic, pl model.Platform, apps []model.Application, s *Schedule) {
	if h.Randomized() || s == nil {
		return
	}
	key := string(m.fingerprint(h, pl, apps))
	if _, ok := m.plans[key]; ok {
		return
	}
	if len(m.plans) >= m.capacity {
		delete(m.plans, m.order[m.head])
		m.order[m.head] = ""
		m.head++
		m.evictions++
		// Compact the ring once the dead prefix dominates, keeping
		// amortized insertion O(1) without unbounded slice growth.
		if m.head > len(m.order)/2 {
			m.order = append(m.order[:0], m.order[m.head:]...)
			m.head = 0
		}
	}
	m.plans[key] = s
	m.order = append(m.order, key)
}

// ScheduleWarm is Schedule through a plan memo — the warm-start entry
// point of the DES delta-rescheduling policies. For a deterministic
// heuristic whose exact inputs were solved before, it returns the
// memoized schedule (fromMemo = true) without re-running the solver;
// the fingerprint match certifies bit-equivalence with a cold solve.
// Everything else — randomized heuristics, first-seen inputs, a nil
// memo — falls back to a full Schedule call, and successful
// deterministic solves are stored for the next recurrence.
//
// Returned schedules may be memo-shared between calls: treat them as
// immutable.
func (h Heuristic) ScheduleWarm(pl model.Platform, apps []model.Application, rng *solve.RNG, memo *PlanMemo) (*Schedule, bool, error) {
	if memo != nil {
		if s, ok := memo.Get(h, pl, apps); ok {
			return s, true, nil
		}
	}
	s, err := h.Schedule(pl, apps, rng)
	if err != nil {
		return nil, false, err
	}
	if memo != nil {
		memo.Put(h, pl, apps, s)
	}
	return s, false, nil
}
