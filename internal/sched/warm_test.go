package sched

import (
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/solve"
	"repro/internal/workload"
)

func warmApps(t *testing.T, n int) []model.Application {
	t.Helper()
	apps, err := workload.Generate(workload.Config{Generator: workload.GenNPBSynth, N: n}, solve.NewRNG(11))
	if err != nil {
		t.Fatalf("generating workload: %v", err)
	}
	return apps
}

// TestScheduleWarmHitIsColdSolve is the certification property: a memo
// hit must return the exact schedule a cold solve produces — same
// struct, bit for bit — because the fingerprint covers every numeric
// input of the (pure) deterministic heuristics.
func TestScheduleWarmHitIsColdSolve(t *testing.T) {
	pl := model.TaihuLight()
	apps := warmApps(t, 6)
	for _, h := range ExtendedHeuristics {
		if h.Randomized() || h == AllProcCache {
			continue
		}
		memo := NewPlanMemo(0)
		cold, err := h.Schedule(pl, apps, nil)
		if err != nil {
			t.Fatalf("%v: cold solve: %v", h, err)
		}
		first, fromMemo, err := h.ScheduleWarm(pl, apps, nil, memo)
		if err != nil {
			t.Fatalf("%v: warm solve: %v", h, err)
		}
		if fromMemo {
			t.Fatalf("%v: first warm solve claimed a memo hit", h)
		}
		second, fromMemo, err := h.ScheduleWarm(pl, apps, nil, memo)
		if err != nil {
			t.Fatalf("%v: second warm solve: %v", h, err)
		}
		if !fromMemo {
			t.Errorf("%v: second warm solve missed the memo", h)
		}
		if second != first {
			t.Errorf("%v: memo hit returned a different schedule object", h)
		}
		if !reflect.DeepEqual(cold, second) {
			t.Errorf("%v: memoized schedule differs from cold solve:\n  cold %+v\n  warm %+v", h, cold, second)
		}
	}
}

// TestPlanMemoNameInsensitive pins the memo-key contract: application
// names do not participate in the fingerprint (no heuristic reads
// them), so re-stamped job names must still hit.
func TestPlanMemoNameInsensitive(t *testing.T) {
	pl := model.TaihuLight()
	apps := warmApps(t, 4)
	memo := NewPlanMemo(0)
	s, _, err := DominantMinRatio.ScheduleWarm(pl, apps, nil, memo)
	if err != nil {
		t.Fatal(err)
	}
	renamed := make([]model.Application, len(apps))
	copy(renamed, apps)
	for i := range renamed {
		renamed[i].Name = "renamed#42"
	}
	got, ok := memo.Get(DominantMinRatio, pl, renamed)
	if !ok {
		t.Fatal("renamed apps missed the memo; fingerprint must ignore names")
	}
	if got != s {
		t.Fatal("renamed apps hit a different plan")
	}
	// A numeric perturbation of one ulp MUST miss: the certificate is
	// exactness, not similarity.
	perturbed := make([]model.Application, len(apps))
	copy(perturbed, apps)
	perturbed[0].Work = nextUlp(perturbed[0].Work)
	if _, ok := memo.Get(DominantMinRatio, pl, perturbed); ok {
		t.Fatal("perturbed apps hit the memo; fingerprint must be bit-exact")
	}
}

func nextUlp(v float64) float64 {
	return v * (1 + 1e-15)
}

// TestPlanMemoRandomizedBypass: randomized heuristics are never served
// from (or stored in) the memo — their plans depend on the RNG stream
// the fingerprint does not capture.
func TestPlanMemoRandomizedBypass(t *testing.T) {
	pl := model.TaihuLight()
	apps := warmApps(t, 4)
	memo := NewPlanMemo(0)
	for i := 0; i < 2; i++ {
		_, fromMemo, err := RandomPart.ScheduleWarm(pl, apps, solve.NewRNG(uint64(i)), memo)
		if err != nil {
			t.Fatal(err)
		}
		if fromMemo {
			t.Fatal("randomized heuristic served from the memo")
		}
	}
	if st := memo.Stats(); st.Entries != 0 {
		t.Fatalf("randomized plans were stored: %+v", st)
	}
}

// TestPlanMemoEviction: the memo caps retained plans and evicts FIFO,
// so its content is a deterministic function of the insertion sequence.
func TestPlanMemoEviction(t *testing.T) {
	pl := model.TaihuLight()
	memo := NewPlanMemo(3)
	mk := func(w float64) []model.Application {
		a := warmApps(t, 1)
		a[0].Work = w
		return a
	}
	for w := 1.0; w <= 5; w++ {
		if _, _, err := Fair.ScheduleWarm(pl, mk(w), nil, memo); err != nil {
			t.Fatal(err)
		}
	}
	if st := memo.Stats(); st.Entries != 3 {
		t.Fatalf("entries = %d, want capacity 3", st.Entries)
	}
	// Oldest two evicted, newest three retained.
	for w := 1.0; w <= 5; w++ {
		_, ok := memo.Get(Fair, pl, mk(w))
		if want := w >= 3; ok != want {
			t.Errorf("work %v: hit=%v, want %v", w, ok, want)
		}
	}
}

// TestPlanMemoHitAllocs: the certified fast path must not allocate —
// it is the inner loop of high-rate online replanning.
func TestPlanMemoHitAllocs(t *testing.T) {
	pl := model.TaihuLight()
	apps := warmApps(t, 6)
	memo := NewPlanMemo(0)
	if _, _, err := DominantMinRatio.ScheduleWarm(pl, apps, nil, memo); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := memo.Get(DominantMinRatio, pl, apps); !ok {
			t.Fatal("unexpected miss")
		}
	})
	if allocs > 0 {
		t.Errorf("memo hit allocates %.1f times per run, want 0", allocs)
	}
}
