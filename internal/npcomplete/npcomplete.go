// Package npcomplete mechanizes the NP-completeness argument of Theorem
// 1: the polynomial reduction from Knapsack to the decision problem
// CoSchedCache-Dec. It provides an exact Knapsack solver (dynamic
// programming over sizes), the instance transformation used in the proof,
// and both directions of the solution mapping, so the construction can be
// checked computationally on concrete instances (see the package tests).
package npcomplete

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// KnapsackInstance is the source problem I1: n objects with positive
// integer sizes and values, a size budget U and a value target V.
type KnapsackInstance struct {
	Sizes  []int
	Values []int
	U      int // size budget
	V      int // value target
}

// Validate reports the first structural problem with the instance.
func (k KnapsackInstance) Validate() error {
	if len(k.Sizes) != len(k.Values) {
		return fmt.Errorf("npcomplete: %d sizes but %d values", len(k.Sizes), len(k.Values))
	}
	if len(k.Sizes) == 0 {
		return fmt.Errorf("npcomplete: empty instance")
	}
	for i := range k.Sizes {
		if k.Sizes[i] <= 0 || k.Values[i] <= 0 {
			return fmt.Errorf("npcomplete: object %d has non-positive size or value", i)
		}
	}
	if k.U < 0 || k.V < 0 {
		return fmt.Errorf("npcomplete: negative bounds U=%d V=%d", k.U, k.V)
	}
	return nil
}

// SolveKnapsack answers the decision problem exactly: is there a subset
// with total size ≤ U and total value ≥ V? It returns a witness subset
// (indices) when the answer is yes. Complexity O(n·U) time and space —
// pseudo-polynomial, as expected for an NP-complete problem.
func SolveKnapsack(k KnapsackInstance) (bool, []int, error) {
	if err := k.Validate(); err != nil {
		return false, nil, err
	}
	n := len(k.Sizes)
	// best[u] = max value achievable with total size exactly ≤ u.
	best := make([]int, k.U+1)
	choice := make([][]bool, n)
	for i := 0; i < n; i++ {
		choice[i] = make([]bool, k.U+1)
		for u := k.U; u >= k.Sizes[i]; u-- {
			if cand := best[u-k.Sizes[i]] + k.Values[i]; cand > best[u] {
				best[u] = cand
				choice[i][u] = true
			}
		}
	}
	if best[k.U] < k.V {
		return false, nil, nil
	}
	// Reconstruct a witness.
	var witness []int
	u := k.U
	for i := n - 1; i >= 0; i-- {
		if choice[i][u] {
			witness = append(witness, i)
			u -= k.Sizes[i]
		}
	}
	// Reverse into ascending order.
	for a, b := 0, len(witness)-1; a < b; a, b = a+1, b-1 {
		witness[a], witness[b] = witness[b], witness[a]
	}
	return true, witness, nil
}

// Reduction holds the CoSchedCache-Dec instance produced from a Knapsack
// instance by the Theorem 1 construction, along with the intermediate
// constants needed to verify it.
type Reduction struct {
	Source KnapsackInstance
	Alpha  float64

	N       int       // max(n, 2U+1)
	Epsilon float64   // 1/(N(N+1))
	Eta     float64   // 1 - 1/N
	D       []float64 // d_i = (u_i·η/U)^α
	E       []float64 // e_i = (d_i^{1/α} + ε)^α
	WF      []float64 // w_i·f_i = v_i / (1 - d_i/e_i)
	Z       []float64 // z_i = w_i f_i ll
	A       float64   // Σ w_i (1 + f_i ls)
	PK      float64   // p·K bound
}

// Reduce applies the construction of Theorem 1 with power-law exponent
// alpha and platform latencies ls, ll (the proof works for any fixed
// positive values; the paper uses the generic ones).
func Reduce(k KnapsackInstance, alpha, ls, ll float64) (*Reduction, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	// NaN slips through every ordered comparison below (each compares
	// false) and ±Inf passes bare sign tests, so the non-finite cases
	// must be rejected explicitly — the same hardening internal/model
	// applies to platform and application inputs. Without it a NaN
	// alpha silently stamps NaN on every derived constant of the
	// reduction.
	if !isFinite(alpha) || alpha <= 0 {
		return nil, fmt.Errorf("npcomplete: power-law exponent must be finite > 0, got %v", alpha)
	}
	if err := validateLatencies(ls, ll); err != nil {
		return nil, err
	}
	n := len(k.Sizes)
	N := n
	if m := 2*k.U + 1; m > N {
		N = m
	}
	r := &Reduction{
		Source:  k,
		Alpha:   alpha,
		N:       N,
		Epsilon: 1 / (float64(N) * float64(N+1)),
		Eta:     1 - 1/float64(N),
		D:       make([]float64, n),
		E:       make([]float64, n),
		WF:      make([]float64, n),
		Z:       make([]float64, n),
	}
	var sumZ float64
	for i := 0; i < n; i++ {
		ui := float64(k.Sizes[i])
		r.D[i] = math.Pow(ui*r.Eta/float64(k.U), alpha)
		r.E[i] = math.Pow(math.Pow(r.D[i], 1/alpha)+r.Epsilon, alpha)
		r.WF[i] = float64(k.Values[i]) / (1 - r.D[i]/r.E[i])
		// The proof fixes only the product w_i·f_i; we pick f_i = 1 so
		// w_i = WF[i], hence A = Σ w_i(1 + f_i·ls) = Σ WF[i]·(1 + ls)
		// and z_i = w_i·f_i·ll = WF[i]·ll.
		r.Z[i] = r.WF[i] * ll
		r.A += r.WF[i] * (1 + ls)
		sumZ += r.Z[i]
	}
	r.PK = r.A + sumZ - float64(k.V)*ll
	return r, nil
}

// Applications materializes the reduced instance as model.Applications on
// the given platform: application i has w_i = WF[i], f_i = 1, footprint
// a_i = e_i^{1/α}·Cs and reference miss rate chosen so d_i matches the
// construction (m0 at C0 = Cs equals d_i).
func (r *Reduction) Applications(pl model.Platform) []model.Application {
	apps := make([]model.Application, len(r.D))
	for i := range apps {
		apps[i] = model.Application{
			Name:         fmt.Sprintf("reduced-%d", i),
			Work:         r.WF[i],
			AccessFreq:   1,
			RefMissRate:  r.D[i], // measured at C0 = Cs ⇒ d_i = RefMissRate
			RefCacheSize: pl.CacheSize,
			Footprint:    math.Pow(r.E[i], 1/r.Alpha) * pl.CacheSize,
		}
	}
	return apps
}

// ForwardMap converts a Knapsack witness subset into the cache fractions
// of the proof's forward direction: x_i = e_i^{1/α} for i in the subset,
// 0 otherwise.
func (r *Reduction) ForwardMap(subset []int) []float64 {
	x := make([]float64, len(r.D))
	for _, i := range subset {
		x[i] = math.Pow(r.E[i], 1/r.Alpha)
	}
	return x
}

// ObjectiveAPlusB evaluates A + B = Σ w_i(1 + f_i[ls + ll·min(1, d_i/x_i^α)])
// for cache fractions x under latencies ls, ll (with f_i = 1). Theorem 1
// accepts iff this is at most PK.
func (r *Reduction) ObjectiveAPlusB(x []float64, ls, ll float64) float64 {
	var total float64
	for i := range r.D {
		miss := 1.0
		if x[i] > 0 {
			miss = math.Min(1, r.D[i]/math.Pow(x[i], r.Alpha))
		}
		total += r.WF[i] * (1 + ls + ll*miss)
	}
	return total
}

// isFinite reports whether v is an ordinary finite float64.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// validateLatencies guards the ls/ll parameters of the verification
// entry points, which accept them independently of Reduce: a NaN
// latency turns the objective into NaN, which compares false against
// the pK bound and would silently "verify" the direction.
func validateLatencies(ls, ll float64) error {
	if !isFinite(ls) || ls < 0 {
		return fmt.Errorf("npcomplete: cache latency must be finite >= 0, got %v", ls)
	}
	if !isFinite(ll) || ll <= 0 {
		return fmt.Errorf("npcomplete: memory latency must be finite > 0, got %v", ll)
	}
	return nil
}

// CheckForward verifies the proof's forward direction on a concrete
// witness: the mapped fractions are feasible (Σx ≤ 1, each within
// (d_i^{1/α}, e_i^{1/α}]) and achieve the bound.
func (r *Reduction) CheckForward(subset []int, ls, ll float64) error {
	if err := validateLatencies(ls, ll); err != nil {
		return err
	}
	for _, i := range subset {
		if i < 0 || i >= len(r.D) {
			return fmt.Errorf("npcomplete: witness index %d outside [0, %d)", i, len(r.D))
		}
	}
	x := r.ForwardMap(subset)
	var sum float64
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		lo := math.Pow(r.D[i], 1/r.Alpha)
		hi := math.Pow(r.E[i], 1/r.Alpha)
		if xi <= lo || xi > hi+1e-12 {
			return fmt.Errorf("npcomplete: x[%d]=%g outside (%g, %g]", i, xi, lo, hi)
		}
		sum += xi
	}
	if sum > 1+1e-12 {
		return fmt.Errorf("npcomplete: Σx = %g > 1", sum)
	}
	if got := r.ObjectiveAPlusB(x, ls, ll); got > r.PK+1e-6*math.Abs(r.PK) {
		return fmt.Errorf("npcomplete: objective %g exceeds bound pK = %g", got, r.PK)
	}
	return nil
}

// BackwardMap extracts the nonzero subset from cache fractions.
func BackwardMap(x []float64) []int {
	var subset []int
	for i, xi := range x {
		if xi > 0 {
			subset = append(subset, i)
		}
	}
	return subset
}

// CheckBackward verifies the reverse direction: a feasible fraction
// vector achieving the bound yields a Knapsack witness.
func (r *Reduction) CheckBackward(x []float64, ls, ll float64) error {
	if err := validateLatencies(ls, ll); err != nil {
		return err
	}
	if len(x) != len(r.D) {
		return fmt.Errorf("npcomplete: %d fractions for %d objects", len(x), len(r.D))
	}
	for i, xi := range x {
		// Non-finite fractions would turn the objective into NaN, which
		// compares false against the bound and silently "passes".
		if !isFinite(xi) || xi < 0 || xi > 1 {
			return fmt.Errorf("npcomplete: fraction x[%d] = %v outside [0, 1]", i, xi)
		}
	}
	if got := r.ObjectiveAPlusB(x, ls, ll); got > r.PK+1e-6*math.Abs(r.PK) {
		return fmt.Errorf("npcomplete: objective %g exceeds bound", got)
	}
	subset := BackwardMap(x)
	var size, value float64
	for _, i := range subset {
		size += float64(r.Source.Sizes[i])
		value += float64(r.Source.Values[i])
	}
	if size > float64(r.Source.U)+0.5 {
		return fmt.Errorf("npcomplete: witness size %g exceeds U=%d", size, r.Source.U)
	}
	if value < float64(r.Source.V) {
		return fmt.Errorf("npcomplete: witness value %g below V=%d", value, r.Source.V)
	}
	return nil
}
