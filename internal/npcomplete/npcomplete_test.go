package npcomplete

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/solve"
)

func TestKnapsackValidation(t *testing.T) {
	if _, _, err := SolveKnapsack(KnapsackInstance{}); err == nil {
		t.Fatal("empty instance accepted")
	}
	bad := KnapsackInstance{Sizes: []int{1, 2}, Values: []int{3}, U: 2, V: 1}
	if _, _, err := SolveKnapsack(bad); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	neg := KnapsackInstance{Sizes: []int{-1}, Values: []int{3}, U: 2, V: 1}
	if _, _, err := SolveKnapsack(neg); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestKnapsackKnownInstances(t *testing.T) {
	cases := []struct {
		k    KnapsackInstance
		want bool
	}{
		{KnapsackInstance{Sizes: []int{2, 3, 4}, Values: []int{3, 4, 5}, U: 5, V: 7}, true},   // {0,1}
		{KnapsackInstance{Sizes: []int{2, 3, 4}, Values: []int{3, 4, 5}, U: 5, V: 8}, false},  // best at U=5 is 7
		{KnapsackInstance{Sizes: []int{1, 1, 1}, Values: []int{1, 1, 1}, U: 3, V: 3}, true},   // take all
		{KnapsackInstance{Sizes: []int{5}, Values: []int{10}, U: 4, V: 1}, false},             // cannot fit
		{KnapsackInstance{Sizes: []int{5}, Values: []int{10}, U: 5, V: 10}, true},             // exact fit
		{KnapsackInstance{Sizes: []int{3, 3, 3}, Values: []int{5, 5, 5}, U: 6, V: 10}, true},  // two of three
		{KnapsackInstance{Sizes: []int{3, 3, 3}, Values: []int{5, 5, 5}, U: 6, V: 11}, false}, // can't reach 11
	}
	for i, c := range cases {
		ok, witness, err := SolveKnapsack(c.k)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if ok != c.want {
			t.Fatalf("case %d: got %v, want %v", i, ok, c.want)
		}
		if ok {
			var size, value int
			for _, idx := range witness {
				size += c.k.Sizes[idx]
				value += c.k.Values[idx]
			}
			if size > c.k.U || value < c.k.V {
				t.Fatalf("case %d: invalid witness %v (size %d, value %d)", i, witness, size, value)
			}
		}
	}
}

// Property: the DP agrees with brute-force subset enumeration on small
// random instances.
func TestKnapsackAgainstBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := solve.NewRNG(seed)
		n := 1 + r.Intn(10)
		k := KnapsackInstance{U: 1 + r.Intn(20), V: 1 + r.Intn(30)}
		for i := 0; i < n; i++ {
			k.Sizes = append(k.Sizes, 1+r.Intn(8))
			k.Values = append(k.Values, 1+r.Intn(10))
		}
		got, _, err := SolveKnapsack(k)
		if err != nil {
			return false
		}
		want := false
		for mask := 0; mask < 1<<n; mask++ {
			size, value := 0, 0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					size += k.Sizes[i]
					value += k.Values[i]
				}
			}
			if size <= k.U && value >= k.V {
				want = true
				break
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceValidation(t *testing.T) {
	k := KnapsackInstance{Sizes: []int{2}, Values: []int{3}, U: 4, V: 3}
	if _, err := Reduce(k, 0, 0.17, 1); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := Reduce(k, 0.5, -1, 1); err == nil {
		t.Fatal("negative ls accepted")
	}
	if _, err := Reduce(KnapsackInstance{}, 0.5, 0.17, 1); err == nil {
		t.Fatal("invalid knapsack accepted")
	}
}

func TestReductionConstants(t *testing.T) {
	k := KnapsackInstance{Sizes: []int{2, 3}, Values: []int{3, 4}, U: 4, V: 6}
	r, err := Reduce(k, 0.5, 0.17, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 2*4+1 {
		t.Fatalf("N = %d, want 9", r.N)
	}
	if math.Abs(r.Epsilon-1.0/(9*10)) > 1e-15 {
		t.Fatalf("epsilon %v", r.Epsilon)
	}
	if math.Abs(r.Eta-(1-1.0/9)) > 1e-15 {
		t.Fatalf("eta %v", r.Eta)
	}
	for i := range k.Sizes {
		wantD := math.Pow(float64(k.Sizes[i])*r.Eta/4, 0.5)
		if math.Abs(r.D[i]-wantD) > 1e-12 {
			t.Fatalf("d[%d] = %v, want %v", i, r.D[i], wantD)
		}
		if r.E[i] <= r.D[i] {
			t.Fatalf("e[%d] = %v not above d = %v", i, r.E[i], r.D[i])
		}
		if r.WF[i] <= 0 {
			t.Fatalf("wf[%d] = %v", i, r.WF[i])
		}
	}
}

// The heart of Theorem 1, checked computationally: the Knapsack instance
// is a yes-instance if and only if the forward-mapped fraction vector
// achieves the CoSchedCache bound.
func TestReductionForwardDirection(t *testing.T) {
	const ls, ll = 0.17, 1.0
	yes := KnapsackInstance{Sizes: []int{2, 3, 4}, Values: []int{3, 4, 5}, U: 5, V: 7}
	ok, witness, err := SolveKnapsack(yes)
	if err != nil || !ok {
		t.Fatalf("expected yes-instance: %v %v", ok, err)
	}
	r, err := Reduce(yes, 0.5, ls, ll)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckForward(witness, ls, ll); err != nil {
		t.Fatalf("forward direction failed: %v", err)
	}
}

func TestReductionBackwardDirection(t *testing.T) {
	const ls, ll = 0.17, 1.0
	yes := KnapsackInstance{Sizes: []int{2, 3, 4}, Values: []int{3, 4, 5}, U: 5, V: 7}
	ok, witness, err := SolveKnapsack(yes)
	if err != nil || !ok {
		t.Fatal("setup failed")
	}
	r, err := Reduce(yes, 0.5, ls, ll)
	if err != nil {
		t.Fatal(err)
	}
	x := r.ForwardMap(witness)
	if err := r.CheckBackward(x, ls, ll); err != nil {
		t.Fatalf("backward direction failed: %v", err)
	}
}

// Property: on random yes-instances the full cycle holds — solve, map
// forward, verify feasibility + bound, map back, recover a witness.
func TestReductionRoundTripProperty(t *testing.T) {
	const ls, ll = 0.17, 1.0
	f := func(seed uint64) bool {
		r := solve.NewRNG(seed)
		n := 1 + r.Intn(6)
		k := KnapsackInstance{U: 1 + r.Intn(10)}
		for i := 0; i < n; i++ {
			k.Sizes = append(k.Sizes, 1+r.Intn(5))
			k.Values = append(k.Values, 1+r.Intn(8))
		}
		// Choose V achievable half the time.
		k.V = 1 + r.Intn(12)
		ok, witness, err := SolveKnapsack(k)
		if err != nil {
			return false
		}
		if !ok {
			return true // nothing to round-trip
		}
		red, err := Reduce(k, 0.5, ls, ll)
		if err != nil {
			return false
		}
		if err := red.CheckForward(witness, ls, ll); err != nil {
			return false
		}
		x := red.ForwardMap(witness)
		return red.CheckBackward(x, ls, ll) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestApplicationsMaterialization(t *testing.T) {
	k := KnapsackInstance{Sizes: []int{2, 3}, Values: []int{3, 4}, U: 4, V: 6}
	r, err := Reduce(k, 0.5, 0.17, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl := model.TaihuLight()
	apps := r.Applications(pl)
	if len(apps) != 2 {
		t.Fatalf("%d applications", len(apps))
	}
	for i, a := range apps {
		if err := a.Validate(); err != nil {
			t.Fatalf("app %d invalid: %v", i, err)
		}
		// d_i of the materialized app equals the construction's d_i.
		if got := a.D(pl); math.Abs(got-r.D[i]) > 1e-12 {
			t.Fatalf("app %d: D = %v, want %v", i, got, r.D[i])
		}
		// Footprint cap corresponds to e_i.
		wantCap := math.Pow(r.E[i], 1/0.5)
		if got := a.MaxUsefulFraction(pl); math.Abs(got-math.Min(1, wantCap)) > 1e-12 {
			t.Fatalf("app %d: cap %v, want %v", i, got, wantCap)
		}
	}
}

func TestBackwardMap(t *testing.T) {
	subset := BackwardMap([]float64{0, 0.2, 0, 0.3})
	if len(subset) != 2 || subset[0] != 1 || subset[1] != 3 {
		t.Fatalf("subset %v", subset)
	}
}

// TestReduceRejectsNonFinite: NaN passes ordered comparisons and ±Inf
// passes bare sign tests, so Reduce must reject them explicitly — the
// same hardening internal/model applies to its inputs.
func TestReduceRejectsNonFinite(t *testing.T) {
	k := KnapsackInstance{Sizes: []int{2, 3}, Values: []int{3, 4}, U: 5, V: 7}
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name          string
		alpha, ls, ll float64
	}{
		{"nan alpha", nan, 0.17, 1},
		{"+inf alpha", inf, 0.17, 1},
		{"nan ls", 0.5, nan, 1},
		{"+inf ls", 0.5, inf, 1},
		{"-inf ls", 0.5, -inf, 1},
		{"nan ll", 0.5, 0.17, nan},
		{"+inf ll", 0.5, 0.17, inf},
	}
	for _, tc := range cases {
		if _, err := Reduce(k, tc.alpha, tc.ls, tc.ll); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := Reduce(k, 0.5, 0.17, 1); err != nil {
		t.Errorf("finite inputs rejected: %v", err)
	}
}

// TestCheckBackwardRejectsBadFractions: a NaN fraction turns the
// objective into NaN, which compares false against the bound and would
// silently "achieve" it without the explicit guard.
func TestCheckBackwardRejectsBadFractions(t *testing.T) {
	k := KnapsackInstance{Sizes: []int{2, 3}, Values: []int{3, 4}, U: 5, V: 7}
	r, err := Reduce(k, 0.5, 0.17, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]float64{
		{math.NaN(), 0.2},
		{math.Inf(1), 0.2},
		{-0.1, 0.2},
		{1.5, 0.2},
		{0.2},         // wrong length
		{0.2, 0.2, 0}, // wrong length
	}
	for _, x := range bad {
		if err := r.CheckBackward(x, 0.17, 1); err == nil {
			t.Errorf("CheckBackward accepted %v", x)
		}
	}
}

// TestCheckForwardRejectsBadWitness: out-of-range witness indices must
// error instead of panicking in ForwardMap.
func TestCheckForwardRejectsBadWitness(t *testing.T) {
	k := KnapsackInstance{Sizes: []int{2, 3}, Values: []int{3, 4}, U: 5, V: 7}
	r, err := Reduce(k, 0.5, 0.17, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, subset := range [][]int{{-1}, {2}, {0, 5}} {
		if err := r.CheckForward(subset, 0.17, 1); err == nil {
			t.Errorf("CheckForward accepted witness %v", subset)
		}
	}
}

// TestCheckDirectionsRejectNonFiniteLatencies: CheckForward and
// CheckBackward take ls/ll independently of Reduce, so they need the
// same non-finite guard (a NaN latency would NaN the objective, which
// compares false against the bound and silently "verifies").
func TestCheckDirectionsRejectNonFiniteLatencies(t *testing.T) {
	k := KnapsackInstance{Sizes: []int{2, 3}, Values: []int{3, 4}, U: 5, V: 7}
	r, err := Reduce(k, 0.5, 0.17, 1)
	if err != nil {
		t.Fatal(err)
	}
	yes, witness, err := SolveKnapsack(k)
	if err != nil || !yes {
		t.Fatalf("knapsack: %v %v", yes, err)
	}
	x := r.ForwardMap(witness)
	bad := []struct{ ls, ll float64 }{
		{math.NaN(), 1}, {math.Inf(1), 1}, {-1, 1},
		{0.17, math.NaN()}, {0.17, math.Inf(1)}, {0.17, 0},
	}
	for _, b := range bad {
		if err := r.CheckForward(witness, b.ls, b.ll); err == nil {
			t.Errorf("CheckForward accepted ls=%v ll=%v", b.ls, b.ll)
		}
		if err := r.CheckBackward(x, b.ls, b.ll); err == nil {
			t.Errorf("CheckBackward accepted ls=%v ll=%v", b.ls, b.ll)
		}
	}
}
