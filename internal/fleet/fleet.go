// Package fleet simulates a multi-node co-scheduling deployment: N
// heterogeneous cache-partitioned nodes — each running the single-node
// online solver of internal/des with its own processor count, cache
// size and repartitioning policy — behind a routing layer that decides,
// per arriving job, which node it lands on. The paper solves one node;
// this package is the production shape the ROADMAP targets, where an
// arrival stream exercises routing and per-node incremental
// repartitioning together.
//
// Routing policies (see routing.go): least-loaded, cache-affinity
// (route to the node whose resident footprint overlaps the job's, the
// co-scheduling analog of prefix-affinity routing in inference
// serving), power-of-two-choices and join-shortest-queue.
//
// Determinism: the simulation is a pure function of the Scenario. Node
// i's policy seed is derived from the fleet seed with the repository's
// golden-ratio stride (NodePolicySeed), the router's stream is salted
// and split off separately, arrivals are routed serially in stream
// order, and the per-node event loops are internal/des verbatim —
// bit-deterministic at any worker count. Workers only bounds *how* the
// independent node advancements and the shared portfolio pool execute,
// never what they compute; the conform fleet harness pins digests at 1
// and 8 workers against a committed golden corpus.
package fleet

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/des"
	"repro/internal/model"
	"repro/internal/portfolio"
	"repro/internal/selector"
	"repro/internal/stats"
)

// Node configures one node of the fleet.
type Node struct {
	// Name labels the node in results ("node<i>" when empty).
	Name string
	// Platform is the node's hardware.
	Platform model.Platform
	// Policy is the node's online repartitioning policy, in
	// des.ParsePolicy syntax; empty means DominantMinRatio.
	Policy string
	// MaxResident, when > 0, bounds how many jobs share the node at
	// once; excess jobs wait in the node-local FIFO.
	MaxResident int
}

// Scenario is one fleet simulation problem.
type Scenario struct {
	// Nodes is the fleet; at least one node is required.
	Nodes []Node
	// Routing selects the routing policy (see Routings); empty means
	// least-loaded.
	Routing string
	// Arrivals produces the fleet-wide job stream. The process is
	// consumed by the run; build a fresh one per Simulate call.
	Arrivals des.ArrivalProcess
	// Duration, when > 0, cuts off the arrival stream: the admission
	// window is [0, Duration), arrivals at or past the boundary are
	// counted in Result.Truncated and never routed — the same half-open
	// semantics as des.Scenario.Duration, enforced at the router so all
	// nodes share one clock cutoff.
	Duration float64
	// Seed drives every random draw: node policy substreams and the
	// router's stream are both derived from it.
	Seed uint64
	// Workers bounds the parallelism of the run: the shared portfolio
	// pool backing "portfolio" node policies and the concurrent
	// advancement of independent nodes (< 1 = GOMAXPROCS). Results are
	// bit-identical at any value.
	Workers int
	// Engine optionally supplies the shared portfolio engine backing
	// "portfolio" node policies (nil = a private pool bounded by
	// Workers).
	Engine *portfolio.Engine
	// Metrics instruments every node of the run (counters are atomic,
	// so one registry serves the whole fleet). Nil disables
	// observation; results are bit-identical either way.
	Metrics *des.Metrics
	// Ledger backs any "portfolio:selector" node policies with a
	// trained win-rate ledger (nil leaves them always falling back to
	// the full race, bit-identical to "portfolio").
	Ledger *selector.Ledger
}

// Route records one routing decision.
type Route struct {
	// Job is the fleet-wide job id, dense in arrival order.
	Job int
	// Time is the arrival's virtual time.
	Time float64
	// Node is the destination node index.
	Node int
}

// NodeResult is one node's outcome.
type NodeResult struct {
	// Name is the node's label.
	Name string
	// Jobs is how many jobs the router sent to this node.
	Jobs int
	// Result is the node's full single-node outcome (event log, per-job
	// metrics, integrals). A node that received no jobs has an empty
	// result with Makespan 0.
	Result *des.Result
}

// Result is the outcome of a fleet simulation.
type Result struct {
	// Routing is the resolved routing policy name.
	Routing string
	// Nodes holds the per-node outcomes, in Scenario.Nodes order.
	Nodes []NodeResult
	// Routes is the append-only routing log, one entry per admitted
	// job in arrival order.
	Routes []Route
	// Jobs counts admitted jobs across the fleet.
	Jobs int
	// Truncated counts arrivals discarded by the Duration cutoff.
	Truncated int
	// Makespan is the latest node makespan: when the whole fleet
	// drained.
	Makespan float64
	// ProcessorTime sums the nodes' allocated-processor integrals.
	ProcessorTime float64
	// Wait, Response and Stretch summarize the per-job metrics across
	// the whole fleet (fleet-wide arrival order).
	Wait, Response, Stretch stats.Summary
}

// Utilization returns ProcessorTime normalized by the fleet's total
// processor capacity over the run, or 0 for an empty run.
func (r *Result) Utilization(totalProcs float64) float64 {
	if r.Makespan <= 0 || totalProcs <= 0 {
		return 0
	}
	return r.ProcessorTime / (totalProcs * r.Makespan)
}

// Simulate runs the fleet scenario to completion: every arrival routed,
// every node drained. See SimulateContext.
func Simulate(sc Scenario) (*Result, error) {
	return SimulateContext(context.Background(), sc)
}

// ctxCheckEvery mirrors internal/des: the routing loop polls the
// context every few arrivals (each iteration already advances node
// event loops, which poll on their own during the final drain).
const ctxCheckEvery = 8

// SimulateContext is Simulate under a context; cancellation abandons
// the run with ctx.Err() within a few arrivals.
func SimulateContext(ctx context.Context, sc Scenario) (*Result, error) {
	if len(sc.Nodes) == 0 {
		return nil, fmt.Errorf("fleet: scenario needs at least one node")
	}
	if sc.Arrivals == nil {
		return nil, fmt.Errorf("fleet: scenario needs an arrival process")
	}
	if math.IsNaN(sc.Duration) || math.IsInf(sc.Duration, 0) || sc.Duration < 0 {
		return nil, fmt.Errorf("fleet: duration must be finite and >= 0, got %v", sc.Duration)
	}
	router, err := ParseRouter(sc.Routing, routerSeed(sc.Seed))
	if err != nil {
		return nil, err
	}
	engine := sc.Engine
	if engine == nil {
		engine = portfolio.New(portfolio.Config{Workers: sc.Workers})
	}
	nodes := make([]*des.Node, len(sc.Nodes))
	names := make([]string, len(sc.Nodes))
	for i, nc := range sc.Nodes {
		names[i] = nc.Name
		if names[i] == "" {
			names[i] = fmt.Sprintf("node%d", i)
		}
		spec := nc.Policy
		if spec == "" {
			spec = "DominantMinRatio"
		}
		pol, err := des.ParsePolicyShared(engine, spec, sc.Workers, NodePolicySeed(sc.Seed, i))
		if err != nil {
			return nil, fmt.Errorf("fleet: node %s: %w", names[i], err)
		}
		if sc.Ledger != nil {
			des.ConfigureSelector(pol, sc.Ledger, selector.Thresholds{})
		}
		nodes[i], err = des.NewNode(des.NodeConfig{
			Platform:    nc.Platform,
			Policy:      pol,
			MaxResident: nc.MaxResident,
			Metrics:     sc.Metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: node %s: %w", names[i], err)
		}
	}

	res := &Result{Routing: router.Name()}
	states := make([]NodeState, len(nodes))
	lastArrival := 0.0
	for iter := 0; ; iter++ {
		if iter%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		a, ok := sc.Arrivals.Next()
		if !ok {
			break
		}
		if math.IsNaN(a.Time) || math.IsInf(a.Time, 0) || a.Time < 0 {
			return nil, fmt.Errorf("fleet: arrival process %s emitted invalid time %v", sc.Arrivals.Name(), a.Time)
		}
		if err := a.App.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: arrival process %s emitted an invalid application: %w", sc.Arrivals.Name(), err)
		}
		if a.Time < lastArrival {
			return nil, fmt.Errorf("fleet: arrival process %s went backwards: t=%g after t=%g", sc.Arrivals.Name(), a.Time, lastArrival)
		}
		lastArrival = a.Time
		if sc.Duration > 0 && a.Time >= sc.Duration {
			res.Truncated++
			continue // keep draining to count every truncated arrival
		}
		// Advance every node to the arrival instant, then score them.
		// Nodes are independent simulations, so the advancement
		// parallelizes without affecting any result bit.
		if err := eachNode(nodes, sc.Workers, func(i int) error {
			if err := nodes[i].AdvanceBefore(a.Time); err != nil {
				return err
			}
			states[i] = NodeState{
				Index:    i,
				Backlog:  nodes[i].BacklogAt(a.Time),
				InSystem: nodes[i].JobsInSystem(),
				Affinity: affinity(nodes[i], a.App.Name),
			}
			return nil
		}); err != nil {
			return nil, err
		}
		pick := router.Pick(states, a)
		if pick < 0 || pick >= len(nodes) {
			return nil, fmt.Errorf("fleet: router %s picked node %d of %d", router.Name(), pick, len(nodes))
		}
		if err := nodes[pick].Inject(a); err != nil {
			return nil, fmt.Errorf("fleet: node %s: %w", names[pick], err)
		}
		res.Routes = append(res.Routes, Route{Job: res.Jobs, Time: a.Time, Node: pick})
		res.Jobs++
	}
	if res.Jobs == 0 {
		return nil, fmt.Errorf("fleet: arrival process produced no arrivals within the duration")
	}

	// Drain every node and collect the per-node outcomes.
	res.Nodes = make([]NodeResult, len(nodes))
	if err := eachNode(nodes, sc.Workers, func(i int) error {
		nr, err := nodes[i].Finish(ctx)
		if err != nil {
			return fmt.Errorf("fleet: node %s: %w", names[i], err)
		}
		res.Nodes[i] = NodeResult{Name: names[i], Jobs: len(nr.Jobs), Result: nr}
		return nil
	}); err != nil {
		return nil, err
	}
	aggregate(res)
	return res, nil
}

// affinity scores a node's footprint overlap with an arriving job: the
// summed remaining fractions of unfinished jobs stamped from the same
// template (see NodeState.Affinity).
func affinity(n *des.Node, name string) float64 {
	base := baseName(name)
	score := 0.0
	n.VisitUnfinished(func(resident string, remaining float64) {
		if baseName(resident) == base {
			score += remaining
		}
	})
	return score
}

// aggregate folds the per-node outcomes into the fleet-wide result:
// makespan, processor-time and per-job summaries in fleet arrival
// order (the routing log maps global job ids to node-local ones, which
// are dense in injection order).
func aggregate(res *Result) {
	waits := make([]float64, res.Jobs)
	resps := make([]float64, res.Jobs)
	stretches := make([]float64, res.Jobs)
	next := make([]int, len(res.Nodes))
	for _, rt := range res.Routes {
		jm := res.Nodes[rt.Node].Result.Jobs[next[rt.Node]]
		next[rt.Node]++
		waits[rt.Job], resps[rt.Job], stretches[rt.Job] = jm.Wait, jm.Response, jm.Stretch
	}
	for i := range res.Nodes {
		nr := res.Nodes[i].Result
		if nr.Makespan > res.Makespan {
			res.Makespan = nr.Makespan
		}
		res.ProcessorTime += nr.ProcessorTime
	}
	// Errors impossible: the run rejects empty arrival streams.
	res.Wait, _ = stats.Summarize(waits)
	res.Response, _ = stats.Summarize(resps)
	res.Stretch, _ = stats.Summarize(stretches)
}

// eachNode runs fn(i) for every node — serially at workers ≤ 1 or for
// a single node, concurrently otherwise. fn touches only node i's
// state, so the schedule cannot affect results; the first error in
// index order wins, matching the serial path.
func eachNode(nodes []*des.Node, workers int, fn func(i int) error) error {
	if workers == 1 || len(nodes) == 1 {
		for i := range nodes {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, len(nodes))
	for i := range nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
