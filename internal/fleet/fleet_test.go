package fleet

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/model"
	"repro/internal/solve"
	"repro/internal/workload"
)

// testProc builds a fresh Poisson arrival stream over the NPB
// templates (processes are consumed by a run, so every simulation arm
// needs its own).
func testProc(t *testing.T, n int, seed uint64) des.ArrivalProcess {
	t.Helper()
	factory, err := des.CycleApps(workload.NPB())
	if err != nil {
		t.Fatal(err)
	}
	p, err := des.NewPoisson(3e-9, n, factory, solve.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		pl := model.TaihuLight()
		// Mild heterogeneity: distinct processor counts and caches.
		pl.Processors += float64(4 * i)
		pl.CacheSize *= 1 + 0.25*float64(i)
		nodes[i] = Node{Platform: pl, MaxResident: 4}
	}
	return nodes
}

// TestSingleNodeReducesToDES: a one-node fleet is the single-node
// simulator with a routing layer that has nothing to decide, so its
// node result must be bit-identical to des.Simulate over the same
// stream with the same derived policy seed — for every routing policy
// (on one node they must all degenerate to the same behavior).
func TestSingleNodeReducesToDES(t *testing.T) {
	pl := model.TaihuLight()
	const seed = 7
	for _, routing := range Routings {
		pol, err := des.ParsePolicy("DominantMinRatio", 1, NodePolicySeed(seed, 0))
		if err != nil {
			t.Fatal(err)
		}
		want, err := des.Simulate(des.Scenario{
			Platform: pl, Arrivals: testProc(t, 24, 3), Policy: pol, MaxResident: 4,
		})
		if err != nil {
			t.Fatalf("%s: des: %v", routing, err)
		}
		got, err := Simulate(Scenario{
			Nodes:    []Node{{Platform: pl, MaxResident: 4}},
			Routing:  routing,
			Arrivals: testProc(t, 24, 3),
			Seed:     seed,
			Workers:  1,
		})
		if err != nil {
			t.Fatalf("%s: fleet: %v", routing, err)
		}
		if !reflect.DeepEqual(want, got.Nodes[0].Result) {
			t.Errorf("%s: single-node fleet differs from des.Simulate (makespan %v vs %v, %d vs %d events)",
				routing, got.Nodes[0].Result.Makespan, want.Makespan,
				len(got.Nodes[0].Result.Events), len(want.Events))
		}
		if got.Jobs != len(want.Jobs) || got.Makespan != want.Makespan {
			t.Errorf("%s: aggregate jobs=%d makespan=%v, want %d / %v",
				routing, got.Jobs, got.Makespan, len(want.Jobs), want.Makespan)
		}
		for _, rt := range got.Routes {
			if rt.Node != 0 {
				t.Fatalf("%s: route to node %d in a one-node fleet", routing, rt.Node)
			}
		}
	}
}

// TestWorkerDeterminism: the whole fleet result — routing log and every
// node's event log — is bit-identical at 1 and 8 workers, for every
// routing policy and a portfolio node policy (the parallel-policy
// case).
func TestWorkerDeterminism(t *testing.T) {
	for _, routing := range Routings {
		run := func(workers int) *Result {
			nodes := testNodes(3)
			for i := range nodes {
				nodes[i].Policy = "portfolio"
			}
			res, err := Simulate(Scenario{
				Nodes:    nodes,
				Routing:  routing,
				Arrivals: testProc(t, 30, 9),
				Seed:     13,
				Workers:  workers,
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", routing, workers, err)
			}
			return res
		}
		if r1, r8 := run(1), run(8); !reflect.DeepEqual(r1, r8) {
			t.Errorf("%s: fleet result differs between 1 and 8 workers", routing)
		}
	}
}

// TestDeterministicTies: on a fleet of identical idle nodes every
// scoring signal ties, and every tie must break to the lowest index —
// repeatably. power-of-two-choices is seeded rather than index-biased,
// so for it the check is repeatability plus the documented pair rule.
func TestDeterministicTies(t *testing.T) {
	app := workload.NPB()[0]
	idle := []NodeState{{Index: 0}, {Index: 1}, {Index: 2}}
	for _, spec := range []string{"least-loaded", "cache-affinity", "join-shortest-queue"} {
		r, err := ParseRouter(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Pick(idle, des.Arrival{App: app}); got != 0 {
			t.Errorf("%s: tie broke to node %d, want 0", spec, got)
		}
	}
	// Seeded router: two instances with one seed agree draw for draw;
	// on a backlog tie the lower-indexed candidate of the pair wins.
	ra, _ := ParseRouter("power-of-two-choices", 99)
	rb, _ := ParseRouter("power-of-two-choices", 99)
	for i := 0; i < 64; i++ {
		a, b := ra.Pick(idle, des.Arrival{App: app}), rb.Pick(idle, des.Arrival{App: app})
		if a != b {
			t.Fatalf("power-of-two-choices: draw %d diverged (%d vs %d) at equal seeds", i, a, b)
		}
	}
}

// TestCacheAffinityRouting: with two nodes and a two-template stream,
// affinity routing keeps templates together — after the warmup
// arrival, a job whose template is resident on exactly one node goes
// there.
func TestCacheAffinityRouting(t *testing.T) {
	apps := workload.NPB()[:2]
	// Alternating template stream, closely spaced so prior jobs are
	// still resident when the next arrives.
	arr := make([]des.Arrival, 8)
	for i := range arr {
		a := apps[i%2]
		a.Name = a.Name + "#x" // distinct stamp, shared base
		arr[i] = des.Arrival{Time: float64(i), App: a}
	}
	proc, err := des.NewReplay(arr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(Scenario{
		Nodes:    testNodes(2),
		Routing:  "cache-affinity",
		Arrivals: proc,
		Seed:     1,
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	byTemplate := map[int]int{} // template parity -> node of first placement
	for i, rt := range res.Routes {
		if prev, ok := byTemplate[i%2]; ok {
			if rt.Node != prev {
				t.Errorf("job %d (template %d) routed to node %d, away from its resident template on node %d",
					i, i%2, rt.Node, prev)
			}
		} else {
			byTemplate[i%2] = rt.Node
		}
	}
	if len(byTemplate) == 2 && byTemplate[0] == byTemplate[1] {
		t.Errorf("both templates piled onto node %d; affinity ties should have spread them by backlog", byTemplate[0])
	}
}

// TestValidation covers scenario- and spec-level rejection paths.
func TestValidation(t *testing.T) {
	if _, err := Simulate(Scenario{Arrivals: testProc(t, 4, 1)}); err == nil ||
		!strings.Contains(err.Error(), "at least one node") {
		t.Errorf("empty fleet: got %v, want an at-least-one-node error", err)
	}
	if _, err := Simulate(Scenario{Nodes: testNodes(1)}); err == nil {
		t.Error("nil arrival process accepted")
	}
	if _, err := Simulate(Scenario{Nodes: testNodes(1), Arrivals: testProc(t, 4, 1), Duration: math.Inf(1)}); err == nil {
		t.Error("infinite duration accepted")
	}
	if _, err := Simulate(Scenario{Nodes: testNodes(1), Arrivals: testProc(t, 4, 1), Routing: "bogus"}); err == nil {
		t.Error("unknown routing policy accepted")
	}
	if _, err := Simulate(Scenario{
		Nodes:    []Node{{Platform: model.Platform{}}},
		Arrivals: testProc(t, 4, 1),
	}); err == nil {
		t.Error("invalid node platform accepted")
	}
	if _, err := ParseRouter("bogus", 0); err == nil {
		t.Error("ParseRouter accepted an unknown policy")
	}

	spec := &Spec{Arrivals: des.ArrivalSpec{Process: "poisson", Rate: 1, N: 4}}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "at least one node") {
		t.Errorf("spec with no nodes: got %v", err)
	}
	spec.Nodes = []NodeSpec{{}}
	if err := spec.Validate(); err != nil {
		t.Errorf("minimal valid spec rejected: %v", err)
	}
	spec.Routing = "bogus"
	if err := spec.Validate(); err == nil {
		t.Error("spec with unknown routing accepted")
	}
	spec.Routing = ""
	spec.Duration = math.NaN()
	if err := spec.Validate(); err == nil {
		t.Error("spec with NaN duration accepted")
	}
}

// TestDecodeSpecRoundTrip: the wire format decodes, builds and runs;
// unknown fields are rejected.
func TestDecodeSpecRoundTrip(t *testing.T) {
	const doc = `{
		"nodes": [
			{"name": "big", "policy": "portfolio"},
			{"platform": {"processors": 16, "cacheSize": 4e7, "ls": 0.1, "ll": 2, "alpha": 0.5}, "maxResident": 2}
		],
		"routing": "least-loaded",
		"arrivals": {"process": "poisson", "rate": 3e-9, "n": 12},
		"seed": 5
	}`
	sp, err := DecodeSpec(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sp.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateContext(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 12 || len(res.Nodes) != 2 {
		t.Errorf("jobs=%d nodes=%d, want 12/2", res.Jobs, len(res.Nodes))
	}
	if res.Nodes[0].Name != "big" || res.Nodes[1].Name != "node1" {
		t.Errorf("node names %q/%q, want big/node1", res.Nodes[0].Name, res.Nodes[1].Name)
	}
	if res.Nodes[0].Jobs+res.Nodes[1].Jobs != 12 {
		t.Errorf("per-node job counts %d+%d != 12", res.Nodes[0].Jobs, res.Nodes[1].Jobs)
	}
	if _, err := DecodeSpec(strings.NewReader(`{"nodes": [{}], "arrivals": {"process": "poisson", "rate": 1, "n": 1}, "bogus": 1}`)); err == nil {
		t.Error("unknown top-level field accepted")
	}
}

// TestDurationCutoff: arrivals at or past Duration are truncated
// fleet-wide, half-open exactly like des.Scenario.Duration.
func TestDurationCutoff(t *testing.T) {
	apps := workload.NPB()
	arr := []des.Arrival{
		{Time: 0, App: apps[0]},
		{Time: 1, App: apps[1]},
		{Time: 2, App: apps[2]}, // at the boundary: truncated
		{Time: 3, App: apps[3]},
	}
	proc, err := des.NewReplay(arr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(Scenario{
		Nodes: testNodes(2), Arrivals: proc, Duration: 2, Seed: 1, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 2 || res.Truncated != 2 {
		t.Errorf("jobs=%d truncated=%d, want 2/2", res.Jobs, res.Truncated)
	}
}

// TestCancellation: a cancelled context aborts the run promptly with
// ctx.Err().
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateContext(ctx, Scenario{
		Nodes: testNodes(2), Arrivals: testProc(t, 16, 2), Seed: 1, Workers: 2,
	})
	if err != context.Canceled {
		t.Errorf("cancelled run returned %v, want context.Canceled", err)
	}
}
