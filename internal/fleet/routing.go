package fleet

import (
	"fmt"
	"strings"

	"repro/internal/des"
	"repro/internal/solve"
)

// seedStride separates derived RNG streams (per-node policy seeds, the
// router's substream) — the golden-ratio constant used throughout the
// repository.
const seedStride = 0x9E3779B97F4A7C15

// routerSalt decorrelates the router's RNG stream from the node policy
// streams derived from the same fleet seed.
const routerSalt = 0xC2B2AE3D27D4EB4F

// NodePolicySeed derives node i's policy seed from the fleet seed. It
// is exported so a single-node fleet can be reproduced exactly by a
// standalone des run with the same policy seed (the conform harness's
// single-node reduction check relies on this).
func NodePolicySeed(seed uint64, i int) uint64 {
	return solve.NewRNG(seed ^ (uint64(i)+1)*seedStride).Uint64()
}

// routerSeed derives the routing layer's RNG seed from the fleet seed,
// mixed through SplitMix64 so it shares no affine structure with the
// node streams.
func routerSeed(seed uint64) uint64 {
	return solve.NewRNG(seed ^ routerSalt).Uint64()
}

// NodeState is the router's view of one node at a routing decision,
// computed by the simulator after advancing every node to the arrival
// instant. All fields are pure functions of node state, so any router
// over them is deterministic.
type NodeState struct {
	// Index is the node's position in Scenario.Nodes.
	Index int
	// Backlog is des.Node.BacklogAt the arrival time: the node's
	// remaining work as wall time.
	Backlog float64
	// InSystem is the node's unfinished job count (running, parked and
	// FIFO-queued alike).
	InSystem int
	// Affinity is the footprint-overlap score against the arriving job:
	// the summed remaining fractions of the node's unfinished jobs
	// stamped from the same template (base name before the "#<i>"
	// suffix) — jobs from one template share a working set, so a high
	// score means the job's footprint is already resident.
	Affinity float64
}

// Router picks a destination node for each arrival. Implementations
// must be deterministic functions of their construction parameters and
// the sequence of Pick calls; any randomness comes from seeded
// solve.RNG streams. states always lists every node in index order.
type Router interface {
	Pick(states []NodeState, a des.Arrival) int
	Name() string
}

// Routings lists the built-in routing policy names in presentation
// order.
var Routings = []string{
	"least-loaded",
	"cache-affinity",
	"power-of-two-choices",
	"join-shortest-queue",
}

// ParseRouter resolves a routing policy name. Empty means
// "least-loaded". seed drives the randomized routers
// (power-of-two-choices); deterministic ones ignore it.
func ParseRouter(spec string, seed uint64) (Router, error) {
	switch spec {
	case "", "least-loaded":
		return leastLoaded{}, nil
	case "cache-affinity":
		return cacheAffinity{}, nil
	case "power-of-two-choices":
		return &powerOfTwo{rng: solve.NewRNG(seed)}, nil
	case "join-shortest-queue":
		return shortestQueue{}, nil
	default:
		return nil, fmt.Errorf("fleet: unknown routing policy %q (want %s)",
			spec, strings.Join(Routings, ", "))
	}
}

// leastLoaded routes to the node with the smallest backlog; ties break
// to the lowest index.
type leastLoaded struct{}

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Pick(states []NodeState, _ des.Arrival) int {
	best := 0
	for i := 1; i < len(states); i++ {
		if states[i].Backlog < states[best].Backlog {
			best = i
		}
	}
	return best
}

// cacheAffinity routes to the node whose resident footprint overlaps
// the arriving job's the most (highest Affinity); among equally-affine
// nodes the smaller backlog wins, then the lowest index — so a cold
// fleet degrades to least-loaded instead of piling onto node 0.
type cacheAffinity struct{}

func (cacheAffinity) Name() string { return "cache-affinity" }

func (cacheAffinity) Pick(states []NodeState, _ des.Arrival) int {
	best := 0
	for i := 1; i < len(states); i++ {
		s, b := &states[i], &states[best]
		if s.Affinity > b.Affinity ||
			(s.Affinity == b.Affinity && s.Backlog < b.Backlog) {
			best = i
		}
	}
	return best
}

// powerOfTwo samples two distinct nodes from its seeded stream and
// routes to the less backlogged of the pair (ties to the lower index)
// — the classical load-balancing compromise between random and
// least-loaded routing. The draw order is fixed (first index uniform
// over n, second uniform over the remaining n-1), so a fixed seed
// yields a fixed route sequence.
type powerOfTwo struct {
	rng *solve.RNG
}

func (*powerOfTwo) Name() string { return "power-of-two-choices" }

func (p *powerOfTwo) Pick(states []NodeState, _ des.Arrival) int {
	n := len(states)
	if n == 1 {
		// No second choice to draw; consuming RNG here would also
		// desynchronize the stream between fleets that momentarily
		// degenerate to one node and fleets that never do.
		return 0
	}
	i := p.rng.Intn(n)
	j := p.rng.Intn(n - 1)
	if j >= i {
		j++
	}
	if states[j].Backlog < states[i].Backlog ||
		(states[j].Backlog == states[i].Backlog && j < i) {
		return j
	}
	return i
}

// shortestQueue routes to the node with the fewest unfinished jobs in
// the system; ties break to the lowest index.
type shortestQueue struct{}

func (shortestQueue) Name() string { return "join-shortest-queue" }

func (shortestQueue) Pick(states []NodeState, _ des.Arrival) int {
	best := 0
	for i := 1; i < len(states); i++ {
		if states[i].InSystem < states[best].InSystem {
			best = i
		}
	}
	return best
}

// baseName strips the "#<i>" arrival stamp CycleApps appends, exposing
// the template identity two jobs share iff they share a working set.
func baseName(name string) string {
	if i := strings.LastIndexByte(name, '#'); i >= 0 {
		return name[:i]
	}
	return name
}
